package mps

// End-to-end integration tests: the full Fig. 1 workflow (generate → save →
// load → layout-inclusive sizing) exercised through the public facade only.

import (
	"math/rand"
	"path/filepath"
	"testing"

	"mps/internal/cost"
	"mps/internal/modgen"
	"mps/internal/synth"
)

// TestFullWorkflowGenerateSaveLoadSynthesize walks the complete paper
// workflow on the two-stage opamp and checks every stage's contract.
func TestFullWorkflowGenerateSaveLoadSynthesize(t *testing.T) {
	circuit, err := Benchmark("TwoStageOpamp")
	if err != nil {
		t.Fatal(err)
	}

	// Fig. 1a: one-time generation.
	s, genStats, err := Generate(circuit, Options{Seed: 41, Effort: EffortQuick})
	if err != nil {
		t.Fatal(err)
	}
	if genStats.Iterations == 0 || s.NumPlacements() == 0 {
		t.Fatal("generation produced nothing")
	}

	// Persist and reload, as a synthesis tool would.
	path := filepath.Join(t.TempDir(), "tso.mps")
	if err := s.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path, circuit)
	if err != nil {
		t.Fatal(err)
	}

	// Fig. 1b: sizing loop with the loaded structure as the placement
	// provider.
	sizer := modgen.DefaultSizer(circuit)
	provider := synth.ProviderFunc(func(ws, hs []int) ([]int, []int, error) {
		res, err := loaded.Instantiate(ws, hs)
		if err != nil {
			return nil, nil, err
		}
		return res.X, res.Y, nil
	})
	res, err := synth.Run(sizer, provider,
		synth.LayoutOnlyObjective(cost.DefaultWeights),
		loaded.Floorplan(), synth.Config{Steps: 120, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlaceErrs != 0 {
		t.Errorf("%d placement failures inside the loop", res.PlaceErrs)
	}
	if res.BestLayout == nil || res.BestCost >= 1e12 {
		t.Fatal("sizing loop found no valid point")
	}
	if res.BestCost > res.AnnealStats.InitCost {
		t.Errorf("sizing did not improve: best %g vs init %g",
			res.BestCost, res.AnnealStats.InitCost)
	}
	// Every placement the loop used must have been answered in bounded
	// time; the loop's own mean latency is the paper's usability claim.
	if res.AvgPlaceTime().Microseconds() > 1000 {
		t.Errorf("mean placement latency %v exceeds 1ms", res.AvgPlaceTime())
	}
}

// TestBackupKinds verifies both uncovered-space backups answer with legal
// layouts through the facade.
func TestBackupKinds(t *testing.T) {
	circuit, err := Benchmark("Mixer")
	if err != nil {
		t.Fatal(err)
	}
	for _, kind := range []BackupKind{BackupSlicingTree, BackupSequencePair} {
		s, _, err := Generate(circuit, Options{Seed: 1, Effort: EffortQuick, Backup: kind})
		if err != nil {
			t.Fatal(err)
		}
		rng := rand.New(rand.NewSource(9))
		sawBackup := false
		for trial := 0; trial < 200; trial++ {
			ws, hs := randomDims(circuit, rng)
			res, err := s.Instantiate(ws, hs)
			if err != nil {
				t.Fatalf("backup kind %d: %v", kind, err)
			}
			if res.FromBackup {
				sawBackup = true
			}
			for i := 0; i < circuit.N(); i++ {
				for j := i + 1; j < circuit.N(); j++ {
					if overlap(res.X[i], res.Y[i], ws[i], hs[i], res.X[j], res.Y[j], ws[j], hs[j]) {
						t.Fatalf("backup kind %d: overlapping layout", kind)
					}
				}
			}
		}
		if !sawBackup {
			t.Logf("backup kind %d: note — no query fell to backup", kind)
		}
	}
}

// TestSequencePairBackupCompacts compares the two backups' bounding-box
// area on identical dims: the sequence-pair packing must not be worse.
func TestSequencePairBackupCompacts(t *testing.T) {
	circuit, err := Benchmark("circ08")
	if err != nil {
		t.Fatal(err)
	}
	ws := make([]int, circuit.N())
	hs := make([]int, circuit.N())
	for i, b := range circuit.Blocks {
		ws[i] = b.WMax
		hs[i] = b.HMax
	}
	area := func(kind BackupKind) int64 {
		s, _, err := Generate(circuit, Options{
			Seed: 2, Effort: EffortQuick, Iterations: 1, BDIOSteps: 10, Backup: kind,
		})
		if err != nil {
			t.Fatal(err)
		}
		// Max dims are essentially never covered by a 1-iteration
		// structure; this exercises the backup.
		res, err := s.Instantiate(ws, hs)
		if err != nil {
			t.Fatal(err)
		}
		l := &cost.Layout{Circuit: circuit, X: res.X, Y: res.Y, W: ws, H: hs, Floorplan: s.Floorplan()}
		return cost.UsedArea(l)
	}
	tree := area(BackupSlicingTree)
	sp := area(BackupSequencePair)
	t.Logf("slicing-tree area %d, sequence-pair area %d", tree, sp)
	if sp > tree*3/2 {
		t.Errorf("sequence-pair backup area %d much worse than slicing tree %d", sp, tree)
	}
}
