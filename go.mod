module mps

go 1.22
