module mps

go 1.24
