// Opamp synthesis: the paper's Figure 1b loop on a two-stage Miller opamp.
//
// A simulated-annealing sizing optimizer proposes device sizes (W/L per
// stage, Cc); module generators turn them into block dimensions; a placement
// provider instantiates the floorplan; wire parasitics extracted from the
// placement degrade GBW and phase margin; the resulting performance drives
// the optimizer.
//
// The example runs the identical loop with three providers and compares
// solution quality and time per iteration:
//
//   - multi-placement structure (generated once up front, queried per point)
//   - fixed slicing-tree template (the template-based baseline)
//   - per-query simulated-annealing placer (the optimization-based baseline,
//     with a reduced step budget to stay runnable)
package main

import (
	"fmt"
	"log"
	"time"

	"mps"
	"mps/internal/cost"
	"mps/internal/modgen"
	"mps/internal/optplace"
	"mps/internal/perf"
	"mps/internal/placement"
	"mps/internal/synth"
	"mps/internal/template"
)

// opampObjective scores a sizing point: constraint penalties from the
// analytic opamp model (with layout parasitics) plus power and area terms.
type opampObjective struct {
	spec            perf.Spec
	outNet, compNet int
}

func (o *opampObjective) Cost(x []float64, l *cost.Layout) float64 {
	lengths := cost.NetLengths(l)
	p := perf.EvalTwoStage(perf.ParamsFromVector(x), lengths[o.outNet], lengths[o.compNet])
	area := float64(cost.UsedArea(l))
	return 100*o.spec.Penalty(p) + p.PowerMW + area/5e4
}

func main() {
	log.SetFlags(0)

	circuit, err := mps.Benchmark("TwoStageOpamp")
	if err != nil {
		log.Fatal(err)
	}
	sizer, err := modgen.TwoStageOpampSizer(circuit)
	if err != nil {
		log.Fatal(err)
	}
	fp := placement.DefaultFloorplan(circuit)

	// Find the nets whose parasitics matter: OUT and OUT1 (comp node).
	outNet, compNet := -1, -1
	for i, n := range circuit.Nets {
		switch n.Name {
		case "OUT":
			outNet = i
		case "OUT1":
			compNet = i
		}
	}
	obj := &opampObjective{spec: perf.DefaultSpec, outNet: outNet, compNet: compNet}

	// One-time structure generation (amortized across every synthesis run).
	fmt.Println("generating multi-placement structure for the opamp topology...")
	genStart := time.Now()
	s, _, err := mps.Generate(circuit, mps.Options{Seed: 3, Effort: mps.EffortQuick})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d placements in %s\n\n", s.NumPlacements(), time.Since(genStart).Round(time.Millisecond))

	providers := []struct {
		name  string
		p     synth.Provider
		steps int
	}{
		{"multi-placement structure", synth.ProviderFunc(func(ws, hs []int) ([]int, []int, error) {
			res, err := s.Instantiate(ws, hs)
			if err != nil {
				return nil, nil, err
			}
			return res.X, res.Y, nil
		}), 250},
		{"fixed template", template.Balanced(circuit), 250},
		{"per-query annealing", &optplace.Provider{
			Circuit: circuit, FP: fp, Cfg: optplace.Config{Steps: 400, Seed: 9},
		}, 60}, // fewer sizing steps: each placement call is an SA run
	}

	fmt.Printf("%-28s %10s %14s %12s %8s %8s %8s\n",
		"placement provider", "best cost", "time/iter", "place/iter", "gain dB", "GBW MHz", "PM deg")
	for _, pv := range providers {
		res, err := synth.Run(sizer, pv.p, obj, fp, synth.Config{Steps: pv.steps, Seed: 17})
		if err != nil {
			log.Fatal(err)
		}
		lengths := cost.NetLengths(res.BestLayout)
		pf := perf.EvalTwoStage(perf.ParamsFromVector(res.BestX), lengths[outNet], lengths[compNet])
		fmt.Printf("%-28s %10.2f %14s %12s %8.1f %8.1f %8.1f\n",
			pv.name, res.BestCost,
			(res.TotalTime / time.Duration(res.Iterations)).Round(time.Microsecond),
			res.AvgPlaceTime().Round(time.Microsecond),
			pf.GainDB, pf.GBWHz/1e6, pf.PhaseMarginDeg)
	}
	fmt.Println("\nThe structure provider keeps template-class iteration speed while")
	fmt.Println("adapting the floorplan to each sizing point, which is the paper's point.")
}
