// Symmetric mixer: symmetry-aware structure generation.
//
// Analog placement must mirror matched devices (the mixer's switching
// quads, loads and filter caps) about a common axis. This example generates
// two multi-placement structures for the Mixer benchmark — one with the
// plain wire+area cost and one with the symmetry penalty added — and
// compares the symmetry quality of the placements each returns.
package main

import (
	"fmt"
	"log"
	"time"

	"mps"
	"mps/internal/cost"
	"mps/internal/render"
	"mps/internal/stats"
)

func main() {
	log.SetFlags(0)

	circuit, err := mps.Benchmark("Mixer")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Mixer: %d blocks, %d symmetry group(s)\n", circuit.N(), len(circuit.Symmetries))
	for _, g := range circuit.Symmetries {
		fmt.Printf("  group %q: %d mirror pairs, %d self-symmetric\n",
			g.Name, len(g.Pairs), len(g.SelfSym))
	}
	fmt.Println()

	type variant struct {
		name string
		ev   cost.Evaluator
	}
	variants := []variant{
		{"wire+area only", cost.DefaultWeights},
		{"wire+area + symmetry (w=4)", cost.WithSymmetry(cost.DefaultWeights, 4)},
	}

	tb := stats.NewTable("evaluator", "placements", "gen time", "mean sym penalty", "mean wire")
	layouts := make(map[string]*cost.Layout)
	for _, v := range variants {
		s, genStats, err := mps.Generate(circuit, mps.Options{
			Seed:      11,
			Effort:    mps.EffortQuick,
			Evaluator: v.ev,
		})
		if err != nil {
			log.Fatal(err)
		}

		// Measure each stored placement at its own best dimensions — the
		// layouts the structure will hand to a synthesis loop. (Random
		// probes would mostly hit the shared backup template at this tiny
		// generation budget and mask the comparison.)
		var symTotal, wireTotal float64
		var lastLayout *cost.Layout
		probes := 0
		for _, id := range s.IDs() {
			p := s.Get(id)
			if p.BestW == nil {
				continue
			}
			l := &cost.Layout{
				Circuit: circuit, X: p.X, Y: p.Y,
				W: p.BestW, H: p.BestH, Floorplan: s.Floorplan(),
			}
			symTotal += cost.SymmetryPenalty(l)
			wireTotal += float64(cost.WireLength(l))
			lastLayout = l
			probes++
		}
		if probes == 0 {
			log.Fatal("structure stored no placements")
		}
		layouts[v.name] = lastLayout
		tb.AddRow(v.name, s.NumPlacements(),
			genStats.Duration.Round(time.Millisecond).String(),
			symTotal/float64(probes), wireTotal/float64(probes))
	}
	tb.Render(log.Writer())

	fmt.Println("\nlast instantiation from the symmetry-aware structure:")
	fmt.Print(render.ASCII(layouts[variants[1].name], render.ASCIIOptions{Width: 60, ShowLegend: true}))
	fmt.Println("\nexpected shape: the symmetry-weighted structure trades some wire")
	fmt.Println("length for a visibly lower mean symmetry penalty.")
}
