// Coverage study: how a multi-placement structure grows with generation
// budget — the paper's §3.1.4 stopping-criterion trade-off made visible.
//
// For increasing explorer budgets on the circ02 benchmark the example
// reports stored placements, exact volume coverage, Monte-Carlo hit rate
// (the fraction of random sizing queries answered by a stored placement
// rather than the backup template), and generation time.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"mps"
	"mps/internal/stats"
)

func main() {
	log.SetFlags(0)
	const benchmark = "circ02"

	circuit, err := mps.Benchmark(benchmark)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("coverage growth on %s (%d blocks, dimension space ~2^%.0f vectors)\n\n",
		benchmark, circuit.N(), circuit.DimensionSpaceLog2Volume())

	tb := stats.NewTable("iterations", "placements", "coverage", "hit rate", "gen time")
	for _, iters := range []int{10, 25, 50, 100, 200, 400} {
		s, genStats, err := mps.Generate(circuit, mps.Options{
			Seed:       7,
			Iterations: iters,
			BDIOSteps:  80,
		})
		if err != nil {
			log.Fatal(err)
		}
		hit := s.CoverageMonteCarlo(rand.New(rand.NewSource(1)), 4000)
		tb.AddRow(iters, s.NumPlacements(),
			fmt.Sprintf("%.3g", s.Coverage()),
			fmt.Sprintf("%.1f%%", hit*100),
			genStats.Duration.Round(time.Millisecond).String())
	}
	tb.Render(log.Writer())

	fmt.Println("\n100% coverage is unreachable (the paper says as much); uncovered")
	fmt.Println("queries fall back to the slicing-tree template, so every sizing")
	fmt.Println("point still gets a legal floorplan.")
}
