// Quickstart: generate a multi-placement structure for the two-stage opamp
// benchmark, query it with two different size vectors, and render the
// resulting floorplans — the paper's Figure 1 workflow end to end.
package main

import (
	"fmt"
	"log"
	"time"

	"mps"
	"mps/internal/cost"
	"mps/internal/render"
)

func main() {
	log.SetFlags(0)

	// The circuit topology: 5 blocks, 9 nets (paper Table 1).
	circuit, err := mps.Benchmark("TwoStageOpamp")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("circuit %s: %d blocks, %d nets, %d terminals\n\n",
		circuit.Name, circuit.N(), len(circuit.Nets), circuit.PinCount())

	// One-time generation (Fig. 1a). EffortQuick keeps this demo fast;
	// use EffortBalanced or EffortThorough for real structures.
	fmt.Println("generating multi-placement structure...")
	s, stats, err := mps.Generate(circuit, mps.Options{Seed: 42, Effort: mps.EffortQuick})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d placements stored in %s (%d explored, %d engulfed)\n\n",
		s.NumPlacements(), stats.Duration.Round(time.Millisecond),
		stats.Iterations, stats.CandidatesDied)

	// Fast instantiation (Fig. 1b): same topology, two different sizings.
	for _, frac := range []float64{0.25, 0.8} {
		ws := make([]int, circuit.N())
		hs := make([]int, circuit.N())
		for i, b := range circuit.Blocks {
			ws[i] = b.WMin + int(frac*float64(b.WMax-b.WMin))
			hs[i] = b.HMin + int(frac*float64(b.HMax-b.HMin))
		}
		start := time.Now()
		res, err := s.Instantiate(ws, hs)
		elapsed := time.Since(start)
		if err != nil {
			log.Fatal(err)
		}
		src := fmt.Sprintf("stored placement %d", res.PlacementID)
		if res.FromBackup {
			src = "backup template"
		}
		l := &cost.Layout{Circuit: circuit, X: res.X, Y: res.Y, W: ws, H: hs, Floorplan: s.Floorplan()}
		fmt.Printf("sizes at %.0f%% of ranges -> %s in %s (wire %d, area %d)\n",
			frac*100, src, elapsed, cost.WireLength(l), cost.UsedArea(l))
		fmt.Print(render.ASCII(l, render.ASCIIOptions{Width: 56, ShowLegend: true}))
		fmt.Println()
	}
}
