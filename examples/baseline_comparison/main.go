// Baseline comparison: quality and latency of the three placement
// approaches across a sweep of circuit sizings — the trade-off that
// motivates multi-placement structures (paper §1).
//
// For each of 25 random dimension vectors on the Mixer benchmark, the
// circuit is placed by:
//
//   - the multi-placement structure (microseconds, near-optimized)
//   - a fixed slicing-tree template (microseconds, one topology)
//   - per-query simulated annealing (milliseconds+, optimized)
//
// and the wire+area cost of each result is reported.
package main

import (
	"fmt"
	"log"
	"math/rand"
	"time"

	"mps"
	"mps/internal/cost"
	"mps/internal/optplace"
	"mps/internal/placement"
	"mps/internal/stats"
	"mps/internal/template"
)

func main() {
	log.SetFlags(0)
	const benchmark = "Mixer"
	const queries = 25

	circuit, err := mps.Benchmark(benchmark)
	if err != nil {
		log.Fatal(err)
	}
	fp := placement.DefaultFloorplan(circuit)

	fmt.Printf("generating structure for %s (balanced effort: the one-time\n", benchmark)
	fmt.Println("cost a synthesis flow amortizes over every later run)...")
	s, genStats, err := mps.Generate(circuit, mps.Options{Seed: 5, Effort: mps.EffortBalanced})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("  %d placements in %s\n\n", s.NumPlacements(), genStats.Duration.Round(time.Millisecond))

	tpl := template.Balanced(circuit)
	evaluate := func(x, y, ws, hs []int) float64 {
		l := &cost.Layout{Circuit: circuit, X: x, Y: y, W: ws, H: hs, Floorplan: fp}
		return cost.DefaultWeights.Cost(l)
	}

	// Query points model a sizing loop that revisits the neighbourhood of
	// good design points: half are drawn inside a stored placement's
	// validity box (covered region — the structure answers), half jitter
	// ±10% around a stored best point and may leave covered space (the
	// backup answers, as §3.1.4 prescribes). Uniform random vectors in the
	// 16-dimensional size space would almost never be covered at this tiny
	// demo budget and would hide the comparison entirely.
	ids := s.IDs()
	rng := rand.New(rand.NewSource(99))
	var mpsCosts, tplCosts, saCosts []float64
	var mpsTime, tplTime, saTime time.Duration
	backupHits := 0

	for q := 0; q < queries; q++ {
		ws := make([]int, circuit.N())
		hs := make([]int, circuit.N())
		seed := s.Get(ids[rng.Intn(len(ids))])
		if q%2 == 0 {
			// Inside the seed placement's box: covered by construction.
			for i := range circuit.Blocks {
				ws[i] = seed.WLo[i] + rng.Intn(seed.WHi[i]-seed.WLo[i]+1)
				hs[i] = seed.HLo[i] + rng.Intn(seed.HHi[i]-seed.HLo[i]+1)
			}
		} else {
			for i, b := range circuit.Blocks {
				jw := (b.WMax - b.WMin) / 10
				jh := (b.HMax - b.HMin) / 10
				ws[i] = b.WRange().Clamp(seed.BestW[i] + rng.Intn(2*jw+1) - jw)
				hs[i] = b.HRange().Clamp(seed.BestH[i] + rng.Intn(2*jh+1) - jh)
			}
		}

		t0 := time.Now()
		res, err := s.Instantiate(ws, hs)
		mpsTime += time.Since(t0)
		if err != nil {
			log.Fatal(err)
		}
		if res.FromBackup {
			backupHits++
		}
		mpsCosts = append(mpsCosts, evaluate(res.X, res.Y, ws, hs))

		t0 = time.Now()
		tx, ty, err := tpl.Place(ws, hs)
		tplTime += time.Since(t0)
		if err != nil {
			log.Fatal(err)
		}
		tplCosts = append(tplCosts, evaluate(tx, ty, ws, hs))

		t0 = time.Now()
		sa, err := optplace.Place(circuit, fp, ws, hs, optplace.Config{Steps: 2500, Seed: int64(q)})
		saTime += time.Since(t0)
		if err != nil {
			log.Fatal(err)
		}
		saCosts = append(saCosts, sa.Cost)
	}

	tb := stats.NewTable("approach", "mean cost", "min", "max", "mean latency")
	add := func(name string, costs []float64, total time.Duration) {
		sm := stats.Summarize(costs)
		tb.AddRow(name, sm.Mean, sm.Min, sm.Max, (total / queries).String())
	}
	add("multi-placement structure", mpsCosts, mpsTime)
	add("fixed template", tplCosts, tplTime)
	add("per-query annealing", saCosts, saTime)
	tb.Render(log.Writer())

	fmt.Printf("\nqueries answered by backup template: %d/%d\n", backupHits, queries)
	fmt.Println(`
reading the table:
  - per-query annealing finds the best layouts but pays ~100-1000x the
    latency per placement call — unusable inside a sizing loop (paper §1);
  - the structure and the template both answer in microseconds. At this
    demo-scale generation budget most stored regions were explored once and
    never contested, so the compact slicing template often wins on raw
    cost. The paper's structures were generated for 21 minutes - 4 hours,
    by which point every region has competed many times (see Figure 6 in
    EXPERIMENTS.md, where per-point selection beats any fixed placement);
  - raise mps.Options.Effort (or Iterations/BDIOSteps) to trade one-time
    generation minutes for per-region quality.`)
}
