package mps

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"
)

// tinyOpts keeps Run tests in the milliseconds: explicit small budgets
// beat even the quick preset.
func tinyOpts(seed int64) Options {
	return Options{Seed: seed, Iterations: 12, BDIOSteps: 30}
}

// TestRunSingleMatchesGenerate pins that Run with K == 0 and the default
// backend is GenerateContext — byte for byte.
func TestRunSingleMatchesGenerate(t *testing.T) {
	c, err := Benchmark("circ01")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Request{Circuit: c, Options: tinyOpts(9)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Structure == nil || res.Portfolio != nil || len(res.Stats) != 1 {
		t.Fatalf("single-structure result shape wrong: %+v", res)
	}
	legacy, _, err := Generate(c, tinyOpts(9))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := res.Structure.SaveBinary(&a); err != nil {
		t.Fatal(err)
	}
	if err := legacy.SaveBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Run(K=0, default backend) differs from Generate")
	}
}

func TestRunGABackend(t *testing.T) {
	c, err := Benchmark("circ01")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Request{Circuit: c, Options: tinyOpts(2), Backend: "ga"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Structure.NumPlacements() == 0 {
		t.Error("GA backend stored no placements")
	}
	rng := rand.New(rand.NewSource(4))
	ws, hs := randomDims(c, rng)
	if _, err := res.Structure.Instantiate(ws, hs); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownBackend(t *testing.T) {
	c, err := Benchmark("circ01")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), Request{Circuit: c, Options: tinyOpts(1), Backend: "bogus"})
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	for _, want := range []string{`"bogus"`, "anneal", "ga"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}

	// Member backends are validated before any generation starts.
	_, err = Run(context.Background(), Request{
		Circuit: c, Options: tinyOpts(1), K: 2, MemberBackends: []string{"anneal", "bogus"},
	})
	if err == nil || !strings.Contains(err.Error(), "member 1") {
		t.Errorf("bad member backend error = %v, want a member-1 mention", err)
	}
}

// TestRunPortfolioMixedBackends: a 2-member portfolio with one anneal
// and one GA member routes queries across both, and each member is
// bit-identical to the same backend run standalone from the derived
// member seed and the same ladder weights — the dedup rule the serving
// layer relies on. (A weightless K>1 request gets the default weight
// ladder, so the standalone runs name their ladder rung explicitly.)
func TestRunPortfolioMixedBackends(t *testing.T) {
	c, err := Benchmark("circ01")
	if err != nil {
		t.Fatal(err)
	}
	opts := tinyOpts(5)
	res, err := Run(context.Background(), Request{
		Circuit: c, Options: opts, K: 2, MemberBackends: []string{"anneal", "ga"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Portfolio == nil || res.Structure != nil {
		t.Fatalf("portfolio result shape wrong: %+v", res)
	}
	if got := res.Portfolio.K(); got != 2 {
		t.Fatalf("K() = %d, want 2", got)
	}
	if len(res.Stats) != 2 {
		t.Fatalf("len(Stats) = %d, want 2", len(res.Stats))
	}

	for i, backend := range []string{"anneal", "ga"} {
		mopts := opts
		mopts.Seed = PortfolioMemberSeed(opts.Seed, i)
		solo, err := Run(context.Background(), Request{
			Circuit: c, Options: mopts, Backend: backend, Weights: WeightLadder(2)[i],
		})
		if err != nil {
			t.Fatal(err)
		}
		var a, b bytes.Buffer
		if err := solo.Structure.SaveBinary(&a); err != nil {
			t.Fatal(err)
		}
		ms := &Structure{Structure: res.Portfolio.Member(i)}
		if err := ms.SaveBinary(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("member %d (%s) differs from a standalone run at its derived seed", i, backend)
		}
	}

	rng := rand.New(rand.NewSource(6))
	for q := 0; q < 32; q++ {
		ws, hs := randomDims(c, rng)
		pres, err := res.Portfolio.Instantiate(ws, hs)
		if err != nil {
			t.Fatal(err)
		}
		if pres.Member < -1 || pres.Member > 1 {
			t.Fatalf("routed to member %d of a 2-member portfolio", pres.Member)
		}
	}
}

func TestRunRejectsBadShapes(t *testing.T) {
	c, err := Benchmark("circ01")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), Request{Options: tinyOpts(1)}); err == nil {
		t.Error("nil circuit accepted")
	}
	if _, err := Run(context.Background(), Request{Circuit: c, Options: tinyOpts(1), K: -1}); err == nil {
		t.Error("negative K accepted")
	}
	if _, err := Run(context.Background(), Request{Circuit: c, Options: tinyOpts(1), K: MaxPortfolioMembers + 1}); err == nil {
		t.Error("oversized K accepted")
	}
	if _, err := Run(context.Background(), Request{
		Circuit: c, Options: tinyOpts(1), K: 3, MemberBackends: []string{"ga"},
	}); err == nil {
		t.Error("mismatched MemberBackends length accepted")
	}
	if _, err := Run(context.Background(), Request{
		Circuit: c, Options: tinyOpts(1), MemberBackends: []string{"ga"},
	}); err == nil {
		t.Error("MemberBackends on a single-structure request accepted")
	}
	if _, err := Run(context.Background(), Request{
		Circuit: c, Options: tinyOpts(1), MemberWeights: []Weights{{Wire: 1}},
	}); err == nil {
		t.Error("MemberWeights on a single-structure request accepted")
	}
	if _, err := Run(context.Background(), Request{
		Circuit: c, Options: tinyOpts(1), K: 3, MemberWeights: []Weights{{Wire: 1}},
	}); err == nil {
		t.Error("mismatched MemberWeights length accepted")
	}
	if _, err := Run(context.Background(), Request{
		Circuit: c, Options: tinyOpts(1), Weights: Weights{Wire: -1},
	}); err == nil {
		t.Error("negative request weights accepted")
	}
	if _, err := Run(context.Background(), Request{
		Circuit: c, Options: tinyOpts(1), K: 2, MemberWeights: []Weights{{Wire: 1}, {Area: -2}},
	}); err == nil {
		t.Error("negative member weights accepted")
	}
}

// TestRunWeightLadderDefault pins the weight-diversity default: a
// weightless K>1 request records the ladder on its members, an explicit
// all-zero MemberWeights opts out, and each ladder member is
// bit-identical to a standalone run naming that rung — so the ladder
// changes which objective members optimize, never how a given
// (seed, weights) generation behaves.
func TestRunWeightLadderDefault(t *testing.T) {
	c, err := Benchmark("circ01")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Request{Circuit: c, Options: tinyOpts(9), K: 2})
	if err != nil {
		t.Fatal(err)
	}
	ladder := WeightLadder(2)
	got := res.Portfolio.MemberWeights()
	for i := range ladder {
		if got[i] != ladder[i] {
			t.Errorf("member %d weights %+v, want ladder rung %+v", i, got[i], ladder[i])
		}
	}

	optOut, err := Run(context.Background(), Request{
		Circuit: c, Options: tinyOpts(9), K: 2, MemberWeights: make([]Weights, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, w := range optOut.Portfolio.MemberWeights() {
		if !w.IsZero() {
			t.Errorf("opted-out member %d weights %+v, want zero", i, w)
		}
	}

	// Ladder member 1 == standalone wire-heavy run at the derived seed.
	mopts := tinyOpts(9)
	mopts.Seed = PortfolioMemberSeed(9, 1)
	solo, err := Run(context.Background(), Request{Circuit: c, Options: mopts, Weights: ladder[1]})
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := solo.Structure.SaveBinary(&a); err != nil {
		t.Fatal(err)
	}
	ms := &Structure{Structure: res.Portfolio.Member(1)}
	if err := ms.SaveBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("ladder member 1 differs from a standalone wire-heavy run at its derived seed")
	}

	// The opt-out portfolio is the historical seed-only artifact: its
	// members match the deprecated wrapper's output bit for bit.
	legacy, _, err := GeneratePortfolio(c, tinyOpts(9), 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		var x, y bytes.Buffer
		if err := (&Structure{Structure: optOut.Portfolio.Member(i)}).SaveBinary(&x); err != nil {
			t.Fatal(err)
		}
		if err := (&Structure{Structure: legacy.Member(i)}).SaveBinary(&y); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(x.Bytes(), y.Bytes()) {
			t.Errorf("opted-out member %d differs from the deprecated wrapper's member", i)
		}
	}
}
