package mps

import (
	"bytes"
	"context"
	"math/rand"
	"strings"
	"testing"
)

// tinyOpts keeps Run tests in the milliseconds: explicit small budgets
// beat even the quick preset.
func tinyOpts(seed int64) Options {
	return Options{Seed: seed, Iterations: 12, BDIOSteps: 30}
}

// TestRunSingleMatchesGenerate pins that Run with K == 0 and the default
// backend is GenerateContext — byte for byte.
func TestRunSingleMatchesGenerate(t *testing.T) {
	c, err := Benchmark("circ01")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Request{Circuit: c, Options: tinyOpts(9)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Structure == nil || res.Portfolio != nil || len(res.Stats) != 1 {
		t.Fatalf("single-structure result shape wrong: %+v", res)
	}
	legacy, _, err := Generate(c, tinyOpts(9))
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := res.Structure.SaveBinary(&a); err != nil {
		t.Fatal(err)
	}
	if err := legacy.SaveBinary(&b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a.Bytes(), b.Bytes()) {
		t.Error("Run(K=0, default backend) differs from Generate")
	}
}

func TestRunGABackend(t *testing.T) {
	c, err := Benchmark("circ01")
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(context.Background(), Request{Circuit: c, Options: tinyOpts(2), Backend: "ga"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Structure.NumPlacements() == 0 {
		t.Error("GA backend stored no placements")
	}
	rng := rand.New(rand.NewSource(4))
	ws, hs := randomDims(c, rng)
	if _, err := res.Structure.Instantiate(ws, hs); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownBackend(t *testing.T) {
	c, err := Benchmark("circ01")
	if err != nil {
		t.Fatal(err)
	}
	_, err = Run(context.Background(), Request{Circuit: c, Options: tinyOpts(1), Backend: "bogus"})
	if err == nil {
		t.Fatal("unknown backend accepted")
	}
	for _, want := range []string{`"bogus"`, "anneal", "ga"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %s", err, want)
		}
	}

	// Member backends are validated before any generation starts.
	_, err = Run(context.Background(), Request{
		Circuit: c, Options: tinyOpts(1), K: 2, MemberBackends: []string{"anneal", "bogus"},
	})
	if err == nil || !strings.Contains(err.Error(), "member 1") {
		t.Errorf("bad member backend error = %v, want a member-1 mention", err)
	}
}

// TestRunPortfolioMixedBackends: a 2-member portfolio with one anneal
// and one GA member routes queries across both, and each member is
// bit-identical to the same backend run standalone from the derived
// member seed — the dedup rule the serving layer relies on.
func TestRunPortfolioMixedBackends(t *testing.T) {
	c, err := Benchmark("circ01")
	if err != nil {
		t.Fatal(err)
	}
	opts := tinyOpts(5)
	res, err := Run(context.Background(), Request{
		Circuit: c, Options: opts, K: 2, MemberBackends: []string{"anneal", "ga"},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Portfolio == nil || res.Structure != nil {
		t.Fatalf("portfolio result shape wrong: %+v", res)
	}
	if got := res.Portfolio.K(); got != 2 {
		t.Fatalf("K() = %d, want 2", got)
	}
	if len(res.Stats) != 2 {
		t.Fatalf("len(Stats) = %d, want 2", len(res.Stats))
	}

	for i, backend := range []string{"anneal", "ga"} {
		mopts := opts
		mopts.Seed = PortfolioMemberSeed(opts.Seed, i)
		solo, err := Run(context.Background(), Request{Circuit: c, Options: mopts, Backend: backend})
		if err != nil {
			t.Fatal(err)
		}
		var a, b bytes.Buffer
		if err := solo.Structure.SaveBinary(&a); err != nil {
			t.Fatal(err)
		}
		ms := &Structure{Structure: res.Portfolio.Member(i)}
		if err := ms.SaveBinary(&b); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a.Bytes(), b.Bytes()) {
			t.Errorf("member %d (%s) differs from a standalone run at its derived seed", i, backend)
		}
	}

	rng := rand.New(rand.NewSource(6))
	for q := 0; q < 32; q++ {
		ws, hs := randomDims(c, rng)
		pres, err := res.Portfolio.Instantiate(ws, hs)
		if err != nil {
			t.Fatal(err)
		}
		if pres.Member < -1 || pres.Member > 1 {
			t.Fatalf("routed to member %d of a 2-member portfolio", pres.Member)
		}
	}
}

func TestRunRejectsBadShapes(t *testing.T) {
	c, err := Benchmark("circ01")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(context.Background(), Request{Options: tinyOpts(1)}); err == nil {
		t.Error("nil circuit accepted")
	}
	if _, err := Run(context.Background(), Request{Circuit: c, Options: tinyOpts(1), K: -1}); err == nil {
		t.Error("negative K accepted")
	}
	if _, err := Run(context.Background(), Request{Circuit: c, Options: tinyOpts(1), K: MaxPortfolioMembers + 1}); err == nil {
		t.Error("oversized K accepted")
	}
	if _, err := Run(context.Background(), Request{
		Circuit: c, Options: tinyOpts(1), K: 3, MemberBackends: []string{"ga"},
	}); err == nil {
		t.Error("mismatched MemberBackends length accepted")
	}
	if _, err := Run(context.Background(), Request{
		Circuit: c, Options: tinyOpts(1), MemberBackends: []string{"ga"},
	}); err == nil {
		t.Error("MemberBackends on a single-structure request accepted")
	}
}
