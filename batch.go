package mps

// This file implements the concurrent batched query engine over the
// compiled query index — the serving hot path of the paper's Fig. 1b.
// Inside a sizing loop (or behind cmd/mpsd) queries arrive in batches;
// fanning them across a bounded worker pool turns the structure's
// near-constant per-query time into near-linear multicore throughput.
// Batches query the flat CompiledStructure (compiled lazily on first
// batch, cached thereafter), which is safe for concurrent readers (its
// query scratch is pooled), so workers share the index directly with no
// locking on the hot path.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DimQuery is one placement request: per-block widths and heights in block
// order, exactly the arguments of Structure.Instantiate.
type DimQuery struct {
	Ws []int
	Hs []int
}

// BatchResult pairs one query's instantiation result with its error, so a
// single invalid query fails alone rather than aborting the whole batch.
type BatchResult struct {
	Result
	Err error
}

// batchChunk is the number of queries a worker claims at a time. Chunking
// amortizes the atomic fetch-add across queries; individual queries are
// sub-microsecond, so per-query work stealing would be all contention.
const batchChunk = 32

// serialBatchThreshold is the batch size below which fan-out overhead
// (goroutine startup, the final barrier) exceeds the parallel win and
// InstantiateBatch runs serially instead.
const serialBatchThreshold = 2 * batchChunk

// InstantiateBatch answers every query and returns results in query order,
// fanning the batch across a worker pool bounded by GOMAXPROCS. Small
// batches run serially. The structure must not be mutated concurrently
// (it never is after Generate/LoadFile return).
func (s *Structure) InstantiateBatch(queries []DimQuery) []BatchResult {
	return s.InstantiateBatchWorkers(queries, 0)
}

// InstantiateBatchWorkers is InstantiateBatch with an explicit worker
// bound: workers <= 0 selects GOMAXPROCS, 1 forces serial execution.
// Batches below serialBatchThreshold run serially regardless of workers —
// the bound caps fan-out, it does not force it.
func (s *Structure) InstantiateBatchWorkers(queries []DimQuery, workers int) []BatchResult {
	out := make([]BatchResult, len(queries))
	cs := s.Compiled()
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if max := (len(queries) + batchChunk - 1) / batchChunk; workers > max {
		workers = max
	}
	if workers <= 1 || len(queries) < serialBatchThreshold {
		instantiateRange(cs, queries, out, 0, len(queries))
		return out
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				end := int(next.Add(batchChunk))
				start := end - batchChunk
				if start >= len(queries) {
					return
				}
				if end > len(queries) {
					end = len(queries)
				}
				instantiateRange(cs, queries, out, start, end)
			}
		}()
	}
	wg.Wait()
	return out
}

// instantiateRange answers queries[start:end] into out[start:end] from the
// compiled index.
func instantiateRange(cs *CompiledStructure, queries []DimQuery, out []BatchResult, start, end int) {
	for i := start; i < end; i++ {
		res, err := cs.Instantiate(queries[i].Ws, queries[i].Hs)
		out[i] = BatchResult{Result: res, Err: err}
	}
}
