package mps

// This file implements the concurrent batched query engine over the
// compiled query index — the serving hot path of the paper's Fig. 1b.
// Inside a sizing loop (or behind cmd/mpsd) queries arrive in batches;
// fanning them across a bounded worker pool turns the structure's
// near-constant per-query time into near-linear multicore throughput.
// Batches query the flat CompiledStructure (compiled lazily on first
// batch, cached thereafter), which is safe for concurrent readers (its
// query scratch is pooled), so workers share the index directly with no
// locking on the hot path. Portfolio batches ride the same pool: the
// per-query function routes through the best covering member instead of a
// single index.

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// DimQuery is one placement request: per-block widths and heights in block
// order, exactly the arguments of Structure.Instantiate.
type DimQuery struct {
	Ws []int
	Hs []int
	// Weights optionally routes this query by weighted per-objective cost
	// in portfolio batches (see Portfolio.InstantiateWeighted). The zero
	// vector is the default area-then-deadspace rule; single-structure
	// batches ignore it (there is only one member to route to).
	Weights Weights
}

// BatchResult pairs one query's instantiation result with its error, so a
// single invalid query fails alone rather than aborting the whole batch.
type BatchResult struct {
	Result
	// Member is the portfolio member that answered (portfolio batches):
	// the member index for routed answers, -1 when the backup answered or
	// the query errored. Single-structure batches report 0 for stored
	// answers and -1 otherwise, so Member >= 0 always means a stored
	// placement answered.
	Member int
	Err    error
}

// batchChunk is the number of queries a worker claims at a time. Chunking
// amortizes the atomic fetch-add across queries; individual queries are
// sub-microsecond, so per-query work stealing would be all contention.
const batchChunk = 32

// serialBatchThreshold is the batch size below which fan-out overhead
// (goroutine startup, the final barrier) exceeds the parallel win and
// InstantiateBatch runs serially instead.
const serialBatchThreshold = 2 * batchChunk

// batchWorkers resolves how many goroutines a batch fans out across — the
// one place the worker count is decided, pinned by TestBatchWorkersClamp.
// workers <= 0 selects GOMAXPROCS; the count is then clamped to the number
// of batchChunk-sized chunks so small parallel batches never spawn workers
// with no chunk to claim; 1 (also chosen for every batch below
// serialBatchThreshold) means "run serially, spawn nothing".
func batchWorkers(numQueries, workers int) int {
	if numQueries < serialBatchThreshold {
		return 1
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if chunks := (numQueries + batchChunk - 1) / batchChunk; workers > chunks {
		workers = chunks
	}
	if workers < 1 {
		workers = 1
	}
	return workers
}

// runBatch answers every query via fn and returns results in query order,
// fanning the batch across batchWorkers goroutines. fn must be safe for
// concurrent calls and writes its answer into out.
func runBatch(queries []DimQuery, workers int, fn func(q DimQuery, out *BatchResult)) []BatchResult {
	out := make([]BatchResult, len(queries))
	if workers = batchWorkers(len(queries), workers); workers == 1 {
		for i := range queries {
			fn(queries[i], &out[i])
		}
		return out
	}

	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				end := int(next.Add(batchChunk))
				start := end - batchChunk
				if start >= len(queries) {
					return
				}
				if end > len(queries) {
					end = len(queries)
				}
				for i := start; i < end; i++ {
					fn(queries[i], &out[i])
				}
			}
		}()
	}
	wg.Wait()
	return out
}

// InstantiateBatch answers every query and returns results in query order,
// fanning the batch across a worker pool bounded by GOMAXPROCS. Small
// batches run serially. The structure must not be mutated concurrently
// (it never is after Generate/LoadFile return).
func (s *Structure) InstantiateBatch(queries []DimQuery) []BatchResult {
	return s.InstantiateBatchWorkers(queries, 0)
}

// InstantiateBatchWorkers is InstantiateBatch with an explicit worker
// bound: workers <= 0 selects GOMAXPROCS, 1 forces serial execution.
// Batches below serialBatchThreshold run serially regardless of workers —
// the bound caps fan-out, it does not force it.
func (s *Structure) InstantiateBatchWorkers(queries []DimQuery, workers int) []BatchResult {
	cs := s.Compiled()
	return runBatch(queries, workers, func(q DimQuery, out *BatchResult) {
		res, err := cs.Instantiate(q.Ws, q.Hs)
		out.Result, out.Err = res, err
		if err != nil || res.FromBackup {
			out.Member = -1
		}
	})
}

// InstantiateBatch answers every query through best-of-K routing and
// returns results in query order; see Structure.InstantiateBatch for the
// fan-out contract. Each result's Member records the answering member.
func (p *Portfolio) InstantiateBatch(queries []DimQuery) []BatchResult {
	return p.InstantiateBatchWorkers(queries, 0)
}

// InstantiateBatchWorkers is the portfolio InstantiateBatch with an
// explicit worker bound, mirroring Structure.InstantiateBatchWorkers.
// Queries carrying a non-zero Weights vector route by weighted cost;
// the rest take the default area rule unchanged.
func (p *Portfolio) InstantiateBatchWorkers(queries []DimQuery, workers int) []BatchResult {
	return runBatch(queries, workers, func(q DimQuery, out *BatchResult) {
		out.Member, out.Err = p.InstantiateWeightedInto(&out.Result, q.Weights, q.Ws, q.Hs)
	})
}
