package mps

import (
	"math/rand"
	"path/filepath"
	"reflect"
	"runtime"
	"testing"

	"mps/internal/seqpair"
	"mps/internal/template"
)

// genQuickPortfolio builds a K=3 quick-effort portfolio for the circuit.
func genQuickPortfolio(t testing.TB, name string, seed int64) (*Portfolio, *Circuit) {
	t.Helper()
	c, err := Benchmark(name)
	if err != nil {
		t.Fatal(err)
	}
	p, stats, err := GeneratePortfolio(c, quickOpts(seed), 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("got %d member stats, want 3", len(stats))
	}
	return p, c
}

// TestGeneratePortfolioMembersMatchSingles pins the dedup property behind
// the serving layer's fan-out: portfolio member i is bit-identical to the
// single structure generated with the derived member seed, so member jobs
// and single-structure jobs share cache and store entries.
func TestGeneratePortfolioMembersMatchSingles(t *testing.T) {
	p, c := genQuickPortfolio(t, "circ01", 42)
	for i := 0; i < p.K(); i++ {
		opts := quickOpts(PortfolioMemberSeed(42, i))
		single, _, err := Generate(c, opts)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := p.Member(i).NumPlacements(), single.NumPlacements(); got != want {
			t.Errorf("member %d: %d placements, standalone generation stored %d", i, got, want)
		}
		rng := rand.New(rand.NewSource(int64(i)))
		for trial := 0; trial < 200; trial++ {
			ws, hs := randomDims(c, rng)
			a := p.Member(i).Lookup(ws, hs)
			b := single.Lookup(ws, hs)
			if !reflect.DeepEqual(a, b) {
				t.Fatalf("member %d diverges from standalone generation at %v/%v: %v vs %v", i, ws, hs, a, b)
			}
		}
	}
}

// TestPortfolioBatchMatchesSerial checks the portfolio batch path against
// query-at-a-time routing, serial and parallel, including the Member
// bookkeeping.
func TestPortfolioBatchMatchesSerial(t *testing.T) {
	p, c := genQuickPortfolio(t, "TwoStageOpamp", 7)
	rng := rand.New(rand.NewSource(2))
	queries := make([]DimQuery, 300)
	for i := range queries {
		ws, hs := randomDims(c, rng)
		queries[i] = DimQuery{Ws: ws, Hs: hs}
	}
	for _, workers := range []int{1, 0, 4} {
		batch := p.InstantiateBatchWorkers(queries, workers)
		if len(batch) != len(queries) {
			t.Fatalf("workers=%d: %d results for %d queries", workers, len(batch), len(queries))
		}
		for i, br := range batch {
			if br.Err != nil {
				t.Fatalf("workers=%d query %d: %v", workers, i, br.Err)
			}
			want, err := p.Instantiate(queries[i].Ws, queries[i].Hs)
			if err != nil {
				t.Fatal(err)
			}
			if br.Member != want.Member || br.PlacementID != want.PlacementID ||
				!reflect.DeepEqual(br.X, want.X) || !reflect.DeepEqual(br.Y, want.Y) {
				t.Fatalf("workers=%d query %d: batch %+v, serial %+v", workers, i, br, want)
			}
			if (br.Member < 0) != br.FromBackup {
				t.Fatalf("workers=%d query %d: Member %d inconsistent with FromBackup %v",
					workers, i, br.Member, br.FromBackup)
			}
		}
	}
}

// TestPortfolioSaveLoadFiles round-trips a portfolio through member files
// and checks the loaded portfolio routes identically.
func TestPortfolioSaveLoadFiles(t *testing.T) {
	p, c := genQuickPortfolio(t, "circ01", 9)
	dir := t.TempDir()
	paths := []string{
		filepath.Join(dir, "m0.mps"),
		filepath.Join(dir, "m1.mps"),
		filepath.Join(dir, "m2.mps"),
	}
	if err := p.SaveFiles(paths[:2]); err == nil {
		t.Error("SaveFiles with too few paths succeeded, want error")
	}
	if err := p.SaveFiles(paths); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadPortfolio(paths, c)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.K() != p.K() || loaded.NumPlacements() != p.NumPlacements() {
		t.Fatalf("loaded K=%d placements=%d, want K=%d placements=%d",
			loaded.K(), loaded.NumPlacements(), p.K(), p.NumPlacements())
	}
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 500; trial++ {
		ws, hs := randomDims(c, rng)
		a, err := p.Instantiate(ws, hs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := loaded.Instantiate(ws, hs)
		if err != nil {
			t.Fatal(err)
		}
		// PlacementID is deliberately not compared: saving renumbers IDs
		// densely (generation leaves holes), but routing and anchors must
		// survive the round trip bit-exactly.
		if a.Member != b.Member || a.FromBackup != b.FromBackup ||
			!reflect.DeepEqual(a.X, b.X) || !reflect.DeepEqual(a.Y, b.Y) {
			t.Fatalf("loaded portfolio diverges at %v/%v:\noriginal %+v\nloaded   %+v", ws, hs, a, b)
		}
	}

	if _, err := LoadPortfolio(nil, c); err == nil {
		t.Error("LoadPortfolio with no paths succeeded, want error")
	}
	if _, err := LoadPortfolio([]string{filepath.Join(dir, "absent.mps")}, c); err == nil {
		t.Error("LoadPortfolio with a missing member file succeeded, want error")
	}
}

// TestBatchWorkersClamp is the regression test for batch fan-out
// over-spawn: the worker count must never exceed the number of
// batchChunk-sized chunks, so no spawned goroutine can find the cursor
// already past the end. It pins the full decision table of batchWorkers —
// the single place InstantiateBatchWorkers (structure and portfolio)
// resolves its goroutine count.
func TestBatchWorkersClamp(t *testing.T) {
	gomax := runtime.GOMAXPROCS(0)
	cases := []struct {
		queries, workers, want int
	}{
		{0, 0, 1},                         // empty batch: serial
		{1, 8, 1},                         // below the serial threshold
		{serialBatchThreshold - 1, 64, 1}, // still below the threshold
		{serialBatchThreshold, 64, 2},     // 64 queries = exactly 2 chunks
		{65, 64, 3},                       // 3 chunks cap 64 requested workers
		{6 * batchChunk, 4, 4},            // requested bound below chunk count holds
		{1024, 1, 1},                      // explicit serial
		{1 << 20, 7, 7},                   // large batch keeps the requested bound
	}
	for _, tc := range cases {
		if got := batchWorkers(tc.queries, tc.workers); got != tc.want {
			t.Errorf("batchWorkers(%d, %d) = %d, want %d", tc.queries, tc.workers, got, tc.want)
		}
	}
	// workers <= 0 resolves to GOMAXPROCS and is then chunk-clamped.
	if got, want := batchWorkers(serialBatchThreshold, 0), min(gomax, 2); got != want {
		t.Errorf("batchWorkers(%d, 0) = %d, want min(GOMAXPROCS, 2) = %d", serialBatchThreshold, got, want)
	}
	big := 1 << 20
	if got, want := batchWorkers(big, 0), min(gomax, (big+batchChunk-1)/batchChunk); got != want {
		t.Errorf("batchWorkers(%d, 0) = %d, want %d", big, got, want)
	}
	// The invariant itself: worker count never exceeds chunk count, for
	// any batch size and any requested bound.
	for queries := 0; queries <= 8*batchChunk; queries++ {
		for _, workers := range []int{-1, 0, 1, 2, 3, 16, 1024} {
			got := batchWorkers(queries, workers)
			chunks := (queries + batchChunk - 1) / batchChunk
			if got > 1 && got > chunks {
				t.Fatalf("batchWorkers(%d, %d) = %d exceeds %d chunks — over-spawn", queries, workers, got, chunks)
			}
		}
	}
}

// TestSetBackupKindReachesCompiledPaths is the regression test for the
// suspected stale-backup bug: swapping the backup after the compiled
// index was built (and after batch queries warmed it) must be visible on
// every query path — single compiled queries and batches alike — without
// invalidating the index, because the index never captures the backup.
func TestSetBackupKindReachesCompiledPaths(t *testing.T) {
	c, err := Benchmark("TwoStageOpamp")
	if err != nil {
		t.Fatal(err)
	}
	s, _, err := Generate(c, quickOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	cs := s.Compiled() // build and cache the index with the tree backup installed

	// Find an uncovered query: it must exist (quick-effort coverage is a
	// tiny fraction of the space).
	rng := rand.New(rand.NewSource(4))
	var ws, hs []int
	for {
		ws, hs = randomDims(c, rng)
		res, err := s.Instantiate(ws, hs)
		if err != nil {
			t.Fatal(err)
		}
		if res.FromBackup {
			break
		}
	}

	place := func(b interface {
		Place(ws, hs []int) (x, y []int, err error)
	}) ([]int, []int) {
		x, y, err := b.Place(ws, hs)
		if err != nil {
			t.Fatal(err)
		}
		return x, y
	}
	tmplX, tmplY := place(template.Balanced(c))
	spX, spY := place(seqpair.NewBackup(c))
	if reflect.DeepEqual(tmplX, spX) && reflect.DeepEqual(tmplY, spY) {
		t.Fatal("template and seqpair backups agree on the probe query; pick another seed")
	}

	check := func(wantX, wantY []int, backend string) {
		t.Helper()
		res, err := s.Instantiate(ws, hs)
		if err != nil {
			t.Fatal(err)
		}
		if !res.FromBackup || !reflect.DeepEqual(res.X, wantX) || !reflect.DeepEqual(res.Y, wantY) {
			t.Fatalf("compiled Instantiate did not answer from the %s backup: %+v", backend, res)
		}
		batch := s.InstantiateBatch([]DimQuery{{Ws: ws, Hs: hs}})
		if batch[0].Err != nil {
			t.Fatal(batch[0].Err)
		}
		if !batch[0].FromBackup || !reflect.DeepEqual(batch[0].X, wantX) || !reflect.DeepEqual(batch[0].Y, wantY) {
			t.Fatalf("InstantiateBatch did not answer from the %s backup: %+v", backend, batch[0])
		}
	}

	check(tmplX, tmplY, "template")
	s.SetBackupKind(BackupSequencePair)
	check(spX, spY, "seqpair")
	s.SetBackupKind(BackupSlicingTree)
	check(tmplX, tmplY, "template")

	// The swaps must not have invalidated the compiled index: rebuilding
	// it would silently re-pay compile cost on every backup change.
	if s.Compiled() != cs {
		t.Error("SetBackupKind invalidated the compiled index; the index never captures the backup, so this is pure waste")
	}
}
