package mps

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
)

// batchTestStructure caches one quick TwoStageOpamp structure for the batch
// tests so each test doesn't pay a fresh generation run.
var batchTestStructure = struct {
	once sync.Once
	s    *Structure
	err  error
}{}

func batchStructure(t *testing.T) *Structure {
	t.Helper()
	bt := &batchTestStructure
	bt.once.Do(func() {
		c, err := Benchmark("TwoStageOpamp")
		if err != nil {
			bt.err = err
			return
		}
		bt.s, _, bt.err = Generate(c, quickOpts(1))
	})
	if bt.err != nil {
		t.Fatal(bt.err)
	}
	return bt.s
}

// randomQueries builds in-bounds random queries; covered and uncovered
// vectors both occur, so the backup path is exercised too.
func randomQueries(c *Circuit, rng *rand.Rand, n int) []DimQuery {
	qs := make([]DimQuery, n)
	for i := range qs {
		ws, hs := randomDims(c, rng)
		qs[i] = DimQuery{Ws: ws, Hs: hs}
	}
	return qs
}

// asBatchResult wraps a serial Instantiate answer in the BatchResult the
// batch path produces, including the Member convention (-1 for backup or
// errored answers, 0 for stored answers on a single structure).
func asBatchResult(res Result, err error) BatchResult {
	br := BatchResult{Result: res, Err: err}
	if err != nil || res.FromBackup {
		br.Member = -1
	}
	return br
}

// TestInstantiateBatchMatchesSerial checks the worker pool returns, in query
// order, exactly what serial Instantiate calls return.
func TestInstantiateBatchMatchesSerial(t *testing.T) {
	s := batchStructure(t)
	rng := rand.New(rand.NewSource(42))
	queries := randomQueries(s.Circuit(), rng, 500)

	want := make([]BatchResult, len(queries))
	for i, q := range queries {
		res, err := s.Instantiate(q.Ws, q.Hs)
		want[i] = asBatchResult(res, err)
	}

	for _, workers := range []int{0, 1, 2, 8} {
		got := s.InstantiateBatchWorkers(queries, workers)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: batch results differ from serial execution", workers)
		}
	}
}

// TestInstantiateBatchInvalidQuery checks a single bad query fails alone
// without aborting its batch.
func TestInstantiateBatchInvalidQuery(t *testing.T) {
	s := batchStructure(t)
	rng := rand.New(rand.NewSource(7))
	queries := randomQueries(s.Circuit(), rng, 8)
	queries[3] = DimQuery{Ws: []int{1}, Hs: []int{1}} // wrong length

	out := s.InstantiateBatch(queries)
	for i, br := range out {
		if i == 3 {
			if br.Err == nil {
				t.Error("invalid query 3 should carry an error")
			}
			continue
		}
		if br.Err != nil {
			t.Errorf("query %d failed: %v", i, br.Err)
		}
	}
}

// TestInstantiateBatchEmptyAndSmall covers the serial fast path and the
// zero-length batch.
func TestInstantiateBatchEmptyAndSmall(t *testing.T) {
	s := batchStructure(t)
	if out := s.InstantiateBatch(nil); len(out) != 0 {
		t.Errorf("nil batch returned %d results", len(out))
	}
	rng := rand.New(rand.NewSource(9))
	queries := randomQueries(s.Circuit(), rng, 3)
	out := s.InstantiateBatch(queries)
	if len(out) != 3 {
		t.Fatalf("got %d results, want 3", len(out))
	}
	for i, br := range out {
		if br.Err != nil {
			t.Errorf("query %d: %v", i, br.Err)
		}
	}
}

// TestConcurrentInstantiate hammers one generated structure from many
// goroutines mixing direct Instantiate calls and InstantiateBatch, and
// asserts every answer is identical to serial execution. Run under -race
// this is the concurrency contract test for the whole query path
// (structure rows, pooled scratch, backup template).
func TestConcurrentInstantiate(t *testing.T) {
	s := batchStructure(t)
	rng := rand.New(rand.NewSource(1234))
	const nQueries = 400
	queries := randomQueries(s.Circuit(), rng, nQueries)

	want := make([]BatchResult, nQueries)
	for i, q := range queries {
		res, err := s.Instantiate(q.Ws, q.Hs)
		want[i] = asBatchResult(res, err)
	}

	const goroutines = 12
	var wg sync.WaitGroup
	errs := make(chan string, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			if g%3 == 0 {
				// Whole batch through the worker pool.
				got := s.InstantiateBatchWorkers(queries, 4)
				for i := range got {
					if !reflect.DeepEqual(got[i], want[i]) {
						errs <- "batch result diverged from serial"
						return
					}
				}
				return
			}
			// Direct single queries, each goroutine in its own order.
			for k := 0; k < nQueries; k++ {
				i := (k*7 + g*13) % nQueries
				res, err := s.Instantiate(queries[i].Ws, queries[i].Hs)
				if !reflect.DeepEqual(asBatchResult(res, err), want[i]) {
					errs <- "single result diverged from serial"
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for msg := range errs {
		t.Error(msg)
	}
}
