// Package explorer implements the Placement Explorer — the outer simulated
// annealing of the paper's nested generation algorithm (§3.1, Fig. 4).
//
// Each iteration follows the figure's flow exactly:
//
//	Placement Selector -> Placement Expansion -> BDIO -> Resolve Overlaps ->
//	Store Placement -> Accept New Placement? -> Perturb (or Restore)
//
// Every explored placement is resolved and stored (DESIGN.md D6); the
// Metropolis test on the BDIO's average cost only decides which placement
// seeds the next perturbation. The run stops on coverage target, placement
// budget, or iteration budget — whichever first (D7).
package explorer

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sync"
	"time"

	"mps/internal/anneal"
	"mps/internal/bdio"
	"mps/internal/core"
	"mps/internal/cost"
	"mps/internal/geom"
	"mps/internal/netlist"
	"mps/internal/placement"
)

// Config controls one generation run.
type Config struct {
	// Seed drives all randomness; runs with equal seeds and configs are
	// identical (when Chains == 1).
	Seed int64
	// MaxIterations bounds outer-SA steps. Default 300.
	MaxIterations int
	// MaxPlacements stops once the structure holds this many placements
	// (0 = unlimited).
	MaxPlacements int
	// TargetCoverage stops once exact volume coverage reaches this fraction
	// (0 = disabled). Practical only for small circuits (DESIGN.md D7).
	TargetCoverage float64
	// PerturbFraction is the share of blocks moved per perturbation
	// (paper §3.1.4: "a percentage value set by the user"). Default 0.3.
	PerturbFraction float64
	// MaxShift bounds per-block displacement during perturbation, in layout
	// units. Default: a quarter of the floorplan side.
	MaxShift int
	// ExpandStep is the units added per expansion increment. Default 1.
	ExpandStep int
	// Cooling is the outer-SA geometric cooling factor. Default 0.98.
	Cooling float64
	// InitialTemp for the outer SA; 0 calibrates from the first cost.
	InitialTemp float64
	// BDIO configures the inner annealer (its Rand field is ignored; the
	// explorer supplies one per chain).
	BDIO bdio.Config
	// Evaluator scores layouts. Default cost.DefaultWeights.
	Evaluator cost.Evaluator
	// Floorplan overrides placement.DefaultFloorplan when non-empty.
	Floorplan geom.Rect
	// Chains runs this many independent explorer chains feeding one
	// structure (extension; see DESIGN.md §6 ablations). Default 1.
	Chains int
	// Progress, when non-nil, observes each iteration. Called under the
	// structure lock; keep it fast.
	Progress func(Progress)
}

// Progress is one generation progress snapshot, reported once per outer
// iteration. Placements and Coverage describe the shared structure, so
// with multiple chains they advance monotonically even though Chain and
// Iteration interleave.
type Progress struct {
	// Chain is the reporting explorer chain, Iteration its outer-SA step.
	Chain     int
	Iteration int
	// Placements is the structure's current stored-placement count.
	Placements int
	// Coverage is the structure's exact covered volume fraction so far.
	Coverage float64
}

func (cfg Config) withDefaults(c *netlist.Circuit) Config {
	if cfg.MaxIterations == 0 {
		cfg.MaxIterations = 300
	}
	if cfg.PerturbFraction == 0 {
		cfg.PerturbFraction = 0.3
	}
	if cfg.ExpandStep == 0 {
		cfg.ExpandStep = 1
	}
	if cfg.Cooling == 0 {
		cfg.Cooling = 0.98
	}
	if cfg.Evaluator == nil {
		cfg.Evaluator = cost.DefaultWeights
	}
	if cfg.Floorplan.Empty() {
		cfg.Floorplan = placement.DefaultFloorplan(c)
	}
	if cfg.MaxShift == 0 {
		cfg.MaxShift = cfg.Floorplan.W() / 4
		if cfg.MaxShift < 1 {
			cfg.MaxShift = 1
		}
	}
	if cfg.Chains == 0 {
		cfg.Chains = 1
	}
	return cfg
}

// Stats summarizes a generation run — the raw material of Table 2.
type Stats struct {
	Iterations     int
	Stored         int // placements that survived resolve (pieces counted once per insert)
	CandidatesDied int
	Accepted       int
	Chains         int // explorer chains that fed the structure
	BestAvgCost    float64
	FinalCoverage  float64
	Duration       time.Duration
}

// Generate runs the Placement Explorer and returns the filled structure.
func Generate(c *netlist.Circuit, cfg Config) (*core.Structure, Stats, error) {
	return GenerateContext(context.Background(), c, cfg)
}

// GenerateContext is Generate with cooperative cancellation: the context's
// Done channel is checked between outer iterations and threaded into the
// inner annealer, so a cancelled generation stops within one BDIO proposal.
// On cancellation the context's error is returned and the partially filled
// structure is discarded — generation is all or nothing.
func GenerateContext(ctx context.Context, c *netlist.Circuit, cfg Config) (*core.Structure, Stats, error) {
	if err := c.Validate(); err != nil {
		return nil, Stats{}, fmt.Errorf("explorer: %w", err)
	}
	cfg = cfg.withDefaults(c)
	s := core.NewStructure(c, cfg.Floorplan)

	start := time.Now()
	var stats Stats
	stats.BestAvgCost = math.Inf(1)
	stats.Chains = cfg.Chains

	if cfg.Chains == 1 {
		if err := runChain(ctx, c, s, cfg, 0, rand.New(rand.NewSource(cfg.Seed)), &stats, nil); err != nil {
			return nil, stats, err
		}
	} else {
		var mu sync.Mutex
		var wg sync.WaitGroup
		errs := make([]error, cfg.Chains)
		for ch := 0; ch < cfg.Chains; ch++ {
			wg.Add(1)
			go func(ch int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(cfg.Seed + int64(ch)*7919))
				errs[ch] = runChain(ctx, c, s, cfg, ch, rng, &stats, &mu)
			}(ch)
		}
		wg.Wait()
		for _, err := range errs {
			if err != nil {
				return nil, stats, err
			}
		}
	}

	stats.FinalCoverage = s.Coverage()
	stats.Duration = time.Since(start)
	return s, stats, nil
}

// runChain executes one explorer chain. When mu is non-nil, structure
// access and stats updates are serialized across chains.
func runChain(ctx context.Context, c *netlist.Circuit, s *core.Structure, cfg Config, chain int, rng *rand.Rand, stats *Stats, mu *sync.Mutex) error {
	lock := func() {
		if mu != nil {
			mu.Lock()
		}
	}
	unlock := func() {
		if mu != nil {
			mu.Unlock()
		}
	}

	// Placement Selector: initial random legal placement at minimum dims.
	accepted, err := placement.RandomLegal(c, cfg.Floorplan, rng)
	if err != nil {
		return fmt.Errorf("explorer: %w", err)
	}
	acceptedCost := math.Inf(1)
	temp := cfg.InitialTemp
	cool := cfg.Cooling

	iters := cfg.MaxIterations / max(1, cfg.Chains)
	if iters < 1 {
		iters = 1
	}
	bcfg := cfg.BDIO
	bcfg.Rand = rng
	bcfg.Stop = ctx.Done()

	for it := 0; it < iters; it++ {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("explorer: generation cancelled: %w", err)
		}
		// Perturb Placement: the candidate's coordinates come from the last
		// accepted placement (paper: "Otherwise, the last accepted placement
		// is used"), moved with toroidal wrap. The first iteration explores
		// the selector's placement unperturbed. The move radius cools with
		// the annealing schedule so late iterations refine rather than
		// teleport (standard SA practice; the paper leaves the move size to
		// the user).
		base := accepted.Clone()
		if it > 0 {
			shift := cfg.MaxShift
			if iters > 1 {
				frac := 1.0 - 0.9*float64(it)/float64(iters-1)
				shift = int(float64(cfg.MaxShift) * frac)
				if shift < 2 {
					shift = 2
				}
			}
			base.Perturb(c, cfg.Floorplan, rng, cfg.PerturbFraction, shift)
		}

		// Placement Expansion grows the candidate's intervals.
		cand := base.Clone()
		cand.ResetToMin(c)
		cand.Expand(c, cfg.Floorplan, cfg.ExpandStep)

		// Inner annealer: shrink intervals, attach costs.
		res, err := bdio.Optimize(c, cand, cfg.Floorplan, cfg.Evaluator, bcfg)
		if err != nil {
			// A stop mid-BDIO is a cancellation, not an annealer fault: the
			// half-optimized candidate is discarded, never stored.
			if errors.Is(err, anneal.ErrStopped) {
				return fmt.Errorf("explorer: generation cancelled: %w", context.Cause(ctx))
			}
			return fmt.Errorf("explorer: %w", err)
		}

		// Resolve Overlaps + Store Placement.
		lock()
		insert, err := s.Insert(cand.Clone())
		if err != nil {
			unlock()
			return fmt.Errorf("explorer: %w", err)
		}
		stats.Iterations++
		if insert.CandidateDied {
			stats.CandidatesDied++
		} else {
			stats.Stored++
		}
		if res.AvgCost < stats.BestAvgCost {
			stats.BestAvgCost = res.AvgCost
		}
		if cfg.Progress != nil {
			cfg.Progress(Progress{
				Chain:      chain,
				Iteration:  it,
				Placements: s.NumPlacements(),
				Coverage:   s.Coverage(),
			})
		}
		stop := (cfg.MaxPlacements > 0 && s.NumPlacements() >= cfg.MaxPlacements) ||
			(cfg.TargetCoverage > 0 && s.Coverage() >= cfg.TargetCoverage)
		unlock()
		if stop {
			return nil
		}

		// Accept New Placement? — Metropolis on the BDIO average cost. On
		// acceptance the candidate's coordinates seed future perturbations;
		// on rejection the previous accepted placement is restored (it was
		// never overwritten).
		if temp == 0 {
			temp = math.Max(1, 0.1*res.AvgCost) // first-iteration calibration
		}
		accept := res.AvgCost <= acceptedCost ||
			rng.Float64() < math.Exp(-(res.AvgCost-acceptedCost)/temp)
		if accept {
			accepted = base
			acceptedCost = res.AvgCost
			lock()
			stats.Accepted++
			unlock()
		}
		temp *= cool
	}
	return nil
}
