package explorer

import (
	"context"
	"errors"
	"math/rand"
	"sync"
	"testing"
	"time"

	"mps/internal/bdio"
	"mps/internal/circuits"
	"mps/internal/core"
)

// quickCfg returns a small but real generation config for tests.
func quickCfg(seed int64) Config {
	return Config{
		Seed:          seed,
		MaxIterations: 40,
		BDIO:          bdio.Config{Steps: 60},
	}
}

func TestGenerateFillsStructure(t *testing.T) {
	c := circuits.MustByName("circ01")
	s, stats, err := Generate(c, quickCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPlacements() < 2 {
		t.Errorf("NumPlacements = %d, want several stored placements", s.NumPlacements())
	}
	if stats.Iterations != 40 {
		t.Errorf("Iterations = %d, want 40", stats.Iterations)
	}
	if stats.Stored+stats.CandidatesDied != stats.Iterations {
		t.Errorf("stored %d + died %d != iterations %d",
			stats.Stored, stats.CandidatesDied, stats.Iterations)
	}
	if stats.Duration <= 0 {
		t.Error("Duration not recorded")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("generated structure violates invariants: %v", err)
	}
}

// TestGenerateInvariantsAcrossBenchmarks runs a tiny generation on several
// benchmarks and fully checks the result — the core integration test of the
// generation pipeline.
func TestGenerateInvariantsAcrossBenchmarks(t *testing.T) {
	for _, name := range []string{"circ02", "TwoStageOpamp", "Mixer"} {
		t.Run(name, func(t *testing.T) {
			c := circuits.MustByName(name)
			s, _, err := Generate(c, quickCfg(2))
			if err != nil {
				t.Fatal(err)
			}
			if err := s.CheckInvariants(); err != nil {
				t.Fatal(err)
			}
			if s.NumPlacements() == 0 {
				t.Error("no placements stored")
			}
		})
	}
}

func TestGenerateDeterministicWithSeed(t *testing.T) {
	c := circuits.MustByName("circ01")
	s1, stats1, err := Generate(c, quickCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	s2, stats2, err := Generate(c, quickCfg(7))
	if err != nil {
		t.Fatal(err)
	}
	if s1.NumPlacements() != s2.NumPlacements() {
		t.Errorf("placement counts differ: %d vs %d", s1.NumPlacements(), s2.NumPlacements())
	}
	if stats1.Stored != stats2.Stored || stats1.Accepted != stats2.Accepted {
		t.Errorf("stats differ: %+v vs %+v", stats1, stats2)
	}
	// Spot-check: queries agree on random vectors.
	rng := rand.New(rand.NewSource(3))
	ws := make([]int, c.N())
	hs := make([]int, c.N())
	for trial := 0; trial < 200; trial++ {
		for i, b := range c.Blocks {
			ws[i] = b.WMin + rng.Intn(b.WMax-b.WMin+1)
			hs[i] = b.HMin + rng.Intn(b.HMax-b.HMin+1)
		}
		p1, err1 := s1.Query(ws, hs)
		p2, err2 := s2.Query(ws, hs)
		if (err1 == nil) != (err2 == nil) {
			t.Fatalf("query determinism broken at %v/%v", ws, hs)
		}
		if err1 == nil && p1.AvgCost != p2.AvgCost {
			t.Fatalf("different placements for same seed at %v/%v", ws, hs)
		}
	}
}

func TestGenerateSeedChangesResult(t *testing.T) {
	c := circuits.MustByName("circ01")
	s1, _, err := Generate(c, quickCfg(1))
	if err != nil {
		t.Fatal(err)
	}
	s2, _, err := Generate(c, quickCfg(2))
	if err != nil {
		t.Fatal(err)
	}
	// Different seeds should explore different placements; compare stored
	// placements' coordinates.
	same := s1.NumPlacements() == s2.NumPlacements()
	if same {
		ids1, ids2 := s1.IDs(), s2.IDs()
		for k := range ids1 {
			p1, p2 := s1.Get(ids1[k]), s2.Get(ids2[k])
			for i := range p1.X {
				if p1.X[i] != p2.X[i] || p1.Y[i] != p2.Y[i] {
					same = false
				}
			}
		}
	}
	if same {
		t.Error("different seeds produced identical structures")
	}
}

func TestGenerateStopsAtMaxPlacements(t *testing.T) {
	c := circuits.MustByName("circ01")
	cfg := quickCfg(4)
	cfg.MaxIterations = 500
	cfg.MaxPlacements = 5
	s, stats, err := Generate(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPlacements() < 5 {
		t.Errorf("NumPlacements = %d, want >= 5", s.NumPlacements())
	}
	if stats.Iterations >= 500 {
		t.Errorf("Iterations = %d, want early stop", stats.Iterations)
	}
}

func TestGenerateCoverageGrowsWithBudget(t *testing.T) {
	c := circuits.MustByName("circ01")
	small := quickCfg(5)
	small.MaxIterations = 10
	large := quickCfg(5)
	large.MaxIterations = 80

	sSmall, _, err := Generate(c, small)
	if err != nil {
		t.Fatal(err)
	}
	sLarge, _, err := Generate(c, large)
	if err != nil {
		t.Fatal(err)
	}
	if sLarge.Coverage() < sSmall.Coverage() {
		t.Errorf("more iterations should not reduce coverage: %g vs %g",
			sLarge.Coverage(), sSmall.Coverage())
	}
}

func TestGenerateProgressCallback(t *testing.T) {
	c := circuits.MustByName("circ01")
	cfg := quickCfg(6)
	calls := 0
	lastPlacements, lastCoverage := 0, 0.0
	cfg.Progress = func(p Progress) {
		calls++
		if p.Chain != 0 {
			t.Errorf("chain = %d, want 0 for single-chain run", p.Chain)
		}
		// Placement count and coverage can dip when overlap resolution
		// trims or removes stored boxes, so they are recorded, not ordered.
		lastPlacements, lastCoverage = p.Placements, p.Coverage
	}
	if _, _, err := Generate(c, cfg); err != nil {
		t.Fatal(err)
	}
	if calls != cfg.MaxIterations {
		t.Errorf("Progress called %d times, want %d", calls, cfg.MaxIterations)
	}
	if lastPlacements == 0 || lastCoverage == 0 {
		t.Error("progress never reported stored placements or coverage")
	}
}

// TestGenerateContextCancel checks cooperative cancellation: a context
// cancelled mid-run stops the nested annealers promptly and reports the
// context's error, returning no structure.
func TestGenerateContextCancel(t *testing.T) {
	c := circuits.MustByName("circ02")
	cfg := quickCfg(7)
	cfg.MaxIterations = 1 << 20 // would run for a very long time uncancelled
	ctx, cancel := context.WithCancel(context.Background())
	iterations := 0
	cfg.Progress = func(Progress) {
		iterations++
		if iterations == 3 {
			cancel()
		}
	}
	start := time.Now()
	s, _, err := GenerateContext(ctx, c, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s != nil {
		t.Error("cancelled generation returned a structure")
	}
	if iterations > 4 {
		t.Errorf("ran %d iterations after cancellation", iterations-3)
	}
	if elapsed := time.Since(start); elapsed > 30*time.Second {
		t.Errorf("cancellation took %s", elapsed)
	}
}

// TestGenerateContextCancelParallelChains: every chain must observe the
// cancellation, and the shared structure must not be returned.
func TestGenerateContextCancelParallelChains(t *testing.T) {
	c := circuits.MustByName("circ02")
	cfg := quickCfg(8)
	cfg.MaxIterations = 1 << 20
	cfg.Chains = 3
	ctx, cancel := context.WithCancel(context.Background())
	var once sync.Once
	cfg.Progress = func(Progress) { once.Do(cancel) }
	s, _, err := GenerateContext(ctx, c, cfg)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s != nil {
		t.Error("cancelled parallel generation returned a structure")
	}
}

// TestGenerateContextPreCancelled: an already-dead context must not start
// any annealing work.
func TestGenerateContextPreCancelled(t *testing.T) {
	c := circuits.MustByName("circ01")
	cfg := quickCfg(9)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg.Progress = func(Progress) { t.Error("iteration ran under a pre-cancelled context") }
	if _, _, err := GenerateContext(ctx, c, cfg); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestGenerateParallelChains(t *testing.T) {
	c := circuits.MustByName("circ02")
	cfg := quickCfg(8)
	cfg.MaxIterations = 40
	cfg.Chains = 4
	s, stats, err := Generate(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("parallel generation broke invariants: %v", err)
	}
	if stats.Iterations != 40 {
		t.Errorf("Iterations = %d, want 40 across chains", stats.Iterations)
	}
	if s.NumPlacements() == 0 {
		t.Error("no placements stored by parallel chains")
	}
}

func TestGenerateRejectsInvalidCircuit(t *testing.T) {
	c := circuits.MustByName("circ01")
	c.Blocks[0].WMin = -3
	if _, _, err := Generate(c, quickCfg(9)); err == nil {
		t.Error("invalid circuit should fail Generate")
	}
}

// TestGeneratedQueriesReturnStoredPlacements exercises the full pipeline:
// every query inside a stored box must come back with legal coordinates.
func TestGeneratedQueriesReturnStoredPlacements(t *testing.T) {
	c := circuits.MustByName("TwoStageOpamp")
	s, _, err := Generate(c, quickCfg(10))
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range s.IDs() {
		p := s.Get(id)
		// Query the box's best dims (always inside after eq. 6 shrink).
		got, err := s.Query(p.BestW, p.BestH)
		if err != nil {
			// The best point may have been carved away by a later, better
			// placement; then some other placement must answer or the point
			// must be uncovered.
			continue
		}
		if got.BoxEmpty() {
			t.Errorf("placement %d: query returned empty-box placement", id)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

var _ = core.ErrUncovered // keep import for documentation purposes
