package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectBasics(t *testing.T) {
	r := NewRect(2, 3, 10, 5)
	if got := r.W(); got != 10 {
		t.Errorf("W() = %d, want 10", got)
	}
	if got := r.H(); got != 5 {
		t.Errorf("H() = %d, want 5", got)
	}
	if got := r.Area(); got != 50 {
		t.Errorf("Area() = %d, want 50", got)
	}
	if r.Empty() {
		t.Error("non-degenerate rect reported Empty")
	}
	if got := r.Center(); got != (Point{7, 5}) {
		t.Errorf("Center() = %v, want (7,5)", got)
	}
}

func TestRectEmpty(t *testing.T) {
	cases := []Rect{
		{0, 0, 0, 0},
		{5, 5, 5, 10},  // zero width
		{5, 5, 10, 5},  // zero height
		{5, 5, 4, 10},  // negative width
		{5, 5, 10, -1}, // negative height
	}
	for _, r := range cases {
		if !r.Empty() {
			t.Errorf("%v should be empty", r)
		}
		if r.Area() != 0 {
			t.Errorf("%v empty rect area = %d, want 0", r, r.Area())
		}
		// W and H are per-axis extents: an empty rect has zero extent in at
		// least one axis, and never a negative extent in either.
		if r.W() < 0 || r.H() < 0 {
			t.Errorf("%v empty rect W/H = %d/%d, want non-negative", r, r.W(), r.H())
		}
		if r.W() != 0 && r.H() != 0 {
			t.Errorf("%v empty rect has positive extent in both axes", r)
		}
	}
}

func TestRectOverlaps(t *testing.T) {
	base := NewRect(0, 0, 10, 10)
	tests := []struct {
		name string
		r    Rect
		want bool
	}{
		{"identical", NewRect(0, 0, 10, 10), true},
		{"contained", NewRect(2, 2, 3, 3), true},
		{"corner overlap", NewRect(8, 8, 5, 5), true},
		{"abut right edge", NewRect(10, 0, 5, 10), false},
		{"abut top edge", NewRect(0, 10, 10, 5), false},
		{"disjoint", NewRect(20, 20, 5, 5), false},
		{"empty inside", Rect{5, 5, 5, 5}, false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := base.Overlaps(tc.r); got != tc.want {
				t.Errorf("Overlaps(%v) = %v, want %v", tc.r, got, tc.want)
			}
			if got := tc.r.Overlaps(base); got != tc.want {
				t.Errorf("Overlaps is not symmetric for %v", tc.r)
			}
		})
	}
}

func TestRectIntersect(t *testing.T) {
	a := NewRect(0, 0, 10, 10)
	b := NewRect(5, 5, 10, 10)
	got := a.Intersect(b)
	want := Rect{5, 5, 10, 10}
	if got != want {
		t.Errorf("Intersect = %v, want %v", got, want)
	}
	c := NewRect(20, 20, 2, 2)
	if !a.Intersect(c).Empty() {
		t.Errorf("disjoint Intersect = %v, want empty", a.Intersect(c))
	}
}

func TestRectUnionWithEmpty(t *testing.T) {
	a := NewRect(1, 1, 4, 4)
	empty := Rect{}
	if got := a.Union(empty); got != a {
		t.Errorf("Union with empty = %v, want %v", got, a)
	}
	if got := empty.Union(a); got != a {
		t.Errorf("empty Union a = %v, want %v", got, a)
	}
}

func TestRectContains(t *testing.T) {
	outer := NewRect(0, 0, 10, 10)
	if !outer.Contains(NewRect(1, 1, 5, 5)) {
		t.Error("Contains inner failed")
	}
	if !outer.Contains(outer) {
		t.Error("Contains self failed")
	}
	if outer.Contains(NewRect(5, 5, 10, 10)) {
		t.Error("Contains overflowing rect should be false")
	}
	if !outer.Contains(Rect{3, 3, 3, 3}) {
		t.Error("Contains empty rect should be true")
	}
}

func TestRectContainsPoint(t *testing.T) {
	r := NewRect(0, 0, 10, 10)
	if !r.ContainsPoint(Point{0, 0}) {
		t.Error("bottom-left corner should be inside (half-open)")
	}
	if r.ContainsPoint(Point{10, 5}) {
		t.Error("right edge should be outside (half-open)")
	}
	if r.ContainsPoint(Point{5, 10}) {
		t.Error("top edge should be outside (half-open)")
	}
}

func TestRectTranslate(t *testing.T) {
	r := NewRect(1, 2, 3, 4)
	got := r.Translate(10, -2)
	want := NewRect(11, 0, 3, 4)
	if got != want {
		t.Errorf("Translate = %v, want %v", got, want)
	}
}

func TestBoundingBox(t *testing.T) {
	rects := []Rect{
		NewRect(0, 0, 2, 2),
		NewRect(5, 5, 2, 2),
		NewRect(-3, 1, 1, 1),
	}
	got := BoundingBox(rects)
	want := Rect{-3, 0, 7, 7}
	if got != want {
		t.Errorf("BoundingBox = %v, want %v", got, want)
	}
	if !BoundingBox(nil).Empty() {
		t.Error("BoundingBox(nil) should be empty")
	}
}

func TestHPWL(t *testing.T) {
	tests := []struct {
		name string
		pts  []Point
		want int
	}{
		{"empty", nil, 0},
		{"single", []Point{{3, 4}}, 0},
		{"pair", []Point{{0, 0}, {3, 4}}, 7},
		{"triple", []Point{{0, 0}, {10, 0}, {5, 5}}, 15},
		{"colinear", []Point{{0, 0}, {5, 0}, {9, 0}}, 9},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if got := HPWL(tc.pts); got != tc.want {
				t.Errorf("HPWL = %d, want %d", got, tc.want)
			}
		})
	}
}

func TestHPWLPermutationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(8)
		pts := make([]Point, n)
		for i := range pts {
			pts[i] = Point{rng.Intn(100), rng.Intn(100)}
		}
		want := HPWL(pts)
		rng.Shuffle(n, func(i, j int) { pts[i], pts[j] = pts[j], pts[i] })
		if got := HPWL(pts); got != want {
			t.Fatalf("HPWL changed under permutation: %d vs %d", got, want)
		}
	}
}

func TestManhattanDist(t *testing.T) {
	if got := (Point{0, 0}).ManhattanDist(Point{3, -4}); got != 7 {
		t.Errorf("ManhattanDist = %d, want 7", got)
	}
	if got := (Point{5, 5}).ManhattanDist(Point{5, 5}); got != 0 {
		t.Errorf("self distance = %d, want 0", got)
	}
}

func TestIntervalBasics(t *testing.T) {
	iv := NewInterval(3, 7)
	if iv.Empty() {
		t.Error("non-empty interval reported Empty")
	}
	if got := iv.Len(); got != 5 {
		t.Errorf("Len = %d, want 5", got)
	}
	for v := 3; v <= 7; v++ {
		if !iv.Contains(v) {
			t.Errorf("Contains(%d) = false, want true", v)
		}
	}
	if iv.Contains(2) || iv.Contains(8) {
		t.Error("Contains out-of-range value")
	}
}

func TestIntervalEmpty(t *testing.T) {
	iv := NewInterval(5, 4)
	if !iv.Empty() {
		t.Error("inverted interval should be empty")
	}
	if iv.Len() != 0 {
		t.Errorf("empty Len = %d, want 0", iv.Len())
	}
	if iv.Contains(5) {
		t.Error("empty interval Contains should be false")
	}
	full := NewInterval(0, 10)
	if full.Overlaps(iv) || iv.Overlaps(full) {
		t.Error("overlap with empty interval should be false")
	}
	if !full.ContainsInterval(iv) {
		t.Error("every interval contains the empty interval")
	}
}

func TestIntervalOverlapAndIntersect(t *testing.T) {
	a := NewInterval(0, 10)
	tests := []struct {
		b       Interval
		overlap bool
		common  Interval
	}{
		{NewInterval(5, 15), true, NewInterval(5, 10)},
		{NewInterval(10, 20), true, NewInterval(10, 10)}, // inclusive endpoint
		{NewInterval(11, 20), false, Interval{}},
		{NewInterval(-5, -1), false, Interval{}},
		{NewInterval(2, 3), true, NewInterval(2, 3)},
	}
	for _, tc := range tests {
		if got := a.Overlaps(tc.b); got != tc.overlap {
			t.Errorf("Overlaps(%v) = %v, want %v", tc.b, got, tc.overlap)
		}
		if tc.overlap {
			if got := a.Intersect(tc.b); got != tc.common {
				t.Errorf("Intersect(%v) = %v, want %v", tc.b, got, tc.common)
			}
			if got := a.OverlapLen(tc.b); got != tc.common.Len() {
				t.Errorf("OverlapLen(%v) = %d, want %d", tc.b, got, tc.common.Len())
			}
		} else if got := a.OverlapLen(tc.b); got != 0 {
			t.Errorf("OverlapLen(%v) = %d, want 0", tc.b, got)
		}
	}
}

func TestIntervalClamp(t *testing.T) {
	iv := NewInterval(3, 7)
	cases := [][2]int{{0, 3}, {3, 3}, {5, 5}, {7, 7}, {100, 7}}
	for _, c := range cases {
		if got := iv.Clamp(c[0]); got != c[1] {
			t.Errorf("Clamp(%d) = %d, want %d", c[0], got, c[1])
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Clamp on empty interval should panic")
		}
	}()
	NewInterval(5, 4).Clamp(5)
}

func TestIntervalSubtract(t *testing.T) {
	iv := NewInterval(0, 10)
	tests := []struct {
		name        string
		sub         Interval
		left, right Interval
	}{
		{"middle", NewInterval(4, 6), NewInterval(0, 3), NewInterval(7, 10)},
		{"prefix", NewInterval(0, 4), NewInterval(0, -1), NewInterval(5, 10)},
		{"suffix", NewInterval(6, 10), NewInterval(0, 5), NewInterval(11, 10)},
		{"all", NewInterval(0, 10), NewInterval(0, -1), NewInterval(11, 10)},
		{"disjoint", NewInterval(20, 30), NewInterval(0, 10), Interval{0, -1}},
		{"super", NewInterval(-5, 15), NewInterval(0, -6), NewInterval(16, 10)},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			got := iv.Subtract(tc.sub)
			if got.Left.Empty() != tc.left.Empty() || (!got.Left.Empty() && got.Left != tc.left) {
				t.Errorf("Left = %v, want %v", got.Left, tc.left)
			}
			if got.Right.Empty() != tc.right.Empty() || (!got.Right.Empty() && got.Right != tc.right) {
				t.Errorf("Right = %v, want %v", got.Right, tc.right)
			}
		})
	}
}

// TestIntervalSubtractProperty checks that subtraction partitions the
// original interval: every point is in exactly one of Left, Right, or the
// subtracted interval.
func TestIntervalSubtractProperty(t *testing.T) {
	f := func(aLo, aLen, bLo, bLen uint8) bool {
		a := NewInterval(int(aLo), int(aLo)+int(aLen%40))
		b := NewInterval(int(bLo), int(bLo)+int(bLen%40))
		res := a.Subtract(b)
		for v := a.Lo; v <= a.Hi; v++ {
			inLeft := res.Left.Contains(v)
			inRight := res.Right.Contains(v)
			inB := b.Contains(v)
			count := 0
			if inLeft {
				count++
			}
			if inRight {
				count++
			}
			if inB {
				count++
			}
			if count != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// TestOverlapsEquivalentToNonEmptyIntersect cross-checks the two rect
// predicates against each other over random rectangles.
func TestOverlapsEquivalentToNonEmptyIntersect(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 1000; i++ {
		a := NewRect(rng.Intn(20)-10, rng.Intn(20)-10, rng.Intn(10), rng.Intn(10))
		b := NewRect(rng.Intn(20)-10, rng.Intn(20)-10, rng.Intn(10), rng.Intn(10))
		if a.Overlaps(b) != !a.Intersect(b).Empty() {
			t.Fatalf("Overlaps/Intersect disagree for %v and %v", a, b)
		}
	}
}

func TestIntervalLenFloat(t *testing.T) {
	if got := NewInterval(3, 7).LenFloat(); got != 5 {
		t.Errorf("LenFloat = %g, want 5", got)
	}
	if got := NewInterval(5, 4).LenFloat(); got != 0 {
		t.Errorf("empty LenFloat = %g, want 0", got)
	}
	// The overflow case Len cannot represent: [0, MaxInt] has MaxInt+1
	// integers; Len wraps negative, LenFloat must stay ~2^63.
	wide := NewInterval(0, math.MaxInt)
	if wide.Len() >= 0 {
		t.Fatalf("test premise broken: Len = %d did not overflow", wide.Len())
	}
	if got, want := wide.LenFloat(), math.Exp2(63); got != want {
		t.Errorf("wide LenFloat = %g, want %g", got, want)
	}
}

func TestIntervalRand(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	iv := NewInterval(10, 14)
	seen := map[int]bool{}
	for k := 0; k < 200; k++ {
		v := iv.Rand(rng)
		if !iv.Contains(v) {
			t.Fatalf("Rand drew %d outside %v", v, iv)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Errorf("200 draws hit %d of 5 values", len(seen))
	}
	// Point interval.
	if v := NewInterval(9, 9).Rand(rng); v != 9 {
		t.Errorf("point Rand = %d, want 9", v)
	}
	// Overflowing span: lo+Intn(hi-lo+1) would panic; Rand must draw an
	// in-bounds value.
	wide := NewInterval(0, math.MaxInt)
	for k := 0; k < 100; k++ {
		if v := wide.Rand(rng); v < 0 {
			t.Fatalf("wide Rand drew %d outside %v", v, wide)
		}
	}
	defer func() {
		if recover() == nil {
			t.Error("Rand on an empty interval did not panic")
		}
	}()
	NewInterval(5, 4).Rand(rng)
}
