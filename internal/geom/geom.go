// Package geom provides the integer geometry primitives used throughout the
// placement engine: points, axis-aligned rectangles and inclusive integer
// intervals.
//
// All coordinates and dimensions are expressed in integer layout units
// ("lambda"); see DESIGN.md decision D1. Rectangles are half-open boxes
// [X0,X1) x [Y0,Y1) so that abutting blocks do not overlap, while dimension
// intervals are inclusive [Lo,Hi] to match the paper's
// [wstart,wend]/[hstart,hend] notation.
package geom

import "fmt"

// Point is an integer location on the floorplan.
type Point struct {
	X, Y int
}

// Add returns the component-wise sum of p and q.
func (p Point) Add(q Point) Point { return Point{p.X + q.X, p.Y + q.Y} }

// ManhattanDist returns the L1 distance between p and q.
func (p Point) ManhattanDist(q Point) int {
	return abs(p.X-q.X) + abs(p.Y-q.Y)
}

// String implements fmt.Stringer.
func (p Point) String() string { return fmt.Sprintf("(%d,%d)", p.X, p.Y) }

// Rect is a half-open axis-aligned box [X0,X1) x [Y0,Y1).
// A Rect with X1 <= X0 or Y1 <= Y0 is empty.
type Rect struct {
	X0, Y0, X1, Y1 int
}

// NewRect returns the rectangle anchored at (x, y) with width w and height h.
func NewRect(x, y, w, h int) Rect { return Rect{x, y, x + w, y + h} }

// W returns the width of r (zero for empty rects).
func (r Rect) W() int {
	if r.X1 <= r.X0 {
		return 0
	}
	return r.X1 - r.X0
}

// H returns the height of r (zero for empty rects).
func (r Rect) H() int {
	if r.Y1 <= r.Y0 {
		return 0
	}
	return r.Y1 - r.Y0
}

// Area returns the area of r (zero for empty rects).
func (r Rect) Area() int64 { return int64(r.W()) * int64(r.H()) }

// Empty reports whether r encloses no points.
func (r Rect) Empty() bool { return r.X1 <= r.X0 || r.Y1 <= r.Y0 }

// Center returns the midpoint of r, rounded down.
func (r Rect) Center() Point { return Point{(r.X0 + r.X1) / 2, (r.Y0 + r.Y1) / 2} }

// Overlaps reports whether r and s share interior area.
// Abutting rectangles (shared edge) do not overlap.
func (r Rect) Overlaps(s Rect) bool {
	if r.Empty() || s.Empty() {
		return false
	}
	return r.X0 < s.X1 && s.X0 < r.X1 && r.Y0 < s.Y1 && s.Y0 < r.Y1
}

// Intersect returns the common area of r and s (possibly empty).
func (r Rect) Intersect(s Rect) Rect {
	return Rect{
		X0: max(r.X0, s.X0), Y0: max(r.Y0, s.Y0),
		X1: min(r.X1, s.X1), Y1: min(r.Y1, s.Y1),
	}
}

// Union returns the smallest rectangle containing both r and s.
// The union with an empty rectangle is the other rectangle.
func (r Rect) Union(s Rect) Rect {
	if r.Empty() {
		return s
	}
	if s.Empty() {
		return r
	}
	return Rect{
		X0: min(r.X0, s.X0), Y0: min(r.Y0, s.Y0),
		X1: max(r.X1, s.X1), Y1: max(r.Y1, s.Y1),
	}
}

// Contains reports whether r contains the whole of s.
// Every rectangle contains the empty rectangle.
func (r Rect) Contains(s Rect) bool {
	if s.Empty() {
		return true
	}
	return r.X0 <= s.X0 && s.X1 <= r.X1 && r.Y0 <= s.Y0 && s.Y1 <= r.Y1
}

// ContainsPoint reports whether p lies inside r (half-open semantics).
func (r Rect) ContainsPoint(p Point) bool {
	return r.X0 <= p.X && p.X < r.X1 && r.Y0 <= p.Y && p.Y < r.Y1
}

// Translate returns r shifted by (dx, dy).
func (r Rect) Translate(dx, dy int) Rect {
	return Rect{r.X0 + dx, r.Y0 + dy, r.X1 + dx, r.Y1 + dy}
}

// String implements fmt.Stringer.
func (r Rect) String() string {
	return fmt.Sprintf("[%d,%d)x[%d,%d)", r.X0, r.X1, r.Y0, r.Y1)
}

// BoundingBox returns the smallest rectangle containing all given rects.
// The bounding box of no rectangles is the empty rectangle.
func BoundingBox(rects []Rect) Rect {
	var bb Rect
	for _, r := range rects {
		bb = bb.Union(r)
	}
	return bb
}

// HPWL returns the half-perimeter wire length of the given points:
// (max x - min x) + (max y - min y). HPWL of fewer than two points is zero.
func HPWL(pts []Point) int {
	if len(pts) < 2 {
		return 0
	}
	minX, maxX := pts[0].X, pts[0].X
	minY, maxY := pts[0].Y, pts[0].Y
	for _, p := range pts[1:] {
		if p.X < minX {
			minX = p.X
		}
		if p.X > maxX {
			maxX = p.X
		}
		if p.Y < minY {
			minY = p.Y
		}
		if p.Y > maxY {
			maxY = p.Y
		}
	}
	return (maxX - minX) + (maxY - minY)
}

func abs(x int) int {
	if x < 0 {
		return -x
	}
	return x
}
