package geom

import (
	"fmt"
	"math/rand"
)

// Interval is an inclusive integer interval [Lo, Hi], matching the paper's
// [wstart, wend] / [hstart, hend] dimension ranges. An Interval with
// Hi < Lo is empty.
type Interval struct {
	Lo, Hi int
}

// NewInterval returns the inclusive interval [lo, hi].
func NewInterval(lo, hi int) Interval { return Interval{lo, hi} }

// Empty reports whether iv contains no integers.
func (iv Interval) Empty() bool { return iv.Hi < iv.Lo }

// Len returns the number of integers in iv (zero for empty intervals).
func (iv Interval) Len() int {
	if iv.Empty() {
		return 0
	}
	return iv.Hi - iv.Lo + 1
}

// LenFloat returns the number of integers in iv computed in float64, so
// intervals spanning most of the int range cannot overflow the way
// Hi-Lo+1 does in int arithmetic. Coverage and box-volume math use this.
func (iv Interval) LenFloat() float64 {
	if iv.Empty() {
		return 0
	}
	return float64(iv.Hi) - float64(iv.Lo) + 1
}

// Rand returns a uniform random value in iv. Unlike the naive
// lo+Intn(hi-lo+1) pattern it tolerates ranges whose span overflows int64
// (e.g. [0, MaxInt]): those draw from the first 2^63-1 values of the
// range — in-bounds and near-uniform, which is all a Monte-Carlo
// estimator needs, instead of panicking in Intn. Rand panics on an empty
// interval, which has no value to return.
func (iv Interval) Rand(rng *rand.Rand) int {
	if iv.Empty() {
		panic(fmt.Sprintf("geom: Rand on empty interval %v", iv))
	}
	span := int64(iv.Hi) - int64(iv.Lo) + 1
	if span <= 0 { // true span exceeds MaxInt64
		return iv.Lo + int(rng.Int63())
	}
	return iv.Lo + int(rng.Int63n(span))
}

// Contains reports whether v lies in iv.
func (iv Interval) Contains(v int) bool { return iv.Lo <= v && v <= iv.Hi }

// ContainsInterval reports whether iv contains the whole of other.
// Every interval contains the empty interval.
func (iv Interval) ContainsInterval(other Interval) bool {
	if other.Empty() {
		return true
	}
	return iv.Lo <= other.Lo && other.Hi <= iv.Hi
}

// Overlaps reports whether iv and other share at least one integer.
func (iv Interval) Overlaps(other Interval) bool {
	if iv.Empty() || other.Empty() {
		return false
	}
	return iv.Lo <= other.Hi && other.Lo <= iv.Hi
}

// Intersect returns the common part of iv and other (possibly empty).
func (iv Interval) Intersect(other Interval) Interval {
	return Interval{max(iv.Lo, other.Lo), min(iv.Hi, other.Hi)}
}

// OverlapLen returns the number of integers shared by iv and other.
func (iv Interval) OverlapLen(other Interval) int {
	return iv.Intersect(other).Len()
}

// Clamp returns v limited to iv. Clamp panics on an empty interval because
// there is no valid value to return.
func (iv Interval) Clamp(v int) int {
	if iv.Empty() {
		panic(fmt.Sprintf("geom: Clamp on empty interval %v", iv))
	}
	if v < iv.Lo {
		return iv.Lo
	}
	if v > iv.Hi {
		return iv.Hi
	}
	return v
}

// SubtractResult holds the (up to two) pieces of an interval subtraction.
type SubtractResult struct {
	Left, Right Interval // either may be empty
}

// Subtract removes other from iv, returning the remaining left and right
// pieces. If the intervals do not overlap, Left is iv and Right is empty.
func (iv Interval) Subtract(other Interval) SubtractResult {
	if !iv.Overlaps(other) {
		return SubtractResult{Left: iv, Right: Interval{0, -1}}
	}
	return SubtractResult{
		Left:  Interval{iv.Lo, other.Lo - 1},
		Right: Interval{other.Hi + 1, iv.Hi},
	}
}

// String implements fmt.Stringer.
func (iv Interval) String() string {
	if iv.Empty() {
		return "[empty]"
	}
	return fmt.Sprintf("[%d,%d]", iv.Lo, iv.Hi)
}
