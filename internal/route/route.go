// Package route estimates the routing of a placed circuit — the "Routing"
// and "Circuit Extraction" boxes of the paper's Figure 1b synthesis loop.
//
// Nets are routed as rectilinear spanning trees (Prim on Manhattan
// distance, each edge realized as an L-shape), pad-stub nets as a straight
// run to the nearest floorplan edge. On top of the routes the package
// offers a grid congestion estimate and per-net RC extraction, which is the
// parasitic input the perf models consume. Everything here is an estimator:
// fast enough to sit inside a sizing loop, faithful enough to rank
// placements the way a detailed router would.
package route

import (
	"fmt"
	"math"

	"mps/internal/cost"
	"mps/internal/geom"
)

// Segment is one rectilinear wire piece; A and B share an x or y.
type Segment struct {
	A, B geom.Point
}

// Len returns the Manhattan length of the segment.
func (s Segment) Len() int { return s.A.ManhattanDist(s.B) }

// NetRoute is the estimated route of one net.
type NetRoute struct {
	Length   int
	Segments []Segment
}

// Estimate holds the routing estimate of a whole layout.
type Estimate struct {
	Nets  []NetRoute
	Total int64
}

// EstimateNets routes every net of the layout. Multi-pin nets use a
// rectilinear minimum spanning tree over the pin positions; single-pin
// terminal nets run to the nearest floorplan edge.
func EstimateNets(l *cost.Layout) Estimate {
	est := Estimate{Nets: make([]NetRoute, len(l.Circuit.Nets))}
	for ni, net := range l.Circuit.Nets {
		pts := make([]geom.Point, len(net.Pins))
		for pi, p := range net.Pins {
			pts[pi] = p.Position(l.X[p.Block], l.Y[p.Block], l.W[p.Block], l.H[p.Block])
		}
		var nr NetRoute
		if len(pts) == 1 {
			if net.Pins[0].IsTerminal {
				nr = padStub(pts[0], l.Floorplan)
			}
		} else {
			nr = spanningRoute(pts)
		}
		est.Nets[ni] = nr
		est.Total += int64(nr.Length)
	}
	return est
}

// spanningRoute builds a Manhattan MST over the points (Prim) and realizes
// each tree edge as an L-shaped pair of segments.
func spanningRoute(pts []geom.Point) NetRoute {
	n := len(pts)
	inTree := make([]bool, n)
	dist := make([]int, n)
	parent := make([]int, n)
	for i := range dist {
		dist[i] = math.MaxInt
		parent[i] = -1
	}
	inTree[0] = true
	for i := 1; i < n; i++ {
		dist[i] = pts[0].ManhattanDist(pts[i])
		parent[i] = 0
	}
	var nr NetRoute
	for added := 1; added < n; added++ {
		best := -1
		for i := 0; i < n; i++ {
			if !inTree[i] && (best < 0 || dist[i] < dist[best]) {
				best = i
			}
		}
		inTree[best] = true
		nr.Segments = append(nr.Segments, lRoute(pts[parent[best]], pts[best])...)
		nr.Length += dist[best]
		for i := 0; i < n; i++ {
			if !inTree[i] {
				if d := pts[best].ManhattanDist(pts[i]); d < dist[i] {
					dist[i] = d
					parent[i] = best
				}
			}
		}
	}
	return nr
}

// lRoute connects two points with at most two rectilinear segments
// (horizontal first).
func lRoute(a, b geom.Point) []Segment {
	if a == b {
		return nil
	}
	corner := geom.Point{X: b.X, Y: a.Y}
	segs := make([]Segment, 0, 2)
	if a.X != b.X {
		segs = append(segs, Segment{A: a, B: corner})
	}
	if a.Y != b.Y {
		segs = append(segs, Segment{A: corner, B: b})
	}
	return segs
}

// padStub routes a terminal pin straight to the nearest floorplan edge.
func padStub(p geom.Point, fp geom.Rect) NetRoute {
	if fp.Empty() || !fp.ContainsPoint(p) {
		return NetRoute{}
	}
	type exit struct {
		d  int
		to geom.Point
	}
	exits := []exit{
		{p.X - fp.X0, geom.Point{X: fp.X0, Y: p.Y}},
		{fp.X1 - p.X, geom.Point{X: fp.X1, Y: p.Y}},
		{p.Y - fp.Y0, geom.Point{X: p.X, Y: fp.Y0}},
		{fp.Y1 - p.Y, geom.Point{X: p.X, Y: fp.Y1}},
	}
	best := exits[0]
	for _, e := range exits[1:] {
		if e.d < best.d {
			best = e
		}
	}
	if best.d == 0 {
		return NetRoute{}
	}
	return NetRoute{Length: best.d, Segments: []Segment{{A: p, B: best.to}}}
}

// CongestionGrid is a routing-demand raster over the floorplan.
type CongestionGrid struct {
	BinsX, BinsY int
	// Demand[y*BinsX+x] is the wire length crossing bin (x, y).
	Demand []float64
	// Capacity is the per-bin routing capacity (track length).
	Capacity float64
	fp       geom.Rect
}

// Congestion rasterizes the estimate onto a bins x bins grid. Capacity per
// bin is the bin's half-perimeter times a two-layer track density of one
// track per unit — a coarse but consistent yardstick.
func Congestion(l *cost.Layout, est Estimate, bins int) (*CongestionGrid, error) {
	if bins <= 0 {
		return nil, fmt.Errorf("route: bins must be positive, got %d", bins)
	}
	fp := l.Floorplan
	if fp.Empty() {
		return nil, fmt.Errorf("route: layout has no floorplan")
	}
	g := &CongestionGrid{
		BinsX:  bins,
		BinsY:  bins,
		Demand: make([]float64, bins*bins),
		fp:     fp,
	}
	binW := float64(fp.W()) / float64(bins)
	binH := float64(fp.H()) / float64(bins)
	g.Capacity = binW + binH
	for _, nr := range est.Nets {
		for _, seg := range nr.Segments {
			g.addSegment(seg, binW, binH)
		}
	}
	return g, nil
}

// addSegment distributes a rectilinear segment's length over the bins it
// crosses.
func (g *CongestionGrid) addSegment(s Segment, binW, binH float64) {
	steps := s.Len()
	if steps == 0 {
		return
	}
	dx := float64(s.B.X-s.A.X) / float64(steps)
	dy := float64(s.B.Y-s.A.Y) / float64(steps)
	for k := 0; k < steps; k++ {
		x := float64(s.A.X-g.fp.X0) + dx*(float64(k)+0.5)
		y := float64(s.A.Y-g.fp.Y0) + dy*(float64(k)+0.5)
		bx := int(x / binW)
		by := int(y / binH)
		if bx < 0 {
			bx = 0
		}
		if bx >= g.BinsX {
			bx = g.BinsX - 1
		}
		if by < 0 {
			by = 0
		}
		if by >= g.BinsY {
			by = g.BinsY - 1
		}
		g.Demand[by*g.BinsX+bx]++
	}
}

// MaxUtilization returns the worst bin's demand/capacity ratio.
func (g *CongestionGrid) MaxUtilization() float64 {
	maxD := 0.0
	for _, d := range g.Demand {
		if d > maxD {
			maxD = d
		}
	}
	if g.Capacity == 0 {
		return 0
	}
	return maxD / g.Capacity
}

// OverflowBins counts bins whose demand exceeds capacity.
func (g *CongestionGrid) OverflowBins() int {
	n := 0
	for _, d := range g.Demand {
		if d > g.Capacity {
			n++
		}
	}
	return n
}

// RC is the extracted parasitic of one net.
type RC struct {
	ROhm float64
	CF   float64
}

// Extraction constants for a generic 0.35µm-class metal stack: one layout
// unit (0.25 µm) of minimum-width wire.
const (
	ROhmPerUnit = 0.02e0   // ~0.08 Ω/µm -> per 0.25 µm unit
	CFPerUnit   = 0.05e-15 // ~0.2 fF/µm -> per 0.25 µm unit
	CPinF       = 0.5e-15  // per-pin loading
)

// ExtractRC converts routed lengths into lumped per-net parasitics —
// the "Circuit Extraction" step feeding the performance models.
func ExtractRC(l *cost.Layout, est Estimate) []RC {
	out := make([]RC, len(est.Nets))
	for i, nr := range est.Nets {
		pins := len(l.Circuit.Nets[i].Pins)
		out[i] = RC{
			ROhm: float64(nr.Length) * ROhmPerUnit,
			CF:   float64(nr.Length)*CFPerUnit + float64(pins)*CPinF,
		}
	}
	return out
}
