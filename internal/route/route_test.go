package route

import (
	"math/rand"
	"testing"

	"mps/internal/circuits"
	"mps/internal/cost"
	"mps/internal/geom"
	"mps/internal/netlist"
	"mps/internal/placement"
)

// gridLayout places the named benchmark's blocks on a simple grid.
func gridLayout(t *testing.T, name string) *cost.Layout {
	t.Helper()
	c := circuits.MustByName(name)
	fp := placement.DefaultFloorplan(c)
	n := c.N()
	l := &cost.Layout{
		Circuit:   c,
		X:         make([]int, n),
		Y:         make([]int, n),
		W:         make([]int, n),
		H:         make([]int, n),
		Floorplan: fp,
	}
	cols := 3
	x, y, rowH := 0, 0, 0
	for i, b := range c.Blocks {
		if i%cols == 0 && i > 0 {
			x = 0
			y += rowH + 2
			rowH = 0
		}
		l.X[i], l.Y[i] = x, y
		l.W[i], l.H[i] = b.WMin, b.HMin
		x += b.WMin + 2
		if b.HMin > rowH {
			rowH = b.HMin
		}
	}
	return l
}

func TestLRoute(t *testing.T) {
	a, b := geom.Point{X: 0, Y: 0}, geom.Point{X: 5, Y: 7}
	segs := lRoute(a, b)
	if len(segs) != 2 {
		t.Fatalf("got %d segments, want 2", len(segs))
	}
	total := segs[0].Len() + segs[1].Len()
	if total != a.ManhattanDist(b) {
		t.Errorf("L-route length %d != Manhattan distance %d", total, a.ManhattanDist(b))
	}
	if got := lRoute(a, a); got != nil {
		t.Errorf("coincident points should need no segments, got %v", got)
	}
	horiz := lRoute(geom.Point{X: 0, Y: 3}, geom.Point{X: 9, Y: 3})
	if len(horiz) != 1 {
		t.Errorf("axis-aligned points should need 1 segment, got %d", len(horiz))
	}
}

func TestSpanningRouteMatchesMSTLength(t *testing.T) {
	// Three collinear points: MST length = end-to-end distance.
	pts := []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 4, Y: 0}}
	nr := spanningRoute(pts)
	if nr.Length != 10 {
		t.Errorf("collinear MST length = %d, want 10", nr.Length)
	}
	// Square corners: MST = 3 sides.
	pts = []geom.Point{{X: 0, Y: 0}, {X: 10, Y: 0}, {X: 0, Y: 10}, {X: 10, Y: 10}}
	nr = spanningRoute(pts)
	if nr.Length != 30 {
		t.Errorf("square MST length = %d, want 30", nr.Length)
	}
}

// TestSpanningRouteAtLeastHPWL: a spanning tree can never beat the
// half-perimeter bound; for 2-pin nets the two coincide.
func TestSpanningRouteAtLeastHPWL(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(6)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Intn(100), Y: rng.Intn(100)}
		}
		nr := spanningRoute(pts)
		hp := geom.HPWL(pts)
		if nr.Length < hp {
			t.Fatalf("MST %d beat HPWL %d for %v", nr.Length, hp, pts)
		}
		if n == 2 && nr.Length != hp {
			t.Fatalf("2-pin MST %d != HPWL %d", nr.Length, hp)
		}
	}
}

func TestSegmentsSumToRouteLength(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(5)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Intn(50), Y: rng.Intn(50)}
		}
		nr := spanningRoute(pts)
		sum := 0
		for _, s := range nr.Segments {
			if s.A.X != s.B.X && s.A.Y != s.B.Y {
				t.Fatalf("non-rectilinear segment %v", s)
			}
			sum += s.Len()
		}
		if sum != nr.Length {
			t.Fatalf("segment sum %d != length %d", sum, nr.Length)
		}
	}
}

func TestEstimateNetsOnBenchmarks(t *testing.T) {
	for _, name := range []string{"TwoStageOpamp", "Mixer", "tso-cascode"} {
		t.Run(name, func(t *testing.T) {
			l := gridLayout(t, name)
			est := EstimateNets(l)
			if len(est.Nets) != len(l.Circuit.Nets) {
				t.Fatalf("routed %d nets, want %d", len(est.Nets), len(l.Circuit.Nets))
			}
			if est.Total <= 0 {
				t.Error("zero total routed length on a placed benchmark")
			}
			// Each routed net must be >= its HPWL.
			hpwl := cost.NetLengths(l)
			for i, nr := range est.Nets {
				if nr.Length < hpwl[i] {
					t.Errorf("net %d routed %d below HPWL %d", i, nr.Length, hpwl[i])
				}
			}
		})
	}
}

func TestPadStub(t *testing.T) {
	fp := geom.NewRect(0, 0, 100, 50)
	nr := padStub(geom.Point{X: 10, Y: 25}, fp)
	if nr.Length != 10 {
		t.Errorf("pad stub length = %d, want 10 (left edge)", nr.Length)
	}
	if len(nr.Segments) != 1 {
		t.Errorf("pad stub segments = %d, want 1", len(nr.Segments))
	}
	if nr := padStub(geom.Point{X: 500, Y: 500}, fp); nr.Length != 0 {
		t.Error("outside point should not route")
	}
}

func TestCongestionAccounting(t *testing.T) {
	l := gridLayout(t, "Mixer")
	est := EstimateNets(l)
	g, err := Congestion(l, est, 8)
	if err != nil {
		t.Fatal(err)
	}
	var demand float64
	for _, d := range g.Demand {
		demand += d
	}
	if int64(demand) != est.Total {
		t.Errorf("binned demand %d != total routed length %d", int64(demand), est.Total)
	}
	if g.MaxUtilization() < 0 {
		t.Error("negative utilization")
	}
	if g.OverflowBins() < 0 || g.OverflowBins() > g.BinsX*g.BinsY {
		t.Error("overflow bin count out of range")
	}
}

func TestCongestionValidation(t *testing.T) {
	l := gridLayout(t, "circ01")
	est := EstimateNets(l)
	if _, err := Congestion(l, est, 0); err == nil {
		t.Error("zero bins should error")
	}
	l.Floorplan = geom.Rect{}
	if _, err := Congestion(l, est, 4); err == nil {
		t.Error("missing floorplan should error")
	}
}

// TestCongestionSpreadsWithSpacing: spreading blocks apart increases routed
// length but should lower peak bin utilization relative to demand.
func TestCongestionDetectsHotspot(t *testing.T) {
	b := netlist.NewBuilder("hot")
	b.Block("a", 4, 4, 4, 4)
	b.Block("c", 4, 4, 4, 4)
	for i := 0; i < 6; i++ {
		b.Net("n"+string(rune('0'+i)), 1, netlist.P("a"), netlist.P("c"))
	}
	c := b.MustBuild()
	l := &cost.Layout{
		Circuit:   c,
		X:         []int{0, 90},
		Y:         []int{48, 48},
		W:         []int{4, 4},
		H:         []int{4, 4},
		Floorplan: geom.NewRect(0, 0, 100, 100),
	}
	est := EstimateNets(l)
	g, err := Congestion(l, est, 10)
	if err != nil {
		t.Fatal(err)
	}
	// Six identical parallel routes through the middle row: the hot bins
	// must carry ~6x the length of a single crossing.
	if g.MaxUtilization() <= 0 {
		t.Error("hotspot not detected")
	}
}

func TestExtractRC(t *testing.T) {
	l := gridLayout(t, "TwoStageOpamp")
	est := EstimateNets(l)
	rcs := ExtractRC(l, est)
	if len(rcs) != len(l.Circuit.Nets) {
		t.Fatalf("extracted %d nets, want %d", len(rcs), len(l.Circuit.Nets))
	}
	for i, rc := range rcs {
		pins := len(l.Circuit.Nets[i].Pins)
		minC := float64(pins) * CPinF
		if rc.CF < minC {
			t.Errorf("net %d: C %g below pin loading %g", i, rc.CF, minC)
		}
		if rc.ROhm < 0 {
			t.Errorf("net %d: negative resistance", i)
		}
		if est.Nets[i].Length > 0 && rc.ROhm == 0 {
			t.Errorf("net %d: routed wire with zero resistance", i)
		}
	}
}

// TestLongerRoutesExtractMoreC is the parasitic monotonicity the synthesis
// loop relies on.
func TestLongerRoutesExtractMoreC(t *testing.T) {
	mk := func(gap int) float64 {
		b := netlist.NewBuilder("pair")
		b.Block("a", 4, 4, 4, 4)
		b.Block("c", 4, 4, 4, 4)
		b.Net("n", 1, netlist.P("a"), netlist.P("c"))
		cir := b.MustBuild()
		l := &cost.Layout{
			Circuit:   cir,
			X:         []int{0, gap},
			Y:         []int{0, 0},
			W:         []int{4, 4},
			H:         []int{4, 4},
			Floorplan: geom.NewRect(0, 0, 200, 200),
		}
		return ExtractRC(l, EstimateNets(l))[0].CF
	}
	if mk(100) <= mk(10) {
		t.Error("longer route should extract more capacitance")
	}
}
