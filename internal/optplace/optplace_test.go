package optplace

import (
	"math/rand"
	"testing"

	"mps/internal/circuits"
	"mps/internal/cost"
	"mps/internal/geom"
	"mps/internal/netlist"
	"mps/internal/placement"
)

// midDims returns mid-range dimensions for every block of c.
func midDims(c *netlist.Circuit) (ws, hs []int) {
	ws = make([]int, c.N())
	hs = make([]int, c.N())
	for i, b := range c.Blocks {
		ws[i] = (b.WMin + b.WMax) / 2
		hs[i] = (b.HMin + b.HMax) / 2
	}
	return ws, hs
}

func checkLegal(t *testing.T, fp geom.Rect, ws, hs, x, y []int) {
	t.Helper()
	for i := range ws {
		ri := geom.NewRect(x[i], y[i], ws[i], hs[i])
		if !fp.Contains(ri) {
			t.Fatalf("block %d rect %v outside floorplan %v", i, ri, fp)
		}
		for j := i + 1; j < len(ws); j++ {
			rj := geom.NewRect(x[j], y[j], ws[j], hs[j])
			if ri.Overlaps(rj) {
				t.Fatalf("blocks %d and %d overlap", i, j)
			}
		}
	}
}

func TestPlaceLegalOutput(t *testing.T) {
	for _, name := range []string{"circ01", "TwoStageOpamp", "Mixer"} {
		t.Run(name, func(t *testing.T) {
			c := circuits.MustByName(name)
			fp := placement.DefaultFloorplan(c)
			ws, hs := midDims(c)
			res, err := Place(c, fp, ws, hs, Config{Steps: 500, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			checkLegal(t, fp, ws, hs, res.X, res.Y)
			if res.Cost <= 0 {
				t.Errorf("Cost = %g, want positive", res.Cost)
			}
			if res.Cost > res.Stats.InitCost {
				t.Errorf("best cost %g worse than initial %g", res.Cost, res.Stats.InitCost)
			}
		})
	}
}

func TestPlaceImprovesOverRandom(t *testing.T) {
	c := circuits.MustByName("TwoStageOpamp")
	fp := placement.DefaultFloorplan(c)
	ws, hs := midDims(c)

	// Average random-placement cost as the reference.
	rng := rand.New(rand.NewSource(42))
	var randTotal float64
	const samples = 20
	for k := 0; k < samples; k++ {
		p, err := placement.RandomLegalAt(c, fp, rng, ws, hs)
		if err != nil {
			t.Fatal(err)
		}
		l := cost.Layout{Circuit: c, X: p.X, Y: p.Y, W: ws, H: hs, Floorplan: fp}
		randTotal += cost.DefaultWeights.Cost(&l)
	}
	randMean := randTotal / samples

	res, err := Place(c, fp, ws, hs, Config{Steps: 3000, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost >= randMean {
		t.Errorf("annealed cost %g not better than mean random %g", res.Cost, randMean)
	}
}

func TestPlaceDeterministicWithSeed(t *testing.T) {
	c := circuits.MustByName("circ02")
	fp := placement.DefaultFloorplan(c)
	ws, hs := midDims(c)
	r1, err := Place(c, fp, ws, hs, Config{Steps: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	r2, err := Place(c, fp, ws, hs, Config{Steps: 400, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Cost != r2.Cost {
		t.Errorf("same seed, different costs: %g vs %g", r1.Cost, r2.Cost)
	}
	for i := range r1.X {
		if r1.X[i] != r2.X[i] || r1.Y[i] != r2.Y[i] {
			t.Fatal("same seed, different placements")
		}
	}
}

func TestPlaceMoreStepsNoWorse(t *testing.T) {
	c := circuits.MustByName("Mixer")
	fp := placement.DefaultFloorplan(c)
	ws, hs := midDims(c)
	short, err := Place(c, fp, ws, hs, Config{Steps: 100, Seed: 5, Cooling: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	long, err := Place(c, fp, ws, hs, Config{Steps: 5000, Seed: 5, Cooling: 0.999})
	if err != nil {
		t.Fatal(err)
	}
	// Same seed prefix: the long run has seen every state the short run saw.
	if long.Cost > short.Cost {
		t.Errorf("5000-step cost %g worse than 100-step cost %g", long.Cost, short.Cost)
	}
}

func TestPlaceOversizedBlockErrors(t *testing.T) {
	c := circuits.MustByName("circ01")
	fp := geom.NewRect(0, 0, 10, 10)
	ws, hs := midDims(c)
	ws[0] = 50
	if _, err := Place(c, fp, ws, hs, Config{Steps: 10, Seed: 1}); err == nil {
		t.Error("block larger than floorplan should error")
	}
}

func TestProviderLegalAndVaried(t *testing.T) {
	c := circuits.MustByName("circ06")
	fp := placement.DefaultFloorplan(c)
	pv := &Provider{Circuit: c, FP: fp, Cfg: Config{Steps: 300, Seed: 11}}
	ws, hs := midDims(c)
	x1, y1, err := pv.Place(ws, hs)
	if err != nil {
		t.Fatal(err)
	}
	checkLegal(t, fp, ws, hs, x1, y1)
	x2, y2, err := pv.Place(ws, hs)
	if err != nil {
		t.Fatal(err)
	}
	checkLegal(t, fp, ws, hs, x2, y2)
}
