// Package optplace implements the optimization-based placement baseline the
// paper compares against (§1: KOAN/ANAGRAM-class tools): a full simulated
// annealing over block coordinates, run from scratch for every dimension
// vector. It produces high-quality placements but is orders of magnitude
// slower than a multi-placement-structure query — exactly the trade-off
// Table 2 and the synthesis loop quantify.
package optplace

import (
	"fmt"
	"math/rand"

	"mps/internal/anneal"
	"mps/internal/cost"
	"mps/internal/geom"
	"mps/internal/netlist"
	"mps/internal/placement"
)

// Config controls one annealing placement run.
type Config struct {
	// Steps is the number of SA moves. Default 2000.
	Steps int
	// Cooling is the geometric cooling factor. Default 0.997.
	Cooling float64
	// SwapProb is the probability a move swaps two blocks instead of
	// displacing one. Default 0.2.
	SwapProb float64
	// Seed drives the run's randomness.
	Seed int64
	// Evaluator scores layouts. Default cost.DefaultWeights.
	Evaluator cost.Evaluator
}

func (cfg Config) withDefaults() Config {
	if cfg.Steps == 0 {
		cfg.Steps = 2000
	}
	if cfg.Cooling == 0 {
		cfg.Cooling = 0.997
	}
	if cfg.SwapProb == 0 {
		cfg.SwapProb = 0.2
	}
	if cfg.Evaluator == nil {
		cfg.Evaluator = cost.DefaultWeights
	}
	return cfg
}

// Result is an annealed placement for one dimension vector.
type Result struct {
	X, Y      []int
	Cost      float64 // cost of the best layout found
	FinalCost float64 // cost of the last-accepted layout
	Stats     anneal.Stats
}

// problem is the SA state: block coordinates at fixed dimensions. Moves are
// displacements with toroidal wrap and pair swaps; illegal moves (overlap or
// out of bounds) are retried a bounded number of times, then proposed as
// no-ops, keeping every visited state legal.
type problem struct {
	circuit *netlist.Circuit
	fp      geom.Rect
	place   *placement.Placement
	layout  cost.Layout
	ev      cost.Evaluator
	swap    float64
	maxMove int

	// undo state
	movedI, movedJ int // movedJ == -1 for displacement moves
	prevXI, prevYI int
	prevXJ, prevYJ int

	best  float64
	bestX []int
	bestY []int
}

// Propose implements anneal.Problem.
func (pr *problem) Propose(rng *rand.Rand, magnitude float64) float64 {
	n := pr.circuit.N()
	pr.movedJ = -1
	if n > 1 && rng.Float64() < pr.swap {
		i, j := rng.Intn(n), rng.Intn(n)
		for j == i {
			j = rng.Intn(n)
		}
		pr.movedI, pr.movedJ = i, j
		pr.prevXI, pr.prevYI = pr.place.X[i], pr.place.Y[i]
		pr.prevXJ, pr.prevYJ = pr.place.X[j], pr.place.Y[j]
		pr.place.SwapBlocks(pr.circuit, pr.fp, i, j) // no-op when illegal
	} else {
		i := rng.Intn(n)
		pr.movedI = i
		pr.prevXI, pr.prevYI = pr.place.X[i], pr.place.Y[i]
		shift := int(float64(pr.maxMove)*magnitude) + 1
		pr.place.Perturb1(pr.circuit, pr.fp, rng, i, shift)
	}
	pr.syncLayout()
	c := pr.ev.Cost(&pr.layout)
	if c < pr.best {
		pr.best = c
		copy(pr.bestX, pr.place.X)
		copy(pr.bestY, pr.place.Y)
	}
	return c
}

// Accept implements anneal.Problem.
func (pr *problem) Accept() {}

// Reject implements anneal.Problem.
func (pr *problem) Reject() {
	pr.place.X[pr.movedI], pr.place.Y[pr.movedI] = pr.prevXI, pr.prevYI
	if pr.movedJ >= 0 {
		pr.place.X[pr.movedJ], pr.place.Y[pr.movedJ] = pr.prevXJ, pr.prevYJ
	}
	pr.syncLayout()
}

func (pr *problem) syncLayout() {
	copy(pr.layout.X, pr.place.X)
	copy(pr.layout.Y, pr.place.Y)
}

// Place anneals block coordinates for the sized circuit and returns the best
// placement found. Every returned placement is legal (non-overlapping, in
// bounds).
func Place(c *netlist.Circuit, fp geom.Rect, ws, hs []int, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	p, err := placement.RandomLegalAt(c, fp, rng, ws, hs)
	if err != nil {
		return Result{}, fmt.Errorf("optplace: %w", err)
	}
	n := c.N()
	pr := &problem{
		circuit: c,
		fp:      fp,
		place:   p,
		ev:      cfg.Evaluator,
		swap:    cfg.SwapProb,
		maxMove: max(1, fp.W()/3),
		layout: cost.Layout{
			Circuit:   c,
			X:         make([]int, n),
			Y:         make([]int, n),
			W:         append([]int(nil), ws...),
			H:         append([]int(nil), hs...),
			Floorplan: fp,
		},
		bestX: make([]int, n),
		bestY: make([]int, n),
	}
	pr.syncLayout()
	initCost := cfg.Evaluator.Cost(&pr.layout)
	pr.best = initCost
	copy(pr.bestX, p.X)
	copy(pr.bestY, p.Y)

	stats, err := anneal.Run(pr, initCost, anneal.Config{
		Steps:   cfg.Steps,
		Cooling: cfg.Cooling,
		Rand:    rng,
	})
	if err != nil {
		return Result{}, fmt.Errorf("optplace: %w", err)
	}
	return Result{
		X:         pr.bestX,
		Y:         pr.bestY,
		Cost:      pr.best,
		FinalCost: stats.FinalCost,
		Stats:     stats,
	}, nil
}

// Provider adapts Place to the core.Backup / synthesis provider shape: a
// fresh annealing run per query, with a per-query seed derived from a
// counter so repeated queries explore independently.
type Provider struct {
	Circuit *netlist.Circuit
	FP      geom.Rect
	Cfg     Config
	queries int64
}

// Place implements the provider interface.
func (pv *Provider) Place(ws, hs []int) (x, y []int, err error) {
	cfg := pv.Cfg
	cfg.Seed = cfg.Seed*31 + pv.queries
	pv.queries++
	res, err := Place(pv.Circuit, pv.FP, ws, hs, cfg)
	if err != nil {
		return nil, nil, err
	}
	return res.X, res.Y, nil
}
