// Package cost evaluates placement quality. The paper's cost calculator
// (§3.2.2) charges "wire-lengths and area of that proposed design" and is
// explicitly customizable; this package provides the default weighted
// HPWL + bounding-box-area evaluator plus the Evaluator interface hooks the
// rest of the system composes against.
package cost

import (
	"fmt"

	"mps/internal/geom"
	"mps/internal/netlist"
)

// Layout is the geometric snapshot an Evaluator scores: one circuit, one set
// of block anchors and one set of current dimensions, inside a floorplan.
type Layout struct {
	Circuit *netlist.Circuit
	// X, Y hold the bottom-left anchor of each block.
	X, Y []int
	// W, H hold the current dimensions of each block.
	W, H []int
	// Floorplan bounds the layout; used for pad-stub wire estimation.
	Floorplan geom.Rect
}

// BlockRect returns the rectangle of block i at its current dimensions.
func (l *Layout) BlockRect(i int) geom.Rect {
	return geom.NewRect(l.X[i], l.Y[i], l.W[i], l.H[i])
}

// Validate checks the slices are consistently sized.
func (l *Layout) Validate() error {
	n := l.Circuit.N()
	if len(l.X) != n || len(l.Y) != n || len(l.W) != n || len(l.H) != n {
		return fmt.Errorf("cost: layout slices sized %d/%d/%d/%d, want %d",
			len(l.X), len(l.Y), len(l.W), len(l.H), n)
	}
	return nil
}

// Evaluator scores a layout; lower is better. Implementations must be pure:
// the same layout always gets the same cost.
type Evaluator interface {
	Cost(l *Layout) float64
}

// EvaluatorFunc adapts a function to the Evaluator interface.
type EvaluatorFunc func(l *Layout) float64

// Cost implements Evaluator.
func (f EvaluatorFunc) Cost(l *Layout) float64 { return f(l) }

// Weighted is the default evaluator:
//
//	cost = WireWeight * Σ_nets weight * HPWL(net)
//	     + AreaWeight * area(bounding box of all blocks)
//
// Single-pin terminal nets (pad stubs, DESIGN.md D11) are charged the
// Manhattan distance from the pin to the nearest floorplan edge, modelling
// the wire that must reach the chip boundary.
type Weighted struct {
	WireWeight float64
	AreaWeight float64
}

// DefaultWeights balances the two terms so that on typical benchmarks
// neither dominates: wire length counts per unit, area is scaled down since
// it grows quadratically with floorplan size.
var DefaultWeights = Weighted{WireWeight: 1.0, AreaWeight: 0.05}

// Cost implements Evaluator.
func (wt Weighted) Cost(l *Layout) float64 {
	return wt.WireWeight*float64(WireLength(l)) + wt.AreaWeight*float64(UsedArea(l))
}

// WireLength returns the weighted total wire length of the layout:
// HPWL per multi-pin net plus boundary distance per pad-stub net.
// The result is rounded to an integer number of layout units.
func WireLength(l *Layout) int64 {
	var total float64
	for _, net := range l.Circuit.Nets {
		w := net.Weight
		if w == 0 {
			w = 1
		}
		total += w * float64(netLength(l, net))
	}
	return int64(total + 0.5)
}

// netLength returns the unweighted length of one net.
func netLength(l *Layout, net *netlist.Net) int {
	if len(net.Pins) == 1 {
		p := net.Pins[0]
		pt := p.Position(l.X[p.Block], l.Y[p.Block], l.W[p.Block], l.H[p.Block])
		if p.IsTerminal {
			return distToBoundary(pt, l.Floorplan)
		}
		return 0
	}
	pts := make([]geom.Point, len(net.Pins))
	for i, p := range net.Pins {
		pts[i] = p.Position(l.X[p.Block], l.Y[p.Block], l.W[p.Block], l.H[p.Block])
	}
	return geom.HPWL(pts)
}

// NetLengths returns the unweighted length of every net, indexed like
// Circuit.Nets — used by reporting and the synthesis parasitic model.
func NetLengths(l *Layout) []int {
	out := make([]int, len(l.Circuit.Nets))
	for i, net := range l.Circuit.Nets {
		out[i] = netLength(l, net)
	}
	return out
}

// UsedArea returns the area of the bounding box of all blocks.
func UsedArea(l *Layout) int64 {
	var bb geom.Rect
	for i := range l.Circuit.Blocks {
		bb = bb.Union(l.BlockRect(i))
	}
	return bb.Area()
}

// DeadSpace returns the bounding-box area not covered by any block,
// a packing-quality metric used in reports.
func DeadSpace(l *Layout) int64 {
	var blocks int64
	for i := range l.Circuit.Blocks {
		blocks += l.BlockRect(i).Area()
	}
	return UsedArea(l) - blocks
}

// distToBoundary returns the Manhattan distance from p to the nearest edge
// of the floorplan. Points outside the floorplan are distance 0.
func distToBoundary(p geom.Point, fp geom.Rect) int {
	if fp.Empty() || !fp.ContainsPoint(p) {
		return 0
	}
	d := p.X - fp.X0
	if r := fp.X1 - p.X; r < d {
		d = r
	}
	if b := p.Y - fp.Y0; b < d {
		d = b
	}
	if t := fp.Y1 - p.Y; t < d {
		d = t
	}
	return d
}
