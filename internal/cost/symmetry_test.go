package cost

import (
	"testing"

	"mps/internal/circuits"
	"mps/internal/geom"
	"mps/internal/netlist"
)

// symLayout builds a 3-block circuit (pair l/r + self-symmetric mid) with
// explicit coordinates.
func symLayout(t *testing.T, xs, ys []int) *Layout {
	t.Helper()
	b := netlist.NewBuilder("sym")
	b.Block("l", 8, 8, 8, 8)
	b.Block("r", 8, 8, 8, 8)
	b.Block("mid", 8, 8, 8, 8)
	b.Net("n", 1, netlist.P("l"), netlist.P("r"))
	c := b.MustBuild()
	if err := c.AddSymmetry(&netlist.SymmetryGroup{
		Name:    "g",
		Pairs:   []netlist.SymPair{{A: 0, B: 1}},
		SelfSym: []int{2},
	}); err != nil {
		t.Fatal(err)
	}
	return &Layout{
		Circuit: c,
		X:       xs, Y: ys,
		W:         []int{8, 8, 8},
		H:         []int{8, 8, 8},
		Floorplan: geom.NewRect(0, 0, 100, 100),
	}
}

func TestSymmetryPenaltyZeroForPerfectMirror(t *testing.T) {
	// l at x=10, r at x=50 -> midpoint 34; mid centered at 34 (x=30).
	// All pair blocks at the same y.
	l := symLayout(t, []int{10, 50, 30}, []int{0, 0, 20})
	if got := SymmetryPenalty(l); got != 0 {
		t.Errorf("perfect mirror penalty = %g, want 0", got)
	}
}

func TestSymmetryPenaltyGrowsWithYOffset(t *testing.T) {
	base := SymmetryPenalty(symLayout(t, []int{10, 50, 30}, []int{0, 4, 20}))
	worse := SymmetryPenalty(symLayout(t, []int{10, 50, 30}, []int{0, 12, 20}))
	if base <= 0 {
		t.Fatal("y-offset pair should be penalized")
	}
	if worse <= base {
		t.Errorf("larger y offset penalty %g should exceed %g", worse, base)
	}
}

func TestSymmetryPenaltyChargesOffAxisSelf(t *testing.T) {
	aligned := SymmetryPenalty(symLayout(t, []int{10, 50, 30}, []int{0, 0, 20}))
	offAxis := SymmetryPenalty(symLayout(t, []int{10, 50, 44}, []int{0, 0, 20}))
	if offAxis <= aligned {
		t.Errorf("off-axis self-symmetric block penalty %g should exceed %g", offAxis, aligned)
	}
}

func TestSymmetryPenaltyChargesDimensionMismatch(t *testing.T) {
	l := symLayout(t, []int{10, 50, 30}, []int{0, 0, 20})
	l.W[1] = 12 // mirrored pair with mismatched widths
	if got := SymmetryPenalty(l); got <= 0 {
		t.Error("dimension mismatch between mirrored blocks should be penalized")
	}
}

func TestSymmetryPenaltyZeroWithoutGroups(t *testing.T) {
	c := circuits.MustByName("circ01") // synthetic: no symmetry groups
	n := c.N()
	l := &Layout{
		Circuit: c,
		X:       make([]int, n), Y: make([]int, n),
		W: make([]int, n), H: make([]int, n),
		Floorplan: geom.NewRect(0, 0, 100, 100),
	}
	for i, b := range c.Blocks {
		l.X[i] = i * 20
		l.W[i], l.H[i] = b.WMin, b.HMin
	}
	if got := SymmetryPenalty(l); got != 0 {
		t.Errorf("no groups: penalty = %g, want 0", got)
	}
}

func TestNamedBenchmarksCarrySymmetry(t *testing.T) {
	for _, name := range []string{"TwoStageOpamp", "SingleEndedOpamp", "Mixer"} {
		c := circuits.MustByName(name)
		if len(c.Symmetries) == 0 {
			t.Errorf("%s: expected symmetry groups", name)
		}
		if err := c.Validate(); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestCompositeAndWithSymmetry(t *testing.T) {
	l := symLayout(t, []int{10, 50, 44}, []int{0, 6, 20}) // asymmetric
	base := DefaultWeights.Cost(l)
	sym := SymmetryPenalty(l)
	if sym <= 0 {
		t.Fatal("layout should be asymmetric")
	}
	comp := Composite{
		{Weight: 1, Eval: DefaultWeights},
		{Weight: 3, Eval: EvaluatorFunc(SymmetryPenalty)},
	}
	if got, want := comp.Cost(l), base+3*sym; got != want {
		t.Errorf("Composite.Cost = %g, want %g", got, want)
	}
	ws := WithSymmetry(DefaultWeights, 2)
	if got, want := ws.Cost(l), base+2*sym; got != want {
		t.Errorf("WithSymmetry cost = %g, want %g", got, want)
	}
}

// TestSymmetryAwarePlacementScoresBetter: a mirrored layout must beat an
// asymmetric one under WithSymmetry while tying under the base evaluator
// when wire/area are equal.
func TestSymmetryAwarePlacementScoresBetter(t *testing.T) {
	mirror := symLayout(t, []int{10, 50, 30}, []int{0, 0, 20})
	skew := symLayout(t, []int{10, 50, 30}, []int{0, 10, 20})
	ev := WithSymmetry(DefaultWeights, 5)
	if ev.Cost(mirror) >= ev.Cost(skew) {
		t.Errorf("mirrored layout %g should beat skewed %g under symmetry-aware cost",
			ev.Cost(mirror), ev.Cost(skew))
	}
}
