package cost

// The weighted objective vector. The paper's cost calculator (§3.2.2) is
// "explicitly customizable"; this file generalizes the scalar
// HPWL + 0.05·area default into per-objective terms — wire length,
// bounding-box area, and aspect-ratio deviation — scalarized by a
// Weights vector. The all-zero (and the explicitly balanced) vector is
// byte-identical to the historical Weighted default, which is what lets
// weights thread through every layer above without perturbing a single
// existing structure, spec key, or routing decision.

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"mps/internal/geom"
)

// Terms is the per-objective cost vector of one layout, all in exact
// integer layout units so cross-member comparisons are deterministic:
//
//	Wire   — weighted total wire length (WireLength)
//	Area   — bounding-box area (UsedArea)
//	Dead   — bounding-box area minus summed block areas (DeadSpace)
//	Aspect — aspect-ratio deviation of the bounding box (AspectDeviation)
type Terms struct {
	Wire   int64 `json:"wire"`
	Area   int64 `json:"area"`
	Dead   int64 `json:"dead"`
	Aspect int64 `json:"aspect"`
}

// AspectDeviation charges a bounding box for being non-square: with
// long/short the larger/smaller side, the charge is long·(long−short) =
// area·(long/short − 1) — the extra area needed to square the box. Zero
// for squares, grows linearly with elongation, and trades in the same
// units as Area so one weight spans both. The target ratio is 1:1, the
// natural choice for the common-centroid-style layouts the benchmarks
// model; orientation does not matter (w and h commute).
func AspectDeviation(w, h int) int64 {
	long, short := int64(w), int64(h)
	if long < short {
		long, short = short, long
	}
	return long * (long - short)
}

// Vector evaluates every objective term of the layout in one pass over
// the blocks (plus the net loop WireLength always did).
func Vector(l *Layout) Terms {
	var bb geom.Rect
	var blocks int64
	for i := range l.Circuit.Blocks {
		r := l.BlockRect(i)
		bb = bb.Union(r)
		blocks += r.Area()
	}
	area := bb.Area()
	return Terms{
		Wire:   WireLength(l),
		Area:   area,
		Dead:   area - blocks,
		Aspect: AspectDeviation(bb.W(), bb.H()),
	}
}

// Weights is the objective weight vector scalarizing Terms. The zero
// value means "the default balanced objective" everywhere weights
// appear — requests, specs, queries — so adding a Weights field to an
// existing struct changes nothing for existing callers.
type Weights struct {
	Wire   float64
	Area   float64
	Aspect float64
}

// The weight ladder: the objective mixes a portfolio spreads its members
// across when the caller asks for diversity but names no weights (see
// WeightLadder). Magnitudes stay near the balanced default because
// annealing acceptance depends on the cost scale, not just its gradient.
var (
	// BalancedWeights is the canonical form of the default objective —
	// numerically identical to DefaultWeights (wire 1, area 0.05, no
	// aspect term), pinned by TestWeightsDefaultBitIdentical.
	BalancedWeights = Weights{Wire: 1.0, Area: 0.05}
	// AreaHeavyWeights trades wire for packing density.
	AreaHeavyWeights = Weights{Wire: 0.2, Area: 0.25}
	// WireHeavyWeights nearly ignores area in favor of short nets.
	WireHeavyWeights = Weights{Wire: 1.0, Area: 0.01}
	// AspectHeavyWeights pulls the bounding box toward a square.
	AspectHeavyWeights = Weights{Wire: 0.5, Area: 0.05, Aspect: 0.25}
)

// WeightLadder returns the k member objectives of a weight-diverse
// portfolio: area-heavy, wire-heavy, aspect-heavy, balanced, cycling for
// larger k. The order puts the two strongest contrasts first so even a
// 2-member portfolio gets genuine objective diversity.
func WeightLadder(k int) []Weights {
	rungs := []Weights{AreaHeavyWeights, WireHeavyWeights, AspectHeavyWeights, BalancedWeights}
	out := make([]Weights, k)
	for i := range out {
		out[i] = rungs[i%len(rungs)]
	}
	return out
}

// IsZero reports whether w is the zero vector — the "default objective"
// sentinel.
func (w Weights) IsZero() bool { return w == Weights{} }

// Canonical resolves the zero-vector sentinel to BalancedWeights and
// returns every other vector unchanged.
func (w Weights) Canonical() Weights {
	if w.IsZero() {
		return BalancedWeights
	}
	return w
}

// IsDefault reports whether w means the default balanced objective —
// either the zero sentinel or the explicit balanced vector. Layers that
// key or tag by weights use this to keep default-weight artifacts on
// their historical, suffix-free identities.
func (w Weights) IsDefault() bool { return w.Canonical() == BalancedWeights }

// Validate checks every component is finite and non-negative. The zero
// vector is valid (it is the default sentinel).
func (w Weights) Validate() error {
	for _, c := range [...]struct {
		name string
		v    float64
	}{{"wire", w.Wire}, {"area", w.Area}, {"aspect", w.Aspect}} {
		if math.IsNaN(c.v) || math.IsInf(c.v, 0) || c.v < 0 {
			return fmt.Errorf("cost: %s weight %v invalid: weights must be finite and non-negative", c.name, c.v)
		}
	}
	return nil
}

// Key renders the canonical form as "wire,area,aspect" with shortest
// round-trippable floats — the stable token spec keys and manifest rows
// embed for non-default weights.
func (w Weights) Key() string {
	w = w.Canonical()
	parts := [...]string{
		strconv.FormatFloat(w.Wire, 'g', -1, 64),
		strconv.FormatFloat(w.Area, 'g', -1, 64),
		strconv.FormatFloat(w.Aspect, 'g', -1, 64),
	}
	return strings.Join(parts[:], ",")
}

// Scalarize collapses a term vector to one comparable cost. The wire and
// area products mirror Weighted.Cost exactly; the aspect term is added
// only when weighted, so default-weight scalarization stays bit-identical
// to the historical scalar.
func (w Weights) Scalarize(t Terms) float64 {
	w = w.Canonical()
	c := w.Wire*float64(t.Wire) + w.Area*float64(t.Area)
	if w.Aspect != 0 {
		c += w.Aspect * float64(t.Aspect)
	}
	return c
}

// Cost implements Evaluator: the weighted scalarization of the layout's
// term vector. At default weights this computes the same float expression
// as Weighted.Cost in the same order, so generation under an explicit
// balanced vector is bit-identical to generation under no weights at all
// (pinned by TestWeightsDefaultBitIdentical).
func (w Weights) Cost(l *Layout) float64 {
	w = w.Canonical()
	c := w.Wire*float64(WireLength(l)) + w.Area*float64(UsedArea(l))
	if w.Aspect != 0 {
		bb := boundingBox(l)
		c += w.Aspect * float64(AspectDeviation(bb.W(), bb.H()))
	}
	return c
}

// boundingBox returns the bounding box of all blocks.
func boundingBox(l *Layout) geom.Rect {
	var bb geom.Rect
	for i := range l.Circuit.Blocks {
		bb = bb.Union(l.BlockRect(i))
	}
	return bb
}

// BoundaryDist exposes the pad-stub charge (distToBoundary) for the
// compiled per-objective probe, which mirrors WireLength over the int32
// anchor tables without materializing a Layout.
func BoundaryDist(p geom.Point, fp geom.Rect) int { return distToBoundary(p, fp) }
