package cost

import "math"

// SymmetryPenalty scores how far a layout deviates from the circuit's
// symmetry groups. For each group the penalty measures, per mirror pair,
// the mismatch of the pair's midpoint against the group axis (horizontal)
// and the vertical offset between the pair; self-symmetric blocks are
// charged their center's distance to the axis. The axis itself is free: it
// is chosen per group as the penalty-minimizing position (the mean of the
// constrained centers), so only relative geometry is constrained, exactly
// like analog placers treat symmetry.
//
// The result is in layout units (a length), so it composes naturally with
// wire length in a weighted sum.
func SymmetryPenalty(l *Layout) float64 {
	total := 0.0
	for _, g := range l.Circuit.Symmetries {
		// Optimal vertical axis: mean of pair midpoints and self centers.
		sum, n := 0.0, 0
		centerX := func(i int) float64 { return float64(l.X[i]) + float64(l.W[i])/2 }
		for _, p := range g.Pairs {
			sum += (centerX(p.A) + centerX(p.B)) / 2
			n++
		}
		for _, i := range g.SelfSym {
			sum += centerX(i)
			n++
		}
		if n == 0 {
			continue
		}
		axis := sum / float64(n)
		for _, p := range g.Pairs {
			mid := (centerX(p.A) + centerX(p.B)) / 2
			total += math.Abs(mid - axis)
			total += math.Abs(float64(l.Y[p.A]) - float64(l.Y[p.B]))
			// Mirrored devices must also match dimensions; mismatch is a
			// placement-independent term but charging it keeps degenerate
			// sizings visible to the synthesis loop.
			total += math.Abs(float64(l.W[p.A]) - float64(l.W[p.B]))
			total += math.Abs(float64(l.H[p.A]) - float64(l.H[p.B]))
		}
		for _, i := range g.SelfSym {
			total += math.Abs(centerX(i) - axis)
		}
	}
	return total
}

// Term is one weighted component of a composite evaluator.
type Term struct {
	Weight float64
	Eval   Evaluator
}

// Composite sums weighted evaluator terms — the mechanism for adding
// symmetry (or any custom term) to the default wire+area cost:
//
//	ev := cost.Composite{
//	    {1, cost.DefaultWeights},
//	    {4, cost.EvaluatorFunc(func(l *cost.Layout) float64 { return cost.SymmetryPenalty(l) })),
//	}
type Composite []Term

// Cost implements Evaluator.
func (cp Composite) Cost(l *Layout) float64 {
	total := 0.0
	for _, t := range cp {
		total += t.Weight * t.Eval.Cost(l)
	}
	return total
}

// WithSymmetry returns the standard analog evaluator: the given base cost
// plus the symmetry penalty at the given weight.
func WithSymmetry(base Evaluator, weight float64) Evaluator {
	return Composite{
		{Weight: 1, Eval: base},
		{Weight: weight, Eval: EvaluatorFunc(SymmetryPenalty)},
	}
}
