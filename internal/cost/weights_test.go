package cost

import (
	"math"
	"math/rand"
	"strings"
	"testing"

	"mps/internal/circuits"
	"mps/internal/geom"
)

// randomLayout builds a layout for a benchmark circuit with random
// designer dimensions and loosely packed random anchors.
func randomLayout(name string, rng *rand.Rand) *Layout {
	c := circuits.MustByName(name)
	n := c.N()
	l := &Layout{
		Circuit:   c,
		X:         make([]int, n),
		Y:         make([]int, n),
		W:         make([]int, n),
		H:         make([]int, n),
		Floorplan: geom.NewRect(0, 0, 4096, 4096),
	}
	for i, b := range c.Blocks {
		l.W[i] = b.WMin + rng.Intn(b.WMax-b.WMin+1)
		l.H[i] = b.HMin + rng.Intn(b.HMax-b.HMin+1)
		l.X[i] = rng.Intn(2048)
		l.Y[i] = rng.Intn(2048)
	}
	return l
}

// TestWeightsDefaultBitIdentical pins the compatibility contract the
// whole refactor hangs on: the zero vector, the explicit balanced
// vector, and the scalarized term vector all reproduce the historical
// Weighted default bit for bit, on every seed circuit.
func TestWeightsDefaultBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, name := range circuits.Names() {
		for trial := 0; trial < 8; trial++ {
			l := randomLayout(name, rng)
			want := DefaultWeights.Cost(l)
			if got := (Weights{}).Cost(l); got != want {
				t.Fatalf("%s: zero-vector cost %v != Weighted default %v", name, got, want)
			}
			if got := BalancedWeights.Cost(l); got != want {
				t.Fatalf("%s: balanced cost %v != Weighted default %v", name, got, want)
			}
			if got := BalancedWeights.Scalarize(Vector(l)); got != want {
				t.Fatalf("%s: scalarized default %v != Weighted default %v", name, got, want)
			}
		}
	}
}

func TestVectorTerms(t *testing.T) {
	// Blocks 4x4 at (0,0) and (10,0): bbox 14x4, HPWL 10.
	l := twoBlockLayout(0, 0, 10, 0)
	got := Vector(l)
	want := Terms{Wire: 10, Area: 56, Dead: 56 - 32, Aspect: 14 * (14 - 4)}
	if got != want {
		t.Fatalf("Vector = %+v, want %+v", got, want)
	}
	if got.Wire != WireLength(l) || got.Area != UsedArea(l) || got.Dead != DeadSpace(l) {
		t.Fatalf("Vector terms disagree with the scalar helpers: %+v", got)
	}
}

func TestAspectDeviation(t *testing.T) {
	if d := AspectDeviation(7, 7); d != 0 {
		t.Errorf("square deviation = %d, want 0", d)
	}
	if a, b := AspectDeviation(14, 4), AspectDeviation(4, 14); a != b {
		t.Errorf("orientation must not matter: %d vs %d", a, b)
	}
	// 12x4 needs 12*(12-4) = 96 extra units to square up.
	if d := AspectDeviation(12, 4); d != 96 {
		t.Errorf("AspectDeviation(12,4) = %d, want 96", d)
	}
	// More elongated at equal area costs more.
	if AspectDeviation(16, 4) <= AspectDeviation(8, 8) {
		t.Error("elongation must raise the deviation at equal area")
	}
}

func TestWeightsAspectTermCharges(t *testing.T) {
	elongated := twoBlockLayout(0, 0, 20, 0) // bbox 24x4
	squarish := twoBlockLayout(0, 0, 0, 4)   // bbox 4x8
	w := AspectHeavyWeights
	base := Weights{Wire: w.Wire, Area: w.Area}
	if w.Cost(elongated) <= base.Cost(elongated) {
		t.Error("aspect weight must charge an elongated layout")
	}
	gotE := w.Cost(elongated) - base.Cost(elongated)
	gotS := w.Cost(squarish) - base.Cost(squarish)
	if gotE <= gotS {
		t.Errorf("aspect charge must favor the squarer box: elongated %+v vs squarish %+v", gotE, gotS)
	}
}

func TestWeightsValidate(t *testing.T) {
	for _, w := range []Weights{{}, BalancedWeights, AreaHeavyWeights, WireHeavyWeights, AspectHeavyWeights} {
		if err := w.Validate(); err != nil {
			t.Errorf("Validate(%+v) = %v, want nil", w, err)
		}
	}
	bad := []struct {
		w       Weights
		mention string
	}{
		{Weights{Wire: -1}, "wire"},
		{Weights{Wire: 1, Area: -0.5}, "area"},
		{Weights{Aspect: math.Inf(1)}, "aspect"},
		{Weights{Wire: math.NaN()}, "wire"},
	}
	for _, tc := range bad {
		err := tc.w.Validate()
		if err == nil {
			t.Errorf("Validate(%+v) accepted", tc.w)
			continue
		}
		if !strings.Contains(err.Error(), tc.mention) || !strings.Contains(err.Error(), "finite and non-negative") {
			t.Errorf("Validate(%+v) = %q, want mention of %q and the constraint", tc.w, err, tc.mention)
		}
	}
}

func TestWeightsKeyAndCanonical(t *testing.T) {
	if got := (Weights{}).Key(); got != "1,0.05,0" {
		t.Errorf("zero-vector key = %q, want the balanced canonical form", got)
	}
	if got, want := (Weights{}).Key(), BalancedWeights.Key(); got != want {
		t.Errorf("zero and balanced keys differ: %q vs %q", got, want)
	}
	if got := WireHeavyWeights.Key(); got != "1,0.01,0" {
		t.Errorf("wire-heavy key = %q", got)
	}
	if !(Weights{}).IsDefault() || !BalancedWeights.IsDefault() {
		t.Error("zero and balanced vectors must both be default")
	}
	if AreaHeavyWeights.IsDefault() {
		t.Error("area-heavy must not be default")
	}
	if got := (Weights{}).Canonical(); got != BalancedWeights {
		t.Errorf("Canonical(zero) = %+v", got)
	}
	if got := WireHeavyWeights.Canonical(); got != WireHeavyWeights {
		t.Errorf("Canonical must keep non-zero vectors: %+v", got)
	}
}

func TestWeightLadder(t *testing.T) {
	l := WeightLadder(6)
	if len(l) != 6 {
		t.Fatalf("ladder length %d, want 6", len(l))
	}
	want := []Weights{AreaHeavyWeights, WireHeavyWeights, AspectHeavyWeights, BalancedWeights,
		AreaHeavyWeights, WireHeavyWeights}
	for i := range l {
		if l[i] != want[i] {
			t.Errorf("rung %d = %+v, want %+v", i, l[i], want[i])
		}
	}
	for i, w := range l {
		if err := w.Validate(); err != nil {
			t.Errorf("rung %d invalid: %v", i, err)
		}
	}
}
