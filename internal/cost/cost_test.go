package cost

import (
	"math/rand"
	"testing"

	"mps/internal/circuits"
	"mps/internal/geom"
	"mps/internal/netlist"
)

// twoBlockLayout builds a minimal two-block circuit with one connecting net
// and returns a layout with the blocks at the given anchors.
func twoBlockLayout(x0, y0, x1, y1 int) *Layout {
	b := netlist.NewBuilder("pair")
	b.Block("a", 4, 4, 4, 4)
	b.Block("b", 4, 4, 4, 4)
	b.Net("n", 1, netlist.P("a"), netlist.P("b"))
	c := b.MustBuild()
	return &Layout{
		Circuit:   c,
		X:         []int{x0, x1},
		Y:         []int{y0, y1},
		W:         []int{4, 4},
		H:         []int{4, 4},
		Floorplan: geom.NewRect(0, 0, 100, 100),
	}
}

func TestWireLengthTwoBlocks(t *testing.T) {
	l := twoBlockLayout(0, 0, 10, 0)
	// Pin centers: (2,2) and (12,2) -> HPWL = 10.
	if got := WireLength(l); got != 10 {
		t.Errorf("WireLength = %d, want 10", got)
	}
}

func TestWireLengthMovesWithBlocks(t *testing.T) {
	near := WireLength(twoBlockLayout(0, 0, 6, 0))
	far := WireLength(twoBlockLayout(0, 0, 60, 0))
	if far <= near {
		t.Errorf("moving blocks apart must raise wire length: near=%d far=%d", near, far)
	}
}

func TestWireLengthNetWeight(t *testing.T) {
	l := twoBlockLayout(0, 0, 10, 0)
	l.Circuit.Nets[0].Weight = 3
	if got := WireLength(l); got != 30 {
		t.Errorf("weighted WireLength = %d, want 30", got)
	}
}

func TestPadStubChargesBoundaryDistance(t *testing.T) {
	b := netlist.NewBuilder("stub")
	b.Block("a", 4, 4, 4, 4)
	b.Net("pad", 1, netlist.T("a", 0.5, 0.5))
	c := b.MustBuild()
	center := &Layout{
		Circuit: c, X: []int{48}, Y: []int{48},
		W: []int{4}, H: []int{4},
		Floorplan: geom.NewRect(0, 0, 100, 100),
	}
	edge := &Layout{
		Circuit: c, X: []int{0}, Y: []int{48},
		W: []int{4}, H: []int{4},
		Floorplan: geom.NewRect(0, 0, 100, 100),
	}
	if WireLength(center) <= WireLength(edge) {
		t.Errorf("pad stub at center (%d) should cost more than at edge (%d)",
			WireLength(center), WireLength(edge))
	}
}

func TestSinglePinInternalNetIsFree(t *testing.T) {
	b := netlist.NewBuilder("free")
	b.Block("a", 4, 4, 4, 4)
	b.Block("z", 4, 4, 4, 4)
	b.Net("n", 1, netlist.P("a"), netlist.P("z"))
	c := b.MustBuild()
	// Force a single-pin non-terminal net directly (Validate would reject it;
	// the evaluator must still be defensive).
	c.Nets = append(c.Nets, &netlist.Net{
		Name: "solo", Weight: 1,
		Pins: []netlist.Pin{{Block: 0, FracX: 0.5, FracY: 0.5}},
	})
	l := &Layout{
		Circuit: c, X: []int{10, 20}, Y: []int{10, 10},
		W: []int{4, 4}, H: []int{4, 4},
		Floorplan: geom.NewRect(0, 0, 100, 100),
	}
	lengths := NetLengths(l)
	if lengths[1] != 0 {
		t.Errorf("single-pin internal net length = %d, want 0", lengths[1])
	}
}

func TestUsedAreaAndDeadSpace(t *testing.T) {
	l := twoBlockLayout(0, 0, 6, 0) // blocks [0,4) and [6,10) x [0,4)
	if got := UsedArea(l); got != 40 {
		t.Errorf("UsedArea = %d, want 40 (10x4 bounding box)", got)
	}
	if got := DeadSpace(l); got != 8 {
		t.Errorf("DeadSpace = %d, want 8 (2x4 gap)", got)
	}
}

func TestWeightedCostCombinesTerms(t *testing.T) {
	l := twoBlockLayout(0, 0, 10, 0)
	wire := float64(WireLength(l))
	area := float64(UsedArea(l))
	ev := Weighted{WireWeight: 2, AreaWeight: 0.5}
	want := 2*wire + 0.5*area
	if got := ev.Cost(l); got != want {
		t.Errorf("Cost = %g, want %g", got, want)
	}
}

func TestWeightedCostMonotoneInSpread(t *testing.T) {
	ev := DefaultWeights
	compact := ev.Cost(twoBlockLayout(0, 0, 4, 0))
	spread := ev.Cost(twoBlockLayout(0, 0, 50, 0))
	if compact >= spread {
		t.Errorf("compact layout (%g) should cost less than spread layout (%g)", compact, spread)
	}
}

func TestEvaluatorFunc(t *testing.T) {
	called := false
	ev := EvaluatorFunc(func(l *Layout) float64 { called = true; return 7 })
	if got := ev.Cost(nil); got != 7 || !called {
		t.Error("EvaluatorFunc did not delegate")
	}
}

func TestLayoutValidate(t *testing.T) {
	l := twoBlockLayout(0, 0, 10, 0)
	if err := l.Validate(); err != nil {
		t.Errorf("Validate() = %v, want nil", err)
	}
	l.W = l.W[:1]
	if err := l.Validate(); err == nil {
		t.Error("Validate() should fail on short slice")
	}
}

func TestDistToBoundary(t *testing.T) {
	fp := geom.NewRect(0, 0, 100, 50)
	tests := []struct {
		p    geom.Point
		want int
	}{
		{geom.Point{X: 50, Y: 25}, 25},  // center: nearest is top/bottom
		{geom.Point{X: 3, Y: 25}, 3},    // near left edge
		{geom.Point{X: 97, Y: 25}, 3},   // near right edge
		{geom.Point{X: 50, Y: 2}, 2},    // near bottom
		{geom.Point{X: 200, Y: 200}, 0}, // outside
	}
	for _, tc := range tests {
		if got := distToBoundary(tc.p, fp); got != tc.want {
			t.Errorf("distToBoundary(%v) = %d, want %d", tc.p, got, tc.want)
		}
	}
}

// TestCostDeterministic guards the purity requirement of Evaluator on a
// real benchmark with random layouts.
func TestCostDeterministic(t *testing.T) {
	c := circuits.MustByName("TwoStageOpamp")
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		n := c.N()
		l := &Layout{
			Circuit:   c,
			X:         make([]int, n),
			Y:         make([]int, n),
			W:         make([]int, n),
			H:         make([]int, n),
			Floorplan: geom.NewRect(0, 0, 500, 500),
		}
		for i, blk := range c.Blocks {
			l.X[i] = rng.Intn(400)
			l.Y[i] = rng.Intn(400)
			l.W[i] = blk.WMin + rng.Intn(blk.WMax-blk.WMin+1)
			l.H[i] = blk.HMin + rng.Intn(blk.HMax-blk.HMin+1)
		}
		a := DefaultWeights.Cost(l)
		b := DefaultWeights.Cost(l)
		if a != b {
			t.Fatalf("cost not deterministic: %g vs %g", a, b)
		}
		if a <= 0 {
			t.Fatalf("cost = %g, want positive for a real layout", a)
		}
	}
}
