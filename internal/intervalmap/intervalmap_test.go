package intervalmap

import (
	"math/rand"
	"reflect"
	"testing"

	"mps/internal/geom"
)

func iv(lo, hi int) geom.Interval { return geom.NewInterval(lo, hi) }

func TestInsertIntoEmptyRow(t *testing.T) {
	var r Row
	r.Insert(0, iv(5, 10))
	if got := r.Lookup(7); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Lookup(7) = %v, want [0]", got)
	}
	if got := r.Lookup(4); got != nil {
		t.Errorf("Lookup(4) = %v, want nil", got)
	}
	if got := r.Lookup(11); got != nil {
		t.Errorf("Lookup(11) = %v, want nil", got)
	}
	if err := r.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestInsertDisjointKeepsAscendingOrder(t *testing.T) {
	var r Row
	r.Insert(1, iv(20, 30))
	r.Insert(0, iv(1, 5))
	r.Insert(2, iv(10, 12))
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	spans := r.Snapshot()
	if len(spans) != 3 {
		t.Fatalf("got %d spans, want 3: %v", len(spans), r.String())
	}
	if spans[0].Iv != iv(1, 5) || spans[1].Iv != iv(10, 12) || spans[2].Iv != iv(20, 30) {
		t.Errorf("spans out of order: %v", r.String())
	}
}

func TestInsertOverlappingSplits(t *testing.T) {
	var r Row
	r.Insert(0, iv(0, 10))
	r.Insert(1, iv(5, 15))
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	cases := []struct {
		v    int
		want []int
	}{
		{0, []int{0}},
		{4, []int{0}},
		{5, []int{0, 1}},
		{10, []int{0, 1}},
		{11, []int{1}},
		{15, []int{1}},
		{16, nil},
	}
	for _, tc := range cases {
		if got := r.Lookup(tc.v); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Lookup(%d) = %v, want %v (%s)", tc.v, got, tc.want, r.String())
		}
	}
}

func TestInsertContainedInterval(t *testing.T) {
	var r Row
	r.Insert(0, iv(0, 20))
	r.Insert(1, iv(8, 12))
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := r.Lookup(10); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("Lookup(10) = %v, want [0 1]", got)
	}
	if got := r.Lookup(7); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Lookup(7) = %v, want [0]", got)
	}
	if got := r.Lookup(13); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Lookup(13) = %v, want [0]", got)
	}
}

func TestInsertSpanningGapsAndNodes(t *testing.T) {
	var r Row
	r.Insert(0, iv(0, 3))
	r.Insert(1, iv(10, 13))
	// id 2 spans gap + node + gap + node + trailing gap.
	r.Insert(2, iv(2, 20))
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	checks := []struct {
		v    int
		want []int
	}{
		{0, []int{0}},
		{2, []int{0, 2}},
		{5, []int{2}},
		{10, []int{1, 2}},
		{14, []int{2}},
		{20, []int{2}},
		{21, nil},
	}
	for _, tc := range checks {
		if got := r.Lookup(tc.v); !reflect.DeepEqual(got, tc.want) {
			t.Errorf("Lookup(%d) = %v, want %v (%s)", tc.v, got, tc.want, r.String())
		}
	}
}

func TestInsertEmptyIntervalNoop(t *testing.T) {
	var r Row
	r.Insert(0, iv(5, 4))
	if !r.Empty() {
		t.Error("inserting empty interval should be a no-op")
	}
}

func TestInsertIdempotent(t *testing.T) {
	var r Row
	r.Insert(0, iv(0, 10))
	r.Insert(0, iv(0, 10))
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := r.Lookup(5); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Lookup(5) = %v, want [0]", got)
	}
}

func TestRemoveFullInterval(t *testing.T) {
	var r Row
	r.Insert(0, iv(0, 10))
	r.Remove(0, iv(0, 10))
	if !r.Empty() {
		t.Errorf("row should be empty after full removal: %s", r.String())
	}
}

func TestRemovePartialSplits(t *testing.T) {
	var r Row
	r.Insert(0, iv(0, 10))
	r.Remove(0, iv(4, 6))
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := r.Lookup(3); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Lookup(3) = %v, want [0]", got)
	}
	if got := r.Lookup(5); got != nil {
		t.Errorf("Lookup(5) = %v, want nil", got)
	}
	if got := r.Lookup(7); !reflect.DeepEqual(got, []int{0}) {
		t.Errorf("Lookup(7) = %v, want [0]", got)
	}
}

func TestRemoveOnlyTargetID(t *testing.T) {
	var r Row
	r.Insert(0, iv(0, 10))
	r.Insert(1, iv(0, 10))
	r.Remove(0, iv(0, 10))
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if got := r.Lookup(5); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("Lookup(5) = %v, want [1]", got)
	}
}

func TestRemoveAll(t *testing.T) {
	var r Row
	r.Insert(0, iv(0, 5))
	r.Insert(0, iv(10, 15))
	r.Insert(1, iv(3, 12))
	r.RemoveAll(0)
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for v := 0; v <= 15; v++ {
		got := r.Lookup(v)
		for _, id := range got {
			if id == 0 {
				t.Fatalf("id 0 still present at %d after RemoveAll", v)
			}
		}
	}
	if got := r.Lookup(5); !reflect.DeepEqual(got, []int{1}) {
		t.Errorf("Lookup(5) = %v, want [1]", got)
	}
}

func TestRemoveCoalesces(t *testing.T) {
	var r Row
	r.Insert(0, iv(0, 20))
	r.Insert(1, iv(5, 10)) // splits into [0,4]{0} [5,10]{0,1} [11,20]{0}
	r.Remove(1, iv(5, 10)) // should merge back into [0,20]{0}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if r.Len() != 1 {
		t.Errorf("Len = %d, want 1 after coalesce: %s", r.Len(), r.String())
	}
}

func TestIDsOverlapping(t *testing.T) {
	var r Row
	r.Insert(0, iv(0, 5))
	r.Insert(1, iv(4, 10))
	r.Insert(2, iv(20, 25))
	got := r.IDsOverlapping(iv(5, 21))
	if !reflect.DeepEqual(got, []int{0, 1, 2}) {
		t.Errorf("IDsOverlapping = %v, want [0 1 2]", got)
	}
	got = r.IDsOverlapping(iv(11, 19))
	if len(got) != 0 {
		t.Errorf("IDsOverlapping gap = %v, want empty", got)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	var r Row
	r.Insert(0, iv(0, 5))
	r.Insert(1, iv(3, 9))
	r.Insert(2, iv(20, 30))
	spans := r.Snapshot()
	r2, err := FromSnapshot(spans)
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	for v := -1; v <= 31; v++ {
		a, b := r.Lookup(v), r2.Lookup(v)
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("Lookup(%d) differs after round trip: %v vs %v", v, a, b)
		}
	}
}

// TestVisitMatchesSnapshot pins Visit (the allocation-free walk behind
// core.Compile) to Snapshot's view of the row, order included.
func TestVisitMatchesSnapshot(t *testing.T) {
	var r Row
	r.Insert(0, iv(0, 5))
	r.Insert(1, iv(3, 9))
	r.Insert(2, iv(20, 30))
	var visited []Span
	r.Visit(func(ivl geom.Interval, ids []int) {
		visited = append(visited, Span{Iv: ivl, IDs: append([]int(nil), ids...)})
	})
	if !reflect.DeepEqual(visited, r.Snapshot()) {
		t.Fatalf("Visit saw %v, Snapshot says %v", visited, r.Snapshot())
	}
	var empty Row
	empty.Visit(func(geom.Interval, []int) { t.Fatal("Visit on empty row called fn") })
}

func TestFromSnapshotRejectsBadInput(t *testing.T) {
	bad := [][]Span{
		{{Iv: iv(5, 4), IDs: []int{0}}},                                // empty interval
		{{Iv: iv(0, 5), IDs: nil}},                                     // no ids
		{{Iv: iv(0, 5), IDs: []int{0}}, {Iv: iv(3, 8), IDs: []int{1}}}, // overlap
	}
	for i, spans := range bad {
		if _, err := FromSnapshot(spans); err == nil {
			t.Errorf("case %d: FromSnapshot accepted invalid snapshot", i)
		}
	}
}

// TestRandomizedAgainstOracle drives a Row with random inserts/removes and
// cross-checks every lookup against a brute-force map oracle.
func TestRandomizedAgainstOracle(t *testing.T) {
	const domain = 64
	rng := rand.New(rand.NewSource(123))
	for trial := 0; trial < 50; trial++ {
		var r Row
		oracle := make(map[int]map[int]bool) // value -> set of ids
		for op := 0; op < 200; op++ {
			id := rng.Intn(8)
			lo := rng.Intn(domain)
			hi := lo + rng.Intn(domain-lo)
			interval := iv(lo, hi)
			if rng.Float64() < 0.65 {
				r.Insert(id, interval)
				for v := lo; v <= hi; v++ {
					if oracle[v] == nil {
						oracle[v] = map[int]bool{}
					}
					oracle[v][id] = true
				}
			} else {
				r.Remove(id, interval)
				for v := lo; v <= hi; v++ {
					delete(oracle[v], id)
				}
			}
		}
		if err := r.CheckInvariants(); err != nil {
			t.Fatalf("trial %d: %v\n%s", trial, err, r.String())
		}
		for v := 0; v < domain; v++ {
			got := r.Lookup(v)
			want := oracle[v]
			if len(got) != len(want) {
				t.Fatalf("trial %d: Lookup(%d) = %v, oracle has %d ids", trial, v, got, len(want))
			}
			for _, id := range got {
				if !want[id] {
					t.Fatalf("trial %d: Lookup(%d) returned stray id %d", trial, v, id)
				}
			}
		}
	}
}

func TestStringRendering(t *testing.T) {
	var r Row
	if got := r.String(); got != "(empty)" {
		t.Errorf("empty String = %q", got)
	}
	r.Insert(3, iv(1, 2))
	if got := r.String(); got == "(empty)" || got == "" {
		t.Errorf("String = %q, want rendering", got)
	}
}

func BenchmarkRowInsert(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var r Row
		for id := 0; id < 100; id++ {
			lo := rng.Intn(1000)
			r.Insert(id, iv(lo, lo+rng.Intn(100)))
		}
	}
}

func BenchmarkRowLookup(b *testing.B) {
	var r Row
	rng := rand.New(rand.NewSource(2))
	for id := 0; id < 200; id++ {
		lo := rng.Intn(2000)
		r.Insert(id, iv(lo, lo+rng.Intn(50)))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		r.Lookup(i % 2000)
	}
}
