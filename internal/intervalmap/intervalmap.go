// Package intervalmap implements the per-block, per-dimension row structure
// of the paper's Figure 3: an ascending, non-overlapping linked list of
// integer intervals, each carrying the indices of the placements valid on
// that interval.
//
// A multi-placement structure holds 2N rows (one width row and one height
// row per block). Feeding a dimension value to a row walks the list to the
// covering interval and yields that interval's placement-index array — the
// W_i / H_i functions of paper eq. 3.
package intervalmap

import (
	"fmt"
	"sort"
	"strings"

	"mps/internal/geom"
)

// node is one interval object of the linked list.
type node struct {
	iv   geom.Interval
	ids  []int // ascending placement indices valid on iv
	next *node
}

// Row is one ascending, non-overlapping interval list.
// The zero value is an empty row ready to use.
type Row struct {
	head  *node
	nodes int
}

// Len returns the number of interval objects in the row.
func (r *Row) Len() int { return r.nodes }

// Empty reports whether the row holds no intervals.
func (r *Row) Empty() bool { return r.head == nil }

// Lookup returns the placement indices whose interval covers v, or nil if v
// falls outside every interval. The returned slice is shared with the row
// and must not be modified.
func (r *Row) Lookup(v int) []int {
	for n := r.head; n != nil; n = n.next {
		if v < n.iv.Lo {
			return nil // list is ascending; v cannot appear later
		}
		if v <= n.iv.Hi {
			return n.ids
		}
	}
	return nil
}

// Insert registers placement id as valid on the inclusive interval iv,
// splitting existing interval objects as needed to keep the list ascending
// and non-overlapping (the paper's Store Placement routine).
// Inserting an empty interval is a no-op.
func (r *Row) Insert(id int, iv geom.Interval) {
	if iv.Empty() {
		return
	}
	lo := iv.Lo
	prev := (*node)(nil)
	cur := r.head
	for lo <= iv.Hi {
		// Skip nodes entirely before lo.
		for cur != nil && cur.iv.Hi < lo {
			prev, cur = cur, cur.next
		}
		if cur == nil || cur.iv.Lo > iv.Hi {
			// Gap covers the rest of [lo, iv.Hi]: one fresh node.
			nn := &node{iv: geom.NewInterval(lo, iv.Hi), ids: []int{id}, next: cur}
			r.link(prev, nn)
			r.nodes++
			return
		}
		if lo < cur.iv.Lo {
			// Gap before cur: fill it, then continue into cur.
			gapHi := min(iv.Hi, cur.iv.Lo-1)
			nn := &node{iv: geom.NewInterval(lo, gapHi), ids: []int{id}, next: cur}
			r.link(prev, nn)
			r.nodes++
			prev = nn
			lo = gapHi + 1
			continue
		}
		// lo is inside cur. Split off the uncovered prefix of cur.
		if cur.iv.Lo < lo {
			left := &node{iv: geom.NewInterval(cur.iv.Lo, lo-1), ids: cloneIDs(cur.ids), next: cur}
			r.link(prev, left)
			r.nodes++
			cur.iv.Lo = lo
			prev = left
		}
		// Split off the uncovered suffix of cur.
		if cur.iv.Hi > iv.Hi {
			right := &node{iv: geom.NewInterval(iv.Hi+1, cur.iv.Hi), ids: cloneIDs(cur.ids), next: cur.next}
			cur.next = right
			cur.iv.Hi = iv.Hi
			r.nodes++
		}
		// cur is now fully covered by [lo, iv.Hi]: tag it.
		cur.ids = addID(cur.ids, id)
		lo = cur.iv.Hi + 1
		prev, cur = cur, cur.next
	}
}

// Remove deletes placement id from the given interval range. Interval
// objects left with no placements are unlinked; objects partially covered
// are split so only the covered part loses the id. Removing from an empty
// interval is a no-op.
func (r *Row) Remove(id int, iv geom.Interval) {
	if iv.Empty() {
		return
	}
	prev := (*node)(nil)
	cur := r.head
	for cur != nil && cur.iv.Lo <= iv.Hi {
		if cur.iv.Hi < iv.Lo {
			prev, cur = cur, cur.next
			continue
		}
		if !containsID(cur.ids, id) {
			prev, cur = cur, cur.next
			continue
		}
		// Split off an uncovered prefix.
		if cur.iv.Lo < iv.Lo {
			left := &node{iv: geom.NewInterval(cur.iv.Lo, iv.Lo-1), ids: cloneIDs(cur.ids), next: cur}
			r.link(prev, left)
			r.nodes++
			cur.iv.Lo = iv.Lo
			prev = left
		}
		// Split off an uncovered suffix.
		if cur.iv.Hi > iv.Hi {
			right := &node{iv: geom.NewInterval(iv.Hi+1, cur.iv.Hi), ids: cloneIDs(cur.ids), next: cur.next}
			cur.next = right
			cur.iv.Hi = iv.Hi
			r.nodes++
		}
		cur.ids = dropID(cur.ids, id)
		if len(cur.ids) == 0 {
			r.unlink(prev, cur)
			cur = cur.next // prev unchanged
			if prev == nil {
				cur = r.head
			} else {
				cur = prev.next
			}
			continue
		}
		prev, cur = cur, cur.next
	}
	r.coalesce()
}

// RemoveAll deletes placement id from every interval of the row.
func (r *Row) RemoveAll(id int) {
	prev := (*node)(nil)
	cur := r.head
	for cur != nil {
		if containsID(cur.ids, id) {
			cur.ids = dropID(cur.ids, id)
			if len(cur.ids) == 0 {
				r.unlink(prev, cur)
				if prev == nil {
					cur = r.head
				} else {
					cur = prev.next
				}
				continue
			}
		}
		prev, cur = cur, cur.next
	}
	r.coalesce()
}

// IDsOverlapping returns the distinct placement indices registered anywhere
// on the given interval, in ascending order.
func (r *Row) IDsOverlapping(iv geom.Interval) []int {
	var out []int
	seen := map[int]bool{}
	for n := r.head; n != nil && n.iv.Lo <= iv.Hi; n = n.next {
		if !n.iv.Overlaps(iv) {
			continue
		}
		for _, id := range n.ids {
			if !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	sort.Ints(out)
	return out
}

// Visit calls fn for every interval of the row in ascending order, passing
// the interval and its placement-id array. The ids slice is shared with the
// row and must not be modified or retained. Unlike Snapshot, Visit allocates
// nothing — it is the walk core.Compile uses to flatten rows.
func (r *Row) Visit(fn func(iv geom.Interval, ids []int)) {
	for n := r.head; n != nil; n = n.next {
		fn(n.iv, n.ids)
	}
}

// Span holds one interval and its placement ids — the exported snapshot form
// used for serialization and inspection.
type Span struct {
	Iv  geom.Interval
	IDs []int
}

// Snapshot returns the row contents in ascending order.
func (r *Row) Snapshot() []Span {
	var out []Span
	for n := r.head; n != nil; n = n.next {
		out = append(out, Span{Iv: n.iv, IDs: cloneIDs(n.ids)})
	}
	return out
}

// FromSnapshot reconstructs a row from Snapshot output.
func FromSnapshot(spans []Span) (*Row, error) {
	r := &Row{}
	var tail *node
	lastHi := 0
	for i, s := range spans {
		if s.Iv.Empty() {
			return nil, fmt.Errorf("intervalmap: snapshot span %d is empty", i)
		}
		if len(s.IDs) == 0 {
			return nil, fmt.Errorf("intervalmap: snapshot span %d has no ids", i)
		}
		if i > 0 && s.Iv.Lo <= lastHi {
			return nil, fmt.Errorf("intervalmap: snapshot spans out of order at %d", i)
		}
		lastHi = s.Iv.Hi
		ids := cloneIDs(s.IDs)
		sort.Ints(ids)
		nn := &node{iv: s.Iv, ids: ids}
		if tail == nil {
			r.head = nn
		} else {
			tail.next = nn
		}
		tail = nn
		r.nodes++
	}
	return r, nil
}

// CheckInvariants verifies the Figure-3 constraints: ascending order,
// non-overlapping intervals, no empty intervals, no empty or unsorted id
// arrays. It returns the first violation found.
func (r *Row) CheckInvariants() error {
	count := 0
	var prev *node
	for n := r.head; n != nil; n = n.next {
		count++
		if n.iv.Empty() {
			return fmt.Errorf("intervalmap: empty interval %v in list", n.iv)
		}
		if len(n.ids) == 0 {
			return fmt.Errorf("intervalmap: interval %v carries no placements", n.iv)
		}
		if !sort.IntsAreSorted(n.ids) {
			return fmt.Errorf("intervalmap: interval %v has unsorted ids %v", n.iv, n.ids)
		}
		for i := 1; i < len(n.ids); i++ {
			if n.ids[i] == n.ids[i-1] {
				return fmt.Errorf("intervalmap: interval %v has duplicate id %d", n.iv, n.ids[i])
			}
		}
		if prev != nil && prev.iv.Hi >= n.iv.Lo {
			return fmt.Errorf("intervalmap: intervals %v and %v out of order or overlapping",
				prev.iv, n.iv)
		}
		prev = n
	}
	if count != r.nodes {
		return fmt.Errorf("intervalmap: node count %d != recorded %d", count, r.nodes)
	}
	return nil
}

// String renders the row for debugging: "[1,5]{0,2} [8,9]{1}".
func (r *Row) String() string {
	var b strings.Builder
	for n := r.head; n != nil; n = n.next {
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%v%v", n.iv, n.ids)
	}
	if b.Len() == 0 {
		return "(empty)"
	}
	return b.String()
}

// link inserts nn after prev (or at the head when prev is nil).
func (r *Row) link(prev, nn *node) {
	if prev == nil {
		r.head = nn
	} else {
		prev.next = nn
	}
}

// unlink removes cur, which follows prev (or is the head when prev is nil).
func (r *Row) unlink(prev, cur *node) {
	if prev == nil {
		r.head = cur.next
	} else {
		prev.next = cur.next
	}
	r.nodes--
}

// coalesce merges adjacent intervals that touch and carry identical id sets,
// keeping the list minimal after removals.
func (r *Row) coalesce() {
	for n := r.head; n != nil && n.next != nil; {
		nx := n.next
		if n.iv.Hi+1 == nx.iv.Lo && equalIDs(n.ids, nx.ids) {
			n.iv.Hi = nx.iv.Hi
			n.next = nx.next
			r.nodes--
			continue
		}
		n = nx
	}
}

func cloneIDs(ids []int) []int {
	out := make([]int, len(ids))
	copy(out, ids)
	return out
}

func addID(ids []int, id int) []int {
	i := sort.SearchInts(ids, id)
	if i < len(ids) && ids[i] == id {
		return ids
	}
	ids = append(ids, 0)
	copy(ids[i+1:], ids[i:])
	ids[i] = id
	return ids
}

func dropID(ids []int, id int) []int {
	i := sort.SearchInts(ids, id)
	if i >= len(ids) || ids[i] != id {
		return ids
	}
	return append(ids[:i], ids[i+1:]...)
}

func containsID(ids []int, id int) bool {
	i := sort.SearchInts(ids, id)
	return i < len(ids) && ids[i] == id
}

func equalIDs(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
