package synth

import (
	"errors"
	"testing"
	"time"

	"mps/internal/circuits"
	"mps/internal/cost"
	"mps/internal/modgen"
	"mps/internal/placement"
	"mps/internal/template"
)

func TestRunWithTemplateProvider(t *testing.T) {
	c := circuits.MustByName("Mixer")
	sizer := modgen.DefaultSizer(c)
	fp := placement.DefaultFloorplan(c)
	tpl := template.Balanced(c)
	res, err := Run(sizer, tpl, LayoutOnlyObjective(cost.DefaultWeights), fp, Config{
		Steps: 100, Seed: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestLayout == nil {
		t.Fatal("no best layout recorded")
	}
	if res.BestCost <= 0 || res.BestCost >= 1e12 {
		t.Errorf("BestCost = %g, want a real layout cost", res.BestCost)
	}
	if res.Iterations != 100 {
		t.Errorf("Iterations = %d, want 100", res.Iterations)
	}
	if res.PlaceCalls < res.Iterations {
		t.Errorf("PlaceCalls = %d, want >= %d", res.PlaceCalls, res.Iterations)
	}
	if res.PlaceErrs != 0 {
		t.Errorf("PlaceErrs = %d, want 0 with template provider", res.PlaceErrs)
	}
	if res.AvgPlaceTime() < 0 {
		t.Error("negative average place time")
	}
}

func TestRunImprovesObjective(t *testing.T) {
	c := circuits.MustByName("TwoStageOpamp")
	sizer := modgen.DefaultSizer(c)
	fp := placement.DefaultFloorplan(c)
	tpl := template.Balanced(c)
	res, err := Run(sizer, tpl, LayoutOnlyObjective(cost.DefaultWeights), fp, Config{
		Steps: 400, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost > res.AnnealStats.InitCost {
		t.Errorf("BestCost %g worse than initial %g", res.BestCost, res.AnnealStats.InitCost)
	}
	// With a layout-only objective and Scalable knobs, smaller blocks are
	// strictly better: the optimizer must push well below the mid-range
	// start.
	if res.BestCost > 0.9*res.AnnealStats.InitCost {
		t.Errorf("BestCost %g improved less than 10%% over init %g",
			res.BestCost, res.AnnealStats.InitCost)
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	c := circuits.MustByName("circ01")
	fp := placement.DefaultFloorplan(c)
	run := func() Result {
		res, err := Run(modgen.DefaultSizer(c), template.Balanced(c),
			LayoutOnlyObjective(cost.DefaultWeights), fp, Config{Steps: 50, Seed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.BestCost != b.BestCost {
		t.Errorf("same seed, different best cost: %g vs %g", a.BestCost, b.BestCost)
	}
	for i := range a.BestX {
		if a.BestX[i] != b.BestX[i] {
			t.Fatal("same seed, different best sizing vector")
		}
	}
}

func TestRunSurvivesFailingProvider(t *testing.T) {
	c := circuits.MustByName("circ01")
	sizer := modgen.DefaultSizer(c)
	fp := placement.DefaultFloorplan(c)
	tpl := template.Balanced(c)
	calls := 0
	flaky := ProviderFunc(func(ws, hs []int) ([]int, []int, error) {
		calls++
		if calls%3 == 0 {
			return nil, nil, errors.New("injected placement failure")
		}
		return tpl.Place(ws, hs)
	})
	res, err := Run(sizer, flaky, LayoutOnlyObjective(cost.DefaultWeights), fp, Config{
		Steps: 60, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PlaceErrs == 0 {
		t.Error("injected failures not counted")
	}
	if res.BestLayout == nil || res.BestCost >= 1e12 {
		t.Error("run should still find good points between failures")
	}
}

func TestRunTracksPlaceTime(t *testing.T) {
	c := circuits.MustByName("circ01")
	sizer := modgen.DefaultSizer(c)
	fp := placement.DefaultFloorplan(c)
	tpl := template.Balanced(c)
	slow := ProviderFunc(func(ws, hs []int) ([]int, []int, error) {
		time.Sleep(200 * time.Microsecond)
		return tpl.Place(ws, hs)
	})
	res, err := Run(sizer, slow, LayoutOnlyObjective(cost.DefaultWeights), fp, Config{
		Steps: 20, Seed: 4,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.AvgPlaceTime() < 150*time.Microsecond {
		t.Errorf("AvgPlaceTime = %v, want >= simulated 200µs", res.AvgPlaceTime())
	}
	if res.PlaceTime > res.TotalTime {
		t.Error("place time exceeds total time")
	}
}
