// Package synth implements the layout-inclusive sizing loop of the paper's
// Figure 1b: a sizing optimizer proposes device sizes, module generators
// turn them into block dimensions, a placement provider instantiates a
// floorplan, wire parasitics are extracted from it, and the resulting
// performance estimate steers the optimizer.
//
// The placement provider is pluggable, which is the whole point of the
// comparison: a multi-placement structure answers in microseconds with
// near-optimized placements, a fixed template answers instantly but with
// one topology, and a per-query annealer answers slowly. The loop measures
// both solution quality and time-per-iteration for each.
package synth

import (
	"fmt"
	"math/rand"
	"time"

	"mps/internal/anneal"
	"mps/internal/cost"
	"mps/internal/geom"
	"mps/internal/modgen"
)

// Provider instantiates a placement for sized blocks. core.Structure (via
// the facade), template.Template and optplace.Provider all satisfy it.
type Provider interface {
	Place(ws, hs []int) (x, y []int, err error)
}

// ProviderFunc adapts a function to Provider.
type ProviderFunc func(ws, hs []int) (x, y []int, err error)

// Place implements Provider.
func (f ProviderFunc) Place(ws, hs []int) (x, y []int, err error) { return f(ws, hs) }

// Objective scores one sizing point given its extracted layout. Lower is
// better. Implementations see the sizing vector and the placed layout, so
// they can mix electrical models (perf package) with geometric terms.
type Objective interface {
	Cost(x []float64, l *cost.Layout) float64
}

// ObjectiveFunc adapts a function to Objective.
type ObjectiveFunc func(x []float64, l *cost.Layout) float64

// Cost implements Objective.
func (f ObjectiveFunc) Cost(x []float64, l *cost.Layout) float64 { return f(x, l) }

// LayoutOnlyObjective scores purely by layout quality — the generic
// objective for circuits without an electrical model.
func LayoutOnlyObjective(ev cost.Evaluator) Objective {
	return ObjectiveFunc(func(_ []float64, l *cost.Layout) float64 { return ev.Cost(l) })
}

// Config controls a synthesis run.
type Config struct {
	// Steps is the number of sizing iterations. Default 300.
	Steps int
	// Cooling is the sizing annealer's cooling factor. Default 0.99.
	Cooling float64
	// Seed drives the run.
	Seed int64
	// PerturbPct scales sizing moves as a fraction of each variable's
	// range. Default 0.2.
	PerturbPct float64
}

func (cfg Config) withDefaults() Config {
	if cfg.Steps == 0 {
		cfg.Steps = 300
	}
	if cfg.Cooling == 0 {
		cfg.Cooling = 0.99
	}
	if cfg.PerturbPct == 0 {
		cfg.PerturbPct = 0.2
	}
	return cfg
}

// Result summarizes a synthesis run.
type Result struct {
	BestX       []float64    // best sizing vector found
	BestCost    float64      // objective at BestX
	BestLayout  *cost.Layout // layout of the best point
	Iterations  int
	PlaceTime   time.Duration // total time spent in the placement provider
	TotalTime   time.Duration
	PlaceCalls  int
	PlaceErrs   int // iterations where the provider failed (skipped points)
	AnnealStats anneal.Stats
}

// AvgPlaceTime returns the mean placement-provider latency per call.
func (r Result) AvgPlaceTime() time.Duration {
	if r.PlaceCalls == 0 {
		return 0
	}
	return r.PlaceTime / time.Duration(r.PlaceCalls)
}

// problem is the sizing-annealer state.
type problem struct {
	sizer    *modgen.Sizer
	provider Provider
	obj      Objective
	fp       geom.Rect
	ranges   []modgen.FloatRange
	pct      float64

	x       []float64
	prevVal float64
	prevIdx int

	res *Result

	best  float64
	bestX []float64
	bestL *cost.Layout
}

// Propose implements anneal.Problem: perturb one sizing variable, run the
// full dims -> place -> extract -> objective pipeline.
func (pr *problem) Propose(rng *rand.Rand, magnitude float64) float64 {
	i := rng.Intn(len(pr.x))
	pr.prevIdx, pr.prevVal = i, pr.x[i]
	span := pr.ranges[i].Hi - pr.ranges[i].Lo
	delta := (rng.Float64()*2 - 1) * pr.pct * magnitude * span
	pr.x[i] = pr.ranges[i].Clamp(pr.x[i] + delta)
	return pr.evaluate()
}

// Accept implements anneal.Problem.
func (pr *problem) Accept() {}

// Reject implements anneal.Problem.
func (pr *problem) Reject() { pr.x[pr.prevIdx] = pr.prevVal }

// evaluate runs the Fig. 1b pipeline for the current sizing vector.
func (pr *problem) evaluate() float64 {
	const failCost = 1e12
	ws, hs, err := pr.sizer.Dims(pr.x)
	if err != nil {
		pr.res.PlaceErrs++
		return failCost
	}
	t0 := time.Now()
	x, y, err := pr.provider.Place(ws, hs)
	pr.res.PlaceTime += time.Since(t0)
	pr.res.PlaceCalls++
	if err != nil {
		pr.res.PlaceErrs++
		return failCost
	}
	l := &cost.Layout{
		Circuit: pr.sizer.Circuit(),
		X:       x, Y: y, W: ws, H: hs,
		Floorplan: pr.fp,
	}
	c := pr.obj.Cost(pr.x, l)
	if c < pr.best {
		pr.best = c
		copy(pr.bestX, pr.x)
		pr.bestL = l
	}
	return c
}

// Run executes the sizing loop and returns the best point found.
func Run(sizer *modgen.Sizer, provider Provider, obj Objective, fp geom.Rect, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if sizer.NumVars() == 0 {
		return Result{}, fmt.Errorf("synth: sizer has no variables")
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	ranges := sizer.VarRanges()

	res := Result{}
	pr := &problem{
		sizer:    sizer,
		provider: provider,
		obj:      obj,
		fp:       fp,
		ranges:   ranges,
		pct:      cfg.PerturbPct,
		x:        make([]float64, sizer.NumVars()),
		bestX:    make([]float64, sizer.NumVars()),
		res:      &res,
	}
	// Start mid-range.
	for i, r := range ranges {
		pr.x[i] = r.Lerp(0.5)
	}
	start := time.Now()
	pr.best = 1e308
	initCost := pr.evaluate()

	stats, err := anneal.Run(pr, initCost, anneal.Config{
		Steps:   cfg.Steps,
		Cooling: cfg.Cooling,
		Rand:    rng,
	})
	if err != nil {
		return Result{}, fmt.Errorf("synth: %w", err)
	}
	res.BestX = pr.bestX
	res.BestCost = pr.best
	res.BestLayout = pr.bestL
	res.Iterations = stats.Steps
	res.TotalTime = time.Since(start)
	res.AnnealStats = stats
	return res, nil
}
