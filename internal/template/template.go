// Package template implements the template-based placement baseline the
// paper compares against (§1: BALLISTIC, MOGLAN, MSL) and the backup
// instantiator for uncovered multi-placement-structure queries (§3.1.4).
//
// A template is a slicing tree over the circuit's blocks: internal nodes cut
// the floorplan horizontally or vertically, leaves hold blocks. Instantiation
// for a concrete dimension vector computes node sizes bottom-up and assigns
// positions top-down — fast, deterministic, and legal for any dimensions,
// exactly the procedural-generator behaviour whose single fixed topology the
// multi-placement structure generalizes.
package template

import (
	"fmt"
	"math/rand"

	"mps/internal/netlist"
)

// Cut direction of an internal slicing-tree node.
type Cut byte

const (
	// CutV places the children side by side (vertical cut line).
	CutV Cut = 'V'
	// CutH stacks the children (horizontal cut line).
	CutH Cut = 'H'
)

// Node is a slicing-tree node: either a leaf holding a block index, or an
// internal node with a cut direction and two children.
type Node struct {
	Block       int // leaf block index; -1 for internal nodes
	Cut         Cut
	Left, Right *Node
}

// Leaf returns a leaf node for the given block.
func Leaf(block int) *Node { return &Node{Block: block} }

// Internal returns an internal node combining two subtrees.
func Internal(cut Cut, left, right *Node) *Node {
	return &Node{Block: -1, Cut: cut, Left: left, Right: right}
}

// Template is a fixed placement topology for one circuit.
type Template struct {
	circuit *netlist.Circuit
	root    *Node
	// Gap is the spacing inserted between sibling blocks, in layout units.
	Gap int
}

// New validates that the tree covers every block of c exactly once and
// returns the template.
func New(c *netlist.Circuit, root *Node) (*Template, error) {
	seen := make([]bool, c.N())
	var walk func(n *Node) error
	walk = func(n *Node) error {
		if n == nil {
			return fmt.Errorf("template: nil node in tree")
		}
		if n.Block >= 0 {
			if n.Left != nil || n.Right != nil {
				return fmt.Errorf("template: leaf for block %d has children", n.Block)
			}
			if n.Block >= c.N() {
				return fmt.Errorf("template: leaf references block %d (have %d)", n.Block, c.N())
			}
			if seen[n.Block] {
				return fmt.Errorf("template: block %d appears twice", n.Block)
			}
			seen[n.Block] = true
			return nil
		}
		if n.Cut != CutV && n.Cut != CutH {
			return fmt.Errorf("template: internal node with invalid cut %q", n.Cut)
		}
		if err := walk(n.Left); err != nil {
			return err
		}
		return walk(n.Right)
	}
	if err := walk(root); err != nil {
		return nil, err
	}
	for i, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("template: block %d missing from tree", i)
		}
	}
	// Sibling spacing honors the largest design-rule halo in the circuit,
	// so template instantiations satisfy the same clearance the annealed
	// placements do.
	gap := 1
	for _, b := range c.Blocks {
		if b.Margin > gap {
			gap = b.Margin
		}
	}
	return &Template{circuit: c, root: root, Gap: gap}, nil
}

// Balanced builds a template whose tree splits the block list in half
// recursively, alternating cut directions — the deterministic default
// template for a circuit (used as MPS backup and as the Fig. 5c baseline).
func Balanced(c *netlist.Circuit) *Template {
	idx := make([]int, c.N())
	for i := range idx {
		idx[i] = i
	}
	t, err := New(c, buildBalanced(idx, CutV))
	if err != nil {
		panic(err) // construction is correct by design
	}
	return t
}

// Random builds a template with a random tree shape and cut directions,
// deterministic in seed. Distinct seeds give genuinely different fixed
// placements — the population for template-vs-MPS comparisons.
func Random(c *netlist.Circuit, seed int64) *Template {
	rng := rand.New(rand.NewSource(seed))
	idx := rng.Perm(c.N())
	var build func(ids []int) *Node
	build = func(ids []int) *Node {
		if len(ids) == 1 {
			return Leaf(ids[0])
		}
		cutAt := 1 + rng.Intn(len(ids)-1)
		cut := CutV
		if rng.Intn(2) == 0 {
			cut = CutH
		}
		return Internal(cut, build(ids[:cutAt]), build(ids[cutAt:]))
	}
	t, err := New(c, build(idx))
	if err != nil {
		panic(err)
	}
	return t
}

func buildBalanced(ids []int, cut Cut) *Node {
	if len(ids) == 1 {
		return Leaf(ids[0])
	}
	mid := len(ids) / 2
	next := CutH
	if cut == CutH {
		next = CutV
	}
	return Internal(cut, buildBalanced(ids[:mid], next), buildBalanced(ids[mid:], next))
}

// Place instantiates the template for the given block dimensions, returning
// bottom-left anchors. It implements the core.Backup interface. The layout
// is always legal: sibling subtrees occupy disjoint half-planes separated by
// Gap.
func (t *Template) Place(ws, hs []int) (x, y []int, err error) {
	n := t.circuit.N()
	if len(ws) != n || len(hs) != n {
		return nil, nil, fmt.Errorf("template: dimension vectors sized %d/%d, want %d",
			len(ws), len(hs), n)
	}
	for i, b := range t.circuit.Blocks {
		if ws[i] <= 0 || hs[i] <= 0 {
			return nil, nil, fmt.Errorf("template: block %d has non-positive dims %dx%d", i, ws[i], hs[i])
		}
		_ = b
	}
	x = make([]int, n)
	y = make([]int, n)
	t.assign(t.root, 0, 0, ws, hs, x, y)
	return x, y, nil
}

// size returns the bounding dimensions of the subtree at n.
func (t *Template) size(n *Node, ws, hs []int) (w, h int) {
	if n.Block >= 0 {
		return ws[n.Block], hs[n.Block]
	}
	lw, lh := t.size(n.Left, ws, hs)
	rw, rh := t.size(n.Right, ws, hs)
	if n.Cut == CutV {
		return lw + t.Gap + rw, max(lh, rh)
	}
	return max(lw, rw), lh + t.Gap + rh
}

// assign positions the subtree with its bounding box anchored at (x0, y0).
func (t *Template) assign(n *Node, x0, y0 int, ws, hs, x, y []int) {
	if n.Block >= 0 {
		x[n.Block] = x0
		y[n.Block] = y0
		return
	}
	lw, lh := t.size(n.Left, ws, hs)
	if n.Cut == CutV {
		t.assign(n.Left, x0, y0, ws, hs, x, y)
		t.assign(n.Right, x0+lw+t.Gap, y0, ws, hs, x, y)
	} else {
		_ = lh
		t.assign(n.Left, x0, y0, ws, hs, x, y)
		lw2, lh2 := t.size(n.Left, ws, hs)
		_ = lw2
		t.assign(n.Right, x0, y0+lh2+t.Gap, ws, hs, x, y)
	}
}

// BoundingDims returns the width and height the template occupies at the
// given block dimensions.
func (t *Template) BoundingDims(ws, hs []int) (w, h int) {
	return t.size(t.root, ws, hs)
}
