package template

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mps/internal/circuits"
	"mps/internal/geom"
)

// checkLegal verifies the instantiated layout has no overlapping blocks.
func checkLegal(t *testing.T, name string, ws, hs, x, y []int) {
	t.Helper()
	n := len(ws)
	for i := 0; i < n; i++ {
		ri := geom.NewRect(x[i], y[i], ws[i], hs[i])
		for j := i + 1; j < n; j++ {
			rj := geom.NewRect(x[j], y[j], ws[j], hs[j])
			if ri.Overlaps(rj) {
				t.Fatalf("%s: blocks %d and %d overlap (%v vs %v)", name, i, j, ri, rj)
			}
		}
	}
}

func TestBalancedPlaceLegalAllBenchmarks(t *testing.T) {
	for _, name := range circuits.Names() {
		t.Run(name, func(t *testing.T) {
			c := circuits.MustByName(name)
			tpl := Balanced(c)
			rng := rand.New(rand.NewSource(1))
			for trial := 0; trial < 25; trial++ {
				ws := make([]int, c.N())
				hs := make([]int, c.N())
				for i, b := range c.Blocks {
					ws[i] = b.WMin + rng.Intn(b.WMax-b.WMin+1)
					hs[i] = b.HMin + rng.Intn(b.HMax-b.HMin+1)
				}
				x, y, err := tpl.Place(ws, hs)
				if err != nil {
					t.Fatal(err)
				}
				checkLegal(t, name, ws, hs, x, y)
			}
		})
	}
}

func TestRandomTemplatesLegalAndDistinct(t *testing.T) {
	c := circuits.MustByName("TwoStageOpamp")
	ws := make([]int, c.N())
	hs := make([]int, c.N())
	for i, b := range c.Blocks {
		ws[i] = (b.WMin + b.WMax) / 2
		hs[i] = (b.HMin + b.HMax) / 2
	}
	var first []int
	distinct := false
	for seed := int64(0); seed < 5; seed++ {
		tpl := Random(c, seed)
		x, y, err := tpl.Place(ws, hs)
		if err != nil {
			t.Fatal(err)
		}
		checkLegal(t, "random", ws, hs, x, y)
		if first == nil {
			first = append(append([]int{}, x...), y...)
		} else {
			cur := append(append([]int{}, x...), y...)
			for k := range cur {
				if cur[k] != first[k] {
					distinct = true
				}
			}
		}
	}
	if !distinct {
		t.Error("five random templates produced identical placements")
	}
}

func TestPlaceDeterministic(t *testing.T) {
	c := circuits.MustByName("Mixer")
	tpl := Balanced(c)
	ws := make([]int, c.N())
	hs := make([]int, c.N())
	for i, b := range c.Blocks {
		ws[i] = b.WMax
		hs[i] = b.HMax
	}
	x1, y1, err := tpl.Place(ws, hs)
	if err != nil {
		t.Fatal(err)
	}
	x2, y2, err := tpl.Place(ws, hs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x1 {
		if x1[i] != x2[i] || y1[i] != y2[i] {
			t.Fatal("template instantiation is not deterministic")
		}
	}
}

// TestTemplateTopologyFixed verifies the defining limitation of templates
// the paper motivates against: relative block order never changes with
// dimensions (the same block stays leftmost in a V-cut).
func TestTemplateTopologyFixed(t *testing.T) {
	c := circuits.MustByName("circ01")
	tpl := Balanced(c)
	small := []int{6, 6, 6, 6}
	smallH := []int{5, 5, 5, 5}
	big := make([]int, 4)
	bigH := make([]int, 4)
	for i, b := range c.Blocks {
		big[i] = b.WMax
		bigH[i] = b.HMax
	}
	x1, _, err := tpl.Place(small, smallH)
	if err != nil {
		t.Fatal(err)
	}
	x2, _, err := tpl.Place(big, bigH)
	if err != nil {
		t.Fatal(err)
	}
	// Order along x of the two blocks split by the root V-cut must match.
	if (x1[0] < x1[2]) != (x2[0] < x2[2]) {
		t.Error("template changed relative block order with dimensions")
	}
}

func TestNewValidation(t *testing.T) {
	c := circuits.MustByName("circ01") // 4 blocks
	cases := []struct {
		name string
		root *Node
	}{
		{"missing block", Internal(CutV, Leaf(0), Leaf(1))},
		{"duplicate block", Internal(CutV, Internal(CutH, Leaf(0), Leaf(0)), Internal(CutH, Leaf(2), Leaf(3)))},
		{"out of range", Internal(CutV, Internal(CutH, Leaf(0), Leaf(9)), Internal(CutH, Leaf(2), Leaf(3)))},
		{"nil child", &Node{Block: -1, Cut: CutV, Left: Leaf(0)}},
		{"bad cut", &Node{Block: -1, Cut: 'X', Left: Leaf(0), Right: Leaf(1)}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := New(c, tc.root); err == nil {
				t.Error("want validation error")
			}
		})
	}
}

func TestPlaceRejectsBadDims(t *testing.T) {
	c := circuits.MustByName("circ01")
	tpl := Balanced(c)
	if _, _, err := tpl.Place([]int{1, 2}, []int{1, 2}); err == nil {
		t.Error("short vectors should error")
	}
	if _, _, err := tpl.Place([]int{0, 10, 10, 10}, []int{10, 10, 10, 10}); err == nil {
		t.Error("non-positive dims should error")
	}
}

func TestBoundingDimsConsistent(t *testing.T) {
	c := circuits.MustByName("circ02")
	tpl := Balanced(c)
	ws := make([]int, c.N())
	hs := make([]int, c.N())
	for i, b := range c.Blocks {
		ws[i] = b.WMax
		hs[i] = b.HMax
	}
	x, y, err := tpl.Place(ws, hs)
	if err != nil {
		t.Fatal(err)
	}
	w, h := tpl.BoundingDims(ws, hs)
	var bb geom.Rect
	for i := range x {
		bb = bb.Union(geom.NewRect(x[i], y[i], ws[i], hs[i]))
	}
	if bb.W() > w || bb.H() > h {
		t.Errorf("actual bounding box %dx%d exceeds reported %dx%d", bb.W(), bb.H(), w, h)
	}
}

// TestPlaceLegalProperty: legality for arbitrary in-bounds dimension vectors
// via testing/quick.
func TestPlaceLegalProperty(t *testing.T) {
	c := circuits.MustByName("SingleEndedOpamp")
	tpl := Balanced(c)
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		ws := make([]int, c.N())
		hs := make([]int, c.N())
		for i, b := range c.Blocks {
			ws[i] = b.WMin + rng.Intn(b.WMax-b.WMin+1)
			hs[i] = b.HMin + rng.Intn(b.HMax-b.HMin+1)
		}
		x, y, err := tpl.Place(ws, hs)
		if err != nil {
			return false
		}
		for i := 0; i < c.N(); i++ {
			ri := geom.NewRect(x[i], y[i], ws[i], hs[i])
			for j := i + 1; j < c.N(); j++ {
				if ri.Overlaps(geom.NewRect(x[j], y[j], ws[j], hs[j])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
