package seqpair

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mps/internal/circuits"
	"mps/internal/cost"
	"mps/internal/geom"
	"mps/internal/placement"
)

func midDims(t *testing.T, name string) ([]int, []int) {
	t.Helper()
	c := circuits.MustByName(name)
	ws := make([]int, c.N())
	hs := make([]int, c.N())
	for i, b := range c.Blocks {
		ws[i] = (b.WMin + b.WMax) / 2
		hs[i] = (b.HMin + b.HMax) / 2
	}
	return ws, hs
}

func assertLegal(t *testing.T, x, y, ws, hs []int, gap int) {
	t.Helper()
	for i := range ws {
		ri := geom.NewRect(x[i], y[i], ws[i], hs[i])
		for j := i + 1; j < len(ws); j++ {
			rj := geom.NewRect(x[j], y[j], ws[j], hs[j])
			if ri.Overlaps(rj) {
				t.Fatalf("blocks %d and %d overlap: %v vs %v", i, j, ri, rj)
			}
		}
		if x[i] < 0 || y[i] < 0 {
			t.Fatalf("block %d packed at negative position (%d,%d)", i, x[i], y[i])
		}
	}
	_ = gap
}

func TestIdentityPairIsARow(t *testing.T) {
	sp := New(3)
	ws := []int{10, 20, 5}
	hs := []int{4, 4, 4}
	x, y, err := sp.Positions(ws, hs, 0)
	if err != nil {
		t.Fatal(err)
	}
	// Identity pair: every earlier block is left of every later one.
	want := []int{0, 10, 30}
	for i := range want {
		if x[i] != want[i] || y[i] != 0 {
			t.Errorf("block %d at (%d,%d), want (%d,0)", i, x[i], y[i], want[i])
		}
	}
}

func TestReversedPlusIsAStack(t *testing.T) {
	// Plus reversed relative to Minus: every earlier Minus block is below.
	sp := SeqPair{Plus: []int{2, 1, 0}, Minus: []int{0, 1, 2}}
	ws := []int{10, 10, 10}
	hs := []int{5, 7, 3}
	x, y, err := sp.Positions(ws, hs, 0)
	if err != nil {
		t.Fatal(err)
	}
	if x[0] != 0 || x[1] != 0 || x[2] != 0 {
		t.Errorf("stack should share x=0, got %v", x)
	}
	if y[0] != 0 || y[1] != 5 || y[2] != 12 {
		t.Errorf("stack ys = %v, want [0 5 12]", y)
	}
}

func TestPositionsGap(t *testing.T) {
	sp := New(2)
	x, _, err := sp.Positions([]int{10, 10}, []int{5, 5}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if x[1] != 13 {
		t.Errorf("x[1] = %d, want 13 (10 + gap 3)", x[1])
	}
}

// TestPositionsAlwaysLegal is the core sequence-pair guarantee, checked by
// property over random pairs and dimensions.
func TestPositionsAlwaysLegal(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		sp := Random(n, rng)
		ws := make([]int, n)
		hs := make([]int, n)
		for i := range ws {
			ws[i] = 1 + rng.Intn(30)
			hs[i] = 1 + rng.Intn(30)
		}
		x, y, err := sp.Positions(ws, hs, rng.Intn(3))
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			ri := geom.NewRect(x[i], y[i], ws[i], hs[i])
			for j := i + 1; j < n; j++ {
				if ri.Overlaps(geom.NewRect(x[j], y[j], ws[j], hs[j])) {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestValidateRejectsBadPairs(t *testing.T) {
	bad := []SeqPair{
		{Plus: []int{0, 1}, Minus: []int{0}},     // length mismatch
		{Plus: []int{0, 0}, Minus: []int{0, 1}},  // duplicate
		{Plus: []int{0, 2}, Minus: []int{0, 1}},  // out of range
		{Plus: []int{0, -1}, Minus: []int{0, 1}}, // negative
	}
	for i, sp := range bad {
		if err := sp.Validate(); err == nil {
			t.Errorf("case %d: invalid pair accepted", i)
		}
	}
	if _, _, err := New(2).Positions([]int{1}, []int{1, 1}, 0); err == nil {
		t.Error("short dims accepted")
	}
}

func TestPackLegalAndImproves(t *testing.T) {
	c := circuits.MustByName("Mixer")
	fp := placement.DefaultFloorplan(c)
	ws, hs := midDims(t, "Mixer")
	res, err := Pack(c, fp, ws, hs, Config{Steps: 1500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	assertLegal(t, res.X, res.Y, ws, hs, 0)
	if res.Cost > res.Stats.InitCost {
		t.Errorf("annealed cost %g worse than initial %g", res.Cost, res.Stats.InitCost)
	}
	if err := res.Pair.Validate(); err != nil {
		t.Errorf("best pair invalid: %v", err)
	}
}

func TestPackDeterministic(t *testing.T) {
	c := circuits.MustByName("circ02")
	fp := placement.DefaultFloorplan(c)
	ws, hs := midDims(t, "circ02")
	a, err := Pack(c, fp, ws, hs, Config{Steps: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Pack(c, fp, ws, hs, Config{Steps: 300, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Errorf("same seed, different costs: %g vs %g", a.Cost, b.Cost)
	}
}

// TestPackBeatsNaiveRowPacking: annealing must beat the un-optimized
// identity pair (a single row) on the objective Pack actually minimizes —
// weighted wire + area. A single row of 8 blocks is terrible on both terms.
func TestPackBeatsNaiveRowPacking(t *testing.T) {
	c := circuits.MustByName("circ08")
	fp := placement.DefaultFloorplan(c)
	ws, hs := midDims(t, "circ08")
	res, err := Pack(c, fp, ws, hs, Config{Steps: 2500, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	x, y, err := New(c.N()).Positions(ws, hs, 0)
	if err != nil {
		t.Fatal(err)
	}
	row := cost.Layout{Circuit: c, X: x, Y: y, W: ws, H: hs, Floorplan: fp}
	rowCost := cost.DefaultWeights.Cost(&row)
	if res.Cost >= rowCost {
		t.Errorf("annealed cost %g not better than single-row cost %g", res.Cost, rowCost)
	}
}

func TestPackHonorsMargins(t *testing.T) {
	c := circuits.MustByName("TwoStageOpamp") // DIFF has margin 2
	fp := placement.DefaultFloorplan(c)
	ws, hs := midDims(t, "TwoStageOpamp")
	res, err := Pack(c, fp, ws, hs, Config{Steps: 500, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// All pairwise gaps must be at least the max margin along one axis...
	// sequence-pair guarantees gap spacing between *adjacent* blocks in the
	// packing relation; verify no pair is closer than 0 (legal) and that
	// the DIFF block keeps its 2-unit halo from every block it abuts.
	assertLegal(t, res.X, res.Y, ws, hs, 2)
	diff := c.BlockIndex("DIFF")
	rd := geom.NewRect(res.X[diff]-2, res.Y[diff]-2, ws[diff]+4, hs[diff]+4)
	for j := range ws {
		if j == diff {
			continue
		}
		if rd.Overlaps(geom.NewRect(res.X[j], res.Y[j], ws[j], hs[j])) {
			t.Errorf("block %d violates DIFF's 2-unit halo", j)
		}
	}
}

func TestBackupPlace(t *testing.T) {
	c := circuits.MustByName("circ06")
	bk := NewBackup(c)
	ws, hs := midDims(t, "circ06")
	x, y, err := bk.Place(ws, hs)
	if err != nil {
		t.Fatal(err)
	}
	assertLegal(t, x, y, ws, hs, bk.Gap)
	// Deterministic.
	x2, y2, err := bk.Place(ws, hs)
	if err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if x[i] != x2[i] || y[i] != y2[i] {
			t.Fatal("backup not deterministic")
		}
	}
}
