// Package seqpair implements the sequence-pair floorplan representation
// (Murata et al.), the standard encoding used by modern analog placers for
// guaranteed-legal packings: a pair of block permutations (Γ+, Γ-) encodes,
// for every block pair, a left-of or below relation, and positions follow
// from longest-path computations.
//
// In this repository sequence pairs serve two roles: a compacting
// alternative to the slicing-tree template as the multi-placement
// structure's uncovered-space backup (paper §3.1.4's "template-like
// placement"; Pack produces tighter layouts than a balanced tree), and a
// second optimization-based baseline (paper §1's per-iteration placement
// optimization) whose every visited state is legal by construction.
package seqpair

import (
	"fmt"
	"math/rand"

	"mps/internal/anneal"
	"mps/internal/cost"
	"mps/internal/geom"
	"mps/internal/netlist"
)

// SeqPair is a sequence-pair over n blocks: two permutations of 0..n-1.
// Block a is left of block b iff a precedes b in both sequences; a is below
// b iff a follows b in Plus but precedes b in Minus.
type SeqPair struct {
	Plus, Minus []int
}

// New returns the identity sequence pair (all blocks in a row).
func New(n int) SeqPair {
	sp := SeqPair{Plus: make([]int, n), Minus: make([]int, n)}
	for i := 0; i < n; i++ {
		sp.Plus[i] = i
		sp.Minus[i] = i
	}
	return sp
}

// Random returns a uniformly random sequence pair.
func Random(n int, rng *rand.Rand) SeqPair {
	return SeqPair{Plus: rng.Perm(n), Minus: rng.Perm(n)}
}

// Clone returns a deep copy.
func (sp SeqPair) Clone() SeqPair {
	return SeqPair{
		Plus:  append([]int(nil), sp.Plus...),
		Minus: append([]int(nil), sp.Minus...),
	}
}

// Validate checks both sequences are permutations of the same length.
func (sp SeqPair) Validate() error {
	n := len(sp.Plus)
	if len(sp.Minus) != n {
		return fmt.Errorf("seqpair: sequences sized %d/%d", n, len(sp.Minus))
	}
	for _, seq := range [][]int{sp.Plus, sp.Minus} {
		seen := make([]bool, n)
		for _, v := range seq {
			if v < 0 || v >= n || seen[v] {
				return fmt.Errorf("seqpair: sequence %v is not a permutation", seq)
			}
			seen[v] = true
		}
	}
	return nil
}

// Positions computes the packed bottom-left anchors for blocks of the given
// dimensions, with gap units of spacing added between adjacent blocks.
// The layout is legal by construction: x via longest paths in the
// "left-of" relation, y via longest paths in the "below" relation.
func (sp SeqPair) Positions(ws, hs []int, gap int) (x, y []int, err error) {
	n := len(sp.Plus)
	if err := sp.Validate(); err != nil {
		return nil, nil, err
	}
	if len(ws) != n || len(hs) != n {
		return nil, nil, fmt.Errorf("seqpair: dims sized %d/%d, want %d", len(ws), len(hs), n)
	}
	if gap < 0 {
		gap = 0
	}
	// posPlus[b] / posMinus[b]: index of block b in each sequence.
	posPlus := make([]int, n)
	posMinus := make([]int, n)
	for i, b := range sp.Plus {
		posPlus[b] = i
	}
	for i, b := range sp.Minus {
		posMinus[b] = i
	}

	// x: process blocks in Minus order; a is left of b iff it precedes b in
	// both sequences, so scanning Minus and maximizing over already-placed
	// blocks with smaller Plus index yields the longest path.
	x = make([]int, n)
	for _, b := range sp.Minus {
		best := 0
		for _, a := range sp.Minus[:posMinus[b]] {
			if posPlus[a] < posPlus[b] { // a left of b
				if end := x[a] + ws[a] + gap; end > best {
					best = end
				}
			}
		}
		x[b] = best
	}
	// y: a is below b iff a follows b in Plus and precedes b in Minus.
	y = make([]int, n)
	for _, b := range sp.Minus {
		best := 0
		for _, a := range sp.Minus[:posMinus[b]] {
			if posPlus[a] > posPlus[b] { // a below b
				if end := y[a] + hs[a] + gap; end > best {
					best = end
				}
			}
		}
		y[b] = best
	}
	return x, y, nil
}

// Config controls the sequence-pair annealing placer.
type Config struct {
	// Steps is the SA move budget. Default 1500.
	Steps int
	// Cooling is the geometric cooling factor. Default 0.997.
	Cooling float64
	// Seed drives the run.
	Seed int64
	// Evaluator scores layouts. Default cost.DefaultWeights.
	Evaluator cost.Evaluator
}

func (cfg Config) withDefaults() Config {
	if cfg.Steps == 0 {
		cfg.Steps = 1500
	}
	if cfg.Cooling == 0 {
		cfg.Cooling = 0.997
	}
	if cfg.Evaluator == nil {
		cfg.Evaluator = cost.DefaultWeights
	}
	return cfg
}

// Result is an annealed packing.
type Result struct {
	X, Y  []int
	Cost  float64
	Pair  SeqPair
	Stats anneal.Stats
}

// problem is the SA state: the sequence pair itself. Every candidate is a
// legal packing, so no penalty or repair is needed.
type problem struct {
	circuit *netlist.Circuit
	sp      SeqPair
	prev    SeqPair
	layout  cost.Layout
	ev      cost.Evaluator
	gap     int

	best     float64
	bestX    []int
	bestY    []int
	bestPair SeqPair
}

// Propose implements anneal.Problem: swap two entries in one or both
// sequences.
func (pr *problem) Propose(rng *rand.Rand, magnitude float64) float64 {
	n := len(pr.sp.Plus)
	pr.prev = pr.sp.Clone()
	i, j := rng.Intn(n), rng.Intn(n)
	for n > 1 && j == i {
		j = rng.Intn(n)
	}
	switch rng.Intn(3) {
	case 0:
		pr.sp.Plus[i], pr.sp.Plus[j] = pr.sp.Plus[j], pr.sp.Plus[i]
	case 1:
		pr.sp.Minus[i], pr.sp.Minus[j] = pr.sp.Minus[j], pr.sp.Minus[i]
	default:
		pr.sp.Plus[i], pr.sp.Plus[j] = pr.sp.Plus[j], pr.sp.Plus[i]
		pr.sp.Minus[i], pr.sp.Minus[j] = pr.sp.Minus[j], pr.sp.Minus[i]
	}
	x, y, err := pr.sp.Positions(pr.layout.W, pr.layout.H, pr.gap)
	if err != nil {
		// Cannot happen for valid permutations; treat as a terrible move.
		return 1e308
	}
	copy(pr.layout.X, x)
	copy(pr.layout.Y, y)
	c := pr.ev.Cost(&pr.layout)
	if c < pr.best {
		pr.best = c
		copy(pr.bestX, x)
		copy(pr.bestY, y)
		pr.bestPair = pr.sp.Clone()
	}
	return c
}

// Accept implements anneal.Problem.
func (pr *problem) Accept() {}

// Reject implements anneal.Problem.
func (pr *problem) Reject() { pr.sp = pr.prev }

// Pack anneals a sequence pair for the sized circuit and returns the best
// packing found. The gap honors the circuit's largest design-rule halo.
func Pack(c *netlist.Circuit, fp geom.Rect, ws, hs []int, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	n := c.N()
	if len(ws) != n || len(hs) != n {
		return Result{}, fmt.Errorf("seqpair: dims sized %d/%d, want %d", len(ws), len(hs), n)
	}
	gap := 0
	for _, b := range c.Blocks {
		if b.Margin > gap {
			gap = b.Margin
		}
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	pr := &problem{
		circuit: c,
		sp:      Random(n, rng),
		ev:      cfg.Evaluator,
		gap:     gap,
		layout: cost.Layout{
			Circuit:   c,
			X:         make([]int, n),
			Y:         make([]int, n),
			W:         append([]int(nil), ws...),
			H:         append([]int(nil), hs...),
			Floorplan: fp,
		},
		bestX: make([]int, n),
		bestY: make([]int, n),
	}
	x, y, err := pr.sp.Positions(ws, hs, gap)
	if err != nil {
		return Result{}, err
	}
	copy(pr.layout.X, x)
	copy(pr.layout.Y, y)
	initCost := cfg.Evaluator.Cost(&pr.layout)
	pr.best = initCost
	copy(pr.bestX, x)
	copy(pr.bestY, y)
	pr.bestPair = pr.sp.Clone()

	stats, err := anneal.Run(pr, initCost, anneal.Config{
		Steps:   cfg.Steps,
		Cooling: cfg.Cooling,
		Rand:    rng,
	})
	if err != nil {
		return Result{}, fmt.Errorf("seqpair: %w", err)
	}
	return Result{X: pr.bestX, Y: pr.bestY, Cost: pr.best, Pair: pr.bestPair, Stats: stats}, nil
}

// Backup adapts a fixed sequence pair to the core.Backup / synth.Provider
// shape: a deterministic packed instantiation for any dimensions, like a
// template but with longest-path compaction.
type Backup struct {
	Circuit *netlist.Circuit
	Pair    SeqPair
	// Gap defaults to the circuit's largest margin when zero.
	Gap int
}

// NewBackup returns a Backup with a deterministic (identity) sequence pair
// and margin-derived gap.
func NewBackup(c *netlist.Circuit) *Backup {
	gap := 1
	for _, b := range c.Blocks {
		if b.Margin > gap {
			gap = b.Margin
		}
	}
	return &Backup{Circuit: c, Pair: New(c.N()), Gap: gap}
}

// Place implements the backup interface.
func (bk *Backup) Place(ws, hs []int) (x, y []int, err error) {
	return bk.Pair.Positions(ws, hs, bk.Gap)
}
