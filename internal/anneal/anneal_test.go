package anneal

import (
	"errors"
	"math"
	"math/rand"
	"testing"
)

// quadratic is a 1-D test problem: minimize (x - target)^2 with proposals
// that perturb x by a magnitude-scaled step.
type quadratic struct {
	x, prev, target float64
	step            float64
}

func (q *quadratic) cost(x float64) float64 { return (x - q.target) * (x - q.target) }

func (q *quadratic) Propose(rng *rand.Rand, magnitude float64) float64 {
	q.prev = q.x
	q.x += (rng.Float64()*2 - 1) * q.step * magnitude
	return q.cost(q.x)
}

func (q *quadratic) Accept() {}

func (q *quadratic) Reject() { q.x = q.prev }

func TestRunConvergesOnQuadratic(t *testing.T) {
	q := &quadratic{x: 100, target: 3, step: 10}
	stats, err := Run(q, q.cost(q.x), Config{Steps: 20000, Cooling: 0.999, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BestCost > 1 {
		t.Errorf("BestCost = %g, want < 1 (converged near target)", stats.BestCost)
	}
	if stats.BestCost > stats.InitCost {
		t.Error("best cost exceeds initial cost")
	}
	if math.Abs(q.x-3) > 5 {
		t.Errorf("final x = %g, want near 3", q.x)
	}
}

func TestRunDeterministicWithSeed(t *testing.T) {
	run := func() (float64, Stats) {
		q := &quadratic{x: 50, target: 0, step: 5}
		stats, err := Run(q, q.cost(q.x), Config{Steps: 500, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return q.x, stats
	}
	x1, s1 := run()
	x2, s2 := run()
	if x1 != x2 || s1 != s2 {
		t.Errorf("same seed produced different runs: x %g vs %g, stats %+v vs %+v", x1, x2, s1, s2)
	}
}

func TestRunStatsAccounting(t *testing.T) {
	q := &quadratic{x: 10, target: 0, step: 1}
	var observed int
	stats, err := Run(q, q.cost(q.x), Config{
		Steps: 200, Seed: 7,
		OnStep: func(s Step) { observed++ },
	})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Steps != 200 {
		t.Errorf("Steps = %d, want 200", stats.Steps)
	}
	if observed != stats.Steps {
		t.Errorf("OnStep called %d times, want %d", observed, stats.Steps)
	}
	if stats.Accepted < 1 || stats.Accepted > stats.Steps {
		t.Errorf("Accepted = %d out of %d, implausible", stats.Accepted, stats.Steps)
	}
	if rate := stats.AcceptRate(); rate <= 0 || rate > 1 {
		t.Errorf("AcceptRate = %g, want in (0,1]", rate)
	}
	if stats.MeanCost <= 0 {
		t.Errorf("MeanCost = %g, want positive", stats.MeanCost)
	}
	if stats.BestCost > stats.MeanCost {
		t.Errorf("BestCost %g should be <= MeanCost %g", stats.BestCost, stats.MeanCost)
	}
}

func TestRunConfigValidation(t *testing.T) {
	q := &quadratic{x: 1, target: 0, step: 1}
	if _, err := Run(q, 1, Config{Steps: -1}); err == nil {
		t.Error("negative steps should error")
	}
	if _, err := Run(q, 1, Config{Cooling: 1.5}); err == nil {
		t.Error("cooling >= 1 should error")
	}
	if _, err := Run(q, 1, Config{Cooling: -0.5}); err == nil {
		t.Error("negative cooling should error")
	}
}

func TestRunStopsAtMinTemp(t *testing.T) {
	q := &quadratic{x: 10, target: 0, step: 1}
	stats, err := Run(q, q.cost(q.x), Config{
		Steps: 1000000, Cooling: 0.5, InitialTemp: 1, MinTemp: 0.01, Seed: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 0.5^k < 0.01 after ~7 steps; the run must stop far before a million.
	if stats.Steps > 20 {
		t.Errorf("Steps = %d, want early stop near 7", stats.Steps)
	}
}

func TestMetropolisAlwaysAcceptsDownhill(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		if !metropolis(10, 5, 0.0001, rng) {
			t.Fatal("downhill move rejected")
		}
		if !metropolis(10, 10, 0.0001, rng) {
			t.Fatal("equal-cost move rejected")
		}
	}
}

func TestMetropolisUphillDependsOnTemp(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	hot, cold := 0, 0
	const trials = 2000
	for i := 0; i < trials; i++ {
		if metropolis(10, 12, 100, rng) {
			hot++
		}
		if metropolis(10, 12, 0.01, rng) {
			cold++
		}
	}
	if hot < trials*8/10 {
		t.Errorf("hot acceptance %d/%d, want near-certain", hot, trials)
	}
	if cold > trials/100 {
		t.Errorf("cold acceptance %d/%d, want near-zero", cold, trials)
	}
	if metropolis(10, 12, 0, rng) {
		t.Error("uphill at zero temperature must be rejected")
	}
}

func TestSharedRandStream(t *testing.T) {
	// Two runs sharing one *rand.Rand must consume from the same stream:
	// the second run differs from a fresh run with the same seed.
	rng := rand.New(rand.NewSource(9))
	q1 := &quadratic{x: 50, target: 0, step: 5}
	if _, err := Run(q1, q1.cost(q1.x), Config{Steps: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	q2 := &quadratic{x: 50, target: 0, step: 5}
	if _, err := Run(q2, q2.cost(q2.x), Config{Steps: 100, Rand: rng}); err != nil {
		t.Fatal(err)
	}
	q3 := &quadratic{x: 50, target: 0, step: 5}
	if _, err := Run(q3, q3.cost(q3.x), Config{Steps: 100, Rand: rand.New(rand.NewSource(9))}); err != nil {
		t.Fatal(err)
	}
	if q2.x == q3.x {
		t.Error("second run on a shared stream should differ from a fresh-seed run")
	}
}

func TestInitialTempCalibration(t *testing.T) {
	// With InitialTemp unset, the engine must still run and anneal.
	q := &quadratic{x: 1000, target: 0, step: 100}
	stats, err := Run(q, q.cost(q.x), Config{Steps: 5000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if stats.BestCost >= stats.InitCost {
		t.Errorf("no improvement: best %g vs init %g", stats.BestCost, stats.InitCost)
	}
}

func TestRunStopChannel(t *testing.T) {
	// A stop after N steps halts the run with ErrStopped and stats for the
	// steps that completed.
	stop := make(chan struct{})
	q := &quadratic{x: 1000, target: 0, step: 10}
	steps := 0
	stats, err := Run(q, q.cost(q.x), Config{
		Steps: 1 << 20,
		Seed:  3,
		Stop:  stop,
		OnStep: func(Step) {
			steps++
			if steps == 25 {
				close(stop)
			}
		},
	})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("err = %v, want ErrStopped", err)
	}
	if stats.Steps != 25 {
		t.Errorf("Steps = %d, want 25 (stop checked before every proposal)", stats.Steps)
	}

	// A pre-closed stop channel runs zero steps.
	closed := make(chan struct{})
	close(closed)
	stats, err = Run(q, q.cost(q.x), Config{Steps: 100, Seed: 4, Stop: closed})
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("pre-closed stop: err = %v, want ErrStopped", err)
	}
	if stats.Steps != 0 {
		t.Errorf("pre-closed stop ran %d steps, want 0", stats.Steps)
	}

	// A nil stop channel never fires.
	if _, err := Run(q, q.cost(q.x), Config{Steps: 50, Seed: 5}); err != nil {
		t.Fatalf("nil stop: %v", err)
	}
}
