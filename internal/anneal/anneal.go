// Package anneal provides the simulated-annealing engine shared by the four
// annealers in this repository: the Placement Explorer (outer loop of the
// paper's Fig. 4), the Block Dimensions-Interval Optimizer (inner loop), the
// optimization-based baseline placer, and the sizing optimizer of the
// synthesis example.
//
// The engine is deliberately small: geometric cooling, Metropolis
// acceptance, and run statistics. Problem-specific state, moves and costs
// live in the Problem implementation.
package anneal

import (
	"errors"
	"math"
	"math/rand"
)

// Problem is the state an annealer optimizes. Implementations own the
// current solution and must support propose/accept/reject semantics:
// Propose mutates toward a candidate, and exactly one of Accept or Reject
// is called afterwards.
type Problem interface {
	// Propose mutates the current solution into a candidate and returns the
	// candidate's cost. The magnitude hint in (0,1] scales how disruptive
	// the move should be (1 = hottest).
	Propose(rng *rand.Rand, magnitude float64) float64
	// Accept commits the outstanding candidate.
	Accept()
	// Reject restores the solution from before the outstanding candidate.
	Reject()
}

// Config controls an annealing run.
type Config struct {
	// InitialTemp is the starting temperature. If zero, it is calibrated
	// from the initial cost (10% of it, floor 1).
	InitialTemp float64
	// Cooling is the geometric cooling factor per step, in (0,1).
	// Default 0.995.
	Cooling float64
	// Steps is the total number of proposals. Default 1000.
	Steps int
	// MinTemp stops the run early once reached. Default 1e-6.
	MinTemp float64
	// Seed seeds the run's private RNG when Rand is nil.
	Seed int64
	// Rand, when non-nil, is used instead of a new source (lets callers
	// share one stream across nested annealers deterministically).
	Rand *rand.Rand
	// OnStep, when non-nil, observes every step after it resolves.
	OnStep func(s Step)
	// Stop, when non-nil, requests cooperative cancellation: the run checks
	// it before every proposal and returns ErrStopped (with the statistics
	// accumulated so far) as soon as it is closed. Callers typically pass a
	// context's Done channel, which makes every annealer in the nested
	// generation stack stop within one proposal of the context ending.
	Stop <-chan struct{}
}

// Step describes one annealing step for observers.
type Step struct {
	Index    int
	Temp     float64
	Cost     float64 // candidate cost
	Accepted bool
	Best     float64 // best cost so far, including this step
}

// Stats summarizes a completed run.
type Stats struct {
	Steps     int
	Accepted  int
	InitCost  float64
	BestCost  float64
	FinalCost float64
	// MeanCost is the average of all candidate costs seen — the paper's
	// "average cost" that the BDIO reports to the Placement Explorer.
	MeanCost  float64
	FinalTemp float64
}

// AcceptRate returns the fraction of accepted proposals.
func (s Stats) AcceptRate() float64 {
	if s.Steps == 0 {
		return 0
	}
	return float64(s.Accepted) / float64(s.Steps)
}

// ErrNoSteps is returned when Config.Steps resolves to a non-positive count.
var ErrNoSteps = errors.New("anneal: no steps configured")

// ErrStopped is returned when Config.Stop fires mid-run. The Stats returned
// alongside it are valid for the steps that did complete, and the problem
// holds its last-accepted solution, so a stopped run is a shorter run, not
// a corrupt one.
var ErrStopped = errors.New("anneal: stopped")

// Run anneals the problem starting from the given initial cost and returns
// run statistics. The problem is left holding its final (last-accepted)
// solution; callers needing the best-ever solution should track it in their
// Accept implementation or via OnStep.
func Run(p Problem, initCost float64, cfg Config) (Stats, error) {
	steps := cfg.Steps
	if steps == 0 {
		steps = 1000
	}
	if steps < 0 {
		return Stats{}, ErrNoSteps
	}
	cooling := cfg.Cooling
	if cooling == 0 {
		cooling = 0.995
	}
	if cooling <= 0 || cooling >= 1 {
		return Stats{}, errors.New("anneal: cooling factor must be in (0,1)")
	}
	minTemp := cfg.MinTemp
	if minTemp == 0 {
		minTemp = 1e-6
	}
	temp := cfg.InitialTemp
	if temp == 0 {
		temp = math.Max(1, 0.1*math.Abs(initCost))
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}

	stats := Stats{InitCost: initCost, BestCost: initCost, FinalCost: initCost}
	current := initCost
	var costSum float64
	initialTemp := temp

	var stopped bool
	for i := 0; i < steps && temp > minTemp; i++ {
		if cfg.Stop != nil {
			select {
			case <-cfg.Stop:
				stopped = true
			default:
			}
			if stopped {
				break
			}
		}
		magnitude := temp / initialTemp
		if magnitude > 1 {
			magnitude = 1
		}
		if magnitude <= 0 {
			magnitude = 1e-9
		}
		cand := p.Propose(rng, magnitude)
		costSum += cand
		accepted := metropolis(current, cand, temp, rng)
		if accepted {
			p.Accept()
			current = cand
			stats.Accepted++
		} else {
			p.Reject()
		}
		if cand < stats.BestCost {
			stats.BestCost = cand
		}
		stats.Steps++
		if cfg.OnStep != nil {
			cfg.OnStep(Step{Index: i, Temp: temp, Cost: cand, Accepted: accepted, Best: stats.BestCost})
		}
		temp *= cooling
	}
	stats.FinalCost = current
	stats.FinalTemp = temp
	if stats.Steps > 0 {
		stats.MeanCost = costSum / float64(stats.Steps)
	} else {
		stats.MeanCost = initCost
	}
	if stopped {
		return stats, ErrStopped
	}
	return stats, nil
}

// metropolis applies the standard acceptance rule: always accept downhill,
// accept uphill with probability exp(-Δ/T).
func metropolis(current, candidate, temp float64, rng *rand.Rand) bool {
	if candidate <= current {
		return true
	}
	if temp <= 0 {
		return false
	}
	return rng.Float64() < math.Exp(-(candidate-current)/temp)
}
