package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"mps/internal/cluster"
	"mps/internal/obs"
)

// fetchAssembled GETs /v1/debug/traces/{id} from baseURL and decodes the
// cluster-assembled trace.
func fetchAssembled(t *testing.T, baseURL, id string) obs.AssembledTrace {
	t.Helper()
	status, _, body := doClusterJSON(t, http.MethodGet, baseURL+"/v1/debug/traces/"+id, nil, nil)
	if status != http.StatusOK {
		t.Fatalf("GET %s/v1/debug/traces/%s: %d %s", baseURL, id, status, body)
	}
	var at obs.AssembledTrace
	if err := json.Unmarshal(body, &at); err != nil {
		t.Fatalf("decoding assembled trace: %v", err)
	}
	return at
}

// spanByID indexes an assembled trace's spans.
func spanByID(at obs.AssembledTrace) map[obs.SpanID]obs.SpanRecord {
	out := make(map[obs.SpanID]obs.SpanRecord, len(at.Spans))
	for _, sp := range at.Spans {
		out[sp.ID] = sp
	}
	return out
}

// TestClusterTraceEndToEnd drives a forwarded generate between two real
// nodes and checks the tentpole end to end: one trace ID on the wire,
// both nodes retain their segment (tail sampling's cross-node rule), the
// assembled tree is queryable from either node, names both nodes, nests
// the peer's segment under the entry node's forward span with consistent
// timestamps, and the forward span accounts for >= 90% of the end-to-end
// latency (the annealing ran on the owner, and the trace proves it).
func TestClusterTraceEndToEnd(t *testing.T) {
	fleet := newTestFleet(t, fleetConfig{
		n: 2,
		cluster: func(cfg *cluster.Config) {
			cfg.Replicas = 1 // every read of a peer-owned key forwards
			// The measured generate must complete within one forward
			// attempt — a timeout would retry and then degrade to local
			// generation, turning the one-hop trace into several.
			cfg.ForwardTimeout = 2 * time.Minute
		},
	})
	entry, peer := fleet.nodes[0], fleet.nodes[1]

	// A generation heavy enough that the entry node's own decode/encode
	// overhead is well under 10% of the request — the substance of the
	// >=90% attribution check — but still seconds, not minutes, under
	// the race detector.
	var spec GenerateSpec
	for seed := int64(5200); ; seed++ {
		if seed == 6200 {
			t.Fatal("no heavy spec owned by node 1 in 1000 seeds")
		}
		spec = GenerateSpec{Circuit: "circ01", Seed: seed, Effort: "quick",
			Iterations: 150, BDIOSteps: 100}
		if fleet.ownerIndex(t, specKey(t, spec)) == 1 {
			break
		}
	}

	status, hdr, body := doClusterJSON(t, http.MethodPost, entry.url+"/v1/structures", spec, nil)
	if status != http.StatusOK {
		t.Fatalf("forwarded generate: %d %s", status, body)
	}
	traceID := hdr.Get(obs.TraceIDHeader)
	if _, ok := obs.ParseTraceID(traceID); !ok {
		t.Fatalf("response %s = %q, want a 32-hex trace id", obs.TraceIDHeader, traceID)
	}

	// Both nodes retained their segment, and for the right reason: the
	// request crossed nodes, so tail sampling must keep both ends
	// unconditionally — that is what makes assembly reliable.
	for name, n := range map[string]*clusterNode{"entry": entry, "peer": peer} {
		segs := n.s.traces.Get(mustTraceID(t, traceID))
		if len(segs) != 1 {
			t.Fatalf("%s node retained %d segments, want 1", name, len(segs))
		}
		if segs[0].Retained != "cross_node" {
			t.Errorf("%s node retained trace as %q, want cross_node", name, segs[0].Retained)
		}
	}
	if segs := peer.s.traces.Get(mustTraceID(t, traceID)); segs[0].From != entry.url {
		t.Errorf("peer segment From = %q, want %q", segs[0].From, entry.url)
	}

	// The assembled trace is the same complete tree from either node.
	for _, baseURL := range []string{entry.url, peer.url} {
		at := fetchAssembled(t, baseURL, traceID)
		if len(at.Nodes) != 2 || at.Nodes[0] != entry.url && at.Nodes[1] != entry.url {
			t.Fatalf("assembled from %s names nodes %v, want both of [%s %s]",
				baseURL, at.Nodes, entry.url, peer.url)
		}
		if at.Partial || len(at.Missing) > 0 {
			t.Fatalf("assembled from %s: partial=%v missing=%v, want a complete trace",
				baseURL, at.Partial, at.Missing)
		}

		byID := spanByID(at)
		root, ok := byID[at.Root]
		if !ok || root.Stage != "request" || root.Node != entry.url || root.Parent != 0 {
			t.Fatalf("root span %+v, want the entry node's request span", root)
		}
		var peerReq, fwd obs.SpanRecord
		for _, sp := range at.Spans {
			if sp.Stage == "request" && sp.Node == peer.url {
				peerReq = sp
			}
			if sp.Stage == "forward" && sp.Node == entry.url && sp.Parent == root.ID {
				fwd = sp
			}
		}
		if peerReq.ID == 0 {
			t.Fatalf("assembled from %s has no request span on the peer node", baseURL)
		}
		if fwd.ID == 0 || fwd.Remote != peer.url {
			t.Fatalf("assembled from %s: forward span %+v, want one under the root naming the peer", baseURL, fwd)
		}

		// The peer's segment nests under the entry node's forward attempt:
		// following parent links from the peer's request span must reach
		// the root through the forward span, and the wall-clock windows
		// must nest the same way (one machine, one clock, strictly
		// client-wraps-server).
		onPath := false
		for sp, hops := peerReq, 0; sp.ID != root.ID; hops++ {
			if hops > len(at.Spans) {
				t.Fatalf("parent chain from peer request span never reaches the root")
			}
			parent, ok := byID[sp.Parent]
			if !ok {
				t.Fatalf("span %x's parent %x missing from the assembled trace", sp.ID, sp.Parent)
			}
			if parent.ID == fwd.ID {
				onPath = true
			}
			sp = parent
		}
		if !onPath {
			t.Errorf("peer request span does not nest under the entry's forward span")
		}
		attempt := byID[peerReq.Parent]
		if peerReq.StartUnixNs < attempt.StartUnixNs {
			t.Errorf("peer request started %dns before the forward attempt that carried it",
				attempt.StartUnixNs-peerReq.StartUnixNs)
		}
		if peerReq.DurationNs > attempt.DurationNs {
			t.Errorf("peer request ran %dns, longer than the client-side attempt's %dns",
				peerReq.DurationNs, attempt.DurationNs)
		}

		// >= 90% of the end-to-end latency is attributed to the forward —
		// the annealing happened on the owner and the trace accounts for it.
		if root.DurationNs <= 0 {
			t.Fatalf("root span has no duration")
		}
		if ratio := float64(fwd.DurationNs) / float64(root.DurationNs); ratio < 0.9 {
			t.Errorf("forward span covers %.1f%% of the request, want >= 90%%", 100*ratio)
		}

		// The owner's annealing shows up as a job_run span on the peer.
		jobRunNode := ""
		for _, sp := range at.Spans {
			if sp.Stage == "job_run" {
				jobRunNode = sp.Node
			}
		}
		if jobRunNode != peer.url {
			t.Errorf("job_run span on %q, want the owning peer %q", jobRunNode, peer.url)
		}
	}

	// The listing surfaces the trace on both nodes, filterably.
	for _, n := range fleet.nodes {
		status, _, body := doClusterJSON(t, http.MethodGet,
			n.url+"/v1/debug/traces?route=structures", nil, nil)
		if status != http.StatusOK {
			t.Fatalf("trace listing on %s: %d %s", n.url, status, body)
		}
		var listing struct {
			Node   string `json:"node"`
			Traces []struct {
				ID       string `json:"id"`
				Retained string `json:"retained"`
			} `json:"traces"`
		}
		if err := json.Unmarshal(body, &listing); err != nil {
			t.Fatal(err)
		}
		found := false
		for _, row := range listing.Traces {
			if row.ID == traceID {
				found = true
			}
		}
		if !found {
			t.Errorf("node %s listing does not include trace %s", n.url, traceID)
		}
	}
}

// TestClusterTracePortfolioFanOut builds a portfolio whose members span
// both nodes and checks the fan-out is one trace: the entry node's
// cross-node generate legs and the remote member's scheduler work all
// assemble under the portfolio request's ID — queried from the node that
// did NOT serve the request.
func TestClusterTracePortfolioFanOut(t *testing.T) {
	fleet := newTestFleet(t, fleetConfig{
		n: 2,
		cluster: func(cfg *cluster.Config) {
			cfg.Replicas = 1
		},
	})
	entry, peer := fleet.nodes[0], fleet.nodes[1]

	// A portfolio spec the entry node owns (no top-level forward) with at
	// least one member owned by the peer, so building it must fan out.
	var spec GenerateSpec
	for seed := int64(7400); ; seed++ {
		if seed == 8400 {
			t.Fatal("no suitable portfolio spec in 1000 seeds")
		}
		sp := testSpec(seed)
		sp.Portfolio = 2
		if fleet.ownerIndex(t, specKey(t, sp)) != 0 {
			continue
		}
		if fleet.ownerIndex(t, specKey(t, sp.memberSpec(0))) == 1 ||
			fleet.ownerIndex(t, specKey(t, sp.memberSpec(1))) == 1 {
			spec = sp
			break
		}
	}

	status, hdr, body := doClusterJSON(t, http.MethodPost, entry.url+"/v1/structures", spec, nil)
	if status != http.StatusOK {
		t.Fatalf("portfolio generate: %d %s", status, body)
	}
	traceID := hdr.Get(obs.TraceIDHeader)

	at := fetchAssembled(t, peer.url, traceID)
	if len(at.Nodes) != 2 {
		t.Fatalf("portfolio trace names nodes %v, want both fleet nodes", at.Nodes)
	}
	if at.Partial || len(at.Missing) > 0 {
		t.Fatalf("portfolio trace partial=%v missing=%v, want complete", at.Partial, at.Missing)
	}
	var peerWork, jobRun, crossLeg bool
	for _, sp := range at.Spans {
		if sp.Node == peer.url && sp.Stage != "request" {
			peerWork = true
		}
		if sp.Stage == "job_run" {
			jobRun = true
		}
		if sp.Node == entry.url && sp.Remote == peer.url {
			crossLeg = true
		}
	}
	if !crossLeg {
		t.Errorf("no entry-node span names the peer: fan-out leg untraced")
	}
	if !peerWork {
		t.Errorf("no non-root span on the peer: remote member generation untraced")
	}
	if !jobRun {
		t.Errorf("no job_run span anywhere: scheduler work untraced")
	}
}

// TestTracePanicRetained is the regression test for the middleware leak:
// a handler that panics mid-request must still get its trace finished and
// retained under the error rule — previously the live span leaked and the
// trace vanished.
func TestTracePanicRetained(t *testing.T) {
	s := New(Config{Logf: testLogf(t)})
	t.Cleanup(func() { s.Close() })

	h := s.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		tr := obs.TraceFrom(r.Context())
		sp := tr.StartSpan(obs.StageCache)
		defer sp.End()
		w.WriteHeader(http.StatusOK) // partial write, then death
		panic(http.ErrAbortHandler)
	}))
	srv := httptest.NewServer(h)
	t.Cleanup(srv.Close)

	resp, err := http.Get(srv.URL + "/v1/circuits")
	if err == nil {
		resp.Body.Close()
	}

	deadline := time.Now().Add(2 * time.Second)
	for {
		recs := s.traces.Recent(obs.TraceFilter{Route: "circuits"})
		if len(recs) == 1 {
			rec := recs[0]
			if rec.Retained != "error" {
				t.Errorf("panicked request retained as %q, want error", rec.Retained)
			}
			if rec.Status != http.StatusInternalServerError {
				t.Errorf("panicked request recorded status %d, want 500", rec.Status)
			}
			if len(rec.Spans) == 0 || rec.Spans[0].Stage != "request" {
				t.Errorf("panicked request's root span missing: %+v", rec.Spans)
			}
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("panicked request's trace never retained: %d records", len(recs))
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func mustTraceID(t *testing.T, s string) obs.TraceID {
	t.Helper()
	id, ok := obs.ParseTraceID(s)
	if !ok {
		t.Fatalf("bad trace id %q", s)
	}
	return id
}
