// Cluster-mode routing for the serve layer: which node answers a request,
// how non-owned requests are proxied there, and how structure artifacts
// move between nodes (peer fetch, rebalance transfer) using the store's
// v3 files as the wire format.
//
// Routing rules (the whole protocol):
//
//  1. The canonical spec key — already the cache/store/job dedup key — is
//     the shard key. The consistent-hash ring maps it to one owning node.
//  2. A node receiving a client request for a key it does not own proxies
//     it to the owner (reads of hot keys: to a uniform pick from the
//     key's replica set), marking it with the cluster.ForwardHeader.
//  3. A request carrying the forward mark — well-formed or not — is NEVER
//     forwarded again: the receiving node answers locally. Forwarding is
//     therefore single-hop by construction.
//  4. If the proxied request fails (timeouts, retries exhausted, breaker
//     open), the node degrades gracefully: it answers locally, fetching
//     the artifact from any replica that has it, and only generating
//     itself as the last resort. Dedup still collapses concurrent local
//     fallbacks for one key into one job.
//  5. A node serving a key it does not own (replica fan-out, fallback, a
//     forwarded portfolio member) first tries to *fetch* the built
//     artifact (v3 bytes) from the owner — milliseconds — so generation
//     still happens exactly once cluster-wide while owners are up.
package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"

	"mps"
	"mps/internal/cluster"
	"mps/internal/core"
	"mps/internal/jobs"
	"mps/internal/obs"
	"mps/internal/store"
)

// maxTransferBytes bounds a fetched or pushed structure artifact. v3
// files for the paper's circuits are KBs to low MBs; 256 MiB is far above
// any legitimate structure and merely stops a rogue peer from ballooning
// memory.
const maxTransferBytes = 256 << 20

// forwarded reports whether r already carries the forward mark. Presence
// alone decides — a malformed mark still counts as forwarded (and is the
// loop guard; see cluster.ForwardHeader).
func forwarded(r *http.Request) bool {
	return r.Header.Get(cluster.ForwardHeader) != ""
}

// maybeForward proxies the request to the node that should answer it and
// reports whether the response has been written. false means "serve
// locally": single-node mode, an already-forwarded request, a key this
// node should answer itself, or a proxy failure (graceful degradation —
// the caller proceeds exactly as if no cluster existed, and the entry
// pipeline's peer read-through keeps generation single-copy when some
// replica still has the artifact).
//
// body is the already-read request body, replayed verbatim to the peer.
// readOnly routes hot keys across the replica set instead of pinning the
// owner.
func (s *Server) maybeForward(w http.ResponseWriter, r *http.Request, key string, readOnly bool, body []byte) bool {
	c := s.cluster
	if c == nil || forwarded(r) {
		return false
	}
	var target string
	if readOnly {
		target = c.RouteRead(key)
	} else {
		target = c.Owner(key)
	}
	if target == c.Self() {
		return false
	}
	mark, err := cluster.EncodeForward(cluster.Forward{From: c.Self(), Hop: 1})
	if err != nil { // unreachable for a validated self URL; serve locally
		s.logf("cluster: encoding forward mark: %v", err)
		return false
	}
	hdr := http.Header{}
	if ct := r.Header.Get("Content-Type"); ct != "" {
		hdr.Set("Content-Type", ct)
	}
	hdr.Set(cluster.ForwardHeader, mark)
	// Everything past this point is forward work — the peer round trip
	// and, on success, relaying its response — so one deferred span
	// covers every outcome. Do's per-attempt child spans (which carry the
	// X-Mps-Trace header to the peer) nest under it via the context.
	tr := obs.TraceFrom(r.Context())
	tr.Annotate(key)
	fwdSpan := tr.StartSpan(obs.StageForward)
	fwdSpan.SetRemote(target)
	fwdSpan.SetKey(key)
	defer func() { s.metrics.endSpan(fwdSpan) }()
	ctx := obs.ContextWithSpan(r.Context(), fwdSpan)
	resp, err := c.Do(ctx, target, r.Method, r.URL.RequestURI(), body, hdr, c.ForwardTimeout())
	if err != nil {
		c.CountFallback()
		s.logf("cluster: forwarding %s %s (key %s) to %s: %v — serving locally",
			r.Method, r.URL.Path, key, target, err)
		return false
	}
	defer resp.Body.Close()
	if resp.StatusCode >= 500 {
		// The peer is up but failing — same degradation as unreachable,
		// and the breaker hears about it so a persistently failing peer
		// stops costing round trips. 4xx is different: the peer understood
		// the request and refused it; relaying that verdict is correct.
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		c.MarkFailure(target)
		c.CountFallback()
		s.logf("cluster: %s answered %d for %s %s (key %s) — serving locally",
			target, resp.StatusCode, r.Method, r.URL.Path, key)
		return false
	}
	c.CountForward()
	if ct := resp.Header.Get("Content-Type"); ct != "" {
		w.Header().Set("Content-Type", ct)
	}
	if by := resp.Header.Get(cluster.ServedByHeader); by != "" {
		// Relay who actually answered (the peer, or whoever it warmed the
		// response from) so clients and tests can observe the routing.
		w.Header().Set(cluster.ServedByHeader, by)
	}
	w.WriteHeader(resp.StatusCode)
	if _, err := io.Copy(w, resp.Body); err != nil {
		// Status already sent; nothing to recover. The access log notes it.
		s.logf("cluster: relaying response from %s: %v", target, err)
	}
	return true
}

// remoteWork is the entry pipeline for a key this node does not own,
// run off the ensure caller's goroutine (peer calls are network-scale,
// and a portfolio fan-out must not serialize behind them):
//
//	fetch built artifact from a replica -> ask the owner to generate,
//	then fetch -> degrade to a local generation job.
//
// Exactly one of the paths publishes the entry.
//
// tr is the trace of the request that created the entry (nil when none):
// the fetch/forward spans land on it even though this goroutine outlives
// the ensure call — Trace is atomic, so a post-response record is safe,
// and the global stage counters see the spans either way.
func (s *Server) remoteWork(tr *obs.Trace, e *entry, specJSON []byte) {
	// Spans parent to the trace root: this goroutine is asynchronous to
	// the request's span stack, so nesting under a span that may already
	// have ended would misrepresent the timeline.
	fetchSpan := tr.StartSpan(obs.StageFetch)
	fetchSpan.SetKey(e.key)
	st0, stats0, ok := s.fetchFromPeers(fetchSpan, e.spec)
	s.metrics.endSpan(fetchSpan)
	if ok {
		st, stats := st0, stats0
		if snap, err := s.sched.RecordDone(e.key, specJSON, jobsProgress(st, stats)); err == nil {
			s.setJobID(e, snap.ID)
		}
		s.publish(e, st, stats, nil)
		return
	}
	genSpan := tr.StartSpan(obs.StageForward)
	genSpan.SetKey(e.key)
	genSpan.SetRemote(s.cluster.Owner(e.key))
	st1, stats1, handled, err1 := s.generateOnOwner(genSpan, e.spec)
	s.metrics.endSpan(genSpan)
	if handled {
		st, stats, err := st1, stats1, err1
		if err != nil {
			s.publish(e, nil, mps.Stats{}, err)
			return
		}
		if snap, err := s.sched.RecordDone(e.key, specJSON, jobsProgress(st, stats)); err == nil {
			s.setJobID(e, snap.ID)
		}
		s.publish(e, st, stats, nil)
		return
	}
	// Owner and replicas unreachable: serve anyway. The local scheduler
	// dedups concurrent fallbacks for this key onto this one job.
	s.cluster.CountFallback()
	s.logf("cluster: owner %s unreachable for %s — degrading to local generation",
		s.cluster.Owner(e.key), e.key)
	s.submitGeneration(tr, e, specJSON)
}

// fetchFromPeers tries to pull the built structure (v3 bytes) for spec
// from the key's replica set, owner first. Milliseconds against a healthy
// peer; a dead one costs at most one FetchTimeout before its breaker
// starts refusing instantly.
func (s *Server) fetchFromPeers(sp obs.SpanRef, spec GenerateSpec) (*mps.Structure, mps.Stats, bool) {
	c := s.cluster
	key := spec.key()
	for _, peer := range c.Ring().Replicas(key, len(c.Peers())) {
		if peer == c.Self() {
			continue
		}
		st, stats, err := s.fetchFrom(sp, peer, spec)
		if err != nil {
			s.logf("cluster: fetching %s from %s: %v", key, peer, err)
			continue
		}
		if st != nil {
			c.CountFetch()
			return st, stats, true
		}
	}
	return nil, mps.Stats{}, false
}

// errPeerMiss distinguishes "peer answered: not here" from transport
// failure in fetchFrom.
var errPeerMiss = fmt.Errorf("peer does not have the structure")

// fetchFrom pulls spec's structure from one peer. (nil, _, nil) is
// returned for a clean miss (the peer answered 404). sp, when backed by
// a trace, parents the per-attempt spans Do records for this pull.
func (s *Server) fetchFrom(sp obs.SpanRef, peer string, spec GenerateSpec) (*mps.Structure, mps.Stats, error) {
	c := s.cluster
	mark, err := cluster.EncodeForward(cluster.Forward{From: c.Self(), Hop: 1})
	if err != nil {
		return nil, mps.Stats{}, err
	}
	hdr := http.Header{}
	hdr.Set(cluster.ForwardHeader, mark)
	resp, err := c.Do(obs.ContextWithSpan(context.Background(), sp), peer, http.MethodGet,
		"/v1/cluster/structure?key="+url.QueryEscape(spec.key()), nil, hdr, c.FetchTimeout())
	if err != nil {
		return nil, mps.Stats{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, mps.Stats{}, nil
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, mps.Stats{}, fmt.Errorf("peer answered %d", resp.StatusCode)
	}
	circuit, err := mps.Benchmark(spec.Circuit)
	if err != nil {
		return nil, mps.Stats{}, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, maxTransferBytes+1))
	if err != nil {
		return nil, mps.Stats{}, err
	}
	if len(body) == 0 {
		return nil, mps.Stats{}, errPeerMiss
	}
	if len(body) > maxTransferBytes {
		return nil, mps.Stats{}, fmt.Errorf("artifact exceeds %d bytes", maxTransferBytes)
	}
	// core.Load validates checksum and invariants: a corrupt or forged
	// peer response is an error here, never a served structure.
	cs, err := core.Load(bytes.NewReader(body), circuit)
	if err != nil {
		return nil, mps.Stats{}, fmt.Errorf("decoding peer artifact: %w", err)
	}
	st := &mps.Structure{Structure: cs}
	st.SetBackupKind(spec.backupKind())
	st.Compiled()
	var stats mps.Stats
	if cov := resp.Header.Get(clusterCoverageHeader); cov != "" {
		fmt.Sscanf(cov, "%g", &stats.FinalCoverage)
	}
	return st, stats, nil
}

// generateOnOwner asks the key's owner to generate spec (a marked,
// submit-and-wait POST /v1/structures — the owner dedups it against its
// own cache, store, and queue) and then fetches the built artifact.
// handled=false means the owner was unreachable and the caller should
// degrade to local generation; handled=true with err carries an owner
// verdict (e.g. a 4xx) that local generation could not improve on.
func (s *Server) generateOnOwner(sp obs.SpanRef, spec GenerateSpec) (*mps.Structure, mps.Stats, bool, error) {
	c := s.cluster
	owner := c.Owner(spec.key())
	mark, err := cluster.EncodeForward(cluster.Forward{From: c.Self(), Hop: 1})
	if err != nil {
		return nil, mps.Stats{}, false, nil
	}
	hdr := http.Header{}
	hdr.Set("Content-Type", "application/json")
	hdr.Set(cluster.ForwardHeader, mark)
	resp, err := c.Do(obs.ContextWithSpan(context.Background(), sp), owner, http.MethodPost, "/v1/structures",
		mustSpecJSON(spec), hdr, c.ForwardTimeout())
	if err != nil {
		return nil, mps.Stats{}, false, nil
	}
	defer resp.Body.Close()
	msg, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	switch {
	case resp.StatusCode == http.StatusOK:
		st, stats, err := s.fetchFrom(sp, owner, spec)
		if err != nil || st == nil {
			// Generated there but the artifact will not come over; local
			// generation still serves the client.
			s.logf("cluster: owner %s generated %s but fetch failed: %v", owner, spec.key(), err)
			return nil, mps.Stats{}, false, nil
		}
		c.CountFetch()
		return st, stats, true, nil
	case resp.StatusCode >= 400 && resp.StatusCode < 500:
		// The owner understood and refused (bad spec, over budget); a
		// local run would be refused the same way.
		return nil, mps.Stats{}, true, fmt.Errorf("owner %s refused generation (%d): %s",
			owner, resp.StatusCode, bytes.TrimSpace(msg))
	default:
		// 5xx: owner is up but failing — same degradation as unreachable.
		return nil, mps.Stats{}, false, nil
	}
}

// jobsProgress summarizes a fetched structure for the job-history record.
func jobsProgress(st *mps.Structure, stats mps.Stats) jobs.Progress {
	return jobs.Progress{Placements: st.NumPlacements(), Coverage: stats.FinalCoverage}
}

// entryForKey resolves a bare cache key — the instantiate fast path — in
// cluster order: LRU, local store (rebuilding the spec from the manifest
// row), then the key's owner (resolving the spec remotely and pulling the
// artifact through the ordinary entry pipeline). A nil entry with nil
// error means the key is unknown everywhere reachable.
func (s *Server) entryForKey(ctx context.Context, key string) (*entry, error) {
	if e, ok := s.lookup(key); ok {
		return e, nil
	}
	if spec, ok := s.specFromStore(key); ok {
		e, _, err := s.structureFor(ctx, spec)
		if err == nil && e.key != key {
			return nil, fmt.Errorf("store row for %s rebuilds to key %s (key drift)", key, e.key)
		}
		return e, err
	}
	if s.cluster != nil && !forwardedFromCtx(ctx) {
		if spec, ok := s.specFromPeer(ctx, key); ok {
			e, _, err := s.structureFor(ctx, spec)
			if err == nil && e.key != key {
				return nil, fmt.Errorf("peer spec for %s rebuilds to key %s (key drift)", key, e.key)
			}
			return e, err
		}
	}
	return nil, nil
}

// forwardedCtxKey marks request contexts of already-forwarded requests so
// entryForKey does not chase peers for a request a peer just sent us.
type forwardedCtxKey struct{}

func forwardedFromCtx(ctx context.Context) bool {
	v, _ := ctx.Value(forwardedCtxKey{}).(bool)
	return v
}

// specFromStore rebuilds the GenerateSpec recorded for key in the local
// store manifest (structure row or portfolio grouping row).
func (s *Server) specFromStore(key string) (GenerateSpec, bool) {
	if s.cfg.Store == nil {
		return GenerateSpec{}, false
	}
	var opts string
	if m, ok := s.cfg.Store.Stat(key); ok {
		opts = m.Options
	} else if row, ok := s.cfg.Store.GetPortfolio(key); ok {
		opts = row.Options
	} else {
		return GenerateSpec{}, false
	}
	return specFromOptions(key, opts, s.logf)
}

// specFromPeer asks the key's owner which spec the key denotes (metadata
// only — the artifact follows through the entry pipeline, where every
// replica gets a chance to serve it).
func (s *Server) specFromPeer(ctx context.Context, key string) (GenerateSpec, bool) {
	c := s.cluster
	owner := c.Owner(key)
	if owner == c.Self() {
		return GenerateSpec{}, false
	}
	mark, err := cluster.EncodeForward(cluster.Forward{From: c.Self(), Hop: 1})
	if err != nil {
		return GenerateSpec{}, false
	}
	hdr := http.Header{}
	hdr.Set(cluster.ForwardHeader, mark)
	tr := obs.TraceFrom(ctx)
	sp := tr.StartSpan(obs.StageFetch)
	sp.SetRemote(owner)
	sp.SetKey(key)
	defer func() { s.metrics.endSpan(sp) }()
	resp, err := c.Do(obs.ContextWithSpan(context.Background(), sp), owner, http.MethodGet,
		"/v1/cluster/structure?key="+url.QueryEscape(key)+"&meta=1", nil, hdr, c.FetchTimeout())
	if err != nil {
		return GenerateSpec{}, false
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return GenerateSpec{}, false
	}
	return specFromOptions(key, resp.Header.Get(clusterSpecHeader), s.logf)
}

// specFromOptions decodes and re-validates a recorded spec, requiring it
// to rebuild exactly the key it was recorded under.
func specFromOptions(key, opts string, logf func(string, ...any)) (GenerateSpec, bool) {
	var spec GenerateSpec
	if err := json.Unmarshal([]byte(opts), &spec); err != nil {
		logf("cluster: options for %s: %v", key, err)
		return GenerateSpec{}, false
	}
	if err := spec.normalize(); err != nil {
		logf("cluster: spec for %s: %v", key, err)
		return GenerateSpec{}, false
	}
	if spec.key() != key {
		logf("cluster: options for %s rebuild to %s (key drift)", key, spec.key())
		return GenerateSpec{}, false
	}
	return spec, true
}

// Cluster transfer headers. clusterSpecHeader carries the canonical spec
// JSON (single-line by construction); clusterCoverageHeader and
// clusterPlacementsHeader carry the manifest snapshot numbers.
const (
	clusterSpecHeader       = "X-Mps-Spec"
	clusterCoverageHeader   = "X-Mps-Coverage"
	clusterPlacementsHeader = "X-Mps-Placements"
)

// handleClusterStructure is GET /v1/cluster/structure?key=K[&meta=1]: the
// peer artifact endpoint. Answers from the LRU (encoding the live
// structure) or the store (streaming the v3 file); never generates, never
// forwards — it exists so peers can move built artifacts, not work.
// Portfolio keys answer meta-only (the artifact is its members; peers
// assemble locally, fetching each member from its own owner).
func (s *Server) handleClusterStructure(w http.ResponseWriter, r *http.Request) {
	key := r.URL.Query().Get("key")
	if key == "" {
		writeError(w, http.StatusBadRequest, "missing key")
		return
	}
	metaOnly := r.URL.Query().Get("meta") == "1"

	if e, ok := s.lookup(key); ok {
		w.Header().Set(clusterSpecHeader, string(mustSpecJSON(e.spec)))
		w.Header().Set(clusterCoverageHeader, strconv.FormatFloat(e.coverage, 'g', -1, 64))
		w.Header().Set(clusterPlacementsHeader, strconv.Itoa(e.placements))
		if metaOnly || e.s == nil { // portfolio entries ship meta only
			w.WriteHeader(http.StatusOK)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := e.s.SaveBinaryCompiled(w); err != nil {
			s.logf("cluster: encoding %s for peer: %v", key, err)
		}
		return
	}
	if spec, ok := s.specFromStore(key); ok {
		w.Header().Set(clusterSpecHeader, string(mustSpecJSON(spec)))
		if m, ok := s.cfg.Store.Stat(key); ok {
			w.Header().Set(clusterCoverageHeader, strconv.FormatFloat(m.Coverage, 'g', -1, 64))
			w.Header().Set(clusterPlacementsHeader, strconv.Itoa(m.Placements))
			if metaOnly {
				w.WriteHeader(http.StatusOK)
				return
			}
			data, _, err := s.cfg.Store.ReadFile(key)
			if err != nil {
				s.loadErrs.Add(1)
				writeError(w, http.StatusInternalServerError, err.Error())
				return
			}
			w.Header().Set("Content-Type", "application/octet-stream")
			w.Write(data)
			return
		}
		// Portfolio grouping row: meta only.
		w.WriteHeader(http.StatusOK)
		return
	}
	writeError(w, http.StatusNotFound, fmt.Sprintf("structure %q not held here", key))
}

// handleClusterAccept is POST /v1/cluster/accept: the receiving side of a
// rebalance transfer — manifest meta in headers, v3 bytes as the body.
// The artifact revalidates through core.Load before anything persists, so
// a corrupt transfer is rejected, never stored.
func (s *Server) handleClusterAccept(w http.ResponseWriter, r *http.Request) {
	var spec GenerateSpec
	if err := json.Unmarshal([]byte(r.Header.Get(clusterSpecHeader)), &spec); err != nil {
		writeError(w, http.StatusBadRequest, "missing or invalid "+clusterSpecHeader)
		return
	}
	if err := spec.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if spec.Portfolio > 1 {
		writeError(w, http.StatusBadRequest, "portfolio groupings do not transfer (members do)")
		return
	}
	circuit, err := mps.Benchmark(spec.Circuit)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxTransferBytes))
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("reading artifact: %v", err))
		return
	}
	cs, err := core.Load(bytes.NewReader(body), circuit)
	if err != nil {
		writeError(w, http.StatusBadRequest, fmt.Sprintf("invalid artifact: %v", err))
		return
	}
	coverage, _ := strconv.ParseFloat(r.Header.Get(clusterCoverageHeader), 64)
	if s.cfg.Store != nil {
		if _, err := s.cfg.Store.Put(store.Meta{
			Key:      spec.key(),
			Circuit:  spec.Circuit,
			Seed:     spec.Seed,
			Options:  string(mustSpecJSON(spec)),
			Coverage: coverage,
		}, cs); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
	} else {
		// Store-less node: hold the transferred structure in the LRU.
		st := &mps.Structure{Structure: cs}
		st.SetBackupKind(spec.backupKind())
		st.Compiled()
		s.installEntry(spec, st, mps.Stats{FinalCoverage: coverage})
	}
	writeJSON(w, http.StatusOK, map[string]any{"key": spec.key(), "stored": true})
}

// installEntry places a finished structure into the cache as a done entry
// (no-op if the key is already present) — the Warm pattern, shared by the
// store-less accept path.
func (s *Server) installEntry(spec GenerateSpec, st *mps.Structure, stats mps.Stats) {
	e := &entry{key: spec.key(), spec: spec, ready: make(chan struct{})}
	e.s, e.stats, e.done = st, stats, true
	e.placements = st.NumPlacements()
	e.coverage = stats.FinalCoverage
	e.start.Do(func() {})
	close(e.ready)
	s.mu.Lock()
	if _, exists := s.cache[e.key]; !exists {
		e.elem = s.order.PushFront(e)
		s.cache[e.key] = e
		s.evictLocked()
	}
	s.mu.Unlock()
}

// RebalanceReport summarizes one rebalance pass.
type RebalanceReport struct {
	Scanned     int `json:"scanned"`
	Kept        int `json:"kept"`        // keys this node owns
	Transferred int `json:"transferred"` // keys pushed to their owner
	Dropped     int `json:"dropped"`     // local copies deleted after transfer
	Failed      int `json:"failed"`
}

// Rebalance walks the local store and pushes every structure whose key
// this node no longer owns to its owning peer, reusing the persisted v3
// file verbatim as the transfer format. With drop, successfully
// transferred local copies are deleted (run without drop first: keeping
// the copy is free read-replica capacity until space matters). Portfolio
// grouping rows never transfer — the row is a local listing convenience;
// the artifact is its members, which transfer under their own keys.
func (s *Server) Rebalance(ctx context.Context, drop bool) (RebalanceReport, error) {
	if s.cluster == nil {
		return RebalanceReport{}, fmt.Errorf("serve: not in cluster mode")
	}
	if s.cfg.Store == nil {
		return RebalanceReport{}, fmt.Errorf("serve: no store to rebalance")
	}
	var rep RebalanceReport
	mark, err := cluster.EncodeForward(cluster.Forward{From: s.cluster.Self(), Hop: 1})
	if err != nil {
		return rep, err
	}
	for _, m := range s.cfg.Store.List() {
		if ctx.Err() != nil {
			return rep, ctx.Err()
		}
		rep.Scanned++
		owner := s.cluster.Owner(m.Key)
		if owner == s.cluster.Self() {
			rep.Kept++
			continue
		}
		data, meta, err := s.cfg.Store.ReadFile(m.Key)
		if err != nil {
			s.logf("rebalance: reading %s: %v", m.Key, err)
			rep.Failed++
			continue
		}
		hdr := http.Header{}
		hdr.Set(cluster.ForwardHeader, mark)
		hdr.Set("Content-Type", "application/octet-stream")
		hdr.Set(clusterSpecHeader, meta.Options)
		hdr.Set(clusterCoverageHeader, strconv.FormatFloat(meta.Coverage, 'g', -1, 64))
		hdr.Set(clusterPlacementsHeader, strconv.Itoa(meta.Placements))
		resp, err := s.cluster.Do(ctx, owner, http.MethodPost, "/v1/cluster/accept", data, hdr, s.cluster.ForwardTimeout())
		if err != nil {
			s.logf("rebalance: pushing %s to %s: %v", m.Key, owner, err)
			rep.Failed++
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			s.logf("rebalance: %s refused %s: %d", owner, m.Key, resp.StatusCode)
			rep.Failed++
			continue
		}
		rep.Transferred++
		if drop {
			if err := s.cfg.Store.Delete(m.Key); err != nil {
				s.logf("rebalance: dropping local %s: %v", m.Key, err)
			} else {
				rep.Dropped++
			}
		}
	}
	return rep, nil
}

// handleClusterRebalance is POST /v1/cluster/rebalance[?drop=1].
func (s *Server) handleClusterRebalance(w http.ResponseWriter, r *http.Request) {
	rep, err := s.Rebalance(r.Context(), r.URL.Query().Get("drop") == "1")
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, rep)
}
