package serve

import (
	"context"
	"encoding/json"
	"net/http"
	"testing"
	"time"

	"mps/internal/jobs"
)

// portfolioSpec is a seconds-scale K=3 portfolio spec for the smallest
// circuit.
func portfolioSpec(seed int64) GenerateSpec {
	spec := testSpec(seed)
	spec.Portfolio = 3
	return spec
}

// TestPortfolioGenerateAndInstantiate is the portfolio acceptance path:
// one spec with portfolio=3 fans out into three member generation jobs,
// fans in to a routed entry, serves batched instantiate traffic, and
// deduplicates its members against single-structure specs.
func TestPortfolioGenerateAndInstantiate(t *testing.T) {
	s, ts := newTestServer(t, Config{Logf: t.Logf})
	spec := portfolioSpec(1)

	var info StructureInfo
	if code, body := postJSON(t, ts.URL+"/v1/structures", spec, &info); code != http.StatusOK {
		t.Fatalf("generate portfolio: %d %s", code, body)
	}
	if info.Spec.Portfolio != 3 {
		t.Fatalf("portfolio spec lost K: %+v", info.Spec)
	}
	if runs := s.genRuns.Load(); runs != 3 {
		t.Fatalf("portfolio generation ran %d annealing runs, want 3 (one per member)", runs)
	}

	// The fan-out registered three member entries plus the portfolio: the
	// member jobs are ordinary scheduler jobs, listed and done.
	stats := s.Jobs().Stats()
	if stats.Done < 3 {
		t.Fatalf("scheduler stats %+v, want >= 3 done member jobs", stats)
	}

	// Instantiate through the portfolio entry, addressed by key and spec.
	var out struct {
		Served  int `json:"served"`
		Results []struct {
			Member      int  `json:"member"`
			PlacementID int  `json:"placement_id"`
			FromBackup  bool `json:"from_backup"`
		} `json:"results"`
	}
	code, body := postJSON(t, ts.URL+"/v1/instantiate", map[string]any{
		"key":     info.Key,
		"queries": []map[string][]int{testQuery(t, 0), testQuery(t, 1)},
	}, &out)
	if code != http.StatusOK || out.Served != 2 {
		t.Fatalf("instantiate by key: %d %s", code, body)
	}
	for i, r := range out.Results {
		if (r.Member < 0) != r.FromBackup {
			t.Errorf("result %d: member %d inconsistent with from_backup %v", i, r.Member, r.FromBackup)
		}
	}

	// Re-generating the same portfolio is a cache hit, and a plain
	// single-structure request for member 0's derived seed deduplicates
	// onto the member entry — no fourth annealing run anywhere.
	var again StructureInfo
	if code, body := postJSON(t, ts.URL+"/v1/structures", spec, &again); code != http.StatusOK || !again.Cached {
		t.Fatalf("repeat portfolio generate: %d %s (cached=%v)", code, body, again.Cached)
	}
	member0 := spec.memberSpec(0)
	var single StructureInfo
	if code, body := postJSON(t, ts.URL+"/v1/structures", member0, &single); code != http.StatusOK || !single.Cached {
		t.Fatalf("member-0 single spec: %d %s (cached=%v)", code, body, single.Cached)
	}
	if runs := s.genRuns.Load(); runs != 3 {
		t.Fatalf("dedup failed: %d annealing runs after cache-hit requests, want 3", runs)
	}
}

// TestPortfolioJobSubmit covers the async API: submitting a portfolio spec
// returns the member jobs while they generate (202) and the born-done
// portfolio job once fan-in lands (200).
func TestPortfolioJobSubmit(t *testing.T) {
	s, ts := newTestServer(t, Config{Logf: t.Logf})
	spec := portfolioSpec(2)

	var accepted struct {
		Key         string    `json:"key"`
		Portfolio   int       `json:"portfolio"`
		MembersDone int       `json:"members_done"`
		Members     []jobView `json:"members"`
	}
	code, body := postJSON(t, ts.URL+"/v1/jobs", jobSubmitRequest{Spec: spec}, &accepted)
	switch code {
	case http.StatusAccepted:
		if accepted.Portfolio != 3 || len(accepted.Members) != 3 {
			t.Fatalf("accepted portfolio submit: %s", body)
		}
		for _, m := range accepted.Members {
			if m.ID == "" || m.Key == accepted.Key {
				t.Fatalf("member job malformed: %+v", m)
			}
		}
	case http.StatusOK:
		// Members finished between submit and response on a fast machine;
		// the born-done portfolio job answered instead. Fine.
	default:
		t.Fatalf("portfolio submit: %d %s", code, body)
	}

	// Wait for the portfolio entry, then resubmit: the born-done portfolio
	// job must answer with 200 and its key.
	if _, err := s.Generate(spec); err != nil {
		t.Fatal(err)
	}
	var done jobView
	if code, body := postJSON(t, ts.URL+"/v1/jobs", jobSubmitRequest{Spec: spec}, &done); code != http.StatusOK {
		t.Fatalf("resubmit finished portfolio: %d %s", code, body)
	}
	if done.State != string(jobs.StateDone) || !done.Cached {
		t.Fatalf("finished portfolio job: %+v, want done and cached", done)
	}
}

// TestPortfolioWarmRestart: generate a portfolio on one server, restart
// over the same store directory, and the portfolio (grouping row plus
// member files) must serve instantiate traffic with zero annealing runs.
func TestPortfolioWarmRestart(t *testing.T) {
	dir := t.TempDir()
	spec := portfolioSpec(3)

	s1 := New(Config{Store: openStore(t, dir), Logf: t.Logf})
	t.Cleanup(s1.Close)
	info, err := s1.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	s1.Flush()
	if runs := s1.genRuns.Load(); runs != 3 {
		t.Fatalf("first server ran %d generations, want 3", runs)
	}

	st := openStore(t, dir)
	if rows := st.Portfolios(); len(rows) != 1 || rows[0].K() != 3 {
		t.Fatalf("persisted portfolio rows: %+v, want one K=3 row", rows)
	}

	s2, ts := newTestServer(t, Config{Store: st, Logf: t.Logf})
	n, err := s2.Warm(-1)
	if err != nil {
		t.Fatal(err)
	}
	// Three member structures plus the portfolio grouping.
	if n != 4 {
		t.Fatalf("warm-loaded %d entries, want 4 (3 members + portfolio)", n)
	}
	again, err := s2.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached || again.Key != info.Key || again.Placements != info.Placements {
		t.Fatalf("restarted server serves a different portfolio: %+v vs %+v", again, info)
	}
	var out struct {
		Served int `json:"served"`
	}
	code, body := postJSON(t, ts.URL+"/v1/instantiate", map[string]any{
		"spec":    spec,
		"queries": []map[string][]int{testQuery(t, 0)},
	}, &out)
	if code != http.StatusOK || out.Served != 1 {
		t.Fatalf("instantiate after restart: %d %s", code, body)
	}
	if runs := s2.genRuns.Load(); runs != 0 {
		t.Fatalf("restarted server ran %d generations, want 0", runs)
	}
}

// TestPortfolioReadThroughRegeneratesOnlyMissing: when one member's store
// entry vanishes, a cold portfolio request reloads the surviving members
// from disk and re-anneals only the missing one.
func TestPortfolioReadThroughRegeneratesOnlyMissing(t *testing.T) {
	dir := t.TempDir()
	spec := portfolioSpec(4)

	s1 := New(Config{Store: openStore(t, dir), Logf: t.Logf})
	t.Cleanup(s1.Close)
	if _, err := s1.Generate(spec); err != nil {
		t.Fatal(err)
	}
	s1.Flush()

	st := openStore(t, dir)
	norm := spec
	if err := norm.normalize(); err != nil {
		t.Fatal(err)
	}
	if err := st.Delete(norm.memberSpec(1).key()); err != nil {
		t.Fatal(err)
	}
	// Deleting a member drops the grouping row too (unservable).
	if rows := st.Portfolios(); len(rows) != 0 {
		t.Fatalf("portfolio row survived member deletion: %+v", rows)
	}

	s2, _ := newTestServer(t, Config{Store: st, Logf: t.Logf})
	if _, err := s2.Generate(spec); err != nil {
		t.Fatal(err)
	}
	if runs := s2.genRuns.Load(); runs != 1 {
		t.Fatalf("cold portfolio with one missing member ran %d generations, want 1", runs)
	}
	s2.Flush()
	// The re-anneal re-persisted the member and re-recorded the grouping.
	if rows := st.Portfolios(); len(rows) != 1 {
		t.Fatalf("portfolio row not re-recorded after regeneration: %+v", rows)
	}
}

// interruptedState writes a jobs.json recording the spec's generation as
// running — the state a daemon leaves when it shuts down (or crashes)
// while the job's annealing raced its own completion. Returns the jobs
// directory.
func interruptedState(t *testing.T, spec GenerateSpec) string {
	t.Helper()
	jobsDir := t.TempDir()
	sched, err := jobs.New(jobs.Config{Workers: 1, Dir: jobsDir})
	if err != nil {
		t.Fatal(err)
	}
	norm := spec
	if err := norm.normalize(); err != nil {
		t.Fatal(err)
	}
	specJSON, err := json.Marshal(norm)
	if err != nil {
		t.Fatal(err)
	}
	running := make(chan struct{})
	if _, _, err := sched.Submit(jobs.Request{
		Key:  norm.key(),
		Spec: specJSON,
		Run: func(ctx context.Context, _ func(jobs.Progress)) error {
			close(running)
			<-ctx.Done()
			return ctx.Err()
		},
	}); err != nil {
		t.Fatal(err)
	}
	select {
	case <-running:
	case <-time.After(10 * time.Second):
		t.Fatal("interrupted-state job never started")
	}
	sched.Close() // persists the job as still running, crash-style
	return jobsDir
}

// populatedStore generates and persists the spec's structure, returning
// the store directory.
func populatedStore(t *testing.T, dir string, spec GenerateSpec) {
	t.Helper()
	s := New(Config{Store: openStore(t, dir), Logf: t.Logf})
	defer s.Close()
	if _, err := s.Generate(spec); err != nil {
		t.Fatal(err)
	}
	s.Flush()
}

// assertNoDuplicateJob asserts the server neither annealed nor holds a
// queued/running job for the key — the invariant both restart orderings
// must preserve.
func assertNoDuplicateJob(t *testing.T, s *Server, key string) {
	t.Helper()
	if runs := s.genRuns.Load(); runs != 0 {
		t.Errorf("server ran %d annealing runs, want 0", runs)
	}
	stats := s.Jobs().Stats()
	if stats.Queued != 0 || stats.Running != 0 {
		t.Errorf("scheduler has active jobs after restart handling: %+v", stats)
	}
	active := 0
	for _, snap := range s.Jobs().List() {
		if snap.Key == key && !snap.State.Terminal() {
			active++
		}
	}
	if active != 0 {
		t.Errorf("%d non-terminal jobs for %s, want 0", active, key)
	}
}

// TestWarmThenResumeNoDuplicateJob: a warm-loaded entry whose spec also
// sits in jobs.json as interrupted must not be regenerated when
// ResumeInterrupted runs after Warm — the resume lands on the warmed
// cache entry.
func TestWarmThenResumeNoDuplicateJob(t *testing.T) {
	spec := testSpec(21)
	storeDir := t.TempDir()
	populatedStore(t, storeDir, spec)
	jobsDir := interruptedState(t, spec)

	sched, err := jobs.New(jobs.Config{Workers: 1, Dir: jobsDir})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := newTestServer(t, Config{Store: openStore(t, storeDir), Jobs: sched, Logf: t.Logf})
	if len(sched.Interrupted()) != 1 {
		t.Fatalf("interrupted jobs: %d, want 1", len(sched.Interrupted()))
	}

	if n, err := s.Warm(-1); err != nil || n != 1 {
		t.Fatalf("Warm = %d, %v; want 1", n, err)
	}
	if n := s.ResumeInterrupted(); n != 1 {
		t.Fatalf("ResumeInterrupted = %d, want 1 (it lands on the warm entry)", n)
	}

	norm := spec
	if err := norm.normalize(); err != nil {
		t.Fatal(err)
	}
	assertNoDuplicateJob(t, s, norm.key())
	info, err := s.Generate(spec)
	if err != nil || !info.Cached {
		t.Fatalf("generate after warm+resume: %+v, %v; want cached", info, err)
	}
}

// TestResumeThenWarmNoDuplicateJob: the opposite ordering — the resumed
// job completes instantly through the store read-through, and the later
// Warm pass must not double-insert or regenerate.
func TestResumeThenWarmNoDuplicateJob(t *testing.T) {
	spec := testSpec(22)
	storeDir := t.TempDir()
	populatedStore(t, storeDir, spec)
	jobsDir := interruptedState(t, spec)

	sched, err := jobs.New(jobs.Config{Workers: 1, Dir: jobsDir})
	if err != nil {
		t.Fatal(err)
	}
	s, _ := newTestServer(t, Config{Store: openStore(t, storeDir), Jobs: sched, Logf: t.Logf})

	if n := s.ResumeInterrupted(); n != 1 {
		t.Fatalf("ResumeInterrupted = %d, want 1", n)
	}
	norm := spec
	if err := norm.normalize(); err != nil {
		t.Fatal(err)
	}
	// The resumed entry materializes via the store read-through
	// (milliseconds); wait for it to publish before warming.
	if _, err := s.Generate(spec); err != nil {
		t.Fatal(err)
	}
	if n, err := s.Warm(-1); err != nil || n != 0 {
		t.Fatalf("Warm after resume = %d, %v; want 0 (already cached)", n, err)
	}

	assertNoDuplicateJob(t, s, norm.key())
	info, err := s.Generate(spec)
	if err != nil || !info.Cached {
		t.Fatalf("generate after resume+warm: %+v, %v; want cached", info, err)
	}
}
