package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"testing"
	"time"

	"mps/internal/jobs"
)

// slowSpec is a generation big enough (seconds-scale) to be observed
// running and cancelled mid-flight.
func slowSpec(seed int64) GenerateSpec {
	return GenerateSpec{Circuit: "circ01", Seed: seed, Iterations: 5000, BDIOSteps: 5000}
}

// jobView decodes the /v1/jobs JSON wire shape.
type jobView struct {
	ID       string          `json:"id"`
	Key      string          `json:"key"`
	State    string          `json:"state"`
	Error    string          `json:"error"`
	Cached   bool            `json:"cached"`
	Spec     json.RawMessage `json:"spec"`
	Progress struct {
		Chain      int     `json:"chain"`
		Iteration  int     `json:"iteration"`
		Placements int     `json:"placements"`
		Coverage   float64 `json:"coverage"`
	} `json:"progress"`
}

func getJob(t *testing.T, base, id string) jobView {
	t.Helper()
	var v jobView
	if code := getJSON(t, base+"/v1/jobs/"+id, &v); code != http.StatusOK {
		t.Fatalf("GET job %s: %d", id, code)
	}
	return v
}

// waitJobState polls until the job reaches want (or any terminal state).
func waitJobState(t *testing.T, base, id, want string) jobView {
	t.Helper()
	deadline := time.After(60 * time.Second)
	for {
		v := getJob(t, base, id)
		if v.State == want {
			return v
		}
		if v.State == string(jobs.StateDone) || v.State == string(jobs.StateFailed) ||
			v.State == string(jobs.StateCancelled) {
			t.Fatalf("job %s reached %s (%s), want %s", id, v.State, v.Error, want)
		}
		select {
		case <-deadline:
			t.Fatalf("job %s stuck in %s, want %s", id, v.State, want)
		case <-time.After(5 * time.Millisecond):
		}
	}
}

func doJSON(t *testing.T, method, url string, body any, out any) (int, string) {
	t.Helper()
	var reqBody io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		reqBody = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, reqBody)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw, out); err != nil {
			t.Fatalf("decode %s %s: %v\nbody: %s", method, url, err, raw)
		}
	}
	return resp.StatusCode, string(raw)
}

// TestJobsAsyncLifecycle is the acceptance path: POST /v1/jobs returns a
// job id immediately, GET /v1/jobs/{id} shows advancing progress while
// the annealers run, and the finished job's structure serves from cache.
func TestJobsAsyncLifecycle(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	spec := GenerateSpec{Circuit: "circ01", Seed: 41, Iterations: 2500, BDIOSteps: 2500}

	start := time.Now()
	var submitted jobView
	code, body := postJSON(t, ts.URL+"/v1/jobs", jobSubmitRequest{Spec: spec}, &submitted)
	if code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Errorf("submit took %s, want immediate return", took)
	}
	if submitted.ID == "" || submitted.Key == "" {
		t.Fatalf("submit response missing id/key: %s", body)
	}
	if submitted.State != string(jobs.StateQueued) && submitted.State != string(jobs.StateRunning) {
		t.Fatalf("fresh job state %s, want queued or running", submitted.State)
	}

	// A second submission of the same spec lands on the same job.
	var dup jobView
	if code, body := postJSON(t, ts.URL+"/v1/jobs", jobSubmitRequest{Spec: spec}, &dup); code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("dup submit: %d %s", code, body)
	}
	if dup.ID != submitted.ID {
		t.Errorf("duplicate spec got job %s, want dedup onto %s", dup.ID, submitted.ID)
	}

	// The iteration counter must advance monotonically while running.
	// (Placement count and coverage can dip when overlap resolution trims
	// or removes stored boxes, so they are observed, not ordered.)
	waitJobState(t, ts.URL, submitted.ID, string(jobs.StateRunning))
	lastIter, advanced := -1, 0
	deadline := time.After(120 * time.Second)
	for {
		v := getJob(t, ts.URL, submitted.ID)
		if v.State == string(jobs.StateDone) {
			break
		}
		if v.State != string(jobs.StateRunning) {
			t.Fatalf("job fell into %s (%s)", v.State, v.Error)
		}
		if v.Progress.Iteration < lastIter {
			t.Fatalf("progress went backwards: %+v after iter %d", v.Progress, lastIter)
		}
		if v.Progress.Iteration > lastIter {
			advanced++
		}
		lastIter = v.Progress.Iteration
		select {
		case <-deadline:
			t.Fatal("job never finished")
		case <-time.After(20 * time.Millisecond):
		}
	}
	if advanced < 2 {
		t.Errorf("saw %d advancing progress snapshots, want several", advanced)
	}

	final := getJob(t, ts.URL, submitted.ID)
	if !final.Cached || final.Progress.Placements == 0 {
		t.Errorf("finished job not cached or empty: %+v", final)
	}
	// The synchronous path now hits the cache.
	var info StructureInfo
	if code, body := postJSON(t, ts.URL+"/v1/structures", spec, &info); code != http.StatusOK || !info.Cached {
		t.Fatalf("sync fetch after job: %d %s cached=%v", code, body, info.Cached)
	}
	// And the job listing shows it.
	var listing struct {
		Jobs []jobView `json:"jobs"`
	}
	if code := getJSON(t, ts.URL+"/v1/jobs", &listing); code != http.StatusOK {
		t.Fatalf("list jobs: %d", code)
	}
	found := false
	for _, j := range listing.Jobs {
		if j.ID == submitted.ID {
			found = j.State == string(jobs.StateDone)
		}
	}
	if !found {
		t.Errorf("finished job missing from listing: %+v", listing.Jobs)
	}
}

// TestJobsCancelRunning: DELETE on a running job stops the annealers
// promptly and leaves no partial structure in cache or store.
func TestJobsCancelRunning(t *testing.T) {
	dir := t.TempDir()
	s, ts := newTestServer(t, Config{Store: openStore(t, dir), Logf: t.Logf})
	spec := slowSpec(42)

	var submitted jobView
	if code, body := postJSON(t, ts.URL+"/v1/jobs", jobSubmitRequest{Spec: spec}, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	v := waitJobState(t, ts.URL, submitted.ID, string(jobs.StateRunning))

	start := time.Now()
	var cancelled jobView
	code, body := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+submitted.ID, nil, &cancelled)
	if code != http.StatusOK {
		t.Fatalf("cancel: %d %s", code, body)
	}
	if cancelled.State != string(jobs.StateCancelled) {
		t.Fatalf("state after cancel = %s (%s), want cancelled", cancelled.State, cancelled.Error)
	}
	if took := time.Since(start); took > 10*time.Second {
		t.Errorf("cancellation took %s, want prompt stop", took)
	}
	_ = v

	// No partial structure anywhere: not in the LRU...
	key := cancelled.Key
	if _, ok := s.lookup(key); ok {
		t.Error("cancelled generation left a structure in the cache")
	}
	// ...not in the disk store...
	s.Flush()
	if _, ok := s.cfg.Store.Stat(key); ok {
		t.Error("cancelled generation left a structure in the store")
	}
	// ...and the listing agrees.
	var ls struct {
		Structures []StructureInfo `json:"structures"`
	}
	if code := getJSON(t, ts.URL+"/v1/structures", &ls); code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if len(ls.Structures) != 0 {
		t.Errorf("cache listing after cancel: %+v", ls.Structures)
	}
	if runs := s.genRuns.Load(); runs != 1 {
		t.Errorf("genRuns = %d, want 1 (the cancelled run)", runs)
	}
	// The key is free again: a fresh (quick) spec for it regenerates.
	if _, err := s.Generate(testSpec(42)); err != nil {
		t.Fatalf("generation after cancel: %v", err)
	}
}

// TestJobsCancelQueuedNeverRuns: with one worker busy, a queued job that
// is cancelled must never start annealing.
func TestJobsCancelQueuedNeverRuns(t *testing.T) {
	s, ts := newTestServer(t, Config{MaxConcurrentGenerations: 1})

	var running jobView
	if code, body := postJSON(t, ts.URL+"/v1/jobs", jobSubmitRequest{Spec: slowSpec(50)}, &running); code != http.StatusAccepted {
		t.Fatalf("submit hog: %d %s", code, body)
	}
	waitJobState(t, ts.URL, running.ID, string(jobs.StateRunning))

	var queued jobView
	if code, body := postJSON(t, ts.URL+"/v1/jobs", jobSubmitRequest{Spec: slowSpec(51)}, &queued); code != http.StatusAccepted {
		t.Fatalf("submit victim: %d %s", code, body)
	}
	if queued.State != string(jobs.StateQueued) {
		t.Fatalf("victim state %s, want queued (single worker is busy)", queued.State)
	}

	var cancelled jobView
	if code, body := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/"+queued.ID, nil, &cancelled); code != http.StatusOK {
		t.Fatalf("cancel queued: %d %s", code, body)
	}
	if cancelled.State != string(jobs.StateCancelled) {
		t.Fatalf("queued job state after cancel = %s, want cancelled", cancelled.State)
	}
	if runs := s.genRuns.Load(); runs != 1 {
		t.Errorf("genRuns = %d, want 1 — the cancelled queued job must never run", runs)
	}
	// Cancel the hog too and confirm the victim still never ran.
	if _, err := s.Jobs().Cancel(running.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := s.Jobs().Wait(ctx, running.ID); err != nil {
		t.Fatal(err)
	}
	if runs := s.genRuns.Load(); runs != 1 {
		t.Errorf("genRuns = %d after drain, want 1", runs)
	}
}

// TestJobsSoleWaiterDisconnectDropsQueued preserves the pre-scheduler
// semantics of the synchronous path: a client that alone asked for a
// queued generation may abandon it; the entry is dropped so a later
// request retries, and the worker never runs the job.
func TestJobsSoleWaiterDisconnectDropsQueued(t *testing.T) {
	s := New(Config{MaxConcurrentGenerations: 1})
	t.Cleanup(s.Close)

	// Occupy the single worker with a job that is not a generation, so
	// genRuns isolates the victim.
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	if _, _, err := s.Jobs().Submit(jobs.Request{Key: "hog", Run: func(ctx context.Context, _ func(jobs.Progress)) error {
		close(entered)
		select {
		case <-release:
		case <-ctx.Done():
		}
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	<-entered

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	spec := testSpec(60)
	errc := make(chan error, 1)
	go func() {
		_, err := s.generate(ctx, spec)
		errc <- err
	}()
	// Wait until the victim's job is queued (its entry has a job id).
	norm := testSpec(60)
	if err := norm.normalize(); err != nil {
		t.Fatal(err)
	}
	deadline := time.After(30 * time.Second)
	for {
		found := false
		for _, snap := range s.Jobs().List() {
			if snap.Key == norm.key() && snap.State == jobs.StateQueued {
				found = true
			}
		}
		if found {
			break
		}
		select {
		case <-deadline:
			t.Fatal("victim job never queued")
		case <-time.After(2 * time.Millisecond):
		}
	}
	cancel()
	select {
	case err := <-errc:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("generate returned %v, want context.Canceled in the chain", err)
		}
	case <-time.After(30 * time.Second):
		t.Fatal("generate did not observe the disconnect")
	}
	// The entry was dropped: the key is absent until someone retries.
	if _, ok := s.lookup(norm.key()); ok {
		t.Error("abandoned entry still cached")
	}
	if runs := s.genRuns.Load(); runs != 0 {
		t.Errorf("genRuns = %d, want 0 (abandoned while queued)", runs)
	}
}

// TestJobsRestartHistory: with -jobs-dir and -store-dir, a restarted
// daemon lists previously completed jobs and serves their structures
// without regeneration.
func TestJobsRestartHistory(t *testing.T) {
	storeDir := t.TempDir()
	jobsDir := t.TempDir()
	spec := testSpec(70)

	sched1, err := jobs.New(jobs.Config{Workers: 2, Dir: jobsDir})
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Config{Store: openStore(t, storeDir), Jobs: sched1, Logf: t.Logf})
	var submitted jobView
	if code, body := postJSON(t, ts1.URL+"/v1/jobs", jobSubmitRequest{Spec: spec}, &submitted); code != http.StatusAccepted && code != http.StatusOK {
		t.Fatalf("submit: %d %s", code, body)
	}
	ctx, cancelWait := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancelWait()
	final, err := s1.Jobs().Wait(ctx, submitted.ID)
	if err != nil || final.State != jobs.StateDone {
		t.Fatalf("job: %+v, %v", final, err)
	}
	s1.Flush()
	s1.Close()

	sched2, err := jobs.New(jobs.Config{Workers: 2, Dir: jobsDir})
	if err != nil {
		t.Fatal(err)
	}
	s2, ts2 := newTestServer(t, Config{Store: openStore(t, storeDir), Jobs: sched2, Logf: t.Logf})
	restored := getJob(t, ts2.URL, submitted.ID)
	if restored.State != string(jobs.StateDone) {
		t.Fatalf("restored job state %s, want done", restored.State)
	}
	// Resubmitting the same spec lands on the done record (store hit).
	var again jobView
	if code, body := postJSON(t, ts2.URL+"/v1/jobs", jobSubmitRequest{Spec: spec}, &again); code != http.StatusOK {
		t.Fatalf("resubmit after restart: %d %s", code, body)
	}
	if again.State != string(jobs.StateDone) {
		t.Fatalf("resubmitted job state %s, want done (from store)", again.State)
	}
	// And the structure serves without a single annealing run.
	var out struct {
		Served int `json:"served"`
	}
	code, body := postJSON(t, ts2.URL+"/v1/instantiate", map[string]any{
		"spec":    spec,
		"queries": []map[string][]int{testQuery(t, 0)},
	}, &out)
	if code != http.StatusOK || out.Served != 1 {
		t.Fatalf("instantiate after restart: %d %s", code, body)
	}
	if runs := s2.genRuns.Load(); runs != 0 {
		t.Errorf("restarted server ran %d generations, want 0", runs)
	}
}

// TestJobsResumeInterrupted: a job that was mid-flight when the daemon
// died is reported as interrupted and resubmitted by ResumeInterrupted.
func TestJobsResumeInterrupted(t *testing.T) {
	storeDir := t.TempDir()
	jobsDir := t.TempDir()
	spec := slowSpec(80)

	sched1, err := jobs.New(jobs.Config{Workers: 1, Dir: jobsDir})
	if err != nil {
		t.Fatal(err)
	}
	s1, ts1 := newTestServer(t, Config{Store: openStore(t, storeDir), Jobs: sched1, Logf: t.Logf})
	var submitted jobView
	if code, body := postJSON(t, ts1.URL+"/v1/jobs", jobSubmitRequest{Spec: spec}, &submitted); code != http.StatusAccepted {
		t.Fatalf("submit: %d %s", code, body)
	}
	waitJobState(t, ts1.URL, submitted.ID, string(jobs.StateRunning))
	s1.Close() // cancels the run; the state file records it as still running

	sched2, err := jobs.New(jobs.Config{Workers: 1, Dir: jobsDir})
	if err != nil {
		t.Fatal(err)
	}
	s2, _ := newTestServer(t, Config{Store: openStore(t, storeDir), Jobs: sched2, Logf: t.Logf})
	old, ok := s2.Jobs().Get(submitted.ID)
	if !ok || old.State != jobs.StateFailed {
		t.Fatalf("interrupted job: %+v (ok=%v), want failed", old, ok)
	}
	if n := s2.ResumeInterrupted(); n != 1 {
		t.Fatalf("resumed %d jobs, want 1", n)
	}
	// The resubmitted job regenerates (nothing reached the store). Find
	// it by key and let it finish or just verify it is active.
	norm := spec
	if err := norm.normalize(); err != nil {
		t.Fatal(err)
	}
	active := false
	for _, snap := range s2.Jobs().List() {
		if snap.Key == norm.key() && !snap.State.Terminal() {
			active = true
		}
	}
	if !active {
		t.Error("interrupted job was not resubmitted")
	}
}

// TestJobsBadRequests sweeps validation on the jobs API.
func TestJobsBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code, _ := postJSON(t, ts.URL+"/v1/jobs", jobSubmitRequest{Spec: GenerateSpec{Circuit: "bogus"}}, nil); code != http.StatusBadRequest {
		t.Errorf("unknown circuit: %d, want 400", code)
	}
	if code, _ := postJSON(t, ts.URL+"/v1/jobs",
		jobSubmitRequest{Spec: GenerateSpec{Circuit: "circ01", Iterations: 1 << 30}}, nil); code != http.StatusBadRequest {
		t.Errorf("over-budget: %d, want 400", code)
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown job get: %d, want 404", code)
	}
	if code, _ := doJSON(t, http.MethodDelete, ts.URL+"/v1/jobs/nope", nil, nil); code != http.StatusNotFound {
		t.Errorf("unknown job delete: %d, want 404", code)
	}
	req, err := http.NewRequest(http.MethodPut, ts.URL+"/v1/jobs", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("PUT /v1/jobs: %d, want 405", resp.StatusCode)
	}
}
