// Package serve implements the HTTP/JSON placement query engine behind
// cmd/mpsd. It operationalizes the paper's Figure 1 split for a service
// setting: structures are generated once per (circuit, seed, options) key
// and held in a bounded LRU cache (Fig. 1a), and batched Instantiate
// traffic — the hot path of a layout-inclusive sizing loop (Fig. 1b,
// §3.3) — is answered from the cached structure through the facade's
// concurrent InstantiateBatch worker pool.
//
// Generation requests for the same key are deduplicated: concurrent
// clients share one generation run (per-entry sync.Once) and all block on
// its completion, so a thundering herd costs one annealing run, not N.
//
// With a Store configured the cache becomes a write-through layer over a
// disk repository (internal/store): finished generations persist in the
// background, cache misses try a disk load (milliseconds) before an
// annealing run (minutes), and Warm preloads the newest persisted
// structures at startup — so a daemon restart never repeats generation
// work (the paper's "generate once" made durable).
package serve

import (
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mps"
	"mps/internal/circuits"
	"mps/internal/store"
)

// Config tunes a Server. The zero value is a sensible default.
type Config struct {
	// CacheSize bounds the number of generated structures kept in memory
	// (LRU eviction). Default 8.
	CacheSize int
	// Workers bounds the per-request InstantiateBatch worker pool.
	// 0 uses GOMAXPROCS.
	Workers int
	// MaxConcurrentBatches bounds how many instantiate batches execute at
	// once server-wide (each uses up to Workers goroutines); excess
	// requests queue. Keeps N concurrent clients from oversubscribing the
	// CPU with N×Workers runnable goroutines. Default 4.
	MaxConcurrentBatches int
	// MaxConcurrentGenerations bounds how many structure generations run
	// at once server-wide. Dedup only collapses identical specs; this
	// stops a sweep of distinct seeds from launching unbounded annealing
	// runs. Excess generation requests queue. Default 2.
	MaxConcurrentGenerations int
	// MaxBatch caps queries per instantiate request. It also sizes the
	// request body limit (~1 KiB per query), so it bounds per-request
	// decode memory: the default 8192 keeps any one request under ~8 MiB.
	MaxBatch int
	// MaxGenerateIterations caps the explorer budget a request may ask
	// for, protecting the daemon from hours-scale generation requests.
	// The same cap bounds bdio_steps, and chains is bounded by
	// maxChains, so no request field multiplies the work unboundedly.
	// Default 5000. Set negative to disable the cap.
	MaxGenerateIterations int
	// Store, when non-nil, is the disk-backed structure repository: cache
	// misses consult it before paying for an annealing run, finished
	// generations are persisted to it in the background (Flush waits for
	// them), and Warm preloads its newest entries into the LRU at
	// startup. Nil keeps the server memory-only.
	Store *store.Dir
	// Logf, when non-nil, receives operational log lines (store persist
	// or warm-load failures). Nil discards them; counters still track.
	Logf func(format string, args ...any)
}

func (cfg Config) withDefaults() Config {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 8
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8192
	}
	if cfg.MaxGenerateIterations == 0 {
		cfg.MaxGenerateIterations = 5000
	}
	if cfg.MaxConcurrentBatches <= 0 {
		cfg.MaxConcurrentBatches = 4
	}
	if cfg.MaxConcurrentGenerations <= 0 {
		cfg.MaxConcurrentGenerations = 2
	}
	return cfg
}

// Server is the query engine: an LRU cache of generated structures plus
// the HTTP handlers that fill and query it. Safe for concurrent use.
type Server struct {
	cfg Config

	// batchSlots and genSlots are semaphores bounding concurrent batch
	// executions and structure generations to their configured maxima.
	batchSlots chan struct{}
	genSlots   chan struct{}

	// genRuns counts full annealing runs started — not cache or store
	// hits — so tests and operators can verify warm-started structures
	// are served without regeneration.
	genRuns atomic.Int64
	// persistWG tracks in-flight background store writes; persistErrs
	// counts the ones that failed and loadErrs the store reads that did
	// (both also reported through Logf).
	persistWG   sync.WaitGroup
	persistErrs atomic.Int64
	loadErrs    atomic.Int64

	mu    sync.Mutex
	cache map[string]*entry
	order *list.List // front = most recently used; values are *entry
}

// entry is one cached (or in-flight) generation. The once gates the
// actual Generate call so concurrent requests for the same key share it.
type entry struct {
	key  string
	spec GenerateSpec
	elem *list.Element

	// waiters counts requests currently interested in this entry; the
	// queued-generation cancel path only fires when the canceling request
	// is the sole waiter, so one flaky client cannot fail a patient herd.
	waiters atomic.Int64

	once sync.Once
	// done and the fields below are written exactly once, under the server
	// mutex, when generation finishes. Readers must either hold the mutex
	// and check done, or have returned from once.Do (which orders the
	// writes before its return). placements and coverage snapshot the
	// structure at publish time so listing the cache never walks structure
	// internals while holding the global mutex.
	done       bool
	s          *mps.Structure
	stats      mps.Stats
	placements int
	coverage   float64
	err        error
}

// New returns a Server ready to serve.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:        cfg,
		batchSlots: make(chan struct{}, cfg.MaxConcurrentBatches),
		genSlots:   make(chan struct{}, cfg.MaxConcurrentGenerations),
		cache:      make(map[string]*entry),
		order:      list.New(),
	}
}

// GenerateSpec identifies a structure: the circuit plus every Generate
// option that affects the result. It doubles as the cache key source.
type GenerateSpec struct {
	Circuit       string `json:"circuit"`
	Seed          int64  `json:"seed"`
	Effort        string `json:"effort,omitempty"` // quick | balanced | thorough
	Iterations    int    `json:"iterations,omitempty"`
	BDIOSteps     int    `json:"bdio_steps,omitempty"`
	Chains        int    `json:"chains,omitempty"`
	MaxPlacements int    `json:"max_placements,omitempty"`
	Backup        string `json:"backup,omitempty"` // tree | seqpair
}

// normalize validates the spec and fills implied defaults so equivalent
// specs map to one cache key.
func (g *GenerateSpec) normalize() error {
	if g.Circuit == "" {
		return fmt.Errorf("missing circuit")
	}
	if _, err := circuits.ByName(g.Circuit); err != nil {
		return err
	}
	switch g.Effort {
	case "":
		g.Effort = "balanced"
	case "quick", "balanced", "thorough":
	default:
		return fmt.Errorf("unknown effort %q (want quick, balanced, or thorough)", g.Effort)
	}
	switch g.Backup {
	case "":
		g.Backup = "tree"
	case "tree", "seqpair":
	default:
		return fmt.Errorf("unknown backup %q (want tree or seqpair)", g.Backup)
	}
	if g.Iterations < 0 || g.BDIOSteps < 0 || g.Chains < 0 || g.MaxPlacements < 0 {
		return fmt.Errorf("negative budget")
	}
	// Canonicalize the 0-means-default budget fields so provably identical
	// specs share one cache key (and one generation run): resolve effort
	// presets into concrete budgets and fold chains 0 to the single chain
	// the explorer runs anyway.
	g.Iterations, g.BDIOSteps = g.options().Budgets()
	if g.Chains == 0 {
		g.Chains = 1
	}
	return nil
}

// key derives the cache key from the fields that affect the generated
// structure. Effort is deliberately absent: normalize resolved it into
// concrete Iterations/BDIOSteps, so two specs differing only in how they
// named the same budgets share one entry.
func (g GenerateSpec) key() string {
	return fmt.Sprintf("%s|seed=%d|it=%d|bdio=%d|chains=%d|maxp=%d|backup=%s",
		g.Circuit, g.Seed, g.Iterations, g.BDIOSteps, g.Chains, g.MaxPlacements, g.Backup)
}

// backupKind maps the spec's backup name to the facade's enum — used when
// rehydrating a structure from the store, where only the backup must be
// rebuilt (it is derived from the circuit, not persisted).
func (g GenerateSpec) backupKind() mps.BackupKind {
	if g.Backup == "seqpair" {
		return mps.BackupSequencePair
	}
	return mps.BackupSlicingTree
}

func (g GenerateSpec) options() mps.Options {
	effort := mps.EffortBalanced
	switch g.Effort {
	case "quick":
		effort = mps.EffortQuick
	case "thorough":
		effort = mps.EffortThorough
	}
	backup := mps.BackupSlicingTree
	if g.Backup == "seqpair" {
		backup = mps.BackupSequencePair
	}
	return mps.Options{
		Seed:          g.Seed,
		Iterations:    g.Iterations,
		BDIOSteps:     g.BDIOSteps,
		Effort:        effort,
		Chains:        g.Chains,
		MaxPlacements: g.MaxPlacements,
		Backup:        backup,
	}
}

// maxChains bounds the chains a request may ask for regardless of the
// iteration cap — each chain is a full explorer run.
const maxChains = 64

// checkBudget rejects generation requests whose annealing budget exceeds
// the daemon's cap. Every path that can trigger a generation — POST
// /v1/structures, POST /v1/instantiate with an inline spec, and the
// programmatic Generate — must pass through it.
func (s *Server) checkBudget(g GenerateSpec) error {
	if g.Chains > maxChains {
		return fmt.Errorf("chains %d exceeds daemon cap %d", g.Chains, maxChains)
	}
	limit := s.cfg.MaxGenerateIterations
	if limit < 0 {
		return nil
	}
	if g.Iterations > limit {
		return fmt.Errorf("iterations %d exceeds daemon cap %d", g.Iterations, limit)
	}
	if g.BDIOSteps > limit {
		return fmt.Errorf("bdio_steps %d exceeds daemon cap %d", g.BDIOSteps, limit)
	}
	return nil
}

// evictLocked shrinks the cache to its bound, least-recently-used first.
// In-flight entries are skipped so an eviction can never duplicate a
// running generation; the cache may transiently exceed its bound while
// herds generate, which is why publication re-runs this pass. Callers must
// hold s.mu.
func (s *Server) evictLocked() {
	for s.order.Len() > s.cfg.CacheSize {
		var victim *list.Element
		for el := s.order.Back(); el != nil; el = el.Prev() {
			if el.Value.(*entry).done {
				victim = el
				break
			}
		}
		if victim == nil {
			return
		}
		s.order.Remove(victim)
		delete(s.cache, victim.Value.(*entry).key)
	}
}

// structureFor returns the cached structure for the spec, generating it on
// first use. Generation runs outside the cache lock; concurrent callers
// for one key share a single run. The returned bool reports a true cache
// hit — the entry had already finished generating — not merely landing on
// an in-flight entry and waiting for it.
func (s *Server) structureFor(ctx context.Context, spec GenerateSpec) (*entry, bool, error) {
	key := spec.key()

	s.mu.Lock()
	e, hit := s.cache[key]
	wasDone := hit && e.done
	if !hit {
		e = &entry{key: key, spec: spec}
		e.elem = s.order.PushFront(e)
		s.cache[key] = e
		s.evictLocked()
	} else {
		s.order.MoveToFront(e.elem)
	}
	e.waiters.Add(1)
	defer e.waiters.Add(-1)
	s.mu.Unlock()

	e.once.Do(func() {
		var st *mps.Structure
		var stats mps.Stats
		var err error
		// Read-through: a structure persisted by an earlier process (or
		// evicted from this one) is rehydrated from disk in milliseconds
		// instead of regenerated in minutes. Load failures (corrupt file,
		// missing entry) fall through to a fresh generation.
		if st, stats, err = s.loadFromStore(spec); err == nil && st != nil {
			s.publish(e, st, stats, nil)
			return
		}
		st, stats, err = nil, mps.Stats{}, nil
		// Queued-but-not-started work is droppable: if the requesting
		// client disconnects while waiting for a generation slot and no
		// other request shares this entry, fail it (it is removed below,
		// so a later request retries). With other live waiters — they are
		// blocked in once.Do and cannot abandon — keep waiting and finish
		// the job for them. Once a slot is held the run always completes;
		// finished work lands in the cache even if every client has gone.
		select {
		case s.genSlots <- struct{}{}:
			defer func() { <-s.genSlots }()
		case <-ctx.Done():
			// The waiter check, the cancel publication, and the cache
			// removal share the cache mutex with waiter registration, so a
			// request that joined before this point is always counted, and
			// one arriving after never finds the canceled entry.
			s.mu.Lock()
			alone := e.waiters.Load() <= 1
			if alone {
				e.err, e.done = fmt.Errorf("generation canceled while queued: %w", ctx.Err()), true
				s.removeLocked(e)
			}
			s.mu.Unlock()
			if alone {
				return
			}
			s.genSlots <- struct{}{}
			defer func() { <-s.genSlots }()
		}
		func() {
			// A panicking generator must not poison the entry: record it
			// as a failure so the entry is dropped and later requests
			// retry instead of nil-dereferencing forever.
			defer func() {
				if r := recover(); r != nil {
					st, err = nil, fmt.Errorf("generation panic: %v", r)
				}
			}()
			var circuit *mps.Circuit
			circuit, err = mps.Benchmark(spec.Circuit)
			if err == nil {
				s.genRuns.Add(1)
				st, stats, err = mps.Generate(circuit, spec.options())
			}
		}()
		s.publish(e, st, stats, err)
		// Write-through: persist the finished structure off the request
		// path. The annealing run took minutes; the disk write takes
		// milliseconds and must never hold a client hostage.
		if err == nil && st != nil && s.cfg.Store != nil {
			s.persistWG.Add(1)
			go func() {
				defer s.persistWG.Done()
				s.persist(spec, st, stats.FinalCoverage)
			}()
		}
	})
	if e.err != nil {
		return nil, false, e.err
	}
	return e, wasDone, nil
}

// publish records a finished (or failed) generation on its entry under
// the cache lock, so handlers that find the entry in the cache (rather
// than through once.Do) read a consistent result. Failed generations are
// dropped in the same critical section so no request can observe a cached
// entry carrying another client's error — later requests miss and retry
// instead. Eviction re-runs because the entry was un-evictable while in
// flight, so the cache may be over its bound with no future miss to
// shrink it.
func (s *Server) publish(e *entry, st *mps.Structure, stats mps.Stats, err error) {
	var placements int
	var coverage float64
	if st != nil {
		placements = st.NumPlacements()
		// FinalCoverage is exact here: Compact (run inside mps.Generate)
		// merges fragments without changing covered volume, so no
		// recompute is needed.
		coverage = stats.FinalCoverage
	}
	s.mu.Lock()
	e.s, e.stats, e.err, e.done = st, stats, err, true
	e.placements, e.coverage = placements, coverage
	if err != nil {
		s.removeLocked(e)
	}
	s.evictLocked()
	s.mu.Unlock()
}

// loadFromStore rehydrates the structure for spec from the disk store.
// (nil, _, nil) means "not available" — no store configured or no entry
// for the key; an error means an entry existed but could not be loaded
// (corrupt file, circuit mismatch), which callers also treat as a miss
// after counting it.
func (s *Server) loadFromStore(spec GenerateSpec) (*mps.Structure, mps.Stats, error) {
	if s.cfg.Store == nil {
		return nil, mps.Stats{}, nil
	}
	key := spec.key()
	if _, ok := s.cfg.Store.Stat(key); !ok {
		return nil, mps.Stats{}, nil
	}
	circuit, err := mps.Benchmark(spec.Circuit)
	if err != nil {
		return nil, mps.Stats{}, err
	}
	cs, meta, err := s.cfg.Store.Get(key, circuit)
	if err != nil {
		s.loadErrs.Add(1)
		s.logf("store: loading %s: %v (regenerating)", key, err)
		return nil, mps.Stats{}, err
	}
	st := &mps.Structure{Structure: cs}
	st.SetBackupKind(spec.backupKind())
	// The manifest's coverage snapshot is all that survives a restart;
	// the rest of the generation stats belong to the process that ran
	// the annealer.
	return st, mps.Stats{FinalCoverage: meta.Coverage}, nil
}

// persist writes one finished generation to the disk store, recording the
// normalized spec in the manifest so a restarted server can rebuild the
// cache entry without guessing.
func (s *Server) persist(spec GenerateSpec, st *mps.Structure, coverage float64) {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		s.persistErrs.Add(1)
		s.logf("store: encoding spec for %s: %v", spec.key(), err)
		return
	}
	_, err = s.cfg.Store.Put(store.Meta{
		Key:      spec.key(),
		Circuit:  spec.Circuit,
		Seed:     spec.Seed,
		Options:  string(specJSON),
		Coverage: coverage,
	}, st.Structure)
	if err != nil {
		s.persistErrs.Add(1)
		s.logf("store: persisting %s: %v", spec.key(), err)
	}
}

// Flush blocks until all background store writes have completed. Call it
// before shutdown (or before another process opens the store directory)
// so finished generations are never lost to a racing exit.
func (s *Server) Flush() { s.persistWG.Wait() }

// Warm preloads up to limit structures from the disk store into the LRU,
// newest first (limit <= 0 or above the cache size clamps to the cache
// size). It returns how many structures were loaded; entries that fail to
// parse or load are logged and skipped, never fatal — a warm start must
// not keep a daemon from booting.
func (s *Server) Warm(limit int) (int, error) {
	if s.cfg.Store == nil {
		return 0, fmt.Errorf("serve: no store configured")
	}
	if limit <= 0 || limit > s.cfg.CacheSize {
		limit = s.cfg.CacheSize
	}
	loaded := 0
	for _, meta := range s.cfg.Store.List() {
		if loaded >= limit {
			break
		}
		var spec GenerateSpec
		if err := json.Unmarshal([]byte(meta.Options), &spec); err != nil {
			s.logf("warm: manifest options for %s: %v", meta.Key, err)
			continue
		}
		if err := spec.normalize(); err != nil {
			s.logf("warm: spec for %s: %v", meta.Key, err)
			continue
		}
		if spec.key() != meta.Key {
			s.logf("warm: manifest key %s does not match its spec (key drift)", meta.Key)
			continue
		}
		st, stats, err := s.loadFromStore(spec)
		if err != nil || st == nil {
			continue // already logged and counted
		}
		e := &entry{key: meta.Key, spec: spec}
		e.s, e.stats, e.done = st, stats, true
		e.placements = st.NumPlacements()
		e.coverage = meta.Coverage
		// Consume the entry's once before publication so a later
		// structureFor treats it as finished; the field writes above
		// happen-before any once.Do return.
		e.once.Do(func() {})
		s.mu.Lock()
		if _, exists := s.cache[meta.Key]; !exists {
			e.elem = s.order.PushBack(e) // List is newest-first, so the front stays newest
			s.cache[meta.Key] = e
			s.evictLocked()
			loaded++
		}
		s.mu.Unlock()
	}
	return loaded, nil
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// removeLocked deletes e from the cache and LRU order if still present.
// Callers must hold s.mu.
func (s *Server) removeLocked(e *entry) {
	if cur, ok := s.cache[e.key]; ok && cur == e {
		s.order.Remove(e.elem)
		delete(s.cache, e.key)
	}
}

// lookup returns the cached entry for key without generating. Only entries
// whose generation has finished successfully are returned; the done check
// under the mutex makes the entry's fields safe to read after return.
func (s *Server) lookup(key string) (*entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.cache[key]
	if !ok || !e.done || e.err != nil {
		return nil, false
	}
	s.order.MoveToFront(e.elem)
	return e, true
}

// Handler returns the daemon's HTTP routing table.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.HandleFunc("/v1/circuits", s.handleCircuits)
	mux.HandleFunc("/v1/structures", s.handleStructures)
	mux.HandleFunc("/v1/instantiate", s.handleInstantiate)
	return mux
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]string{"status": "ok"})
}

// circuitInfo is one row of the /v1/circuits listing.
type circuitInfo struct {
	Name      string `json:"name"`
	Blocks    int    `json:"blocks"`
	Nets      int    `json:"nets"`
	Terminals int    `json:"terminals"`
}

func (s *Server) handleCircuits(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	var out []circuitInfo
	for _, name := range circuits.Names() {
		c := circuits.MustByName(name)
		// Table 1's "Terminals" column counts block pins (see the
		// circuits package doc), so report PinCount, not boundary pads.
		out = append(out, circuitInfo{
			Name:      c.Name,
			Blocks:    c.N(),
			Nets:      len(c.Nets),
			Terminals: c.PinCount(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"circuits": out})
}

// StructureInfo describes one generated structure to clients.
type StructureInfo struct {
	Key        string       `json:"key"`
	Spec       GenerateSpec `json:"spec"`
	Cached     bool         `json:"cached"` // true when served from cache
	Placements int          `json:"placements"`
	Coverage   float64      `json:"coverage"`
	Stats      *mps.Stats   `json:"stats,omitempty"`
}

// PersistedInfo describes one structure in the disk store (a manifest
// row) to clients of GET /v1/structures.
type PersistedInfo struct {
	Key        string    `json:"key"`
	Circuit    string    `json:"circuit"`
	Seed       int64     `json:"seed"`
	Placements int       `json:"placements"`
	Coverage   float64   `json:"coverage,omitempty"`
	Bytes      int64     `json:"bytes"`
	Created    time.Time `json:"created"`
	// Cached reports whether the entry is also in the in-memory LRU right
	// now (a disk-only entry costs one load, not a regeneration).
	Cached bool `json:"cached"`
}

// clientError wraps validation failures so HTTP handlers can map them to
// 400 while generation failures stay 500.
type clientError struct{ err error }

func (e clientError) Error() string { return e.err.Error() }
func (e clientError) Unwrap() error { return e.err }

// generateErrorStatus maps a generate/structureFor error to its HTTP
// status: 400 for validation, 503 for requests shed while queued (so the
// access log does not count shed load as server faults), 500 otherwise.
func generateErrorStatus(err error) int {
	var ce clientError
	switch {
	case errors.As(err, &ce):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// Generate generates (or fetches from cache) the structure for spec — the
// single generation entry point shared by POST /v1/structures, cmd/mpsd's
// -preload flag, and tests.
func (s *Server) Generate(spec GenerateSpec) (StructureInfo, error) {
	return s.generate(context.Background(), spec)
}

// entryFor is the single validation + generation pipeline behind every
// generating path (POST /v1/structures, the /v1/instantiate inline-spec
// branch, Generate): normalize, budget-check, then fetch or generate.
// Validation failures come back as clientError; a request abandoned while
// queued for a generation slot is dropped.
func (s *Server) entryFor(ctx context.Context, spec GenerateSpec) (*entry, bool, error) {
	if err := spec.normalize(); err != nil {
		return nil, false, clientError{err}
	}
	if err := s.checkBudget(spec); err != nil {
		return nil, false, clientError{err}
	}
	return s.structureFor(ctx, spec)
}

// generate is Generate with a cancellation context.
func (s *Server) generate(ctx context.Context, spec GenerateSpec) (StructureInfo, error) {
	e, hit, err := s.entryFor(ctx, spec)
	if err != nil {
		return StructureInfo{}, err
	}
	stats := e.stats
	return StructureInfo{
		Key:        e.key,
		Spec:       e.spec,
		Cached:     hit,
		Placements: e.placements,
		Coverage:   e.coverage,
		Stats:      &stats,
	}, nil
}

func (s *Server) handleStructures(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		out := []StructureInfo{}
		cached := map[string]bool{}
		for el := s.order.Front(); el != nil; el = el.Next() {
			e := el.Value.(*entry)
			if !e.done || e.err != nil {
				continue // still generating or failed
			}
			cached[e.key] = true
			out = append(out, StructureInfo{
				Key:        e.key,
				Spec:       e.spec,
				Cached:     true,
				Placements: e.placements,
				Coverage:   e.coverage,
			})
		}
		s.mu.Unlock()
		resp := map[string]any{"structures": out}
		if s.cfg.Store != nil {
			persisted := []PersistedInfo{}
			for _, m := range s.cfg.Store.List() {
				persisted = append(persisted, PersistedInfo{
					Key:        m.Key,
					Circuit:    m.Circuit,
					Seed:       m.Seed,
					Placements: m.Placements,
					Coverage:   m.Coverage,
					Bytes:      m.Bytes,
					Created:    m.Created,
					Cached:     cached[m.Key],
				})
			}
			resp["persisted"] = persisted
		}
		writeJSON(w, http.StatusOK, resp)
	case http.MethodPost:
		var spec GenerateSpec
		if err := decodeJSON(w, r, &spec, 4096); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		info, err := s.generate(r.Context(), spec)
		if err != nil {
			writeError(w, generateErrorStatus(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, info)
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// instantiateRequest is a batched query: address a structure by cache key
// (from POST /v1/structures) or inline spec, plus the dimension queries.
type instantiateRequest struct {
	Key     string        `json:"key,omitempty"`
	Spec    *GenerateSpec `json:"spec,omitempty"`
	Queries []dimQuery    `json:"queries"`
}

type dimQuery struct {
	Ws []int `json:"ws"`
	Hs []int `json:"hs"`
}

// queryResult is one query's answer. Error is set instead of anchors when
// the query itself was invalid (e.g. out-of-bounds dimensions).
type queryResult struct {
	X           []int  `json:"x,omitempty"`
	Y           []int  `json:"y,omitempty"`
	PlacementID int    `json:"placement_id"`
	FromBackup  bool   `json:"from_backup"`
	Error       string `json:"error,omitempty"`
}

func (s *Server) handleInstantiate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	var req instantiateRequest
	if err := decodeJSON(w, r, &req, 4096+int64(s.cfg.MaxBatch)*maxQueryBytes); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "no queries")
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds max %d", len(req.Queries), s.cfg.MaxBatch))
		return
	}

	var e *entry
	switch {
	case req.Key != "" && req.Spec != nil:
		// Refuse ambiguous addressing rather than silently answering from
		// one structure while the client meant the other.
		writeError(w, http.StatusBadRequest, "provide key or spec, not both")
		return
	case req.Key != "":
		cached, ok := s.lookup(req.Key)
		if !ok {
			writeError(w, http.StatusNotFound,
				fmt.Sprintf("structure %q not cached — POST /v1/structures first", req.Key))
			return
		}
		e = cached
	case req.Spec != nil:
		var err error
		e, _, err = s.entryFor(r.Context(), *req.Spec)
		if err != nil {
			writeError(w, generateErrorStatus(err), err.Error())
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "need key or spec")
		return
	}

	queries := make([]mps.DimQuery, len(req.Queries))
	for i, q := range req.Queries {
		queries[i] = mps.DimQuery{Ws: q.Ws, Hs: q.Hs}
	}
	// The batch slot wraps only the CPU fan-out — holding it across decode
	// or a cold generation would let a handful of slow requests starve
	// sub-millisecond cached traffic. Requests shed while queued get a 503
	// so the access log does not count shed load as success. Per-request
	// decode memory is bounded by MaxBatch (see withDefaults).
	select {
	case s.batchSlots <- struct{}{}:
		defer func() { <-s.batchSlots }()
	case <-r.Context().Done():
		writeError(w, http.StatusServiceUnavailable, "canceled while queued for a batch slot")
		return
	}
	batch := e.s.InstantiateBatchWorkers(queries, s.cfg.Workers)

	results := make([]queryResult, len(batch))
	served := 0
	for i, br := range batch {
		if br.Err != nil {
			results[i] = queryResult{PlacementID: -1, Error: br.Err.Error()}
			continue
		}
		served++
		results[i] = queryResult{
			X:           br.X,
			Y:           br.Y,
			PlacementID: br.PlacementID,
			FromBackup:  br.FromBackup,
		}
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"key":     e.key,
		"served":  served,
		"results": results,
	})
}

// maxQueryBytes is a generous upper bound on the JSON size of one
// dimension query (two int arrays for the largest benchmark's 24 blocks).
const maxQueryBytes = 1024

// decodeJSON strictly decodes the request body into v, refusing bodies
// over limit bytes so the batch/spec caps also bound per-request memory.
func decodeJSON(w http.ResponseWriter, r *http.Request, v any, limit int64) error {
	dec := json.NewDecoder(http.MaxBytesReader(w, r.Body, limit))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// writeJSON emits compact JSON: instantiate responses carry up to MaxBatch
// results, so pretty-printing would roughly double hot-path bytes.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": strings.TrimSpace(msg)})
}
