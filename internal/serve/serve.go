// Package serve implements the HTTP/JSON placement query engine behind
// cmd/mpsd. It operationalizes the paper's Figure 1 split for a service
// setting: structures are generated once per (circuit, seed, options) key
// and held in a bounded LRU cache (Fig. 1a), and batched Instantiate
// traffic — the hot path of a layout-inclusive sizing loop (Fig. 1b,
// §3.3) — is answered from the cached structure through the facade's
// concurrent InstantiateBatch worker pool, which queries the compiled
// (flat, allocation-free) form of the structure. The index is always
// materialized off the request path: after generation on the job worker,
// or during the disk load (v3 store files carry the compiled tables).
//
// Generation requests for the same key are deduplicated: concurrent
// clients share one generation run (per-entry sync.Once) and all block on
// its completion, so a thundering herd costs one annealing run, not N.
//
// With a Store configured the cache becomes a write-through layer over a
// disk repository (internal/store): finished generations persist in the
// background, cache misses try a disk load (milliseconds) before an
// annealing run (minutes), and Warm preloads the newest persisted
// structures at startup — so a daemon restart never repeats generation
// work (the paper's "generate once" made durable).
//
// Generation itself is a background workload: every annealing run is a job
// on an internal/jobs scheduler (priority FIFO queue, bounded worker
// pool), never an inline call on a request goroutine. POST /v1/structures
// is submit-and-wait on that scheduler; POST /v1/jobs is submit-and-return
// (a job id comes back immediately), with GET /v1/jobs/{id} serving live
// progress snapshots and DELETE /v1/jobs/{id} cancelling cooperatively —
// a queued job never runs, a running one stops annealing within one
// inner-SA proposal and leaves no partial structure in cache or store.
package serve

import (
	"bytes"
	"container/list"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"slices"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"mps"
	"mps/internal/circuits"
	"mps/internal/cluster"
	"mps/internal/jobs"
	"mps/internal/obs"
	"mps/internal/store"
)

// Config tunes a Server. The zero value is a sensible default.
type Config struct {
	// CacheSize bounds the number of generated structures kept in memory
	// (LRU eviction). Default 8.
	CacheSize int
	// Workers bounds the per-request InstantiateBatch worker pool.
	// 0 uses GOMAXPROCS.
	Workers int
	// MaxConcurrentBatches bounds how many instantiate batches execute at
	// once server-wide (each uses up to Workers goroutines); excess
	// requests queue. Keeps N concurrent clients from oversubscribing the
	// CPU with N×Workers runnable goroutines. Default 4.
	MaxConcurrentBatches int
	// MaxConcurrentGenerations sizes the worker pool of the internally
	// created job scheduler when Jobs is nil. Dedup only collapses
	// identical specs; the worker pool stops a sweep of distinct seeds
	// from launching unbounded annealing runs — excess jobs queue.
	// Ignored when Jobs is provided (its own Workers applies). Default 2.
	MaxConcurrentGenerations int
	// MaxBatch caps queries per instantiate request. It also sizes the
	// request body limit (~1 KiB per query), so it bounds per-request
	// decode memory: the default 8192 keeps any one request under ~8 MiB.
	MaxBatch int
	// MaxGenerateIterations caps the explorer budget a request may ask
	// for, protecting the daemon from hours-scale generation requests.
	// The same cap bounds bdio_steps, and chains is bounded by
	// maxChains, so no request field multiplies the work unboundedly.
	// Default 5000. Set negative to disable the cap.
	MaxGenerateIterations int
	// Store, when non-nil, is the disk-backed structure repository: cache
	// misses consult it before paying for an annealing run, finished
	// generations are persisted to it in the background (Flush waits for
	// them), and Warm preloads its newest entries into the LRU at
	// startup. Nil keeps the server memory-only.
	Store *store.Dir
	// Jobs, when non-nil, is the generation job scheduler the server runs
	// every annealing job on — supply one (see internal/jobs) to persist
	// job state across restarts or to tune its worker pool. Nil creates a
	// memory-only scheduler with MaxConcurrentGenerations workers. Either
	// way the server owns the scheduler after New — Close shuts it down —
	// and it must be exclusive to this server: job results publish into
	// this server's cache entries, so two servers sharing a scheduler
	// would dedup onto each other's jobs and hang.
	Jobs *jobs.Scheduler
	// Cluster, when non-nil, puts the server in cluster mode: the
	// canonical spec key is consistent-hashed over the peer set, requests
	// for non-owned keys are forwarded (single-hop) to the owning node,
	// and non-owned keys served locally (replica fan-out, owner-down
	// fallback, portfolio members owned elsewhere) are fetched as built
	// v3 artifacts from peers before any local generation. See
	// internal/serve/cluster.go for the routing rules.
	Cluster *cluster.Cluster
	// Logf, when non-nil, receives operational log lines (store persist
	// or warm-load failures). Nil discards them; counters still track.
	Logf func(format string, args ...any)
	// SlowQuery, when positive, logs every request that takes at least
	// this long as a one-line JSON record through Logf, with the
	// per-stage time breakdown naming where the time went. Zero disables
	// the log; the mps_slow_queries_total counter tracks either way.
	SlowQuery time.Duration
	// TraceBuffer bounds the per-node ring of retained traces served by
	// /v1/debug/traces. 0 means 512; negative disables tracing retention
	// entirely (spans still feed the stage aggregates).
	TraceBuffer int
	// TraceSlow is the always-retain latency threshold for tail sampling.
	// 0 inherits SlowQuery; negative disables the slow rule.
	TraceSlow time.Duration
	// TraceSample is the fraction of ordinary (fast, successful,
	// single-node) traces retained, decided deterministically from the
	// trace ID so every node keeps the same traces. 0 means 0.1; negative
	// means none.
	TraceSample float64
}

func (cfg Config) withDefaults() Config {
	if cfg.CacheSize <= 0 {
		cfg.CacheSize = 8
	}
	if cfg.MaxBatch <= 0 {
		cfg.MaxBatch = 8192
	}
	if cfg.MaxGenerateIterations == 0 {
		cfg.MaxGenerateIterations = 5000
	}
	if cfg.MaxConcurrentBatches <= 0 {
		cfg.MaxConcurrentBatches = 4
	}
	if cfg.MaxConcurrentGenerations <= 0 {
		cfg.MaxConcurrentGenerations = 2
	}
	if cfg.TraceBuffer == 0 {
		cfg.TraceBuffer = 512
	}
	if cfg.TraceSlow == 0 {
		cfg.TraceSlow = cfg.SlowQuery
	}
	if cfg.TraceSample == 0 {
		cfg.TraceSample = 0.1
	}
	return cfg
}

// Server is the query engine: an LRU cache of generated structures plus
// the HTTP handlers that fill and query it. Safe for concurrent use.
type Server struct {
	cfg Config

	// sched runs every generation as a background job; requests submit
	// and wait instead of annealing inline.
	sched *jobs.Scheduler

	// cluster is cfg.Cluster (nil in single-node mode), hoisted for the
	// hot routing checks.
	cluster *cluster.Cluster

	// batchSlots is a semaphore bounding concurrent batch executions to
	// the configured maximum.
	batchSlots chan struct{}

	// metrics is the server's observability registry plus the hot-path
	// metric children; the genRuns/persistErrs/loadErrs fields below
	// alias its counters so the incrementing code (and tests calling
	// Load) reads the same as when they were plain atomics.
	metrics *serverMetrics

	// traces is the tail-sampled ring of completed request traces behind
	// /v1/debug/traces; nil when retention is disabled (TraceBuffer < 0).
	traces *obs.TraceStore

	// genRuns counts full annealing runs started — not cache or store
	// hits — so tests and operators can verify warm-started structures
	// are served without regeneration.
	genRuns *obs.Counter
	// persistWG tracks in-flight background store writes; persistErrs
	// counts the ones that failed and loadErrs the store reads that did
	// (both also reported through Logf).
	persistWG   sync.WaitGroup
	persistErrs *obs.Counter
	loadErrs    *obs.Counter

	mu    sync.Mutex
	cache map[string]*entry
	order *list.List // front = most recently used; values are *entry
}

// entry is one cached (or in-flight) generation. The start once gates the
// work — a disk-store rehydration or a job submission — so concurrent
// requests for the same key share it; ready closes when the result (or
// failure) publishes.
type entry struct {
	key      string
	spec     GenerateSpec
	priority int
	elem     *list.Element

	// waiters counts requests currently interested in this entry; the
	// queued-job cancel path only fires when the canceling request is
	// the sole waiter, so one flaky client cannot fail a patient herd.
	waiters atomic.Int64

	start sync.Once
	// ready closes exactly once, in publish, after the result fields
	// below are set. Readers either select on ready (and then read the
	// fields lock-free: they are never written again) or hold the server
	// mutex and check done.
	ready chan struct{}
	// jobID is the scheduler job producing (or having produced) this
	// entry; written under the server mutex in startWork, "" until then.
	// Portfolio entries have no job of their own while members generate:
	// jobID stays "" until fan-in records the born-done portfolio job,
	// and memberJobIDs (written under the server mutex during fan-out)
	// names the K member jobs doing the actual annealing.
	jobID        string
	memberJobIDs []string

	// done and the fields below are written exactly once, under the
	// server mutex, when generation finishes. Exactly one of s and p is
	// set on success: s for single-structure specs, p for portfolio
	// specs. placements and coverage snapshot the artifact at publish
	// time so listing the cache never walks structure internals while
	// holding the global mutex.
	done       bool
	s          *mps.Structure
	p          *mps.Portfolio
	stats      mps.Stats
	placements int
	coverage   float64
	err        error
}

// batcher is the query surface shared by structures and portfolios — all
// the instantiate handler needs from either.
type batcher interface {
	InstantiateBatchWorkers(queries []mps.DimQuery, workers int) []mps.BatchResult
}

// batcher returns the entry's query surface. Only valid on a successfully
// published entry.
func (e *entry) batcher() batcher {
	if e.p != nil {
		return e.p
	}
	return e.s
}

// New returns a Server ready to serve. The server owns its job scheduler
// (provided or internally created): Close shuts it down.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	sched := cfg.Jobs
	if sched == nil {
		// A memory-only scheduler cannot fail to construct (no state file
		// to load).
		sched, _ = jobs.New(jobs.Config{
			Workers: cfg.MaxConcurrentGenerations,
			Logf:    cfg.Logf,
		})
	}
	s := &Server{
		cfg:        cfg,
		sched:      sched,
		cluster:    cfg.Cluster,
		batchSlots: make(chan struct{}, cfg.MaxConcurrentBatches),
		cache:      make(map[string]*entry),
		order:      list.New(),
	}
	if cfg.TraceBuffer > 0 {
		node := "local"
		if cfg.Cluster != nil {
			node = cfg.Cluster.Self()
		}
		slow := cfg.TraceSlow
		if slow < 0 {
			slow = 0
		}
		sample := cfg.TraceSample
		if sample < 0 {
			sample = 0
		}
		s.traces = obs.NewTraceStore(node, cfg.TraceBuffer, slow, sample)
	}
	s.metrics = newServerMetrics(s)
	s.genRuns = s.metrics.genRuns
	s.persistErrs = s.metrics.persistErrs
	s.loadErrs = s.metrics.loadErrs
	return s
}

// Close shuts down the server's job scheduler: queued jobs are abandoned,
// running generations are cancelled cooperatively (the nested annealers
// stop within one proposal), and waiting requests fail with a
// cancellation error. Instantiate traffic against cached structures keeps
// working. Call Flush separately to drain background store writes.
func (s *Server) Close() { s.sched.Close() }

// Jobs exposes the server's scheduler (for health endpoints and tests).
func (s *Server) Jobs() *jobs.Scheduler { return s.sched }

// GenerateSpec identifies a structure: the circuit plus every Generate
// option that affects the result. It doubles as the cache key source.
//
// Portfolio > 1 asks for a K-member structure portfolio instead of a
// single structure: member i is the single-structure spec with Seed =
// mps.PortfolioMemberSeed(Seed, i) and Portfolio folded away, each member
// generated as its own scheduler job (fan-out) and the portfolio published
// once all K land (fan-in). Member specs are ordinary cache/store/job
// citizens, so members deduplicate against identical single-structure
// requests and against other portfolios sharing a member.
type GenerateSpec struct {
	Circuit       string `json:"circuit"`
	Seed          int64  `json:"seed"`
	Effort        string `json:"effort,omitempty"` // quick | balanced | thorough
	Iterations    int    `json:"iterations,omitempty"`
	BDIOSteps     int    `json:"bdio_steps,omitempty"`
	Chains        int    `json:"chains,omitempty"`
	MaxPlacements int    `json:"max_placements,omitempty"`
	Backup        string `json:"backup,omitempty"` // tree | seqpair
	// Backend selects the generation backend (GET /v1/backends lists
	// them); empty means "anneal", so every spec written before backends
	// existed keeps its meaning, its cache key, and its store artifacts.
	Backend string `json:"backend,omitempty"`
	// Portfolio is the member count K; 0 and 1 both mean a single
	// structure (and share one cache key).
	Portfolio int `json:"portfolio,omitempty"`
	// Weights selects the generation objective (see cost.Weights).
	// Omitted, all-zero, and the explicit balanced vector all mean the
	// default objective and are folded to nil, so default-weight specs
	// keep their historical keys and artifacts.
	Weights *WeightsSpec `json:"weights,omitempty"`
	// MemberWeights gives portfolio member i its generation objective
	// (requires Portfolio > 1, length K): member i uses MemberWeights[i]
	// when non-zero, else Weights. Unlike the facade, a plain portfolio
	// spec gets NO implicit weight ladder — an unweighted spec must keep
	// producing the exact members its key always named — so weight
	// diversity over HTTP is always explicit.
	MemberWeights []WeightsSpec `json:"member_weights,omitempty"`
}

// WeightsSpec is the JSON form of an objective weight vector: omitted
// components weigh zero, and the all-zero vector means the default
// balanced objective.
type WeightsSpec struct {
	Wire   float64 `json:"wire,omitempty"`
	Area   float64 `json:"area,omitempty"`
	Aspect float64 `json:"aspect,omitempty"`
}

// weights converts to the facade vector (nil = the zero vector).
func (w *WeightsSpec) weights() mps.Weights {
	if w == nil {
		return mps.Weights{}
	}
	return mps.Weights{Wire: w.Wire, Area: w.Area, Aspect: w.Aspect}
}

// validateNames is the one place the spec's enumerated string fields are
// checked and defaulted: effort, backup, and backend all resolve here,
// so no path can reach generation with a name validation missed (the
// backup field used to be the cautionary tale — accepted here, failing
// only deep in the facade). Mutates the spec to the canonical names.
func (g *GenerateSpec) validateNames() error {
	switch g.Effort {
	case "":
		g.Effort = "balanced"
	case "quick", "balanced", "thorough":
	default:
		return fmt.Errorf("unknown effort %q (want quick, balanced, or thorough)", g.Effort)
	}
	switch g.Backup {
	case "":
		g.Backup = "tree"
	case "tree", "seqpair":
	default:
		return fmt.Errorf("unknown backup %q (want tree or seqpair)", g.Backup)
	}
	if g.Backend == "" {
		g.Backend = mps.DefaultBackend
	}
	registered := mps.Backends()
	if !slices.Contains(registered, g.Backend) {
		return fmt.Errorf("unknown backend %q (registered: %s)",
			g.Backend, strings.Join(registered, ", "))
	}
	if err := g.Weights.weights().Validate(); err != nil {
		return fmt.Errorf("weights: %w", err)
	}
	for i := range g.MemberWeights {
		if err := g.MemberWeights[i].weights().Validate(); err != nil {
			return fmt.Errorf("member_weights[%d]: %w", i, err)
		}
	}
	return nil
}

// normalize validates the spec and fills implied defaults so equivalent
// specs map to one cache key.
func (g *GenerateSpec) normalize() error {
	if g.Circuit == "" {
		return fmt.Errorf("missing circuit")
	}
	if _, err := circuits.ByName(g.Circuit); err != nil {
		return err
	}
	if err := g.validateNames(); err != nil {
		return err
	}
	if g.Iterations < 0 || g.BDIOSteps < 0 || g.Chains < 0 || g.MaxPlacements < 0 {
		return fmt.Errorf("negative budget")
	}
	if g.Portfolio < 0 {
		return fmt.Errorf("negative portfolio size")
	}
	// Canonicalize the 0-means-default budget fields so provably identical
	// specs share one cache key (and one generation run): resolve effort
	// presets into concrete budgets, fold chains 0 to the single chain the
	// explorer runs anyway, and fold portfolio 0 to the single structure
	// it already means.
	g.Iterations, g.BDIOSteps = g.options().Budgets()
	if g.Chains == 0 {
		g.Chains = 1
	}
	if g.Portfolio == 0 {
		g.Portfolio = 1
	}
	if len(g.MemberWeights) != 0 {
		if g.Portfolio <= 1 {
			return fmt.Errorf("member_weights given for a single-structure spec")
		}
		if len(g.MemberWeights) != g.Portfolio {
			return fmt.Errorf("%d member_weights for a %d-member portfolio",
				len(g.MemberWeights), g.Portfolio)
		}
	}
	g.canonWeights()
	return nil
}

// canonWeights folds the weights fields to canonical form so provably
// equivalent weightings share one cache key: a spec-level vector meaning
// the default objective drops to nil; a member entry meaning the same
// objective an omitted entry would resolve to drops to the zero entry;
// and an all-zero member list drops entirely. Every fold preserves
// memberWeight's resolution, so folding never changes what generates —
// only which of several equivalent spellings names it.
func (g *GenerateSpec) canonWeights() {
	if g.Weights != nil && g.Weights.weights().IsDefault() {
		g.Weights = nil
	}
	if len(g.MemberWeights) == 0 {
		g.MemberWeights = nil
		return
	}
	allZero := true
	for i := range g.MemberWeights {
		// With no spec-level vector, an omitted member entry resolves to
		// the default objective — so an entry naming the default
		// explicitly folds to omitted. With a spec-level vector the two
		// spellings differ (omitted inherits g.Weights) and must not fold.
		if g.Weights == nil && g.MemberWeights[i].weights().IsDefault() {
			g.MemberWeights[i] = WeightsSpec{}
		}
		if (g.MemberWeights[i] != WeightsSpec{}) {
			allZero = false
		}
	}
	if allZero {
		g.MemberWeights = nil
	}
}

// memberWeight resolves member i's generation objective: its
// MemberWeights entry when non-zero, else the spec-level vector (zero
// when neither is given — the default objective).
func (g GenerateSpec) memberWeight(i int) mps.Weights {
	if i < len(g.MemberWeights) {
		if w := g.MemberWeights[i].weights(); !w.IsZero() {
			return w
		}
	}
	return g.Weights.weights()
}

// resolvedMemberWeights is the per-member generation weight record a
// portfolio assembled from this spec carries (nil when the spec names no
// weights at all — the historical weightless portfolio).
func (g GenerateSpec) resolvedMemberWeights() []mps.Weights {
	if g.Weights == nil && len(g.MemberWeights) == 0 {
		return nil
	}
	ws := make([]mps.Weights, g.Portfolio)
	for i := range ws {
		ws[i] = g.memberWeight(i)
	}
	return ws
}

// key derives the cache key from the fields that affect the generated
// structure. Effort is deliberately absent: normalize resolved it into
// concrete Iterations/BDIOSteps, so two specs differing only in how they
// named the same budgets share one entry. The portfolio suffix appears
// only for K > 1, the backend tag only for non-default backends, and the
// weight tags only for weightings canonWeights could not fold away, so
// single-structure anneal keys — and every weightless spec's key — are
// byte-identical to what pre-portfolio, pre-backend, and pre-weights
// manifests and job files recorded: every existing cache entry, store
// artifact, and cluster assignment stays valid.
func (g GenerateSpec) key() string {
	base := fmt.Sprintf("%s|seed=%d|it=%d|bdio=%d|chains=%d|maxp=%d|backup=%s",
		g.Circuit, g.Seed, g.Iterations, g.BDIOSteps, g.Chains, g.MaxPlacements, g.Backup)
	if g.Backend != "" && g.Backend != mps.DefaultBackend {
		base = fmt.Sprintf("%s|backend=%s", base, g.Backend)
	}
	if g.Weights != nil {
		base = fmt.Sprintf("%s|w=%s", base, g.Weights.weights().Key())
	}
	if g.Portfolio > 1 {
		base = fmt.Sprintf("%s|k=%d", base, g.Portfolio)
		if len(g.MemberWeights) != 0 {
			keys := make([]string, len(g.MemberWeights))
			for i := range g.MemberWeights {
				// Zero entries (inherit the spec-level vector) stay empty so
				// the suffix round-trips the canonical spec exactly.
				if w := g.MemberWeights[i].weights(); !w.IsZero() {
					keys[i] = w.Key()
				}
			}
			base = fmt.Sprintf("%s|mw=%s", base, strings.Join(keys, ";"))
		}
	}
	return base
}

// memberSpec derives portfolio member i's single-structure spec: the
// shared member-seed rule, Portfolio folded to 1, and the member's
// resolved weight vector promoted to the spec-level Weights field (a
// single-structure spec has no member list), every other field
// unchanged. Members therefore share cache keys, store files, and
// scheduler jobs with identical single-structure specs — including
// weighted ones: a portfolio member generated under the wire-heavy rung
// deduplicates against a standalone wire-heavy request at the same
// derived seed.
func (g GenerateSpec) memberSpec(i int) GenerateSpec {
	m := g
	m.Seed = mps.PortfolioMemberSeed(g.Seed, i)
	m.Portfolio = 1
	m.MemberWeights = nil
	m.Weights = nil
	if w := g.memberWeight(i); !w.IsZero() && !w.IsDefault() {
		m.Weights = &WeightsSpec{Wire: w.Wire, Area: w.Area, Aspect: w.Aspect}
	}
	return m
}

// backupKind maps the spec's backup name to the facade's enum — used when
// rehydrating a structure from the store, where only the backup must be
// rebuilt (it is derived from the circuit, not persisted).
func (g GenerateSpec) backupKind() mps.BackupKind {
	if g.Backup == "seqpair" {
		return mps.BackupSequencePair
	}
	return mps.BackupSlicingTree
}

func (g GenerateSpec) options() mps.Options {
	effort := mps.EffortBalanced
	switch g.Effort {
	case "quick":
		effort = mps.EffortQuick
	case "thorough":
		effort = mps.EffortThorough
	}
	backup := mps.BackupSlicingTree
	if g.Backup == "seqpair" {
		backup = mps.BackupSequencePair
	}
	return mps.Options{
		Seed:          g.Seed,
		Iterations:    g.Iterations,
		BDIOSteps:     g.BDIOSteps,
		Effort:        effort,
		Chains:        g.Chains,
		MaxPlacements: g.MaxPlacements,
		Backup:        backup,
	}
}

// maxChains bounds the chains a request may ask for regardless of the
// iteration cap — each chain is a full explorer run.
const maxChains = 64

// maxPortfolio bounds the portfolio members a request may ask for — each
// member is a full generation job, so K multiplies the annealing work.
// Deliberately below the library's MaxPortfolioMembers: a daemon serves
// many clients, a library call serves one.
const maxPortfolio = 8

// checkBudget rejects generation requests whose annealing budget exceeds
// the daemon's cap. Every path that can trigger a generation — POST
// /v1/structures, POST /v1/instantiate with an inline spec, and the
// programmatic Generate — must pass through it.
func (s *Server) checkBudget(g GenerateSpec) error {
	if g.Chains > maxChains {
		return fmt.Errorf("chains %d exceeds daemon cap %d", g.Chains, maxChains)
	}
	if g.Portfolio > maxPortfolio {
		return fmt.Errorf("portfolio size %d exceeds daemon cap %d", g.Portfolio, maxPortfolio)
	}
	limit := s.cfg.MaxGenerateIterations
	if limit < 0 {
		return nil
	}
	if g.Iterations > limit {
		return fmt.Errorf("iterations %d exceeds daemon cap %d", g.Iterations, limit)
	}
	if g.BDIOSteps > limit {
		return fmt.Errorf("bdio_steps %d exceeds daemon cap %d", g.BDIOSteps, limit)
	}
	return nil
}

// evictLocked shrinks the cache to its bound, least-recently-used first.
// In-flight entries are skipped so an eviction can never duplicate a
// running generation; the cache may transiently exceed its bound while
// herds generate, which is why publication re-runs this pass. Callers must
// hold s.mu.
func (s *Server) evictLocked() {
	for s.order.Len() > s.cfg.CacheSize {
		var victim *list.Element
		for el := s.order.Back(); el != nil; el = el.Prev() {
			if el.Value.(*entry).done {
				victim = el
				break
			}
		}
		if victim == nil {
			return
		}
		s.order.Remove(victim)
		delete(s.cache, victim.Value.(*entry).key)
		s.metrics.cacheEvictions.Inc()
	}
}

// ensure returns the cache entry for the spec, creating it and starting
// its work (disk rehydration or job submission) on first use. The entry
// comes back with the caller registered as a waiter — callers must
// e.waiters.Add(-1) when done with it. The returned bool reports a true
// cache hit: the entry had already finished, not merely landing on an
// in-flight one.
//
// tr is the requesting trace (nil for background callers) and parent the
// span the inline work should nest under (0 = the trace root): the first
// caller runs the inline read-through, so its trace gets the store-read
// and compile spans; later callers land on the same entry and wait.
func (s *Server) ensure(tr *obs.Trace, parent obs.SpanID, spec GenerateSpec, priority int) (*entry, bool) {
	key := spec.key()
	s.mu.Lock()
	e, hit := s.cache[key]
	wasDone := hit && e.done
	if !hit {
		e = &entry{key: key, spec: spec, priority: priority, ready: make(chan struct{})}
		e.elem = s.order.PushFront(e)
		s.cache[key] = e
		s.evictLocked()
	} else {
		s.order.MoveToFront(e.elem)
	}
	e.waiters.Add(1)
	s.mu.Unlock()
	e.start.Do(func() { s.startWork(tr, parent, e) })
	return e, wasDone
}

// startWork produces the entry's structure: a disk-store rehydration when
// available (milliseconds, done inline so it never queues behind
// annealing jobs), else a job submission to the scheduler. Portfolio
// specs branch into the member fan-out instead. Exactly one of the
// resulting paths — store hit, submit failure, the job's run, or the
// job's abandon hook — calls publish, which closes e.ready.
func (s *Server) startWork(tr *obs.Trace, parent obs.SpanID, e *entry) {
	if e.spec.Portfolio > 1 {
		s.startPortfolioWork(tr, parent, e)
		return
	}
	specJSON, err := json.Marshal(e.spec)
	if err != nil { // cannot happen for a normalized spec; fail loudly if it does
		s.publish(e, nil, mps.Stats{}, fmt.Errorf("encoding spec: %w", err))
		return
	}
	// Read-through: a structure persisted by an earlier process (or
	// evicted from this one) is rehydrated from disk in milliseconds
	// instead of regenerated in minutes. Load failures (corrupt file,
	// missing entry) fall through to a fresh generation. The job history
	// still records the materialization (RecordDone), so /v1/jobs answers
	// for warm keys too.
	if st, stats, err := s.loadFromStore(tr, parent, e.spec); err == nil && st != nil {
		if snap, err := s.sched.RecordDone(e.key, specJSON, jobs.Progress{
			Placements: st.NumPlacements(),
			Coverage:   stats.FinalCoverage,
		}); err == nil {
			s.setJobID(e, snap.ID)
		}
		s.publish(e, st, stats, nil)
		return
	}
	// Cluster mode, non-owned key: this node is serving the key anyway
	// (replica fan-out, owner-down fallback, or a portfolio member owned
	// elsewhere). Pull the built artifact from a peer — or have the owner
	// generate it — before annealing here; off this goroutine, because
	// peer calls are network-scale and ensure's caller may be fanning out
	// K members. remoteWork degrades to submitGeneration when no peer can
	// help, so exactly one path publishes either way.
	if s.cluster != nil && !s.cluster.Owns(e.key) {
		go s.remoteWork(tr, e, specJSON)
		return
	}
	s.submitGeneration(tr, e, specJSON)
}

// submitGeneration queues the entry's annealing run on the local job
// scheduler — the tail of startWork, split out so the cluster path can
// fall back to it after peer routes fail. tr (nil for background work)
// receives the job_run span; it parents to the trace root because the
// job routinely outlives the request span that submitted it.
func (s *Server) submitGeneration(tr *obs.Trace, e *entry, specJSON []byte) {
	// Run and Done execute sequentially on the same worker, so the result
	// variables they share need no further synchronization. Publication
	// happens in Done — after the scheduler has retired the key from its
	// active set — so a request racing a failed entry's removal starts a
	// fresh job instead of deduping onto the dead one.
	var genSt *mps.Structure
	var genStats mps.Stats
	var genErr error
	snap, _, err := s.sched.Submit(jobs.Request{
		Key:      e.key,
		Spec:     specJSON,
		Priority: e.priority,
		Trace:    tr,
		Run: func(ctx context.Context, report func(jobs.Progress)) error {
			genSt, genStats, genErr = s.runGeneration(ctx, e.spec, report)
			// Write-through: persist the finished structure off the job
			// path. The annealing run took minutes; the disk write takes
			// milliseconds and must never hold the worker (or a waiting
			// client) hostage. The Add must precede publish (in Done):
			// publish wakes waiters, and a woken client may immediately
			// Flush. On error, nothing persists — a cancelled or failed
			// run leaves no partial structure in the store, and publish
			// drops the entry so none lingers in the cache either.
			if genErr == nil && genSt != nil && s.cfg.Store != nil {
				s.persistWG.Add(1)
				go func() {
					defer s.persistWG.Done()
					s.persist(e.spec, genSt, genStats.FinalCoverage)
				}()
			}
			return genErr
		},
		Done: func(snap jobs.Snapshot) {
			// The scheduler records the job_run span on the submitting trace;
			// the server-wide stage counters live here, where the metrics are.
			if snap.Finished.After(snap.Started) {
				s.metrics.observe(nil, obs.StageJobRun, snap.Finished.Sub(snap.Started))
			}
			s.publish(e, genSt, genStats, genErr)
		},
		Abandon: func(reason error) {
			s.publish(e, nil, mps.Stats{}, fmt.Errorf("generation canceled while queued: %w: %w", reason, context.Canceled))
		},
	})
	if err != nil {
		s.publish(e, nil, mps.Stats{}, err)
		return
	}
	s.setJobID(e, snap.ID)
}

// setJobID records the scheduler job backing the entry.
func (s *Server) setJobID(e *entry, id string) {
	s.mu.Lock()
	e.jobID = id
	s.mu.Unlock()
}

// runGeneration executes one full annealing run under the job's context,
// translating generation progress into job progress. Panics become
// errors so a misbehaving generator fails one entry, not the daemon.
func (s *Server) runGeneration(ctx context.Context, spec GenerateSpec, report func(jobs.Progress)) (st *mps.Structure, stats mps.Stats, err error) {
	defer func() {
		if r := recover(); r != nil {
			st, err = nil, fmt.Errorf("generation panic: %v", r)
		}
	}()
	circuit, err := mps.Benchmark(spec.Circuit)
	if err != nil {
		return nil, mps.Stats{}, err
	}
	opts := spec.options()
	if report != nil {
		opts.Progress = func(p mps.Progress) {
			report(jobs.Progress{
				Chain:      p.Chain,
				Iteration:  p.Iteration,
				Placements: p.Placements,
				Coverage:   p.Coverage,
			})
		}
	}
	s.genRuns.Add(1)
	res, err := mps.Run(ctx, mps.Request{
		Circuit: circuit, Options: opts, Backend: spec.Backend,
		Weights: spec.Weights.weights(),
	})
	st = res.Structure
	if len(res.Stats) > 0 {
		stats = res.Stats[0]
	}
	if err == nil && st != nil {
		// Compile on the job worker, not on the first instantiate request:
		// queries against this structure — including the background persist,
		// which saves the compiled tables into the v3 file — find the index
		// ready.
		st.Compiled()
	}
	return st, stats, err
}

// startPortfolioWork produces a portfolio entry: the K member specs fan
// out synchronously through ensure — so each member is its own cache
// entry, store read-through, and scheduler job, deduplicated against
// identical single-structure work — and a fan-in goroutine waits for all
// members, assembles the routing layer, and publishes. A fully persisted
// portfolio still assembles in milliseconds (every member ensure is a
// store read-through, no annealing) while its members land as shared
// cache entries; there is deliberately no grouping-row fast path here,
// because it would load private member copies and defeat that sharing —
// the grouping row exists for Warm and listings. This is the one place
// the scheduler runs cooperative multi-job work for a single logical
// artifact: the K jobs proceed in parallel up to the worker-pool bound.
func (s *Server) startPortfolioWork(tr *obs.Trace, parent obs.SpanID, e *entry) {
	k := e.spec.Portfolio
	members := make([]*entry, k)
	memberIDs := make([]string, 0, k)
	for i := 0; i < k; i++ {
		me, _ := s.ensure(tr, parent, e.spec.memberSpec(i), e.priority)
		members[i] = me
		s.mu.Lock()
		if me.jobID != "" {
			memberIDs = append(memberIDs, me.jobID)
		}
		s.mu.Unlock()
	}
	s.mu.Lock()
	e.memberJobIDs = memberIDs
	s.mu.Unlock()

	// Fan-in off the caller's goroutine: member waits are generation-scale.
	// Each member keeps this goroutine registered as a waiter until its
	// result is read, so a member is never silently dropped mid-portfolio
	// by some other client's disconnect.
	go func() {
		structures := make([]*mps.Structure, k)
		var memberErr error
		for i, me := range members {
			<-me.ready
			if me.err != nil && memberErr == nil {
				memberErr = fmt.Errorf("portfolio member %d (%s): %w", i, me.key, me.err)
			}
			structures[i] = me.s
			me.waiters.Add(-1)
		}
		if memberErr != nil {
			s.publishPortfolio(e, nil, 0, memberErr)
			return
		}
		p, err := mps.NewPortfolioWeighted(structures, e.spec.resolvedMemberWeights())
		if err != nil {
			s.publishPortfolio(e, nil, 0, err)
			return
		}
		coverage := portfolioCoverage(p, e.spec.Seed)
		if s.cfg.Store != nil {
			s.persistWG.Add(1)
			go func() {
				defer s.persistWG.Done()
				s.persistPortfolio(e.spec, p, structures, coverage)
			}()
		}
		if snap, err := s.sched.RecordDone(e.key, mustSpecJSON(e.spec), jobs.Progress{
			Placements: p.NumPlacements(),
			Coverage:   coverage,
		}); err == nil {
			s.setJobID(e, snap.ID)
		}
		s.publishPortfolio(e, p, coverage, nil)
	}()
}

// portfolioCoverage is the merged (union) covered fraction estimate
// published for a portfolio. Monte-Carlo because member boxes overlap
// across members, so the union has no cheap exact form; the seed-derived
// rng keeps the listing deterministic for a given portfolio.
func portfolioCoverage(p *mps.Portfolio, seed int64) float64 {
	return p.CoverageMonteCarlo(rand.New(rand.NewSource(seed^0x706f7274)), 4096)
}

// mustSpecJSON marshals a normalized spec; by construction this cannot
// fail (plain struct of strings and ints).
func mustSpecJSON(spec GenerateSpec) json.RawMessage {
	b, err := json.Marshal(spec)
	if err != nil {
		panic(fmt.Sprintf("serve: encoding spec: %v", err))
	}
	return b
}

// publishPortfolio is publish for portfolio entries. Member generation
// stats live with the member entries; the portfolio's own stats carry the
// merged coverage, matching what the warm path reconstructs.
func (s *Server) publishPortfolio(e *entry, p *mps.Portfolio, coverage float64, err error) {
	var placements int
	var stats mps.Stats
	if p != nil {
		placements = p.NumPlacements()
		stats.FinalCoverage = coverage
	}
	s.mu.Lock()
	if e.done {
		s.mu.Unlock()
		return
	}
	e.p, e.stats, e.err, e.done = p, stats, err, true
	e.placements, e.coverage = placements, coverage
	if err != nil {
		s.removeLocked(e)
	}
	s.evictLocked()
	s.mu.Unlock()
	close(e.ready)
}

// loadPortfolioFromStore rehydrates a whole portfolio from the store's
// grouping row for Warm: members come from the cache when the structure
// warm pass already loaded them, else through the ordinary structure
// read-through. (nil, _, nil) means "not available" — no store, no
// grouping row, or a member that no longer loads (a cold request for the
// spec fans out and regenerates only what is missing).
func (s *Server) loadPortfolioFromStore(spec GenerateSpec) (*mps.Portfolio, mps.Stats, error) {
	if s.cfg.Store == nil {
		return nil, mps.Stats{}, nil
	}
	row, ok := s.cfg.Store.GetPortfolio(spec.key())
	if !ok {
		return nil, mps.Stats{}, nil
	}
	if row.K() != spec.Portfolio {
		s.logf("store: portfolio row %s has %d members, spec wants %d (ignoring row)",
			spec.key(), row.K(), spec.Portfolio)
		return nil, mps.Stats{}, nil
	}
	members := make([]*mps.Structure, spec.Portfolio)
	for i := range members {
		mspec := spec.memberSpec(i)
		// Cache first: on a warm start the structure pass (and on a cold
		// request, earlier traffic) often holds the member already — reuse
		// it so the portfolio shares the cached structure and its compiled
		// index instead of decoding a second copy from disk.
		if me, ok := s.lookup(mspec.key()); ok && me.s != nil {
			members[i] = me.s
			continue
		}
		st, _, err := s.loadFromStore(nil, 0, mspec)
		if err != nil || st == nil {
			return nil, mps.Stats{}, err
		}
		members[i] = st
	}
	p, err := mps.NewPortfolioWeighted(members, spec.resolvedMemberWeights())
	if err != nil {
		s.loadErrs.Add(1)
		s.logf("store: assembling portfolio %s: %v (regenerating)", spec.key(), err)
		return nil, mps.Stats{}, err
	}
	return p, mps.Stats{FinalCoverage: row.Coverage}, nil
}

// persistPortfolio records the portfolio grouping row, first making sure
// every member structure is persisted: member entries persist their own
// generations in the background, so a member may not have landed yet —
// the duplicate Put is atomic and idempotent (same key, same filename,
// same content). Runs off the request path under persistWG.
func (s *Server) persistPortfolio(spec GenerateSpec, p *mps.Portfolio, members []*mps.Structure, coverage float64) {
	memberKeys := make([]string, len(members))
	for i, m := range members {
		mspec := spec.memberSpec(i)
		memberKeys[i] = mspec.key()
		if _, ok := s.cfg.Store.Stat(memberKeys[i]); !ok {
			s.persist(mspec, m, m.Coverage())
		}
	}
	var memberWeights []string
	if wts := spec.resolvedMemberWeights(); wts != nil {
		memberWeights = make([]string, len(wts))
		for i, w := range wts {
			if !w.IsZero() {
				memberWeights[i] = w.Key()
			}
		}
	}
	_, err := s.cfg.Store.RecordPortfolio(store.PortfolioMeta{
		Key:           spec.key(),
		Circuit:       spec.Circuit,
		Seed:          spec.Seed,
		Options:       string(mustSpecJSON(spec)),
		Members:       memberKeys,
		MemberWeights: memberWeights,
		Placements:    p.NumPlacements(),
		Coverage:      coverage,
	})
	if err != nil {
		s.persistErrs.Add(1)
		s.logf("store: recording portfolio %s: %v", spec.key(), err)
	}
}

// structureFor returns the cached structure for the spec, scheduling its
// generation on first use and waiting for it. Concurrent callers for one
// key share a single run. The returned bool reports a true cache hit —
// the entry had already finished generating — not merely landing on an
// in-flight entry and waiting for it.
func (s *Server) structureFor(ctx context.Context, spec GenerateSpec) (*entry, bool, error) {
	tr := obs.TraceFrom(ctx)
	tr.Annotate(spec.key())
	cacheSpan := tr.StartSpan(obs.StageCache)
	cacheSpan.SetKey(spec.key())
	e, wasDone := s.ensure(tr, cacheSpan.SpanID(), spec, 0)
	// The cache span covers lookup plus any inline read-through ensure ran
	// on this goroutine (store_read/compile nest under it by design).
	s.metrics.endSpan(cacheSpan)
	defer e.waiters.Add(-1)
	select {
	case <-e.ready:
	default:
		waitSpan := tr.StartSpan(obs.StageJobWait)
		waitSpan.SetKey(e.key)
		defer func() { s.metrics.endSpan(waitSpan) }()
		select {
		case <-e.ready:
		case <-ctx.Done():
			// Queued-but-not-started work is droppable: if the requesting
			// client disconnects while its job is still queued and no other
			// request shares this entry, cancel the job and fail the entry
			// ourselves, so a later request retries. Portfolio entries have
			// no jobID until fan-in completes, so they never take this
			// branch: their member jobs run to completion and land in the
			// cache/store even if every portfolio client has gone — the
			// same keep-the-work semantics as a multi-waiter entry. The
			// waiter check, the
			// silent job cancellation (no submitter callbacks run inside
			// it, so holding s.mu is safe — lock order is always s.mu →
			// scheduler), and the cancel publication share one critical
			// section with waiter registration: a request that joined
			// before this point is always counted, and one arriving after
			// never finds the canceled entry. With other live waiters, or
			// once a worker holds the job, the run completes and lands in
			// the cache even if every client has gone.
			s.mu.Lock()
			if e.waiters.Load() <= 1 && e.jobID != "" && !e.done &&
				s.sched.CancelQueuedSilent(e.jobID) {
				e.err = fmt.Errorf("generation canceled while queued: %w", ctx.Err())
				e.done = true
				s.removeLocked(e)
				s.mu.Unlock()
				close(e.ready)
				return nil, false, e.err
			}
			s.mu.Unlock()
			<-e.ready
		}
	}
	if e.err != nil {
		return nil, false, e.err
	}
	return e, wasDone, nil
}

// publish records a finished (or failed) generation on its entry under
// the cache lock, so handlers that find the entry in the cache (rather
// than by waiting on ready) read a consistent result, then releases the
// waiters by closing ready. Failed generations are dropped in the same
// critical section so no request can observe a cached entry carrying
// another client's error — later requests miss and retry instead.
// Eviction re-runs because the entry was un-evictable while in flight, so
// the cache may be over its bound with no future miss to shrink it.
func (s *Server) publish(e *entry, st *mps.Structure, stats mps.Stats, err error) {
	var placements int
	var coverage float64
	if st != nil {
		placements = st.NumPlacements()
		// FinalCoverage is exact here: Compact (run inside mps.Generate)
		// merges fragments without changing covered volume, so no
		// recompute is needed.
		coverage = stats.FinalCoverage
	}
	s.mu.Lock()
	if e.done {
		// Already published (the sole-waiter silent-cancel path marks the
		// entry itself). Never double-publish — ready closes exactly once.
		s.mu.Unlock()
		return
	}
	e.s, e.stats, e.err, e.done = st, stats, err, true
	e.placements, e.coverage = placements, coverage
	if err != nil {
		s.removeLocked(e)
	}
	s.evictLocked()
	s.mu.Unlock()
	close(e.ready)
}

// loadFromStore rehydrates the structure for spec from the disk store.
// (nil, _, nil) means "not available" — no store configured or no entry
// for the key; an error means an entry existed but could not be loaded
// (corrupt file, circuit mismatch), which callers also treat as a miss
// after counting it. The read and compile phases record as store_read
// and compile spans on tr (nil for background callers), nested under
// parent.
func (s *Server) loadFromStore(tr *obs.Trace, parent obs.SpanID, spec GenerateSpec) (*mps.Structure, mps.Stats, error) {
	if s.cfg.Store == nil {
		return nil, mps.Stats{}, nil
	}
	key := spec.key()
	if _, ok := s.cfg.Store.Stat(key); !ok {
		return nil, mps.Stats{}, nil
	}
	circuit, err := mps.Benchmark(spec.Circuit)
	if err != nil {
		return nil, mps.Stats{}, err
	}
	readSpan := tr.StartSpanUnder(parent, obs.StageStoreRead)
	readSpan.SetKey(key)
	cs, meta, err := s.cfg.Store.Get(key, circuit)
	s.metrics.endSpan(readSpan)
	if err != nil {
		s.loadErrs.Add(1)
		s.logf("store: loading %s: %v (regenerating)", key, err)
		return nil, mps.Stats{}, err
	}
	st := &mps.Structure{Structure: cs}
	st.SetBackupKind(spec.backupKind())
	// Materialize the compiled query index before the entry publishes so
	// no instantiate request ever pays compile cost. Store files are v3
	// (placements + compiled tables), so this is a cache hit — core.Load
	// attached the index during decode; only a legacy v2 file compiles
	// here, still off the request path.
	compileSpan := tr.StartSpanUnder(parent, obs.StageCompile)
	st.Compiled()
	s.metrics.endSpan(compileSpan)
	// The manifest's coverage snapshot is all that survives a restart;
	// the rest of the generation stats belong to the process that ran
	// the annealer.
	return st, mps.Stats{FinalCoverage: meta.Coverage}, nil
}

// persist writes one finished generation to the disk store, recording the
// normalized spec in the manifest so a restarted server can rebuild the
// cache entry without guessing.
func (s *Server) persist(spec GenerateSpec, st *mps.Structure, coverage float64) {
	specJSON, err := json.Marshal(spec)
	if err != nil {
		s.persistErrs.Add(1)
		s.logf("store: encoding spec for %s: %v", spec.key(), err)
		return
	}
	_, err = s.cfg.Store.Put(store.Meta{
		Key:      spec.key(),
		Circuit:  spec.Circuit,
		Seed:     spec.Seed,
		Options:  string(specJSON),
		Coverage: coverage,
	}, st.Structure)
	if err != nil {
		s.persistErrs.Add(1)
		s.logf("store: persisting %s: %v", spec.key(), err)
	}
}

// Flush blocks until all background store writes have completed. Call it
// before shutdown (or before another process opens the store directory)
// so finished generations are never lost to a racing exit.
func (s *Server) Flush() { s.persistWG.Wait() }

// Warm preloads up to limit structures — and then up to limit portfolio
// groupings — from the disk store into the LRU, newest first (limit <= 0
// or above the cache size clamps to the cache size). It returns how many
// cache entries were loaded; entries that fail to parse or load are
// logged and skipped, never fatal — a warm start must not keep a daemon
// from booting.
func (s *Server) Warm(limit int) (int, error) {
	if s.cfg.Store == nil {
		return 0, fmt.Errorf("serve: no store configured")
	}
	if limit <= 0 || limit > s.cfg.CacheSize {
		limit = s.cfg.CacheSize
	}
	loaded := 0
	for _, meta := range s.cfg.Store.List() {
		if loaded >= limit {
			break
		}
		var spec GenerateSpec
		if err := json.Unmarshal([]byte(meta.Options), &spec); err != nil {
			s.logf("warm: manifest options for %s: %v", meta.Key, err)
			continue
		}
		if err := spec.normalize(); err != nil {
			s.logf("warm: spec for %s: %v", meta.Key, err)
			continue
		}
		if spec.key() != meta.Key {
			s.logf("warm: manifest key %s does not match its spec (key drift)", meta.Key)
			continue
		}
		st, stats, err := s.loadFromStore(nil, 0, spec)
		if err != nil || st == nil {
			continue // already logged and counted
		}
		e := &entry{key: meta.Key, spec: spec, ready: make(chan struct{})}
		e.s, e.stats, e.done = st, stats, true
		e.placements = st.NumPlacements()
		e.coverage = meta.Coverage
		// Consume the entry's start and close ready before publication so
		// a later request treats it as finished; the field writes above
		// happen-before any start.Do return or ready receive.
		e.start.Do(func() {})
		close(e.ready)
		// Record the materialization in the job history so /v1/jobs
		// answers for warm keys (idempotent across restarts when the
		// scheduler persists state).
		if snap, err := s.sched.RecordDone(meta.Key, []byte(meta.Options), jobs.Progress{
			Placements: e.placements,
			Coverage:   e.coverage,
		}); err == nil {
			e.jobID = snap.ID
		}
		s.mu.Lock()
		if _, exists := s.cache[meta.Key]; !exists {
			e.elem = s.order.PushBack(e) // List is newest-first, so the front stays newest
			s.cache[meta.Key] = e
			s.evictLocked()
			loaded++
		}
		s.mu.Unlock()
	}
	// Portfolios get their own budget of the same size: a store holding
	// limit structures must not starve every grouping row (the LRU may
	// transiently evict the coldest warmed structures to make room, which
	// is the right trade — a portfolio entry answers for K members).
	loaded += s.warmPortfolios(limit)
	return loaded, nil
}

// warmPortfolios preloads up to limit portfolios from the store's grouping
// rows, newest first. Member structures come from the cache when the
// structure pass just loaded them, else through the ordinary
// read-through; rows that fail to parse or whose members no longer load
// are logged and skipped, never fatal.
func (s *Server) warmPortfolios(limit int) int {
	loaded := 0
	for _, row := range s.cfg.Store.Portfolios() {
		if loaded >= limit {
			break
		}
		var spec GenerateSpec
		if err := json.Unmarshal([]byte(row.Options), &spec); err != nil {
			s.logf("warm: portfolio options for %s: %v", row.Key, err)
			continue
		}
		if err := spec.normalize(); err != nil {
			s.logf("warm: portfolio spec for %s: %v", row.Key, err)
			continue
		}
		if spec.key() != row.Key {
			s.logf("warm: portfolio manifest key %s does not match its spec (key drift)", row.Key)
			continue
		}
		p, stats, err := s.loadPortfolioFromStore(spec)
		if err != nil || p == nil {
			continue // already logged and counted where it failed
		}
		e := &entry{key: row.Key, spec: spec, ready: make(chan struct{})}
		e.p, e.stats, e.done = p, stats, true
		e.placements = p.NumPlacements()
		e.coverage = row.Coverage
		e.start.Do(func() {})
		close(e.ready)
		if snap, err := s.sched.RecordDone(row.Key, []byte(row.Options), jobs.Progress{
			Placements: e.placements,
			Coverage:   e.coverage,
		}); err == nil {
			e.jobID = snap.ID
		}
		s.mu.Lock()
		if _, exists := s.cache[row.Key]; !exists {
			e.elem = s.order.PushBack(e)
			s.cache[row.Key] = e
			s.evictLocked()
			loaded++
		}
		s.mu.Unlock()
	}
	return loaded
}

// ResumeInterrupted resubmits generation jobs that a previous process
// accepted but never finished (its scheduler loaded them from the state
// file). Jobs whose structures meanwhile exist in the store complete
// instantly through the read-through; the rest re-anneal. Returns how
// many were resubmitted; malformed records are logged and skipped.
func (s *Server) ResumeInterrupted() int {
	resumed := 0
	for _, snap := range s.sched.Interrupted() {
		var spec GenerateSpec
		if err := json.Unmarshal(snap.Spec, &spec); err != nil {
			s.logf("resume %s: decoding spec: %v", snap.ID, err)
			continue
		}
		if err := spec.normalize(); err != nil {
			s.logf("resume %s: %v", snap.ID, err)
			continue
		}
		if err := s.checkBudget(spec); err != nil {
			s.logf("resume %s: %v", snap.ID, err)
			continue
		}
		e, _ := s.ensure(nil, 0, spec, snap.Priority)
		e.waiters.Add(-1) // fire and forget: nobody waits on a resumed job
		resumed++
	}
	return resumed
}

func (s *Server) logf(format string, args ...any) {
	if s.cfg.Logf != nil {
		s.cfg.Logf(format, args...)
	}
}

// removeLocked deletes e from the cache and LRU order if still present.
// Callers must hold s.mu.
func (s *Server) removeLocked(e *entry) {
	if cur, ok := s.cache[e.key]; ok && cur == e {
		s.order.Remove(e.elem)
		delete(s.cache, e.key)
	}
}

// lookup returns the cached entry for key without generating. Only entries
// whose generation has finished successfully are returned; the done check
// under the mutex makes the entry's fields safe to read after return.
func (s *Server) lookup(key string) (*entry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.cache[key]
	if !ok || !e.done || e.err != nil {
		return nil, false
	}
	s.order.MoveToFront(e.elem)
	return e, true
}

// Handler returns the daemon's HTTP routing table. In cluster mode the
// peer endpoints are mounted and every response names the answering node
// (forwarded responses relay the remote's name instead).
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", s.handleHealth)
	mux.Handle("GET /metrics", s.metrics.reg.Handler())
	mux.HandleFunc("/v1/circuits", s.handleCircuits)
	mux.HandleFunc("/v1/backends", s.handleBackends)
	mux.HandleFunc("/v1/structures", s.handleStructures)
	mux.HandleFunc("/v1/instantiate", s.handleInstantiate)
	mux.HandleFunc("POST /v1/jobs", s.handleJobSubmit)
	mux.HandleFunc("GET /v1/jobs", s.handleJobList)
	mux.HandleFunc("GET /v1/jobs/{id}", s.handleJobGet)
	mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleJobCancel)
	mux.HandleFunc("GET /v1/debug/traces", s.handleTraceList)
	mux.HandleFunc("GET /v1/debug/traces/{id}", s.handleTraceGet)
	if s.cluster == nil {
		return s.instrument(mux)
	}
	mux.HandleFunc("GET /v1/cluster/structure", s.handleClusterStructure)
	mux.HandleFunc("POST /v1/cluster/accept", s.handleClusterAccept)
	mux.HandleFunc("POST /v1/cluster/rebalance", s.handleClusterRebalance)
	// instrument sits outermost so the latency histogram includes forward
	// relays and the slow-query log sees the final ServedBy header.
	return s.instrument(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(cluster.ServedByHeader, s.cluster.Self())
		mux.ServeHTTP(w, r)
	}))
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	resp := map[string]any{"status": "ok", "jobs": s.sched.Stats()}
	if s.cluster != nil {
		resp["cluster"] = s.cluster.Stats()
	}
	writeJSON(w, http.StatusOK, resp)
}

// circuitInfo is one row of the /v1/circuits listing.
type circuitInfo struct {
	Name      string `json:"name"`
	Blocks    int    `json:"blocks"`
	Nets      int    `json:"nets"`
	Terminals int    `json:"terminals"`
}

func (s *Server) handleCircuits(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	var out []circuitInfo
	for _, name := range circuits.Names() {
		c := circuits.MustByName(name)
		// Table 1's "Terminals" column counts block pins (see the
		// circuits package doc), so report PinCount, not boundary pads.
		out = append(out, circuitInfo{
			Name:      c.Name,
			Blocks:    c.N(),
			Nets:      len(c.Nets),
			Terminals: c.PinCount(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"circuits": out})
}

// backendInfo is one row of the /v1/backends listing.
type backendInfo struct {
	Name string `json:"name"`
	// Default marks the backend a spec without a backend field runs —
	// and the one whose artifacts carry no backend tag in their keys.
	Default bool `json:"default"`
}

// handleBackends lists the registered generation backends — the valid
// values of GenerateSpec.Backend — so clients can discover them instead
// of learning the set from 400 responses.
func (s *Server) handleBackends(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		writeError(w, http.StatusMethodNotAllowed, "use GET")
		return
	}
	var out []backendInfo
	for _, name := range mps.Backends() {
		out = append(out, backendInfo{Name: name, Default: name == mps.DefaultBackend})
	}
	writeJSON(w, http.StatusOK, map[string]any{"backends": out})
}

// StructureInfo describes one generated structure to clients.
type StructureInfo struct {
	Key        string       `json:"key"`
	Spec       GenerateSpec `json:"spec"`
	Cached     bool         `json:"cached"` // true when served from cache
	Placements int          `json:"placements"`
	Coverage   float64      `json:"coverage"`
	Stats      *mps.Stats   `json:"stats,omitempty"`
}

// PersistedInfo describes one structure in the disk store (a manifest
// row) to clients of GET /v1/structures.
type PersistedInfo struct {
	Key        string    `json:"key"`
	Circuit    string    `json:"circuit"`
	Seed       int64     `json:"seed"`
	Placements int       `json:"placements"`
	Coverage   float64   `json:"coverage,omitempty"`
	Bytes      int64     `json:"bytes"`
	Created    time.Time `json:"created"`
	// Cached reports whether the entry is also in the in-memory LRU right
	// now (a disk-only entry costs one load, not a regeneration).
	Cached bool `json:"cached"`
}

// clientError wraps validation failures so HTTP handlers can map them to
// 400 while generation failures stay 500.
type clientError struct{ err error }

func (e clientError) Error() string { return e.err.Error() }
func (e clientError) Unwrap() error { return e.err }

// generateErrorStatus maps a generate/structureFor error to its HTTP
// status: 400 for validation, 503 for requests shed while queued or
// cancelled mid-run and for a shutting-down scheduler (so the access log
// does not count shed load as server faults), 500 otherwise.
func generateErrorStatus(err error) int {
	var ce clientError
	switch {
	case errors.As(err, &ce):
		return http.StatusBadRequest
	case errors.Is(err, context.Canceled), errors.Is(err, context.DeadlineExceeded),
		errors.Is(err, jobs.ErrCancelled), errors.Is(err, jobs.ErrClosed):
		return http.StatusServiceUnavailable
	}
	return http.StatusInternalServerError
}

// Generate generates (or fetches from cache) the structure for spec — the
// single generation entry point shared by POST /v1/structures, cmd/mpsd's
// -preload flag, and tests.
func (s *Server) Generate(spec GenerateSpec) (StructureInfo, error) {
	return s.generate(context.Background(), spec)
}

// entryFor is the single validation + generation pipeline behind every
// generating path (POST /v1/structures, the /v1/instantiate inline-spec
// branch, Generate): normalize, budget-check, then fetch or generate.
// Validation failures come back as clientError; a request abandoned while
// queued for a generation slot is dropped.
func (s *Server) entryFor(ctx context.Context, spec GenerateSpec) (*entry, bool, error) {
	if err := spec.normalize(); err != nil {
		return nil, false, clientError{err}
	}
	if err := s.checkBudget(spec); err != nil {
		return nil, false, clientError{err}
	}
	return s.structureFor(ctx, spec)
}

// generate is Generate with a cancellation context.
func (s *Server) generate(ctx context.Context, spec GenerateSpec) (StructureInfo, error) {
	e, hit, err := s.entryFor(ctx, spec)
	if err != nil {
		return StructureInfo{}, err
	}
	stats := e.stats
	return StructureInfo{
		Key:        e.key,
		Spec:       e.spec,
		Cached:     hit,
		Placements: e.placements,
		Coverage:   e.coverage,
		Stats:      &stats,
	}, nil
}

func (s *Server) handleStructures(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		s.mu.Lock()
		out := []StructureInfo{}
		cached := map[string]bool{}
		for el := s.order.Front(); el != nil; el = el.Next() {
			e := el.Value.(*entry)
			if !e.done || e.err != nil {
				continue // still generating or failed
			}
			cached[e.key] = true
			out = append(out, StructureInfo{
				Key:        e.key,
				Spec:       e.spec,
				Cached:     true,
				Placements: e.placements,
				Coverage:   e.coverage,
			})
		}
		s.mu.Unlock()
		resp := map[string]any{"structures": out}
		if s.cfg.Store != nil {
			persisted := []PersistedInfo{}
			for _, m := range s.cfg.Store.List() {
				persisted = append(persisted, PersistedInfo{
					Key:        m.Key,
					Circuit:    m.Circuit,
					Seed:       m.Seed,
					Placements: m.Placements,
					Coverage:   m.Coverage,
					Bytes:      m.Bytes,
					Created:    m.Created,
					Cached:     cached[m.Key],
				})
			}
			resp["persisted"] = persisted
		}
		writeJSON(w, http.StatusOK, resp)
	case http.MethodPost:
		body, err := readBody(w, r, 4096)
		if err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		var spec GenerateSpec
		if err := decodeJSONBytes(body, &spec); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		// Cluster routing: generation belongs on the key's owner. A copy
		// normalizes for the key (generate re-validates the original).
		if norm := spec; norm.normalize() == nil &&
			s.maybeForward(w, r, norm.key(), false, body) {
			return
		}
		info, err := s.generate(r.Context(), spec)
		if err != nil {
			writeError(w, generateErrorStatus(err), err.Error())
			return
		}
		writeJSON(w, http.StatusOK, info)
	default:
		writeError(w, http.StatusMethodNotAllowed, "use GET or POST")
	}
}

// jobSubmitRequest is the POST /v1/jobs body: the generation spec plus an
// optional queue priority (higher runs first, FIFO within a level).
type jobSubmitRequest struct {
	Spec     GenerateSpec `json:"spec"`
	Priority int          `json:"priority,omitempty"`
}

// JobInfo is one job as reported by the /v1/jobs endpoints: the
// scheduler's snapshot plus whether the produced structure currently sits
// in the in-memory LRU (instantiate traffic against it is free).
type JobInfo struct {
	jobs.Snapshot
	Cached bool `json:"cached"`
}

// jobInfo decorates a snapshot with the cache state of its key.
func (s *Server) jobInfo(snap jobs.Snapshot) JobInfo {
	s.mu.Lock()
	e, ok := s.cache[snap.Key]
	cached := ok && e.done && e.err == nil
	s.mu.Unlock()
	return JobInfo{Snapshot: snap, Cached: cached}
}

// handleJobSubmit is POST /v1/jobs: validate the spec, submit it to the
// scheduler (deduplicating onto in-flight work for the same canonical
// key), and return the job immediately — 202 while queued or running, 200
// when the structure already existed (memory or disk) and the job was
// born done.
func (s *Server) handleJobSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := readBody(w, r, 4096)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var req jobSubmitRequest
	if err := decodeJSONBytes(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	spec := req.Spec
	if err := spec.normalize(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Cluster routing: the job — and its id, progress, and artifact —
	// lives on the key's owner. The relayed response's ServedBy header
	// names the node to poll GET /v1/jobs/{id} on (job ids are
	// node-local).
	if s.maybeForward(w, r, spec.key(), false, body) {
		return
	}
	if err := s.checkBudget(spec); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	e, _ := s.ensure(obs.TraceFrom(r.Context()), 0, spec, req.Priority)
	defer e.waiters.Add(-1)
	s.mu.Lock()
	id := e.jobID
	memberIDs := append([]string(nil), e.memberJobIDs...)
	s.mu.Unlock()
	// Portfolio submissions with members still generating have no job of
	// their own yet (fan-in records it when all K land): answer with the
	// member jobs, which carry the live progress a client can poll.
	if spec.Portfolio > 1 && id == "" {
		members := make([]JobInfo, 0, len(memberIDs))
		done := 0
		for _, mid := range memberIDs {
			if snap, ok := s.sched.Get(mid); ok {
				if snap.State.Terminal() {
					done++
				}
				members = append(members, s.jobInfo(snap))
			}
		}
		writeJSON(w, http.StatusAccepted, map[string]any{
			"key":          e.key,
			"spec":         spec,
			"portfolio":    spec.Portfolio,
			"members_done": done,
			"members":      members,
		})
		return
	}
	snap, ok := s.sched.Get(id)
	if !ok {
		// No job backs the entry: its submission failed (scheduler closed)
		// or the record was pruned. ready is closed on the failure path,
		// so this read does not block on a healthy server.
		select {
		case <-e.ready:
			if e.err != nil {
				writeError(w, generateErrorStatus(e.err), e.err.Error())
				return
			}
			writeError(w, http.StatusInternalServerError,
				fmt.Sprintf("job record for %s no longer retained", e.key))
		case <-r.Context().Done():
			writeError(w, http.StatusServiceUnavailable, "canceled")
		}
		return
	}
	status := http.StatusAccepted
	if snap.State.Terminal() {
		status = http.StatusOK
	}
	writeJSON(w, status, s.jobInfo(snap))
}

// handleJobList is GET /v1/jobs: every known job, newest first, plus
// scheduler queue counts.
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	list := s.sched.List()
	out := make([]JobInfo, len(list))
	for i, snap := range list {
		out[i] = s.jobInfo(snap)
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"jobs":  out,
		"stats": s.sched.Stats(),
	})
}

// handleJobGet is GET /v1/jobs/{id}: one job's live snapshot — while the
// generation runs, Progress advances with every explorer iteration.
func (s *Server) handleJobGet(w http.ResponseWriter, r *http.Request) {
	snap, ok := s.sched.Get(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown job %q", r.PathValue("id")))
		return
	}
	writeJSON(w, http.StatusOK, s.jobInfo(snap))
}

// handleJobCancel is DELETE /v1/jobs/{id}: cooperative cancellation. A
// queued job never runs; a running job's context ends and the nested
// annealers stop within one proposal — the handler waits briefly so the
// response usually carries the terminal state. Cancelling a finished job
// is a no-op returning its snapshot.
func (s *Server) handleJobCancel(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	snap, err := s.sched.Cancel(id)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	if !snap.State.Terminal() {
		ctx, cancel := context.WithTimeout(r.Context(), 5*time.Second)
		defer cancel()
		if final, err := s.sched.Wait(ctx, id); err == nil {
			snap = final
		}
	}
	writeJSON(w, http.StatusOK, s.jobInfo(snap))
}

// instantiateRequest is a batched query: address a structure by cache key
// (from POST /v1/structures) or inline spec, plus the dimension queries.
type instantiateRequest struct {
	Key  string        `json:"key,omitempty"`
	Spec *GenerateSpec `json:"spec,omitempty"`
	// Weights optionally routes every query in the batch by weighted
	// per-objective cost over the covering portfolio members (see
	// mps.DimQuery.Weights); a query's own weights override it. Omitted
	// means the historical smallest-area rule. Query weights never change
	// which structures exist — only which member answers — so they are
	// deliberately absent from the cache key.
	Weights *WeightsSpec `json:"weights,omitempty"`
	Queries []dimQuery   `json:"queries"`
}

type dimQuery struct {
	Ws []int `json:"ws"`
	Hs []int `json:"hs"`
	// Weights optionally routes this one query by weighted cost,
	// overriding the request-level vector.
	Weights *WeightsSpec `json:"weights,omitempty"`
}

// queryWeights resolves the batch's effective per-query routing weights,
// rejecting invalid vectors before any instantiation work.
func (req instantiateRequest) queryWeights() ([]mps.Weights, error) {
	if err := req.Weights.weights().Validate(); err != nil {
		return nil, fmt.Errorf("weights: %w", err)
	}
	ws := make([]mps.Weights, len(req.Queries))
	for i, q := range req.Queries {
		if err := q.Weights.weights().Validate(); err != nil {
			return nil, fmt.Errorf("queries[%d].weights: %w", i, err)
		}
		if w := q.Weights.weights(); !w.IsZero() {
			ws[i] = w
		} else {
			ws[i] = req.Weights.weights()
		}
	}
	return ws, nil
}

// queryResult is one query's answer. Error is set instead of anchors when
// the query itself was invalid (e.g. out-of-bounds dimensions). Member is
// the portfolio member that answered (-1 when the backup did); for
// single-structure entries it is 0 on stored answers, so placement_id is
// always member-local to member. See mps.BatchResult.
type queryResult struct {
	X           []int  `json:"x,omitempty"`
	Y           []int  `json:"y,omitempty"`
	PlacementID int    `json:"placement_id"`
	Member      int    `json:"member"`
	FromBackup  bool   `json:"from_backup"`
	Error       string `json:"error,omitempty"`
}

func (s *Server) handleInstantiate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "use POST")
		return
	}
	body, err := readBody(w, r, 4096+int64(s.cfg.MaxBatch)*maxQueryBytes)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	var req instantiateRequest
	if err := decodeJSONBytes(body, &req); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(req.Queries) == 0 {
		writeError(w, http.StatusBadRequest, "no queries")
		return
	}
	if len(req.Queries) > s.cfg.MaxBatch {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("batch of %d exceeds max %d", len(req.Queries), s.cfg.MaxBatch))
		return
	}
	qw, err := req.queryWeights()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}

	// Cluster routing: instantiate is a read — hot keys may fan out
	// across the replica set instead of pinning the owner. A replica that
	// lacks the structure pulls the built artifact from the owner (the
	// entry pipeline's peer read-through), so fan-out never duplicates
	// generation while the owner is reachable.
	ctx := r.Context()
	if forwarded(r) {
		ctx = context.WithValue(ctx, forwardedCtxKey{}, true)
	}

	var e *entry
	switch {
	case req.Key != "" && req.Spec != nil:
		// Refuse ambiguous addressing rather than silently answering from
		// one structure while the client meant the other.
		writeError(w, http.StatusBadRequest, "provide key or spec, not both")
		return
	case req.Key != "":
		if s.maybeForward(w, r, req.Key, true, body) {
			return
		}
		resolved, err := s.entryForKey(ctx, req.Key)
		if err != nil {
			writeError(w, generateErrorStatus(err), err.Error())
			return
		}
		if resolved == nil {
			writeError(w, http.StatusNotFound,
				fmt.Sprintf("structure %q not cached — POST /v1/structures first", req.Key))
			return
		}
		e = resolved
	case req.Spec != nil:
		if norm := *req.Spec; norm.normalize() == nil &&
			s.maybeForward(w, r, norm.key(), true, body) {
			return
		}
		var err error
		e, _, err = s.entryFor(ctx, *req.Spec)
		if err != nil {
			writeError(w, generateErrorStatus(err), err.Error())
			return
		}
	default:
		writeError(w, http.StatusBadRequest, "need key or spec")
		return
	}

	queries := make([]mps.DimQuery, len(req.Queries))
	for i, q := range req.Queries {
		queries[i] = mps.DimQuery{Ws: q.Ws, Hs: q.Hs, Weights: qw[i]}
	}
	// The batch slot wraps only the CPU fan-out — holding it across decode
	// or a cold generation would let a handful of slow requests starve
	// sub-millisecond cached traffic. Requests shed while queued get a 503
	// so the access log does not count shed load as success. Per-request
	// decode memory is bounded by MaxBatch (see withDefaults).
	tr := obs.TraceFrom(ctx)
	tr.Annotate(e.key)
	slotSpan := tr.StartSpan(obs.StageBatchWait)
	select {
	case s.batchSlots <- struct{}{}:
		s.metrics.endSpan(slotSpan)
		defer func() { <-s.batchSlots }()
	case <-r.Context().Done():
		s.metrics.endSpan(slotSpan)
		writeError(w, http.StatusServiceUnavailable, "canceled while queued for a batch slot")
		return
	}
	instSpan := tr.StartSpan(obs.StageInstantiate)
	instSpan.SetKey(e.key)
	batch := e.batcher().InstantiateBatchWorkers(queries, s.cfg.Workers)
	s.metrics.endSpan(instSpan)

	results := make([]queryResult, len(batch))
	served := 0
	for i, br := range batch {
		if br.Err != nil {
			results[i] = queryResult{PlacementID: -1, Member: -1, Error: br.Err.Error()}
			continue
		}
		served++
		results[i] = queryResult{
			X:           br.X,
			Y:           br.Y,
			PlacementID: br.PlacementID,
			Member:      br.Member,
			FromBackup:  br.FromBackup,
		}
	}
	encSpan := tr.StartSpan(obs.StageEncode)
	writeJSON(w, http.StatusOK, map[string]any{
		"key":     e.key,
		"served":  served,
		"results": results,
	})
	s.metrics.endSpan(encSpan)
}

// maxQueryBytes is a generous upper bound on the JSON size of one
// dimension query (two int arrays for the largest benchmark's 24 blocks).
const maxQueryBytes = 1024

// readBody reads the request body whole, refusing bodies over limit
// bytes. Handlers that may forward read the body first so the same bytes
// can replay to a peer verbatim; the limits bound per-request memory
// exactly as the old streaming decoder did.
func readBody(w http.ResponseWriter, r *http.Request, limit int64) ([]byte, error) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, limit))
	if err != nil {
		return nil, fmt.Errorf("bad request body: %w", err)
	}
	return body, nil
}

// decodeJSONBytes strictly decodes an already-read body into v.
func decodeJSONBytes(body []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(v); err != nil {
		return fmt.Errorf("bad request body: %w", err)
	}
	return nil
}

// writeJSON emits compact JSON: instantiate responses carry up to MaxBatch
// results, so pretty-printing would roughly double hot-path bytes.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, msg string) {
	writeJSON(w, status, map[string]string{"error": strings.TrimSpace(msg)})
}
