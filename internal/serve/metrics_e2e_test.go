package serve

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"mps/internal/cluster"
	"mps/internal/loadgen"
)

// scrapeMetrics GETs a node's /metrics over its real listener and parses
// it with the same parser mpsload -scrape uses, so this test covers the
// whole pipeline an operator's Prometheus would: render, transport, parse.
func scrapeMetrics(t *testing.T, baseURL string) *loadgen.Scrape {
	t.Helper()
	resp, err := http.Get(baseURL + "/metrics")
	if err != nil {
		t.Fatalf("GET %s/metrics: %v", baseURL, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s/metrics: status %d", baseURL, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("/metrics content type %q, want text/plain exposition", ct)
	}
	s, err := loadgen.ParseProm(resp.Body)
	if err != nil {
		t.Fatalf("parsing %s/metrics: %v", baseURL, err)
	}
	return s
}

// hasSeries reports whether the scrape holds any series whose rendered
// identity starts with prefix (use "name{" to demand a labeled child).
func hasSeries(s *loadgen.Scrape, prefix string) bool {
	for id := range s.Values {
		if strings.HasPrefix(id, prefix) {
			return true
		}
	}
	return false
}

// TestClusterMetricsEndToEnd drives real traffic through a two-node fleet
// and checks the /metrics surface end to end: both nodes export the key
// families, cross-node accounting agrees (the entry node's forward count
// equals the peer's forwarded-served count), per-stage attribution lands
// on the node that did the work, and the job queue gauges read drained
// once the traffic completes.
func TestClusterMetricsEndToEnd(t *testing.T) {
	fleet := newTestFleet(t, fleetConfig{
		n: 2,
		cluster: func(cfg *cluster.Config) {
			// One replica per key: every read of a peer-owned key forwards,
			// which is what makes forward/forwarded-served counts equal.
			cfg.Replicas = 1
		},
		serve: func(cfg *Config) {
			// A 1ns threshold makes every request a slow query, so the
			// slow-query counter and log line are on the tested path.
			cfg.SlowQuery = time.Nanosecond
		},
	})
	entry, peer := fleet.nodes[0], fleet.nodes[1]
	spec := fleet.specOwnedBy(t, 1, 700)

	// One forwarded generate plus several forwarded instantiates through
	// the non-owner, and one instantiate served by the owner directly.
	status, _, body := doClusterJSON(t, http.MethodPost, entry.url+"/v1/structures", spec, nil)
	if status != http.StatusOK {
		t.Fatalf("generate via entry: %d %s", status, body)
	}
	instReq := map[string]any{"spec": spec, "queries": []any{testQuery(t, 0), testQuery(t, 1)}}
	const instantiates = 4
	for i := 0; i < instantiates; i++ {
		if status, _, body := doClusterJSON(t, http.MethodPost, entry.url+"/v1/instantiate", instReq, nil); status != http.StatusOK {
			t.Fatalf("instantiate %d via entry: %d %s", i, status, body)
		}
	}
	if status, _, body := doClusterJSON(t, http.MethodPost, peer.url+"/v1/instantiate", instReq, nil); status != http.StatusOK {
		t.Fatalf("instantiate via owner: %d %s", status, body)
	}

	entryScrape := scrapeMetrics(t, entry.url)
	peerScrape := scrapeMetrics(t, peer.url)

	// Every key family is present on both nodes — the same check the CI
	// cluster smoke greps for against real daemons.
	for _, prefix := range []string{
		"mps_http_requests_total{",
		"mps_http_request_duration_seconds_bucket{",
		"mps_http_request_duration_seconds_count{",
		"mps_stage_ops_total{",
		"mps_jobs_transitions_total{",
		"mps_jobs_running",
		"mps_cluster_events_total{",
		"mps_cluster_ring_share{",
		"mps_cache_entries",
		"mps_generation_runs_total",
	} {
		for name, s := range map[string]*loadgen.Scrape{"entry": entryScrape, "peer": peerScrape} {
			if !hasSeries(s, prefix) {
				t.Errorf("%s node /metrics missing series %s...", name, prefix)
			}
		}
	}

	// Cross-node accounting: every client request the entry node forwarded
	// was served by the peer as forwarded traffic — and the scrape agrees
	// with the in-memory cluster stats it is derived from.
	wantForwards := 1 + instantiates
	if got := entryScrape.Sum("mps_cluster_events_total", map[string]string{"event": "forward"}); got != float64(wantForwards) {
		t.Errorf("entry forward events = %v, want %d", got, wantForwards)
	}
	if got := int(entry.c.Stats().Forwards); got != wantForwards {
		t.Errorf("entry in-memory forwards = %d, want %d", got, wantForwards)
	}
	if fwd, served := entryScrape.Sum("mps_cluster_events_total", map[string]string{"event": "forward"}),
		peerScrape.Sum("mps_forwarded_served_total", nil); fwd != served {
		t.Errorf("entry forwards (%v) != peer forwarded-served (%v): peer-protocol traffic leaked into the client counter", fwd, served)
	}
	if got := entryScrape.Sum("mps_forwarded_served_total", nil); got != 0 {
		t.Errorf("entry forwarded-served = %v, want 0 (no one forwards to a non-owner)", got)
	}

	// The annealing ran once, on the owner — the migrated healthz counter
	// reads the same through /metrics.
	if got := peerScrape.Sum("mps_generation_runs_total", nil); got != 1 {
		t.Errorf("peer generation runs = %v, want 1", got)
	}
	if got := entryScrape.Sum("mps_generation_runs_total", nil); got != 0 {
		t.Errorf("entry generation runs = %v, want 0", got)
	}

	// Stage attribution follows the work: the entry node spent its time
	// forwarding, the owner instantiating and encoding.
	if got := entryScrape.Sum("mps_stage_ops_total", map[string]string{"stage": "forward"}); got < float64(wantForwards) {
		t.Errorf("entry forward spans = %v, want >= %d", got, wantForwards)
	}
	for _, stage := range []string{"instantiate", "encode", "job_wait"} {
		if got := peerScrape.Sum("mps_stage_ops_total", map[string]string{"stage": stage}); got == 0 {
			t.Errorf("peer recorded no %s spans", stage)
		}
	}

	// Request accounting: the entry node saw the generate and the forwarded
	// instantiates on their routes, all 200s; the histogram count matches.
	if got := entryScrape.Sum("mps_http_requests_total", map[string]string{"route": "structures", "code": "200"}); got != 1 {
		t.Errorf("entry structures requests = %v, want 1", got)
	}
	if got := entryScrape.Sum("mps_http_requests_total", map[string]string{"route": "instantiate", "code": "200"}); got != float64(instantiates) {
		t.Errorf("entry instantiate requests = %v, want %d", got, instantiates)
	}
	if got := entryScrape.Sum("mps_http_request_duration_seconds_count", map[string]string{"route": "instantiate"}); got != float64(instantiates) {
		t.Errorf("entry instantiate histogram count = %v, want %d", got, instantiates)
	}
	if d, ok := entryScrape.HistogramQuantile("mps_http_request_duration_seconds",
		map[string]string{"route": "instantiate"}, 0.5); !ok || d <= 0 {
		t.Errorf("entry instantiate p50 = (%v, %v), want a positive reconstructed quantile", d, ok)
	}

	// The queue drained: traffic is done, so no priority holds queued jobs
	// and nothing is running (gauges are non-negative, so a zero sum means
	// every series is zero or absent).
	for name, s := range map[string]*loadgen.Scrape{"entry": entryScrape, "peer": peerScrape} {
		if got := s.Sum("mps_jobs_queue_depth", nil); got != 0 {
			t.Errorf("%s node queue depth = %v after traffic drained, want 0", name, got)
		}
		if got := s.Sum("mps_jobs_running", nil); got != 0 {
			t.Errorf("%s node running jobs = %v after traffic drained, want 0", name, got)
		}
	}

	// The peer completed at least the generate job through the scheduler.
	if got := peerScrape.Sum("mps_jobs_transitions_total", map[string]string{"event": "done"}); got < 1 {
		t.Errorf("peer completed jobs = %v, want >= 1", got)
	}

	// The 1ns threshold flagged everything as slow on both nodes.
	for name, s := range map[string]*loadgen.Scrape{"entry": entryScrape, "peer": peerScrape} {
		if got := s.Sum("mps_slow_queries_total", nil); got == 0 {
			t.Errorf("%s node slow-query counter never fired under a 1ns threshold", name)
		}
	}

	// Contacting the peer materialized its breaker series, reading closed.
	if !hasSeries(entryScrape, "mps_cluster_breaker_state{") {
		t.Error("entry node exports no breaker series despite contacting its peer")
	} else if got := entryScrape.Sum("mps_cluster_breaker_state", map[string]string{"peer": peer.c.Self()}); got != 0 {
		t.Errorf("breaker state for healthy peer = %v, want 0 (closed)", got)
	}

	// Ring shares sum to 1 on each node (both export the full membership).
	for name, s := range map[string]*loadgen.Scrape{"entry": entryScrape, "peer": peerScrape} {
		if got := s.Sum("mps_cluster_ring_share", nil); got < 0.999 || got > 1.001 {
			t.Errorf("%s node ring shares sum to %v, want 1", name, got)
		}
	}

	// /metrics observes itself: the scrape above lands in the route
	// counter, visible to the next scrape.
	second := scrapeMetrics(t, entry.url)
	if got := second.Sum("mps_http_requests_total", map[string]string{"route": "metrics"}); got < 1 {
		t.Errorf("metrics route count = %v after a scrape, want >= 1", got)
	}
}
