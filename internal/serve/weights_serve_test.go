package serve

// Tests for the weighted-objective serving surface: spec-key
// compatibility (weightless and default-weighted specs keep their
// historical keys byte for byte), one-place validation, persistence of
// member weights, and weight-aware query routing end to end through
// /v1/instantiate.

import (
	"math"
	"math/rand"
	"net/http"
	"strings"
	"testing"

	"mps"
	"mps/internal/circuits"
)

// weightedPortfolioSpec is a seconds-scale K=2 portfolio with explicitly
// weight-diverse members: member 0 area-heavy, member 1 wire-heavy.
func weightedPortfolioSpec(seed int64) GenerateSpec {
	spec := testSpec(seed)
	spec.Portfolio = 2
	spec.MemberWeights = []WeightsSpec{{Area: 1}, {Wire: 1}}
	return spec
}

// TestSpecKeyWeightsCompat pins the weight half of the spec-key
// compatibility rule: weightings canonWeights can fold away (the default
// objective, in any spelling) leave the key byte-identical to the
// pre-weights key, while genuinely non-default weightings get |w= / |mw=
// tags, and member specs promote their resolved vector so weighted
// members dedup against identically-weighted single-structure specs.
func TestSpecKeyWeightsCompat(t *testing.T) {
	legacyKey := "circ01|seed=1|it=20|bdio=40|chains=1|maxp=0|backup=tree"

	balanced := testSpec(1)
	balanced.Weights = &WeightsSpec{Wire: 1, Area: 0.05}
	if err := balanced.normalize(); err != nil {
		t.Fatal(err)
	}
	if got := balanced.key(); got != legacyKey {
		t.Errorf("explicit default-weights key = %q, want the pre-weights key %q", got, legacyKey)
	}
	if balanced.Weights != nil {
		t.Error("explicit default weights did not fold to nil")
	}

	wire := testSpec(1)
	wire.Weights = &WeightsSpec{Wire: 1, Area: 0.01}
	if err := wire.normalize(); err != nil {
		t.Fatal(err)
	}
	if got, want := wire.key(), legacyKey+"|w=1,0.01,0"; got != want {
		t.Errorf("wire-heavy key = %q, want %q", got, want)
	}

	pf := weightedPortfolioSpec(1)
	if err := pf.normalize(); err != nil {
		t.Fatal(err)
	}
	if got, want := pf.key(), legacyKey+"|k=2|mw=0,1,0;1,0,0"; got != want {
		t.Errorf("weight-diverse portfolio key = %q, want %q", got, want)
	}
	m0 := pf.memberSpec(0)
	if !strings.Contains(m0.key(), "|w=0,1,0") {
		t.Errorf("member 0 key %q did not promote the area-heavy vector", m0.key())
	}
	for _, frag := range []string{"|k=", "|mw="} {
		if strings.Contains(m0.key(), frag) {
			t.Errorf("member key %q kept portfolio fragment %q", m0.key(), frag)
		}
	}

	// All-default member entries with no spec-level vector fold away
	// entirely: the spec is the historical weightless portfolio.
	folded := testSpec(1)
	folded.Portfolio = 2
	folded.MemberWeights = []WeightsSpec{{Wire: 1, Area: 0.05}, {Wire: 1, Area: 0.05}}
	if err := folded.normalize(); err != nil {
		t.Fatal(err)
	}
	if got, want := folded.key(), legacyKey+"|k=2"; got != want {
		t.Errorf("all-default member_weights key = %q, want the weightless %q", got, want)
	}
	if folded.MemberWeights != nil {
		t.Error("all-default member_weights did not fold away")
	}
	// And its member specs are plain weightless single-structure specs —
	// they dedup against pre-weights artifacts.
	if got, want := folded.memberSpec(1).key(), "circ01|seed=104730|it=20|bdio=40|chains=1|maxp=0|backup=tree"; got != want {
		t.Errorf("folded member 1 key = %q, want %q", got, want)
	}

	// A spec-level vector with one overriding member entry: zero entries
	// stay empty in the |mw= tag (they inherit |w=), and each member spec
	// promotes its resolved vector.
	mixed := testSpec(1)
	mixed.Portfolio = 2
	mixed.Weights = &WeightsSpec{Wire: 1, Area: 0.01}
	mixed.MemberWeights = []WeightsSpec{{}, {Aspect: 1}}
	if err := mixed.normalize(); err != nil {
		t.Fatal(err)
	}
	if got, want := mixed.key(), legacyKey+"|w=1,0.01,0|k=2|mw=;0,0,1"; got != want {
		t.Errorf("mixed weights key = %q, want %q", got, want)
	}
	if !strings.Contains(mixed.memberSpec(0).key(), "|w=1,0.01,0") {
		t.Errorf("mixed member 0 key %q did not inherit the spec vector", mixed.memberSpec(0).key())
	}
	if !strings.Contains(mixed.memberSpec(1).key(), "|w=0,0,1") {
		t.Errorf("mixed member 1 key %q did not take its override", mixed.memberSpec(1).key())
	}
}

// TestBadWeightsRejected extends the one-place validation table to the
// weights fields: invalid vectors and malformed member_weights shapes
// come back as one 400 naming the constraint, before any generation.
func TestBadWeightsRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	twoMembers := testSpec(1)
	twoMembers.Portfolio = 2
	badMember := twoMembers
	badMember.MemberWeights = []WeightsSpec{{Area: -0.5}, {}}
	shortList := testSpec(1)
	shortList.Portfolio = 3
	shortList.MemberWeights = []WeightsSpec{{Wire: 1}, {Area: 1}}
	single := testSpec(1)
	single.MemberWeights = []WeightsSpec{{Wire: 1}}
	negative := testSpec(1)
	negative.Weights = &WeightsSpec{Wire: -1}

	cases := []struct {
		name    string
		spec    GenerateSpec
		mention string
	}{
		{"negative weights", negative, "weights must be finite and non-negative"},
		{"negative member weights", badMember, "member_weights[0]"},
		{"member weights on single structure", single, "member_weights given for a single-structure spec"},
		{"member weights length", shortList, "2 member_weights for a 3-member portfolio"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postJSON(t, ts.URL+"/v1/structures", tc.spec, nil)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body: %s)", status, body)
			}
			if !strings.Contains(body, tc.mention) {
				t.Errorf("400 body %q does not mention %q", body, tc.mention)
			}
		})
	}

	// Non-finite vectors cannot ride JSON at all, so pin them at the
	// validation layer every HTTP path funnels through.
	for _, v := range []float64{math.NaN(), math.Inf(1)} {
		spec := testSpec(1)
		spec.Weights = &WeightsSpec{Area: v}
		if err := spec.normalize(); err == nil ||
			!strings.Contains(err.Error(), "weights must be finite and non-negative") {
			t.Errorf("weights %v normalized with err %v, want the finiteness constraint", v, err)
		}
	}
}

// TestInstantiateWeightedRouting is the acceptance path for weight-aware
// query routing: one weight-diverse portfolio, the same dimension pool
// queried under wire-only and area-only weights through /v1/instantiate,
// must route at least one query to different members — and invalid query
// weights are a 400 before any instantiation work.
func TestInstantiateWeightedRouting(t *testing.T) {
	_, ts := newTestServer(t, Config{Logf: t.Logf})
	spec := weightedPortfolioSpec(1)

	var info StructureInfo
	if code, body := postJSON(t, ts.URL+"/v1/structures", spec, &info); code != http.StatusOK {
		t.Fatalf("generate weighted portfolio: %d %s", code, body)
	}
	if !strings.Contains(info.Key, "|mw=0,1,0;1,0,0") {
		t.Fatalf("weighted portfolio key %q lacks the member-weight tag", info.Key)
	}

	// Invalid weights — request-level and per-query — are one 400 naming
	// the offending field.
	code, body := postJSON(t, ts.URL+"/v1/instantiate", map[string]any{
		"key":     info.Key,
		"weights": map[string]float64{"wire": -1},
		"queries": []map[string][]int{testQuery(t, 0)},
	}, nil)
	if code != http.StatusBadRequest || !strings.Contains(body, "weights") {
		t.Fatalf("negative request weights: %d %s, want 400 naming weights", code, body)
	}
	badQuery := map[string]any{"ws": testQuery(t, 0)["ws"], "hs": testQuery(t, 0)["hs"],
		"weights": map[string]float64{"area": -2}}
	code, body = postJSON(t, ts.URL+"/v1/instantiate", map[string]any{
		"key": info.Key, "queries": []any{badQuery},
	}, nil)
	if code != http.StatusBadRequest || !strings.Contains(body, "queries[0].weights") {
		t.Fatalf("negative query weights: %d %s, want 400 naming queries[0].weights", code, body)
	}

	// The same random in-bounds dimension pool, batched twice with
	// opposite objectives via the request-level vector. Divergence needs a
	// query both members cover with opposite (wire, area) orderings —
	// a few per thousand at these budgets — so the pool is large; the
	// fixed seeds make the outcome deterministic.
	c := circuits.MustByName("circ01")
	queries := make([]map[string][]int, 0, 2000)
	rng := rand.New(rand.NewSource(41))
	for q := 0; q < 2000; q++ {
		ws := make([]int, c.N())
		hs := make([]int, c.N())
		for i, b := range c.Blocks {
			ws[i] = b.WMin + rng.Intn(b.WMax-b.WMin+1)
			hs[i] = b.HMin + rng.Intn(b.HMax-b.HMin+1)
		}
		queries = append(queries, map[string][]int{"ws": ws, "hs": hs})
	}
	type instOut struct {
		Served  int `json:"served"`
		Results []struct {
			Member     int  `json:"member"`
			FromBackup bool `json:"from_backup"`
		} `json:"results"`
	}
	route := func(weights map[string]float64) instOut {
		t.Helper()
		var out instOut
		req := map[string]any{"key": info.Key, "queries": queries}
		if weights != nil {
			req["weights"] = weights
		}
		if code, body := postJSON(t, ts.URL+"/v1/instantiate", req, &out); code != http.StatusOK {
			t.Fatalf("weighted instantiate: %d %s", code, body)
		}
		return out
	}
	wireOut := route(map[string]float64{"wire": 1})
	areaOut := route(map[string]float64{"area": 1})

	diverged := 0
	for i := range queries {
		wm, am := wireOut.Results[i].Member, areaOut.Results[i].Member
		if wm < 0 || am < 0 {
			continue // uncovered — both fall back identically
		}
		if wm != am {
			diverged++
		}
	}
	if diverged == 0 {
		t.Error("no query routed to different members under wire-only vs area-only weights")
	}
	t.Logf("%d/%d covered queries diverged across objectives", diverged, len(queries))
}

// TestWeightedPortfolioWarmRestart: the manifest's grouping row records
// each member's generation weight key, and a restarted server rebuilds
// the portfolio with the same member-weight metadata — warm starts keep
// the weight record the generating server published.
func TestWeightedPortfolioWarmRestart(t *testing.T) {
	dir := t.TempDir()
	spec := weightedPortfolioSpec(5)

	s1 := New(Config{Store: openStore(t, dir), Logf: t.Logf})
	t.Cleanup(s1.Close)
	info, err := s1.Generate(spec)
	if err != nil {
		t.Fatal(err)
	}
	s1.Flush()

	st := openStore(t, dir)
	rows := st.Portfolios()
	if len(rows) != 1 {
		t.Fatalf("persisted portfolio rows: %+v, want one", rows)
	}
	if got, want := strings.Join(rows[0].MemberWeights, ";"), "0,1,0;1,0,0"; got != want {
		t.Fatalf("persisted member weights = %q, want %q", got, want)
	}

	s2, _ := newTestServer(t, Config{Store: st, Logf: t.Logf})
	if _, err := s2.Warm(-1); err != nil {
		t.Fatal(err)
	}
	e, ok := s2.lookup(info.Key)
	if !ok || e.p == nil {
		t.Fatalf("warmed server lacks portfolio entry %q", info.Key)
	}
	got := e.p.MemberWeights()
	if len(got) != 2 || got[0] != (mps.Weights{Area: 1}) || got[1] != (mps.Weights{Wire: 1}) {
		t.Errorf("restored member weights = %+v, want [{Area:1} {Wire:1}]", got)
	}
	if runs := s2.genRuns.Load(); runs != 0 {
		t.Errorf("warm restart ran %d generations, want 0", runs)
	}
}
