// Trace debug endpoints: GET /v1/debug/traces lists this node's retained
// trace segments (newest first, filterable), GET /v1/debug/traces/{id}
// returns one trace assembled cluster-wide — the serving node pulls the
// remote segments from the peers its spans name (and the upstream node
// the forward mark recorded), merges them into one span tree, and
// degrades gracefully to a partial trace with a `missing` list when a
// peer is down or has already evicted its segment.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"time"

	"mps/internal/obs"
)

// traceSummary is one row of the /v1/debug/traces listing.
type traceSummary struct {
	ID       obs.TraceID `json:"id"`
	Node     string      `json:"node"`
	Route    string      `json:"route"`
	Key      string      `json:"key,omitempty"`
	Status   int         `json:"status"`
	Millis   float64     `json:"ms"`
	Retained string      `json:"retained"`
	Spans    int         `json:"spans"`
	From     string      `json:"from,omitempty"`
	Start    time.Time   `json:"start"`
}

func (s *Server) handleTraceList(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeError(w, http.StatusNotFound, "trace retention disabled (TraceBuffer < 0)")
		return
	}
	f := obs.TraceFilter{Route: r.URL.Query().Get("route")}
	if v := r.URL.Query().Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			writeError(w, http.StatusBadRequest, "min_ms must be a non-negative number")
			return
		}
		f.MinDuration = time.Duration(ms * float64(time.Millisecond))
	}
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 || n > 1000 {
			writeError(w, http.StatusBadRequest, "limit must be in [1, 1000]")
			return
		}
		f.Limit = n
	}
	recs := s.traces.Recent(f)
	out := make([]traceSummary, 0, len(recs))
	for _, rec := range recs {
		out = append(out, traceSummary{
			ID:       rec.ID,
			Node:     rec.Node,
			Route:    rec.Route,
			Key:      rec.Key,
			Status:   rec.Status,
			Millis:   float64(rec.DurationNs) / float64(time.Millisecond),
			Retained: rec.Retained,
			Spans:    len(rec.Spans),
			From:     rec.From,
			Start:    time.Unix(0, rec.StartUnixNs).UTC(),
		})
	}
	writeJSON(w, http.StatusOK, map[string]any{"node": s.traces.Node(), "traces": out})
}

func (s *Server) handleTraceGet(w http.ResponseWriter, r *http.Request) {
	if s.traces == nil {
		writeError(w, http.StatusNotFound, "trace retention disabled (TraceBuffer < 0)")
		return
	}
	id, ok := obs.ParseTraceID(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusBadRequest, "trace id must be 32 lowercase hex digits")
		return
	}
	// local=1 answers from this node's ring only — the peer-to-peer leg
	// of assembly, so two nodes asking each other can never recurse.
	if r.URL.Query().Get("local") == "1" {
		segs := s.traces.Get(id)
		if len(segs) == 0 {
			writeError(w, http.StatusNotFound, "trace not retained on this node")
			return
		}
		writeJSON(w, http.StatusOK, map[string]any{"segments": segs})
		return
	}
	at, found := s.assembleTrace(r.Context(), id)
	if !found {
		writeError(w, http.StatusNotFound, "trace not retained on any reachable node")
		return
	}
	writeJSON(w, http.StatusOK, at)
}

// assembleDepth bounds assembly's breadth-first peer walk. A request
// takes at most one forward hop plus fetch/generate legs, so real trees
// are 2–3 nodes deep; the cap is a defense against pathological span
// data, not a tuning knob.
const assembleDepth = 4

// assembleTrace merges every reachable segment of id into one tree:
// this node's ring first, then — in cluster mode — the peers named by
// the collected spans (downstream) and forward marks (upstream),
// breadth-first, each peer asked once via its local=1 endpoint. found
// is false when no node retained anything.
func (s *Server) assembleTrace(ctx context.Context, id obs.TraceID) (obs.AssembledTrace, bool) {
	segments := s.traces.Get(id)
	self := s.traces.Node()
	visited := map[string]bool{self: true}
	var missing []string

	if c := s.cluster; c != nil {
		known := make(map[string]bool, len(c.Peers()))
		for _, p := range c.Peers() {
			known[p] = true
		}
		frontier := nodesNamedBy(segments, visited, known)
		if len(segments) == 0 {
			// Nothing local to follow: ask every peer. The client may have
			// hit a node the request never touched.
			frontier = nil
			for _, p := range c.Peers() {
				if !visited[p] {
					frontier = append(frontier, p)
				}
			}
		}
		for depth := 0; depth < assembleDepth && len(frontier) > 0; depth++ {
			var next []string
			for _, peer := range frontier {
				if visited[peer] {
					continue
				}
				visited[peer] = true
				segs, err := s.traceSegmentsFrom(ctx, peer, id)
				if err != nil {
					missing = append(missing, peer)
					continue
				}
				segments = append(segments, segs...)
				next = append(next, nodesNamedBy(segs, visited, known)...)
			}
			frontier = next
		}
	}
	if len(segments) == 0 {
		return obs.AssembledTrace{}, false
	}

	at := obs.AssembledTrace{ID: id, Partial: true}
	nodes := map[string]bool{}
	var minStart, maxEnd int64
	for _, seg := range segments {
		nodes[seg.Node] = true
		if seg.ParentSpan == 0 {
			// The origin segment: its root span and wall-clock window are
			// the trace's own.
			at.Partial = false
			at.Root = seg.Root
			at.StartUnixNs = seg.StartUnixNs
			at.DurationNs = seg.DurationNs
		}
		at.Spans = append(at.Spans, seg.Spans...)
		if minStart == 0 || seg.StartUnixNs < minStart {
			minStart = seg.StartUnixNs
		}
		if end := seg.StartUnixNs + seg.DurationNs; end > maxEnd {
			maxEnd = end
		}
	}
	if at.Partial {
		// No origin: best-effort window from the segments we do have.
		at.StartUnixNs = minStart
		at.DurationNs = maxEnd - minStart
		if len(segments) > 0 {
			at.Root = segments[0].Root
		}
	}
	for n := range nodes {
		at.Nodes = append(at.Nodes, n)
	}
	sort.Strings(at.Nodes)
	sort.Strings(missing)
	at.Missing = missing
	sort.SliceStable(at.Spans, func(i, j int) bool {
		return at.Spans[i].StartUnixNs < at.Spans[j].StartUnixNs
	})
	return at, true
}

// nodesNamedBy collects the unvisited known-peer nodes the segments point
// at: span Remote attributes walk downstream (who this node called),
// record From fields walk upstream (who forwarded here). Restricting to
// the static membership means span data can name arbitrary strings
// without making the daemon dial them.
func nodesNamedBy(segs []*obs.TraceRecord, visited, known map[string]bool) []string {
	var out []string
	seen := map[string]bool{}
	add := func(n string) {
		if n != "" && !visited[n] && !seen[n] && known[n] {
			seen[n] = true
			out = append(out, n)
		}
	}
	for _, seg := range segs {
		add(seg.From)
		for i := range seg.Spans {
			add(seg.Spans[i].Remote)
		}
	}
	return out
}

// traceSegmentsFrom asks one peer for its local segments of id.
// Deliberately unmarked (no forward header): the debug endpoints never
// forward, so there is no loop to guard, and marking would count debug
// pulls as forwarded client traffic.
func (s *Server) traceSegmentsFrom(ctx context.Context, peer string, id obs.TraceID) ([]*obs.TraceRecord, error) {
	c := s.cluster
	resp, err := c.Do(ctx, peer, http.MethodGet,
		"/v1/debug/traces/"+id.String()+"?local=1", nil, nil, c.FetchTimeout())
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusNotFound {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("peer %s has no segments", peer)
	}
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("peer %s answered %d", peer, resp.StatusCode)
	}
	var body struct {
		Segments []*obs.TraceRecord `json:"segments"`
	}
	// A trace segment is ~32 spans of short strings; 4 MiB is generous.
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&body); err != nil {
		return nil, fmt.Errorf("decoding peer %s segments: %w", peer, err)
	}
	return body.Segments, nil
}
