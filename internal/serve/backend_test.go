package serve

import (
	"net/http"
	"strings"
	"testing"

	"mps"
)

// TestSpecKeyBackendCompat pins the spec-key compatibility rule: specs
// without a backend (everything written before backends existed) and
// specs naming "anneal" explicitly share the historical key byte for
// byte, while non-default backends get their own |backend= tag — placed
// before the |k= suffix so portfolio keys stay parseable the same way.
func TestSpecKeyBackendCompat(t *testing.T) {
	base := testSpec(1)
	if err := base.normalize(); err != nil {
		t.Fatal(err)
	}
	legacyKey := "circ01|seed=1|it=20|bdio=40|chains=1|maxp=0|backup=tree"
	if got := base.key(); got != legacyKey {
		t.Errorf("backendless spec key = %q, want the pre-backend key %q", got, legacyKey)
	}

	explicit := testSpec(1)
	explicit.Backend = "anneal"
	if err := explicit.normalize(); err != nil {
		t.Fatal(err)
	}
	if got := explicit.key(); got != legacyKey {
		t.Errorf("explicit anneal key = %q, want %q", got, legacyKey)
	}

	ga := testSpec(1)
	ga.Backend = "ga"
	if err := ga.normalize(); err != nil {
		t.Fatal(err)
	}
	if got, want := ga.key(), legacyKey+"|backend=ga"; got != want {
		t.Errorf("ga key = %q, want %q", got, want)
	}

	gaPf := testSpec(1)
	gaPf.Backend = "ga"
	gaPf.Portfolio = 3
	if err := gaPf.normalize(); err != nil {
		t.Fatal(err)
	}
	if got, want := gaPf.key(), legacyKey+"|backend=ga|k=3"; got != want {
		t.Errorf("ga portfolio key = %q, want %q", got, want)
	}

	// Member specs inherit the backend, so a GA portfolio's members
	// cache/persist/dedup as GA artifacts.
	member := gaPf.memberSpec(1)
	if member.Backend != "ga" {
		t.Errorf("member backend = %q, want ga", member.Backend)
	}
	if !strings.Contains(member.key(), "|backend=ga") {
		t.Errorf("member key %q lost the backend tag", member.key())
	}
	if strings.Contains(member.key(), "|k=") {
		t.Errorf("member key %q kept the portfolio suffix", member.key())
	}
}

// TestBadSpecsRejected is the one-place validation table: every bad
// enumerated field or negative budget must come back as a 400 from POST
// /v1/structures, never reach generation, and name the offending value.
func TestBadSpecsRejected(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	cases := []struct {
		name    string
		spec    GenerateSpec
		mention string
	}{
		{"missing circuit", GenerateSpec{}, "missing circuit"},
		{"unknown circuit", GenerateSpec{Circuit: "nope"}, "nope"},
		{"unknown effort", GenerateSpec{Circuit: "circ01", Effort: "heroic"}, "heroic"},
		{"unknown backup", GenerateSpec{Circuit: "circ01", Backup: "pile"}, "pile"},
		{"unknown backend", GenerateSpec{Circuit: "circ01", Backend: "cmaes"}, "cmaes"},
		{"negative iterations", GenerateSpec{Circuit: "circ01", Iterations: -1}, "negative budget"},
		{"negative bdio", GenerateSpec{Circuit: "circ01", BDIOSteps: -5}, "negative budget"},
		{"negative chains", GenerateSpec{Circuit: "circ01", Chains: -2}, "negative budget"},
		{"negative portfolio", GenerateSpec{Circuit: "circ01", Portfolio: -3}, "negative portfolio"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			status, body := postJSON(t, ts.URL+"/v1/structures", tc.spec, nil)
			if status != http.StatusBadRequest {
				t.Fatalf("status = %d, want 400 (body: %s)", status, body)
			}
			if !strings.Contains(body, tc.mention) {
				t.Errorf("400 body %q does not mention %q", body, tc.mention)
			}
		})
	}

	// The unknown-backend 400 must list the registered names so clients
	// can self-correct without a second round trip.
	spec := GenerateSpec{Circuit: "circ01", Backend: "cmaes"}
	_, body := postJSON(t, ts.URL+"/v1/structures", spec, nil)
	for _, name := range mps.Backends() {
		if !strings.Contains(body, name) {
			t.Errorf("unknown-backend 400 %q does not list registered backend %q", body, name)
		}
	}
}

// TestBackendsEndpoint checks GET /v1/backends lists every registered
// backend and marks the default.
func TestBackendsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var resp struct {
		Backends []struct {
			Name    string `json:"name"`
			Default bool   `json:"default"`
		} `json:"backends"`
	}
	if status := getJSON(t, ts.URL+"/v1/backends", &resp); status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	got := map[string]bool{}
	for _, b := range resp.Backends {
		got[b.Name] = b.Default
	}
	for _, name := range mps.Backends() {
		isDefault, ok := got[name]
		if !ok {
			t.Errorf("backend %q missing from listing %v", name, got)
			continue
		}
		if want := name == mps.DefaultBackend; isDefault != want {
			t.Errorf("backend %q default = %v, want %v", name, isDefault, want)
		}
	}
	if len(resp.Backends) != len(mps.Backends()) {
		t.Errorf("listed %d backends, registry has %d", len(resp.Backends), len(mps.Backends()))
	}
}

// TestGenerateGABackendServed drives a GA generation through the full
// serving path — spec in, structure generated on the scheduler, cached
// under a backend-tagged key — and checks anneal and GA artifacts for
// the same (circuit, seed, budgets) coexist as separate entries.
func TestGenerateGABackendServed(t *testing.T) {
	s, ts := newTestServer(t, Config{})

	gaSpec := testSpec(1)
	gaSpec.Backend = "ga"
	var gaInfo StructureInfo
	if status, body := postJSON(t, ts.URL+"/v1/structures", gaSpec, &gaInfo); status != http.StatusOK {
		t.Fatalf("ga generate status = %d (body: %s)", status, body)
	}
	if gaInfo.Spec.Backend != "ga" {
		t.Errorf("served spec backend = %q, want ga", gaInfo.Spec.Backend)
	}
	if gaInfo.Placements == 0 {
		t.Error("GA generation served zero placements")
	}
	if !strings.Contains(gaInfo.Key, "|backend=ga") {
		t.Errorf("GA entry key %q lacks the backend tag", gaInfo.Key)
	}

	annealInfo, err := s.Generate(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if annealInfo.Key == gaInfo.Key {
		t.Error("anneal and ga specs share a cache key")
	}
	if annealInfo.Spec.Backend != "anneal" {
		t.Errorf("backendless spec normalized to %q, want anneal", annealInfo.Spec.Backend)
	}
}
