package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log"
	"net"
	"net/http"
	"net/http/httputil"
	"net/url"
	"sync"
	"testing"
	"time"

	"mps/internal/cluster"
	"mps/internal/store"
)

// testLogf returns a t.Logf wrapper that goes silent once the test's
// cleanups have run, so a straggling remoteWork goroutine can never log
// into a finished test. Register it before anything that spawns
// goroutines: cleanups run LIFO, so the silencer fires last.
func testLogf(t *testing.T) func(string, ...any) {
	var mu sync.Mutex
	done := false
	t.Cleanup(func() { mu.Lock(); done = true; mu.Unlock() })
	return func(format string, args ...any) {
		mu.Lock()
		defer mu.Unlock()
		if !done {
			t.Logf(format, args...)
		}
	}
}

// flakyProxy fronts one node's listener and injects faults on demand:
// mode "ok" reverse-proxies to the backend, "hang" holds the request open
// until the client gives up, "500" answers every request with an injected
// server error, and "drop" severs the TCP connection without a response.
type flakyProxy struct {
	url  string
	rp   *httputil.ReverseProxy
	mu   sync.Mutex
	mode string
	hits int64
}

func newFlakyProxy(t *testing.T, backend string) *flakyProxy {
	t.Helper()
	bu, err := url.Parse(backend)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := &flakyProxy{
		url:  "http://" + ln.Addr().String(),
		rp:   httputil.NewSingleHostReverseProxy(bu),
		mode: "ok",
	}
	p.rp.ErrorLog = log.New(io.Discard, "", 0)
	hs := &http.Server{Handler: p}
	go hs.Serve(ln)
	t.Cleanup(func() { hs.Close() })
	return p
}

func (p *flakyProxy) setMode(m string) {
	p.mu.Lock()
	p.mode = m
	p.mu.Unlock()
}

func (p *flakyProxy) hitCount() int64 {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hits
}

func (p *flakyProxy) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	p.mu.Lock()
	p.hits++
	mode := p.mode
	p.mu.Unlock()
	switch mode {
	case "hang":
		<-r.Context().Done()
	case "500":
		http.Error(w, "injected fault", http.StatusInternalServerError)
	case "drop":
		if hj, ok := w.(http.Hijacker); ok {
			if conn, _, err := hj.Hijack(); err == nil {
				conn.Close()
				return
			}
		}
		panic(http.ErrAbortHandler)
	default:
		p.rp.ServeHTTP(w, r)
	}
}

// clusterNode is one in-process daemon of a test fleet.
type clusterNode struct {
	s     *Server
	c     *cluster.Cluster
	url   string // advertised base URL (the proxy's, for flaky nodes)
	store *store.Dir
}

type testFleet struct {
	nodes   []*clusterNode
	proxies map[int]*flakyProxy
}

// fleetConfig shapes newTestFleet: n nodes, the listed indexes fronted by
// a flakyProxy, optional per-node disk stores, and override hooks for the
// cluster and serve configs (applied to every node).
type fleetConfig struct {
	n       int
	flaky   []int
	stores  bool
	cluster func(cfg *cluster.Config)
	serve   func(cfg *Config)
}

// newTestFleet starts n serve.Servers on real localhost listeners wired
// into one cluster. Listeners are bound first so every node knows the
// full advertised peer set before any server starts.
func newTestFleet(t *testing.T, fc fleetConfig) *testFleet {
	t.Helper()
	logf := testLogf(t)
	backends := make([]net.Listener, fc.n)
	advertised := make([]string, fc.n)
	for i := range backends {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = ln
		advertised[i] = "http://" + ln.Addr().String()
	}
	f := &testFleet{proxies: map[int]*flakyProxy{}}
	for _, i := range fc.flaky {
		p := newFlakyProxy(t, advertised[i])
		f.proxies[i] = p
		advertised[i] = p.url
	}
	for i := 0; i < fc.n; i++ {
		ccfg := cluster.Config{
			Self:             advertised[i],
			Peers:            advertised,
			VNodes:           64, // ownership determinism is all these tests need
			ForwardTimeout:   10 * time.Second,
			FetchTimeout:     2 * time.Second,
			Retries:          1,
			RetryBackoff:     20 * time.Millisecond,
			BreakerThreshold: 2,
			BreakerCooldown:  100 * time.Millisecond,
			Logf:             logf,
		}
		if fc.cluster != nil {
			fc.cluster(&ccfg)
		}
		cl, err := cluster.New(ccfg)
		if err != nil {
			t.Fatal(err)
		}
		scfg := Config{Cluster: cl, Logf: logf}
		if fc.stores {
			scfg.Store = openStore(t, t.TempDir())
		}
		if fc.serve != nil {
			fc.serve(&scfg)
		}
		srv := New(scfg)
		hs := &http.Server{Handler: srv.Handler()}
		go hs.Serve(backends[i])
		t.Cleanup(func() {
			hs.Close()
			srv.Close()
			srv.Flush()
		})
		f.nodes = append(f.nodes, &clusterNode{s: srv, c: cl, url: advertised[i], store: scfg.Store})
	}
	return f
}

// ownerIndex returns the node index owning key, first asserting every
// node's ring agrees on the owner.
func (f *testFleet) ownerIndex(t *testing.T, key string) int {
	t.Helper()
	owner := f.nodes[0].c.Owner(key)
	for i, n := range f.nodes {
		if got := n.c.Owner(key); got != owner {
			t.Fatalf("node %d disagrees on owner of %s: %s vs %s", i, key, got, owner)
		}
	}
	for i, n := range f.nodes {
		if n.c.Self() == owner {
			return i
		}
	}
	t.Fatalf("owner %s of %s is not a fleet node", owner, key)
	return -1
}

// specOwnedBy scans seeds from startSeed until it finds a testSpec whose
// key the ring assigns to node idx.
func (f *testFleet) specOwnedBy(t *testing.T, idx int, startSeed int64) GenerateSpec {
	t.Helper()
	for seed := startSeed; seed < startSeed+1000; seed++ {
		spec := testSpec(seed)
		if f.ownerIndex(t, specKey(t, spec)) == idx {
			return spec
		}
	}
	t.Fatalf("no spec owned by node %d in 1000 seeds from %d", idx, startSeed)
	return GenerateSpec{}
}

func (f *testFleet) genRunsTotal() int64 {
	var total int64
	for _, n := range f.nodes {
		total += n.s.genRuns.Load()
	}
	return total
}

// specKey normalizes a copy of spec and returns its canonical key.
func specKey(t *testing.T, spec GenerateSpec) string {
	t.Helper()
	if err := spec.normalize(); err != nil {
		t.Fatal(err)
	}
	return spec.key()
}

// doJSON issues one request and returns status, response headers, and the
// raw body.
func doClusterJSON(t *testing.T, method, url string, body any, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	var rd io.Reader
	if body != nil {
		buf, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		rd = bytes.NewReader(buf)
	}
	req, err := http.NewRequest(method, url, rd)
	if err != nil {
		t.Fatal(err)
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("%s %s: %v", method, url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// countJobs returns how many scheduler jobs on s carry key.
func countJobs(s *Server, key string) int {
	n := 0
	for _, snap := range s.Jobs().List() {
		if snap.Key == key {
			n++
		}
	}
	return n
}

// TestClusterThreeNodeE2E is the in-process three-node end-to-end check:
// every entry node answers every spec key identically, forwarding is at
// most one hop, and the structure is generated exactly once cluster-wide.
func TestClusterThreeNodeE2E(t *testing.T) {
	fleet := newTestFleet(t, fleetConfig{n: 3})
	spec := testSpec(1)
	key := specKey(t, spec)
	owner := fleet.ownerIndex(t, key)
	nonOwnerA, nonOwnerB := -1, -1
	for i := range fleet.nodes {
		if i == owner {
			continue
		}
		if nonOwnerA < 0 {
			nonOwnerA = i
		} else {
			nonOwnerB = i
		}
	}

	// Generate through a non-owner first (forces the forward), then ask
	// the owner and the other non-owner: identical answers everywhere.
	var refGen []byte
	for round, i := range []int{nonOwnerA, owner, nonOwnerB} {
		status, hdr, body := doClusterJSON(t, http.MethodPost, fleet.nodes[i].url+"/v1/structures", spec, nil)
		if status != http.StatusOK {
			t.Fatalf("POST /v1/structures via node %d: %d %s", i, status, body)
		}
		var info StructureInfo
		if err := json.Unmarshal(body, &info); err != nil {
			t.Fatal(err)
		}
		if info.Key != key {
			t.Fatalf("node %d answered key %s, want %s", i, info.Key, key)
		}
		if i != owner {
			if by := hdr.Get(cluster.ServedByHeader); by != fleet.nodes[owner].c.Self() {
				t.Fatalf("node %d response served by %q, want owner %q (one hop)", i, by, fleet.nodes[owner].c.Self())
			}
		}
		norm := info // placements/coverage must agree across entry nodes
		normJSON, _ := json.Marshal(map[string]any{"p": norm.Placements, "c": norm.Coverage})
		if round == 0 {
			refGen = normJSON
		} else if !bytes.Equal(refGen, normJSON) {
			t.Fatalf("node %d generation answer %s differs from %s", i, normJSON, refGen)
		}
	}
	if got := fleet.genRunsTotal(); got != 1 {
		t.Fatalf("cluster generated %d times, want exactly 1", got)
	}
	if got := fleet.nodes[owner].s.genRuns.Load(); got != 1 {
		t.Fatalf("owner ran %d generations, want 1", got)
	}
	if fwd := fleet.nodes[owner].c.Stats().Forwards; fwd != 0 {
		t.Fatalf("owner forwarded %d requests for a key it owns", fwd)
	}
	if fwd := fleet.nodes[nonOwnerA].c.Stats().Forwards; fwd == 0 {
		t.Fatal("entry node never forwarded")
	}

	// Async job submission follows the same routing: the job lives on the
	// owner (the ServedBy header names the node to poll), never on the
	// entry node.
	status, hdr, body := doClusterJSON(t, http.MethodPost, fleet.nodes[nonOwnerA].url+"/v1/jobs",
		map[string]any{"spec": spec}, nil)
	if status != http.StatusOK {
		t.Fatalf("POST /v1/jobs via node %d: %d %s", nonOwnerA, status, body)
	}
	if by := hdr.Get(cluster.ServedByHeader); by != fleet.nodes[owner].c.Self() {
		t.Fatalf("job submitted via node %d served by %q, want owner", nonOwnerA, by)
	}
	var job map[string]any
	if err := json.Unmarshal(body, &job); err != nil {
		t.Fatal(err)
	}
	if job["key"] != key {
		t.Fatalf("job key %v, want %s", job["key"], key)
	}
	if n := countJobs(fleet.nodes[owner].s, key); n != 1 {
		t.Fatalf("owner has %d jobs for %s, want 1", n, key)
	}
	if n := countJobs(fleet.nodes[nonOwnerA].s, key); n != 0 {
		t.Fatalf("entry node has %d jobs for %s, want 0 (job lives on the owner)", n, key)
	}

	// Instantiate answers byte-identically from every entry node.
	instReq := map[string]any{"spec": spec, "queries": []any{testQuery(t, 0), testQuery(t, 1)}}
	var refInst []byte
	for round, i := range []int{owner, nonOwnerA, nonOwnerB} {
		status, _, body := doClusterJSON(t, http.MethodPost, fleet.nodes[i].url+"/v1/instantiate", instReq, nil)
		if status != http.StatusOK {
			t.Fatalf("instantiate via node %d: %d %s", i, status, body)
		}
		if round == 0 {
			refInst = body
		} else if !bytes.Equal(refInst, body) {
			t.Fatalf("instantiate via node %d differs:\n%s\nvs\n%s", i, body, refInst)
		}
	}

	// A request already carrying the forward mark is served locally even
	// by a non-owner — the single-hop guarantee. The replica satisfies it
	// by fetching the built artifact, not by regenerating.
	mark, err := cluster.EncodeForward(cluster.Forward{From: fleet.nodes[owner].c.Self(), Hop: 1})
	if err != nil {
		t.Fatal(err)
	}
	status, hdr, body = doClusterJSON(t, http.MethodPost, fleet.nodes[nonOwnerA].url+"/v1/instantiate",
		instReq, map[string]string{cluster.ForwardHeader: mark})
	if status != http.StatusOK {
		t.Fatalf("marked instantiate: %d %s", status, body)
	}
	if by := hdr.Get(cluster.ServedByHeader); by != fleet.nodes[nonOwnerA].c.Self() {
		t.Fatalf("marked request served by %q, want the receiving node itself", by)
	}
	if !bytes.Equal(refInst, body) {
		t.Fatalf("replica-served instantiate differs:\n%s\nvs\n%s", body, refInst)
	}
	if fetches := fleet.nodes[nonOwnerA].c.Stats().Fetches; fetches == 0 {
		t.Fatal("replica served a non-owned key without fetching the artifact")
	}

	// A malformed mark still counts as forwarded (loop guard by presence):
	// the node answers locally instead of forwarding again.
	before := fleet.nodes[nonOwnerB].c.Stats().Forwards
	status, hdr, body = doClusterJSON(t, http.MethodPost, fleet.nodes[nonOwnerB].url+"/v1/instantiate",
		instReq, map[string]string{cluster.ForwardHeader: "???not-a-mark"})
	if status != http.StatusOK {
		t.Fatalf("malformed-mark instantiate: %d %s", status, body)
	}
	if by := hdr.Get(cluster.ServedByHeader); by != fleet.nodes[nonOwnerB].c.Self() {
		t.Fatalf("malformed-mark request served by %q, want the receiving node", by)
	}
	if after := fleet.nodes[nonOwnerB].c.Stats().Forwards; after != before {
		t.Fatal("node forwarded a request that already carried a (malformed) mark")
	}

	// Replica fan-out and marked requests must not have duplicated the
	// annealing work.
	if got := fleet.genRunsTotal(); got != 1 {
		t.Fatalf("cluster generated %d times after replica serving, want exactly 1", got)
	}
}

// TestClusterPortfolioMemberFanout checks that a portfolio request routes
// each of its K member generations to the member key's owning node, with
// every member generated exactly once cluster-wide.
func TestClusterPortfolioMemberFanout(t *testing.T) {
	fleet := newTestFleet(t, fleetConfig{n: 3})
	spec := testSpec(7)
	spec.Portfolio = 2
	key := specKey(t, spec)
	entry := (fleet.ownerIndex(t, key) + 1) % 3 // enter through a non-owner

	status, _, body := doClusterJSON(t, http.MethodPost, fleet.nodes[entry].url+"/v1/structures", spec, nil)
	if status != http.StatusOK {
		t.Fatalf("portfolio generate: %d %s", status, body)
	}
	var info StructureInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if info.Key != key {
		t.Fatalf("answered key %s, want %s", info.Key, key)
	}

	// Each member annealed exactly once, on the node owning its key.
	owned := make([]int64, 3)
	for i := 0; i < spec.Portfolio; i++ {
		mkey := specKey(t, spec.memberSpec(i))
		owned[fleet.ownerIndex(t, mkey)]++
	}
	for i, n := range fleet.nodes {
		if got := n.s.genRuns.Load(); got != owned[i] {
			t.Errorf("node %d ran %d generations, want %d (its owned member keys)", i, got, owned[i])
		}
	}
	if got := fleet.genRunsTotal(); got != int64(spec.Portfolio) {
		t.Fatalf("cluster generated %d times, want %d (one per member)", got, spec.Portfolio)
	}

	// The portfolio answers identically from every node.
	instReq := map[string]any{"spec": spec, "queries": []any{testQuery(t, 0), testQuery(t, 1)}}
	var ref []byte
	for i := range fleet.nodes {
		status, _, body := doClusterJSON(t, http.MethodPost, fleet.nodes[i].url+"/v1/instantiate", instReq, nil)
		if status != http.StatusOK {
			t.Fatalf("portfolio instantiate via node %d: %d %s", i, status, body)
		}
		if ref == nil {
			ref = body
		} else if !bytes.Equal(ref, body) {
			t.Fatalf("portfolio instantiate via node %d differs:\n%s\nvs\n%s", i, body, ref)
		}
	}
}

// TestClusterFaultInjection drives the degradation cascade through a
// fault-injecting proxy in front of the owning peer: hangs time out and
// retry with backoff, errors and drops trip the breaker, and every mode
// falls back to local generation without duplicate jobs.
func TestClusterFaultInjection(t *testing.T) {
	const forwardTimeout = 1 * time.Second
	const fetchTimeout = 200 * time.Millisecond
	const backoff = 20 * time.Millisecond
	const cooldown = 100 * time.Millisecond
	fleet := newTestFleet(t, fleetConfig{
		n:     2,
		flaky: []int{1},
		cluster: func(cfg *cluster.Config) {
			cfg.ForwardTimeout = forwardTimeout
			cfg.FetchTimeout = fetchTimeout
			cfg.RetryBackoff = backoff
			cfg.BreakerThreshold = 2
			cfg.BreakerCooldown = cooldown
		},
	})
	entry, peer := fleet.nodes[0], fleet.nodes[1]
	proxy := fleet.proxies[1]
	peerURL := peer.c.Self()

	// Phase 1 — hang: the forward times out per attempt, retries with
	// backoff, and the request is served by local generation.
	spec1 := fleet.specOwnedBy(t, 1, 100)
	key1 := specKey(t, spec1)
	proxy.setMode("hang")
	start := time.Now()
	status, hdr, body := doClusterJSON(t, http.MethodPost, entry.url+"/v1/structures", spec1, nil)
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("generate with hanging owner: %d %s", status, body)
	}
	if by := hdr.Get(cluster.ServedByHeader); by != entry.c.Self() {
		t.Fatalf("served by %q, want local fallback on %q", by, entry.c.Self())
	}
	if elapsed < 2*forwardTimeout+backoff {
		t.Fatalf("request finished in %v — did not wait out both forward attempts (%v each) plus backoff", elapsed, forwardTimeout)
	}
	// Retries=1 means two attempts per Do; the forward Do and the artifact
	// fetch Do each hit the peer twice.
	if hits := proxy.hitCount(); hits < 4 {
		t.Fatalf("peer saw %d attempts, want >= 4 (both forward and fetch retried)", hits)
	}
	if got := entry.s.genRuns.Load(); got != 1 {
		t.Fatalf("entry node ran %d generations, want 1", got)
	}
	if got := peer.s.genRuns.Load(); got != 0 {
		t.Fatalf("hanging peer ran %d generations, want 0", got)
	}
	st := entry.c.Stats()
	if st.Fallbacks == 0 {
		t.Fatal("no fallback counted")
	}
	if st.Breakers[peerURL] != cluster.BreakerOpen {
		t.Fatalf("breaker for %s is %q, want open after consecutive failures", peerURL, st.Breakers[peerURL])
	}

	// Phase 2 — breaker open: the same request again is answered from the
	// local cache instantly; the open breaker skips the network entirely.
	start = time.Now()
	status, _, body = doClusterJSON(t, http.MethodPost, entry.url+"/v1/structures", spec1, nil)
	if status != http.StatusOK {
		t.Fatalf("repeat generate: %d %s", status, body)
	}
	if elapsed := time.Since(start); elapsed >= forwardTimeout {
		t.Fatalf("repeat request took %v — breaker did not short-circuit the dead peer", elapsed)
	}
	var info StructureInfo
	if err := json.Unmarshal(body, &info); err != nil {
		t.Fatal(err)
	}
	if !info.Cached {
		t.Fatal("repeat request not served from cache")
	}
	if skips := entry.c.Stats().BreakerSkips; skips == 0 {
		t.Fatal("open breaker never skipped an attempt")
	}
	// No duplicate jobs: the fallback generation is the only job for the
	// key, on the entry node only.
	if n := countJobs(entry.s, key1); n != 1 {
		t.Fatalf("entry node has %d jobs for %s, want 1", n, key1)
	}
	if n := countJobs(peer.s, key1); n != 0 {
		t.Fatalf("hanging peer has %d jobs for %s, want 0", n, key1)
	}

	// Phase 3 — 500s: the peer answers instantly with server errors; the
	// entry node falls back locally without burning any timeout.
	time.Sleep(cooldown + 50*time.Millisecond) // let the breaker go half-open
	proxy.setMode("500")
	spec2 := fleet.specOwnedBy(t, 1, 200)
	start = time.Now()
	status, hdr, body = doClusterJSON(t, http.MethodPost, entry.url+"/v1/structures", spec2, nil)
	if status != http.StatusOK {
		t.Fatalf("generate with 500ing owner: %d %s", status, body)
	}
	if by := hdr.Get(cluster.ServedByHeader); by != entry.c.Self() {
		t.Fatalf("served by %q, want local fallback", by)
	}
	if elapsed := time.Since(start); elapsed >= forwardTimeout {
		t.Fatalf("5xx fallback took %v — error responses must not consume the forward timeout", elapsed)
	}
	if got := entry.s.genRuns.Load(); got != 2 {
		t.Fatalf("entry node ran %d generations, want 2", got)
	}

	// Phase 4 — dropped connections: instant transport errors re-trip the
	// breaker; the request is still served locally.
	proxy.setMode("drop")
	spec3 := fleet.specOwnedBy(t, 1, 300)
	status, _, body = doClusterJSON(t, http.MethodPost, entry.url+"/v1/structures", spec3, nil)
	if status != http.StatusOK {
		t.Fatalf("generate with dropping owner: %d %s", status, body)
	}
	if got := entry.s.genRuns.Load(); got != 3 {
		t.Fatalf("entry node ran %d generations, want 3", got)
	}
	if st := entry.c.Stats(); st.Breakers[peerURL] != cluster.BreakerOpen {
		t.Fatalf("breaker is %q after dropped connections, want open", st.Breakers[peerURL])
	}

	// Phase 5 — recovery: once the peer heals and the cooldown elapses,
	// the half-open probe succeeds and the breaker closes again.
	proxy.setMode("ok")
	time.Sleep(cooldown + 50*time.Millisecond)
	resp, err := entry.c.Do(context.Background(), peerURL, http.MethodGet, "/healthz", nil, nil, 2*time.Second)
	if err != nil {
		t.Fatalf("probe after recovery: %v", err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("probe answered %d", resp.StatusCode)
	}
	if st := entry.c.Stats(); st.Breakers[peerURL] != cluster.BreakerClosed {
		t.Fatalf("breaker is %q after a successful probe, want closed", st.Breakers[peerURL])
	}
}

// TestClusterHotKeyFanOut checks the read-replica path: once a key's read
// rate crosses the hot threshold, the entry node starts answering some
// reads itself — fetching the built artifact, never regenerating.
func TestClusterHotKeyFanOut(t *testing.T) {
	fleet := newTestFleet(t, fleetConfig{
		n: 2,
		cluster: func(cfg *cluster.Config) {
			cfg.HotThreshold = 3
			cfg.HotWindow = time.Hour
			cfg.Replicas = 2
		},
	})
	spec := fleet.specOwnedBy(t, 1, 400)
	key := specKey(t, spec)

	status, _, body := doClusterJSON(t, http.MethodPost, fleet.nodes[1].url+"/v1/structures", spec, nil)
	if status != http.StatusOK {
		t.Fatalf("generate on owner: %d %s", status, body)
	}

	instReq := map[string]any{"key": key, "queries": []any{testQuery(t, 0)}}
	var ref []byte
	for i := 0; i < 25; i++ {
		status, _, body := doClusterJSON(t, http.MethodPost, fleet.nodes[0].url+"/v1/instantiate", instReq, nil)
		if status != http.StatusOK {
			t.Fatalf("instantiate %d: %d %s", i, status, body)
		}
		if ref == nil {
			ref = body
		} else if !bytes.Equal(ref, body) {
			t.Fatalf("instantiate %d differs:\n%s\nvs\n%s", i, body, ref)
		}
	}
	// With threshold 3 and 25 reads, the entry node picked itself from the
	// replica set with overwhelming probability, pulling the artifact over.
	if _, ok := fleet.nodes[0].s.lookup(key); !ok {
		t.Fatal("hot key never replicated to the entry node")
	}
	if fetches := fleet.nodes[0].c.Stats().Fetches; fetches == 0 {
		t.Fatal("entry node served the hot key without fetching the artifact")
	}
	if got := fleet.genRunsTotal(); got != 1 {
		t.Fatalf("cluster generated %d times, want 1 — fan-out must not regenerate", got)
	}
}

// TestClusterRebalance creates a misplaced artifact (owner down → local
// fallback persists it on the wrong node), then rebalances: the artifact
// transfers to its owner as v3 bytes, the local copy drops, and the owner
// serves it from its store without regenerating.
func TestClusterRebalance(t *testing.T) {
	fleet := newTestFleet(t, fleetConfig{
		n:      2,
		flaky:  []int{1},
		stores: true,
		cluster: func(cfg *cluster.Config) {
			cfg.ForwardTimeout = 300 * time.Millisecond
			cfg.FetchTimeout = 100 * time.Millisecond
		},
	})
	entry, peer := fleet.nodes[0], fleet.nodes[1]
	spec := fleet.specOwnedBy(t, 1, 500)
	key := specKey(t, spec)

	// Owner unreachable: the entry node generates locally and persists the
	// artifact into its own store — a misplaced key.
	fleet.proxies[1].setMode("drop")
	status, _, body := doClusterJSON(t, http.MethodPost, entry.url+"/v1/structures", spec, nil)
	if status != http.StatusOK {
		t.Fatalf("fallback generate: %d %s", status, body)
	}
	entry.s.Flush()
	if _, ok := entry.store.Stat(key); !ok {
		t.Fatal("fallback generation not persisted on the entry node")
	}

	// Peer heals; rebalance pushes the misplaced artifact home. The sleep
	// lets the tripped breaker reach its cooldown so the transfer's probe
	// is admitted.
	fleet.proxies[1].setMode("ok")
	time.Sleep(150 * time.Millisecond)
	status, _, body = doClusterJSON(t, http.MethodPost, entry.url+"/v1/cluster/rebalance?drop=1", nil, nil)
	if status != http.StatusOK {
		t.Fatalf("rebalance: %d %s", status, body)
	}
	var rep RebalanceReport
	if err := json.Unmarshal(body, &rep); err != nil {
		t.Fatal(err)
	}
	if rep.Scanned != 1 || rep.Transferred != 1 || rep.Dropped != 1 || rep.Failed != 0 {
		t.Fatalf("rebalance report %+v, want 1 scanned/transferred/dropped, 0 failed", rep)
	}
	if _, ok := peer.store.Stat(key); !ok {
		t.Fatal("transferred artifact missing from the owner's store")
	}
	if _, ok := entry.store.Stat(key); ok {
		t.Fatal("dropped artifact still in the entry node's store")
	}

	// The owner serves the transferred artifact from its store —
	// read-through, no regeneration.
	instReq := map[string]any{"key": key, "queries": []any{testQuery(t, 0)}}
	status, _, body = doClusterJSON(t, http.MethodPost, peer.url+"/v1/instantiate", instReq, nil)
	if status != http.StatusOK {
		t.Fatalf("instantiate transferred key on owner: %d %s", status, body)
	}
	if got := peer.s.genRuns.Load(); got != 0 {
		t.Fatalf("owner regenerated a transferred artifact (%d runs)", got)
	}
	if got := fleet.genRunsTotal(); got != 1 {
		t.Fatalf("cluster generated %d times, want 1 (the original fallback)", got)
	}
}

// TestClusterConcurrentTrafficWithFlappingPeer is the race sweep: mixed
// generate/instantiate traffic through two entry nodes while the third
// node flaps between healthy and every fault mode. Every request must
// complete successfully (local fallback guarantees service) and each node
// must hold at most one job per key.
func TestClusterConcurrentTrafficWithFlappingPeer(t *testing.T) {
	fleet := newTestFleet(t, fleetConfig{
		n:     3,
		flaky: []int{2},
		cluster: func(cfg *cluster.Config) {
			cfg.ForwardTimeout = 300 * time.Millisecond
			cfg.FetchTimeout = 100 * time.Millisecond
			cfg.RetryBackoff = 5 * time.Millisecond
			cfg.BreakerCooldown = 30 * time.Millisecond
		},
	})
	proxy := fleet.proxies[2]

	stopFlap := make(chan struct{})
	var flapWG sync.WaitGroup
	flapWG.Add(1)
	go func() {
		defer flapWG.Done()
		modes := []string{"ok", "500", "drop", "hang"}
		for i := 0; ; i++ {
			select {
			case <-stopFlap:
				proxy.setMode("ok")
				return
			case <-time.After(15 * time.Millisecond):
				proxy.setMode(modes[i%len(modes)])
			}
		}
	}()

	seeds := []int64{601, 602, 603}
	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for w := 0; w < 4; w++ {
		entry := fleet.nodes[w%2] // traffic through two entry nodes
		wg.Add(1)
		go func(worker int) {
			defer wg.Done()
			for op := 0; op < 4; op++ {
				spec := testSpec(seeds[(worker+op)%len(seeds)])
				var target string
				var payload any
				if op%2 == 0 {
					target = entry.url + "/v1/structures"
					payload = spec
				} else {
					target = entry.url + "/v1/instantiate"
					payload = map[string]any{"spec": spec, "queries": []any{testQuery(t, 0)}}
				}
				// A relay can break mid-body if the flapping node dies at
				// exactly the wrong moment; one retry must always land on
				// the local-fallback path.
				var lastErr error
				for attempt := 0; attempt < 3; attempt++ {
					status, body, err := tryJSON(target, payload)
					if err == nil && status == http.StatusOK {
						lastErr = nil
						break
					}
					lastErr = fmt.Errorf("worker %d op %d %s: status %d err %v body %s",
						worker, op, target, status, err, body)
				}
				if lastErr != nil {
					select {
					case errs <- lastErr:
					default:
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(stopFlap)
	flapWG.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// Dedup must have held per node: at most one job per key anywhere.
	for i, n := range fleet.nodes {
		for _, seed := range seeds {
			key := specKey(t, testSpec(seed))
			if got := countJobs(n.s, key); got > 1 {
				t.Errorf("node %d has %d jobs for %s — dedup failed under flapping", i, got, key)
			}
		}
	}
}

// tryJSON is doJSON without test-fatal error handling, safe to call from
// worker goroutines.
func tryJSON(url string, body any) (int, []byte, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return 0, nil, err
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	return resp.StatusCode, data, err
}
