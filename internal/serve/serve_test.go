package serve

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"mps/internal/circuits"
	"mps/internal/store"
)

// testSpec is a seconds-scale generation spec for the smallest circuit.
func testSpec(seed int64) GenerateSpec {
	return GenerateSpec{Circuit: "circ01", Seed: seed, Effort: "quick", Iterations: 20, BDIOSteps: 40}
}

// testQuery returns an in-bounds dimension query for circ01: variant 0 is
// every block at mid-range, variant 1 leans low/high alternately.
func testQuery(t *testing.T, variant int) map[string][]int {
	t.Helper()
	c := circuits.MustByName("circ01")
	ws := make([]int, c.N())
	hs := make([]int, c.N())
	for i, b := range c.Blocks {
		switch variant {
		case 0:
			ws[i] = (b.WMin + b.WMax) / 2
			hs[i] = (b.HMin + b.HMax) / 2
		default:
			if i%2 == 0 {
				ws[i], hs[i] = b.WMin, b.HMax
			} else {
				ws[i], hs[i] = b.WMax, b.HMin
			}
		}
	}
	return map[string][]int{"ws": ws, "hs": hs}
}

func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	t.Cleanup(s.Close)
	return s, ts
}

func postJSON(t *testing.T, url string, body any, out any) (int, string) {
	t.Helper()
	buf, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(buf))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var raw bytes.Buffer
	if _, err := raw.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	if out != nil && resp.StatusCode < 300 {
		if err := json.Unmarshal(raw.Bytes(), out); err != nil {
			t.Fatalf("decode %s: %v\nbody: %s", url, err, raw.String())
		}
	}
	return resp.StatusCode, raw.String()
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatal(err)
		}
	}
	return resp.StatusCode
}

func TestHealthAndCircuits(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	if code := getJSON(t, ts.URL+"/healthz", nil); code != http.StatusOK {
		t.Fatalf("healthz: %d", code)
	}
	var listing struct {
		Circuits []struct {
			Name   string `json:"name"`
			Blocks int    `json:"blocks"`
		} `json:"circuits"`
	}
	if code := getJSON(t, ts.URL+"/v1/circuits", &listing); code != http.StatusOK {
		t.Fatalf("circuits: %d", code)
	}
	if len(listing.Circuits) != 9 {
		t.Fatalf("got %d circuits, want 9 (Table 1)", len(listing.Circuits))
	}
}

// TestGenerateThenInstantiate is the wire-level happy path: POST a
// generation spec, then answer a batch of queries addressed by cache key.
func TestGenerateThenInstantiate(t *testing.T) {
	_, ts := newTestServer(t, Config{})

	var info StructureInfo
	code, body := postJSON(t, ts.URL+"/v1/structures", testSpec(1), &info)
	if code != http.StatusOK {
		t.Fatalf("generate: %d %s", code, body)
	}
	if info.Key == "" || info.Placements == 0 {
		t.Fatalf("bad structure info: %+v", info)
	}
	if info.Cached {
		t.Error("first generation reported as cache hit")
	}

	// Second POST of the same spec must hit the cache.
	var again StructureInfo
	code, body = postJSON(t, ts.URL+"/v1/structures", testSpec(1), &again)
	if code != http.StatusOK {
		t.Fatalf("regenerate: %d %s", code, body)
	}
	if !again.Cached {
		t.Error("identical spec did not hit the cache")
	}

	req := map[string]any{
		"key":     info.Key,
		"queries": []map[string][]int{testQuery(t, 0), testQuery(t, 1)},
	}
	var out struct {
		Key     string `json:"key"`
		Served  int    `json:"served"`
		Results []struct {
			X           []int  `json:"x"`
			Y           []int  `json:"y"`
			PlacementID int    `json:"placement_id"`
			Error       string `json:"error"`
		} `json:"results"`
	}
	code, body = postJSON(t, ts.URL+"/v1/instantiate", req, &out)
	if code != http.StatusOK {
		t.Fatalf("instantiate: %d %s", code, body)
	}
	if out.Served != 2 || len(out.Results) != 2 {
		t.Fatalf("served %d of %d results: %s", out.Served, len(out.Results), body)
	}
	for i, r := range out.Results {
		if r.Error != "" || len(r.X) != 4 || len(r.Y) != 4 {
			t.Errorf("result %d malformed: %+v", i, r)
		}
	}

	// Addressing by inline spec must also work (and hit the cache).
	req2 := map[string]any{"spec": testSpec(1), "queries": req["queries"]}
	code, body = postJSON(t, ts.URL+"/v1/instantiate", req2, &out)
	if code != http.StatusOK || out.Served != 2 {
		t.Fatalf("instantiate by spec: %d %s", code, body)
	}

	// The structure listing shows the cached entry.
	var ls struct {
		Structures []StructureInfo `json:"structures"`
	}
	if code := getJSON(t, ts.URL+"/v1/structures", &ls); code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if len(ls.Structures) != 1 || ls.Structures[0].Key != info.Key {
		t.Fatalf("listing wrong: %+v", ls.Structures)
	}
}

func TestInstantiateErrors(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 2})

	// Unknown key is a 404, not an implicit generation.
	code, _ := postJSON(t, ts.URL+"/v1/instantiate", map[string]any{
		"key":     "nope",
		"queries": []map[string][]int{{"ws": {1}, "hs": {1}}},
	}, nil)
	if code != http.StatusNotFound {
		t.Errorf("unknown key: got %d, want 404", code)
	}

	// Batches above MaxBatch are rejected.
	qs := make([]map[string][]int, 3)
	for i := range qs {
		qs[i] = map[string][]int{"ws": {12, 12, 12, 12}, "hs": {12, 12, 12, 12}}
	}
	code, _ = postJSON(t, ts.URL+"/v1/instantiate", map[string]any{
		"spec": testSpec(1), "queries": qs,
	}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("oversized batch: got %d, want 400", code)
	}

	// Supplying both key and spec is ambiguous and refused.
	code, _ = postJSON(t, ts.URL+"/v1/instantiate", map[string]any{
		"key":     "whatever",
		"spec":    testSpec(1),
		"queries": []map[string][]int{testQuery(t, 0)},
	}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("key+spec: got %d, want 400", code)
	}

	// Missing both key and spec.
	code, _ = postJSON(t, ts.URL+"/v1/instantiate", map[string]any{
		"queries": []map[string][]int{{"ws": {1}, "hs": {1}}},
	}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("missing key/spec: got %d, want 400", code)
	}

	// The inline-spec path must enforce the same generation budget cap as
	// POST /v1/structures.
	code, _ = postJSON(t, ts.URL+"/v1/instantiate", map[string]any{
		"spec":    GenerateSpec{Circuit: "circ01", Iterations: 1 << 30},
		"queries": []map[string][]int{testQuery(t, 0)},
	}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("over-budget inline spec: got %d, want 400", code)
	}

	// Unknown circuit and absurd budget are rejected up front.
	code, _ = postJSON(t, ts.URL+"/v1/structures", GenerateSpec{Circuit: "bogus"}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("unknown circuit: got %d, want 400", code)
	}
	code, _ = postJSON(t, ts.URL+"/v1/structures",
		GenerateSpec{Circuit: "circ01", Iterations: 1 << 30}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("over-budget: got %d, want 400", code)
	}
}

// TestBodySizeLimit checks oversized request bodies are refused before
// they are decoded, so the batch cap also bounds per-request memory.
func TestBodySizeLimit(t *testing.T) {
	_, ts := newTestServer(t, Config{MaxBatch: 2})
	qs := make([]map[string][]int, 50000)
	for i := range qs {
		qs[i] = testQuery(t, 0)
	}
	code, body := postJSON(t, ts.URL+"/v1/instantiate", map[string]any{
		"spec": testSpec(1), "queries": qs,
	}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("multi-MB body: got %d (%s), want 400", code, body)
	}
	big := map[string]any{"circuit": "circ01", "effort": strings.Repeat("x", 8192)}
	code, _ = postJSON(t, ts.URL+"/v1/structures", big, nil)
	if code != http.StatusBadRequest {
		t.Errorf("oversized spec body: got %d, want 400", code)
	}
}

// TestBudgetCaps checks every work-multiplying spec field is bounded, not
// just iterations.
func TestBudgetCaps(t *testing.T) {
	s := New(Config{MaxGenerateIterations: 100})
	t.Cleanup(s.Close)
	for _, bad := range []GenerateSpec{
		{Circuit: "circ01", Iterations: 101},
		{Circuit: "circ01", BDIOSteps: 101},
		{Circuit: "circ01", Chains: maxChains + 1},
	} {
		if _, err := s.Generate(bad); err == nil {
			t.Errorf("spec %+v should exceed the budget cap", bad)
		}
	}
	// Negative cap disables the iteration/bdio bounds but not the chains one.
	s = New(Config{MaxGenerateIterations: -1})
	t.Cleanup(s.Close)
	if err := s.checkBudget(GenerateSpec{Circuit: "circ01", Iterations: 1 << 30}); err != nil {
		t.Errorf("disabled cap still rejected iterations: %v", err)
	}
	if err := s.checkBudget(GenerateSpec{Circuit: "circ01", Chains: maxChains + 1}); err == nil {
		t.Error("chains bound should hold even with the cap disabled")
	}
}

// TestConcurrentGenerateAndList overlaps in-flight generations with cache
// reads (listing, lookup, cached instantiate) — under -race this covers
// the publication of entry results to handlers that find the entry in the
// cache rather than through once.Do.
func TestConcurrentGenerateAndList(t *testing.T) {
	s, ts := newTestServer(t, Config{})
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.Generate(testSpec(int64(20 + i))); err != nil {
				t.Error(err)
			}
		}(i)
	}
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < 20; k++ {
				if code := getJSON(t, ts.URL+"/v1/structures", nil); code != http.StatusOK {
					t.Errorf("list: %d", code)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestGenerationDedup checks a thundering herd of identical generation
// requests shares one annealing run.
func TestGenerationDedup(t *testing.T) {
	s := New(Config{})
	t.Cleanup(s.Close)
	const clients = 8
	var wg sync.WaitGroup
	infos := make([]StructureInfo, clients)
	errs := make([]error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			infos[i], errs[i] = s.Generate(testSpec(3))
		}(i)
	}
	wg.Wait()
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			t.Fatalf("client %d: %v", i, errs[i])
		}
		if infos[i].Key != infos[0].Key || infos[i].Placements != infos[0].Placements {
			t.Fatalf("client %d saw a different structure: %+v vs %+v", i, infos[i], infos[0])
		}
	}
	if got := s.order.Len(); got != 1 {
		t.Fatalf("cache holds %d entries after dedup, want 1", got)
	}
}

// TestLRUEviction checks the cache bound holds and evicts oldest first.
func TestLRUEviction(t *testing.T) {
	s := New(Config{CacheSize: 2})
	t.Cleanup(s.Close)
	keys := make([]string, 3)
	for i := range keys {
		info, err := s.Generate(testSpec(int64(10 + i)))
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = info.Key
	}
	if got := s.order.Len(); got != 2 {
		t.Fatalf("cache holds %d entries, want 2", got)
	}
	if _, ok := s.lookup(keys[0]); ok {
		t.Error("oldest entry survived eviction")
	}
	for _, k := range keys[1:] {
		if _, ok := s.lookup(k); !ok {
			t.Errorf("entry %s evicted too early", k)
		}
	}
}

// TestSpecNormalization checks equivalent specs share one cache key and
// invalid enum values are rejected.
func TestSpecNormalization(t *testing.T) {
	a := GenerateSpec{Circuit: "circ01"}
	// Identical up to defaulting: explicit effort/backup names, chains 1
	// (the explorer runs one chain for 0 anyway), and the balanced preset's
	// concrete budgets (300/300) spelled out.
	b := GenerateSpec{Circuit: "circ01", Effort: "balanced", Backup: "tree",
		Chains: 1, Iterations: 300, BDIOSteps: 300}
	if err := a.normalize(); err != nil {
		t.Fatal(err)
	}
	if err := b.normalize(); err != nil {
		t.Fatal(err)
	}
	if a.key() != b.key() {
		t.Errorf("equivalent specs map to different keys:\n%s\n%s", a.key(), b.key())
	}
	// Effort presets and their explicit budget equivalents share a key:
	// quick resolves to iterations 60 / bdio 80.
	p := GenerateSpec{Circuit: "circ01", Effort: "quick"}
	q := GenerateSpec{Circuit: "circ01", Iterations: 60, BDIOSteps: 80}
	if err := p.normalize(); err != nil {
		t.Fatal(err)
	}
	if err := q.normalize(); err != nil {
		t.Fatal(err)
	}
	if p.key() != q.key() {
		t.Errorf("effort preset and explicit budgets map to different keys:\n%s\n%s", p.key(), q.key())
	}
	for _, bad := range []GenerateSpec{
		{Circuit: "circ01", Effort: "turbo"},
		{Circuit: "circ01", Backup: "magic"},
		{Circuit: "circ01", Iterations: -1},
		{},
	} {
		if err := bad.normalize(); err == nil {
			t.Errorf("spec %+v should not normalize", bad)
		}
	}
}

// openStore opens a store directory, failing the test on error.
func openStore(t *testing.T, dir string) *store.Dir {
	t.Helper()
	st, err := store.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// TestStoreWarmRestart is the paper's premise as a test: generate once,
// kill the server, and a fresh server over the same store directory must
// answer /v1/instantiate from disk without a single annealing run.
func TestStoreWarmRestart(t *testing.T) {
	dir := t.TempDir()

	// First server: generate and persist.
	s1 := New(Config{Store: openStore(t, dir), Logf: t.Logf})
	t.Cleanup(s1.Close)
	info, err := s1.Generate(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	s1.Flush() // wait for the background write-through
	if runs := s1.genRuns.Load(); runs != 1 {
		t.Fatalf("first server ran %d generations, want 1", runs)
	}

	// Second server, same directory — simulates a daemon restart.
	s2, ts := newTestServer(t, Config{Store: openStore(t, dir), Logf: t.Logf})
	n, err := s2.Warm(-1)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("warm-loaded %d structures, want 1", n)
	}

	// The warmed entry must be a cache hit with the same identity.
	again, err := s2.Generate(testSpec(1))
	if err != nil {
		t.Fatal(err)
	}
	if !again.Cached {
		t.Error("warm-started structure not reported as cached")
	}
	if again.Key != info.Key || again.Placements != info.Placements {
		t.Fatalf("restarted server serves a different structure: %+v vs %+v", again, info)
	}

	// And the wire-level instantiate path works end to end.
	var out struct {
		Served int `json:"served"`
	}
	code, body := postJSON(t, ts.URL+"/v1/instantiate", map[string]any{
		"spec":    testSpec(1),
		"queries": []map[string][]int{testQuery(t, 0)},
	}, &out)
	if code != http.StatusOK || out.Served != 1 {
		t.Fatalf("instantiate after restart: %d %s", code, body)
	}
	if runs := s2.genRuns.Load(); runs != 0 {
		t.Fatalf("restarted server ran %d generations, want 0 (must serve from disk)", runs)
	}
}

// TestStoreReadThrough covers the no-warm path: even without Warm, a cache
// miss consults the store before regenerating.
func TestStoreReadThrough(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Config{Store: openStore(t, dir)})
	t.Cleanup(s1.Close)
	if _, err := s1.Generate(testSpec(5)); err != nil {
		t.Fatal(err)
	}
	s1.Flush()

	s2 := New(Config{Store: openStore(t, dir)})
	t.Cleanup(s2.Close)
	t.Cleanup(s2.Flush) // the fresh-spec generation below persists in the background
	info, err := s2.Generate(testSpec(5))
	if err != nil {
		t.Fatal(err)
	}
	if runs := s2.genRuns.Load(); runs != 0 {
		t.Fatalf("read-through ran %d generations, want 0", runs)
	}
	if info.Placements == 0 {
		t.Fatal("read-through returned an empty structure")
	}
	// A different spec is a genuine miss and must still generate.
	if _, err := s2.Generate(testSpec(6)); err != nil {
		t.Fatal(err)
	}
	if runs := s2.genRuns.Load(); runs != 1 {
		t.Fatalf("fresh spec ran %d generations, want 1", runs)
	}
}

// TestStoreCorruptFallsBack: a corrupted structure file must not take the
// key down — the server regenerates and re-persists.
func TestStoreCorruptFallsBack(t *testing.T) {
	dir := t.TempDir()
	st := openStore(t, dir)
	s1 := New(Config{Store: st})
	t.Cleanup(s1.Close)
	if _, err := s1.Generate(testSpec(9)); err != nil {
		t.Fatal(err)
	}
	s1.Flush()

	// Corrupt the structure file on disk.
	spec := testSpec(9)
	if err := spec.normalize(); err != nil {
		t.Fatal(err)
	}
	meta, ok := st.Stat(spec.key())
	if !ok {
		t.Fatal("persisted entry missing")
	}
	corruptFile(t, dir, meta.File)

	s2 := New(Config{Store: openStore(t, dir)})
	t.Cleanup(s2.Close)
	t.Cleanup(s2.Flush) // the fallback generation re-persists in the background
	info, err := s2.Generate(testSpec(9))
	if err != nil {
		t.Fatalf("corrupt store entry should fall back to generation: %v", err)
	}
	if runs := s2.genRuns.Load(); runs != 1 {
		t.Fatalf("fallback ran %d generations, want 1", runs)
	}
	if info.Placements == 0 {
		t.Fatal("fallback returned an empty structure")
	}
}

// TestStorePersistedListing checks GET /v1/structures reports manifest
// rows with their metadata alongside the in-memory cache.
func TestStorePersistedListing(t *testing.T) {
	dir := t.TempDir()
	s1 := New(Config{Store: openStore(t, dir)})
	t.Cleanup(s1.Close)
	if _, err := s1.Generate(testSpec(3)); err != nil {
		t.Fatal(err)
	}
	s1.Flush()

	// Fresh server, no warm: entry is persisted but not cached.
	_, ts := newTestServer(t, Config{Store: openStore(t, dir)})
	var ls struct {
		Structures []StructureInfo `json:"structures"`
		Persisted  []PersistedInfo `json:"persisted"`
	}
	if code := getJSON(t, ts.URL+"/v1/structures", &ls); code != http.StatusOK {
		t.Fatalf("list: %d", code)
	}
	if len(ls.Structures) != 0 {
		t.Fatalf("cold server lists %d cached structures, want 0", len(ls.Structures))
	}
	if len(ls.Persisted) != 1 {
		t.Fatalf("listed %d persisted structures, want 1", len(ls.Persisted))
	}
	p := ls.Persisted[0]
	if p.Circuit != "circ01" || p.Placements == 0 || p.Bytes == 0 || p.Created.IsZero() {
		t.Fatalf("persisted row missing metadata: %+v", p)
	}
	if p.Cached {
		t.Error("cold entry reported as cached")
	}
}

// corruptFile flips a byte in the middle of a store file.
func corruptFile(t *testing.T, dir, name string) {
	t.Helper()
	path := filepath.Join(dir, name)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMethodNotAllowed sweeps wrong-method requests.
func TestMethodNotAllowed(t *testing.T) {
	_, ts := newTestServer(t, Config{})
	for path, method := range map[string]string{
		"/v1/circuits":    http.MethodPost,
		"/v1/instantiate": http.MethodGet,
	} {
		req, err := http.NewRequest(method, ts.URL+path, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("%s %s: got %d, want 405", method, path, resp.StatusCode)
		}
	}
	if _, err := http.Get(ts.URL + "/v1/structures"); err != nil {
		t.Fatal(err)
	}
}
