// Observability wiring for the serve layer: one obs.Registry per Server,
// populated at construction with every metric family the daemon exports,
// plus the HTTP middleware that traces requests and feeds the per-route
// histograms and the slow-query log.
//
// Conventions (see ARCHITECTURE.md "Observability"):
//
//   - Every family is prefixed mps_ and uses base units (seconds, bytes).
//   - Label sets are bounded by construction: routes come from the fixed
//     routeLabel table, stages from the obs.Stage enum, peers from the
//     static cluster membership, job priorities from the submitter's
//     fixed priority scheme. Nothing client-controlled becomes a label.
//   - Counters owned by other layers (cluster, jobs) stay where they are
//     — atomics next to the code that increments them — and are exported
//     through scrape-time CounterFunc/GaugeFunc closures, so /healthz
//     JSON stays byte-identical while /metrics reads the same values.
package serve

import (
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"time"

	"mps/internal/cluster"
	"mps/internal/obs"
)

// routeLabels is the closed set of route label values. Unmatched paths
// collapse into "other" so a scanner probing random URLs cannot mint
// series.
var routeLabels = []string{
	"healthz", "metrics", "circuits", "backends", "structures",
	"instantiate", "jobs", "job", "cluster_structure", "cluster_accept",
	"cluster_rebalance", "debug_traces", "debug_trace", "other",
}

// routeLabel maps a request path to its route label.
func routeLabel(path string) string {
	switch path {
	case "/healthz":
		return "healthz"
	case "/metrics":
		return "metrics"
	case "/v1/circuits":
		return "circuits"
	case "/v1/backends":
		return "backends"
	case "/v1/structures":
		return "structures"
	case "/v1/instantiate":
		return "instantiate"
	case "/v1/jobs":
		return "jobs"
	case "/v1/cluster/structure":
		return "cluster_structure"
	case "/v1/cluster/accept":
		return "cluster_accept"
	case "/v1/cluster/rebalance":
		return "cluster_rebalance"
	case "/v1/debug/traces":
		return "debug_traces"
	}
	if len(path) > len("/v1/jobs/") && path[:len("/v1/jobs/")] == "/v1/jobs/" {
		return "job"
	}
	if len(path) > len("/v1/debug/traces/") && path[:len("/v1/debug/traces/")] == "/v1/debug/traces/" {
		return "debug_trace"
	}
	return "other"
}

// serverMetrics holds the Server's registry and the hot-path metric
// children, resolved once at construction so request handling never does
// a labeled lookup.
type serverMetrics struct {
	reg *obs.Registry

	reqCount  *obs.CounterVec
	routeHist map[string]*obs.Histogram

	// Per-stage global accumulation, indexed by obs.Stage. Spans record
	// here and into the request's Trace in one call (observe), so the
	// stage totals do not depend on a request surviving to the middleware
	// epilogue — background fetches count too.
	stageDur [obs.NumStages]*obs.Counter
	stageOps [obs.NumStages]*obs.Counter

	genRuns         *obs.Counter
	persistErrs     *obs.Counter
	loadErrs        *obs.Counter
	cacheEvictions  *obs.Counter
	forwardedServed *obs.Counter
	slowQueries     *obs.Counter
}

// newServerMetrics builds the registry for s. Gauge and counter funcs
// close over s and read live state at scrape time; they take the same
// locks a request would (briefly), never the other way around, so a
// scrape can't deadlock the serving path.
func newServerMetrics(s *Server) *serverMetrics {
	reg := obs.NewRegistry()
	m := &serverMetrics{reg: reg, routeHist: make(map[string]*obs.Histogram, len(routeLabels))}

	m.reqCount = reg.CounterVec("mps_http_requests_total",
		"HTTP requests served, by route and status code.", "route", "code")
	durVec := reg.HistogramVec("mps_http_request_duration_seconds",
		"HTTP request latency by route.", "route")
	for _, rt := range routeLabels {
		m.routeHist[rt] = durVec.With(rt)
	}

	stageDur := reg.DurationCounterVec("mps_stage_duration_seconds_total",
		"Time attributed to each request stage (stages may overlap; see internal/obs).", "stage")
	stageOps := reg.CounterVec("mps_stage_ops_total",
		"Spans recorded per request stage.", "stage")
	for _, st := range obs.Stages() {
		m.stageDur[st] = stageDur.With(st.String())
		m.stageOps[st] = stageOps.With(st.String())
	}

	m.genRuns = reg.Counter("mps_generation_runs_total",
		"Full annealing runs started (cache and store hits excluded).")
	m.persistErrs = reg.Counter("mps_store_persist_errors_total",
		"Background store writes that failed.")
	m.loadErrs = reg.Counter("mps_store_load_errors_total",
		"Store reads that failed (corrupt file, mismatched circuit).")
	m.cacheEvictions = reg.Counter("mps_cache_evictions_total",
		"Finished entries evicted from the LRU cache.")
	m.forwardedServed = reg.Counter("mps_forwarded_served_total",
		"Client requests served here that a peer forwarded (cluster peer-protocol traffic excluded).")
	m.slowQueries = reg.Counter("mps_slow_queries_total",
		"Requests over the configured slow-query threshold.")

	reg.GaugeFunc("mps_cache_entries",
		"Entries (finished or in flight) in the LRU cache.", func() float64 {
			s.mu.Lock()
			n := len(s.cache)
			s.mu.Unlock()
			return float64(n)
		})
	reg.GaugeFunc("mps_batch_slots_in_use",
		"Instantiate batch slots currently held.", func() float64 {
			return float64(len(s.batchSlots))
		})
	reg.GaugeFunc("mps_batch_slots_limit",
		"Configured server-wide concurrent instantiate batch bound.", func() float64 {
			return float64(s.cfg.MaxConcurrentBatches)
		})

	// Jobs: live queue gauges plus the scheduler's monotonic lifetime
	// counters. One Metrics() snapshot per gauge keeps each closure
	// self-contained; the scheduler lock is held for microseconds.
	reg.GaugeVecFunc("mps_jobs_queue_depth",
		"Queued generation jobs by priority.", "priority", func() map[string]float64 {
			return s.sched.Metrics().QueueDepth
		})
	reg.GaugeFunc("mps_jobs_running",
		"Generation jobs currently holding a worker.", func() float64 {
			return float64(s.sched.Metrics().Running)
		})
	reg.GaugeFunc("mps_jobs_oldest_queued_seconds",
		"Age of the longest-queued job (0 when the queue is empty).", func() float64 {
			return s.sched.Metrics().OldestQueuedAge.Seconds()
		})
	reg.GaugeFunc("mps_jobs_oldest_running_seconds",
		"Age of the longest-running job (0 when idle).", func() float64 {
			return s.sched.Metrics().OldestRunningAge.Seconds()
		})
	reg.CounterVecFunc("mps_jobs_transitions_total",
		"Lifetime job lifecycle transitions by event.", "event", func() map[string]float64 {
			t := s.sched.Totals()
			return map[string]float64{
				"submitted":     float64(t.Submitted),
				"deduped":       float64(t.Deduped),
				"recorded_done": float64(t.RecordedDone),
				"started":       float64(t.Started),
				"done":          float64(t.Done),
				"failed":        float64(t.Failed),
				"cancelled":     float64(t.Cancelled),
			}
		})

	if s.cfg.Store != nil {
		st := s.cfg.Store
		reg.GaugeFunc("mps_store_entries",
			"Structures in the disk store manifest.", func() float64 {
				return float64(st.Stats().Entries)
			})
		reg.GaugeFunc("mps_store_portfolios",
			"Portfolio grouping rows in the disk store manifest.", func() float64 {
				return float64(st.Stats().Portfolios)
			})
		reg.GaugeFunc("mps_store_bytes",
			"Total bytes of persisted structure files.", func() float64 {
				return float64(st.Stats().Bytes)
			})
	}

	if c := s.cluster; c != nil {
		reg.CounterVecFunc("mps_cluster_events_total",
			"Cluster routing outcomes by event.", "event", func() map[string]float64 {
				cs := c.Stats()
				return map[string]float64{
					"forward":      float64(cs.Forwards),
					"fallback":     float64(cs.Fallbacks),
					"fetch":        float64(cs.Fetches),
					"breaker_skip": float64(cs.BreakerSkips),
					"hot_fanout":   float64(c.HotFanouts()),
				}
			})
		reg.GaugeVecFunc("mps_cluster_breaker_state",
			"Per-peer circuit breaker state (0 closed, 1 half-open, 2 open); peers never contacted are absent.",
			"peer", c.BreakerGauges)
		// Ring shares are fixed for the life of the membership: compute
		// once, serve the same map every scrape.
		shares := c.Ring().Shares()
		reg.GaugeVecFunc("mps_cluster_ring_share",
			"Fraction of the key space this ring assigns to each node.",
			"peer", func() map[string]float64 { return shares })
	}

	if ts := s.traces; ts != nil {
		reg.CounterFunc("mps_traces_offered_total",
			"Completed requests offered to the trace store.", func() float64 {
				offered, _, _ := ts.Stats()
				return float64(offered)
			})
		reg.CounterFunc("mps_traces_retained_total",
			"Traces kept by tail sampling (error, slow, cross-node, or sampled).", func() float64 {
				_, retained, _ := ts.Stats()
				return float64(retained)
			})
		reg.GaugeFunc("mps_traces_buffered",
			"Trace segments currently in the ring buffer.", func() float64 {
				_, _, buffered := ts.Stats()
				return float64(buffered)
			})
	}

	// Go runtime health — "is this node GC-bound?" answerable from
	// /metrics alone. The memstats-backed gauges share one cached
	// ReadMemStats sample (refreshed at most once a second) because each
	// read is a stop-the-world, and a scrape asks for several.
	var msc memStatsCache
	reg.GaugeFunc("go_goroutines",
		"Live goroutines.", func() float64 {
			return float64(runtime.NumGoroutine())
		})
	reg.GaugeFunc("go_gomaxprocs",
		"GOMAXPROCS — the scheduler's OS-thread parallelism bound.", func() float64 {
			return float64(runtime.GOMAXPROCS(0))
		})
	reg.GaugeFunc("go_memstats_heap_inuse_bytes",
		"Heap bytes in in-use spans.", func() float64 {
			return float64(msc.read().HeapInuse)
		})
	reg.GaugeFunc("go_memstats_heap_idle_bytes",
		"Heap bytes in idle spans (returnable to the OS).", func() float64 {
			return float64(msc.read().HeapIdle)
		})
	reg.CounterFunc("go_gc_pause_seconds_total",
		"Cumulative stop-the-world GC pause time.", func() float64 {
			return float64(msc.read().PauseTotalNs) / 1e9
		})
	reg.GaugeFunc("go_gc_last_gc_age_seconds",
		"Seconds since the last completed GC cycle (0 before the first).", func() float64 {
			last := msc.read().LastGC
			if last == 0 {
				return 0
			}
			age := time.Since(time.Unix(0, int64(last))).Seconds()
			if age < 0 {
				return 0
			}
			return age
		})
	return m
}

// memStatsCache amortizes runtime.ReadMemStats across the gauges that
// read it: one stop-the-world sample per refresh window, not per gauge.
type memStatsCache struct {
	mu   sync.Mutex
	at   time.Time
	snap runtime.MemStats
}

func (c *memStatsCache) read() runtime.MemStats {
	c.mu.Lock()
	defer c.mu.Unlock()
	if now := time.Now(); c.at.IsZero() || now.Sub(c.at) > time.Second {
		runtime.ReadMemStats(&c.snap)
		c.at = now
	}
	return c.snap
}

// observe records one span globally and on the request's trace (tr may be
// nil — background work). Allocation-free.
func (m *serverMetrics) observe(tr *obs.Trace, st obs.Stage, d time.Duration) {
	tr.Observe(st, d)
	if d > 0 {
		m.stageDur[st].AddDuration(d)
	}
	m.stageOps[st].Inc()
}

// endSpan commits sp and feeds the global per-stage counters — the span
// counterpart of observe (SpanRef.End already fed the trace's own
// aggregates). Allocation-free; safe on zero refs.
func (m *serverMetrics) endSpan(sp obs.SpanRef) time.Duration {
	d := sp.End()
	if d > 0 {
		m.stageDur[sp.Stage()].AddDuration(d)
	}
	m.stageOps[sp.Stage()].Inc()
	return d
}

// statusRecorder captures the response status for the request metrics and
// the slow-query log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (w *statusRecorder) WriteHeader(code int) {
	w.status = code
	w.ResponseWriter.WriteHeader(code)
}

// Flush keeps streaming handlers streaming through the wrapper.
func (w *statusRecorder) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap lets http.ResponseController reach the underlying writer for
// capabilities (hijack, deadlines) the wrapper does not intercept.
func (w *statusRecorder) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// instrument wraps the routing table with the observability epilogue:
// attach a Trace to the context — linked to the upstream span when the
// request carries an X-Mps-Trace header — then on completion record the
// per-route latency histogram and request counter, count forwarded client
// traffic, offer the trace to the tail-sampling store, and emit the
// slow-query line (with the trace ID as exemplar) when the request ran
// over threshold.
//
// The epilogue runs even when the handler panics — the deferred close
// treats the in-flight response as a 500 so the trace is finished and
// retained under the error rule, never leaked as a live span — and then
// lets the panic propagate to net/http's connection teardown.
func (s *Server) instrument(next http.Handler) http.Handler {
	m := s.metrics
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		route := routeLabel(r.URL.Path)
		upID, upSpan, _ := obs.ParseTraceHeader(r.Header.Get(obs.TraceHeader))
		ctx, tr := obs.WithTraceLink(r.Context(), upID, upSpan)
		w.Header().Set(obs.TraceIDHeader, tr.ID().String())
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()

		panicked := true
		finish := func() {
			elapsed := time.Since(start)
			status := rec.status
			if panicked && status < 500 {
				// The handler died mid-flight; whatever status the partial
				// write carried, the request failed.
				status = http.StatusInternalServerError
			}
			m.routeHist[route].Observe(elapsed)
			m.reqCount.With(route, strconv.Itoa(status)).Inc()
			// Forwarded *client* requests only: the /v1/cluster/* endpoints
			// always carry the forward mark (it is the peer-protocol loop
			// guard), so counting them would make every fetch look like a
			// forwarded client call.
			if forwarded(r) && route != "cluster_structure" &&
				route != "cluster_accept" && route != "cluster_rebalance" {
				m.forwardedServed.Inc()
			}
			var from string
			if fwd, _, err := cluster.ParseForward(r.Header.Get(cluster.ForwardHeader)); err == nil {
				from = fwd.From
			}
			s.traces.Offer(tr, route, from, status, elapsed)
			if s.cfg.SlowQuery > 0 && elapsed >= s.cfg.SlowQuery {
				m.slowQueries.Inc()
				line := obs.SlowQueryEntry{
					Method:   r.Method,
					Path:     r.URL.Path,
					Route:    route,
					Status:   status,
					Millis:   float64(elapsed) / float64(time.Millisecond),
					ServedBy: w.Header().Get(cluster.ServedByHeader),
					TraceID:  tr.ID().String(),
					Key:      tr.RootKey(),
					Stages:   tr.StageBreakdown(),
				}
				s.logf("slow-query %s", line.Render())
			}
		}
		defer func() {
			if panicked {
				finish()
			}
		}()
		next.ServeHTTP(rec, r.WithContext(ctx))
		panicked = false
		finish()
	})
}

// Registry exposes the server's metric registry — cmd/mpsd mounts its
// Handler, tests scrape it directly.
func (s *Server) Registry() *obs.Registry { return s.metrics.reg }
