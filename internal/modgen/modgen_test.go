package modgen

import (
	"math/rand"
	"testing"
	"testing/quick"

	"mps/internal/circuits"
)

func TestMOSDimsMonotoneInW(t *testing.T) {
	g := NewMOS(1, 500, 0.35, 2)
	prevArea := 0
	for _, W := range []float64{1, 5, 20, 80, 320} {
		w, h := g.Dims([]float64{W, 0.5})
		if w <= 0 || h <= 0 {
			t.Fatalf("W=%g: non-positive dims %d x %d", W, w, h)
		}
		area := w * h
		if area < prevArea {
			t.Errorf("W=%g: area %d shrank below %d — area must grow with device width", W, area, prevArea)
		}
		prevArea = area
	}
}

func TestMOSFoldingBoundsAspect(t *testing.T) {
	g := NewMOS(1, 1000, 0.35, 2)
	// A very wide device must be folded: aspect ratio stays within sane
	// bounds rather than becoming a 1-finger sliver.
	w, h := g.Dims([]float64{500, 0.5})
	aspect := float64(w) / float64(h)
	if aspect < 0.05 || aspect > 20 {
		t.Errorf("aspect = %.2f for W=500, want folding to keep it in [0.05, 20]", aspect)
	}
}

func TestMOSClampsParams(t *testing.T) {
	g := NewMOS(2, 10, 0.35, 1)
	wLo, hLo := g.Dims([]float64{-5, 0.1})
	wMin, hMin := g.Dims([]float64{2, 0.35})
	if wLo != wMin || hLo != hMin {
		t.Errorf("out-of-range params not clamped: got %dx%d, want %dx%d", wLo, hLo, wMin, hMin)
	}
}

func TestMatchedPairEvenFolds(t *testing.T) {
	g := NewMatchedPair(1, 300, 0.35, 2)
	for _, W := range []float64{1, 10, 50, 200} {
		w, h := g.Dims([]float64{W, 0.5})
		if w <= 0 || h <= 0 {
			t.Fatalf("W=%g: non-positive dims", W)
		}
	}
	// A pair is bigger than a single device of the same W/L.
	single := NewMOS(1, 300, 0.35, 2)
	sw, sh := single.Dims([]float64{50, 0.5})
	pw, ph := g.Dims([]float64{50, 0.5})
	if pw*ph <= sw*sh {
		t.Errorf("pair area %d should exceed single-device area %d", pw*ph, sw*sh)
	}
}

func TestMIMCapSquareAndMonotone(t *testing.T) {
	g := NewMIMCap(0.1, 100)
	prev := 0
	for _, C := range []float64{0.1, 1, 10, 100} {
		w, h := g.Dims([]float64{C})
		if w != h {
			t.Errorf("C=%g: MIM cap should be square, got %d x %d", C, w, h)
		}
		if w <= prev {
			t.Errorf("C=%g: side %d did not grow beyond %d", C, w, prev)
		}
		prev = w
	}
}

func TestPolyResGrowsWithR(t *testing.T) {
	g := NewPolyRes(1, 1000)
	aw, ah := g.Dims([]float64{1})
	bw, bh := g.Dims([]float64{1000})
	if bw*bh <= aw*ah {
		t.Errorf("1MΩ resistor area %d should exceed 1kΩ area %d", bw*bh, aw*ah)
	}
}

func TestScalableEndpoints(t *testing.T) {
	g := &Scalable{WMin: 10, WMax: 50, HMin: 8, HMax: 24}
	w, h := g.Dims([]float64{0})
	if w != 10 || h != 8 {
		t.Errorf("t=0: got %dx%d, want 10x8", w, h)
	}
	w, h = g.Dims([]float64{1})
	if w != 50 || h != 24 {
		t.Errorf("t=1: got %dx%d, want 50x24", w, h)
	}
	w, h = g.Dims([]float64{2}) // clamped
	if w != 50 || h != 24 {
		t.Errorf("t=2 should clamp to max, got %dx%d", w, h)
	}
}

func TestScalableMonotoneProperty(t *testing.T) {
	g := &Scalable{WMin: 5, WMax: 100, HMin: 5, HMax: 60, HExponent: 0.7}
	f := func(a, b float64) bool {
		ta, tb := FloatRange{0, 1}.Clamp(a), FloatRange{0, 1}.Clamp(b)
		if ta > tb {
			ta, tb = tb, ta
		}
		wa, ha := g.Dims([]float64{ta})
		wb, hb := g.Dims([]float64{tb})
		return wa <= wb && ha <= hb
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestDefaultSizerCoversAllBlocks(t *testing.T) {
	c := circuits.MustByName("Mixer")
	s := DefaultSizer(c)
	if s.NumVars() != c.N() {
		t.Fatalf("NumVars = %d, want %d (one knob per block)", s.NumVars(), c.N())
	}
	x := make([]float64, s.NumVars())
	for i := range x {
		x[i] = 0.5
	}
	ws, hs, err := s.Dims(x)
	if err != nil {
		t.Fatal(err)
	}
	for i, blk := range c.Blocks {
		if !blk.WRange().Contains(ws[i]) || !blk.HRange().Contains(hs[i]) {
			t.Errorf("block %d dims %dx%d outside bounds w%v h%v",
				i, ws[i], hs[i], blk.WRange(), blk.HRange())
		}
	}
}

func TestSizerDimsAlwaysInBounds(t *testing.T) {
	c := circuits.MustByName("TwoStageOpamp")
	s, err := TwoStageOpampSizer(c)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(7))
	ranges := s.VarRanges()
	for trial := 0; trial < 200; trial++ {
		x := make([]float64, s.NumVars())
		for i, r := range ranges {
			x[i] = r.Lerp(rng.Float64()*1.4 - 0.2) // include out-of-range proposals
		}
		ws, hs, err := s.Dims(x)
		if err != nil {
			t.Fatal(err)
		}
		for i, blk := range c.Blocks {
			if !blk.WRange().Contains(ws[i]) || !blk.HRange().Contains(hs[i]) {
				t.Fatalf("trial %d: block %d dims %dx%d out of bounds", trial, i, ws[i], hs[i])
			}
		}
	}
}

func TestTwoStageOpampSizerVarCount(t *testing.T) {
	c := circuits.MustByName("TwoStageOpamp")
	s, err := TwoStageOpampSizer(c)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumVars() != 9 {
		t.Errorf("NumVars = %d, want 9", s.NumVars())
	}
	if got := len(s.VarRanges()); got != 9 {
		t.Errorf("VarRanges len = %d, want 9", got)
	}
}

func TestTwoStageOpampSizerWrongCircuit(t *testing.T) {
	c := circuits.MustByName("Mixer")
	if _, err := TwoStageOpampSizer(c); err == nil {
		t.Error("TwoStageOpampSizer on Mixer should fail")
	}
}

func TestNewSizerValidation(t *testing.T) {
	c := circuits.MustByName("circ01") // 4 blocks
	gen := func() Generator { return &Scalable{WMin: 1, WMax: 2, HMin: 1, HMax: 2} }

	// Too few bindings.
	if _, err := NewSizer(c, []Binding{{Block: 0, Gen: gen(), Offset: 0}}); err == nil {
		t.Error("want error for missing bindings")
	}
	// Duplicate block.
	dup := []Binding{
		{Block: 0, Gen: gen(), Offset: 0},
		{Block: 0, Gen: gen(), Offset: 1},
		{Block: 2, Gen: gen(), Offset: 2},
		{Block: 3, Gen: gen(), Offset: 3},
	}
	if _, err := NewSizer(c, dup); err == nil {
		t.Error("want error for duplicate block binding")
	}
	// Overlapping offsets.
	overlap := []Binding{
		{Block: 0, Gen: gen(), Offset: 0},
		{Block: 1, Gen: gen(), Offset: 0},
		{Block: 2, Gen: gen(), Offset: 1},
		{Block: 3, Gen: gen(), Offset: 2},
	}
	if _, err := NewSizer(c, overlap); err == nil {
		t.Error("want error for overlapping offsets")
	}
}

func TestSizerDimsWrongLength(t *testing.T) {
	c := circuits.MustByName("circ01")
	s := DefaultSizer(c)
	if _, _, err := s.Dims([]float64{0.5}); err == nil {
		t.Error("want error for short sizing vector")
	}
}

func TestFloatRange(t *testing.T) {
	r := FloatRange{2, 6}
	if r.Clamp(0) != 2 || r.Clamp(10) != 6 || r.Clamp(3) != 3 {
		t.Error("Clamp misbehaves")
	}
	if r.Lerp(0) != 2 || r.Lerp(1) != 6 || r.Lerp(0.5) != 4 {
		t.Error("Lerp misbehaves")
	}
}
