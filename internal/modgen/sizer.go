package modgen

import (
	"fmt"

	"mps/internal/netlist"
)

// Binding attaches a Generator to one block of a circuit, consuming a
// contiguous slice of the global sizing vector starting at Offset.
type Binding struct {
	Block  int
	Gen    Generator
	Offset int
}

// Sizer translates a flat device-sizing vector into the per-block dimension
// vector the multi-placement structure consumes (paper Fig. 1b: "Sizes ->
// module generator functions -> widths and heights").
type Sizer struct {
	circuit  *netlist.Circuit
	bindings []Binding
	numVars  int
}

// NewSizer builds a Sizer from explicit bindings. Every block must be bound
// exactly once and offsets must tile the vector without gaps or overlaps.
func NewSizer(c *netlist.Circuit, bindings []Binding) (*Sizer, error) {
	if len(bindings) != c.N() {
		return nil, fmt.Errorf("modgen: %d bindings for %d blocks", len(bindings), c.N())
	}
	bound := make([]bool, c.N())
	used := 0
	for _, b := range bindings {
		if b.Block < 0 || b.Block >= c.N() {
			return nil, fmt.Errorf("modgen: binding references block %d (have %d)", b.Block, c.N())
		}
		if bound[b.Block] {
			return nil, fmt.Errorf("modgen: block %d bound twice", b.Block)
		}
		bound[b.Block] = true
		used += b.Gen.NumParams()
	}
	covered := make([]bool, used)
	for _, b := range bindings {
		for k := 0; k < b.Gen.NumParams(); k++ {
			i := b.Offset + k
			if i < 0 || i >= used {
				return nil, fmt.Errorf("modgen: binding for block %d overflows sizing vector", b.Block)
			}
			if covered[i] {
				return nil, fmt.Errorf("modgen: sizing variable %d consumed twice", i)
			}
			covered[i] = true
		}
	}
	return &Sizer{circuit: c, bindings: bindings, numVars: used}, nil
}

// DefaultSizer binds every block of c to a Scalable generator (one size knob
// per block), the generic bridge used when no electrical model is available.
func DefaultSizer(c *netlist.Circuit) *Sizer {
	bindings := make([]Binding, c.N())
	for i, blk := range c.Blocks {
		bindings[i] = Binding{
			Block:  i,
			Gen:    &Scalable{WMin: blk.WMin, WMax: blk.WMax, HMin: blk.HMin, HMax: blk.HMax},
			Offset: i,
		}
	}
	s, err := NewSizer(c, bindings)
	if err != nil {
		panic(err) // construction above is correct by design
	}
	return s
}

// Circuit returns the bound circuit.
func (s *Sizer) Circuit() *netlist.Circuit { return s.circuit }

// NumVars returns the length of the sizing vector.
func (s *Sizer) NumVars() int { return s.numVars }

// VarRanges returns the legal range of each sizing variable.
func (s *Sizer) VarRanges() []FloatRange {
	out := make([]FloatRange, s.numVars)
	for _, b := range s.bindings {
		for k, r := range b.Gen.ParamRanges() {
			out[b.Offset+k] = r
		}
	}
	return out
}

// Dims maps the sizing vector x onto per-block dimensions, clamped into each
// block's designer bounds [WMin,WMax] x [HMin,HMax]. The returned slices are
// indexed by block.
func (s *Sizer) Dims(x []float64) (ws, hs []int, err error) {
	if len(x) != s.numVars {
		return nil, nil, fmt.Errorf("modgen: sizing vector has %d vars, want %d", len(x), s.numVars)
	}
	ws = make([]int, s.circuit.N())
	hs = make([]int, s.circuit.N())
	for _, b := range s.bindings {
		params := x[b.Offset : b.Offset+b.Gen.NumParams()]
		if err := checkParams(b.Gen, params); err != nil {
			return nil, nil, err
		}
		w, h := b.Gen.Dims(params)
		blk := s.circuit.Blocks[b.Block]
		ws[b.Block] = blk.WRange().Clamp(w)
		hs[b.Block] = blk.HRange().Clamp(h)
	}
	return ws, hs, nil
}

// TwoStageOpampSizer returns a Sizer for the TwoStageOpamp benchmark with an
// electrically meaningful variable set:
//
//	0: W1  diff-pair device width (µm)     [2, 200]
//	1: L1  diff-pair length (µm)           [0.35, 2]
//	2: W3  load mirror device width (µm)   [2, 150]
//	3: L3  load mirror length (µm)         [0.35, 2]
//	4: W5  tail source width (µm)          [2, 100]
//	5: L5  tail source length (µm)         [0.35, 4]
//	6: W6  output driver width (µm)        [4, 400]
//	7: L6  output driver length (µm)       [0.35, 2]
//	8: Cc  compensation capacitance (pF)   [0.5, 10]
func TwoStageOpampSizer(c *netlist.Circuit) (*Sizer, error) {
	need := []string{"DIFF", "LOAD", "TAIL", "DRV", "CC"}
	idx := make(map[string]int, len(need))
	for _, n := range need {
		i := c.BlockIndex(n)
		if i < 0 {
			return nil, fmt.Errorf("modgen: circuit %q lacks block %q", c.Name, n)
		}
		idx[n] = i
	}
	bindings := []Binding{
		{Block: idx["DIFF"], Gen: NewMatchedPair(2, 200, 0.35, 2), Offset: 0},
		{Block: idx["LOAD"], Gen: NewMatchedPair(2, 150, 0.35, 2), Offset: 2},
		{Block: idx["TAIL"], Gen: NewMOS(2, 100, 0.35, 4), Offset: 4},
		{Block: idx["DRV"], Gen: NewMOS(4, 400, 0.35, 2), Offset: 6},
		{Block: idx["CC"], Gen: NewMIMCap(0.5, 10), Offset: 8},
	}
	return NewSizer(c, bindings)
}
