// Package modgen provides parametric module generators: functions from
// electrical device parameters (transistor W/L, capacitance, resistance) to
// the integer width and height of the rectangular layout block a procedural
// generator would produce.
//
// In the paper's flow (Fig. 1b) the sizing optimizer proposes device sizes;
// module generator functions translate them into block dimensions, which are
// then fed to the multi-placement structure. The real generators are
// proprietary layout programs; these models preserve the properties the
// placer cares about — monotone, realistically-shaped (w, h) responses —
// per the substitution table in DESIGN.md §3.
package modgen

import (
	"fmt"
	"math"
)

// FloatRange is an inclusive range of a real-valued device parameter.
type FloatRange struct {
	Lo, Hi float64
}

// Clamp limits v to the range.
func (r FloatRange) Clamp(v float64) float64 {
	if v < r.Lo {
		return r.Lo
	}
	if v > r.Hi {
		return r.Hi
	}
	return v
}

// Lerp maps t in [0,1] onto the range.
func (r FloatRange) Lerp(t float64) float64 { return r.Lo + t*(r.Hi-r.Lo) }

// Generator maps a device parameter vector to block dimensions in layout
// units. Implementations must be pure functions: identical parameters yield
// identical dimensions.
type Generator interface {
	// Name identifies the generator kind (for diagnostics).
	Name() string
	// NumParams returns the length of the parameter vector Dims expects.
	NumParams() int
	// ParamRanges returns the legal range of each parameter.
	ParamRanges() []FloatRange
	// Dims returns the block width and height for the given parameters.
	// Parameters outside their ranges are clamped.
	Dims(params []float64) (w, h int)
}

// unitsPerMicron converts micron-denominated device geometry to integer
// layout units. One unit = 0.25 µm.
const unitsPerMicron = 4.0

// MOS is a folded single-transistor generator. Parameters:
//
//	0: total gate width W in µm
//	1: gate length L in µm
//
// Folding is chosen automatically to keep the block near the target aspect
// ratio: the device is split into fingers of height W/folds, laid side by
// side. Diffusion/contact overheads are modelled as constant margins.
type MOS struct {
	WRange FloatRange // legal total width, µm
	LRange FloatRange // legal length, µm
	Aspect float64    // target w/h aspect ratio, default 1
}

// NewMOS returns a MOS generator with the given W and L ranges.
func NewMOS(wLo, wHi, lLo, lHi float64) *MOS {
	return &MOS{WRange: FloatRange{wLo, wHi}, LRange: FloatRange{lLo, lHi}, Aspect: 1}
}

// Name implements Generator.
func (m *MOS) Name() string { return "mos" }

// NumParams implements Generator.
func (m *MOS) NumParams() int { return 2 }

// ParamRanges implements Generator.
func (m *MOS) ParamRanges() []FloatRange { return []FloatRange{m.WRange, m.LRange} }

// Dims implements Generator.
func (m *MOS) Dims(params []float64) (w, h int) {
	W := m.WRange.Clamp(params[0])
	L := m.LRange.Clamp(params[1])
	aspect := m.Aspect
	if aspect <= 0 {
		aspect = 1
	}
	// Choose the fold count that brings finger height close to the width a
	// folds-wide gate stack would have, targeting the aspect ratio.
	const pitchOverhead = 1.0 // µm of contact+spacing per finger
	const margin = 2.0        // µm of well/guard margin per side
	folds := int(math.Round(math.Sqrt(W * aspect / (L + pitchOverhead))))
	if folds < 1 {
		folds = 1
	}
	fingerH := W / float64(folds)
	wMicron := float64(folds)*(L+pitchOverhead) + 2*margin
	hMicron := fingerH + 2*margin
	return ceilUnits(wMicron), ceilUnits(hMicron)
}

// MatchedPair generates a common-centroid matched pair (differential pair or
// current mirror): two devices interdigitated in a 2 x folds array.
// Parameters are the same as MOS (per-device W, L).
type MatchedPair struct {
	WRange FloatRange
	LRange FloatRange
}

// NewMatchedPair returns a MatchedPair generator.
func NewMatchedPair(wLo, wHi, lLo, lHi float64) *MatchedPair {
	return &MatchedPair{WRange: FloatRange{wLo, wHi}, LRange: FloatRange{lLo, lHi}}
}

// Name implements Generator.
func (m *MatchedPair) Name() string { return "matched-pair" }

// NumParams implements Generator.
func (m *MatchedPair) NumParams() int { return 2 }

// ParamRanges implements Generator.
func (m *MatchedPair) ParamRanges() []FloatRange { return []FloatRange{m.WRange, m.LRange} }

// Dims implements Generator.
func (m *MatchedPair) Dims(params []float64) (w, h int) {
	W := m.WRange.Clamp(params[0])
	L := m.LRange.Clamp(params[1])
	const pitchOverhead = 1.0
	const margin = 2.5 // common-centroid guard rings cost more margin
	// Interdigitation ABBA: total 2W of gate folded into an even count.
	folds := int(math.Round(math.Sqrt(2 * W / (L + pitchOverhead))))
	folds += folds % 2 // even fold counts preserve the common centroid
	if folds < 2 {
		folds = 2
	}
	fingerH := 2 * W / float64(folds)
	wMicron := float64(folds)*(L+pitchOverhead) + 2*margin
	hMicron := fingerH + 2*margin
	return ceilUnits(wMicron), ceilUnits(hMicron)
}

// MIMCap generates a square-ish metal-insulator-metal capacitor.
// Parameter 0: capacitance in pF.
type MIMCap struct {
	CRange FloatRange // pF
	// DensityFFPerUm2 is the capacitance density; default 1 fF/µm².
	DensityFFPerUm2 float64
}

// NewMIMCap returns a MIMCap generator for the given capacitance range.
func NewMIMCap(cLo, cHi float64) *MIMCap {
	return &MIMCap{CRange: FloatRange{cLo, cHi}, DensityFFPerUm2: 1}
}

// Name implements Generator.
func (c *MIMCap) Name() string { return "mim-cap" }

// NumParams implements Generator.
func (c *MIMCap) NumParams() int { return 1 }

// ParamRanges implements Generator.
func (c *MIMCap) ParamRanges() []FloatRange { return []FloatRange{c.CRange} }

// Dims implements Generator.
func (c *MIMCap) Dims(params []float64) (w, h int) {
	C := c.CRange.Clamp(params[0])
	density := c.DensityFFPerUm2
	if density <= 0 {
		density = 1
	}
	areaUm2 := C * 1000 / density // pF -> fF
	side := math.Sqrt(areaUm2)
	const margin = 1.5
	n := ceilUnits(side + 2*margin)
	return n, n
}

// PolyRes generates a serpentine polysilicon resistor.
// Parameter 0: resistance in kΩ.
type PolyRes struct {
	RRange FloatRange // kΩ
	// SheetOhms is the sheet resistance; default 50 Ω/sq.
	SheetOhms float64
	// StripWidthUm is the resistor strip width; default 1 µm.
	StripWidthUm float64
}

// NewPolyRes returns a PolyRes generator for the given resistance range.
func NewPolyRes(rLo, rHi float64) *PolyRes {
	return &PolyRes{RRange: FloatRange{rLo, rHi}, SheetOhms: 50, StripWidthUm: 1}
}

// Name implements Generator.
func (r *PolyRes) Name() string { return "poly-res" }

// NumParams implements Generator.
func (r *PolyRes) NumParams() int { return 1 }

// ParamRanges implements Generator.
func (r *PolyRes) ParamRanges() []FloatRange { return []FloatRange{r.RRange} }

// Dims implements Generator.
func (r *PolyRes) Dims(params []float64) (w, h int) {
	R := r.RRange.Clamp(params[0])
	sheet := r.SheetOhms
	if sheet <= 0 {
		sheet = 50
	}
	strip := r.StripWidthUm
	if strip <= 0 {
		strip = 1
	}
	squares := R * 1000 / sheet
	lengthUm := squares * strip
	// Fold the strip into a near-square serpentine with 1µm gaps.
	turns := math.Max(1, math.Round(math.Sqrt(lengthUm*strip/(strip+1))/strip))
	segment := lengthUm / turns
	const margin = 1.0
	wMicron := segment + 2*margin
	hMicron := turns*(strip+1) + 2*margin
	return ceilUnits(wMicron), ceilUnits(hMicron)
}

// Scalable is a generic one-parameter generator that sweeps a block between
// its minimum and maximum dimensions. Parameter 0 in [0,1] is the size knob;
// width grows linearly while height grows with the given exponent, modelling
// generators whose aspect ratio drifts with size. It is the default binding
// for blocks without an electrical model.
type Scalable struct {
	WMin, WMax int
	HMin, HMax int
	// HExponent shapes height growth; default 1 (linear).
	HExponent float64
}

// Name implements Generator.
func (s *Scalable) Name() string { return "scalable" }

// NumParams implements Generator.
func (s *Scalable) NumParams() int { return 1 }

// ParamRanges implements Generator.
func (s *Scalable) ParamRanges() []FloatRange { return []FloatRange{{0, 1}} }

// Dims implements Generator.
func (s *Scalable) Dims(params []float64) (w, h int) {
	t := FloatRange{0, 1}.Clamp(params[0])
	exp := s.HExponent
	if exp <= 0 {
		exp = 1
	}
	w = s.WMin + int(math.Round(t*float64(s.WMax-s.WMin)))
	h = s.HMin + int(math.Round(math.Pow(t, exp)*float64(s.HMax-s.HMin)))
	return w, h
}

func ceilUnits(micron float64) int {
	u := int(math.Ceil(micron * unitsPerMicron))
	if u < 1 {
		u = 1
	}
	return u
}

func checkParams(g Generator, params []float64) error {
	if len(params) != g.NumParams() {
		return fmt.Errorf("modgen: %s wants %d params, got %d", g.Name(), g.NumParams(), len(params))
	}
	return nil
}
