package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// Histogram behavior (quantiles, edges, merge) is tested in internal/obs,
// where the implementation now lives; Histogram here is a type alias.

func TestParseMix(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Mix
		ok   bool
	}{
		{"generate=1,instantiate=8,portfolio=1", Mix{Generate: 1, Instantiate: 8, Portfolio: 1}, true},
		{"instantiate=5", Mix{Instantiate: 5}, true},
		{" generate = 2 , portfolio = 3 ", Mix{Generate: 2, Portfolio: 3}, true},
		{"weighted=4", Mix{Weighted: 4}, true},
		{"instantiate=8,weighted=2", Mix{Instantiate: 8, Weighted: 2}, true},
		{"generate=0,instantiate=0,portfolio=0,weighted=0", Mix{}, false},
		{"", Mix{}, false},
		{"bogus=1", Mix{}, false},
		{"generate=-1", Mix{}, false},
		{"generate", Mix{}, false},
		{"generate=x", Mix{}, false},
	} {
		got, err := ParseMix(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ParseMix(%q) err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ParseMix(%q) = %+v, want %+v", tc.in, got, tc.want)
		}
	}
}

// TestRunAgainstStub drives the full workload loop against a trivial HTTP
// stub: every op lands, per-op and per-node histograms fill in, error
// responses are counted not fatal, and the table/summary render.
func TestRunAgainstStub(t *testing.T) {
	var generates, instantiates, weighted atomic.Int64
	handler := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/v1/structures":
			generates.Add(1)
			w.Write([]byte(`{"ok":true}`))
		case "/v1/instantiate":
			instantiates.Add(1)
			body, _ := io.ReadAll(r.Body)
			if bytes.Contains(body, []byte(`"member_weights"`)) && bytes.Contains(body, []byte(`"weights"`)) {
				weighted.Add(1)
			}
			w.Write([]byte(`{"ok":true}`))
		default:
			http.Error(w, "lost", http.StatusNotFound)
		}
	})
	good := httptest.NewServer(handler)
	defer good.Close()
	bad := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer bad.Close()

	res, err := Run(context.Background(), Config{
		Targets:     []string{good.URL, bad.URL},
		Duration:    300 * time.Millisecond,
		Concurrency: 4,
		Mix:         Mix{Generate: 1, Instantiate: 2, Portfolio: 1, Weighted: 1},
		Seeds:       2,
		Batch:       2,
	})
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Requests == 0 {
		t.Fatalf("no requests recorded")
	}
	if generates.Load() == 0 || instantiates.Load() == 0 {
		t.Fatalf("stub saw generates=%d instantiates=%d, want both > 0",
			generates.Load(), instantiates.Load())
	}
	// The weighted op posts a member_weights portfolio spec with
	// per-query routing weights to /v1/instantiate.
	if weighted.Load() == 0 {
		t.Errorf("stub saw no weighted instantiate bodies")
	}
	if st := res.Ops["weighted"]; st == nil || st.Hist.Count() == 0 {
		t.Errorf("weighted op recorded no traffic: %+v", st)
	}
	// The bad node errors every request; the good node errors none.
	if st := res.Nodes[bad.URL]; st == nil || st.Errors != st.Hist.Count() || st.Errors == 0 {
		t.Fatalf("bad-node stats = %+v, want all-errors", st)
	}
	if st := res.Nodes[good.URL]; st == nil || st.Errors != 0 || st.Hist.Count() == 0 {
		t.Fatalf("good-node stats = %+v, want error-free traffic", st)
	}
	if res.Errors == 0 || res.Errors >= res.Requests {
		t.Fatalf("errors = %d of %d, want a strict subset", res.Errors, res.Requests)
	}
	var opCount int64
	for _, st := range res.Ops {
		opCount += st.Hist.Count()
	}
	if opCount != res.Requests {
		t.Fatalf("per-op counts sum to %d, want %d", opCount, res.Requests)
	}

	table := res.Table()
	for _, want := range []string{"p50", "p99", "p99.9", "instantiate", "node " + good.URL, "total"} {
		if !strings.Contains(table, want) {
			t.Errorf("table missing %q:\n%s", want, table)
		}
	}
	buf, err := json.Marshal(res.Summary())
	if err != nil {
		t.Fatalf("summary marshal: %v", err)
	}
	var decoded struct {
		Ops   map[string]StatSummary `json:"ops"`
		Nodes map[string]StatSummary `json:"nodes"`
	}
	if err := json.Unmarshal(buf, &decoded); err != nil {
		t.Fatalf("summary round-trip: %v", err)
	}
	if len(decoded.Ops) == 0 || len(decoded.Nodes) != 2 {
		t.Fatalf("summary ops=%d nodes=%d", len(decoded.Ops), len(decoded.Nodes))
	}
	for op, st := range decoded.Ops {
		if st.MS["p50"] < 0 || st.MS["p99"] < st.MS["p50"] {
			t.Errorf("op %s quantiles not ordered: %+v", op, st.MS)
		}
	}
}

func TestRunConfigErrors(t *testing.T) {
	if _, err := Run(context.Background(), Config{}); err == nil {
		t.Fatalf("Run with no targets must fail")
	}
	if _, err := Run(context.Background(), Config{
		Targets: []string{"http://127.0.0.1:1"},
		Circuit: "no-such-circuit",
	}); err == nil {
		t.Fatalf("Run with unknown circuit must fail")
	}
}
