// Scraping support for mpsload -scrape: pull /metrics from each target
// before and after a run, diff the counters, and reconstruct server-side
// latency quantiles from the exported histogram buckets — so one load run
// reports client-observed and server-observed percentiles side by side
// (the gap between them is queueing and network, not serving time).
package loadgen

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"time"
)

// Scrape is one parsed /metrics payload: series identity (name plus its
// rendered label set) → value. Only what the diff and quantile math need
// survives parsing; HELP/TYPE lines are dropped.
type Scrape struct {
	Values map[string]seriesValue
}

// seriesValue keeps the series split into name and parsed labels so
// selectors do not re-parse per query.
type seriesValue struct {
	name   string
	labels map[string]string
	value  float64
}

// ParseProm parses Prometheus text exposition format (the subset
// internal/obs renders: `name{labels} value` lines and `#` comments).
// Unparseable lines are an error — a scrape that half-parses would
// silently skew every diff built on it.
func ParseProm(r io.Reader) (*Scrape, error) {
	s := &Scrape{Values: map[string]seriesValue{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			return nil, fmt.Errorf("loadgen: metrics line %q: no value", line)
		}
		id, valStr := line[:sp], line[sp+1:]
		val, err := strconv.ParseFloat(valStr, 64)
		if err != nil {
			return nil, fmt.Errorf("loadgen: metrics line %q: %v", line, err)
		}
		name, labels, err := parseSeriesID(id)
		if err != nil {
			return nil, err
		}
		s.Values[id] = seriesValue{name: name, labels: labels, value: val}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return s, nil
}

// parseSeriesID splits `name{k="v",...}` into name and label map. Label
// values may contain the escapes the renderer emits (\\, \", \n).
func parseSeriesID(id string) (string, map[string]string, error) {
	brace := strings.IndexByte(id, '{')
	if brace < 0 {
		return id, nil, nil
	}
	if !strings.HasSuffix(id, "}") {
		return "", nil, fmt.Errorf("loadgen: series %q: unterminated labels", id)
	}
	name := id[:brace]
	labels := map[string]string{}
	rest := id[brace+1 : len(id)-1]
	for rest != "" {
		eq := strings.IndexByte(rest, '=')
		if eq < 0 || len(rest) < eq+2 || rest[eq+1] != '"' {
			return "", nil, fmt.Errorf("loadgen: series %q: malformed label", id)
		}
		key := rest[:eq]
		// Find the closing quote, honoring backslash escapes.
		i := eq + 2
		var val strings.Builder
		for {
			if i >= len(rest) {
				return "", nil, fmt.Errorf("loadgen: series %q: unterminated label value", id)
			}
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				switch rest[i+1] {
				case 'n':
					val.WriteByte('\n')
				default:
					val.WriteByte(rest[i+1])
				}
				i += 2
				continue
			}
			if c == '"' {
				break
			}
			val.WriteByte(c)
			i++
		}
		labels[key] = val.String()
		rest = rest[i+1:]
		rest = strings.TrimPrefix(rest, ",")
	}
	return name, labels, nil
}

// matches reports whether the series carries every label in sel.
func (v seriesValue) matches(name string, sel map[string]string) bool {
	if v.name != name {
		return false
	}
	for k, want := range sel {
		if v.labels[k] != want {
			return false
		}
	}
	return true
}

// Sum adds up every series of the family matching sel (nil matches all).
func (s *Scrape) Sum(name string, sel map[string]string) float64 {
	var total float64
	for _, v := range s.Values {
		if v.matches(name, sel) {
			total += v.value
		}
	}
	return total
}

// Sub returns the per-series difference s − before, for diffing two
// scrapes around a run. Series absent from before count from zero (new
// label children); series absent from s are dropped.
func (s *Scrape) Sub(before *Scrape) *Scrape {
	out := &Scrape{Values: make(map[string]seriesValue, len(s.Values))}
	for id, v := range s.Values {
		if b, ok := before.Values[id]; ok {
			v.value -= b.value
		}
		out.Values[id] = v
	}
	return out
}

// HistogramQuantile reconstructs the q-quantile of a histogram family
// from its cumulative `_bucket` series (summed across every series
// matching sel), returning the upper edge of the bucket holding the
// rank-q sample. The server's buckets double per edge, so the answer is
// exact to within one doubling — coarse next to the client histogram's
// ~9%, but measured where queueing can't hide. The bool is false when
// the matched buckets hold no samples.
func (s *Scrape) HistogramQuantile(name string, sel map[string]string, q float64) (time.Duration, bool) {
	type edge struct {
		le float64
		n  float64
	}
	sums := map[float64]float64{}
	for _, v := range s.Values {
		if !v.matches(name+"_bucket", sel) {
			continue
		}
		leStr, ok := v.labels["le"]
		if !ok {
			continue
		}
		le, err := strconv.ParseFloat(leStr, 64)
		if err != nil {
			if leStr == "+Inf" {
				le = math.Inf(1)
			} else {
				continue
			}
		}
		sums[le] += v.value
	}
	edges := make([]edge, 0, len(sums))
	for le, n := range sums {
		edges = append(edges, edge{le, n})
	}
	sort.Slice(edges, func(i, j int) bool { return edges[i].le < edges[j].le })
	if len(edges) == 0 {
		return 0, false
	}
	total := edges[len(edges)-1].n // +Inf bucket is cumulative over all
	if total <= 0 {
		return 0, false
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := math.Ceil(q * total)
	if rank < 1 {
		rank = 1
	}
	for _, e := range edges {
		if e.n >= rank {
			if math.IsInf(e.le, 1) {
				break
			}
			return time.Duration(e.le * float64(time.Second)), true
		}
	}
	// Rank sits in the overflow bucket: all we know is "above the top
	// finite edge".
	top := edges[len(edges)-1].le
	if len(edges) >= 2 {
		top = edges[len(edges)-2].le
	}
	if math.IsInf(top, 1) {
		return 0, false
	}
	return time.Duration(top * float64(time.Second)), true
}

// ScrapeTarget GETs target's /metrics and parses it.
func ScrapeTarget(ctx context.Context, client *http.Client, target string) (*Scrape, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, target+"/metrics", nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("loadgen: %s/metrics answered %d", target, resp.StatusCode)
	}
	return ParseProm(io.LimitReader(resp.Body, 8<<20))
}

// ScrapeAll scrapes every target and returns the per-series sum — the
// fleet-wide view a diff or quantile should be computed over.
func ScrapeAll(ctx context.Context, client *http.Client, targets []string) (*Scrape, error) {
	merged := &Scrape{Values: map[string]seriesValue{}}
	for _, t := range targets {
		s, err := ScrapeTarget(ctx, client, t)
		if err != nil {
			return nil, err
		}
		for id, v := range s.Values {
			if cur, ok := merged.Values[id]; ok {
				v.value += cur.value
			}
			merged.Values[id] = v
		}
	}
	return merged, nil
}

// opRoute maps a driver op to the server route label its requests land
// on, connecting client-side and server-side histograms.
func opRoute(op string) string {
	if op == "instantiate" {
		return "instantiate"
	}
	return "structures" // generate and portfolio both POST /v1/structures
}

// ServerSummary is the JSON-mode form of the comparison: per op, the
// server-observed request count and quantiles from diff.
func (r *Result) ServerSummary(diff *Scrape) map[string]any {
	out := make(map[string]any, len(r.Ops))
	for op := range r.Ops {
		sel := map[string]string{"route": opRoute(op)}
		ms := map[string]float64{}
		for _, tq := range tableQuantiles {
			if d, ok := diff.HistogramQuantile("mps_http_request_duration_seconds", sel, tq.q); ok {
				ms[tq.label] = float64(d) / float64(time.Millisecond)
			}
		}
		out[op] = map[string]any{
			"count": diff.Sum("mps_http_request_duration_seconds_count", sel),
			"ms":    ms,
		}
	}
	return out
}

// CompareServer renders the client-vs-server latency comparison for one
// run: per op, the client-observed p50/p99 next to the server-observed
// ones reconstructed from diff (an after-scrape minus before-scrape).
func (r *Result) CompareServer(diff *Scrape) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-14s %10s %12s %12s %12s %12s\n",
		"op", "server-n", "client-p50", "server-p50", "client-p99", "server-p99")
	ops := make([]string, 0, len(r.Ops))
	for op := range r.Ops {
		ops = append(ops, op)
	}
	sort.Strings(ops)
	for _, op := range ops {
		st := r.Ops[op]
		sel := map[string]string{"route": opRoute(op)}
		n := diff.Sum("mps_http_request_duration_seconds_count", sel)
		sp50, _ := diff.HistogramQuantile("mps_http_request_duration_seconds", sel, 0.50)
		sp99, _ := diff.HistogramQuantile("mps_http_request_duration_seconds", sel, 0.99)
		fmt.Fprintf(&b, "%-14s %10.0f %12s %12s %12s %12s\n", op, n,
			fmtDur(st.Hist.Quantile(0.50)), fmtDur(sp50),
			fmtDur(st.Hist.Quantile(0.99)), fmtDur(sp99))
	}
	return b.String()
}
