package loadgen

import (
	"bytes"
	"strings"
	"testing"
	"time"

	"mps/internal/obs"
)

// renderRegistry produces real /metrics output so the parser is tested
// against the renderer it will scrape, not a hand-typed imitation.
func renderRegistry(t *testing.T, fill func(reg *obs.Registry)) *Scrape {
	t.Helper()
	reg := obs.NewRegistry()
	fill(reg)
	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	s, err := ParseProm(&buf)
	if err != nil {
		t.Fatalf("parsing rendered metrics: %v\n%s", err, buf.String())
	}
	return s
}

func TestParsePromRoundTrip(t *testing.T) {
	s := renderRegistry(t, func(reg *obs.Registry) {
		reg.Counter("mps_test_total", "plain").Add(7)
		v := reg.CounterVec("mps_test_labeled_total", "labeled", "route", "code")
		v.With("instantiate", "200").Add(41)
		v.With("structures", "503").Inc()
		reg.Gauge("mps_test_gauge", "g").Set(3)
		esc := reg.CounterVec("mps_test_esc_total", "escapes", "peer")
		esc.With(`he said "hi"\there`).Inc()
	})
	if got := s.Sum("mps_test_total", nil); got != 7 {
		t.Errorf("plain counter = %v, want 7", got)
	}
	if got := s.Sum("mps_test_labeled_total", nil); got != 42 {
		t.Errorf("labeled sum = %v, want 42", got)
	}
	if got := s.Sum("mps_test_labeled_total", map[string]string{"route": "instantiate"}); got != 41 {
		t.Errorf("selected sum = %v, want 41", got)
	}
	if got := s.Sum("mps_test_labeled_total", map[string]string{"route": "instantiate", "code": "503"}); got != 0 {
		t.Errorf("non-matching selector = %v, want 0", got)
	}
	if got := s.Sum("mps_test_gauge", nil); got != 3 {
		t.Errorf("gauge = %v, want 3", got)
	}
	if got := s.Sum("mps_test_esc_total", map[string]string{"peer": `he said "hi"\there`}); got != 1 {
		t.Errorf("escaped label did not round-trip: %v", got)
	}
}

func TestParsePromRejectsGarbage(t *testing.T) {
	for _, in := range []string{
		"mps_x_total",                   // no value
		"mps_x_total notanumber",        // bad value
		`mps_x_total{route="oops 1`,     // unterminated labels
		`mps_x_total{route} 1`,          // malformed label
		`mps_x_total{route="open 1} 2.`, // unterminated value quote then bad float
	} {
		if _, err := ParseProm(strings.NewReader(in)); err == nil {
			t.Errorf("ParseProm(%q) accepted garbage", in)
		}
	}
}

func TestHistogramQuantileFromScrape(t *testing.T) {
	// 1..1000ms through a real obs histogram, rendered and re-derived: the
	// scrape-side quantile must land within one doubling of the truth
	// (render downsamples to doubling edges).
	s := renderRegistry(t, func(reg *obs.Registry) {
		h := reg.HistogramVec("mps_test_latency_seconds", "lat", "route").With("instantiate")
		for i := 1; i <= 1000; i++ {
			h.Observe(time.Duration(i) * time.Millisecond)
		}
	})
	sel := map[string]string{"route": "instantiate"}
	if n := s.Sum("mps_test_latency_seconds_count", sel); n != 1000 {
		t.Fatalf("count = %v, want 1000", n)
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
	} {
		got, ok := s.HistogramQuantile("mps_test_latency_seconds", sel, tc.q)
		if !ok {
			t.Fatalf("q%.2f: no samples found", tc.q)
		}
		if got < tc.want || got > 2*tc.want {
			t.Errorf("q%.2f = %v, want in [%v, %v]", tc.q, got, tc.want, 2*tc.want)
		}
	}
	if _, ok := s.HistogramQuantile("mps_test_latency_seconds", map[string]string{"route": "absent"}, 0.5); ok {
		t.Error("quantile over absent series must report no samples")
	}
	// Sub: a second scrape of the same registry diffs to zero everywhere.
	diff := s.Sub(s)
	if n := diff.Sum("mps_test_latency_seconds_count", sel); n != 0 {
		t.Errorf("self-diff count = %v, want 0", n)
	}
}
