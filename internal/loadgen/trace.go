// Trace rendering for mpsload -trace: after a run, the slowest traced
// request per op (see Exemplars) is fetched from its entry node's
// /v1/debug/traces/{id} endpoint — which assembles the cross-node span
// tree server-side — and rendered as an indented text tree so a slow
// tail percentile can be decomposed into stages without leaving the
// terminal.
package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"mps/internal/obs"
)

// FetchTrace pulls the assembled cross-node trace for id from target.
// The target does the assembly (pulling remote segments from the peers
// its spans name); the client just decodes the merged tree.
func FetchTrace(ctx context.Context, client *http.Client, target, id string) (*obs.AssembledTrace, error) {
	if client == nil {
		client = http.DefaultClient
	}
	url := strings.TrimRight(target, "/") + "/v1/debug/traces/" + id
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, url, nil)
	if err != nil {
		return nil, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
		return nil, fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
	}
	var at obs.AssembledTrace
	if err := json.NewDecoder(io.LimitReader(resp.Body, 4<<20)).Decode(&at); err != nil {
		return nil, fmt.Errorf("decoding trace %s: %w", id, err)
	}
	return &at, nil
}

// RenderTrace formats an assembled trace as an indented span tree, one
// span per line with its node, key, remote target, offset from trace
// start, and duration. Orphan spans (parent not in the fetched set —
// a missing segment) render as extra roots so nothing is hidden.
func RenderTrace(at *obs.AssembledTrace) string {
	var b strings.Builder
	fmt.Fprintf(&b, "trace %s  %s  nodes=%s",
		at.ID, time.Duration(at.DurationNs), strings.Join(at.Nodes, ","))
	if at.Partial {
		b.WriteString("  PARTIAL")
	}
	if len(at.Missing) > 0 {
		fmt.Fprintf(&b, "  missing=%s", strings.Join(at.Missing, ","))
	}
	b.WriteByte('\n')

	present := make(map[obs.SpanID]bool, len(at.Spans))
	children := make(map[obs.SpanID][]int, len(at.Spans))
	for i := range at.Spans {
		present[at.Spans[i].ID] = true
	}
	var roots []int
	for i := range at.Spans {
		p := at.Spans[i].Parent
		if p == 0 || !present[p] {
			roots = append(roots, i)
		} else {
			children[p] = append(children[p], i)
		}
	}
	byStart := func(idx []int) {
		sort.SliceStable(idx, func(a, b int) bool {
			return at.Spans[idx[a]].StartUnixNs < at.Spans[idx[b]].StartUnixNs
		})
	}
	byStart(roots)

	var render func(idx, depth int)
	render = func(idx, depth int) {
		sp := &at.Spans[idx]
		fmt.Fprintf(&b, "%s%-12s", strings.Repeat("  ", depth+1), sp.Stage)
		if sp.Node != "" {
			fmt.Fprintf(&b, "  node=%s", sp.Node)
		}
		if sp.Remote != "" {
			fmt.Fprintf(&b, "  remote=%s", sp.Remote)
		}
		if sp.Key != "" {
			fmt.Fprintf(&b, "  key=%s", sp.Key)
		}
		fmt.Fprintf(&b, "  +%s  %s\n",
			time.Duration(sp.StartUnixNs-at.StartUnixNs), time.Duration(sp.DurationNs))
		kids := children[sp.ID]
		byStart(kids)
		for _, k := range kids {
			render(k, depth+1)
		}
	}
	for _, rt := range roots {
		render(rt, 0)
	}
	return b.String()
}
