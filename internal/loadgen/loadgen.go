// Package loadgen is the measured load harness behind cmd/mpsload: a
// mixed generate/instantiate/portfolio/weighted workload driver for one
// or more mpsd nodes, recording latency histograms per operation and
// per entry node. It exists to answer the operational questions the unit tests
// cannot — what the serving fleet's p50/p99/p99.9 look like under
// concurrent mixed traffic — with no dependencies beyond the standard
// library, so it can run anywhere the daemon does.
//
// The workload models the paper's serving split: a small space of
// structure keys is generated once (the generate and portfolio ops), and
// the bulk of the traffic is batched instantiate queries against those
// hot keys (Fig. 1b's layout-inclusive sizing loop). Targets are picked
// uniformly per request, so in cluster mode the forwarding/fan-out layer
// is on the measured path.
package loadgen

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"mps/internal/circuits"
	"mps/internal/cost"
	"mps/internal/netlist"
	"mps/internal/obs"
)

// Histogram is the shared log-bucketed latency histogram (8 buckets per
// doubling from 1µs, quantiles exact to ~9%). It began life in this
// package and was promoted to internal/obs so the daemon's /metrics
// histograms and the driver's client-side measurements share one
// implementation — and therefore one bucket layout, which is what lets
// mpsload -scrape compare client and server percentiles directly.
// OpStats and Result hold it behind pointers throughout, so the atomic
// fields never copy.
type Histogram = obs.Histogram

// Mix is the workload's operation weighting. A request is one of the
// ops with probability proportional to its weight; zero disables the
// op. The zero Mix means the default 1/8/1 generate/instantiate/
// portfolio — mostly instantiate traffic against hot keys, the paper's
// serving regime. Weighted is batched instantiation against a
// weight-diverse portfolio with per-query routing weights cycling the
// ladder rungs, putting the weighted route path (and, in cluster mode,
// its forwarding) on the measured path; it weighs zero by default.
type Mix struct {
	Generate    int `json:"generate"`
	Instantiate int `json:"instantiate"`
	Portfolio   int `json:"portfolio"`
	Weighted    int `json:"weighted"`
}

func (m Mix) total() int { return m.Generate + m.Instantiate + m.Portfolio + m.Weighted }

// ParseMix parses the -mix flag form "generate=1,instantiate=8,portfolio=1".
// Omitted ops weigh zero; at least one op must be positive.
func ParseMix(s string) (Mix, error) {
	var m Mix
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return Mix{}, fmt.Errorf("loadgen: mix element %q: want op=weight", part)
		}
		w, err := strconv.Atoi(strings.TrimSpace(val))
		if err != nil || w < 0 {
			return Mix{}, fmt.Errorf("loadgen: mix weight %q: want a non-negative integer", val)
		}
		switch strings.TrimSpace(name) {
		case "generate":
			m.Generate = w
		case "instantiate":
			m.Instantiate = w
		case "portfolio":
			m.Portfolio = w
		case "weighted":
			m.Weighted = w
		default:
			return Mix{}, fmt.Errorf("loadgen: unknown op %q (want generate, instantiate, portfolio, or weighted)", name)
		}
	}
	if m.total() <= 0 {
		return Mix{}, fmt.Errorf("loadgen: mix has no positive weight")
	}
	return m, nil
}

// Config tunes one load run. The zero value of every field except
// Targets has a sensible default.
type Config struct {
	// Targets are the entry-node base URLs; each request picks one
	// uniformly. Required.
	Targets []string
	// Duration is how long to drive load. Default 10s.
	Duration time.Duration
	// Concurrency is the number of worker goroutines. Default 8.
	Concurrency int
	// Mix weights the operations. Zero value = 1/8/1.
	Mix Mix
	// Circuit names the benchmark circuit. Default circ01 (the smallest —
	// generations complete in seconds even at quick effort).
	Circuit string
	// Seeds is the size of the structure-key space the workload cycles
	// through: seeds 1..Seeds. Default 4.
	Seeds int
	// Effort, Iterations, BDIOSteps shape the generation spec exactly as
	// the daemon's API does. Default effort "quick" with the daemon's
	// effort-derived budgets (zero Iterations/BDIOSteps).
	Effort     string
	Iterations int
	BDIOSteps  int
	// Portfolio is the member count K for portfolio ops. Default 2.
	Portfolio int
	// Batch is the number of dimension queries per instantiate request.
	// Default 16.
	Batch int
	// Timeout bounds one request, generation included. Default 2m.
	Timeout time.Duration
	// Seed seeds the workload's rng, making the op/target/query sequence
	// reproducible. Default 1.
	Seed int64
}

func (cfg Config) withDefaults() Config {
	if cfg.Duration <= 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 8
	}
	if cfg.Mix.total() <= 0 {
		cfg.Mix = Mix{Generate: 1, Instantiate: 8, Portfolio: 1}
	}
	if cfg.Circuit == "" {
		cfg.Circuit = "circ01"
	}
	if cfg.Seeds <= 0 {
		cfg.Seeds = 4
	}
	if cfg.Effort == "" {
		cfg.Effort = "quick"
	}
	if cfg.Portfolio <= 0 {
		cfg.Portfolio = 2
	}
	if cfg.Batch <= 0 {
		cfg.Batch = 16
	}
	if cfg.Timeout <= 0 {
		cfg.Timeout = 2 * time.Minute
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	return cfg
}

// Exemplar links a measured client latency to the server-side trace that
// explains it — the daemon returns its trace ID on every response
// (X-Mps-Trace-Id), so the slowest request of a run can be looked up in
// /v1/debug/traces/{id} and decomposed span by span.
type Exemplar struct {
	TraceID  string        `json:"trace_id,omitempty"`
	Target   string        `json:"target,omitempty"`
	Duration time.Duration `json:"duration_ns,omitempty"`
}

// slowKeep caps the exemplars each stat retains. A list, not a single
// max: the server's tail sampler only guarantees retention for slow,
// failed, and cross-node traces, so the single slowest request may have
// been discarded — -trace walks the list until a fetch succeeds.
const slowKeep = 8

// OpStats is one histogram plus its error count — the unit of the
// per-op and per-node result maps. Slowest holds the slowest traced
// requests observed, slowest first, at most slowKeep (empty when no
// response carried a trace ID).
type OpStats struct {
	Hist    Histogram
	Errors  int64
	Slowest []Exemplar
}

// addExemplar inserts e into the slowest-first list, dropping the tail
// beyond slowKeep.
func (st *OpStats) addExemplar(e Exemplar) {
	i := sort.Search(len(st.Slowest), func(i int) bool {
		return st.Slowest[i].Duration < e.Duration
	})
	if i == slowKeep {
		return
	}
	if len(st.Slowest) < slowKeep {
		st.Slowest = append(st.Slowest, Exemplar{})
	}
	copy(st.Slowest[i+1:], st.Slowest[i:])
	st.Slowest[i] = e
}

// Result is one load run's measurements.
type Result struct {
	// Ops maps operation name (generate, instantiate, portfolio,
	// weighted) to its latency histogram and error count.
	Ops map[string]*OpStats
	// Nodes maps entry-node URL to the same, over all ops sent there.
	Nodes map[string]*OpStats
	// Requests and Errors are run-wide totals; Elapsed is wall time.
	Requests int64
	Errors   int64
	Elapsed  time.Duration
}

func newResult() *Result {
	return &Result{Ops: map[string]*OpStats{}, Nodes: map[string]*OpStats{}}
}

func (r *Result) stats(m map[string]*OpStats, key string) *OpStats {
	st := m[key]
	if st == nil {
		st = &OpStats{}
		m[key] = st
	}
	return st
}

func (r *Result) record(op, node string, d time.Duration, err error, traceID string) {
	r.Requests++
	for _, st := range []*OpStats{r.stats(r.Ops, op), r.stats(r.Nodes, node)} {
		st.Hist.Observe(d)
		if err != nil {
			st.Errors++
		}
		if traceID != "" {
			st.addExemplar(Exemplar{TraceID: traceID, Target: node, Duration: d})
		}
	}
	if err != nil {
		r.Errors++
	}
}

func (r *Result) merge(o *Result) {
	mergeStats := func(dst, src *OpStats) {
		dst.Hist.Merge(&src.Hist)
		dst.Errors += src.Errors
		for _, e := range src.Slowest {
			dst.addExemplar(e)
		}
	}
	for op, st := range o.Ops {
		mergeStats(r.stats(r.Ops, op), st)
	}
	for node, st := range o.Nodes {
		mergeStats(r.stats(r.Nodes, node), st)
	}
	r.Requests += o.Requests
	r.Errors += o.Errors
}

// Run drives the configured workload until the duration elapses or ctx
// is canceled, whichever comes first, and returns the merged
// measurements. The only errors are configuration problems; request
// failures are counted in the result, not returned.
func Run(ctx context.Context, cfg Config) (*Result, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Targets) == 0 {
		return nil, fmt.Errorf("loadgen: no targets")
	}
	circuit, err := circuits.ByName(cfg.Circuit)
	if err != nil {
		return nil, err
	}
	ctx, cancel := context.WithTimeout(ctx, cfg.Duration)
	defer cancel()

	start := time.Now()
	results := make([]*Result, cfg.Concurrency)
	var wg sync.WaitGroup
	for i := 0; i < cfg.Concurrency; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			w := &worker{
				cfg:     cfg,
				circuit: circuit,
				rng:     rand.New(rand.NewSource(cfg.Seed + int64(id)*7919)),
				client:  &http.Client{Timeout: cfg.Timeout},
				res:     newResult(),
			}
			w.run(ctx)
			results[id] = w.res
		}(i)
	}
	wg.Wait()
	merged := newResult()
	for _, r := range results {
		merged.merge(r)
	}
	merged.Elapsed = time.Since(start)
	return merged, nil
}

type worker struct {
	cfg     Config
	circuit *netlist.Circuit
	rng     *rand.Rand
	client  *http.Client
	res     *Result
}

func (w *worker) run(ctx context.Context) {
	for ctx.Err() == nil {
		op := w.pickOp()
		target := w.cfg.Targets[w.rng.Intn(len(w.cfg.Targets))]
		start := time.Now()
		traceID, err := w.do(ctx, op, target)
		if ctx.Err() != nil && err != nil {
			return // the deadline cut this request off; don't count the cut
		}
		w.res.record(op, target, time.Since(start), err, traceID)
	}
}

func (w *worker) pickOp() string {
	r := w.rng.Intn(w.cfg.Mix.total())
	if r < w.cfg.Mix.Generate {
		return "generate"
	}
	if r < w.cfg.Mix.Generate+w.cfg.Mix.Instantiate {
		return "instantiate"
	}
	if r < w.cfg.Mix.Generate+w.cfg.Mix.Instantiate+w.cfg.Mix.Portfolio {
		return "portfolio"
	}
	return "weighted"
}

// spec builds the generation spec JSON for one of the workload's seeds,
// mirroring the daemon's GenerateSpec fields.
func (w *worker) spec(portfolio int) map[string]any {
	spec := map[string]any{
		"circuit": w.cfg.Circuit,
		"seed":    int64(1 + w.rng.Intn(w.cfg.Seeds)),
		"effort":  w.cfg.Effort,
	}
	if w.cfg.Iterations > 0 {
		spec["iterations"] = w.cfg.Iterations
	}
	if w.cfg.BDIOSteps > 0 {
		spec["bdio_steps"] = w.cfg.BDIOSteps
	}
	if portfolio > 1 {
		spec["portfolio"] = portfolio
	}
	return spec
}

// query builds one in-bounds dimension query: every block dimension
// uniform in its [min, max] range.
func (w *worker) query() map[string][]int {
	n := w.circuit.N()
	ws := make([]int, n)
	hs := make([]int, n)
	for i, b := range w.circuit.Blocks {
		ws[i] = b.WMin + w.rng.Intn(b.WMax-b.WMin+1)
		hs[i] = b.HMin + w.rng.Intn(b.HMax-b.HMin+1)
	}
	return map[string][]int{"ws": ws, "hs": hs}
}

// weightsJSON renders a weight vector as the API's weights object,
// omitting zero components like WeightsSpec's omitempty tags do.
func weightsJSON(w cost.Weights) map[string]float64 {
	out := map[string]float64{}
	if w.Wire != 0 {
		out["wire"] = w.Wire
	}
	if w.Area != 0 {
		out["area"] = w.Area
	}
	if w.Aspect != 0 {
		out["aspect"] = w.Aspect
	}
	return out
}

func (w *worker) do(ctx context.Context, op, target string) (string, error) {
	switch op {
	case "generate":
		return w.post(ctx, target+"/v1/structures", w.spec(1))
	case "portfolio":
		return w.post(ctx, target+"/v1/structures", w.spec(w.cfg.Portfolio))
	case "weighted":
		// Batched instantiation against a weight-diverse portfolio: the
		// spec pins member_weights to the facade's ladder (weight
		// diversity over HTTP is always explicit), and each query routes
		// under a different ladder rung, exercising the weighted route
		// path instead of the legacy smallest-area rule.
		k := w.cfg.Portfolio
		if k < 2 {
			k = 2 // member_weights requires a portfolio
		}
		ladder := cost.WeightLadder(k)
		spec := w.spec(k)
		members := make([]map[string]float64, len(ladder))
		for i, rung := range ladder {
			members[i] = weightsJSON(rung)
		}
		spec["member_weights"] = members
		queries := make([]map[string]any, w.cfg.Batch)
		for i := range queries {
			q := w.query()
			queries[i] = map[string]any{
				"ws": q["ws"], "hs": q["hs"],
				"weights": weightsJSON(ladder[i%len(ladder)]),
			}
		}
		return w.post(ctx, target+"/v1/instantiate", map[string]any{
			"spec":    spec,
			"queries": queries,
		})
	default: // instantiate
		queries := make([]map[string][]int, w.cfg.Batch)
		for i := range queries {
			queries[i] = w.query()
		}
		return w.post(ctx, target+"/v1/instantiate", map[string]any{
			"spec":    w.spec(1),
			"queries": queries,
		})
	}
}

// post sends one request and returns the trace ID the daemon stamped on
// the response (empty against an untraced server).
func (w *worker) post(ctx context.Context, url string, body any) (string, error) {
	buf, err := json.Marshal(body)
	if err != nil {
		return "", err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(buf))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := w.client.Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	traceID := resp.Header.Get(obs.TraceIDHeader)
	msg, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil {
		return traceID, err
	}
	if resp.StatusCode != http.StatusOK {
		return traceID, fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, bytes.TrimSpace(msg))
	}
	return traceID, nil
}

// quantiles rendered in the table and the JSON summary.
var tableQuantiles = []struct {
	label string
	q     float64
}{
	{"p50", 0.50}, {"p90", 0.90}, {"p99", 0.99}, {"p99.9", 0.999},
}

// Table renders the run as a fixed-width text table: one row per op,
// then one per entry node.
func (r *Result) Table() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-40s %8s %6s", "", "count", "errs")
	for _, tq := range tableQuantiles {
		fmt.Fprintf(&b, " %9s", tq.label)
	}
	fmt.Fprintf(&b, " %9s %9s\n", "max", "mean")
	writeRows := func(prefix string, m map[string]*OpStats) {
		names := make([]string, 0, len(m))
		for name := range m {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			st := m[name]
			fmt.Fprintf(&b, "%-40s %8d %6d", prefix+name, st.Hist.Count(), st.Errors)
			for _, tq := range tableQuantiles {
				fmt.Fprintf(&b, " %9s", fmtDur(st.Hist.Quantile(tq.q)))
			}
			fmt.Fprintf(&b, " %9s %9s\n", fmtDur(st.Hist.Max()), fmtDur(st.Hist.Mean()))
		}
	}
	writeRows("", r.Ops)
	writeRows("node ", r.Nodes)
	fmt.Fprintf(&b, "%-40s %8d %6d  (%.1f req/s over %s)\n", "total", r.Requests, r.Errors,
		float64(r.Requests)/r.Elapsed.Seconds(), r.Elapsed.Round(time.Millisecond))
	if ex := r.Exemplars(); len(ex) > 0 {
		fmt.Fprintf(&b, "\nslowest traced requests (GET <target>/v1/debug/traces/<trace>):\n")
		names := make([]string, 0, len(ex))
		for op := range ex {
			names = append(names, op)
		}
		sort.Strings(names)
		for _, op := range names {
			e := ex[op][0]
			fmt.Fprintf(&b, "  %-12s %9s  trace %s  via %s\n", op, fmtDur(e.Duration), e.TraceID, e.Target)
		}
	}
	return b.String()
}

// Exemplars returns the per-op slowest traced requests, slowest first
// (ops whose server returned no trace ID are absent).
func (r *Result) Exemplars() map[string][]Exemplar {
	out := map[string][]Exemplar{}
	for op, st := range r.Ops {
		if len(st.Slowest) > 0 {
			out[op] = st.Slowest
		}
	}
	return out
}

// fmtDur renders a latency with three significant-ish digits.
func fmtDur(d time.Duration) string {
	switch {
	case d == 0:
		return "-"
	case d < time.Millisecond:
		return d.Round(time.Microsecond).String()
	case d < time.Second:
		return d.Round(10 * time.Microsecond).String()
	default:
		return d.Round(time.Millisecond).String()
	}
}

// StatSummary is the machine-readable form of one OpStats row:
// millisecond floats, ready for jq or a plotting script. SlowestTrace
// names the server-side trace of the slowest request as an exemplar.
type StatSummary struct {
	Count        int64              `json:"count"`
	Errors       int64              `json:"errors"`
	MS           map[string]float64 `json:"ms"`
	SlowestTrace *Exemplar          `json:"slowest_trace,omitempty"`
}

// Summary converts the result to its JSON-friendly form.
func (r *Result) Summary() map[string]any {
	conv := func(m map[string]*OpStats) map[string]StatSummary {
		out := make(map[string]StatSummary, len(m))
		for name, st := range m {
			ms := map[string]float64{
				"max":  float64(st.Hist.Max()) / float64(time.Millisecond),
				"mean": float64(st.Hist.Mean()) / float64(time.Millisecond),
			}
			for _, tq := range tableQuantiles {
				ms[tq.label] = float64(st.Hist.Quantile(tq.q)) / float64(time.Millisecond)
			}
			row := StatSummary{Count: st.Hist.Count(), Errors: st.Errors, MS: ms}
			if len(st.Slowest) > 0 {
				ex := st.Slowest[0]
				row.SlowestTrace = &ex
			}
			out[name] = row
		}
		return out
	}
	return map[string]any{
		"ops":        conv(r.Ops),
		"nodes":      conv(r.Nodes),
		"requests":   r.Requests,
		"errors":     r.Errors,
		"elapsed_ms": float64(r.Elapsed) / float64(time.Millisecond),
	}
}
