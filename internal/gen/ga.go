package gen

import (
	"context"
	"errors"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"time"

	"mps/internal/anneal"
	"mps/internal/bdio"
	"mps/internal/core"
	"mps/internal/cost"
	"mps/internal/geom"
	"mps/internal/netlist"
	"mps/internal/placement"
	"mps/internal/seqpair"
)

func init() { Register(gaBackend{}) }

// gaBackend generates a multi-placement structure with a genetic
// algorithm over sequence-pair encodings instead of the explorer's
// single annealing chain.
//
// The genotype is a placement's block coordinates at minimum dimensions.
// Parents recombine through their derived sequence pairs: each parent's
// coordinates are projected onto a (Γ+, Γ-) pair (the standard diagonal
// argsorts), the pairs undergo order crossover, and the child pair is
// decoded back to packed coordinates by longest paths — legal by
// construction — then dropped at a random offset inside the floorplan.
// Mutation reuses the explorer's move set (Perturb with toroidal wrap,
// occasionally SwapBlocks). Tournament selection ranks individuals by
// the same BDIO average cost the explorer anneals on.
//
// Evaluation is deliberately identical to one explorer iteration:
// ResetToMin -> Expand -> bdio.Optimize -> Structure.Insert, so every
// evaluated individual lands in the structure under the same resolve
// rules, and GA structures are indistinguishable downstream — compiled
// indexes, v3 files, portfolios, and the cluster all serve them
// unchanged. One seeded rand.Rand drives the entire run on one
// goroutine, so equal seeds give identical structures regardless of
// Spec.Chains (which this backend ignores).
type gaBackend struct{}

func (gaBackend) Name() string { return "ga" }

// Tuning constants. Population stays small because each evaluation is a
// full BDIO run — the budget currency is evaluations, not generations.
const (
	gaPopulation  = 8
	gaElite       = 2
	gaPerturbProb = 0.7 // mutation: explorer Perturb move
	gaSwapProb    = 0.3 // mutation: explorer SwapBlocks move
)

// errGATargetReached signals the structure hit MaxPlacements or
// TargetCoverage mid-evaluation; the run stops as a success, exactly as
// the explorer stops.
var errGATargetReached = errors.New("gen/ga: target reached")

func (gaBackend) Generate(ctx context.Context, c *netlist.Circuit, spec Spec) (*core.Structure, Stats, error) {
	if err := c.Validate(); err != nil {
		return nil, Stats{}, fmt.Errorf("gen/ga: %w", err)
	}
	iters := spec.Iterations
	if iters == 0 {
		iters = 300
	}
	fp := placement.DefaultFloorplan(c)
	ev := spec.evaluator()
	if ev == nil {
		ev = cost.DefaultWeights
	}
	maxShift := fp.W() / 4
	if maxShift < 1 {
		maxShift = 1
	}

	r := &gaRun{
		c:        c,
		fp:       fp,
		s:        core.NewStructure(c, fp),
		rng:      rand.New(rand.NewSource(spec.Seed)),
		spec:     spec,
		ev:       ev,
		budget:   iters,
		maxShift: maxShift,
		gap:      maxMargin(c),
		bcfg:     bdio.Config{Steps: spec.BDIOSteps, Stop: ctx.Done()},
	}
	r.bcfg.Rand = r.rng
	r.stats.BestAvgCost = math.Inf(1)
	r.stats.Chains = 1

	start := time.Now()
	err := r.evolve(ctx)
	r.stats.FinalCoverage = r.s.Coverage()
	r.stats.Duration = time.Since(start)
	if err != nil && !errors.Is(err, errGATargetReached) {
		return nil, r.stats, err
	}
	r.s.Compact()
	r.s.Renumber()
	return r.s, r.stats, nil
}

// individual is one population member: coordinates at minimum
// dimensions plus the BDIO average cost its evaluation scored.
type individual struct {
	p       *placement.Placement
	fitness float64
}

type gaRun struct {
	c        *netlist.Circuit
	fp       geom.Rect
	s        *core.Structure
	rng      *rand.Rand
	spec     Spec
	ev       cost.Evaluator
	bcfg     bdio.Config
	stats    Stats
	budget   int // total evaluation budget (outer-iteration equivalent)
	evals    int
	maxShift int
	gap      int
}

func (r *gaRun) evolve(ctx context.Context) error {
	popSize := gaPopulation
	if popSize > r.budget {
		popSize = r.budget
	}
	if popSize < 2 {
		popSize = 2
	}

	pop, err := r.initialPopulation(ctx, popSize)
	if err != nil {
		return err
	}

	for r.evals < r.budget {
		sort.SliceStable(pop, func(i, j int) bool { return pop[i].fitness < pop[j].fitness })
		next := make([]individual, 0, len(pop))
		for i := 0; i < gaElite && i < len(pop); i++ {
			next = append(next, pop[i])
		}
		for len(next) < len(pop) && r.evals < r.budget {
			p1 := r.tournament(pop)
			p2 := r.tournament(pop)
			child := r.crossover(p1.p, p2.p)
			r.mutate(child)
			fit, err := r.evaluate(ctx, child)
			if err != nil {
				return err
			}
			if fit < p1.fitness {
				r.stats.Accepted++
			}
			next = append(next, individual{p: child, fitness: fit})
		}
		pop = next
	}
	return nil
}

// initialPopulation seeds the gene pool from both encodings: half
// uniformly random legal placements (the explorer's Placement Selector)
// and half decoded random sequence pairs, whose packed, compact layouts
// give the crossover operator good building blocks from generation zero.
func (r *gaRun) initialPopulation(ctx context.Context, size int) ([]individual, error) {
	pop := make([]individual, 0, size)
	for i := 0; i < size && r.evals < r.budget; i++ {
		var p *placement.Placement
		if i%2 == 1 {
			p = r.decodePair(seqpair.Random(r.c.N(), r.rng))
		}
		if p == nil {
			var err error
			p, err = placement.RandomLegal(r.c, r.fp, r.rng)
			if err != nil {
				return nil, fmt.Errorf("gen/ga: %w", err)
			}
		}
		fit, err := r.evaluate(ctx, p)
		if err != nil {
			return nil, err
		}
		pop = append(pop, individual{p: p, fitness: fit})
	}
	return pop, nil
}

// evaluate runs one explorer-identical iteration on the individual:
// expand intervals from minimum dims, BDIO-optimize, resolve and store
// into the shared structure. The individual itself keeps its coordinates
// and minimum dims; only the stored clone carries the optimized
// intervals and costs. Returns the BDIO average cost as fitness.
func (r *gaRun) evaluate(ctx context.Context, p *placement.Placement) (float64, error) {
	if err := ctx.Err(); err != nil {
		return 0, fmt.Errorf("gen/ga: generation cancelled: %w", err)
	}
	cand := p.Clone()
	cand.ResetToMin(r.c)
	cand.Expand(r.c, r.fp, 1)

	res, err := bdio.Optimize(r.c, cand, r.fp, r.ev, r.bcfg)
	if err != nil {
		if errors.Is(err, anneal.ErrStopped) {
			return 0, fmt.Errorf("gen/ga: generation cancelled: %w", context.Cause(ctx))
		}
		return 0, fmt.Errorf("gen/ga: %w", err)
	}

	insert, err := r.s.Insert(cand.Clone())
	if err != nil {
		return 0, fmt.Errorf("gen/ga: %w", err)
	}
	r.evals++
	r.stats.Iterations++
	if insert.CandidateDied {
		r.stats.CandidatesDied++
	} else {
		r.stats.Stored++
	}
	if res.AvgCost < r.stats.BestAvgCost {
		r.stats.BestAvgCost = res.AvgCost
	}
	if r.spec.Progress != nil {
		r.spec.Progress(Progress{
			Chain:      0,
			Iteration:  r.evals - 1,
			Placements: r.s.NumPlacements(),
			Coverage:   r.s.Coverage(),
		})
	}
	if (r.spec.MaxPlacements > 0 && r.s.NumPlacements() >= r.spec.MaxPlacements) ||
		(r.spec.TargetCoverage > 0 && r.s.Coverage() >= r.spec.TargetCoverage) {
		return res.AvgCost, errGATargetReached
	}
	return res.AvgCost, nil
}

// tournament returns the fitter of two individuals drawn at random
// (size-2 tournament — enough selection pressure for a population of 8
// without collapsing diversity).
func (r *gaRun) tournament(pop []individual) individual {
	a := pop[r.rng.Intn(len(pop))]
	b := pop[r.rng.Intn(len(pop))]
	if b.fitness < a.fitness {
		return b
	}
	return a
}

// crossover recombines two parents through their sequence pairs: derive
// a pair from each parent's coordinates, order-cross Γ+ and Γ-
// independently, and decode the child pair back to a packed legal
// placement. Falls back to cloning the fitter-selected parent if the
// decoded packing cannot fit the floorplan (possible only for extremely
// tight floorplans — packing at minimum dims normally fits easily).
func (r *gaRun) crossover(p1, p2 *placement.Placement) *placement.Placement {
	sp1 := derivePair(p1)
	sp2 := derivePair(p2)
	child := seqpair.SeqPair{
		Plus:  orderCross(sp1.Plus, sp2.Plus, r.rng),
		Minus: orderCross(sp1.Minus, sp2.Minus, r.rng),
	}
	if p := r.decodePair(child); p != nil {
		return p
	}
	return p1.Clone()
}

// mutate applies the explorer's perturbation move set: usually the
// paper's multi-block Perturb with toroidal wrap, sometimes a block-pair
// swap (the second move class of the optimization baseline).
func (r *gaRun) mutate(p *placement.Placement) {
	if r.rng.Float64() < gaPerturbProb {
		p.Perturb(r.c, r.fp, r.rng, 0.3, r.maxShift)
	}
	if n := p.N(); n > 1 && r.rng.Float64() < gaSwapProb {
		i := r.rng.Intn(n)
		j := r.rng.Intn(n)
		for j == i {
			j = r.rng.Intn(n)
		}
		p.SwapBlocks(r.c, r.fp, i, j)
	}
}

// decodePair turns a sequence pair into a placement at minimum block
// dimensions: longest-path packed coordinates, translated to a uniformly
// random offset so the population explores the whole floorplan, not just
// the bottom-left corner. Returns nil if the packing cannot fit.
func (r *gaRun) decodePair(sp seqpair.SeqPair) *placement.Placement {
	p := placement.New(r.c)
	x, y, err := sp.Positions(p.WHi, p.HHi, r.gap)
	if err != nil {
		return nil
	}
	// Bounding box of the packing at minimum dims.
	bw, bh := 0, 0
	for i := range x {
		if end := x[i] + p.WHi[i]; end > bw {
			bw = end
		}
		if end := y[i] + p.HHi[i]; end > bh {
			bh = end
		}
	}
	if bw > r.fp.W() || bh > r.fp.H() {
		return nil
	}
	ox := r.fp.X0
	if slack := r.fp.W() - bw; slack > 0 {
		ox += r.rng.Intn(slack + 1)
	}
	oy := r.fp.Y0
	if slack := r.fp.H() - bh; slack > 0 {
		oy += r.rng.Intn(slack + 1)
	}
	for i := range x {
		p.X[i] = x[i] + ox
		p.Y[i] = y[i] + oy
	}
	return p
}

// derivePair projects a placement's coordinates onto the sequence pair
// that reproduces its relative order: Γ+ sorts blocks along the
// up-left → down-right diagonal (ascending x−y), Γ- along the
// down-left → up-right diagonal (ascending x+y). For blocks a left of b
// this puts a before b in both sequences; for a below b, after b in Γ+
// and before b in Γ-, matching the sequence-pair relations.
func derivePair(p *placement.Placement) seqpair.SeqPair {
	n := p.N()
	sp := seqpair.SeqPair{Plus: identity(n), Minus: identity(n)}
	sort.SliceStable(sp.Plus, func(a, b int) bool {
		i, j := sp.Plus[a], sp.Plus[b]
		return p.X[i]-p.Y[i] < p.X[j]-p.Y[j]
	})
	sort.SliceStable(sp.Minus, func(a, b int) bool {
		i, j := sp.Minus[a], sp.Minus[b]
		return p.X[i]+p.Y[i] < p.X[j]+p.Y[j]
	})
	return sp
}

// orderCross is classic order crossover (OX) on permutations: a random
// slice of parent a is copied through, the remaining elements fill the
// gaps in parent b's relative order.
func orderCross(a, b []int, rng *rand.Rand) []int {
	n := len(a)
	if n < 2 {
		return append([]int(nil), a...)
	}
	lo := rng.Intn(n)
	hi := rng.Intn(n)
	if lo > hi {
		lo, hi = hi, lo
	}
	child := make([]int, n)
	taken := make([]bool, n)
	for i := lo; i <= hi; i++ {
		child[i] = a[i]
		taken[a[i]] = true
	}
	pos := (hi + 1) % n
	for k := 0; k < n; k++ {
		v := b[(hi+1+k)%n]
		if taken[v] {
			continue
		}
		child[pos] = v
		pos = (pos + 1) % n
	}
	return child
}

func identity(n int) []int {
	s := make([]int, n)
	for i := range s {
		s[i] = i
	}
	return s
}

func maxMargin(c *netlist.Circuit) int {
	gap := 0
	for _, b := range c.Blocks {
		if b.Margin > gap {
			gap = b.Margin
		}
	}
	return gap
}
