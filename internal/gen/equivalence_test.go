package gen

// Cross-backend equivalence property suite: every registered backend
// must produce structures that are indistinguishable downstream — the
// structural invariants hold, the compiled query index answers exactly
// like the tree, and the v3 codec round-trips. New backends get this
// coverage for free; CI runs the suite once per backend via the
// MPS_BACKENDS filter (see .github/workflows/ci.yml).

import (
	"bytes"
	"context"
	"math/rand"
	"os"
	"strings"
	"testing"

	"mps/internal/circuits"
	"mps/internal/core"
	"mps/internal/cost"
	"mps/internal/netlist"
	"mps/internal/template"
)

// backendsUnderTest returns the backends the suite exercises: the
// comma-separated MPS_BACKENDS env filter (the CI matrix sets one
// backend per job), or every registered backend.
func backendsUnderTest(t *testing.T) []string {
	t.Helper()
	if env := os.Getenv("MPS_BACKENDS"); env != "" {
		var names []string
		for _, name := range strings.Split(env, ",") {
			name = strings.TrimSpace(name)
			if name == "" {
				continue
			}
			if _, err := ByName(name); err != nil {
				t.Fatalf("MPS_BACKENDS: %v", err)
			}
			names = append(names, name)
		}
		return names
	}
	return Names()
}

func randomDims(c *netlist.Circuit, rng *rand.Rand) (ws, hs []int) {
	ws = make([]int, c.N())
	hs = make([]int, c.N())
	for i, b := range c.Blocks {
		ws[i] = b.WMin + rng.Intn(b.WMax-b.WMin+1)
		hs[i] = b.HMin + rng.Intn(b.HMax-b.HMin+1)
	}
	return ws, hs
}

// checkEquivalence generates one structure for the spec and checks the
// downstream properties single-structure serving relies on: structural
// invariants, compiled-vs-tree query agreement, and the v3 round trip.
func checkEquivalence(t *testing.T, name string, spec Spec) {
	t.Helper()
	g, err := ByName(spec.Backend)
	if err != nil {
		t.Fatal(err)
	}
	c := circuits.MustByName(name)
	s, stats, err := g.Generate(context.Background(), c, spec)
	if err != nil {
		t.Fatal(err)
	}

	// Structural invariants: legal placements, consistent
	// intervals, dense IDs.
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s.NumPlacements() == 0 && stats.Iterations > 0 {
		t.Error("no placements stored")
	}
	s.SetBackup(template.Balanced(c))

	// Compiled-vs-tree query equivalence on a mixed
	// covered/backup stream.
	cs := core.Compile(s)
	rng := rand.New(rand.NewSource(23))
	for q := 0; q < 64; q++ {
		ws, hs := randomDims(c, rng)
		tree, err := s.Instantiate(ws, hs)
		if err != nil {
			t.Fatal(err)
		}
		flat, err := cs.Instantiate(ws, hs)
		if err != nil {
			t.Fatal(err)
		}
		if tree.PlacementID != flat.PlacementID || tree.FromBackup != flat.FromBackup {
			t.Fatalf("query %d: tree (id %d, backup %v) != compiled (id %d, backup %v)",
				q, tree.PlacementID, tree.FromBackup, flat.PlacementID, flat.FromBackup)
		}
	}

	// v3 round-trip: save with the compiled tables, load, and
	// the loaded structure must answer identically.
	var v3 bytes.Buffer
	if err := s.SaveBinaryCompiled(&v3); err != nil {
		t.Fatal(err)
	}
	loaded, err := core.Load(bytes.NewReader(v3.Bytes()), c)
	if err != nil {
		t.Fatal(err)
	}
	if err := loaded.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if loaded.NumPlacements() != s.NumPlacements() {
		t.Fatalf("round trip changed placement count: %d -> %d",
			s.NumPlacements(), loaded.NumPlacements())
	}
	loaded.SetBackup(template.Balanced(c))
	for q := 0; q < 16; q++ {
		ws, hs := randomDims(c, rng)
		want, err := s.Instantiate(ws, hs)
		if err != nil {
			t.Fatal(err)
		}
		got, err := loaded.Instantiate(ws, hs)
		if err != nil {
			t.Fatal(err)
		}
		if want.PlacementID != got.PlacementID || want.FromBackup != got.FromBackup {
			t.Fatalf("round-trip query %d: id %d/backup %v != id %d/backup %v",
				q, want.PlacementID, want.FromBackup, got.PlacementID, got.FromBackup)
		}
	}
}

// TestBackendEquivalence generates a small structure per (backend, seed
// circuit) and checks the downstream properties single-structure serving
// relies on. Budgets are tiny — the property is structural, not
// quality-dependent.
func TestBackendEquivalence(t *testing.T) {
	for _, backend := range backendsUnderTest(t) {
		for _, name := range circuits.Names() {
			backend, name := backend, name
			t.Run(backend+"/"+name, func(t *testing.T) {
				t.Parallel()
				checkEquivalence(t, name,
					Spec{Backend: backend, Seed: 11, Iterations: 12, BDIOSteps: 30})
			})
		}
	}
}

// TestBackendEquivalenceWeighted is the weighted-spec dimension of the
// suite: every backend must honor Spec.Weights and still produce
// invariant-clean, compiled-equivalent, v3-round-trip-safe structures.
// Each circuit gets one non-default ladder rung (cycling) to bound cost.
func TestBackendEquivalenceWeighted(t *testing.T) {
	rungs := []cost.Weights{cost.AreaHeavyWeights, cost.WireHeavyWeights, cost.AspectHeavyWeights}
	for _, backend := range backendsUnderTest(t) {
		for i, name := range circuits.Names() {
			backend, name, w := backend, name, rungs[i%len(rungs)]
			t.Run(backend+"/"+name, func(t *testing.T) {
				t.Parallel()
				checkEquivalence(t, name,
					Spec{Backend: backend, Seed: 11, Iterations: 12, BDIOSteps: 30, Weights: w})
			})
		}
	}
}

// TestWeightedSpecDefaultBitIdentical pins the compatibility half of the
// weights contract per backend: a spec naming the balanced vector
// explicitly generates byte-for-byte the structure a weightless spec
// does, so default-weight artifacts keep their identities everywhere.
func TestWeightedSpecDefaultBitIdentical(t *testing.T) {
	for _, backend := range backendsUnderTest(t) {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			t.Parallel()
			g, err := ByName(backend)
			if err != nil {
				t.Fatal(err)
			}
			c := circuits.MustByName("circ01")
			base := Spec{Backend: backend, Seed: 11, Iterations: 12, BDIOSteps: 30}
			weighted := base
			weighted.Weights = cost.BalancedWeights
			var a, b bytes.Buffer
			for _, run := range []struct {
				spec Spec
				buf  *bytes.Buffer
			}{{base, &a}, {weighted, &b}} {
				s, _, err := g.Generate(context.Background(), c, run.spec)
				if err != nil {
					t.Fatal(err)
				}
				if err := s.SaveBinary(run.buf); err != nil {
					t.Fatal(err)
				}
			}
			if !bytes.Equal(a.Bytes(), b.Bytes()) {
				t.Error("explicit balanced weights diverge from the weightless default")
			}
		})
	}
}

// TestBackendEquivalenceConcurrentQueries drives concurrent readers at a
// freshly generated structure per backend — the suite's -race teeth.
func TestBackendEquivalenceConcurrentQueries(t *testing.T) {
	for _, backend := range backendsUnderTest(t) {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			t.Parallel()
			g, err := ByName(backend)
			if err != nil {
				t.Fatal(err)
			}
			c := circuits.MustByName("circ01")
			s, _, err := g.Generate(context.Background(), c,
				Spec{Backend: backend, Seed: 5, Iterations: 12, BDIOSteps: 30})
			if err != nil {
				t.Fatal(err)
			}
			s.SetBackup(template.Balanced(c))
			cs := core.Compile(s)

			done := make(chan error, 4)
			for w := 0; w < 4; w++ {
				go func(seed int64) {
					rng := rand.New(rand.NewSource(seed))
					for q := 0; q < 200; q++ {
						ws, hs := randomDims(c, rng)
						if _, err := cs.Instantiate(ws, hs); err != nil {
							done <- err
							return
						}
					}
					done <- nil
				}(int64(w))
			}
			for w := 0; w < 4; w++ {
				if err := <-done; err != nil {
					t.Fatal(err)
				}
			}
		})
	}
}
