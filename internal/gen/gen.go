// Package gen puts multi-placement-structure generation behind one
// uniform, cancellable interface. A Generator turns a circuit plus a
// normalized, backend-tagged Spec into a finished *core.Structure; a
// process-global registry maps backend names to implementations so every
// layer above — the mps facade, the mpsd job scheduler and HTTP spec, the
// portfolio fan-out, the benchmarks — selects generation strategy by
// name instead of hard-wiring the nested-annealing explorer.
//
// Two backends register at init:
//
//   - "anneal" (the default): the paper's nested simulated annealing —
//     Placement Explorer outside, BDIO inside — exactly as mps.Generate
//     always ran it. For identical seeds and budgets its output is
//     byte-identical to the pre-interface pipeline (pinned by test).
//   - "ga": a genetic algorithm over sequence-pair encodings. Parents
//     recombine by order crossover of their derived sequence pairs
//     (decoded to legal packings by longest paths), mutation reuses the
//     explorer's perturbation move set, tournament selection ranks by
//     the same BDIO average cost, and every evaluated candidate is
//     resolved and stored into the structure exactly as the explorer
//     stores its candidates — so compiled indexes, portfolios, the
//     store, and the cluster serve GA output unchanged.
//
// The Generator contract: on success the returned structure is finished —
// compacted (fork fragments re-merged), densely renumbered (IDs survive a
// save/load round trip), and invariant-clean — but carries no backup;
// installing the uncovered-space fallback is the caller's concern (it is
// derived from the circuit, not from generation). On cancellation the
// context's error is returned (errors.Is(err, context.Canceled) or
// DeadlineExceeded), no structure is returned, and nothing of the partial
// run escapes. Implementations must be deterministic per seed and safe
// for concurrent use by independent calls.
package gen

import (
	"context"
	"fmt"
	"sort"
	"strings"
	"sync"

	"mps/internal/core"
	"mps/internal/cost"
	"mps/internal/explorer"
	"mps/internal/netlist"
)

// Default is the backend used when a spec names none — the explorer
// stack the repository always had. Every pre-interface cache key,
// manifest row, and job record implicitly meant this backend, which is
// why spec keys omit the backend tag for it (see internal/serve).
const Default = "anneal"

// Stats summarizes a generation run. All backends fill the same shape
// (it is the explorer's historical stats struct): Iterations counts
// candidate evaluations, Stored/CandidatesDied the resolve outcomes,
// Accepted the backend's notion of an improving step (Metropolis
// acceptances for anneal, fitness improvements over the selected parent
// for ga), BestAvgCost the best BDIO average cost seen.
type Stats = explorer.Stats

// Progress is the per-evaluation progress snapshot delivered to
// Spec.Progress. For the ga backend Chain is always 0 and Iteration is
// the evaluation index.
type Progress = explorer.Progress

// Spec is the normalized, backend-tagged generation request: every knob
// that affects the produced structure plus the hooks a long-running
// backend must honor. Zero budget fields mean "backend default" (the
// same defaults the explorer always applied); callers that cache by spec
// should resolve budgets before keying (mps.Options.Budgets does).
type Spec struct {
	// Backend names the generator this spec is for. Informational here —
	// dispatch happens via ByName — but carried so logs and job records
	// are self-describing. Empty means Default.
	Backend string
	// Seed drives all randomness; equal seeds and specs give identical
	// structures (anneal: with Chains == 1; ga: always — it runs one
	// deterministic population).
	Seed int64
	// Iterations is the candidate-evaluation budget: outer-SA steps for
	// anneal, total individual evaluations for ga. 0 = backend default.
	Iterations int
	// BDIOSteps is the inner-annealer budget per evaluated candidate,
	// identical in meaning across backends. 0 = backend default.
	BDIOSteps int
	// Chains runs parallel explorer chains feeding one structure
	// (anneal only; ga ignores it — its population is the parallelism).
	Chains int
	// MaxPlacements stops generation early at this structure size (0 = off).
	MaxPlacements int
	// TargetCoverage stops generation at this exact volume coverage
	// (0 = off; practical only for small circuits).
	TargetCoverage float64
	// Evaluator overrides the default wire-length + area cost. All
	// backends score candidates with the same evaluator, so cross-backend
	// cost columns are comparable.
	Evaluator cost.Evaluator
	// Weights selects the weighted objective vector candidates are scored
	// with (see cost.Weights): the zero vector means the default balanced
	// cost, bit-identical to generation before weights existed. Ignored
	// when Evaluator is set — an explicit evaluator always wins.
	Weights cost.Weights
	// Progress observes generation, once per candidate evaluation.
	// Called on the generating goroutine; keep it fast.
	Progress func(Progress)
}

// evaluator resolves the cost hook a backend scores with: the explicit
// Evaluator when set, the weighted objective when Weights is non-zero,
// else nil — which leaves each backend on its historical default path,
// keeping weightless specs bit-identical to pre-weights output.
func (s Spec) evaluator() cost.Evaluator {
	if s.Evaluator != nil {
		return s.Evaluator
	}
	if !s.Weights.IsZero() {
		return s.Weights.Canonical()
	}
	return nil
}

// Generator is one generation backend.
type Generator interface {
	// Name returns the backend's registry name.
	Name() string
	// Generate builds a finished structure for the circuit under the
	// spec. See the package comment for the contract.
	Generate(ctx context.Context, c *netlist.Circuit, spec Spec) (*core.Structure, Stats, error)
}

var (
	regMu    sync.RWMutex
	registry = map[string]Generator{}
)

// Register adds a backend under its Name. It panics on an empty name or
// a duplicate registration — backends register from init, where a
// conflict is a programming error worth failing loudly on.
func Register(g Generator) {
	name := g.Name()
	if name == "" {
		panic("gen: Register with empty backend name")
	}
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("gen: backend %q registered twice", name))
	}
	registry[name] = g
}

// ByName returns the backend registered under name ("" means Default).
// The error for an unknown name lists every registered backend, so it is
// directly servable as an HTTP 400 body.
func ByName(name string) (Generator, error) {
	if name == "" {
		name = Default
	}
	regMu.RLock()
	g, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("gen: unknown backend %q (registered: %s)",
			name, strings.Join(Names(), ", "))
	}
	return g, nil
}

// Names returns every registered backend name, sorted.
func Names() []string {
	regMu.RLock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	regMu.RUnlock()
	sort.Strings(names)
	return names
}
