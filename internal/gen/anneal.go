package gen

import (
	"context"

	"mps/internal/bdio"
	"mps/internal/core"
	"mps/internal/explorer"
	"mps/internal/netlist"
)

func init() { Register(annealBackend{}) }

// annealBackend wraps the Placement Explorer — the paper's nested
// simulated annealing — as the default generation backend. The Config
// mapping below is exactly what mps.Generate built before backends
// existed, and the Compact+Renumber finishing steps moved here with it,
// so ByName("anneal") is byte-identical to the pre-interface pipeline
// for identical seed and budgets (pinned by TestAnnealMatchesLegacyPipeline).
type annealBackend struct{}

func (annealBackend) Name() string { return Default }

func (annealBackend) Generate(ctx context.Context, c *netlist.Circuit, spec Spec) (*core.Structure, Stats, error) {
	s, stats, err := explorer.GenerateContext(ctx, c, explorer.Config{
		Seed:           spec.Seed,
		MaxIterations:  spec.Iterations,
		MaxPlacements:  spec.MaxPlacements,
		TargetCoverage: spec.TargetCoverage,
		Chains:         spec.Chains,
		Evaluator:      spec.evaluator(),
		BDIO:           bdio.Config{Steps: spec.BDIOSteps},
		Progress:       spec.Progress,
	})
	if err != nil {
		return nil, stats, err
	}
	// Re-merge fork fragments left by overlap resolution; queries are
	// unaffected, the structure just gets smaller and faster. Renumbering
	// then packs the ID holes deletion left, so the IDs clients see
	// survive a save/load round trip (see core.Renumber).
	s.Compact()
	s.Renumber()
	return s, stats, nil
}
