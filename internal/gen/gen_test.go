package gen

import (
	"bytes"
	"context"
	"errors"
	"slices"
	"strings"
	"testing"

	"mps/internal/bdio"
	"mps/internal/circuits"
	"mps/internal/explorer"
)

func TestRegistry(t *testing.T) {
	names := Names()
	if !slices.IsSorted(names) {
		t.Errorf("Names() = %v, want sorted", names)
	}
	for _, want := range []string{"anneal", "ga"} {
		if !slices.Contains(names, want) {
			t.Errorf("Names() = %v, missing %q", names, want)
		}
	}

	g, err := ByName("")
	if err != nil {
		t.Fatalf("ByName(\"\"): %v", err)
	}
	if g.Name() != Default {
		t.Errorf("ByName(\"\").Name() = %q, want %q", g.Name(), Default)
	}

	if _, err := ByName("nope"); err == nil {
		t.Fatal("ByName(\"nope\") succeeded")
	} else {
		for _, want := range []string{`"nope"`, "anneal", "ga"} {
			if !strings.Contains(err.Error(), want) {
				t.Errorf("unknown-backend error %q does not mention %s", err, want)
			}
		}
	}
}

// TestAnnealMatchesLegacyPipeline pins the refactor's central promise:
// the anneal backend is byte-identical to the pre-interface pipeline
// (explorer.GenerateContext followed by Compact and Renumber — what
// mps.Generate inlined before backends existed) for identical seed and
// budgets.
func TestAnnealMatchesLegacyPipeline(t *testing.T) {
	for _, name := range []string{"circ01", "TwoStageOpamp"} {
		c := circuits.MustByName(name)
		spec := Spec{Seed: 7, Iterations: 25, BDIOSteps: 40}

		legacy, _, err := explorer.GenerateContext(context.Background(), c, explorer.Config{
			Seed:          spec.Seed,
			MaxIterations: spec.Iterations,
			BDIO:          bdio.Config{Steps: spec.BDIOSteps},
		})
		if err != nil {
			t.Fatalf("%s: legacy pipeline: %v", name, err)
		}
		legacy.Compact()
		legacy.Renumber()

		g, err := ByName("anneal")
		if err != nil {
			t.Fatal(err)
		}
		got, _, err := g.Generate(context.Background(), c, spec)
		if err != nil {
			t.Fatalf("%s: anneal backend: %v", name, err)
		}

		var want, have bytes.Buffer
		if err := legacy.SaveBinary(&want); err != nil {
			t.Fatal(err)
		}
		if err := got.SaveBinary(&have); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), have.Bytes()) {
			t.Errorf("%s: anneal backend output differs from the legacy pipeline (%d vs %d bytes)",
				name, have.Len(), want.Len())
		}
	}
}

// TestGADeterministic: one seed, one structure — the GA runs a single
// seeded population on one goroutine, so reruns are bit-identical.
func TestGADeterministic(t *testing.T) {
	c := circuits.MustByName("circ01")
	g, err := ByName("ga")
	if err != nil {
		t.Fatal(err)
	}
	spec := Spec{Seed: 3, Iterations: 24, BDIOSteps: 40}

	var runs [2]*bytes.Buffer
	for i := range runs {
		s, stats, err := g.Generate(context.Background(), c, spec)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if stats.Iterations != spec.Iterations {
			t.Errorf("run %d: %d evaluations, want the full budget %d", i, stats.Iterations, spec.Iterations)
		}
		runs[i] = &bytes.Buffer{}
		if err := s.SaveBinary(runs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if !bytes.Equal(runs[0].Bytes(), runs[1].Bytes()) {
		t.Error("two GA runs with the same seed produced different structures")
	}
}

func TestGACancellation(t *testing.T) {
	c := circuits.MustByName("circ01")
	g, err := ByName("ga")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	s, _, err := g.Generate(ctx, c, Spec{Seed: 1, Iterations: 24, BDIOSteps: 40})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if s != nil {
		t.Error("cancelled generation returned a structure")
	}
}

func TestGAStopsAtMaxPlacements(t *testing.T) {
	c := circuits.MustByName("circ01")
	g, err := ByName("ga")
	if err != nil {
		t.Fatal(err)
	}
	s, stats, err := g.Generate(context.Background(), c,
		Spec{Seed: 1, Iterations: 200, BDIOSteps: 40, MaxPlacements: 4})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Iterations >= 200 {
		t.Errorf("GA burned the full budget (%d evaluations) despite MaxPlacements", stats.Iterations)
	}
	if s.NumPlacements() == 0 {
		t.Error("no placements stored")
	}
}

func TestGAProgressReported(t *testing.T) {
	c := circuits.MustByName("circ01")
	g, err := ByName("ga")
	if err != nil {
		t.Fatal(err)
	}
	var calls int
	last := Progress{Iteration: -1}
	_, stats, err := g.Generate(context.Background(), c, Spec{
		Seed: 1, Iterations: 12, BDIOSteps: 40,
		Progress: func(p Progress) {
			calls++
			if p.Iteration <= last.Iteration {
				t.Errorf("iteration went %d -> %d", last.Iteration, p.Iteration)
			}
			last = p
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if calls != stats.Iterations {
		t.Errorf("progress called %d times for %d evaluations", calls, stats.Iterations)
	}
}
