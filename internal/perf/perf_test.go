package perf

import (
	"math"
	"testing"
)

// nominal returns a mid-range sizing point that should be electrically sane.
func nominal() TwoStageParams {
	return TwoStageParams{
		W1: 60, L1: 0.5,
		W3: 30, L3: 0.5,
		W5: 20, L5: 1.0,
		W6: 200, L6: 0.35,
		CcPF:   2,
		IbiasA: 50e-6,
		CloadF: 2e-12,
	}
}

func TestEvalTwoStageSaneValues(t *testing.T) {
	p := EvalTwoStage(nominal(), 0, 0)
	if p.GainDB < 40 || p.GainDB > 120 {
		t.Errorf("GainDB = %g, want a plausible opamp gain", p.GainDB)
	}
	if p.GBWHz < 1e6 || p.GBWHz > 1e9 {
		t.Errorf("GBW = %g Hz, want MHz-range", p.GBWHz)
	}
	if p.PhaseMarginDeg < 0 || p.PhaseMarginDeg > 90 {
		t.Errorf("PM = %g deg, want in (0,90)", p.PhaseMarginDeg)
	}
	if p.PowerMW <= 0 || p.PowerMW > 10 {
		t.Errorf("Power = %g mW, want sub-10mW", p.PowerMW)
	}
	if p.SlewVPerUs <= 0 {
		t.Errorf("Slew = %g, want positive", p.SlewVPerUs)
	}
}

func TestGBWIncreasesWithDiffPairWidth(t *testing.T) {
	small := nominal()
	big := nominal()
	big.W1 *= 4
	if EvalTwoStage(big, 0, 0).GBWHz <= EvalTwoStage(small, 0, 0).GBWHz {
		t.Error("GBW should grow with diff-pair W (gm1 up)")
	}
}

func TestGBWDecreasesWithCc(t *testing.T) {
	smallCc := nominal()
	bigCc := nominal()
	bigCc.CcPF *= 4
	if EvalTwoStage(bigCc, 0, 0).GBWHz >= EvalTwoStage(smallCc, 0, 0).GBWHz {
		t.Error("GBW should fall as Cc grows")
	}
}

// TestWireParasiticsDegradePerformance is the layout-in-the-loop property:
// longer wires on the output and compensation nets must hurt phase margin
// and GBW respectively.
func TestWireParasiticsDegradePerformance(t *testing.T) {
	clean := EvalTwoStage(nominal(), 0, 0)
	loadedOut := EvalTwoStage(nominal(), 4000, 0)
	if loadedOut.PhaseMarginDeg >= clean.PhaseMarginDeg {
		t.Errorf("output wire cap should cost phase margin: %g vs %g",
			loadedOut.PhaseMarginDeg, clean.PhaseMarginDeg)
	}
	loadedComp := EvalTwoStage(nominal(), 0, 4000)
	if loadedComp.GBWHz >= clean.GBWHz {
		t.Errorf("compensation wire cap should cost GBW: %g vs %g",
			loadedComp.GBWHz, clean.GBWHz)
	}
}

func TestGainIncreasesWithLength(t *testing.T) {
	shortL := nominal()
	longL := nominal()
	longL.L1 *= 2
	longL.L3 *= 2
	// Longer L raises ro (lambda down), raising first-stage gain.
	if EvalTwoStage(longL, 0, 0).GainDB <= EvalTwoStage(shortL, 0, 0).GainDB {
		t.Error("gain should grow with channel length")
	}
}

func TestSpecPenalty(t *testing.T) {
	spec := Spec{MinGainDB: 60, MinGBWHz: 10e6, MinPMDeg: 45, MinSlewVUs: 5, MaxPowerMW: 5}
	good := TwoStagePerf{GainDB: 70, GBWHz: 50e6, PhaseMarginDeg: 60, SlewVPerUs: 20, PowerMW: 1}
	if pen := spec.Penalty(good); pen != 0 {
		t.Errorf("good point penalty = %g, want 0", pen)
	}
	if !spec.Met(good) {
		t.Error("good point should meet spec")
	}
	bad := good
	bad.GainDB = 30
	if pen := spec.Penalty(bad); pen <= 0 {
		t.Error("gain shortfall should be penalized")
	}
	worse := bad
	worse.GainDB = 10
	if spec.Penalty(worse) <= spec.Penalty(bad) {
		t.Error("penalty should grow with violation size")
	}
	hot := good
	hot.PowerMW = 50
	if spec.Penalty(hot) <= 0 {
		t.Error("power excess should be penalized")
	}
}

func TestParamsFromVector(t *testing.T) {
	x := []float64{60, 0.5, 30, 0.5, 20, 1.0, 200, 0.35, 2}
	p := ParamsFromVector(x)
	if p.W1 != 60 || p.L6 != 0.35 || p.CcPF != 2 {
		t.Errorf("ParamsFromVector mismapped: %+v", p)
	}
	if p.IbiasA <= 0 || p.CloadF <= 0 {
		t.Error("fixed bias/load not set")
	}
}

func TestDegenerateInputsDoNotBlowUp(t *testing.T) {
	p := TwoStageParams{} // all zeros
	got := EvalTwoStage(p, 0, 0)
	if math.IsNaN(got.GainDB) || math.IsNaN(got.PhaseMarginDeg) {
		t.Errorf("degenerate params produced NaN: %+v", got)
	}
}
