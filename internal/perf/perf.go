// Package perf provides first-order analytic performance models for the
// layout-inclusive synthesis loop (paper Fig. 1b). The paper's flow couples
// a sizing optimizer to circuit simulation plus layout extraction; we
// substitute standard square-law hand equations for the two-stage Miller
// opamp with layout wire parasitics folded into the load and compensation
// nodes (DESIGN.md §3). The model only needs to be monotone and
// layout-sensitive for the loop to behave like the paper's.
package perf

import "math"

// Process constants for a generic 0.35µm-class CMOS process.
const (
	// KPn, KPp are the NMOS/PMOS transconductance parameters (A/V²).
	KPn = 170e-6
	KPp = 58e-6
	// LambdaV is the channel-length modulation coefficient at L = 1 µm
	// (1/V); scaled by 1/L for other lengths.
	LambdaV = 0.06
	// Vdd is the supply voltage (V).
	Vdd = 3.3
	// CwireFPerUnit is the parasitic capacitance of one layout unit of wire
	// (F). One unit = 0.25 µm at ~0.2 fF/µm.
	CwireFPerUnit = 0.05e-15
)

// TwoStageParams are the electrical design variables of the Miller opamp,
// mirroring modgen.TwoStageOpampSizer's vector layout.
type TwoStageParams struct {
	W1, L1 float64 // diff pair device (µm)
	W3, L3 float64 // mirror load device (µm)
	W5, L5 float64 // tail source (µm)
	W6, L6 float64 // output driver (µm)
	CcPF   float64 // compensation capacitor (pF)
	IbiasA float64 // tail bias current (A)
	CloadF float64 // external load (F)
}

// TwoStagePerf is the estimated performance of one sizing point.
type TwoStagePerf struct {
	GainDB         float64
	GBWHz          float64
	PhaseMarginDeg float64
	SlewVPerUs     float64
	PowerMW        float64
}

// ParamsFromVector converts a modgen.TwoStageOpampSizer sizing vector into
// electrical parameters with fixed bias and load.
func ParamsFromVector(x []float64) TwoStageParams {
	return TwoStageParams{
		W1: x[0], L1: x[1],
		W3: x[2], L3: x[3],
		W5: x[4], L5: x[5],
		W6: x[6], L6: x[7],
		CcPF:   x[8],
		IbiasA: 50e-6,
		CloadF: 2e-12,
	}
}

// EvalTwoStage evaluates the opamp at the given sizing point.
// wireOut and wireComp are layout wire lengths (in layout units) of the
// output net and the first-stage/compensation net; their parasitics load
// the corresponding poles, which is how placement quality feeds back into
// electrical performance.
func EvalTwoStage(p TwoStageParams, wireOutUnits, wireCompUnits int) TwoStagePerf {
	id1 := p.IbiasA / 2 // per diff-pair device
	id6 := p.IbiasA * 2 // output stage runs at 2x tail (mirror ratio)

	gm1 := gmOf(KPn, p.W1, p.L1, id1)
	gm6 := gmOf(KPn, p.W6, p.L6, id6)

	ro2 := roOf(p.L1, id1)
	ro4 := roOf(p.L3, id1)
	ro6 := roOf(p.L6, id6)
	ro7 := roOf(p.L5, id6)

	gain := gm1 * par(ro2, ro4) * gm6 * par(ro6, ro7)

	cWireComp := float64(wireCompUnits) * CwireFPerUnit
	cWireOut := float64(wireOutUnits) * CwireFPerUnit
	// Floor the capacitances at 1 fF so degenerate sizing points stay
	// finite (the optimizer sees a terrible-but-comparable value instead of
	// NaN poisoning the annealer).
	cc := math.Max(p.CcPF*1e-12+cWireComp, 1e-15)
	cl := math.Max(p.CloadF+cWireOut, 1e-15)

	gbw := gm1 / (2 * math.Pi * cc)
	p2 := gm6 / (2 * math.Pi * cl)
	// Phase margin from the non-dominant pole plus the RHP zero gm6/Cc.
	z1 := gm6 / (2 * math.Pi * cc)
	pm := 90 - rad2deg(math.Atan(gbw/p2)) - rad2deg(math.Atan(gbw/z1))

	return TwoStagePerf{
		GainDB:         20 * math.Log10(math.Max(gain, 1e-9)),
		GBWHz:          gbw,
		PhaseMarginDeg: pm,
		SlewVPerUs:     p.IbiasA / cc / 1e6,
		PowerMW:        (p.IbiasA + id6) * Vdd * 1e3,
	}
}

// Spec is a set of performance constraints for the synthesis example.
type Spec struct {
	MinGainDB  float64
	MinGBWHz   float64
	MinPMDeg   float64
	MinSlewVUs float64
	MaxPowerMW float64
}

// DefaultSpec is a moderate two-stage opamp target.
var DefaultSpec = Spec{
	MinGainDB:  65,
	MinGBWHz:   20e6,
	MinPMDeg:   55,
	MinSlewVUs: 10,
	MaxPowerMW: 2.0,
}

// Penalty returns a non-negative constraint-violation score: zero when all
// constraints are met, growing linearly with relative violation. The
// synthesis loop minimizes penalty plus its area/wire objective.
func (s Spec) Penalty(p TwoStagePerf) float64 {
	pen := 0.0
	pen += shortfall(p.GainDB, s.MinGainDB)
	pen += shortfall(p.GBWHz, s.MinGBWHz)
	pen += shortfall(p.PhaseMarginDeg, s.MinPMDeg)
	pen += shortfall(p.SlewVPerUs, s.MinSlewVUs)
	pen += excess(p.PowerMW, s.MaxPowerMW)
	return pen
}

// Met reports whether all constraints are satisfied.
func (s Spec) Met(p TwoStagePerf) bool { return s.Penalty(p) == 0 }

// shortfall returns the relative amount by which got misses a lower bound.
func shortfall(got, minWant float64) float64 {
	if minWant <= 0 || got >= minWant {
		return 0
	}
	return (minWant - got) / minWant
}

// excess returns the relative amount by which got exceeds an upper bound.
func excess(got, maxWant float64) float64 {
	if maxWant <= 0 || got <= maxWant {
		return 0
	}
	return (got - maxWant) / maxWant
}

// gmOf returns the square-law saturation transconductance.
func gmOf(kp, wUm, lUm, id float64) float64 {
	if lUm <= 0 || wUm <= 0 || id <= 0 {
		return 1e-12
	}
	return math.Sqrt(2 * kp * (wUm / lUm) * id)
}

// roOf returns the output resistance 1/(lambda * Id), with lambda ∝ 1/L.
func roOf(lUm, id float64) float64 {
	if lUm <= 0 || id <= 0 {
		return 1e12
	}
	lambda := LambdaV / lUm
	return 1 / (lambda * id)
}

func par(a, b float64) float64 { return a * b / (a + b) }

func rad2deg(r float64) float64 { return r * 180 / math.Pi }
