package bdio

import (
	"math/rand"
	"testing"

	"mps/internal/circuits"
	"mps/internal/cost"
	"mps/internal/geom"
	"mps/internal/placement"
)

// expandedPlacement returns a random legal, expanded placement on the named
// benchmark, ready for the BDIO.
func expandedPlacement(t *testing.T, name string, seed int64) (*placement.Placement, geom.Rect, *cost.Layout) {
	t.Helper()
	c := circuits.MustByName(name)
	fp := placement.DefaultFloorplan(c)
	rng := rand.New(rand.NewSource(seed))
	p, err := placement.RandomLegal(c, fp, rng)
	if err != nil {
		t.Fatal(err)
	}
	p.Expand(c, fp, 1)
	return p, fp, nil
}

func TestOptimizeShrinksIntervalsAroundBest(t *testing.T) {
	c := circuits.MustByName("TwoStageOpamp")
	p, fp, _ := expandedPlacement(t, "TwoStageOpamp", 1)
	before := p.Clone()
	res, err := Optimize(c, p, fp, cost.DefaultWeights, Config{
		Steps: 500, Rand: rand.New(rand.NewSource(2)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost <= 0 {
		t.Errorf("BestCost = %g, want positive", res.BestCost)
	}
	if res.AvgCost < res.BestCost {
		t.Errorf("AvgCost %g below BestCost %g", res.AvgCost, res.BestCost)
	}
	for i := range p.X {
		// Shrunk intervals stay inside the expanded ones.
		if p.WLo[i] < before.WLo[i] || p.WHi[i] > before.WHi[i] {
			t.Errorf("block %d width interval [%d,%d] escaped expanded [%d,%d]",
				i, p.WLo[i], p.WHi[i], before.WLo[i], before.WHi[i])
		}
		if p.HLo[i] < before.HLo[i] || p.HHi[i] > before.HHi[i] {
			t.Errorf("block %d height interval escaped expansion", i)
		}
		// And contain the best dimensions.
		if !p.WIv(i).Contains(res.BestW[i]) || !p.HIv(i).Contains(res.BestH[i]) {
			t.Errorf("block %d best dims (%d,%d) outside shrunk intervals %v/%v",
				i, res.BestW[i], res.BestH[i], p.WIv(i), p.HIv(i))
		}
	}
	if p.AvgCost != res.AvgCost || p.BestCost != res.BestCost {
		t.Error("costs not recorded on the placement")
	}
}

func TestOptimizeDoesNotMoveCoordinates(t *testing.T) {
	c := circuits.MustByName("Mixer")
	p, fp, _ := expandedPlacement(t, "Mixer", 3)
	xBefore := append([]int(nil), p.X...)
	yBefore := append([]int(nil), p.Y...)
	if _, err := Optimize(c, p, fp, cost.DefaultWeights, Config{
		Steps: 300, Rand: rand.New(rand.NewSource(4)),
	}); err != nil {
		t.Fatal(err)
	}
	for i := range p.X {
		if p.X[i] != xBefore[i] || p.Y[i] != yBefore[i] {
			t.Fatalf("BDIO moved block %d — coordinates are fixed inside the BDIO", i)
		}
	}
}

func TestOptimizeBestCostBeatsOrMatchesMidpoint(t *testing.T) {
	c := circuits.MustByName("circ02")
	p, fp, _ := expandedPlacement(t, "circ02", 5)
	n := c.N()
	mid := cost.Layout{
		Circuit: c, X: p.X, Y: p.Y,
		W: make([]int, n), H: make([]int, n), Floorplan: fp,
	}
	for i := 0; i < n; i++ {
		mid.W[i] = (p.WLo[i] + p.WHi[i]) / 2
		mid.H[i] = (p.HLo[i] + p.HHi[i]) / 2
	}
	midCost := cost.DefaultWeights.Cost(&mid)
	res, err := Optimize(c, p, fp, cost.DefaultWeights, Config{
		Steps: 800, Rand: rand.New(rand.NewSource(6)),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.BestCost > midCost {
		t.Errorf("BestCost %g worse than the starting midpoint %g", res.BestCost, midCost)
	}
}

func TestOptimizeRequiresRand(t *testing.T) {
	c := circuits.MustByName("circ01")
	p, fp, _ := expandedPlacement(t, "circ01", 7)
	if _, err := Optimize(c, p, fp, cost.DefaultWeights, Config{Steps: 10}); err == nil {
		t.Error("missing Rand should error")
	}
}

func TestOptimizeDeterministicWithSeed(t *testing.T) {
	run := func() Result {
		c := circuits.MustByName("circ01")
		fp := placement.DefaultFloorplan(c)
		rng := rand.New(rand.NewSource(8))
		p, err := placement.RandomLegal(c, fp, rng)
		if err != nil {
			t.Fatal(err)
		}
		p.Expand(c, fp, 1)
		res, err := Optimize(c, p, fp, cost.DefaultWeights, Config{
			Steps: 200, Rand: rand.New(rand.NewSource(9)),
		})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.AvgCost != b.AvgCost || a.BestCost != b.BestCost {
		t.Errorf("same seeds, different results: %+v vs %+v", a, b)
	}
}

func TestShrinkAround(t *testing.T) {
	iv := geom.NewInterval(10, 30) // span 20
	tests := []struct {
		name   string
		best   int
		ratio  float64
		wantLo int
		wantHi int
	}{
		{"flat landscape keeps full span", 20, 1.0, 10, 30},
		{"half ratio halves the interval", 20, 0.5, 15, 25},
		{"spiky collapses to the point", 20, 0.0, 20, 20},
		{"clamped at the left edge", 11, 0.5, 10, 16},
		{"clamped at the right edge", 29, 0.5, 24, 30},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			lo, hi := shrinkAround(iv, tc.best, tc.ratio)
			if lo != tc.wantLo || hi != tc.wantHi {
				t.Errorf("shrinkAround = [%d,%d], want [%d,%d]", lo, hi, tc.wantLo, tc.wantHi)
			}
			if lo > tc.best || hi < tc.best {
				t.Errorf("result [%d,%d] does not contain best %d", lo, hi, tc.best)
			}
		})
	}
}

func TestShrinkAroundDegenerateInterval(t *testing.T) {
	iv := geom.NewInterval(5, 5)
	lo, hi := shrinkAround(iv, 5, 1.0)
	if lo != 5 || hi != 5 {
		t.Errorf("point interval shrink = [%d,%d], want [5,5]", lo, hi)
	}
}

// TestHigherAvgCostShrinksMore checks the qualitative eq. 6 behaviour on
// synthetic cost ratios.
func TestHigherAvgCostShrinksMore(t *testing.T) {
	iv := geom.NewInterval(0, 100)
	_, hiTight := shrinkAround(iv, 50, 0.1) // avg >> best
	_, hiLoose := shrinkAround(iv, 50, 0.9) // avg ≈ best
	tight := hiTight - 50
	loose := hiLoose - 50
	if tight >= loose {
		t.Errorf("tight half-width %d should be smaller than loose %d", tight, loose)
	}
}
