// Package bdio implements the Block Dimensions-Interval Optimizer of paper
// §3.2 — the inner simulated annealing of the nested-annealing generation
// algorithm.
//
// Given a placement with fixed coordinates and expanded dimension intervals,
// the BDIO anneals over dimension vectors inside those intervals (Dimensions
// Selector, §3.2.1), scoring each with the customizable cost calculator
// (§3.2.2). It then shrinks the intervals around the best dimensions found
// (Optimize Ranges, §3.2.3, eq. 6) and reports the average and best cost
// back to the Placement Explorer.
package bdio

import (
	"fmt"
	"math"
	"math/rand"

	"mps/internal/anneal"
	"mps/internal/cost"
	"mps/internal/geom"
	"mps/internal/netlist"
	"mps/internal/placement"
)

// Config controls one BDIO run.
type Config struct {
	// Steps is the inner-SA iteration count (paper: "a number of iterations
	// set by the user"). Default 400.
	Steps int
	// Cooling is the geometric cooling factor. Default 0.99.
	Cooling float64
	// PerturbPct scales dimension moves as a fraction of each interval's
	// span (paper §3.2.1: "perturbs the proposed w and h values by a
	// percentage input set by the user"). Default 0.25.
	PerturbPct float64
	// DisableRangeShrink skips the Optimize Ranges step (eq. 6), keeping
	// the full expanded intervals. Ablation hook (DESIGN.md §6): without
	// the shrink, stored boxes conflict far more and resolution discards
	// more volume.
	DisableRangeShrink bool
	// Rand supplies randomness; required (pass a seeded *rand.Rand).
	Rand *rand.Rand
	// Stop, when non-nil, cooperatively cancels the inner annealing run:
	// Optimize returns anneal.ErrStopped within one proposal of it closing.
	// The Placement Explorer wires a context's Done channel here so a
	// cancelled generation stops mid-BDIO, not at the next outer iteration.
	Stop <-chan struct{}
}

func (cfg Config) withDefaults() Config {
	if cfg.Steps == 0 {
		cfg.Steps = 400
	}
	if cfg.Cooling == 0 {
		cfg.Cooling = 0.99
	}
	if cfg.PerturbPct == 0 {
		cfg.PerturbPct = 0.25
	}
	return cfg
}

// Result summarizes a BDIO run. AvgCost is what the Placement Explorer uses
// as the placement's cost in its own annealing.
type Result struct {
	AvgCost  float64
	BestCost float64
	BestW    []int
	BestH    []int
	Stats    anneal.Stats
}

// problem is the inner-SA state: one dimension vector inside the intervals.
type problem struct {
	circuit *netlist.Circuit
	place   *placement.Placement
	ev      cost.Evaluator
	layout  cost.Layout
	pct     float64

	// move undo state
	movedBlock int
	movedDim   int // 0 = width, 1 = height
	prevVal    int

	best  float64
	bestW []int
	bestH []int
}

// Propose implements anneal.Problem: perturb one block's width or height
// inside its validity interval.
func (pr *problem) Propose(rng *rand.Rand, magnitude float64) float64 {
	i := rng.Intn(pr.circuit.N())
	dim := rng.Intn(2)
	var iv geom.Interval
	var cur *int
	if dim == 0 {
		iv = pr.place.WIv(i)
		cur = &pr.layout.W[i]
	} else {
		iv = pr.place.HIv(i)
		cur = &pr.layout.H[i]
	}
	pr.movedBlock, pr.movedDim, pr.prevVal = i, dim, *cur

	span := iv.Len() - 1
	if span > 0 {
		step := int(math.Round(pr.pct * magnitude * float64(span)))
		if step < 1 {
			step = 1
		}
		delta := rng.Intn(2*step+1) - step
		*cur = iv.Clamp(*cur + delta)
	}
	c := pr.ev.Cost(&pr.layout)
	if c < pr.best {
		pr.best = c
		copy(pr.bestW, pr.layout.W)
		copy(pr.bestH, pr.layout.H)
	}
	return c
}

// Accept implements anneal.Problem (the move is already applied).
func (pr *problem) Accept() {}

// Reject implements anneal.Problem.
func (pr *problem) Reject() {
	if pr.movedDim == 0 {
		pr.layout.W[pr.movedBlock] = pr.prevVal
	} else {
		pr.layout.H[pr.movedBlock] = pr.prevVal
	}
}

// Optimize runs the BDIO on p (in place): it anneals dimensions inside p's
// intervals, records AvgCost/BestCost/BestW/BestH on p, and shrinks p's
// intervals around the best dimensions per eq. 6. The placement's
// coordinates are never touched.
func Optimize(c *netlist.Circuit, p *placement.Placement, fp geom.Rect, ev cost.Evaluator, cfg Config) (Result, error) {
	cfg = cfg.withDefaults()
	if cfg.Rand == nil {
		return Result{}, fmt.Errorf("bdio: Config.Rand is required")
	}
	n := c.N()
	pr := &problem{
		circuit: c,
		place:   p,
		ev:      ev,
		pct:     cfg.PerturbPct,
		layout: cost.Layout{
			Circuit:   c,
			X:         p.X,
			Y:         p.Y,
			W:         make([]int, n),
			H:         make([]int, n),
			Floorplan: fp,
		},
		bestW: make([]int, n),
		bestH: make([]int, n),
	}
	// Start at the interval midpoints (deterministic; the annealer explores
	// from there).
	for i := 0; i < n; i++ {
		pr.layout.W[i] = (p.WLo[i] + p.WHi[i]) / 2
		pr.layout.H[i] = (p.HLo[i] + p.HHi[i]) / 2
	}
	initCost := ev.Cost(&pr.layout)
	pr.best = initCost
	copy(pr.bestW, pr.layout.W)
	copy(pr.bestH, pr.layout.H)

	stats, err := anneal.Run(pr, initCost, anneal.Config{
		Cooling: cfg.Cooling,
		Steps:   cfg.Steps,
		Rand:    cfg.Rand,
		Stop:    cfg.Stop,
	})
	if err != nil {
		// A stopped run is propagated unwrapped in meaning: callers match it
		// with errors.Is(err, anneal.ErrStopped) to tell cancellation from
		// misconfiguration.
		return Result{}, fmt.Errorf("bdio: %w", err)
	}

	res := Result{
		AvgCost:  stats.MeanCost,
		BestCost: pr.best,
		BestW:    pr.bestW,
		BestH:    pr.bestH,
		Stats:    stats,
	}
	p.AvgCost = res.AvgCost
	p.BestCost = res.BestCost
	p.BestW = append([]int(nil), res.BestW...)
	p.BestH = append([]int(nil), res.BestH...)
	if !cfg.DisableRangeShrink {
		optimizeRanges(p, res.BestW, res.BestH, res.BestCost, res.AvgCost)
	}
	return res, nil
}

// optimizeRanges implements eq. 6 with the D3 reading (DESIGN.md): each
// interval is re-centered on the best dimension value with half-width
// (bestCost/avgCost) * span/2, clamped inside the expanded interval. A flat
// cost landscape (avg ≈ best) keeps the whole expanded interval; a spiky
// one collapses toward the best point.
func optimizeRanges(p *placement.Placement, bestW, bestH []int, best, avg float64) {
	ratio := 1.0
	if avg > 0 && best >= 0 && avg >= best {
		ratio = best / avg
	}
	for i := range p.X {
		p.WLo[i], p.WHi[i] = shrinkAround(p.WIv(i), bestW[i], ratio)
		p.HLo[i], p.HHi[i] = shrinkAround(p.HIv(i), bestH[i], ratio)
	}
}

// shrinkAround returns the interval re-centered on best with half-width
// ratio*span/2, intersected with iv. The result always contains best.
func shrinkAround(iv geom.Interval, best int, ratio float64) (lo, hi int) {
	span := float64(iv.Len() - 1)
	hw := int(math.Round(ratio * span / 2))
	lo = best - hw
	hi = best + hw
	if lo < iv.Lo {
		lo = iv.Lo
	}
	if hi > iv.Hi {
		hi = iv.Hi
	}
	// Guard: best must stay inside (it does by construction, but clamping
	// plus integer rounding keeps this worth asserting cheaply).
	if lo > best {
		lo = best
	}
	if hi < best {
		hi = best
	}
	return lo, hi
}
