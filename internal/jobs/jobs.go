// Package jobs implements the asynchronous generation job scheduler that
// turns structure generation — the minutes-to-hours offline step of the
// paper's Fig. 1a — into a managed background workload instead of a
// request-scoped side effect.
//
// A Scheduler owns a priority FIFO queue drained by a bounded worker pool.
// Each job carries the canonical spec key the serving layer's LRU and disk
// store already use, so submissions deduplicate onto in-flight work the
// same way cache lookups do. Jobs move through a small lifecycle:
//
//	queued → running → done | failed | cancelled
//
// with live progress snapshots (chain, iteration, placement count,
// coverage estimate) fed by the generation stack's Progress hook, and
// cooperative cancellation through the context plumbed down to the nested
// annealers: cancelling a queued job prevents it from ever running, and
// cancelling a running job stops annealing within one inner-SA proposal.
//
// With Config.Dir set, job state is persisted crash-safely (one atomic
// jobs.json rewrite per transition, via store.WriteFileAtomic), so a
// restarted daemon still reports its history: completed jobs list with
// their final progress, and jobs that were queued or running when the
// process died surface through Interrupted for the caller to resubmit.
package jobs

import (
	"container/heap"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"mps/internal/obs"
	"mps/internal/store"
)

// State is a job lifecycle phase.
type State string

const (
	// StateQueued: accepted, waiting for a worker.
	StateQueued State = "queued"
	// StateRunning: a worker is generating; Progress advances.
	StateRunning State = "running"
	// StateDone: the run function returned nil.
	StateDone State = "done"
	// StateFailed: the run function returned a non-cancellation error (or
	// the job was found queued/running in a loaded state file — see
	// Interrupted).
	StateFailed State = "failed"
	// StateCancelled: cancelled while queued (never ran) or while running
	// (the run function observed its context end).
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Progress is a live generation snapshot, updated by the job's run
// function through the report callback.
type Progress struct {
	// Chain and Iteration locate the reporting explorer chain in its
	// outer-SA schedule.
	Chain     int `json:"chain"`
	Iteration int `json:"iteration"`
	// Placements is the structure's stored-placement count so far.
	Placements int `json:"placements"`
	// Coverage is the structure's covered volume fraction so far (an
	// estimate while running: overlap resolution may later trim it).
	Coverage float64 `json:"coverage"`
	// Updated is when this snapshot was reported.
	Updated time.Time `json:"updated,omitzero"`
}

// Snapshot is the externally visible record of one job. It is a value
// copy: readers never share memory with the scheduler.
type Snapshot struct {
	// ID is the scheduler-assigned job identifier ("job-000001", ...).
	ID string `json:"id"`
	// Key is the canonical spec key (the same string the serve LRU and
	// disk store use), the unit of deduplication.
	Key string `json:"key"`
	// Spec is the submitter's opaque job description (serve stores the
	// normalized GenerateSpec as JSON) so listings and restarts can show
	// or resubmit what was asked for.
	Spec json.RawMessage `json:"spec,omitempty"`
	// Priority orders the queue: higher runs first, FIFO within a level.
	Priority int `json:"priority,omitempty"`
	// Seq is the submission sequence number (FIFO tiebreak, stable IDs).
	Seq int64 `json:"seq"`

	State    State    `json:"state"`
	Progress Progress `json:"progress"`
	// Error holds the failure or cancellation reason for terminal states.
	Error string `json:"error,omitempty"`

	Created  time.Time `json:"created"`
	Started  time.Time `json:"started,omitzero"`
	Finished time.Time `json:"finished,omitzero"`
}

// RunFunc performs a job's work. It must honor ctx — the generation stack
// checks it between annealing moves — and may call report (safe from any
// goroutine) to publish progress. Returning ctx's error marks the job
// cancelled; any other non-nil error marks it failed.
type RunFunc func(ctx context.Context, report func(Progress)) error

// Request describes one submission.
type Request struct {
	// Key is the canonical spec key; required. At most one non-terminal
	// job exists per key (Submit dedupes onto it).
	Key string
	// Spec is recorded verbatim on the job (optional).
	Spec json.RawMessage
	// Priority orders the queue; higher first, FIFO within a level.
	Priority int
	// Run performs the work; required.
	Run RunFunc
	// Done, when non-nil, is called exactly once after a job that ran
	// reaches its terminal state — after the scheduler has finished its
	// own bookkeeping (in particular, after the key has left the active
	// set, so a concurrent resubmission of the key starts a fresh job
	// rather than deduping onto this finished one). Called without
	// scheduler locks held; submitters publish their results here, not
	// inside Run.
	Done func(snap Snapshot)
	// Abandon, when non-nil, is called exactly once — instead of Run and
	// Done, and never concurrently with them — if the job is cancelled
	// while still queued via Cancel (CancelQueuedSilent skips it: there
	// the caller takes over notifying its waiters). It lets the submitter
	// release waiters that would otherwise block on a run that will never
	// happen. Called without scheduler locks held.
	Abandon func(err error)
	// Trace, when non-nil, receives a job_run span covering the Run
	// invocation, parented under TraceParent (0 = the trace root) — the
	// originating request's trace accounts for queue-side anneal time.
	// Dedup-joined submitters do not get a span: the job belongs to the
	// trace that submitted it. The reference is dropped as soon as the job
	// reaches a terminal state (or is abandoned), so a retained trace
	// never pins scheduler memory.
	Trace       *obs.Trace
	TraceParent obs.SpanID
}

// Config tunes a Scheduler.
type Config struct {
	// Workers is the worker-pool size — the bound on concurrent
	// generations. Default 2.
	Workers int
	// Dir, when non-empty, enables crash-safe job-state persistence in
	// that directory (created if needed). Empty keeps state in memory.
	Dir string
	// KeepFinished bounds retained terminal job records; the oldest are
	// pruned first (active jobs are never pruned). Default 256.
	KeepFinished int
	// Logf, when non-nil, receives operational log lines (persistence
	// failures). Nil discards them.
	Logf func(format string, args ...any)
}

func (cfg Config) withDefaults() Config {
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.KeepFinished <= 0 {
		cfg.KeepFinished = 256
	}
	return cfg
}

// ErrClosed is returned by Submit and RecordDone after Close.
var ErrClosed = errors.New("jobs: scheduler closed")

// ErrNotFound is returned for unknown job IDs.
var ErrNotFound = errors.New("jobs: job not found")

// ErrCancelled is the cause recorded on jobs cancelled via Cancel or
// CancelQueued, and the error Abandon receives.
var ErrCancelled = errors.New("jobs: cancelled")

// stateFileName is the persisted queue state inside Config.Dir.
const stateFileName = "jobs.json"

// job is the scheduler's internal record.
type job struct {
	snap    Snapshot
	run     RunFunc
	onDone  func(Snapshot)
	abandon func(error)
	// trace/traceParent carry the submitting request's trace so the worker
	// can record a job_run span; cleared with run at every terminal edge.
	trace       *obs.Trace
	traceParent obs.SpanID
	// cancel is non-nil exactly while the job runs.
	cancel context.CancelFunc
	// heapIndex is the job's position in the pending heap, -1 off-heap.
	heapIndex int
	// done closes when the job reaches a terminal state.
	done chan struct{}
}

// Scheduler is the asynchronous generation job scheduler. Safe for
// concurrent use.
type Scheduler struct {
	cfg Config

	// baseCtx parents every job context; baseCancel fires on Close so a
	// closing scheduler stops in-flight annealing cooperatively.
	baseCtx    context.Context
	baseCancel context.CancelFunc

	mu     sync.Mutex
	cond   *sync.Cond // signalled when the queue grows or the scheduler closes
	jobs   map[string]*job
	active map[string]*job // queued or running, by key (dedup target)
	// lastDone tracks the most recent successful job per key so
	// RecordDone is idempotent across cache/store hits.
	lastDone map[string]*job
	queue    jobHeap
	seq      int64
	closed   bool
	// interrupted holds jobs loaded from disk in a non-terminal state —
	// work a previous process accepted but never finished.
	interrupted []Snapshot

	wg sync.WaitGroup

	// writeMu serializes state-file rewrites (see store.Dir for the same
	// pattern): the snapshot is taken after acquiring it, so the last
	// write always carries every earlier transition.
	writeMu sync.Mutex

	// tot holds the monotonic lifetime counters behind Totals.
	tot totals
}

// New starts a scheduler with cfg.Workers workers. With cfg.Dir set it
// loads the persisted state first: terminal jobs are kept for listing,
// non-terminal ones are marked failed ("interrupted by restart") and
// surfaced through Interrupted for resubmission.
func New(cfg Config) (*Scheduler, error) {
	cfg = cfg.withDefaults()
	s := &Scheduler{
		cfg:      cfg,
		jobs:     map[string]*job{},
		active:   map[string]*job{},
		lastDone: map[string]*job{},
	}
	s.cond = sync.NewCond(&s.mu)
	s.baseCtx, s.baseCancel = context.WithCancel(context.Background())
	if cfg.Dir != "" {
		if err := s.load(); err != nil {
			return nil, err
		}
	}
	for i := 0; i < cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	return s, nil
}

// persistedState is the jobs.json schema.
type persistedState struct {
	Version int        `json:"version"`
	Seq     int64      `json:"seq"`
	Jobs    []Snapshot `json:"jobs"`
}

// load reads Config.Dir's state file into the scheduler.
func (s *Scheduler) load() error {
	if err := os.MkdirAll(s.cfg.Dir, 0o755); err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	data, err := os.ReadFile(filepath.Join(s.cfg.Dir, stateFileName))
	if errors.Is(err, fs.ErrNotExist) {
		return nil
	}
	if err != nil {
		return fmt.Errorf("jobs: %w", err)
	}
	var st persistedState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("jobs: corrupt state file in %s: %w", s.cfg.Dir, err)
	}
	s.seq = st.Seq
	for _, snap := range st.Jobs {
		if snap.ID == "" || snap.Key == "" {
			continue // malformed row
		}
		// Defensive: never reissue an ID from a state file whose seq
		// counter lags its own rows.
		s.seq = max(s.seq, snap.Seq)
		if !snap.State.Terminal() {
			// Accepted by a previous process and never finished. Record the
			// interruption honestly; the caller decides whether to resubmit
			// (the spec is preserved for exactly that).
			s.interrupted = append(s.interrupted, snap)
			snap.State = StateFailed
			snap.Error = "interrupted by daemon restart"
			if snap.Finished.IsZero() {
				snap.Finished = time.Now().UTC()
			}
		}
		j := &job{snap: snap, heapIndex: -1, done: make(chan struct{})}
		close(j.done)
		s.jobs[snap.ID] = j
		if snap.State == StateDone {
			if prev, ok := s.lastDone[snap.Key]; !ok || prev.snap.Seq < snap.Seq {
				s.lastDone[snap.Key] = j
			}
		}
	}
	s.pruneLocked()
	return nil
}

// Interrupted returns the jobs that a previous process accepted but never
// finished (loaded from the state file in a queued or running state). They
// are listed as failed; their Spec lets the caller resubmit them.
func (s *Scheduler) Interrupted() []Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Snapshot, len(s.interrupted))
	copy(out, s.interrupted)
	return out
}

// Submit enqueues req and returns the job's snapshot. If a queued or
// running job already exists for req.Key, that job's snapshot is returned
// with dedup=true and nothing is enqueued — concurrent submitters share
// one generation, mirroring the serving layer's cache dedup.
func (s *Scheduler) Submit(req Request) (snap Snapshot, dedup bool, err error) {
	if req.Key == "" {
		return Snapshot{}, false, fmt.Errorf("jobs: empty key")
	}
	if req.Run == nil {
		return Snapshot{}, false, fmt.Errorf("jobs: nil run function")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Snapshot{}, false, ErrClosed
	}
	if j, ok := s.active[req.Key]; ok {
		snap = j.snap
		s.mu.Unlock()
		s.tot.deduped.Add(1)
		return snap, true, nil
	}
	j := s.newJobLocked(req.Key, req.Spec, req.Priority)
	j.run = req.Run
	j.onDone = req.Done
	j.abandon = req.Abandon
	j.trace = req.Trace
	j.traceParent = req.TraceParent
	j.snap.State = StateQueued
	s.active[req.Key] = j
	heap.Push(&s.queue, j)
	s.cond.Signal()
	snap = j.snap
	s.mu.Unlock()
	s.tot.submitted.Add(1)
	s.saveState()
	return snap, false, nil
}

// RecordDone ensures a completed job record exists for key — used when a
// submission was satisfied without generation (memory cache or disk store
// hit), so the job history still answers "when did this structure last
// materialize". If the newest record for key is already done, it is
// returned unchanged; otherwise a record that was born done is created.
func (s *Scheduler) RecordDone(key string, spec json.RawMessage, prog Progress) (Snapshot, error) {
	if key == "" {
		return Snapshot{}, fmt.Errorf("jobs: empty key")
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return Snapshot{}, ErrClosed
	}
	if j, ok := s.lastDone[key]; ok {
		snap := j.snap
		s.mu.Unlock()
		return snap, nil
	}
	j := s.newJobLocked(key, spec, 0)
	now := time.Now().UTC()
	j.snap.State = StateDone
	j.snap.Started, j.snap.Finished = now, now
	j.snap.Progress = prog
	close(j.done)
	s.lastDone[key] = j
	s.pruneLocked()
	snap := j.snap
	s.mu.Unlock()
	s.tot.recordedDone.Add(1)
	s.saveState()
	return snap, nil
}

// newJobLocked allocates and registers a job record. Callers must hold
// s.mu and set the state fields before releasing it.
func (s *Scheduler) newJobLocked(key string, spec json.RawMessage, priority int) *job {
	s.seq++
	j := &job{
		snap: Snapshot{
			ID:       fmt.Sprintf("job-%06d", s.seq),
			Key:      key,
			Spec:     append(json.RawMessage(nil), spec...),
			Priority: priority,
			Seq:      s.seq,
			Created:  time.Now().UTC(),
		},
		heapIndex: -1,
		done:      make(chan struct{}),
	}
	s.jobs[j.snap.ID] = j
	return j
}

// Get returns the snapshot for id.
func (s *Scheduler) Get(id string) (Snapshot, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	if !ok {
		return Snapshot{}, false
	}
	return j.snap, true
}

// List returns every known job, newest submission first.
func (s *Scheduler) List() []Snapshot {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]Snapshot, 0, len(s.jobs))
	for _, j := range s.jobs {
		out = append(out, j.snap)
	}
	sort.Slice(out, func(i, k int) bool { return out[i].Seq > out[k].Seq })
	return out
}

// Cancel cancels the job: a queued job is removed from the queue and will
// never run (its Abandon hook fires); a running job has its context
// cancelled, which the annealing stack observes within one proposal —
// Cancel does not wait for the worker to notice (use Wait). Cancelling a
// terminal job is a no-op that returns its snapshot.
func (s *Scheduler) Cancel(id string) (Snapshot, error) {
	return s.cancel(id, false, false)
}

// CancelQueued cancels the job only if it has not started running. It
// exists for submitters whose implicit path may drop queued work while a
// run that already holds a worker is left to finish (so the result still
// lands in a cache). Returns dropped=true only when the queued job was
// cancelled by this call. The job's Abandon hook fires as with Cancel.
func (s *Scheduler) CancelQueued(id string) (dropped bool) {
	snap, err := s.cancel(id, true, false)
	return err == nil && snap.State == StateCancelled
}

// CancelQueuedSilent is CancelQueued without the Abandon callback: on
// dropped=true the caller has taken over notifying whoever waits on the
// job. Because no submitter code runs inside it, it is safe to call while
// holding submitter-side locks — the serving layer uses exactly that to
// make its sole-waiter disconnect check atomic with its cache state.
func (s *Scheduler) CancelQueuedSilent(id string) (dropped bool) {
	snap, err := s.cancel(id, true, true)
	return err == nil && snap.State == StateCancelled
}

func (s *Scheduler) cancel(id string, onlyQueued, silent bool) (Snapshot, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	if !ok {
		s.mu.Unlock()
		return Snapshot{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	switch j.snap.State {
	case StateQueued:
		heap.Remove(&s.queue, j.heapIndex)
		delete(s.active, j.snap.Key)
		j.snap.State = StateCancelled
		j.snap.Error = "cancelled while queued"
		j.snap.Finished = time.Now().UTC()
		abandon := j.abandon
		j.run, j.onDone, j.abandon = nil, nil, nil
		j.trace, j.traceParent = nil, 0
		close(j.done)
		s.pruneLocked()
		snap := j.snap
		s.mu.Unlock()
		s.tot.cancelled.Add(1)
		if abandon != nil && !silent {
			abandon(fmt.Errorf("%w while queued", ErrCancelled))
		}
		s.saveState()
		return snap, nil
	case StateRunning:
		if onlyQueued {
			snap := j.snap
			s.mu.Unlock()
			return snap, nil
		}
		// The worker owns the terminal transition; firing the context is
		// all a cancel needs to do. Idempotent: a second Cancel finds the
		// state still running and fires the (spent) context again.
		cancel := j.cancel
		snap := j.snap
		s.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return snap, nil
	default:
		snap := j.snap
		s.mu.Unlock()
		return snap, nil
	}
}

// Wait blocks until the job reaches a terminal state or ctx ends, and
// returns the job's snapshot at that moment.
func (s *Scheduler) Wait(ctx context.Context, id string) (Snapshot, error) {
	s.mu.Lock()
	j, ok := s.jobs[id]
	s.mu.Unlock()
	if !ok {
		return Snapshot{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	select {
	case <-j.done:
	case <-ctx.Done():
		return Snapshot{}, ctx.Err()
	}
	s.mu.Lock()
	snap := j.snap
	s.mu.Unlock()
	return snap, nil
}

// Stats summarizes the scheduler for health endpoints.
type Stats struct {
	Workers   int `json:"workers"`
	Queued    int `json:"queued"`
	Running   int `json:"running"`
	Done      int `json:"done"`
	Failed    int `json:"failed"`
	Cancelled int `json:"cancelled"`
}

// Stats returns current queue counts.
func (s *Scheduler) Stats() Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	st := Stats{Workers: s.cfg.Workers}
	for _, j := range s.jobs {
		switch j.snap.State {
		case StateQueued:
			st.Queued++
		case StateRunning:
			st.Running++
		case StateDone:
			st.Done++
		case StateFailed:
			st.Failed++
		case StateCancelled:
			st.Cancelled++
		}
	}
	return st
}

// Close stops the scheduler: the queue stops accepting work, the state
// file is written with queued and running jobs still non-terminal (so a
// restart sees them as interrupted and can resubmit), every running job's
// context is cancelled — stopping in-flight annealing within one proposal
// — queued jobs' Abandon hooks fire, and Close returns once all workers
// have exited. Idempotent.
func (s *Scheduler) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		s.wg.Wait()
		return
	}
	s.closed = true
	// Persist before cancelling: the on-disk state deliberately records
	// in-flight work as still queued/running, exactly like a crash would,
	// so clean shutdown and crash share one recovery path.
	state := s.snapshotStateLocked()
	var abandons []func(error)
	for _, j := range s.jobs {
		switch j.snap.State {
		case StateQueued:
			if j.heapIndex >= 0 {
				heap.Remove(&s.queue, j.heapIndex)
			}
			delete(s.active, j.snap.Key)
			j.snap.State = StateCancelled
			j.snap.Error = "scheduler shutting down"
			j.snap.Finished = time.Now().UTC()
			s.tot.cancelled.Add(1)
			if j.abandon != nil {
				abandons = append(abandons, j.abandon)
			}
			j.run, j.onDone, j.abandon = nil, nil, nil
			j.trace, j.traceParent = nil, 0
			close(j.done)
		case StateRunning:
			if j.cancel != nil {
				j.cancel()
			}
		}
	}
	s.cond.Broadcast()
	s.mu.Unlock()

	s.writeState(state)
	for _, ab := range abandons {
		ab(fmt.Errorf("%w: scheduler shutting down", ErrCancelled))
	}
	s.baseCancel()
	s.wg.Wait()
}

// worker drains the queue until the scheduler closes.
func (s *Scheduler) worker() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		for !s.closed && s.queue.Len() == 0 {
			s.cond.Wait()
		}
		if s.closed {
			s.mu.Unlock()
			return
		}
		j := heap.Pop(&s.queue).(*job)
		ctx, cancel := context.WithCancel(s.baseCtx)
		j.cancel = cancel
		j.snap.State = StateRunning
		j.snap.Started = time.Now().UTC()
		trace, traceParent, key := j.trace, j.traceParent, j.snap.Key
		s.mu.Unlock()
		s.tot.started.Add(1)
		s.saveState()

		// Record the run under the submitter's trace: the anneal time a
		// request spends waiting on this job lands in its span tree even
		// when the work runs on a worker goroutine (or, via generate-on-
		// owner, on another node). StartSpanUnder is nil-safe.
		span := trace.StartSpanUnder(traceParent, obs.StageJobRun)
		span.SetKey(key)
		err := s.invoke(ctx, j)
		span.End()
		wasCancelled := ctx.Err() != nil // read before the releasing cancel below
		cancel()

		s.mu.Lock()
		j.cancel = nil
		j.run, j.abandon = nil, nil
		j.trace, j.traceParent = nil, 0
		onDone := j.onDone
		j.onDone = nil
		j.snap.Finished = time.Now().UTC()
		switch {
		case err == nil:
			j.snap.State = StateDone
			s.lastDone[j.snap.Key] = j
		case wasCancelled:
			// The context ended (Cancel or Close): however the run function
			// dressed the error, this was a cancellation, not a fault.
			j.snap.State = StateCancelled
			j.snap.Error = err.Error()
		default:
			j.snap.State = StateFailed
			j.snap.Error = err.Error()
		}
		delete(s.active, j.snap.Key)
		close(j.done)
		s.pruneLocked()
		closed := s.closed
		snap := j.snap
		s.mu.Unlock()
		switch snap.State {
		case StateDone:
			s.tot.done.Add(1)
		case StateFailed:
			s.tot.failed.Add(1)
		case StateCancelled:
			s.tot.cancelled.Add(1)
		}
		if !closed {
			s.saveState()
		}
		// Done fires only after the key has left the active set, so a
		// submitter reacting to it (dropping a failed cache entry, say)
		// can never race a resubmission into deduping onto this dead job.
		if onDone != nil {
			onDone(snap)
		}
	}
}

// invoke runs a job's function with panic containment: a panicking
// generator fails its own job, never the worker.
func (s *Scheduler) invoke(ctx context.Context, j *job) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("jobs: run panic: %v", r)
		}
	}()
	report := func(p Progress) {
		if p.Updated.IsZero() {
			p.Updated = time.Now().UTC()
		}
		s.mu.Lock()
		if j.snap.State == StateRunning {
			j.snap.Progress = p
		}
		s.mu.Unlock()
	}
	return j.run(ctx, report)
}

// pruneLocked drops the oldest terminal jobs beyond KeepFinished. Callers
// must hold s.mu.
func (s *Scheduler) pruneLocked() {
	finished := make([]*job, 0, len(s.jobs))
	for _, j := range s.jobs {
		if j.snap.State.Terminal() {
			finished = append(finished, j)
		}
	}
	if len(finished) <= s.cfg.KeepFinished {
		return
	}
	sort.Slice(finished, func(i, k int) bool { return finished[i].snap.Seq < finished[k].snap.Seq })
	for _, j := range finished[:len(finished)-s.cfg.KeepFinished] {
		delete(s.jobs, j.snap.ID)
		if s.lastDone[j.snap.Key] == j {
			delete(s.lastDone, j.snap.Key)
		}
	}
}

// snapshotStateLocked builds the persistable state. Callers must hold s.mu.
func (s *Scheduler) snapshotStateLocked() *persistedState {
	if s.cfg.Dir == "" {
		return nil
	}
	st := &persistedState{Version: 1, Seq: s.seq, Jobs: make([]Snapshot, 0, len(s.jobs))}
	for _, j := range s.jobs {
		st.Jobs = append(st.Jobs, j.snap)
	}
	sort.Slice(st.Jobs, func(i, k int) bool { return st.Jobs[i].Seq < st.Jobs[k].Seq })
	return st
}

// saveState persists the current job table (when Dir is configured).
// Writers are serialized by writeMu and snapshot the table after acquiring
// it, so the last state file written reflects every earlier transition.
func (s *Scheduler) saveState() {
	if s.cfg.Dir == "" {
		return
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.Lock()
	st := s.snapshotStateLocked()
	s.mu.Unlock()
	s.writeStateLocked(st)
}

// writeState writes a pre-built snapshot (Close's crash-like view).
func (s *Scheduler) writeState(st *persistedState) {
	if st == nil {
		return
	}
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.writeStateLocked(st)
}

// writeStateLocked writes the state file atomically. Callers must hold
// writeMu.
func (s *Scheduler) writeStateLocked(st *persistedState) {
	_, err := store.WriteFileAtomic(filepath.Join(s.cfg.Dir, stateFileName), func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(st)
	})
	if err != nil && s.cfg.Logf != nil {
		s.cfg.Logf("jobs: persisting state: %v", err)
	}
}

// jobHeap is the pending queue: max-heap on priority, FIFO (min seq)
// within a priority level.
type jobHeap []*job

func (h jobHeap) Len() int { return len(h) }
func (h jobHeap) Less(i, k int) bool {
	if h[i].snap.Priority != h[k].snap.Priority {
		return h[i].snap.Priority > h[k].snap.Priority
	}
	return h[i].snap.Seq < h[k].snap.Seq
}
func (h jobHeap) Swap(i, k int) {
	h[i], h[k] = h[k], h[i]
	h[i].heapIndex = i
	h[k].heapIndex = k
}
func (h *jobHeap) Push(x any) {
	j := x.(*job)
	j.heapIndex = len(*h)
	*h = append(*h, j)
}
func (h *jobHeap) Pop() any {
	old := *h
	n := len(old)
	j := old[n-1]
	old[n-1] = nil
	j.heapIndex = -1
	*h = old[:n-1]
	return j
}
