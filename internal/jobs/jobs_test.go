package jobs

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// newTestScheduler starts a scheduler closed at test end.
func newTestScheduler(t *testing.T, cfg Config) *Scheduler {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(s.Close)
	return s
}

// blockingRun returns a run function that signals entry, then blocks until
// its context ends or release closes.
func blockingRun(entered chan<- struct{}, release <-chan struct{}) RunFunc {
	return func(ctx context.Context, report func(Progress)) error {
		if entered != nil {
			entered <- struct{}{}
		}
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-release:
			return nil
		}
	}
}

func TestSubmitRunsToDone(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1})
	var ran atomic.Int32
	snap, dedup, err := s.Submit(Request{
		Key:  "k1",
		Spec: json.RawMessage(`{"circuit":"circ01"}`),
		Run: func(ctx context.Context, report func(Progress)) error {
			ran.Add(1)
			report(Progress{Iteration: 7, Placements: 3, Coverage: 0.25})
			return nil
		},
	})
	if err != nil || dedup {
		t.Fatalf("Submit: err=%v dedup=%v", err, dedup)
	}
	if snap.ID == "" || snap.State != StateQueued && snap.State != StateRunning {
		t.Fatalf("bad submit snapshot: %+v", snap)
	}
	final, err := s.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateDone || ran.Load() != 1 {
		t.Fatalf("final state %s after %d runs, want done after 1", final.State, ran.Load())
	}
	if final.Progress.Iteration != 7 || final.Progress.Placements != 3 {
		t.Errorf("progress not retained: %+v", final.Progress)
	}
	if final.Started.IsZero() || final.Finished.IsZero() {
		t.Errorf("timestamps missing: %+v", final)
	}
}

func TestSubmitDedupsActiveKey(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	a, dedup, err := s.Submit(Request{Key: "k", Run: blockingRun(entered, release)})
	if err != nil || dedup {
		t.Fatalf("first submit: err=%v dedup=%v", err, dedup)
	}
	<-entered // job is running
	b, dedup, err := s.Submit(Request{Key: "k", Run: func(context.Context, func(Progress)) error {
		t.Error("deduped submission ran")
		return nil
	}})
	if err != nil || !dedup {
		t.Fatalf("second submit: err=%v dedup=%v", err, dedup)
	}
	if b.ID != a.ID {
		t.Errorf("dedup returned a different job: %s vs %s", b.ID, a.ID)
	}
	close(release)
	if _, err := s.Wait(context.Background(), a.ID); err != nil {
		t.Fatal(err)
	}
	// A terminal job no longer dedups: the key can be resubmitted.
	c, dedup, err := s.Submit(Request{Key: "k", Run: func(context.Context, func(Progress)) error { return nil }})
	if err != nil || dedup {
		t.Fatalf("resubmit after done: err=%v dedup=%v", err, dedup)
	}
	if c.ID == a.ID {
		t.Error("resubmission reused the finished job")
	}
}

func TestPriorityOrderAndFIFO(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	first, _, err := s.Submit(Request{Key: "hold", Run: blockingRun(entered, release)})
	if err != nil {
		t.Fatal(err)
	}
	<-entered // worker busy; everything below queues

	var mu sync.Mutex
	var order []string
	mkRun := func(name string) RunFunc {
		return func(context.Context, func(Progress)) error {
			mu.Lock()
			order = append(order, name)
			mu.Unlock()
			return nil
		}
	}
	var last Snapshot
	for _, sub := range []struct {
		name string
		prio int
	}{
		{"low-a", 0}, {"low-b", 0}, {"high-a", 5}, {"high-b", 5},
	} {
		snap, _, err := s.Submit(Request{Key: sub.name, Priority: sub.prio, Run: mkRun(sub.name)})
		if err != nil {
			t.Fatal(err)
		}
		last = snap
	}
	close(release)
	if _, err := s.Wait(context.Background(), first.ID); err != nil {
		t.Fatal(err)
	}
	// Drain: wait for the lowest-priority latest submission, which the
	// heap order guarantees is scheduled last.
	deadline := time.After(30 * time.Second)
	for {
		snap, ok := s.Get(last.ID)
		if !ok {
			t.Fatal("job lost")
		}
		if snap.State.Terminal() {
			break
		}
		select {
		case <-deadline:
			t.Fatal("queue never drained")
		case <-time.After(5 * time.Millisecond):
		}
	}
	mu.Lock()
	defer mu.Unlock()
	want := []string{"high-a", "high-b", "low-a", "low-b"}
	if fmt.Sprint(order) != fmt.Sprint(want) {
		t.Errorf("execution order %v, want %v (priority first, FIFO within)", order, want)
	}
}

func TestCancelQueuedNeverRuns(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	if _, _, err := s.Submit(Request{Key: "hold", Run: blockingRun(entered, release)}); err != nil {
		t.Fatal(err)
	}
	<-entered

	var abandoned atomic.Int32
	snap, _, err := s.Submit(Request{
		Key: "victim",
		Run: func(context.Context, func(Progress)) error {
			t.Error("cancelled queued job ran")
			return nil
		},
		Abandon: func(err error) {
			if !errors.Is(err, ErrCancelled) {
				t.Errorf("abandon error = %v, want ErrCancelled", err)
			}
			abandoned.Add(1)
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	got, err := s.Cancel(snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got.State != StateCancelled {
		t.Fatalf("state after cancel = %s, want cancelled", got.State)
	}
	if abandoned.Load() != 1 {
		t.Errorf("Abandon called %d times, want 1", abandoned.Load())
	}
	// Wait returns immediately for a cancelled-while-queued job.
	final, err := s.Wait(context.Background(), snap.ID)
	if err != nil || final.State != StateCancelled {
		t.Fatalf("Wait: %+v, %v", final, err)
	}
	// Cancelling again is a no-op.
	if again, err := s.Cancel(snap.ID); err != nil || again.State != StateCancelled {
		t.Fatalf("second cancel: %+v, %v", again, err)
	}
}

func TestCancelRunningStopsPromptly(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1})
	entered := make(chan struct{})
	snap, _, err := s.Submit(Request{Key: "r", Run: blockingRun(entered, nil)})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	if _, err := s.Cancel(snap.ID); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	final, err := s.Wait(ctx, snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", final.State)
	}
}

func TestCancelQueuedOnlySkipsRunning(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	snap, _, err := s.Submit(Request{Key: "r", Run: blockingRun(entered, release)})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	if s.CancelQueued(snap.ID) {
		t.Error("CancelQueued dropped a running job")
	}
	close(release)
	final, err := s.Wait(context.Background(), snap.ID)
	if err != nil || final.State != StateDone {
		t.Fatalf("running job not left to finish: %+v, %v", final, err)
	}
}

func TestFailedRunMarksFailed(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1})
	boom := errors.New("boom")
	snap, _, err := s.Submit(Request{Key: "f", Run: func(context.Context, func(Progress)) error { return boom }})
	if err != nil {
		t.Fatal(err)
	}
	final, err := s.Wait(context.Background(), snap.ID)
	if err != nil {
		t.Fatal(err)
	}
	if final.State != StateFailed || final.Error != "boom" {
		t.Fatalf("final = %+v, want failed/boom", final)
	}

	// A panicking run fails its job without killing the worker.
	snap, _, err = s.Submit(Request{Key: "p", Run: func(context.Context, func(Progress)) error { panic("eek") }})
	if err != nil {
		t.Fatal(err)
	}
	if final, err = s.Wait(context.Background(), snap.ID); err != nil || final.State != StateFailed {
		t.Fatalf("panic job: %+v, %v", final, err)
	}
	// Worker still alive: another job completes.
	snap, _, err = s.Submit(Request{Key: "after", Run: func(context.Context, func(Progress)) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	if final, err = s.Wait(context.Background(), snap.ID); err != nil || final.State != StateDone {
		t.Fatalf("post-panic job: %+v, %v", final, err)
	}
}

func TestRecordDoneIdempotent(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1})
	a, err := s.RecordDone("k", json.RawMessage(`{"circuit":"circ01"}`), Progress{Placements: 9})
	if err != nil {
		t.Fatal(err)
	}
	if a.State != StateDone || a.Progress.Placements != 9 {
		t.Fatalf("RecordDone snapshot: %+v", a)
	}
	b, err := s.RecordDone("k", nil, Progress{})
	if err != nil {
		t.Fatal(err)
	}
	if b.ID != a.ID {
		t.Errorf("second RecordDone minted a new job: %s vs %s", b.ID, a.ID)
	}
}

func TestCloseCancelsRunningAndAbandonsQueued(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	entered := make(chan struct{})
	running, _, err := s.Submit(Request{Key: "running", Run: blockingRun(entered, nil)})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	var abandoned atomic.Int32
	queued, _, err := s.Submit(Request{
		Key:     "queued",
		Run:     func(context.Context, func(Progress)) error { t.Error("queued job ran during close"); return nil },
		Abandon: func(error) { abandoned.Add(1) },
	})
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { s.Close(); close(done) }()
	select {
	case <-done:
	case <-time.After(30 * time.Second):
		t.Fatal("Close did not return (running job not cancelled?)")
	}
	if snap, _ := s.Get(running.ID); snap.State != StateCancelled {
		t.Errorf("running job state after close = %s, want cancelled", snap.State)
	}
	if snap, _ := s.Get(queued.ID); snap.State != StateCancelled {
		t.Errorf("queued job state after close = %s, want cancelled", snap.State)
	}
	if abandoned.Load() != 1 {
		t.Errorf("Abandon called %d times, want 1", abandoned.Load())
	}
	if _, _, err := s.Submit(Request{Key: "late", Run: func(context.Context, func(Progress)) error { return nil }}); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after close: %v, want ErrClosed", err)
	}
}

func TestPersistenceAcrossRestart(t *testing.T) {
	dir := t.TempDir()
	spec := json.RawMessage(`{"circuit":"circ01","seed":1}`)

	s1, err := New(Config{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	doneJob, _, err := s1.Submit(Request{Key: "done-key", Spec: spec,
		Run: func(ctx context.Context, report func(Progress)) error {
			report(Progress{Placements: 12, Coverage: 0.5})
			return nil
		}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Wait(context.Background(), doneJob.ID); err != nil {
		t.Fatal(err)
	}
	// Leave one job running and one queued at "crash" time.
	entered := make(chan struct{})
	runningJob, _, err := s1.Submit(Request{Key: "running-key", Spec: spec, Run: blockingRun(entered, nil)})
	if err != nil {
		t.Fatal(err)
	}
	<-entered
	queuedJob, _, err := s1.Submit(Request{Key: "queued-key", Spec: spec, Run: blockingRun(nil, nil)})
	if err != nil {
		t.Fatal(err)
	}
	s1.Close() // persists queued/running as non-terminal, crash-like

	s2, err := New(Config{Workers: 1, Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	snap, ok := s2.Get(doneJob.ID)
	if !ok || snap.State != StateDone {
		t.Fatalf("completed job not restored: %+v (ok=%v)", snap, ok)
	}
	if snap.Progress.Placements != 12 {
		t.Errorf("completed job progress lost: %+v", snap.Progress)
	}
	interrupted := s2.Interrupted()
	if len(interrupted) != 2 {
		t.Fatalf("interrupted = %d jobs, want 2 (queued + running)", len(interrupted))
	}
	for _, id := range []string{runningJob.ID, queuedJob.ID} {
		snap, ok := s2.Get(id)
		if !ok || snap.State != StateFailed {
			t.Errorf("interrupted job %s: %+v (ok=%v), want failed", id, snap, ok)
		}
		if string(snap.Spec) == "" {
			t.Errorf("interrupted job %s lost its spec", id)
		}
	}
	// New submissions must not collide with restored IDs.
	fresh, _, err := s2.Submit(Request{Key: "fresh", Run: func(context.Context, func(Progress)) error { return nil }})
	if err != nil {
		t.Fatal(err)
	}
	for _, id := range []string{doneJob.ID, runningJob.ID, queuedJob.ID} {
		if fresh.ID == id {
			t.Fatalf("fresh job reused ID %s", id)
		}
	}
}

func TestCorruptStateFileRejected(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, stateFileName), []byte("{nope"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := New(Config{Dir: dir}); err == nil {
		t.Fatal("corrupt state file accepted")
	}
}

func TestPruneKeepsRecentTerminal(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1, KeepFinished: 3})
	var ids []string
	for i := 0; i < 6; i++ {
		snap, _, err := s.Submit(Request{
			Key: fmt.Sprintf("k%d", i),
			Run: func(context.Context, func(Progress)) error { return nil },
		})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Wait(context.Background(), snap.ID); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, snap.ID)
	}
	if got := len(s.List()); got != 3 {
		t.Fatalf("retained %d jobs, want 3", got)
	}
	if _, ok := s.Get(ids[0]); ok {
		t.Error("oldest job survived pruning")
	}
	if _, ok := s.Get(ids[len(ids)-1]); !ok {
		t.Error("newest job was pruned")
	}
}

// TestConcurrentSubmitCancelList hammers the scheduler from many
// goroutines; run under -race this is the package's memory-safety gate.
func TestConcurrentSubmitCancelList(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 4})
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				snap, _, err := s.Submit(Request{
					Key: fmt.Sprintf("k-%d-%d", g, i),
					Run: func(ctx context.Context, report func(Progress)) error {
						report(Progress{Iteration: i})
						return nil
					},
				})
				if err != nil {
					t.Error(err)
					return
				}
				if i%3 == 0 {
					s.Cancel(snap.ID)
				} else if _, err := s.Wait(context.Background(), snap.ID); err != nil {
					t.Error(err)
					return
				}
			}
		}(g)
	}
	for g := 0; g < 2; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				s.List()
				s.Stats()
			}
		}()
	}
	wg.Wait()
	st := s.Stats()
	if st.Queued != 0 || st.Running != 0 {
		t.Errorf("work left after drain: %+v", st)
	}
}

// TestCancelQueuedSilentSkipsAbandon: the silent variant drops the job
// without running submitter callbacks (the caller notifies its waiters).
func TestCancelQueuedSilentSkipsAbandon(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1})
	entered := make(chan struct{})
	release := make(chan struct{})
	defer close(release)
	if _, _, err := s.Submit(Request{Key: "hold", Run: blockingRun(entered, release)}); err != nil {
		t.Fatal(err)
	}
	<-entered
	snap, _, err := s.Submit(Request{
		Key:     "victim",
		Run:     func(context.Context, func(Progress)) error { t.Error("silently cancelled job ran"); return nil },
		Done:    func(Snapshot) { t.Error("Done fired for a job that never ran") },
		Abandon: func(error) { t.Error("Abandon fired on the silent path") },
	})
	if err != nil {
		t.Fatal(err)
	}
	if !s.CancelQueuedSilent(snap.ID) {
		t.Fatal("silent cancel of a queued job failed")
	}
	if got, _ := s.Get(snap.ID); got.State != StateCancelled {
		t.Fatalf("state = %s, want cancelled", got.State)
	}
	// Running jobs are not silently droppable either.
	if s.CancelQueuedSilent("job-000001") {
		t.Error("silent cancel dropped a running job")
	}
}

// TestDoneFiresAfterActiveRetired: inside Done, the job's key must already
// have left the active set, so a resubmission starts fresh instead of
// deduping onto the finished job.
func TestDoneFiresAfterActiveRetired(t *testing.T) {
	s := newTestScheduler(t, Config{Workers: 1})
	dedupInDone := make(chan bool, 1)
	snap, _, err := s.Submit(Request{
		Key: "k",
		Run: func(context.Context, func(Progress)) error { return errors.New("boom") },
		Done: func(Snapshot) {
			_, dedup, err := s.Submit(Request{
				Key: "k",
				Run: func(context.Context, func(Progress)) error { return nil },
			})
			if err != nil {
				t.Error(err)
			}
			dedupInDone <- dedup
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Wait(context.Background(), snap.ID); err != nil {
		t.Fatal(err)
	}
	select {
	case dedup := <-dedupInDone:
		if dedup {
			t.Error("Submit inside Done deduped onto the just-finished job")
		}
	case <-time.After(30 * time.Second):
		t.Fatal("Done never fired")
	}
}
