package jobs

import (
	"strconv"
	"sync/atomic"
	"time"
)

// totals are the scheduler's monotonic lifetime counters, incremented at
// each lifecycle transition. They exist alongside Stats (which counts the
// *retained* job table and therefore shrinks when pruneLocked drops old
// terminal records) because monitoring needs counters that never go
// backwards.
type totals struct {
	submitted    atomic.Int64
	deduped      atomic.Int64
	recordedDone atomic.Int64
	started      atomic.Int64
	done         atomic.Int64
	failed       atomic.Int64
	cancelled    atomic.Int64
}

// Totals is the exported snapshot of the lifetime counters.
type Totals struct {
	// Submitted counts jobs accepted into the queue (dedup hits excluded).
	Submitted int64
	// Deduped counts Submit calls that landed on an already-active key.
	Deduped int64
	// RecordedDone counts born-done records from RecordDone (cache/store
	// hits that never queued).
	RecordedDone int64
	// Started counts jobs a worker picked up.
	Started int64
	// Done, Failed, Cancelled count terminal transitions of jobs that went
	// through the queue. Started == Done + Failed + Cancelled once all
	// running work finishes, except that jobs cancelled while still queued
	// count in Cancelled without ever counting in Started.
	Done      int64
	Failed    int64
	Cancelled int64
}

// Totals returns the lifetime counters. Unlike Stats, these are
// monotonic: pruning old job records never decreases them.
func (s *Scheduler) Totals() Totals {
	return Totals{
		Submitted:    s.tot.submitted.Load(),
		Deduped:      s.tot.deduped.Load(),
		RecordedDone: s.tot.recordedDone.Load(),
		Started:      s.tot.started.Load(),
		Done:         s.tot.done.Load(),
		Failed:       s.tot.failed.Load(),
		Cancelled:    s.tot.cancelled.Load(),
	}
}

// Metrics is a scrape-time snapshot of the scheduler's live state, shaped
// for gauge export: instantaneous depths and ages, not lifetime counts.
type Metrics struct {
	// QueueDepth maps priority (as a decimal string, ready for use as a
	// metric label) to the number of jobs queued at that priority.
	// Priorities come from the fixed set the submitter uses, so the label
	// cardinality is bounded by the caller's priority scheme.
	QueueDepth map[string]float64
	// Running is the number of jobs currently holding a worker.
	Running int
	// OldestQueuedAge is the age of the longest-queued job (zero when the
	// queue is empty) — the leading indicator of a saturated worker pool.
	OldestQueuedAge time.Duration
	// OldestRunningAge is the age (since start) of the longest-running job
	// (zero when idle) — the leading indicator of a stuck generation.
	OldestRunningAge time.Duration
}

// Metrics returns the live queue snapshot. It takes the scheduler lock
// briefly; intended for scrape-time gauge evaluation, not hot paths.
func (s *Scheduler) Metrics() Metrics {
	now := time.Now().UTC()
	m := Metrics{QueueDepth: map[string]float64{}}
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, j := range s.queue {
		m.QueueDepth[strconv.Itoa(j.snap.Priority)]++
		if age := now.Sub(j.snap.Created); age > m.OldestQueuedAge {
			m.OldestQueuedAge = age
		}
	}
	for _, j := range s.jobs {
		if j.snap.State == StateRunning {
			m.Running++
			if age := now.Sub(j.snap.Started); age > m.OldestRunningAge {
				m.OldestRunningAge = age
			}
		}
	}
	return m
}
