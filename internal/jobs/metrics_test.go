package jobs

import (
	"context"
	"testing"
	"time"
)

func TestTotalsAndMetrics(t *testing.T) {
	s, err := New(Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// One worker: park it on a blocking job so the next submissions queue.
	release := make(chan struct{})
	blockSnap, _, err := s.Submit(Request{Key: "block", Run: func(ctx context.Context, _ func(Progress)) error {
		<-release
		return nil
	}})
	if err != nil {
		t.Fatal(err)
	}
	waitRunning := func() {
		for i := 0; i < 1000; i++ {
			if m := s.Metrics(); m.Running == 1 {
				return
			}
			time.Sleep(time.Millisecond)
		}
		t.Fatal("job never started running")
	}
	waitRunning()

	noop := func(ctx context.Context, _ func(Progress)) error { return nil }
	q1, _, _ := s.Submit(Request{Key: "q1", Priority: 5, Run: noop})
	s.Submit(Request{Key: "q2", Run: noop})
	if _, dedup, _ := s.Submit(Request{Key: "q2", Run: noop}); !dedup {
		t.Fatal("resubmitted key must dedup")
	}
	s.RecordDone("hit", nil, Progress{})

	m := s.Metrics()
	if m.Running != 1 || m.QueueDepth["5"] != 1 || m.QueueDepth["0"] != 1 {
		t.Fatalf("metrics = %+v", m)
	}
	if m.OldestQueuedAge <= 0 || m.OldestRunningAge <= 0 {
		t.Fatalf("ages not positive: %+v", m)
	}

	if _, err := s.Cancel(q1.ID); err != nil {
		t.Fatal(err)
	}
	close(release)
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Wait(ctx, blockSnap.ID)
	// Drain q2 too.
	for i := 0; i < 1000; i++ {
		if tot := s.Totals(); tot.Done == 2 {
			break
		}
		time.Sleep(time.Millisecond)
	}

	tot := s.Totals()
	if tot.Submitted != 3 || tot.Deduped != 1 || tot.RecordedDone != 1 {
		t.Fatalf("totals = %+v", tot)
	}
	if tot.Done != 2 || tot.Cancelled != 1 || tot.Failed != 0 {
		t.Fatalf("terminal totals = %+v", tot)
	}
	// Started counts only jobs a worker picked up: q1 was cancelled while
	// queued and must not appear.
	if tot.Started != 2 {
		t.Fatalf("started = %d, want 2", tot.Started)
	}
	m = s.Metrics()
	if m.Running != 0 || len(m.QueueDepth) != 0 || m.OldestQueuedAge != 0 {
		t.Fatalf("drained metrics = %+v", m)
	}
}
