// Package obs is the daemon's dependency-free observability layer:
// atomic counters and gauges, labeled metric vectors, a concurrency-safe
// log-bucketed latency histogram, a registry that renders everything in
// Prometheus text exposition format, and a per-request stage trace
// carried on the request context.
//
// Design constraints, in order:
//
//  1. Allocation-free on the hot path. Observe/Add/Inc on every metric
//     type are a handful of atomic operations — no maps, no interface
//     boxing, no time formatting. The serving layer's covered-instantiate
//     path stays at 0 allocs/op with full instrumentation on (the
//     mps_request_instrumented micro-benchmark gates this in CI).
//  2. No dependencies beyond the standard library, like the rest of the
//     repo: the daemon must build and run anywhere Go does.
//  3. Bounded cardinality by construction. Vector labels are chosen by
//     the instrumenting code from fixed sets (route names, stage names,
//     status codes, the peer list) — never from request payloads. A
//     labeled child is created once and cached by the caller, so the
//     per-request path never touches the vector's map.
//
// Everything is safe for concurrent use.
package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Histogram is a log-bucketed latency histogram: 8 buckets per doubling
// from 1µs up, so any quantile is exact to within ~9% (2^(1/8)) — plenty
// for serving-latency percentiles — in a few KB of fixed memory. The
// design is promoted from the loadgen client harness; unlike its
// ancestor every field is atomic, so one Histogram can be shared by all
// request goroutines of a server. The zero value is ready to use.
//
// Concurrent Observe calls are individually atomic but not mutually
// ordered, so a racing reader can see a bucket increment before the
// matching count increment (or vice versa); totals converge as soon as
// writers quiesce. That read skew is at most the number of in-flight
// Observe calls — irrelevant for monitoring, which is the point of this
// type.
type Histogram struct {
	counts [numBuckets]atomic.Int64
	count  atomic.Int64
	sumNs  atomic.Int64
	maxNs  atomic.Int64
}

const (
	histBase           = time.Microsecond
	bucketsPerDoubling = 8
	// numBuckets spans 1µs to ~2^31µs ≈ 36min — far past any request an
	// HTTP client timeout would let live. Samples beyond the top bucket
	// are clamped into it (and Quantile clamps to the exact max, so an
	// outlier never reports as 36min).
	numBuckets = 31 * bucketsPerDoubling
)

func bucketIndex(d time.Duration) int {
	if d <= histBase {
		return 0
	}
	idx := int(math.Ceil(math.Log2(float64(d)/float64(histBase)) * bucketsPerDoubling))
	if idx >= numBuckets {
		idx = numBuckets - 1
	}
	return idx
}

func bucketUpper(idx int) time.Duration {
	return time.Duration(float64(histBase) * math.Pow(2, float64(idx)/bucketsPerDoubling))
}

// Observe records one latency sample. Negative durations clamp to zero
// (a clock step mid-request must not corrupt the distribution).
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	h.count.Add(1)
	h.sumNs.Add(int64(d))
	for {
		cur := h.maxNs.Load()
		if int64(d) <= cur || h.maxNs.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
	h.counts[bucketIndex(d)].Add(1)
}

// Count returns the number of samples.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the exact running sum of all samples.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sumNs.Load()) }

// Max returns the largest observed sample (exact, not bucketed).
func (h *Histogram) Max() time.Duration { return time.Duration(h.maxNs.Load()) }

// Mean returns the arithmetic mean (exact, from the running sum).
func (h *Histogram) Mean() time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return time.Duration(h.sumNs.Load() / n)
}

// Quantile returns an upper bound for the q-quantile (0 ≤ q ≤ 1): the
// upper edge of the bucket holding the rank-q sample, clamped to the
// exact max. Zero samples yield zero; q outside [0,1] clamps.
func (h *Histogram) Quantile(q float64) time.Duration {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(n)))
	if rank < 1 {
		rank = 1
	}
	max := time.Duration(h.maxNs.Load())
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		if cum >= rank {
			// The last bucket is an overflow catch-all whose edge is below
			// its samples; and any bucket's edge can exceed the exact max.
			// Both clamp to max.
			if u := bucketUpper(i); i < numBuckets-1 && u < max {
				return u
			}
			return max
		}
	}
	return max
}

// Merge folds o's samples into h. The two histograms share one fixed
// bucket layout by construction, so only the max needs reconciling: the
// merged max is the larger of the two (never the sum), matching what a
// single histogram observing both streams would have recorded.
func (h *Histogram) Merge(o *Histogram) {
	for i := range o.counts {
		if c := o.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(o.count.Load())
	h.sumNs.Add(o.sumNs.Load())
	om := o.maxNs.Load()
	for {
		cur := h.maxNs.Load()
		if om <= cur || h.maxNs.CompareAndSwap(cur, om) {
			break
		}
	}
}

// promBuckets returns the cumulative bucket counts at every doubling
// edge — 31 le values instead of 248 — for the Prometheus rendering.
// Full 8-per-doubling precision stays internal for Quantile; the
// exposition downsamples to keep per-series cardinality sane.
func (h *Histogram) promBuckets() (les []time.Duration, cum []int64) {
	les = make([]time.Duration, 0, numBuckets/bucketsPerDoubling+1)
	cum = make([]int64, 0, numBuckets/bucketsPerDoubling+1)
	var run int64
	for i := range h.counts {
		run += h.counts[i].Load()
		// Bucket i holds samples ≤ base·2^(i/8), so every 8th index is a
		// doubling edge 2^k µs (i = 0 is the 1µs edge itself).
		if i%bucketsPerDoubling == 0 {
			les = append(les, bucketUpper(i))
			cum = append(cum, run)
		}
	}
	return les, cum
}
