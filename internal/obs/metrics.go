package obs

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing atomic counter.
type Counter struct{ v atomic.Int64 }

// Add increases the counter; negative deltas are ignored (a counter
// never goes down — use a Gauge for that).
func (c *Counter) Add(n int64) {
	if n > 0 {
		c.v.Add(n)
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// AddDuration accumulates a duration in nanoseconds — the storage form
// of duration counters (rendered as seconds; see DurationCounter).
func (c *Counter) AddDuration(d time.Duration) {
	if d > 0 {
		c.v.Add(int64(d))
	}
}

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct{ v atomic.Int64 }

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add moves the value by n (negative allowed).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// kind is the Prometheus metric type of a family.
type kind string

const (
	kindCounter   kind = "counter"
	kindGauge     kind = "gauge"
	kindHistogram kind = "histogram"
)

// child is one labeled series of a family.
type child struct {
	labelVals []string
	c         *Counter
	g         *Gauge
	h         *Histogram
}

// family is one named metric with its labeled children.
type family struct {
	name      string
	help      string
	kind      kind
	labelKeys []string
	// scale multiplies counter/gauge values at render time; duration
	// counters store nanoseconds and render seconds (scale 1e-9).
	scale float64

	mu       sync.Mutex
	children map[string]*child
	order    []string // creation order; sorted at render

	// fn, when non-nil, produces gauge values at scrape time instead of
	// reading stored children: key is the label value ("" when the family
	// is unlabeled). Scrape-time evaluation is what lets queue depths and
	// breaker states reflect the instant of the scrape with zero
	// bookkeeping on the state-changing paths.
	fn func() map[string]float64
}

// Registry holds a process's metric families and renders them in
// Prometheus text exposition format (version 0.0.4).
type Registry struct {
	mu   sync.Mutex
	fams map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// register creates (or fails on a conflicting re-registration of) a
// family. Metric names are programmer-chosen constants, so a collision
// is a bug worth failing loudly on.
func (r *Registry) register(name, help string, k kind, labelKeys []string, scale float64) *family {
	if name == "" {
		panic("obs: empty metric name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, ok := r.fams[name]; ok {
		panic(fmt.Sprintf("obs: metric %q registered twice", name))
	}
	f := &family{
		name:      name,
		help:      help,
		kind:      k,
		labelKeys: labelKeys,
		scale:     scale,
		children:  map[string]*child{},
	}
	r.fams[name] = f
	return f
}

// childKey joins label values into the family's map key. The separator
// cannot appear in rendered label values (it is escaped away), so two
// distinct value tuples never collide.
func childKey(vals []string) string { return strings.Join(vals, "\xff") }

// get returns (creating if needed) the family's child for the label
// values.
func (f *family) get(vals []string) *child {
	if len(vals) != len(f.labelKeys) {
		panic(fmt.Sprintf("obs: metric %q wants %d label values, got %d", f.name, len(f.labelKeys), len(vals)))
	}
	key := childKey(vals)
	f.mu.Lock()
	defer f.mu.Unlock()
	ch, ok := f.children[key]
	if !ok {
		ch = &child{labelVals: append([]string(nil), vals...)}
		switch f.kind {
		case kindCounter:
			ch.c = &Counter{}
		case kindGauge:
			ch.g = &Gauge{}
		case kindHistogram:
			ch.h = &Histogram{}
		}
		f.children[key] = ch
		f.order = append(f.order, key)
	}
	return ch
}

// Counter registers and returns an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, 1).get(nil).c
}

// DurationCounter registers a counter that accumulates nanoseconds
// (via AddDuration) and renders seconds — the Prometheus convention for
// time-sum series (name it *_seconds_total).
func (r *Registry) DurationCounter(name, help string) *Counter {
	return r.register(name, help, kindCounter, nil, 1e-9).get(nil).c
}

// Gauge registers and returns an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	return r.register(name, help, kindGauge, nil, 1).get(nil).g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindGauge, nil, 1)
	f.fn = func() map[string]float64 { return map[string]float64{"": fn()} }
}

// GaugeVecFunc registers a labeled gauge family whose full value set is
// computed at scrape time: fn returns label value → gauge value. Label
// values must come from a bounded set (peers, stages, priorities in the
// queue) — see the package cardinality rules.
func (r *Registry) GaugeVecFunc(name, help, labelKey string, fn func() map[string]float64) {
	f := r.register(name, help, kindGauge, []string{labelKey}, 1)
	f.fn = fn
}

// CounterFunc registers a counter whose value is read at scrape time —
// for exporting an existing monotonic counter owned by another layer
// without migrating its storage.
func (r *Registry) CounterFunc(name, help string, fn func() float64) {
	f := r.register(name, help, kindCounter, nil, 1)
	f.fn = func() map[string]float64 { return map[string]float64{"": fn()} }
}

// CounterVecFunc registers a labeled counter family whose full value set
// is read at scrape time: fn returns label value → counter value. The
// same bounded-label rules as GaugeVecFunc apply.
func (r *Registry) CounterVecFunc(name, help, labelKey string, fn func() map[string]float64) {
	f := r.register(name, help, kindCounter, []string{labelKey}, 1)
	f.fn = fn
}

// CounterVec is a labeled counter family.
type CounterVec struct{ f *family }

// With returns the counter for the label values, creating it on first
// use. Callers on hot paths should call With once and keep the *Counter.
func (v *CounterVec) With(labelVals ...string) *Counter { return v.f.get(labelVals).c }

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelKeys ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labelKeys, 1)}
}

// DurationCounterVec is CounterVec with DurationCounter's units.
func (r *Registry) DurationCounterVec(name, help string, labelKeys ...string) *CounterVec {
	return &CounterVec{r.register(name, help, kindCounter, labelKeys, 1e-9)}
}

// HistogramVec is a labeled histogram family.
type HistogramVec struct{ f *family }

// With returns the histogram for the label values, creating it on first
// use. Callers on hot paths should call With once and keep the pointer.
func (v *HistogramVec) With(labelVals ...string) *Histogram { return v.f.get(labelVals).h }

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, labelKeys ...string) *HistogramVec {
	return &HistogramVec{r.register(name, help, kindHistogram, labelKeys, 1)}
}

// Histogram registers and returns an unlabeled histogram.
func (r *Registry) Histogram(name, help string) *Histogram {
	return r.register(name, help, kindHistogram, nil, 1).get(nil).h
}

// WriteProm renders every family in Prometheus text exposition format,
// families and series in sorted order so two scrapes of identical state
// are byte-identical (tests and diffs rely on this).
func (r *Registry) WriteProm(w io.Writer) error {
	r.mu.Lock()
	names := make([]string, 0, len(r.fams))
	for name := range r.fams {
		names = append(names, name)
	}
	fams := make([]*family, 0, len(names))
	sort.Strings(names)
	for _, name := range names {
		fams = append(fams, r.fams[name])
	}
	r.mu.Unlock()
	for _, f := range fams {
		if err := f.write(w); err != nil {
			return err
		}
	}
	return nil
}

// Handler returns the GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			http.Error(w, "use GET", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		// Errors past the header are connection failures; nothing to do.
		_ = r.WriteProm(w)
	})
}

func (f *family) write(w io.Writer) error {
	var b strings.Builder
	fmt.Fprintf(&b, "# HELP %s %s\n", f.name, escapeHelp(f.help))
	fmt.Fprintf(&b, "# TYPE %s %s\n", f.name, f.kind)

	if f.fn != nil {
		vals := f.fn()
		keys := make([]string, 0, len(vals))
		for k := range vals {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			var lv []string
			if len(f.labelKeys) > 0 {
				lv = []string{k}
			}
			fmt.Fprintf(&b, "%s%s %s\n", f.name, formatLabels(f.labelKeys, lv), formatValue(vals[k]))
		}
		_, err := io.WriteString(w, b.String())
		return err
	}

	f.mu.Lock()
	keys := append([]string(nil), f.order...)
	sort.Strings(keys)
	children := make([]*child, 0, len(keys))
	for _, k := range keys {
		children = append(children, f.children[k])
	}
	f.mu.Unlock()

	for _, ch := range children {
		labels := formatLabels(f.labelKeys, ch.labelVals)
		switch f.kind {
		case kindCounter:
			fmt.Fprintf(&b, "%s%s %s\n", f.name, labels, formatValue(float64(ch.c.Load())*f.scale))
		case kindGauge:
			fmt.Fprintf(&b, "%s%s %s\n", f.name, labels, formatValue(float64(ch.g.Load())*f.scale))
		case kindHistogram:
			les, cum := ch.h.promBuckets()
			for i, le := range les {
				fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
					formatLabels(append(f.labelKeys, "le"), append(ch.labelVals, formatValue(le.Seconds()))), cum[i])
			}
			fmt.Fprintf(&b, "%s_bucket%s %d\n", f.name,
				formatLabels(append(f.labelKeys, "le"), append(ch.labelVals, "+Inf")), ch.h.Count())
			fmt.Fprintf(&b, "%s_sum%s %s\n", f.name, labels, formatValue(ch.h.Sum().Seconds()))
			fmt.Fprintf(&b, "%s_count%s %d\n", f.name, labels, ch.h.Count())
		}
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// formatLabels renders {k1="v1",k2="v2"}, or "" for an unlabeled series.
func formatLabels(keys, vals []string) string {
	if len(keys) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(vals[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format: backslash,
// double quote, and newline. The vec separator byte is dropped outright
// so it can never round-trip into a rendered value.
func escapeLabel(v string) string {
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`, "\xff", "")
	return r.Replace(v)
}

func escapeHelp(h string) string {
	r := strings.NewReplacer(`\`, `\\`, "\n", `\n`)
	return r.Replace(h)
}

// formatValue renders a float compactly: integers without a decimal
// point, everything else with minimal digits.
func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}
