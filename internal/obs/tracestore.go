package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// SpanRecord is one committed span in a trace snapshot — the JSON shape
// served by /v1/debug/traces and assembled across nodes. StartUnixNs is
// wall-clock (trace start plus the span's monotonic offset): exact
// within one node, comparable across nodes only up to clock skew —
// cross-node ordering should lean on parent links, not timestamps.
type SpanRecord struct {
	ID          SpanID `json:"id"`
	Parent      SpanID `json:"parent,omitempty"`
	Stage       string `json:"stage"`
	Node        string `json:"node,omitempty"`
	Remote      string `json:"remote,omitempty"`
	Key         string `json:"key,omitempty"`
	StartUnixNs int64  `json:"start_unix_ns"`
	DurationNs  int64  `json:"duration_ns"`
}

// TraceRecord is one node's completed segment of a trace: the root span
// (the whole request on this node) plus every span recorded here. A
// cross-node request leaves one record per participating node, all
// sharing ID; assembly stitches them by parent span (downstream) and the
// From field (upstream).
type TraceRecord struct {
	ID     TraceID `json:"id"`
	Node   string  `json:"node"`
	Route  string  `json:"route"`
	Key    string  `json:"key,omitempty"`
	Status int     `json:"status"`
	// From names the upstream node whose forward mark the request carried
	// (empty for client-entry requests) — the upstream pointer assembly
	// follows when the query starts at a non-origin node.
	From string `json:"from,omitempty"`
	// ParentSpan is the remote span this segment nests under (0 at the
	// trace origin); Root is this segment's root span ID.
	ParentSpan SpanID `json:"parent_span,omitempty"`
	Root       SpanID `json:"root_span"`
	// Retained names the tail-sampling rule that kept the trace:
	// "error", "slow", "cross_node", or "sampled".
	Retained     string       `json:"retained"`
	StartUnixNs  int64        `json:"start_unix_ns"`
	DurationNs   int64        `json:"duration_ns"`
	DroppedSpans int32        `json:"dropped_spans,omitempty"`
	Spans        []SpanRecord `json:"spans"`
}

// AssembledTrace is the merged cross-node view served by
// GET /v1/debug/traces/{id}: every reachable segment's spans in one
// tree. Missing lists nodes named by spans whose segments could not be
// fetched (peer down, trace evicted there); Partial additionally means
// the origin segment itself is absent, so Root is a best guess.
type AssembledTrace struct {
	ID          TraceID      `json:"id"`
	Root        SpanID       `json:"root_span,omitempty"`
	Nodes       []string     `json:"nodes"`
	Missing     []string     `json:"missing,omitempty"`
	Partial     bool         `json:"partial,omitempty"`
	StartUnixNs int64        `json:"start_unix_ns"`
	DurationNs  int64        `json:"duration_ns"`
	Spans       []SpanRecord `json:"spans"`
}

// TraceStore is a node's bounded ring of completed trace segments with
// tail-based sampling. Retention is decided lock-free from the finished
// request's outcome — always keep errors, slower-than-threshold, and
// cross-node traces; keep an ID-sampled fraction of the rest — and only
// a retained trace pays the snapshot allocation and the ring mutex, so
// the request hot path never blocks and the common discard is free.
//
// The probabilistic rule is deterministic on the trace ID's low bits, so
// every node of a cluster makes the same keep/drop decision for one
// trace — a kept trace's remote segments are kept too, which is what
// makes cross-node assembly reliable.
type TraceStore struct {
	node string
	slow time.Duration
	// sampleBound: retain when id.Lo < sampleBound; 0 never, ^0 always.
	sampleBound uint64

	offered  atomic.Int64
	retained atomic.Int64

	mu   sync.Mutex
	ring []*TraceRecord // insertion order; wraps at capacity
	next int
	cap  int
}

// NewTraceStore returns a store retaining up to capacity completed
// traces on node. slow is the always-retain latency threshold (<= 0
// disables it); sample is the retained fraction of ordinary traces
// (clamped to [0,1]).
func NewTraceStore(node string, capacity int, slow time.Duration, sample float64) *TraceStore {
	if capacity <= 0 {
		capacity = 512
	}
	var bound uint64
	switch {
	case sample >= 1:
		bound = ^uint64(0)
	case sample > 0:
		bound = uint64(sample * float64(1<<63) * 2)
	}
	return &TraceStore{node: node, slow: slow, sampleBound: bound, cap: capacity}
}

// Node returns the node name records are stamped with.
func (ts *TraceStore) Node() string {
	if ts == nil {
		return ""
	}
	return ts.node
}

// Offer presents a finished request's trace for retention and returns
// the retention reason ("" = discarded). from names the upstream
// forwarder (parsed from the forward mark), route/status/d the request's
// outcome. Nil-safe; the discard path takes no lock and allocates
// nothing.
func (ts *TraceStore) Offer(tr *Trace, route, from string, status int, d time.Duration) string {
	if ts == nil || tr == nil || tr.id.IsZero() {
		return ""
	}
	ts.offered.Add(1)
	var reason string
	switch {
	case status >= 500:
		reason = "error"
	case ts.slow > 0 && d >= ts.slow:
		reason = "slow"
	case tr.CrossNode() || tr.parent != 0 || from != "":
		// Cross-node either way: this node called a peer (a span named a
		// remote), or a peer called it (the trace arrived linked under a
		// parent span, or marked with a forwarder). Retaining both ends
		// unconditionally is what lets assembly rely on a kept trace's
		// remote segments being kept too.
		reason = "cross_node"
	case tr.id.Lo < ts.sampleBound:
		reason = "sampled"
	default:
		return ""
	}
	rec := ts.snapshot(tr, route, from, status, d, reason)
	ts.retained.Add(1)
	ts.mu.Lock()
	if len(ts.ring) < ts.cap {
		ts.ring = append(ts.ring, rec)
	} else {
		ts.ring[ts.next] = rec
		ts.next = (ts.next + 1) % len(ts.ring)
	}
	ts.mu.Unlock()
	return reason
}

// snapshot copies the trace's committed spans into an immutable record.
// Uncommitted (still-live) slots are skipped — a span someone forgot to
// End, or a fan-out still in flight, never leaks half-written fields.
func (ts *TraceStore) snapshot(tr *Trace, route, from string, status int, d time.Duration, reason string) *TraceRecord {
	startUnix := tr.start.UnixNano()
	n := int(tr.n.Load())
	if n > maxSpans {
		n = maxSpans
	}
	spans := make([]SpanRecord, 0, n+1)
	spans = append(spans, SpanRecord{
		ID:          tr.base,
		Parent:      tr.parent,
		Stage:       StageRequest.String(),
		Node:        ts.node,
		Key:         tr.rootKey,
		StartUnixNs: startUnix,
		DurationNs:  int64(d),
	})
	for i := 0; i < n; i++ {
		sp := &tr.spans[i]
		end := sp.endNs.Load() // acquire: commits the plain fields below
		if end == 0 {
			continue
		}
		spans = append(spans, SpanRecord{
			ID:          sp.id,
			Parent:      sp.parent,
			Stage:       sp.stage.String(),
			Node:        ts.node,
			Remote:      sp.remote,
			Key:         sp.key,
			StartUnixNs: startUnix + sp.startNs,
			DurationNs:  end - sp.startNs,
		})
	}
	return &TraceRecord{
		ID:           tr.id,
		Node:         ts.node,
		Route:        route,
		Key:          tr.rootKey,
		Status:       status,
		From:         from,
		ParentSpan:   tr.parent,
		Root:         tr.base,
		Retained:     reason,
		StartUnixNs:  startUnix,
		DurationNs:   int64(d),
		DroppedSpans: tr.dropped.Load(),
		Spans:        spans,
	}
}

// Get returns every retained segment for id — one node can hold several
// (a portfolio fan-out sends a peer several requests under one trace).
// Records are immutable after insertion; sharing pointers is safe.
func (ts *TraceStore) Get(id TraceID) []*TraceRecord {
	if ts == nil {
		return nil
	}
	var out []*TraceRecord
	ts.mu.Lock()
	for _, rec := range ts.ring {
		if rec.ID == id {
			out = append(out, rec)
		}
	}
	ts.mu.Unlock()
	return out
}

// TraceFilter narrows Recent: Route matches exactly when non-empty,
// MinDuration drops faster traces, Limit caps the result (0 = 50).
type TraceFilter struct {
	Route       string
	MinDuration time.Duration
	Limit       int
}

// Recent returns retained segments, newest first, filtered.
func (ts *TraceStore) Recent(f TraceFilter) []*TraceRecord {
	if ts == nil {
		return nil
	}
	limit := f.Limit
	if limit <= 0 {
		limit = 50
	}
	out := make([]*TraceRecord, 0, limit)
	ts.mu.Lock()
	// Newest first: before the ring wraps, insertion order is slice
	// order; after, the slot before next is the most recent insertion.
	for i := 0; i < len(ts.ring) && len(out) < limit; i++ {
		var idx int
		if len(ts.ring) < ts.cap {
			idx = len(ts.ring) - 1 - i
		} else {
			idx = ts.next - 1 - i
			if idx < 0 {
				idx += len(ts.ring)
			}
		}
		rec := ts.ring[idx]
		if f.Route != "" && rec.Route != f.Route {
			continue
		}
		if f.MinDuration > 0 && time.Duration(rec.DurationNs) < f.MinDuration {
			continue
		}
		out = append(out, rec)
	}
	ts.mu.Unlock()
	return out
}

// Stats returns the lifetime offered/retained counters and the current
// buffer depth, for scrape-time metric funcs.
func (ts *TraceStore) Stats() (offered, retained int64, buffered int) {
	if ts == nil {
		return 0, 0, 0
	}
	ts.mu.Lock()
	buffered = len(ts.ring)
	ts.mu.Unlock()
	return ts.offered.Load(), ts.retained.Load(), buffered
}
