package obs

import (
	"encoding/json"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceHeaderRoundTrip(t *testing.T) {
	id := TraceID{Hi: 0x0123456789abcdef, Lo: 0xfedcba9876543210}
	span := SpanID(0xdeadbeefcafef00d)
	v := EncodeTraceHeader(id, span)
	if want := "v1;id=0123456789abcdeffedcba9876543210;span=deadbeefcafef00d"; v != want {
		t.Fatalf("EncodeTraceHeader = %q, want %q", v, want)
	}
	gotID, gotSpan, ok := ParseTraceHeader(v)
	if !ok || gotID != id || gotSpan != span {
		t.Fatalf("ParseTraceHeader(%q) = (%v, %v, %v), want (%v, %v, true)", v, gotID, gotSpan, ok, id, span)
	}
}

func TestTraceHeaderRejectsGarbage(t *testing.T) {
	bad := []string{
		"",
		"v1",
		"v1;id=;span=",
		"v2;id=0123456789abcdeffedcba9876543210;span=deadbeefcafef00d",
		"v1;id=0123456789ABCDEFfedcba9876543210;span=deadbeefcafef00d", // uppercase
		"v1;id=0123456789abcdeffedcba987654321;span=deadbeefcafef00dd", // shifted widths
		"v1;id=00000000000000000000000000000000;span=deadbeefcafef00d", // zero trace id
		"v1;id=0123456789abcdeffedcba9876543210;span=deadbeefcafef00",  // short span
		strings.Repeat("a", 1000),
	}
	for _, v := range bad {
		if id, span, ok := ParseTraceHeader(v); ok {
			t.Errorf("ParseTraceHeader(%q) accepted: id=%v span=%v", v, id, span)
		}
	}
}

func TestIDJSONRoundTrip(t *testing.T) {
	type doc struct {
		T TraceID `json:"t"`
		S SpanID  `json:"s"`
	}
	in := doc{T: TraceID{Hi: 1, Lo: 0xabc}, S: SpanID(42)}
	b, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	var out doc
	if err := json.Unmarshal(b, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: %+v != %+v", out, in)
	}
}

func TestNewTraceIdentities(t *testing.T) {
	a, b := NewTrace(), NewTrace()
	if a.ID().IsZero() || b.ID().IsZero() {
		t.Fatal("NewTrace produced a zero trace ID")
	}
	if a.ID() == b.ID() {
		t.Fatal("two traces share an ID")
	}
	if a.RootSpan() == 0 {
		t.Fatal("zero root span")
	}
	if a.ParentSpan() != 0 || a.CrossNode() {
		t.Fatal("fresh trace claims a remote parent")
	}

	linked := NewLinkedTrace(a.ID(), a.RootSpan())
	if linked.ID() != a.ID() {
		t.Fatal("linked trace did not adopt the propagated ID")
	}
	if linked.ParentSpan() != a.RootSpan() || !linked.CrossNode() {
		t.Fatal("linked trace lost its parent")
	}
}

func TestSpanRecordingAndSnapshot(t *testing.T) {
	tr := NewTrace()
	tr.Annotate("key-1")
	sp := tr.StartSpan(StageCache)
	sp.SetKey("key-1")
	child := sp.StartChild()
	child.SetRemote("http://peer:1")
	time.Sleep(time.Millisecond)
	child.End()
	sp.End()
	live := tr.StartSpan(StageEncode) // never ended: must not appear
	_ = live

	if !tr.CrossNode() {
		t.Fatal("SetRemote did not mark the trace cross-node")
	}
	ts := NewTraceStore("n1", 8, 0, 1)
	if reason := ts.Offer(tr, "instantiate", "", 200, 5*time.Millisecond); reason == "" {
		t.Fatal("sample=1 store discarded the trace")
	}
	recs := ts.Get(tr.ID())
	if len(recs) != 1 {
		t.Fatalf("Get returned %d records, want 1", len(recs))
	}
	rec := recs[0]
	if rec.Key != "key-1" || rec.Route != "instantiate" || rec.Node != "n1" {
		t.Fatalf("record meta: %+v", rec)
	}
	// Root + cache + child; the un-ended encode span is skipped.
	if len(rec.Spans) != 3 {
		t.Fatalf("snapshot has %d spans, want 3: %+v", len(rec.Spans), rec.Spans)
	}
	root := rec.Spans[0]
	if root.Stage != "request" || root.ID != tr.RootSpan() {
		t.Fatalf("root span: %+v", root)
	}
	var cache, remote *SpanRecord
	for i := range rec.Spans {
		switch rec.Spans[i].Stage {
		case "cache":
			if rec.Spans[i].Remote == "" {
				cache = &rec.Spans[i]
			} else {
				remote = &rec.Spans[i]
			}
		}
	}
	if cache == nil || remote == nil {
		t.Fatalf("missing cache/attempt spans: %+v", rec.Spans)
	}
	if cache.Parent != root.ID {
		t.Fatalf("cache span parent = %v, want root %v", cache.Parent, root.ID)
	}
	if remote.Parent != cache.ID {
		t.Fatalf("child span parent = %v, want %v", remote.Parent, cache.ID)
	}
	if remote.StartUnixNs < cache.StartUnixNs {
		t.Fatalf("child starts before parent: %d < %d", remote.StartUnixNs, cache.StartUnixNs)
	}
	if remote.DurationNs < int64(time.Millisecond) {
		t.Fatalf("child duration %dns, want >= 1ms", remote.DurationNs)
	}
	if remote.DurationNs > cache.DurationNs {
		t.Fatalf("child (%dns) outlasts parent (%dns)", remote.DurationNs, cache.DurationNs)
	}
}

func TestNilTraceSpans(t *testing.T) {
	var tr *Trace
	sp := tr.StartSpan(StageInstantiate)
	time.Sleep(time.Millisecond)
	if d := sp.End(); d < time.Millisecond {
		t.Fatalf("nil-trace span measured %v, want >= 1ms", d)
	}
	sp.SetKey("k")
	sp.SetRemote("p")
	if _, ok := sp.Header(); ok {
		t.Fatal("nil-trace span produced a propagation header")
	}
	if tr.CrossNode() || tr.RootKey() != "" {
		t.Fatal("nil trace mutated")
	}
}

func TestSpanOverflowDegradesToAggregates(t *testing.T) {
	tr := NewTrace()
	for i := 0; i < maxSpans+5; i++ {
		tr.StartSpan(StageInstantiate).End()
	}
	if got := tr.DroppedSpans(); got != 5 {
		t.Fatalf("dropped = %d, want 5", got)
	}
	if got := tr.Ops(StageInstantiate); got != maxSpans+5 {
		t.Fatalf("aggregate ops = %d, want %d", got, maxSpans+5)
	}
	// Overflow refs still propagate: they carry the root span.
	sp := tr.StartSpan(StageForward)
	if sp.SpanID() != tr.RootSpan() {
		t.Fatalf("overflow ref span = %v, want root %v", sp.SpanID(), tr.RootSpan())
	}
	if hv, ok := sp.Header(); !ok || hv == "" {
		t.Fatal("overflow ref lost the propagation header")
	}
}

// TestConcurrentSpansRaceClean exercises concurrent span recording
// against snapshotting — the fan-out pattern — under the race detector.
func TestConcurrentSpansRaceClean(t *testing.T) {
	tr := NewTrace()
	ts := NewTraceStore("n", 4, 0, 1)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				sp := tr.StartSpan(StageFetch)
				sp.SetRemote("http://peer")
				sp.End()
			}
		}()
	}
	for i := 0; i < 20; i++ {
		ts.Offer(tr, "structures", "", 200, time.Millisecond)
	}
	wg.Wait()
}

func TestTailSamplingRules(t *testing.T) {
	mk := func() *Trace { return NewTrace() }
	ts := NewTraceStore("n", 16, 10*time.Millisecond, 0)
	if r := ts.Offer(mk(), "r", "", 200, time.Millisecond); r != "" {
		t.Fatalf("fast 200 retained as %q, want discard", r)
	}
	if r := ts.Offer(mk(), "r", "", 500, time.Millisecond); r != "error" {
		t.Fatalf("5xx retained as %q, want error", r)
	}
	if r := ts.Offer(mk(), "r", "", 200, 50*time.Millisecond); r != "slow" {
		t.Fatalf("slow retained as %q, want slow", r)
	}
	cross := NewLinkedTrace(TraceID{Hi: 1, Lo: 1}, 7)
	if r := ts.Offer(cross, "r", "up", 200, time.Millisecond); r != "cross_node" {
		t.Fatalf("propagated trace retained as %q, want cross_node", r)
	}

	// Deterministic sampling: the decision is a pure function of the ID,
	// so two stores (two nodes) agree on every trace.
	a := NewTraceStore("a", 16, 0, 0.5)
	b := NewTraceStore("b", 16, 0, 0.5)
	for i := 0; i < 64; i++ {
		tr := NewTrace()
		ra := a.Offer(tr, "r", "", 200, time.Millisecond)
		rb := b.Offer(tr, "r", "", 200, time.Millisecond)
		if (ra == "") != (rb == "") {
			t.Fatalf("nodes disagree on trace %v: %q vs %q", tr.ID(), ra, rb)
		}
	}
}

func TestTraceStoreRingEviction(t *testing.T) {
	ts := NewTraceStore("n", 4, 0, 1)
	var ids []TraceID
	for i := 0; i < 6; i++ {
		tr := NewTrace()
		ids = append(ids, tr.ID())
		ts.Offer(tr, "r", "", 200, time.Duration(i+1)*time.Millisecond)
	}
	if got := ts.Get(ids[0]); got != nil {
		t.Fatal("oldest trace survived a full ring")
	}
	if got := ts.Get(ids[5]); len(got) != 1 {
		t.Fatal("newest trace missing")
	}
	recent := ts.Recent(TraceFilter{})
	if len(recent) != 4 {
		t.Fatalf("Recent returned %d, want 4", len(recent))
	}
	for i := 1; i < len(recent); i++ {
		if recent[i-1].DurationNs < recent[i].DurationNs {
			t.Fatalf("Recent not newest-first: %v", recent)
		}
	}
	filtered := ts.Recent(TraceFilter{MinDuration: 6 * time.Millisecond})
	if len(filtered) != 1 {
		t.Fatalf("MinDuration filter returned %d, want 1", len(filtered))
	}
	offered, retained, buffered := ts.Stats()
	if offered != 6 || retained != 6 || buffered != 4 {
		t.Fatalf("Stats = (%d, %d, %d), want (6, 6, 4)", offered, retained, buffered)
	}
}

// FuzzTraceHeaderDecode: no input may panic the decoder, and anything it
// accepts must round-trip exactly and never yield a zero trace ID (the
// "bogus parent" guard — an unparseable header must start a fresh trace).
func FuzzTraceHeaderDecode(f *testing.F) {
	f.Add("v1;id=0123456789abcdeffedcba9876543210;span=deadbeefcafef00d")
	f.Add("v1;id=00000000000000000000000000000000;span=0000000000000000")
	f.Add("v1;id=;span=")
	f.Add("")
	f.Add(strings.Repeat(";", 100))
	f.Fuzz(func(t *testing.T, v string) {
		id, span, ok := ParseTraceHeader(v)
		if !ok {
			if !id.IsZero() || span != 0 {
				t.Fatalf("rejected input leaked ids: %v %v", id, span)
			}
			return
		}
		if id.IsZero() {
			t.Fatalf("accepted zero trace id from %q", v)
		}
		if re := EncodeTraceHeader(id, span); re != v {
			t.Fatalf("round trip: %q -> %q", v, re)
		}
		// A linked trace built from any accepted header is well-formed.
		tr := NewLinkedTrace(id, span)
		if tr.ID() != id || tr.ParentSpan() != span {
			t.Fatalf("NewLinkedTrace(%v, %v) = (%v, %v)", id, span, tr.ID(), tr.ParentSpan())
		}
	})
}
