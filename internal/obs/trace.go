package obs

import (
	"context"
	"encoding/json"
	"sync/atomic"
	"time"
)

// Stage names one phase of answering a request. Stages are a small fixed
// enum — a Trace stores per-stage totals in a flat array, so recording a
// span is two atomic adds and no allocation.
type Stage uint8

const (
	// StageCache: LRU lookup and entry bookkeeping. For the request that
	// triggers an inline disk read-through this span contains the
	// StageStoreRead/StageCompile work (spans overlap; see Trace).
	StageCache Stage = iota
	// StageStoreRead: disk-store read-through (file read + decode).
	StageStoreRead
	// StageCompile: compiled-query-index materialization.
	StageCompile
	// StageForward: proxying the request to the owning peer and relaying
	// its response.
	StageForward
	// StageFetch: pulling a built structure artifact from a peer.
	StageFetch
	// StageJobWait: waiting for the generation scheduler to produce the
	// entry (queue wait + annealing for cold keys).
	StageJobWait
	// StageBatchWait: waiting for a server-wide instantiate batch slot.
	StageBatchWait
	// StageInstantiate: executing the batch against the compiled index.
	StageInstantiate
	// StageEncode: encoding and writing the response body.
	StageEncode

	// NumStages is the stage count; valid stages are < NumStages.
	NumStages
)

var stageNames = [NumStages]string{
	"cache", "store_read", "compile", "forward", "fetch",
	"job_wait", "batch_wait", "instantiate", "encode",
}

// String returns the stage's metric label ("cache", "store_read", ...).
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	return "unknown"
}

// Stages lists every stage in declaration order, for registering
// per-stage metric series up front.
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// Trace accumulates per-stage time for one request. It travels on the
// request context (WithTrace/TraceFrom) so any layer the request passes
// through can attribute its time without new plumbing; a nil *Trace is
// valid and records nothing, so instrumented code never has to check
// whether tracing is on.
//
// Stages may overlap (StageCache contains an inline read-through's
// StageStoreRead), so the per-stage totals are attribution, not a
// partition of wall time. Fields are atomic because peer fetches and
// fan-out goroutines may record concurrently with the request goroutine.
type Trace struct {
	durs [NumStages]atomic.Int64
	ops  [NumStages]atomic.Int32
}

// ctxKey carries the Trace on a context.
type ctxKey struct{}

// WithTrace returns ctx carrying a fresh Trace, and the Trace. One
// allocation per request, paid once in the outermost middleware.
func WithTrace(ctx context.Context) (context.Context, *Trace) {
	t := &Trace{}
	return context.WithValue(ctx, ctxKey{}, t), t
}

// TraceFrom returns the context's Trace, or nil when the request is not
// traced (background work, tests). The nil result is directly usable:
// all Trace methods are nil-safe.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// Observe adds one span to the stage's total. Nil-safe, allocation-free.
func (t *Trace) Observe(s Stage, d time.Duration) {
	if t == nil || s >= NumStages {
		return
	}
	if d < 0 {
		d = 0
	}
	t.durs[s].Add(int64(d))
	t.ops[s].Add(1)
}

// Dur returns the stage's accumulated time. Nil-safe.
func (t *Trace) Dur(s Stage) time.Duration {
	if t == nil || s >= NumStages {
		return 0
	}
	return time.Duration(t.durs[s].Load())
}

// Ops returns how many spans the stage accumulated. Nil-safe.
func (t *Trace) Ops(s Stage) int32 {
	if t == nil || s >= NumStages {
		return 0
	}
	return t.ops[s].Load()
}

// StageBreakdown returns the non-zero stages as a name → milliseconds
// map — the slow-query log's "stages" object. Nil-safe (returns nil).
func (t *Trace) StageBreakdown() map[string]float64 {
	if t == nil {
		return nil
	}
	var out map[string]float64
	for s := Stage(0); s < NumStages; s++ {
		if d := t.durs[s].Load(); d > 0 {
			if out == nil {
				out = make(map[string]float64, 4)
			}
			out[stageNames[s]] = float64(d) / float64(time.Millisecond)
		}
	}
	return out
}

// SlowQueryEntry is the slow-query log line: one JSON object per
// over-threshold request, with the stage breakdown that tells an
// operator *where* the time went, not just that it went.
type SlowQueryEntry struct {
	Method   string             `json:"method"`
	Path     string             `json:"path"`
	Route    string             `json:"route"`
	Status   int                `json:"status"`
	Millis   float64            `json:"ms"`
	ServedBy string             `json:"served_by,omitempty"`
	Key      string             `json:"key,omitempty"`
	Stages   map[string]float64 `json:"stages,omitempty"`
}

// Render returns the entry as one-line JSON. Marshaling a flat struct of
// strings and numbers cannot fail; a slow query is already off the hot
// path, so the allocation here is irrelevant.
func (e SlowQueryEntry) Render() string {
	b, err := json.Marshal(e)
	if err != nil {
		return `{"error":"slow query entry unencodable"}`
	}
	return string(b)
}
