// Request tracing: per-stage aggregates plus a real span model.
//
// Every request gets a Trace carrying a 128-bit trace ID and a bounded
// tree of spans (stage, monotonic start/end, parent, peer/key attributes)
// recorded with the same discipline as the stage counters: reserving and
// committing a span is a handful of atomic operations against
// pre-allocated slots, so instrumentation never puts the hot path back on
// the allocator. Cross-node propagation rides the X-Mps-Trace header
// (EncodeTraceHeader/ParseTraceHeader); completed traces are retained by
// a tail-sampling TraceStore (tracestore.go).
package obs

import (
	"context"
	crand "crypto/rand"
	"encoding/binary"
	"encoding/json"
	"fmt"
	"sync/atomic"
	"time"
)

// Stage names one phase of answering a request. Stages are a small fixed
// enum — a Trace stores per-stage totals in a flat array, so recording a
// span is two atomic adds and no allocation.
type Stage uint8

const (
	// StageCache: LRU lookup and entry bookkeeping. For the request that
	// triggers an inline disk read-through this span contains the
	// StageStoreRead/StageCompile work (spans overlap; see Trace).
	StageCache Stage = iota
	// StageStoreRead: disk-store read-through (file read + decode).
	StageStoreRead
	// StageCompile: compiled-query-index materialization.
	StageCompile
	// StageForward: proxying the request to the owning peer and relaying
	// its response.
	StageForward
	// StageFetch: pulling a built structure artifact from a peer.
	StageFetch
	// StageJobWait: waiting for the generation scheduler to produce the
	// entry (queue wait + annealing for cold keys).
	StageJobWait
	// StageBatchWait: waiting for a server-wide instantiate batch slot.
	StageBatchWait
	// StageInstantiate: executing the batch against the compiled index.
	StageInstantiate
	// StageEncode: encoding and writing the response body.
	StageEncode
	// StageJobRun: a generation job occupying a scheduler worker, from
	// pickup to its terminal state. Recorded by the jobs scheduler onto
	// the submitting request's trace, so remote or queued annealing time
	// lands under the request that caused it.
	StageJobRun

	// NumStages is the stage count; valid stages are < NumStages.
	NumStages
)

// StageRequest is the synthetic stage of a trace's root span — the whole
// request. It exists only in snapshots (SpanRecord); live spans always
// carry a real < NumStages stage.
const StageRequest Stage = 0xff

var stageNames = [NumStages]string{
	"cache", "store_read", "compile", "forward", "fetch",
	"job_wait", "batch_wait", "instantiate", "encode", "job_run",
}

// String returns the stage's metric label ("cache", "store_read", ...).
func (s Stage) String() string {
	if s < NumStages {
		return stageNames[s]
	}
	if s == StageRequest {
		return "request"
	}
	return "unknown"
}

// Stages lists every stage in declaration order, for registering
// per-stage metric series up front.
func Stages() []Stage {
	out := make([]Stage, NumStages)
	for i := range out {
		out[i] = Stage(i)
	}
	return out
}

// TraceID is a 128-bit trace identifier, rendered as 32 lowercase hex
// digits. The zero value means "untraced".
type TraceID struct {
	Hi, Lo uint64
}

// IsZero reports whether the ID is the untraced zero value.
func (id TraceID) IsZero() bool { return id.Hi == 0 && id.Lo == 0 }

// String renders the ID as 32 lowercase hex digits.
func (id TraceID) String() string {
	b := make([]byte, 0, 32)
	b = appendHex64(b, id.Hi)
	b = appendHex64(b, id.Lo)
	return string(b)
}

// MarshalJSON renders the ID as its hex string.
func (id TraceID) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 34)
	b = append(b, '"')
	b = appendHex64(b, id.Hi)
	b = appendHex64(b, id.Lo)
	b = append(b, '"')
	return b, nil
}

// UnmarshalJSON parses the hex string form.
func (id *TraceID) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	parsed, ok := ParseTraceID(s)
	if !ok {
		return fmt.Errorf("obs: invalid trace id %q", s)
	}
	*id = parsed
	return nil
}

// ParseTraceID parses the 32-hex-digit form. Anything else — wrong
// length, uppercase, non-hex — is rejected.
func ParseTraceID(s string) (TraceID, bool) {
	if len(s) != 32 {
		return TraceID{}, false
	}
	hi, ok1 := parseHex64(s[:16])
	lo, ok2 := parseHex64(s[16:])
	if !ok1 || !ok2 {
		return TraceID{}, false
	}
	return TraceID{Hi: hi, Lo: lo}, true
}

// SpanID is a 64-bit span identifier, rendered as 16 lowercase hex
// digits. 0 means "no span" (a trace origin has no parent span).
type SpanID uint64

// String renders the ID as 16 lowercase hex digits.
func (id SpanID) String() string {
	return string(appendHex64(make([]byte, 0, 16), uint64(id)))
}

// MarshalJSON renders the ID as its hex string.
func (id SpanID) MarshalJSON() ([]byte, error) {
	b := make([]byte, 0, 18)
	b = append(b, '"')
	b = appendHex64(b, uint64(id))
	b = append(b, '"')
	return b, nil
}

// UnmarshalJSON parses the hex string form.
func (id *SpanID) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	v, ok := parseHex64(s)
	if !ok {
		return fmt.Errorf("obs: invalid span id %q", s)
	}
	*id = SpanID(v)
	return nil
}

const hexDigits = "0123456789abcdef"

func appendHex64(dst []byte, v uint64) []byte {
	for shift := 60; shift >= 0; shift -= 4 {
		dst = append(dst, hexDigits[(v>>uint(shift))&0xf])
	}
	return dst
}

func parseHex64(s string) (uint64, bool) {
	if len(s) != 16 {
		return 0, false
	}
	var v uint64
	for i := 0; i < 16; i++ {
		c := s[i]
		var d uint64
		switch {
		case c >= '0' && c <= '9':
			d = uint64(c - '0')
		case c >= 'a' && c <= 'f':
			d = uint64(c-'a') + 10
		default:
			return 0, false
		}
		v = v<<4 | d
	}
	return v, true
}

// TraceHeader carries trace context across cluster hops. The format is
// versioned and fixed-width like the forward mark (cluster.ForwardHeader):
//
//	X-Mps-Trace: v1;id=<32 hex>;span=<16 hex>
//
// id is the originating request's trace ID; span is the sender's span the
// receiving node's work nests under. A malformed value is ignored — the
// receiver starts a fresh trace rather than inheriting a bogus parent.
const TraceHeader = "X-Mps-Trace"

// TraceIDHeader is the response header naming the trace a request was
// recorded under, so clients (mpsload exemplars) can fetch it from
// /v1/debug/traces/{id} afterwards.
const TraceIDHeader = "X-Mps-Trace-Id"

const (
	traceHeaderPrefix = "v1;id="
	traceHeaderMid    = ";span="
	traceHeaderLen    = len(traceHeaderPrefix) + 32 + len(traceHeaderMid) + 16
)

// EncodeTraceHeader renders the propagation header value.
func EncodeTraceHeader(id TraceID, span SpanID) string {
	b := make([]byte, 0, traceHeaderLen)
	b = append(b, traceHeaderPrefix...)
	b = appendHex64(b, id.Hi)
	b = appendHex64(b, id.Lo)
	b = append(b, traceHeaderMid...)
	b = appendHex64(b, uint64(span))
	return string(b)
}

// ParseTraceHeader decodes a propagation header value. The format is
// strict — exact length, lowercase hex — and a zero trace ID is invalid,
// so arbitrary garbage cannot smuggle in a link; callers start a fresh
// trace whenever ok is false.
func ParseTraceHeader(v string) (id TraceID, span SpanID, ok bool) {
	if len(v) != traceHeaderLen {
		return TraceID{}, 0, false
	}
	if v[:len(traceHeaderPrefix)] != traceHeaderPrefix {
		return TraceID{}, 0, false
	}
	mid := len(traceHeaderPrefix) + 32
	if v[mid:mid+len(traceHeaderMid)] != traceHeaderMid {
		return TraceID{}, 0, false
	}
	hi, ok1 := parseHex64(v[len(traceHeaderPrefix) : len(traceHeaderPrefix)+16])
	lo, ok2 := parseHex64(v[len(traceHeaderPrefix)+16 : mid])
	sp, ok3 := parseHex64(v[mid+len(traceHeaderMid):])
	if !ok1 || !ok2 || !ok3 {
		return TraceID{}, 0, false
	}
	id = TraceID{Hi: hi, Lo: lo}
	if id.IsZero() {
		return TraceID{}, 0, false
	}
	return id, SpanID(sp), true
}

// idState drives the allocation-free ID generator: a counter seeded with
// entropy once, finalized through splitmix64 per draw. IDs are unique and
// well-distributed process-wide; they are identifiers, not secrets.
var idState atomic.Uint64

func init() {
	var b [8]byte
	if _, err := crand.Read(b[:]); err == nil {
		idState.Store(binary.LittleEndian.Uint64(b[:]))
	} else {
		idState.Store(uint64(time.Now().UnixNano()))
	}
}

// randID returns a new 64-bit identifier (splitmix64 over the seeded
// counter). Never allocates.
func randID() uint64 {
	x := idState.Add(0x9e3779b97f4a7c15)
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// maxSpans bounds the spans recorded per trace segment. A request's span
// count is bounded by construction (a handful of stages plus per-peer
// attempts), so 32 covers real traffic; overflow degrades to
// aggregate-only recording with a dropped counter, never an allocation.
const maxSpans = 32

// span is one pre-allocated span slot. The reserving goroutine writes the
// plain fields, then commits them with the atomic endNs store (release);
// snapshot readers load endNs first (acquire) and skip uncommitted slots,
// so a live span can never leak into a snapshot and the pattern is clean
// under the race detector.
type span struct {
	id      SpanID
	parent  SpanID
	startNs int64 // monotonic offset from the trace start
	stage   Stage
	remote  string // peer base URL for cross-node spans
	key     string // structure key attribute
	endNs   atomic.Int64
}

// Trace accumulates one request's observability state: per-stage
// duration/op aggregates (the slow-query breakdown and global stage
// counters) plus the span tree segment recorded on this node. It travels
// on the request context (WithTrace/TraceFrom) so any layer the request
// passes through can attribute its time without new plumbing; a nil
// *Trace is valid and records nothing, so instrumented code never has to
// check whether tracing is on.
//
// Stages may overlap (StageCache contains an inline read-through's
// StageStoreRead), so the per-stage totals are attribution, not a
// partition of wall time. Fields are atomic because peer fetches and
// fan-out goroutines may record concurrently with the request goroutine.
type Trace struct {
	durs [NumStages]atomic.Int64
	ops  [NumStages]atomic.Int32

	// id is the 128-bit trace identity, shared by every segment of a
	// cross-node request. parent is the remote span this segment nests
	// under (0 at the trace origin). base is this segment's random span-ID
	// base: the implicit root span is base, recorded span i is base+1+i.
	id     TraceID
	parent SpanID
	base   SpanID
	start  time.Time

	n         atomic.Int32 // span slots reserved (may exceed maxSpans)
	dropped   atomic.Int32 // spans lost to slot overflow
	hasRemote atomic.Bool  // any span named a peer (cross-node marker)

	// rootKey is the root span's structure-key annotation. Written via
	// Annotate on the handler goroutine and read in the middleware
	// epilogue on the same goroutine; not for concurrent writers.
	rootKey string

	spans [maxSpans]span
}

// ctxKey carries the Trace on a context.
type ctxKey struct{}

// NewTrace returns a Trace with a fresh trace ID — the origin of a new
// request. One allocation.
func NewTrace() *Trace { return NewLinkedTrace(TraceID{}, 0) }

// NewLinkedTrace returns a Trace continuing a propagated trace: the
// segment shares id and nests under the sender's parent span. A zero id
// (no or invalid header) starts a fresh trace with no parent.
func NewLinkedTrace(id TraceID, parent SpanID) *Trace {
	if id.IsZero() {
		id = TraceID{Hi: randID(), Lo: randID()}
		if id.IsZero() {
			id.Lo = 1
		}
		parent = 0
	}
	base := SpanID(randID())
	if base == 0 {
		base = 1
	}
	return &Trace{id: id, parent: parent, base: base, start: time.Now()}
}

// WithTrace returns ctx carrying a fresh Trace, and the Trace. One
// allocation per request (plus the context value), paid once in the
// outermost middleware.
func WithTrace(ctx context.Context) (context.Context, *Trace) {
	t := NewTrace()
	return context.WithValue(ctx, ctxKey{}, t), t
}

// WithTraceLink is WithTrace for a propagated trace (see NewLinkedTrace).
func WithTraceLink(ctx context.Context, id TraceID, parent SpanID) (context.Context, *Trace) {
	t := NewLinkedTrace(id, parent)
	return context.WithValue(ctx, ctxKey{}, t), t
}

// TraceFrom returns the context's Trace, or nil when the request is not
// traced (background work, tests). The nil result is directly usable:
// all Trace methods are nil-safe.
func TraceFrom(ctx context.Context) *Trace {
	t, _ := ctx.Value(ctxKey{}).(*Trace)
	return t
}

// ID returns the trace identity (zero for nil or zero-value traces).
func (t *Trace) ID() TraceID {
	if t == nil {
		return TraceID{}
	}
	return t.id
}

// ParentSpan returns the remote span this segment nests under (0 at the
// trace origin). Nil-safe.
func (t *Trace) ParentSpan() SpanID {
	if t == nil {
		return 0
	}
	return t.parent
}

// RootSpan returns the segment's implicit root span ID. Nil-safe.
func (t *Trace) RootSpan() SpanID {
	if t == nil {
		return 0
	}
	return t.base
}

// Start returns the trace's start time. Nil-safe.
func (t *Trace) Start() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.start
}

// CrossNode reports whether the trace touched more than one node: it was
// propagated here, or a span on it named a peer. Nil-safe.
func (t *Trace) CrossNode() bool {
	if t == nil {
		return false
	}
	return t.parent != 0 || t.hasRemote.Load()
}

// DroppedSpans returns how many spans overflowed the slot array (their
// durations still landed in the stage aggregates). Nil-safe.
func (t *Trace) DroppedSpans() int32 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Annotate records the structure key the request resolved to on the root
// span. Handler-goroutine only (plain field; the epilogue reads it on the
// same goroutine). Nil-safe.
func (t *Trace) Annotate(key string) {
	if t == nil {
		return
	}
	t.rootKey = key
}

// RootKey returns the Annotate'd structure key. Nil-safe.
func (t *Trace) RootKey() string {
	if t == nil {
		return ""
	}
	return t.rootKey
}

// SpanRef is a handle on a started span: a stack value, so starting and
// ending a span allocates nothing. The zero value is valid and records
// nothing. A ref is owned by the goroutine that started it until End;
// ending twice double-counts the aggregates — don't.
type SpanRef struct {
	t     *Trace
	slot  int32 // 1-based slot index; 0 = aggregate-only (nil trace or overflow)
	id    SpanID
	stage Stage
	start time.Time
}

// StartSpan starts a span under the trace's root. Nil-safe: on a nil
// trace the returned ref still measures a real duration (for global
// stage counters) and records nothing.
func (t *Trace) StartSpan(stage Stage) SpanRef {
	return t.StartSpanUnder(0, stage)
}

// StartSpanUnder starts a span nested under parent (0 means the root
// span). Nil-safe. When the slot array is full the span degrades to
// aggregate-only recording: the ref still measures, propagates the root
// span ID, and bumps the dropped counter on End — never blocks, never
// allocates.
func (t *Trace) StartSpanUnder(parent SpanID, stage Stage) SpanRef {
	now := time.Now()
	if t == nil {
		return SpanRef{stage: stage, start: now}
	}
	if parent == 0 {
		parent = t.base
	}
	i := t.n.Add(1) - 1
	if int(i) >= maxSpans {
		t.dropped.Add(1)
		return SpanRef{t: t, id: t.base, stage: stage, start: now}
	}
	sp := &t.spans[i]
	id := SpanID(uint64(t.base) + uint64(i) + 1)
	if id == 0 {
		id = 1
	}
	sp.id = id
	sp.parent = parent
	sp.stage = stage
	sp.startNs = int64(now.Sub(t.start))
	return SpanRef{t: t, slot: i + 1, id: id, stage: stage, start: now}
}

// Trace returns the trace the ref records into (nil for a zero ref).
func (r SpanRef) Trace() *Trace { return r.t }

// SpanID returns the span's ID — the parent for propagation and child
// spans. Aggregate-only refs return the root span ID so propagation
// still links into the trace; zero refs return 0.
func (r SpanRef) SpanID() SpanID { return r.id }

// Stage returns the stage the span records under.
func (r SpanRef) Stage() Stage { return r.stage }

// StartChild starts a child span of r with the same stage — per-attempt
// spans under a forward/fetch span. Safe on the zero ref.
func (r SpanRef) StartChild() SpanRef {
	if r.t == nil {
		return SpanRef{stage: r.stage, start: time.Now()}
	}
	return r.t.StartSpanUnder(r.id, r.stage)
}

// SetKey attaches the structure key attribute. Call between Start and
// End, from the owning goroutine. No-op on unrecorded refs.
func (r SpanRef) SetKey(key string) {
	if r.t != nil && r.slot > 0 {
		r.t.spans[r.slot-1].key = key
	}
}

// SetRemote attaches the peer base URL the span talks to and marks the
// trace cross-node. Call between Start and End, from the owning
// goroutine.
func (r SpanRef) SetRemote(peer string) {
	if r.t == nil {
		return
	}
	r.t.hasRemote.Store(true)
	if r.slot > 0 {
		r.t.spans[r.slot-1].remote = peer
	}
}

// Header returns the X-Mps-Trace value propagating this span as the
// remote parent, and whether there is a trace to propagate.
func (r SpanRef) Header() (string, bool) {
	if r.t == nil || r.t.id.IsZero() {
		return "", false
	}
	span := r.id
	if span == 0 {
		span = r.t.base
	}
	return EncodeTraceHeader(r.t.id, span), true
}

// End commits the span — attributes become visible to snapshots — and
// feeds the trace's stage aggregates. Returns the measured duration
// (real even for nil-trace refs, so callers can feed global counters).
func (r SpanRef) End() time.Duration {
	d := time.Since(r.start)
	if d < 0 {
		d = 0
	}
	if r.t == nil {
		return d
	}
	r.t.Observe(r.stage, d)
	if r.slot > 0 {
		sp := &r.t.spans[r.slot-1]
		end := sp.startNs + int64(d)
		if end == 0 {
			end = 1 // endNs 0 means "uncommitted"; never store it for a finished span
		}
		sp.endNs.Store(end)
	}
	return d
}

// spanCtxKey carries a SpanRef on a context, so layers below the span's
// creator (cluster.Do's per-attempt spans) can nest under it.
type spanCtxKey struct{}

// ContextWithSpan returns ctx carrying r as the current span.
func ContextWithSpan(ctx context.Context, r SpanRef) context.Context {
	return context.WithValue(ctx, spanCtxKey{}, r)
}

// SpanFromContext returns the context's current span, or the zero ref.
func SpanFromContext(ctx context.Context) SpanRef {
	r, _ := ctx.Value(spanCtxKey{}).(SpanRef)
	return r
}

// Observe adds one span to the stage's total. Nil-safe, allocation-free.
func (t *Trace) Observe(s Stage, d time.Duration) {
	if t == nil || s >= NumStages {
		return
	}
	if d < 0 {
		d = 0
	}
	t.durs[s].Add(int64(d))
	t.ops[s].Add(1)
}

// Dur returns the stage's accumulated time. Nil-safe.
func (t *Trace) Dur(s Stage) time.Duration {
	if t == nil || s >= NumStages {
		return 0
	}
	return time.Duration(t.durs[s].Load())
}

// Ops returns how many spans the stage accumulated. Nil-safe.
func (t *Trace) Ops(s Stage) int32 {
	if t == nil || s >= NumStages {
		return 0
	}
	return t.ops[s].Load()
}

// StageBreakdown returns the non-zero stages as a name → milliseconds
// map — the slow-query log's "stages" object. Nil-safe (returns nil).
func (t *Trace) StageBreakdown() map[string]float64 {
	if t == nil {
		return nil
	}
	var out map[string]float64
	for s := Stage(0); s < NumStages; s++ {
		if d := t.durs[s].Load(); d > 0 {
			if out == nil {
				out = make(map[string]float64, 4)
			}
			out[stageNames[s]] = float64(d) / float64(time.Millisecond)
		}
	}
	return out
}

// SlowQueryEntry is the slow-query log line: one JSON object per
// over-threshold request, with the stage breakdown that tells an
// operator *where* the time went, not just that it went, and the trace
// ID as an exemplar linking the line to /v1/debug/traces/{id}.
type SlowQueryEntry struct {
	Method   string             `json:"method"`
	Path     string             `json:"path"`
	Route    string             `json:"route"`
	Status   int                `json:"status"`
	Millis   float64            `json:"ms"`
	ServedBy string             `json:"served_by,omitempty"`
	Key      string             `json:"key,omitempty"`
	TraceID  string             `json:"trace_id,omitempty"`
	Stages   map[string]float64 `json:"stages,omitempty"`
}

// Render returns the entry as one-line JSON. Marshaling a flat struct of
// strings and numbers cannot fail; a slow query is already off the hot
// path, so the allocation here is irrelevant.
func (e SlowQueryEntry) Render() string {
	b, err := json.Marshal(e)
	if err != nil {
		return `{"error":"slow query entry unencodable"}`
	}
	return string(b)
}
