package obs

import (
	"context"
	"encoding/json"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1..1000 ms, one sample each: quantiles are known exactly, and the
	// bucketed answer must land within one bucket width (2^(1/8) ≈ +9%).
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Millisecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("count = %d, want 1000", h.Count())
	}
	if h.Max() != 1000*time.Millisecond {
		t.Fatalf("max = %v, want 1s", h.Max())
	}
	wantMean := time.Duration(500500) * time.Microsecond
	if h.Mean() != wantMean {
		t.Fatalf("mean = %v, want %v", h.Mean(), wantMean)
	}
	if h.Sum() != 500500*time.Millisecond {
		t.Fatalf("sum = %v, want 500.5s", h.Sum())
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 500 * time.Millisecond},
		{0.90, 900 * time.Millisecond},
		{0.99, 990 * time.Millisecond},
		{0.999, 999 * time.Millisecond},
	} {
		got := h.Quantile(tc.q)
		if got < tc.want || float64(got) > float64(tc.want)*1.095 {
			t.Errorf("q%.3f = %v, want in [%v, %v+9%%]", tc.q, got, tc.want, tc.want)
		}
	}
}

func TestHistogramEdges(t *testing.T) {
	var h Histogram
	// Empty histogram: every reader must yield zero, not panic or NaN.
	if h.Quantile(0.5) != 0 || h.Mean() != 0 || h.Max() != 0 || h.Sum() != 0 {
		t.Fatalf("empty histogram must read zero")
	}
	h.Observe(0)
	h.Observe(-time.Second) // clamped, not a panic
	h.Observe(48 * time.Hour)
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
	// Beyond-range samples land in the last bucket; the quantile clamps to
	// the exact max rather than the bucket edge.
	if got := h.Quantile(1); got != 48*time.Hour {
		t.Fatalf("q1 = %v, want 48h", got)
	}
	if got := h.Quantile(2); got != 48*time.Hour { // out-of-range q clamps
		t.Fatalf("q2 = %v, want 48h", got)
	}
	// Bucket upper edges are monotonically non-decreasing in the index.
	prev := time.Duration(0)
	for i := 0; i < numBuckets; i++ {
		u := bucketUpper(i)
		if u < prev {
			t.Fatalf("bucketUpper(%d) = %v < bucketUpper(%d) = %v", i, u, i-1, prev)
		}
		prev = u
	}
}

func TestHistogramMerge(t *testing.T) {
	var a, b Histogram
	for i := 1; i <= 500; i++ {
		a.Observe(time.Duration(i) * time.Millisecond)
	}
	for i := 501; i <= 1000; i++ {
		b.Observe(time.Duration(i) * time.Millisecond)
	}
	a.Merge(&b)
	if a.Count() != 1000 || a.Max() != time.Second {
		t.Fatalf("merged count=%d max=%v", a.Count(), a.Max())
	}
	got := a.Quantile(0.5)
	want := 500 * time.Millisecond
	if got < want || float64(got) > float64(want)*1.095 {
		t.Fatalf("merged q50 = %v, want ≈%v", got, want)
	}
}

func TestHistogramMergeMismatchedMax(t *testing.T) {
	// Merging a histogram whose max is smaller must keep the larger max
	// (never sum them), in both directions; merging empty is a no-op.
	var big, small, empty Histogram
	big.Observe(10 * time.Second)
	small.Observe(time.Millisecond)

	big.Merge(&small)
	if big.Max() != 10*time.Second || big.Count() != 2 {
		t.Fatalf("big∪small: max=%v count=%d, want 10s, 2", big.Max(), big.Count())
	}
	small.Merge(&big)
	if small.Max() != 10*time.Second || small.Count() != 3 {
		t.Fatalf("small∪big: max=%v count=%d, want 10s, 3", small.Max(), small.Count())
	}
	before := big.Max()
	big.Merge(&empty)
	if big.Max() != before || big.Count() != 2 {
		t.Fatalf("merge of empty changed state: max=%v count=%d", big.Max(), big.Count())
	}
}

func TestHistogramConcurrent(t *testing.T) {
	// Hammer one histogram from many goroutines; run under -race this
	// validates the atomic design, and totals must be exact afterwards.
	var h Histogram
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(w*per+i) * time.Microsecond)
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count = %d, want %d", h.Count(), workers*per)
	}
	wantMax := time.Duration(workers*per-1) * time.Microsecond
	if h.Max() != wantMax {
		t.Fatalf("max = %v, want %v", h.Max(), wantMax)
	}
}

func TestPromBuckets(t *testing.T) {
	var h Histogram
	h.Observe(500 * time.Nanosecond) // below base → first bucket
	h.Observe(3 * time.Microsecond)  // between 2µs and 4µs edges
	h.Observe(time.Hour)             // above top bucket

	les, cum := h.promBuckets()
	if len(les) != numBuckets/bucketsPerDoubling {
		t.Fatalf("edges = %d, want %d", len(les), numBuckets/bucketsPerDoubling)
	}
	if les[0] != time.Microsecond {
		t.Fatalf("first edge = %v, want 1µs", les[0])
	}
	for i := 1; i < len(les); i++ {
		// Every rendered edge is the previous one doubled (within float
		// rounding of the power computation).
		ratio := float64(les[i]) / float64(les[i-1])
		if ratio < 1.999 || ratio > 2.001 {
			t.Fatalf("edge %d/%d ratio = %v, want 2", i, i-1, ratio)
		}
	}
	if cum[0] != 1 {
		t.Fatalf("cum ≤1µs = %d, want 1 (sub-base sample)", cum[0])
	}
	if cum[1] != 1 || cum[2] != 2 {
		t.Fatalf("cum ≤2µs = %d, ≤4µs = %d; want 1, 2", cum[1], cum[2])
	}
	// The hour-long sample is beyond the last rendered doubling edge, so
	// the final cumulative count excludes it — the +Inf bucket (rendered
	// from Count) picks it up.
	if last := cum[len(cum)-1]; last != 2 {
		t.Fatalf("top cum = %d, want 2 (outlier only in +Inf)", last)
	}
	if h.Count() != 3 {
		t.Fatalf("count = %d, want 3", h.Count())
	}
}

func TestRegistryRender(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_ops_total", "ops")
	c.Add(5)
	c.Add(-3) // ignored: counters are monotonic
	c.Inc()
	g := r.Gauge("test_depth", "depth")
	g.Set(7)
	g.Add(-2)
	d := r.DurationCounter("test_busy_seconds_total", "busy time")
	d.AddDuration(1500 * time.Millisecond)
	v := r.CounterVec("test_requests_total", "requests", "route", "code")
	v.With("instantiate", "200").Add(3)
	v.With(`we"ird\`+"\n\xff", "500").Inc()
	r.GaugeFunc("test_live", "live value", func() float64 { return 2.5 })
	r.GaugeVecFunc("test_breaker_state", "breaker", "peer", func() map[string]float64 {
		return map[string]float64{"b": 1, "a": 0}
	})
	h := r.Histogram("test_latency_seconds", "latency")
	h.Observe(3 * time.Microsecond)

	var b strings.Builder
	if err := r.WriteProm(&b); err != nil {
		t.Fatalf("WriteProm: %v", err)
	}
	out := b.String()
	for _, want := range []string{
		"# HELP test_ops_total ops\n# TYPE test_ops_total counter\ntest_ops_total 6\n",
		"test_depth 5\n",
		"test_busy_seconds_total 1.5\n",
		`test_requests_total{route="instantiate",code="200"} 3`,
		`test_requests_total{route="we\"ird\\\n",code="500"} 1`,
		"test_live 2.5\n",
		`test_breaker_state{peer="a"} 0`,
		`test_breaker_state{peer="b"} 1`,
		`test_latency_seconds_bucket{le="1e-06"} 0`,
		`test_latency_seconds_bucket{le="4e-06"} 1`,
		`test_latency_seconds_bucket{le="+Inf"} 1`,
		"test_latency_seconds_sum 3e-06\n",
		"test_latency_seconds_count 1\n",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("output missing %q:\n%s", want, out)
		}
	}
	// Families render in sorted name order, so two scrapes of the same
	// state are byte-identical.
	var b2 strings.Builder
	if err := r.WriteProm(&b2); err != nil {
		t.Fatalf("WriteProm again: %v", err)
	}
	if out != b2.String() {
		t.Fatalf("two scrapes of identical state differ")
	}
	if i, j := strings.Index(out, "test_breaker_state"), strings.Index(out, "test_depth"); i > j {
		t.Fatalf("families not sorted: breaker_state at %d after depth at %d", i, j)
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup_total", "first")
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate registration must panic")
		}
	}()
	r.Gauge("dup_total", "second")
}

func TestRegistryHandler(t *testing.T) {
	r := NewRegistry()
	r.Counter("handler_total", "h").Inc()

	rec := httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/metrics", nil))
	if rec.Code != 200 {
		t.Fatalf("status = %d", rec.Code)
	}
	if ct := rec.Header().Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type = %q", ct)
	}
	if !strings.Contains(rec.Body.String(), "handler_total 1") {
		t.Fatalf("body missing series:\n%s", rec.Body.String())
	}

	rec = httptest.NewRecorder()
	r.Handler().ServeHTTP(rec, httptest.NewRequest("POST", "/metrics", nil))
	if rec.Code != 405 {
		t.Fatalf("POST status = %d, want 405", rec.Code)
	}
}

func TestTrace(t *testing.T) {
	// A nil trace (untraced context) absorbs everything silently.
	var nilT *Trace
	nilT.Observe(StageCompile, time.Second)
	if nilT.Dur(StageCompile) != 0 || nilT.Ops(StageCompile) != 0 || nilT.StageBreakdown() != nil {
		t.Fatalf("nil trace must read zero")
	}
	if TraceFrom(context.Background()) != nil {
		t.Fatalf("background context must carry no trace")
	}

	ctx, tr := WithTrace(context.Background())
	if TraceFrom(ctx) != tr {
		t.Fatalf("TraceFrom must return the trace WithTrace installed")
	}
	tr.Observe(StageCache, 2*time.Millisecond)
	tr.Observe(StageCache, 3*time.Millisecond)
	tr.Observe(StageJobWait, 50*time.Millisecond)
	tr.Observe(StageEncode, -time.Second) // clamps to 0 duration, still counts the op
	if tr.Dur(StageCache) != 5*time.Millisecond || tr.Ops(StageCache) != 2 {
		t.Fatalf("cache: dur=%v ops=%d", tr.Dur(StageCache), tr.Ops(StageCache))
	}
	bd := tr.StageBreakdown()
	if bd["cache"] != 5 || bd["job_wait"] != 50 {
		t.Fatalf("breakdown = %v", bd)
	}
	if _, ok := bd["encode"]; ok {
		t.Fatalf("zero-duration stage must not render: %v", bd)
	}

	// Concurrent observation (the forward/fan-out case) must be safe.
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				tr.Observe(StageFetch, time.Microsecond)
			}
		}()
	}
	wg.Wait()
	if tr.Ops(StageFetch) != 400 {
		t.Fatalf("fetch ops = %d, want 400", tr.Ops(StageFetch))
	}
}

func TestStageNames(t *testing.T) {
	seen := map[string]bool{}
	for _, s := range Stages() {
		name := s.String()
		if name == "" || name == "unknown" || seen[name] {
			t.Fatalf("stage %d has bad/duplicate name %q", s, name)
		}
		seen[name] = true
	}
	if NumStages.String() != "unknown" {
		t.Fatalf("out-of-range stage must stringify as unknown")
	}
}

func TestSlowQueryEntry(t *testing.T) {
	e := SlowQueryEntry{
		Method: "POST", Path: "/v1/instantiate", Route: "instantiate",
		Status: 200, Millis: 152.5, ServedBy: "n2",
		Stages: map[string]float64{"job_wait": 140.1},
	}
	line := e.Render()
	if strings.ContainsAny(line, "\n") {
		t.Fatalf("slow-query line must be one line: %q", line)
	}
	var back SlowQueryEntry
	if err := json.Unmarshal([]byte(line), &back); err != nil {
		t.Fatalf("round-trip: %v", err)
	}
	if back.Route != "instantiate" || back.Stages["job_wait"] != 140.1 || back.ServedBy != "n2" {
		t.Fatalf("round-trip = %+v", back)
	}
	// Optional fields drop out when empty.
	min := SlowQueryEntry{Method: "GET", Path: "/healthz", Route: "healthz", Status: 200, Millis: 1}
	if s := min.Render(); strings.Contains(s, "served_by") || strings.Contains(s, "stages") || strings.Contains(s, "key") {
		t.Fatalf("empty optional fields rendered: %s", s)
	}
}
