// Package placement defines the placement value type of the paper's eq. 2 —
// block coordinates plus per-block dimension validity intervals — and the
// geometric operations the generation algorithm needs: random legal
// placement selection, dimension expansion (§3.1.2), perturbation with
// toroidal wrap (§3.1.4), and legality checking.
//
// Blocks are anchored by their bottom-left corner and grow right/up as their
// dimensions increase (DESIGN.md D2), so a placement that is overlap-free
// with every block at its maximum interval dimensions is overlap-free for
// every dimension vector inside its intervals.
package placement

import (
	"fmt"
	"math"
	"math/rand"

	"mps/internal/geom"
	"mps/internal/netlist"
)

// Placement is one stored placement p_j: coordinates, dimension validity
// intervals and the costs the BDIO attached to it.
type Placement struct {
	// ID is the placement's index in its multi-placement structure;
	// -1 until stored.
	ID int
	// X, Y hold the bottom-left anchor of each block.
	X, Y []int
	// WLo, WHi, HLo, HHi hold the inclusive dimension validity intervals
	// [wstart,wend] and [hstart,hend] per block.
	WLo, WHi []int
	HLo, HHi []int
	// AvgCost and BestCost are the BDIO's average and best cost (§3.2).
	AvgCost, BestCost float64
	// BestW, BestH record the dimension vector that achieved BestCost.
	BestW, BestH []int

	// margins caches the per-block design-rule halos of the circuit; nil
	// means all zero (placements built as struct literals, margin-free
	// circuits, loaded structures).
	margins []int
}

// New returns a placement for c with all anchors at the origin and all
// dimension intervals collapsed to the blocks' minimum dimensions, the
// state the paper's Placement Selector starts from.
func New(c *netlist.Circuit) *Placement {
	n := c.N()
	p := &Placement{
		ID: -1,
		X:  make([]int, n), Y: make([]int, n),
		WLo: make([]int, n), WHi: make([]int, n),
		HLo: make([]int, n), HHi: make([]int, n),
	}
	for i, b := range c.Blocks {
		p.WLo[i], p.WHi[i] = b.WMin, b.WMin
		p.HLo[i], p.HHi[i] = b.HMin, b.HMin
	}
	p.AttachMargins(c)
	return p
}

// AttachMargins caches the circuit's per-block spacing halos on the
// placement so geometric checks can enforce them. Placements constructed
// outside New (struct literals, deserialization) have no margins until this
// is called.
func (p *Placement) AttachMargins(c *netlist.Circuit) {
	any := false
	for _, b := range c.Blocks {
		if b.Margin > 0 {
			any = true
			break
		}
	}
	if !any {
		p.margins = nil
		return
	}
	p.margins = make([]int, c.N())
	for i, b := range c.Blocks {
		p.margins[i] = b.Margin
	}
}

// marginAt returns block i's halo (0 when margins are not attached).
func (p *Placement) marginAt(i int) int {
	if p.margins == nil {
		return 0
	}
	return p.margins[i]
}

// clearance returns the required spacing between blocks i and j.
func (p *Placement) clearance(i, j int) int {
	mi, mj := p.marginAt(i), p.marginAt(j)
	if mi > mj {
		return mi
	}
	return mj
}

// inflate grows r by m on every side.
func inflate(r geom.Rect, m int) geom.Rect {
	return geom.Rect{X0: r.X0 - m, Y0: r.Y0 - m, X1: r.X1 + m, Y1: r.Y1 + m}
}

// N returns the number of blocks.
func (p *Placement) N() int { return len(p.X) }

// Clone returns a deep copy of p.
func (p *Placement) Clone() *Placement {
	q := &Placement{
		ID:      p.ID,
		AvgCost: p.AvgCost, BestCost: p.BestCost,
		X: cloneInts(p.X), Y: cloneInts(p.Y),
		WLo: cloneInts(p.WLo), WHi: cloneInts(p.WHi),
		HLo: cloneInts(p.HLo), HHi: cloneInts(p.HHi),
	}
	if p.BestW != nil {
		q.BestW = cloneInts(p.BestW)
	}
	if p.BestH != nil {
		q.BestH = cloneInts(p.BestH)
	}
	if p.margins != nil {
		q.margins = cloneInts(p.margins)
	}
	return q
}

// WIv returns block i's width validity interval.
func (p *Placement) WIv(i int) geom.Interval { return geom.NewInterval(p.WLo[i], p.WHi[i]) }

// HIv returns block i's height validity interval.
func (p *Placement) HIv(i int) geom.Interval { return geom.NewInterval(p.HLo[i], p.HHi[i]) }

// Rect returns block i's rectangle at the given dimensions.
func (p *Placement) Rect(i, w, h int) geom.Rect {
	return geom.NewRect(p.X[i], p.Y[i], w, h)
}

// MaxRect returns block i's rectangle at its maximum interval dimensions.
func (p *Placement) MaxRect(i int) geom.Rect {
	return p.Rect(i, p.WHi[i], p.HHi[i])
}

// Covers reports whether the dimension vector (ws, hs) lies inside every
// validity interval of p — the condition for p to be the placement the
// structure returns for those dimensions.
func (p *Placement) Covers(ws, hs []int) bool {
	for i := range p.X {
		if ws[i] < p.WLo[i] || ws[i] > p.WHi[i] || hs[i] < p.HLo[i] || hs[i] > p.HHi[i] {
			return false
		}
	}
	return true
}

// BoxOverlaps reports whether the 2N-dimensional dimension boxes of p and q
// intersect, i.e. whether some dimension vector is valid for both — the
// conflict the Resolve Overlaps step must eliminate (eq. 5).
func (p *Placement) BoxOverlaps(q *Placement) bool {
	for i := range p.X {
		if !p.WIv(i).Overlaps(q.WIv(i)) || !p.HIv(i).Overlaps(q.HIv(i)) {
			return false
		}
	}
	return true
}

// BoxEmpty reports whether any validity interval of p is empty, which makes
// the placement unreachable by any query.
func (p *Placement) BoxEmpty() bool {
	for i := range p.X {
		if p.WLo[i] > p.WHi[i] || p.HLo[i] > p.HHi[i] {
			return true
		}
	}
	return false
}

// Log2BoxVolume returns log2 of the number of dimension vectors covered by
// p's validity box (0 for a single point; -Inf for an empty box).
func (p *Placement) Log2BoxVolume() float64 {
	var lg float64
	for i := range p.X {
		// LenFloat, not Len: int interval lengths overflow for validity
		// intervals spanning most of the int range, turning the log of a
		// huge box into NaN.
		wl, hl := p.WIv(i).LenFloat(), p.HIv(i).LenFloat()
		if wl == 0 || hl == 0 {
			return math.Inf(-1)
		}
		lg += math.Log2(wl) + math.Log2(hl)
	}
	return lg
}

// CheckLegal verifies that, with every block at its maximum interval
// dimensions, blocks are pairwise non-overlapping (including design-rule
// clearance when margins are attached) and inside the floorplan. By the
// bottom-left anchoring rule this implies legality for every dimension
// vector in the box.
func (p *Placement) CheckLegal(fp geom.Rect) error {
	n := p.N()
	for i := 0; i < n; i++ {
		ri := p.MaxRect(i)
		if !fp.Contains(ri) {
			return fmt.Errorf("placement: block %d rect %v outside floorplan %v", i, ri, fp)
		}
		for j := i + 1; j < n; j++ {
			if inflate(ri, p.clearance(i, j)).Overlaps(p.MaxRect(j)) {
				return fmt.Errorf("placement: blocks %d and %d violate spacing at max dims (%v vs %v)",
					i, j, ri, p.MaxRect(j))
			}
		}
	}
	return nil
}

// CheckIntervalsWithin verifies every validity interval lies inside the
// designer bounds of its block.
func (p *Placement) CheckIntervalsWithin(c *netlist.Circuit) error {
	for i, b := range c.Blocks {
		if !b.WRange().ContainsInterval(p.WIv(i)) {
			return fmt.Errorf("placement: block %d width interval %v outside bounds %v",
				i, p.WIv(i), b.WRange())
		}
		if !b.HRange().ContainsInterval(p.HIv(i)) {
			return fmt.Errorf("placement: block %d height interval %v outside bounds %v",
				i, p.HIv(i), b.HRange())
		}
	}
	return nil
}

// DefaultFloorplan returns a square floorplan sized so that all blocks fit
// comfortably at maximum dimensions: side = ceil(sqrt(slack * sum of max
// block areas)), with a minimum side that admits the widest/tallest block.
func DefaultFloorplan(c *netlist.Circuit) geom.Rect {
	const slack = 1.6
	side := int(math.Ceil(math.Sqrt(slack * float64(c.MaxArea()))))
	for _, b := range c.Blocks {
		if b.WMax > side {
			side = b.WMax
		}
		if b.HMax > side {
			side = b.HMax
		}
	}
	return geom.NewRect(0, 0, side, side)
}

// RandomLegal places every block of c at a uniformly random position with
// dimensions at minimum, retrying collisions and falling back to a
// deterministic row packing if random search cannot fit a block. It errors
// only if even packing fails, meaning the floorplan is too small.
func RandomLegal(c *netlist.Circuit, fp geom.Rect, rng *rand.Rand) (*Placement, error) {
	ws := make([]int, c.N())
	hs := make([]int, c.N())
	for i, b := range c.Blocks {
		ws[i] = b.WMin
		hs[i] = b.HMin
	}
	return RandomLegalAt(c, fp, rng, ws, hs)
}

// RandomLegalAt is RandomLegal with explicit block dimensions: every block
// is placed at a random position with dims (ws[i], hs[i]) and the resulting
// placement's intervals are collapsed onto those dimensions. It is the
// starting point of the optimization-based baseline placer, which works on
// already-sized circuits.
func RandomLegalAt(c *netlist.Circuit, fp geom.Rect, rng *rand.Rand, ws, hs []int) (*Placement, error) {
	if len(ws) != c.N() || len(hs) != c.N() {
		return nil, fmt.Errorf("placement: dim vectors sized %d/%d, want %d", len(ws), len(hs), c.N())
	}
	p := New(c)
	for i := range c.Blocks {
		p.WLo[i], p.WHi[i] = ws[i], ws[i]
		p.HLo[i], p.HHi[i] = hs[i], hs[i]
	}
	const tries = 64
	for i := range c.Blocks {
		placed := false
		maxX := fp.X1 - ws[i]
		maxY := fp.Y1 - hs[i]
		if maxX < fp.X0 || maxY < fp.Y0 {
			return nil, fmt.Errorf("placement: block %d (%dx%d) larger than floorplan %v",
				i, ws[i], hs[i], fp)
		}
		for t := 0; t < tries; t++ {
			x := fp.X0 + rng.Intn(maxX-fp.X0+1)
			y := fp.Y0 + rng.Intn(maxY-fp.Y0+1)
			if freeAt(p, i, x, y, ws[i], hs[i]) {
				p.X[i], p.Y[i] = x, y
				placed = true
				break
			}
		}
		if !placed {
			x, y, ok := scanFree(p, i, fp, ws[i], hs[i])
			if !ok {
				return nil, fmt.Errorf("placement: cannot fit block %d anywhere in %v", i, fp)
			}
			p.X[i], p.Y[i] = x, y
		}
	}
	return p, nil
}

// ResetToMin collapses every dimension interval back to the block minimums,
// the state from which Expand grows a freshly selected placement.
func (p *Placement) ResetToMin(c *netlist.Circuit) {
	for i, b := range c.Blocks {
		p.WLo[i], p.WHi[i] = b.WMin, b.WMin
		p.HLo[i], p.HHi[i] = b.HMin, b.HMin
	}
	p.AvgCost, p.BestCost = 0, 0
	p.BestW, p.BestH = nil, nil
}

// Expand implements the paper's Placement Expansion (§3.1.2): starting from
// minimum dimensions, block dimension upper bounds are incremented one by
// one (width then height, round-robin over blocks) until every expansion is
// blocked by overlap, floorplan bounds, or the block's designer maximum.
// step controls the units added per increment (>=1).
func (p *Placement) Expand(c *netlist.Circuit, fp geom.Rect, step int) {
	if step < 1 {
		step = 1
	}
	n := p.N()
	wDone := make([]bool, n)
	hDone := make([]bool, n)
	for changed := true; changed; {
		changed = false
		for i := 0; i < n; i++ {
			b := c.Blocks[i]
			if !wDone[i] {
				next := p.WHi[i] + step
				if next > b.WMax {
					next = b.WMax
				}
				if next > p.WHi[i] && p.fitsAt(i, next, p.HHi[i], fp) {
					p.WHi[i] = next
					changed = true
				} else {
					wDone[i] = true
				}
			}
			if !hDone[i] {
				next := p.HHi[i] + step
				if next > b.HMax {
					next = b.HMax
				}
				if next > p.HHi[i] && p.fitsAt(i, p.WHi[i], next, fp) {
					p.HHi[i] = next
					changed = true
				} else {
					hDone[i] = true
				}
			}
		}
	}
}

// Perturb implements the paper's Perturb Placement (§3.1.4): a fraction of
// blocks, chosen at random, have their coordinates varied by up to maxShift
// units; out-of-bound coordinates wrap to the opposite side of the floorplan
// ("to allow some shuffling of the circuit"). Moves that would overlap
// another block at minimum dimensions are retried a bounded number of times
// and then abandoned, keeping the placement legal. Dimension intervals are
// reset to minimums afterwards, ready for Expand.
func (p *Placement) Perturb(c *netlist.Circuit, fp geom.Rect, rng *rand.Rand, fraction float64, maxShift int) {
	p.ResetToMin(c)
	n := p.N()
	count := int(math.Round(fraction * float64(n)))
	if count < 1 {
		count = 1
	}
	if count > n {
		count = n
	}
	if maxShift < 1 {
		maxShift = 1
	}
	order := rng.Perm(n)[:count]
	for _, i := range order {
		b := c.Blocks[i]
		origX, origY := p.X[i], p.Y[i]
		const tries = 20
		for t := 0; t < tries; t++ {
			dx := rng.Intn(2*maxShift+1) - maxShift
			dy := rng.Intn(2*maxShift+1) - maxShift
			x := wrap(origX+dx, fp.X0, fp.X1-b.WMin)
			y := wrap(origY+dy, fp.Y0, fp.Y1-b.HMin)
			if freeAt(p, i, x, y, b.WMin, b.HMin) {
				p.X[i], p.Y[i] = x, y
				break
			}
		}
	}
}

// Perturb1 moves a single block by up to maxShift units with toroidal wrap,
// retrying collisions a bounded number of times and leaving the block in
// place if no legal move is found. Block dimensions are taken from the
// block's current interval maximums, so it works both on minimum-dims
// placements (explorer) and exact-dims placements (optimization baseline).
func (p *Placement) Perturb1(c *netlist.Circuit, fp geom.Rect, rng *rand.Rand, i, maxShift int) {
	if maxShift < 1 {
		maxShift = 1
	}
	w, h := p.WHi[i], p.HHi[i]
	origX, origY := p.X[i], p.Y[i]
	const tries = 20
	for t := 0; t < tries; t++ {
		dx := rng.Intn(2*maxShift+1) - maxShift
		dy := rng.Intn(2*maxShift+1) - maxShift
		x := wrap(origX+dx, fp.X0, fp.X1-w)
		y := wrap(origY+dy, fp.Y0, fp.Y1-h)
		if freeAt(p, i, x, y, w, h) {
			p.X[i], p.Y[i] = x, y
			return
		}
	}
}

// SwapBlocks exchanges the anchors of blocks i and j when the result is
// legal at the blocks' current interval-maximum dimensions; it reports
// whether the swap was applied. Swaps are the second move class of the
// optimization-based baseline.
func (p *Placement) SwapBlocks(c *netlist.Circuit, fp geom.Rect, i, j int) bool {
	p.X[i], p.X[j] = p.X[j], p.X[i]
	p.Y[i], p.Y[j] = p.Y[j], p.Y[i]
	wi, hi := p.WHi[i], p.HHi[i]
	wj, hj := p.WHi[j], p.HHi[j]
	ok := fp.Contains(p.Rect(i, wi, hi)) &&
		fp.Contains(p.Rect(j, wj, hj)) &&
		freeAt(p, i, p.X[i], p.Y[i], wi, hi) &&
		freeAt(p, j, p.X[j], p.Y[j], wj, hj)
	if !ok {
		p.X[i], p.X[j] = p.X[j], p.X[i]
		p.Y[i], p.Y[j] = p.Y[j], p.Y[i]
	}
	return ok
}

// fitsAt reports whether block i with dimensions (w, h) stays inside the
// floorplan and keeps required clearance from every other block at its
// current max dimensions.
func (p *Placement) fitsAt(i, w, h int, fp geom.Rect) bool {
	r := p.Rect(i, w, h)
	if !fp.Contains(r) {
		return false
	}
	for j := range p.X {
		if j == i {
			continue
		}
		if inflate(r, p.clearance(i, j)).Overlaps(p.MaxRect(j)) {
			return false
		}
	}
	return true
}

// freeAt reports whether block i placed at (x, y) with dimensions (w, h)
// keeps required clearance from every other block at its current max
// dimensions. It does not check floorplan bounds.
func freeAt(p *Placement, i, x, y, w, h int) bool {
	r := geom.NewRect(x, y, w, h)
	for j := range p.X {
		if j == i {
			continue
		}
		if inflate(r, p.clearance(i, j)).Overlaps(p.MaxRect(j)) {
			return false
		}
	}
	return true
}

// scanFree raster-scans the floorplan for the first position where block i
// fits at dimensions (w, h).
func scanFree(p *Placement, i int, fp geom.Rect, w, h int) (x, y int, ok bool) {
	const stride = 2
	for y = fp.Y0; y+h <= fp.Y1; y += stride {
		for x = fp.X0; x+w <= fp.X1; x += stride {
			if freeAt(p, i, x, y, w, h) {
				return x, y, true
			}
		}
	}
	return 0, 0, false
}

// wrap folds v into [lo, hi] toroidally. hi < lo cannot happen for valid
// floorplans (checked by callers via RandomLegal's size guard).
func wrap(v, lo, hi int) int {
	span := hi - lo + 1
	if span <= 0 {
		return lo
	}
	m := (v - lo) % span
	if m < 0 {
		m += span
	}
	return lo + m
}

func cloneInts(s []int) []int {
	out := make([]int, len(s))
	copy(out, s)
	return out
}
