package placement

import (
	"math/rand"
	"testing"

	"mps/internal/circuits"
	"mps/internal/geom"
	"mps/internal/netlist"
)

func smallCircuit() *netlist.Circuit {
	b := netlist.NewBuilder("small")
	b.Block("a", 4, 12, 4, 12)
	b.Block("b", 4, 10, 4, 10)
	b.Block("c", 3, 8, 3, 8)
	b.Net("n1", 1, netlist.P("a"), netlist.P("b"))
	b.Net("n2", 1, netlist.P("b"), netlist.P("c"))
	return b.MustBuild()
}

func TestNewStartsAtMinimumDims(t *testing.T) {
	c := smallCircuit()
	p := New(c)
	for i, blk := range c.Blocks {
		if p.WLo[i] != blk.WMin || p.WHi[i] != blk.WMin {
			t.Errorf("block %d width interval [%d,%d], want collapsed at %d",
				i, p.WLo[i], p.WHi[i], blk.WMin)
		}
		if p.HLo[i] != blk.HMin || p.HHi[i] != blk.HMin {
			t.Errorf("block %d height interval [%d,%d], want collapsed at %d",
				i, p.HLo[i], p.HHi[i], blk.HMin)
		}
	}
	if p.ID != -1 {
		t.Errorf("new placement ID = %d, want -1 (unstored)", p.ID)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c := smallCircuit()
	p := New(c)
	p.BestW = []int{4, 4, 3}
	p.BestH = []int{4, 4, 3}
	q := p.Clone()
	q.X[0] = 99
	q.WHi[1] = 99
	q.BestW[2] = 99
	if p.X[0] == 99 || p.WHi[1] == 99 || p.BestW[2] == 99 {
		t.Error("Clone shares backing arrays with original")
	}
}

func TestRandomLegalIsLegal(t *testing.T) {
	c := circuits.MustByName("TwoStageOpamp")
	fp := DefaultFloorplan(c)
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 30; trial++ {
		p, err := RandomLegal(c, fp, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.CheckLegal(fp); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestRandomLegalTinyFloorplanErrors(t *testing.T) {
	c := smallCircuit()
	fp := geom.NewRect(0, 0, 3, 3) // smaller than any block
	rng := rand.New(rand.NewSource(1))
	if _, err := RandomLegal(c, fp, rng); err == nil {
		t.Error("impossible floorplan should error")
	}
}

func TestRandomLegalPackedFloorplan(t *testing.T) {
	// Floorplan just big enough for the three blocks at min dims in a row:
	// random placement will collide often and must fall back to scanning.
	c := smallCircuit()
	fp := geom.NewRect(0, 0, 12, 12)
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 20; trial++ {
		p, err := RandomLegal(c, fp, rng)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		// Legality at min dims: max interval == min dims here.
		if err := p.CheckLegal(fp); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestExpandKeepsLegalityAndGrows(t *testing.T) {
	c := circuits.MustByName("Mixer")
	fp := DefaultFloorplan(c)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 20; trial++ {
		p, err := RandomLegal(c, fp, rng)
		if err != nil {
			t.Fatal(err)
		}
		p.Expand(c, fp, 1)
		if err := p.CheckLegal(fp); err != nil {
			t.Fatalf("trial %d after expand: %v", trial, err)
		}
		if err := p.CheckIntervalsWithin(c); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		grew := false
		for i, blk := range c.Blocks {
			if p.WHi[i] > blk.WMin || p.HHi[i] > blk.HMin {
				grew = true
			}
			if p.WLo[i] != blk.WMin || p.HLo[i] != blk.HMin {
				t.Fatalf("expand must not move lower bounds (block %d)", i)
			}
		}
		if !grew {
			t.Errorf("trial %d: expansion grew nothing in a spacious floorplan", trial)
		}
	}
}

// TestExpandMaximality verifies the stopping condition: after Expand, every
// block is blocked in each dimension by its designer max, the floorplan, or
// a neighbor — one more step must always be illegal or a no-op.
func TestExpandMaximality(t *testing.T) {
	c := circuits.MustByName("circ06")
	fp := DefaultFloorplan(c)
	rng := rand.New(rand.NewSource(4))
	p, err := RandomLegal(c, fp, rng)
	if err != nil {
		t.Fatal(err)
	}
	p.Expand(c, fp, 1)
	for i, blk := range c.Blocks {
		if p.WHi[i] < blk.WMax && p.fitsAt(i, p.WHi[i]+1, p.HHi[i], fp) {
			t.Errorf("block %d width %d could still expand", i, p.WHi[i])
		}
		if p.HHi[i] < blk.HMax && p.fitsAt(i, p.WHi[i], p.HHi[i]+1, fp) {
			t.Errorf("block %d height %d could still expand", i, p.HHi[i])
		}
	}
}

func TestExpandRespectsDesignerMax(t *testing.T) {
	// One block alone in a huge floorplan must stop exactly at its max.
	b := netlist.NewBuilder("solo")
	b.Block("a", 4, 9, 4, 7)
	b.Net("n", 1, netlist.T("a", 0, 0), netlist.T("a", 1, 1))
	c := b.MustBuild()
	fp := geom.NewRect(0, 0, 1000, 1000)
	p := New(c)
	p.Expand(c, fp, 1)
	if p.WHi[0] != 9 || p.HHi[0] != 7 {
		t.Errorf("expanded to %dx%d, want designer max 9x7", p.WHi[0], p.HHi[0])
	}
}

func TestExpandStepLargerThanOne(t *testing.T) {
	c := smallCircuit()
	fp := DefaultFloorplan(c)
	rng := rand.New(rand.NewSource(6))
	p, err := RandomLegal(c, fp, rng)
	if err != nil {
		t.Fatal(err)
	}
	p.Expand(c, fp, 3)
	if err := p.CheckLegal(fp); err != nil {
		t.Fatal(err)
	}
	if err := p.CheckIntervalsWithin(c); err != nil {
		t.Fatal(err)
	}
}

func TestPerturbStaysLegal(t *testing.T) {
	c := circuits.MustByName("SingleEndedOpamp")
	fp := DefaultFloorplan(c)
	rng := rand.New(rand.NewSource(7))
	p, err := RandomLegal(c, fp, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		p.Perturb(c, fp, rng, 0.3, 40)
		if err := p.CheckLegal(fp); err != nil {
			t.Fatalf("perturb %d broke legality: %v", i, err)
		}
	}
}

func TestPerturbMovesSomething(t *testing.T) {
	c := circuits.MustByName("Mixer")
	fp := DefaultFloorplan(c)
	rng := rand.New(rand.NewSource(8))
	p, err := RandomLegal(c, fp, rng)
	if err != nil {
		t.Fatal(err)
	}
	orig := p.Clone()
	moved := false
	for i := 0; i < 10 && !moved; i++ {
		p.Perturb(c, fp, rng, 0.5, 30)
		for j := range p.X {
			if p.X[j] != orig.X[j] || p.Y[j] != orig.Y[j] {
				moved = true
			}
		}
	}
	if !moved {
		t.Error("ten perturbations moved no block")
	}
}

func TestWrapToroidal(t *testing.T) {
	cases := []struct{ v, lo, hi, want int }{
		{5, 0, 9, 5},
		{12, 0, 9, 2}, // wraps past hi
		{-3, 0, 9, 7}, // wraps below lo
		{10, 0, 9, 0}, // exactly one past
		{25, 3, 7, 5}, // offset range: span 5, (25-3)%5=2 -> 5
	}
	for _, tc := range cases {
		if got := wrap(tc.v, tc.lo, tc.hi); got != tc.want {
			t.Errorf("wrap(%d,%d,%d) = %d, want %d", tc.v, tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestCoversAndBoxOverlaps(t *testing.T) {
	c := smallCircuit()
	p := New(c)
	p.WHi = []int{8, 8, 6}
	p.HHi = []int{8, 8, 6}

	if !p.Covers([]int{4, 4, 3}, []int{4, 4, 3}) {
		t.Error("Covers should accept the min corner")
	}
	if !p.Covers([]int{8, 8, 6}, []int{8, 8, 6}) {
		t.Error("Covers should accept the max corner")
	}
	if p.Covers([]int{9, 4, 3}, []int{4, 4, 3}) {
		t.Error("Covers should reject out-of-interval width")
	}

	q := p.Clone()
	if !p.BoxOverlaps(q) {
		t.Error("identical boxes must overlap")
	}
	// Push q's width interval of block 0 past p's.
	q.WLo[0], q.WHi[0] = 9, 12
	if p.BoxOverlaps(q) {
		t.Error("disjoint in one row means boxes must not overlap")
	}
}

func TestBoxEmptyAndVolume(t *testing.T) {
	c := smallCircuit()
	p := New(c)
	if p.BoxEmpty() {
		t.Error("point box is not empty")
	}
	if got := p.Log2BoxVolume(); got != 0 {
		t.Errorf("point box volume log2 = %g, want 0", got)
	}
	p.WHi[0] = p.WLo[0] + 3 // 4 values
	p.HHi[0] = p.HLo[0] + 1 // 2 values
	if got := p.Log2BoxVolume(); got != 3 {
		t.Errorf("log2 volume = %g, want 3 (4*2=8)", got)
	}
	p.WLo[1] = p.WHi[1] + 1
	if !p.BoxEmpty() {
		t.Error("inverted interval should make box empty")
	}
}

func TestCheckLegalDetectsViolations(t *testing.T) {
	c := smallCircuit()
	fp := geom.NewRect(0, 0, 100, 100)
	p := New(c)
	p.X = []int{0, 2, 50}
	p.Y = []int{0, 2, 50}
	if err := p.CheckLegal(fp); err == nil {
		t.Error("overlapping blocks should fail CheckLegal")
	}
	p.X = []int{0, 20, 98}
	p.Y = []int{0, 20, 98}
	if err := p.CheckLegal(fp); err == nil {
		t.Error("out-of-bounds block should fail CheckLegal")
	}
}

func TestCheckIntervalsWithinDetectsViolations(t *testing.T) {
	c := smallCircuit()
	p := New(c)
	p.WHi[0] = c.Blocks[0].WMax + 5
	if err := p.CheckIntervalsWithin(c); err == nil {
		t.Error("interval beyond designer max should fail")
	}
}

func TestSwapBlocks(t *testing.T) {
	c := smallCircuit()
	fp := geom.NewRect(0, 0, 100, 100)
	p := New(c)
	p.X = []int{0, 30, 60}
	p.Y = []int{0, 30, 60}
	if !p.SwapBlocks(c, fp, 0, 1) {
		t.Fatal("legal swap rejected")
	}
	if p.X[0] != 30 || p.X[1] != 0 {
		t.Error("swap did not exchange anchors")
	}
	// A swap that pushes a big block out of bounds must be rolled back.
	p2 := New(c)
	p2.X = []int{0, 97, 50}
	p2.Y = []int{0, 97, 50}
	// block 0 has WMin 4: at (97,97) it would exceed the 100-wide floorplan.
	if p2.SwapBlocks(c, fp, 0, 1) {
		t.Error("out-of-bounds swap accepted")
	}
	if p2.X[0] != 0 || p2.X[1] != 97 {
		t.Error("rejected swap did not roll back")
	}
}

func TestDefaultFloorplanFitsWorstBlock(t *testing.T) {
	for _, name := range circuits.Names() {
		c := circuits.MustByName(name)
		fp := DefaultFloorplan(c)
		for _, b := range c.Blocks {
			if b.WMax > fp.W() || b.HMax > fp.H() {
				t.Errorf("%s: floorplan %v cannot hold block %s at max", name, fp, b.Name)
			}
		}
		if fp.Area() < c.MaxArea() {
			t.Errorf("%s: floorplan area %d below total max block area %d",
				name, fp.Area(), c.MaxArea())
		}
	}
}

func TestResetToMin(t *testing.T) {
	c := smallCircuit()
	fp := DefaultFloorplan(c)
	rng := rand.New(rand.NewSource(9))
	p, err := RandomLegal(c, fp, rng)
	if err != nil {
		t.Fatal(err)
	}
	p.Expand(c, fp, 1)
	p.AvgCost, p.BestCost = 5, 3
	p.BestW = []int{4, 4, 3}
	p.ResetToMin(c)
	for i, blk := range c.Blocks {
		if p.WHi[i] != blk.WMin || p.HHi[i] != blk.HMin {
			t.Errorf("block %d not reset to min", i)
		}
	}
	if p.AvgCost != 0 || p.BestCost != 0 || p.BestW != nil {
		t.Error("costs not cleared by ResetToMin")
	}
}
