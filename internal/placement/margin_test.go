package placement

import (
	"math/rand"
	"testing"

	"mps/internal/geom"
	"mps/internal/netlist"
)

// marginCircuit returns two fixed-size blocks where block "a" demands a
// 3-unit spacing halo.
func marginCircuit() *netlist.Circuit {
	b := netlist.NewBuilder("halo")
	b.Block("a", 10, 10, 10, 10)
	b.Block("b", 10, 10, 10, 10)
	c := b.MustBuild()
	c.Blocks[0].Margin = 3
	return c
}

func TestCheckLegalEnforcesClearance(t *testing.T) {
	c := marginCircuit()
	fp := geom.NewRect(0, 0, 100, 100)
	p := New(c)

	// Abutting blocks: legal without margins, illegal with a=3.
	p.X = []int{0, 10}
	p.Y = []int{0, 0}
	if err := p.CheckLegal(fp); err == nil {
		t.Error("abutting blocks should violate the 3-unit halo")
	}
	// Two units apart: still inside the halo.
	p.X = []int{0, 12}
	if err := p.CheckLegal(fp); err == nil {
		t.Error("2-unit gap should violate the 3-unit halo")
	}
	// Three units apart: exactly at clearance (inflated rect abuts).
	p.X = []int{0, 13}
	if err := p.CheckLegal(fp); err != nil {
		t.Errorf("3-unit gap should satisfy the halo: %v", err)
	}
}

func TestClearanceIsMaxOfPair(t *testing.T) {
	b := netlist.NewBuilder("pairhalo")
	b.Block("a", 5, 5, 5, 5)
	b.Block("b", 5, 5, 5, 5)
	c := b.MustBuild()
	c.Blocks[0].Margin = 1
	c.Blocks[1].Margin = 4
	p := New(c)
	if got := p.clearance(0, 1); got != 4 {
		t.Errorf("clearance = %d, want max(1,4) = 4", got)
	}
}

func TestExpandStopsAtHalo(t *testing.T) {
	b := netlist.NewBuilder("expandhalo")
	b.Block("a", 4, 50, 4, 4)
	b.Block("b", 4, 4, 4, 4)
	c := b.MustBuild()
	c.Blocks[0].Margin = 5
	fp := geom.NewRect(0, 0, 100, 100)
	p := New(c)
	p.X = []int{0, 30}
	p.Y = []int{0, 0}
	p.Expand(c, fp, 1)
	// Block a grows rightward from x=0 toward b at x=30; it must stop 5
	// units short: max width 30 - 5 = 25.
	if p.WHi[0] > 25 {
		t.Errorf("expanded width %d enters the 5-unit halo before x=30", p.WHi[0])
	}
	if p.WHi[0] < 20 {
		t.Errorf("expanded width %d stopped unreasonably early", p.WHi[0])
	}
}

func TestRandomLegalRespectsHalos(t *testing.T) {
	c := marginCircuit()
	fp := geom.NewRect(0, 0, 60, 60)
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 50; trial++ {
		p, err := RandomLegal(c, fp, rng)
		if err != nil {
			t.Fatal(err)
		}
		if err := p.CheckLegal(fp); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestPerturbRespectsHalos(t *testing.T) {
	c := marginCircuit()
	fp := geom.NewRect(0, 0, 60, 60)
	rng := rand.New(rand.NewSource(4))
	p, err := RandomLegal(c, fp, rng)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 60; i++ {
		p.Perturb(c, fp, rng, 1.0, 20)
		if err := p.CheckLegal(fp); err != nil {
			t.Fatalf("perturb %d: %v", i, err)
		}
	}
}

func TestCloneCopiesMargins(t *testing.T) {
	c := marginCircuit()
	p := New(c)
	q := p.Clone()
	if q.clearance(0, 1) != 3 {
		t.Error("clone lost margins")
	}
	q.margins[0] = 9
	if p.margins[0] == 9 {
		t.Error("clone shares margin slice")
	}
}

func TestMarginFreeCircuitHasNilMargins(t *testing.T) {
	b := netlist.NewBuilder("plain")
	b.Block("a", 4, 8, 4, 8)
	b.Block("b", 4, 8, 4, 8)
	c := b.MustBuild()
	p := New(c)
	if p.margins != nil {
		t.Error("zero-margin circuit should not allocate margin slice")
	}
	if p.clearance(0, 1) != 0 {
		t.Error("clearance should be 0 without margins")
	}
}

func TestNegativeMarginRejected(t *testing.T) {
	blk := &netlist.Block{Name: "x", WMin: 1, WMax: 2, HMin: 1, HMax: 2, Margin: -1}
	if err := blk.Validate(); err == nil {
		t.Error("negative margin should fail validation")
	}
}
