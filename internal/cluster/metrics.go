package cluster

import "math"

// GaugeValue maps the breaker position onto a stable numeric scale for
// metric export: 0 closed (healthy), 1 half-open (probing), 2 open
// (refusing). Ordered by badness so `max by (peer)` alerts read naturally.
func (s BreakerState) GaugeValue() float64 {
	switch s {
	case BreakerHalfOpen:
		return 1
	case BreakerOpen:
		return 2
	default:
		return 0
	}
}

// BreakerGauges returns peer → numeric breaker state for every peer this
// node has talked to (peers never contacted have no breaker and are
// omitted — absence of the series means absence of traffic, not health).
func (c *Cluster) BreakerGauges() map[string]float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	out := make(map[string]float64, len(c.breakers))
	for p, b := range c.breakers {
		out[p] = b.State().GaugeValue()
	}
	return out
}

// HotFanouts returns how many reads RouteRead spread to the replica set
// instead of the owner — the hot-key fan-out counter. Deliberately not
// part of Stats: the /healthz JSON shape is frozen for existing scripts.
func (c *Cluster) HotFanouts() int64 { return c.hotFanouts.Load() }

// Shares returns each node's fraction of the ring's hash circle — the
// expected share of keys it owns. Computed from vnode arc lengths, so the
// values sum to 1 and expose placement skew directly (a healthy ring
// reads ≈1/N per node; see DefaultVNodes for the expected deviation).
func (r *Ring) Shares() map[string]float64 {
	arcs := make([]uint64, len(r.nodes))
	for i, p := range r.points {
		// Keys in (hash[i-1], hash[i]] belong to point i; for i = 0 the
		// uint64 subtraction wraps, which is exactly the wrap-around arc.
		prev := r.points[(i+len(r.points)-1)%len(r.points)].hash
		arcs[p.node] += p.hash - prev
	}
	out := make(map[string]float64, len(r.nodes))
	for i, name := range r.nodes {
		out[name] = float64(arcs[i]) / math.Pow(2, 64)
	}
	return out
}
