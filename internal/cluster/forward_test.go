package cluster

import (
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

func TestForwardHeaderRoundTrip(t *testing.T) {
	f := Forward{From: "http://10.0.0.1:8723", Hop: 1}
	v, err := EncodeForward(f)
	if err != nil {
		t.Fatal(err)
	}
	got, present, err := ParseForward(v)
	if err != nil || !present {
		t.Fatalf("parse %q: present=%v err=%v", v, present, err)
	}
	if got != f {
		t.Fatalf("round trip %q: got %+v want %+v", v, got, f)
	}
}

func TestForwardHeaderAbsent(t *testing.T) {
	f, present, err := ParseForward("")
	if present || err != nil || f != (Forward{}) {
		t.Fatalf("empty header: %+v present=%v err=%v", f, present, err)
	}
}

// TestForwardHeaderMalformed: every malformed value must parse as
// present=true with an error — present is what blocks re-forwarding, so
// junk must still count as "already forwarded".
func TestForwardHeaderMalformed(t *testing.T) {
	for _, v := range []string{
		"v2;hop=1;from=a",
		"v1;hop=0;from=a",
		"v1;hop=99;from=a",
		"v1;hop=-1;from=a",
		"v1;hop=x;from=a",
		"v1;from=a",
		"v1;hop=1",
		"v1;hop=1;from=",
		"v1;hop=1;from=a;b",
		"garbage",
		"v1;hop=1;from=a\rX: y",
		strings.Repeat("v", 5000),
	} {
		f, present, err := ParseForward(v)
		if err == nil {
			t.Errorf("ParseForward(%q) accepted (%+v)", v, f)
		}
		if !present {
			t.Errorf("ParseForward(%q): present=false — a present header must always read as forwarded", v)
		}
	}
}

func TestEncodeForwardRejectsBadInput(t *testing.T) {
	for _, f := range []Forward{
		{From: "a", Hop: 0},
		{From: "a", Hop: MaxHops + 1},
		{From: "", Hop: 1},
		{From: "a;b", Hop: 1},
		{From: "a\nb", Hop: 1},
	} {
		if v, err := EncodeForward(f); err == nil {
			t.Errorf("EncodeForward(%+v) = %q, want error", f, v)
		}
	}
}

// clusterForPeer builds a 2-node cluster whose non-self peer is the given
// URL, with test-scale timeouts.
func clusterForPeer(t *testing.T, peer string, cfg Config) *Cluster {
	t.Helper()
	cfg.Self = "http://127.0.0.1:1"
	cfg.Peers = []string{cfg.Self, peer}
	if cfg.ForwardTimeout == 0 {
		cfg.ForwardTimeout = 200 * time.Millisecond
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = 5 * time.Millisecond
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

// TestDoRetriesTransportErrors: connection failures retry with doubling
// backoff up to the bound, then surface the last error.
func TestDoRetriesTransportErrors(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) < 3 {
			// Drop the connection without a response: a transport error
			// for the client, so the attempt retries.
			hj := w.(http.Hijacker)
			conn, _, _ := hj.Hijack()
			conn.Close()
			return
		}
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok")
	}))
	defer ts.Close()

	c := clusterForPeer(t, ts.URL, Config{Retries: 2})
	start := time.Now()
	resp, err := c.Do(context.Background(), ts.URL, http.MethodGet, "/x", nil, nil, 0)
	if err != nil {
		t.Fatalf("Do after retries: %v", err)
	}
	defer resp.Body.Close()
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
	// Two retries with 5ms then 10ms backoff: at least 15ms elapsed.
	if elapsed := time.Since(start); elapsed < 15*time.Millisecond {
		t.Fatalf("retries completed in %s — backoff not applied", elapsed)
	}
}

// TestDoHTTPErrorIsAnAnswer: a 500 from the peer is returned, not
// retried — the owner answered; masking its error as unreachability
// would mis-route the fallback.
func TestDoHTTPErrorIsAnAnswer(t *testing.T) {
	var calls atomic.Int32
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		http.Error(w, "boom", http.StatusInternalServerError)
	}))
	defer ts.Close()

	c := clusterForPeer(t, ts.URL, Config{Retries: 2})
	resp, err := c.Do(context.Background(), ts.URL, http.MethodGet, "/x", nil, nil, 0)
	if err != nil {
		t.Fatalf("Do: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError {
		t.Fatalf("status %d, want 500 relayed", resp.StatusCode)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("server saw %d attempts, want 1 (HTTP errors are answers)", got)
	}
}

// TestDoTimesOutHangingPeer: a peer that never answers costs one
// per-attempt timeout per attempt, then an error — never a hang.
func TestDoTimesOutHangingPeer(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		<-r.Context().Done()
	}))
	defer ts.Close()

	c := clusterForPeer(t, ts.URL, Config{Retries: -1, ForwardTimeout: 50 * time.Millisecond})
	start := time.Now()
	_, err := c.Do(context.Background(), ts.URL, http.MethodGet, "/x", nil, nil, 0)
	if err == nil {
		t.Fatal("Do against hanging peer succeeded")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("timeout took %s, want ~50ms", elapsed)
	}
}

// TestDoBreakerTripsAndSkips: repeated failures trip the per-peer
// breaker; subsequent calls fail with ErrPeerDown without a network
// round trip.
func TestDoBreakerTripsAndSkips(t *testing.T) {
	peer := "http://127.0.0.1:9" // discard port: connections fail fast
	c := clusterForPeer(t, peer, Config{Retries: -1, BreakerThreshold: 2, BreakerCooldown: time.Hour})
	for i := 0; i < 2; i++ {
		if _, err := c.Do(context.Background(), peer, http.MethodGet, "/x", nil, nil, 0); err == nil {
			t.Fatal("Do against dead peer succeeded")
		}
	}
	_, err := c.Do(context.Background(), peer, http.MethodGet, "/x", nil, nil, 0)
	if !errors.Is(err, ErrPeerDown) {
		t.Fatalf("tripped breaker returned %v, want ErrPeerDown", err)
	}
	if st := c.Stats(); st.Breakers[peer] != BreakerOpen || st.BreakerSkips != 1 {
		t.Fatalf("stats after trip: %+v", st)
	}
}

// TestRouteReadFansOutWhenHot: cold keys route to the owner; past the
// hot threshold the replica set (and only the replica set) serves reads.
func TestRouteReadFansOutWhenHot(t *testing.T) {
	nodes := testNodes(4)
	c, err := New(Config{
		Self:         nodes[0],
		Peers:        nodes,
		Replicas:     2,
		HotThreshold: 10,
		HotWindow:    time.Hour,
	})
	if err != nil {
		t.Fatal(err)
	}
	key := "circ01|seed=1|it=100|bdio=200|chains=1|maxp=0|backup=tree"
	owner := c.Owner(key)
	reps := map[string]bool{}
	for _, n := range c.Replicas(key) {
		reps[n] = true
	}
	targets := map[string]bool{}
	for i := 0; i < 200; i++ {
		tgt := c.RouteRead(key)
		targets[tgt] = true
		if i < 9 && tgt != owner {
			t.Fatalf("read %d routed to %s before hot threshold (owner %s)", i, tgt, owner)
		}
		if !reps[tgt] {
			t.Fatalf("read routed to %s, outside replica set %v", tgt, c.Replicas(key))
		}
	}
	if len(targets) < 2 {
		t.Fatalf("hot key never fanned out: all 200 reads hit %v", targets)
	}
}
