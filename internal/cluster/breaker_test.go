package cluster

import (
	"testing"
	"time"
)

// fakeClock drives a breaker without sleeping.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newTestBreaker(threshold int, cooldown time.Duration) (*Breaker, *fakeClock) {
	b := NewBreaker(threshold, cooldown)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

func TestBreakerTripsAfterThreshold(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	for i := 0; i < 2; i++ {
		if !b.Allow() {
			t.Fatalf("breaker refused before threshold (failure %d)", i)
		}
		b.Failure()
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %s after 2 failures, want closed", b.State())
	}
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatalf("state %s after 3rd failure, want open", b.State())
	}
	if b.Allow() {
		t.Fatal("open breaker allowed a request inside cooldown")
	}
}

func TestBreakerSuccessResetsCount(t *testing.T) {
	b, _ := newTestBreaker(3, time.Second)
	b.Failure()
	b.Failure()
	b.Success()
	b.Failure()
	b.Failure()
	if b.State() != BreakerClosed {
		t.Fatal("success did not reset the consecutive-failure count")
	}
}

func TestBreakerHalfOpenProbe(t *testing.T) {
	b, clk := newTestBreaker(1, time.Second)
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("threshold-1 breaker did not trip")
	}
	clk.advance(1500 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("cooldown elapsed but probe refused")
	}
	// Only one probe at a time.
	if b.Allow() {
		t.Fatal("second concurrent probe allowed")
	}
	// Failed probe re-opens and restarts the cooldown.
	b.Failure()
	if b.State() != BreakerOpen {
		t.Fatal("failed probe did not re-open")
	}
	if b.Allow() {
		t.Fatal("re-opened breaker allowed a request immediately")
	}
	// Successful probe closes.
	clk.advance(1500 * time.Millisecond)
	if !b.Allow() {
		t.Fatal("second probe refused")
	}
	b.Success()
	if b.State() != BreakerClosed {
		t.Fatal("successful probe did not close the breaker")
	}
	if !b.Allow() {
		t.Fatal("closed breaker refused a request")
	}
}
