package cluster

import (
	"strings"
	"testing"
)

// FuzzClusterConfig feeds arbitrary bytes to the peers-file parser (which
// subsumes the flag parser — both funnel into parsePeerFields /
// NormalizePeerURL). Contract: never panic; on success every peer is a
// canonical base URL with no duplicates, re-parses to itself (the
// canonical form is a fixed point, so one address can never become two
// ring nodes), and the set builds a valid ring.
func FuzzClusterConfig(f *testing.F) {
	f.Add([]byte("http://a:8723\nhttp://b:8724\n"))
	f.Add([]byte("# comment\n\nb:2 # inline\nhttps://c:3"))
	f.Add([]byte("http://a:1,http://b:2"))
	f.Add([]byte("http://u:p@a:1/path?q=1#f"))
	f.Add([]byte("ftp://a:1\nhttp://a\nhttp://:1"))
	f.Add([]byte(strings.Repeat("http://a:1\n", 2000)))
	f.Fuzz(func(t *testing.T, data []byte) {
		peers, err := ParsePeersFile(data)
		if err != nil {
			return
		}
		if len(peers) == 0 || len(peers) > maxPeers {
			t.Fatalf("accepted peer set of size %d", len(peers))
		}
		seen := map[string]bool{}
		for _, p := range peers {
			if seen[p] {
				t.Fatalf("accepted duplicate peer %q", p)
			}
			seen[p] = true
			canon, err := NormalizePeerURL(p)
			if err != nil {
				t.Fatalf("accepted peer %q does not re-normalize: %v", p, err)
			}
			if canon != p {
				t.Fatalf("accepted peer %q is not canonical (re-normalizes to %q)", p, canon)
			}
		}
		ring, err := NewRing(peers, 4)
		if err != nil {
			t.Fatalf("accepted peer set does not build a ring: %v", err)
		}
		if owner := ring.Owner("some|key"); !seen[owner] {
			t.Fatalf("ring owner %q not in peer set", owner)
		}
	})
}

// FuzzForwardDecode feeds arbitrary header values to the forward-mark
// decoder. Contract: never panic; any non-empty value reads as present
// (the loop guard — junk must still count as "already forwarded"); on
// success the decoded mark is in range, re-encodes, and round-trips.
func FuzzForwardDecode(f *testing.F) {
	f.Add("")
	f.Add("v1;hop=1;from=http://a:8723")
	f.Add("v1;hop=4;from=x")
	f.Add("v1;hop=0;from=x")
	f.Add("v1;hop=1;from=a;b")
	f.Add("v2;hop=1;from=a")
	f.Add("garbage")
	f.Add("v1;hop=00000000000000000000001;from=a")
	f.Add(strings.Repeat(";", 4097))
	f.Fuzz(func(t *testing.T, v string) {
		fw, present, err := ParseForward(v)
		if v == "" {
			if present || err != nil {
				t.Fatalf("empty value: present=%v err=%v", present, err)
			}
			return
		}
		if !present {
			t.Fatalf("non-empty value %q parsed as not-forwarded — forwarding loop possible", v)
		}
		if err != nil {
			return
		}
		if fw.Hop < 1 || fw.Hop > MaxHops || fw.From == "" {
			t.Fatalf("accepted out-of-range mark %+v from %q", fw, v)
		}
		enc, err := EncodeForward(fw)
		if err != nil {
			t.Fatalf("accepted mark %+v does not re-encode: %v", fw, err)
		}
		fw2, present2, err := ParseForward(enc)
		if err != nil || !present2 || fw2 != fw {
			t.Fatalf("round trip %q -> %+v -> %q -> %+v (err %v)", v, fw, enc, fw2, err)
		}
	})
}
