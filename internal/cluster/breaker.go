package cluster

import (
	"sync"
	"time"
)

// BreakerState is a circuit breaker's position.
type BreakerState string

const (
	// BreakerClosed: requests flow; failures are counted.
	BreakerClosed BreakerState = "closed"
	// BreakerOpen: requests are refused until the cooldown elapses.
	BreakerOpen BreakerState = "open"
	// BreakerHalfOpen: one probe request is allowed through; its outcome
	// closes or re-opens the breaker.
	BreakerHalfOpen BreakerState = "half-open"
)

// Breaker is a per-peer circuit breaker. Threshold consecutive failures
// trip it open; while open every Allow is refused (so a dead peer costs a
// map lookup, not a connect timeout, on every forwarded request); after
// Cooldown one probe is let through half-open, and its result decides
// whether traffic resumes. Safe for concurrent use.
type Breaker struct {
	threshold int
	cooldown  time.Duration
	now       func() time.Time // injectable for tests

	mu       sync.Mutex
	state    BreakerState
	failures int       // consecutive failures while closed
	openedAt time.Time // when the breaker last tripped
	probing  bool      // a half-open probe is in flight
}

// DefaultBreakerThreshold and DefaultBreakerCooldown are the zero-config
// trip point: three consecutive failures open the breaker for 5 seconds.
const (
	DefaultBreakerThreshold = 3
	DefaultBreakerCooldown  = 5 * time.Second
)

// NewBreaker returns a closed breaker. Non-positive threshold or cooldown
// use the defaults.
func NewBreaker(threshold int, cooldown time.Duration) *Breaker {
	if threshold <= 0 {
		threshold = DefaultBreakerThreshold
	}
	if cooldown <= 0 {
		cooldown = DefaultBreakerCooldown
	}
	return &Breaker{
		threshold: threshold,
		cooldown:  cooldown,
		now:       time.Now,
		state:     BreakerClosed,
	}
}

// Allow reports whether a request may proceed. While open it returns
// false until the cooldown has elapsed, then admits exactly one probe
// (half-open); concurrent callers during the probe are refused so a
// recovering peer is not stampeded.
func (b *Breaker) Allow() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return true
	case BreakerOpen:
		if b.now().Sub(b.openedAt) < b.cooldown {
			return false
		}
		b.state = BreakerHalfOpen
		b.probing = true
		return true
	default: // half-open
		if b.probing {
			return false
		}
		b.probing = true
		return true
	}
}

// Success records a completed request: the breaker closes and the failure
// count resets.
func (b *Breaker) Success() {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.state = BreakerClosed
	b.failures = 0
	b.probing = false
}

// Failure records a failed request. The threshold'th consecutive failure
// — or any failed half-open probe — trips the breaker open and restarts
// the cooldown.
func (b *Breaker) Failure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.trip()
		return
	}
	b.failures++
	if b.failures >= b.threshold {
		b.trip()
	}
}

// trip opens the breaker. Callers must hold b.mu.
func (b *Breaker) trip() {
	b.state = BreakerOpen
	b.openedAt = b.now()
	b.failures = 0
	b.probing = false
}

// State returns the breaker's current position (open breakers past their
// cooldown still report open until a probe is admitted).
func (b *Breaker) State() BreakerState {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}
