package cluster

import (
	"reflect"
	"testing"
)

func TestParsePeers(t *testing.T) {
	got, err := ParsePeers(" http://a:1 , b:2,https://c:3 ")
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:1", "http://b:2", "https://c:3"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
}

func TestParsePeersRejects(t *testing.T) {
	for _, s := range []string{
		"",
		"   ",
		"http://a:1,,http://b:2",
		"http://a:1,http://a:1",   // duplicate
		"http://a:1,a:1",          // duplicate after normalization
		"http://a:1/path",         // path not allowed
		"http://a:1?q=1",          // query not allowed
		"http://u@a:1",            // userinfo not allowed
		"ftp://a:1",               // bad scheme
		"http://a",                // missing port
		"http://:1",               // missing host
		"http://a:1,http://b c:2", // whitespace inside
	} {
		if got, err := ParsePeers(s); err == nil {
			t.Errorf("ParsePeers(%q) = %v, want error", s, got)
		}
	}
}

func TestParsePeersFile(t *testing.T) {
	data := []byte(`# fleet
http://a:8723

b:8724   # second node
  https://c:8725
`)
	got, err := ParsePeersFile(data)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"http://a:8723", "http://b:8724", "https://c:8725"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("got %v want %v", got, want)
	}
	if _, err := ParsePeersFile([]byte("# only comments\n\n")); err == nil {
		t.Fatal("comment-only file accepted")
	}
}

func TestNewValidatesSelf(t *testing.T) {
	if _, err := New(Config{Self: "http://a:1", Peers: []string{"http://b:2"}}); err == nil {
		t.Fatal("self outside the peer set accepted")
	}
	// Self in a different spelling still matches after normalization.
	c, err := New(Config{Self: "a:1", Peers: []string{"http://a:1", "http://b:2"}})
	if err != nil {
		t.Fatal(err)
	}
	if c.Self() != "http://a:1" {
		t.Fatalf("self not normalized: %s", c.Self())
	}
}
