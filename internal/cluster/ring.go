// Package cluster turns a set of independent mpsd daemons into one
// serving fleet. It owns the three mechanisms that need no knowledge of
// structures or annealing: a consistent-hash ring mapping canonical spec
// keys to owning nodes (with replica sets for hot-key read fan-out), a
// forwarding client with per-peer circuit breakers and bounded
// retry/backoff, and the wire marking that keeps forwarded requests to a
// single hop. The serve package decides *what* to route; this package
// decides *where* and *whether the peer is worth talking to*.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// Ring is a consistent-hash ring over a static node set. Each node is
// hashed at VNodes points on a uint64 circle; a key is owned by the node
// whose point is the first at or after the key's hash. Virtual nodes keep
// the per-node key share close to uniform, and adding or removing one
// node remaps only the keys that hashed to that node's points — the
// minimal-movement property the rebalance path depends on.
//
// A Ring is immutable after New and safe for concurrent use.
type Ring struct {
	nodes  []string // distinct node names (peer base URLs), sorted
	points []point  // vnode points sorted by hash
}

type point struct {
	hash uint64
	node int32 // index into nodes
}

// DefaultVNodes is the virtual-node count used when NewRing is given a
// non-positive one. Per-node share deviation scales as 1/sqrt(VNodes)
// (each node's arc total is a sum of VNodes exponential-ish gaps): 1024
// points per node puts one standard deviation at ~3%, keeping the
// measured share within ±20% of uniform across 2–16 node fleets (see
// TestRingDistribution). The full 16-node ring is 16K points — 256 KiB,
// built once at startup, binary-searched per ownership check.
const DefaultVNodes = 1024

// NewRing builds a ring over the given distinct node names. The order of
// the input does not matter: nodes are sorted first, so two processes
// configured with the same peer set in any order agree on every owner.
func NewRing(nodes []string, vnodes int) (*Ring, error) {
	if len(nodes) == 0 {
		return nil, fmt.Errorf("cluster: ring needs at least one node")
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	sorted := append([]string(nil), nodes...)
	sort.Strings(sorted)
	for i := 1; i < len(sorted); i++ {
		if sorted[i] == sorted[i-1] {
			return nil, fmt.Errorf("cluster: duplicate node %q", sorted[i])
		}
	}
	r := &Ring{
		nodes:  sorted,
		points: make([]point, 0, len(sorted)*vnodes),
	}
	for ni, name := range sorted {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, point{
				hash: hashKey(fmt.Sprintf("%s#%d", name, v)),
				node: int32(ni),
			})
		}
	}
	sort.Slice(r.points, func(i, k int) bool {
		if r.points[i].hash != r.points[k].hash {
			return r.points[i].hash < r.points[k].hash
		}
		// Identical hashes (vanishingly rare) tie-break by node index so
		// ownership stays deterministic across processes.
		return r.points[i].node < r.points[k].node
	})
	return r, nil
}

// hashKey is the ring's hash: FNV-64a with a splitmix64-style finalizer.
// Not cryptographic — the node set is operator-configured, not
// adversarial — but fast, stable across processes and architectures
// (what ownership agreement needs), and the finalizer fixes FNV's weak
// avalanche on near-identical inputs like "node#17" vs "node#18", which
// otherwise clumps vnode points and skews the key distribution.
func hashKey(key string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(key))
	return mix64(h.Sum64())
}

// mix64 is the splitmix64 finalizer: a bijective scramble whose output
// bits each depend on every input bit.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Nodes returns the ring's node names, sorted.
func (r *Ring) Nodes() []string { return append([]string(nil), r.nodes...) }

// Len returns the node count.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the node owning key: the node of the first vnode point at
// or after the key's hash, wrapping at the top of the circle.
func (r *Ring) Owner(key string) string {
	return r.nodes[r.points[r.search(hashKey(key))].node]
}

// search returns the index of the first point at or after h (wrapping).
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		return 0
	}
	return i
}

// Replicas returns the first n distinct nodes walking the circle from the
// key's hash — the owner first, then the read-replica candidates for a
// hot key. n is clamped to the node count, so Replicas(key, len(nodes))
// is every node in ownership-preference order.
func (r *Ring) Replicas(key string, n int) []string {
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	if n <= 0 {
		return nil
	}
	out := make([]string, 0, n)
	seen := make(map[int32]bool, n)
	start := r.search(hashKey(key))
	for i := 0; i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, r.nodes[p.node])
		}
	}
	return out
}
