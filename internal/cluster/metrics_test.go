package cluster

import (
	"math"
	"testing"
	"time"
)

func TestRingShares(t *testing.T) {
	nodes := []string{"http://a:1", "http://b:1", "http://c:1", "http://d:1"}
	ring, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	shares := ring.Shares()
	if len(shares) != len(nodes) {
		t.Fatalf("shares has %d nodes, want %d", len(shares), len(nodes))
	}
	var sum float64
	for _, n := range nodes {
		s := shares[n]
		// At DefaultVNodes the per-node share is ≈1/N within ±20% (the same
		// bound TestRingDistribution pins on measured key ownership).
		if s < 0.25*0.8 || s > 0.25*1.2 {
			t.Errorf("share[%s] = %v, want ≈0.25", n, s)
		}
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("shares sum to %v, want 1", sum)
	}
}

func TestBreakerGaugeValues(t *testing.T) {
	for _, tc := range []struct {
		state BreakerState
		want  float64
	}{
		{BreakerClosed, 0},
		{BreakerHalfOpen, 1},
		{BreakerOpen, 2},
	} {
		if got := tc.state.GaugeValue(); got != tc.want {
			t.Errorf("GaugeValue(%s) = %v, want %v", tc.state, got, tc.want)
		}
	}
}

func TestBreakerGaugesAndHotFanouts(t *testing.T) {
	self := "http://a:1"
	c, err := New(Config{
		Self: self, Peers: []string{self, "http://b:1"},
		Replicas: 2, HotThreshold: 3, HotWindow: time.Minute,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g := c.BreakerGauges(); len(g) != 0 {
		t.Fatalf("untouched cluster reports breakers %v", g)
	}
	// Trip b's breaker through the same path Do uses.
	for i := 0; i < DefaultBreakerThreshold; i++ {
		c.MarkFailure("http://b:1")
	}
	g := c.BreakerGauges()
	if g["http://b:1"] != 2 {
		t.Fatalf("tripped breaker gauge = %v, want 2 (open)", g)
	}
	// Reads below the hot threshold never fan out; at the threshold the
	// replica pick is taken and counted.
	key := "some|key"
	for i := 0; i < 2; i++ {
		c.RouteRead(key)
	}
	if c.HotFanouts() != 0 {
		t.Fatalf("cold key fanned out: %d", c.HotFanouts())
	}
	for i := 0; i < 5; i++ {
		c.RouteRead(key)
	}
	if c.HotFanouts() == 0 {
		t.Fatalf("hot key never fanned out")
	}
}
