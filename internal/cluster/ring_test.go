package cluster

import (
	"fmt"
	"math/rand"
	"testing"
)

// seededKeys returns n deterministic spec-key-shaped strings. Shapes
// mirror real canonical keys so the distribution claim is about the
// workload we actually hash, not random bytes.
func seededKeys(seed int64, n int) []string {
	rng := rand.New(rand.NewSource(seed))
	circuits := []string{"circ01", "circ02", "TwoStageOpamp", "Mixer", "tso-cascode"}
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("%s|seed=%d|it=%d|bdio=%d|chains=%d|maxp=0|backup=tree",
			circuits[rng.Intn(len(circuits))], rng.Int63n(1<<32), 100+rng.Intn(5000), 200+rng.Intn(5000), 1+rng.Intn(4))
	}
	return keys
}

func testNodes(n int) []string {
	nodes := make([]string, n)
	for i := range nodes {
		nodes[i] = fmt.Sprintf("http://10.0.0.%d:8723", i+1)
	}
	return nodes
}

// TestRingDistribution: across 2–16 nodes, each node's share of a seeded
// key set stays within ±20% of uniform — the property that makes static
// sharding a capacity plan rather than a lottery.
func TestRingDistribution(t *testing.T) {
	const nKeys = 20000
	for _, seed := range []int64{1, 42, 7777} {
		keys := seededKeys(seed, nKeys)
		for nodes := 2; nodes <= 16; nodes++ {
			r, err := NewRing(testNodes(nodes), 0)
			if err != nil {
				t.Fatal(err)
			}
			counts := map[string]int{}
			for _, k := range keys {
				counts[r.Owner(k)]++
			}
			uniform := float64(nKeys) / float64(nodes)
			for node, got := range counts {
				dev := (float64(got) - uniform) / uniform
				if dev < -0.20 || dev > 0.20 {
					t.Errorf("seed %d, %d nodes: %s owns %d keys, %.1f%% off uniform %.0f",
						seed, nodes, node, got, 100*dev, uniform)
				}
			}
			if len(counts) != nodes {
				t.Errorf("seed %d, %d nodes: only %d nodes own keys", seed, nodes, len(counts))
			}
		}
	}
}

// TestRingMinimalMovement: removing one node remaps only the keys that
// node owned — every key owned by a surviving node keeps its owner. This
// is the invariant that bounds rebalance traffic to 1/N of the keyspace.
func TestRingMinimalMovement(t *testing.T) {
	keys := seededKeys(99, 10000)
	for nodes := 3; nodes <= 16; nodes++ {
		all := testNodes(nodes)
		full, err := NewRing(all, 0)
		if err != nil {
			t.Fatal(err)
		}
		// Remove each node in turn, not just one, so the invariant is not
		// an artifact of which node was dropped.
		for drop := 0; drop < nodes; drop++ {
			var rest []string
			for i, n := range all {
				if i != drop {
					rest = append(rest, n)
				}
			}
			shrunk, err := NewRing(rest, 0)
			if err != nil {
				t.Fatal(err)
			}
			dropped := all[drop]
			moved := 0
			for _, k := range keys {
				before, after := full.Owner(k), shrunk.Owner(k)
				if before == dropped {
					moved++
					continue // must move somewhere; anywhere is legal
				}
				if before != after {
					t.Fatalf("%d nodes, dropping %s: key %q moved %s -> %s though its owner survived",
						nodes, dropped, k, before, after)
				}
			}
			if moved == 0 {
				t.Errorf("%d nodes: dropping %s moved no keys (suspicious distribution)", nodes, dropped)
			}
		}
	}
}

// TestRingOrderIndependence: two nodes configured with the same peer set
// in different orders agree on every owner.
func TestRingOrderIndependence(t *testing.T) {
	nodes := testNodes(5)
	shuffled := []string{nodes[3], nodes[0], nodes[4], nodes[2], nodes[1]}
	a, err := NewRing(nodes, 0)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewRing(shuffled, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range seededKeys(5, 2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner disagreement for %q: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
}

// TestRingReplicas: the replica set starts with the owner, contains no
// duplicates, and clamps to the node count.
func TestRingReplicas(t *testing.T) {
	r, err := NewRing(testNodes(4), 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range seededKeys(11, 500) {
		reps := r.Replicas(k, 3)
		if len(reps) != 3 {
			t.Fatalf("want 3 replicas, got %v", reps)
		}
		if reps[0] != r.Owner(k) {
			t.Fatalf("replicas %v do not start with owner %s", reps, r.Owner(k))
		}
		seen := map[string]bool{}
		for _, n := range reps {
			if seen[n] {
				t.Fatalf("duplicate replica in %v", reps)
			}
			seen[n] = true
		}
	}
	if got := r.Replicas("k", 99); len(got) != 4 {
		t.Fatalf("replicas should clamp to node count, got %v", got)
	}
	if got := r.Replicas("k", 0); got != nil {
		t.Fatalf("0 replicas should be nil, got %v", got)
	}
}

func TestRingRejectsBadInput(t *testing.T) {
	if _, err := NewRing(nil, 0); err == nil {
		t.Fatal("empty node set accepted")
	}
	if _, err := NewRing([]string{"a", "a"}, 0); err == nil {
		t.Fatal("duplicate node accepted")
	}
}
