package cluster

import (
	"fmt"
	"net/url"
	"strings"
	"time"
)

// Config describes one node's view of the fleet. Peers (including Self)
// plus VNodes determine the ring, so every node configured with the same
// peer set — in any order, from a flag or a file — agrees on every key's
// owner.
type Config struct {
	// Self is this node's advertised base URL. It must appear in Peers.
	Self string
	// Peers is the full static node set as base URLs (scheme://host:port,
	// no path), Self included.
	Peers []string
	// VNodes is the virtual-node count per peer (0 = DefaultVNodes).
	VNodes int
	// Replicas is how many nodes (owner first) may answer reads for a hot
	// key. 0 defaults to 2; 1 disables read fan-out.
	Replicas int
	// HotThreshold is the forwarded-read count per key per HotWindow above
	// which reads fan out to the replica set. 0 defaults to 64.
	HotThreshold int
	// HotWindow is the hot-key counting window. 0 defaults to 10s.
	HotWindow time.Duration
	// ForwardTimeout bounds one forwarded request attempt. Generation on
	// the owner can legitimately take minutes, so the default is generous:
	// 15 minutes. Fetches use the tighter FetchTimeout.
	ForwardTimeout time.Duration
	// FetchTimeout bounds one artifact-fetch attempt (v3 bytes off a
	// peer's disk or cache — milliseconds when healthy). 0 defaults to 30s.
	FetchTimeout time.Duration
	// Retries is how many times a failed forward attempt is retried
	// against the same target (transport errors only — an HTTP response,
	// any status, is an answer). 0 defaults to 2; negative disables.
	Retries int
	// RetryBackoff is the first retry's delay, doubling per retry.
	// 0 defaults to 100ms.
	RetryBackoff time.Duration
	// BreakerThreshold and BreakerCooldown tune the per-peer circuit
	// breakers (0 = package defaults).
	BreakerThreshold int
	BreakerCooldown  time.Duration
	// Logf, when non-nil, receives forwarding/fallback log lines.
	Logf func(format string, args ...any)
}

func (cfg Config) withDefaults() Config {
	if cfg.Replicas <= 0 {
		cfg.Replicas = 2
	}
	if cfg.HotThreshold <= 0 {
		cfg.HotThreshold = 64
	}
	if cfg.HotWindow <= 0 {
		cfg.HotWindow = 10 * time.Second
	}
	if cfg.ForwardTimeout <= 0 {
		cfg.ForwardTimeout = 15 * time.Minute
	}
	if cfg.FetchTimeout <= 0 {
		cfg.FetchTimeout = 30 * time.Second
	}
	if cfg.Retries == 0 {
		cfg.Retries = 2
	}
	if cfg.Retries < 0 {
		cfg.Retries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 100 * time.Millisecond
	}
	return cfg
}

// maxPeers bounds a parsed peer set. Far above any plausible static
// fleet; exists so a malicious peers file cannot balloon the ring.
const maxPeers = 1024

// ParsePeers parses a comma-separated peer list (the -cluster-peers flag
// form): each element a base URL, whitespace around elements ignored,
// empty elements rejected. See NormalizePeerURL for what a peer may look
// like.
func ParsePeers(s string) ([]string, error) {
	if strings.TrimSpace(s) == "" {
		return nil, fmt.Errorf("cluster: empty peer list")
	}
	return parsePeerFields(strings.Split(s, ","))
}

// ParsePeersFile parses the -cluster-peers-file format: one peer base URL
// per line, blank lines and #-comments ignored (a trailing "# ..." on a
// peer line is a comment too).
func ParsePeersFile(data []byte) ([]string, error) {
	var fields []string
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		fields = append(fields, line)
	}
	if len(fields) == 0 {
		return nil, fmt.Errorf("cluster: peers file lists no peers")
	}
	return parsePeerFields(fields)
}

// parsePeerFields normalizes and validates a peer list: every peer a
// well-formed base URL, no duplicates after normalization, bounded count.
func parsePeerFields(fields []string) ([]string, error) {
	if len(fields) > maxPeers {
		return nil, fmt.Errorf("cluster: %d peers exceeds limit %d", len(fields), maxPeers)
	}
	peers := make([]string, 0, len(fields))
	seen := make(map[string]bool, len(fields))
	for _, f := range fields {
		p, err := NormalizePeerURL(f)
		if err != nil {
			return nil, err
		}
		if seen[p] {
			return nil, fmt.Errorf("cluster: duplicate peer %s", p)
		}
		seen[p] = true
		peers = append(peers, p)
	}
	return peers, nil
}

// NormalizePeerURL validates one peer address and returns its canonical
// base-URL form. Accepted inputs: "http://host:port", "https://host:port",
// or a bare "host:port" (http assumed). Paths, queries, fragments, and
// userinfo are rejected — a peer is a daemon base address, nothing more —
// and the canonical form is what the ring hashes, so two spellings of one
// address cannot become two ring nodes.
func NormalizePeerURL(s string) (string, error) {
	s = strings.TrimSpace(s)
	if s == "" {
		return "", fmt.Errorf("cluster: empty peer address")
	}
	if strings.IndexFunc(s, func(r rune) bool { return r <= 0x20 || r == 0x7f }) >= 0 {
		return "", fmt.Errorf("cluster: peer %q contains whitespace or control bytes", truncate(s))
	}
	if !strings.Contains(s, "://") {
		s = "http://" + s
	}
	u, err := url.Parse(s)
	if err != nil {
		return "", fmt.Errorf("cluster: peer %q: %v", truncate(s), err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return "", fmt.Errorf("cluster: peer %q: scheme must be http or https", truncate(s))
	}
	if u.Host == "" || u.Hostname() == "" {
		return "", fmt.Errorf("cluster: peer %q: missing host", truncate(s))
	}
	if u.User != nil || u.Path != "" || u.RawQuery != "" || u.Fragment != "" || u.Opaque != "" {
		return "", fmt.Errorf("cluster: peer %q: must be a bare scheme://host:port base URL", truncate(s))
	}
	if u.Port() == "" {
		return "", fmt.Errorf("cluster: peer %q: missing port", truncate(s))
	}
	return u.Scheme + "://" + u.Host, nil
}
