package cluster

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"mps/internal/obs"
)

// Cluster is one node's routing brain: the ring for ownership decisions,
// a per-peer circuit breaker so a dead peer costs a map lookup instead of
// a connect timeout, a hot-key tracker for read-replica fan-out, and the
// HTTP client that carries forwarded requests with bounded retry and
// backoff. Safe for concurrent use.
type Cluster struct {
	cfg  Config
	ring *Ring
	// client carries forwarded requests. No global client timeout: each
	// Do applies the per-attempt deadline through its context, because
	// forwards (minutes of generation) and fetches (milliseconds of disk)
	// need different budgets on one connection pool.
	client *http.Client

	mu       sync.Mutex
	breakers map[string]*Breaker
	hot      map[string]*hotKey
	hotSweep time.Time
	rng      *rand.Rand // replica picks; guarded by mu

	forwards     atomic.Int64 // requests proxied to a peer
	fallbacks    atomic.Int64 // forwards that failed over to local serving
	fetches      atomic.Int64 // artifacts pulled from peers
	breakerSkips atomic.Int64 // attempts refused by an open breaker
	hotFanouts   atomic.Int64 // reads spread to replicas instead of the owner
}

// hotKey is a fixed-window per-key read counter.
type hotKey struct {
	count   int
	window  time.Time // start of the current window
	lastHot bool
}

// New validates cfg and returns a ready Cluster. Self must be one of the
// peers (after URL normalization); the peer set must be non-empty.
func New(cfg Config) (*Cluster, error) {
	cfg = cfg.withDefaults()
	self, err := NormalizePeerURL(cfg.Self)
	if err != nil {
		return nil, fmt.Errorf("cluster: self: %w", err)
	}
	cfg.Self = self
	peers, err := parsePeerFields(cfg.Peers)
	if err != nil {
		return nil, err
	}
	cfg.Peers = peers
	found := false
	for _, p := range peers {
		if p == self {
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("cluster: self %s is not in the peer set %v", self, peers)
	}
	ring, err := NewRing(peers, cfg.VNodes)
	if err != nil {
		return nil, err
	}
	return &Cluster{
		cfg:      cfg,
		ring:     ring,
		client:   &http.Client{},
		breakers: make(map[string]*Breaker),
		hot:      make(map[string]*hotKey),
		rng:      rand.New(rand.NewSource(int64(hashKey(self) ^ 0x6d707364))),
	}, nil
}

// Self returns this node's canonical base URL.
func (c *Cluster) Self() string { return c.cfg.Self }

// Peers returns the full node set, sorted.
func (c *Cluster) Peers() []string { return c.ring.Nodes() }

// Ring exposes the ownership ring (for rebalance walks and tests).
func (c *Cluster) Ring() *Ring { return c.ring }

// Owner returns the node owning key.
func (c *Cluster) Owner(key string) string { return c.ring.Owner(key) }

// Owns reports whether this node owns key.
func (c *Cluster) Owns(key string) bool { return c.ring.Owner(key) == c.cfg.Self }

// Replicas returns the key's replica set (owner first), excluding nobody.
func (c *Cluster) Replicas(key string) []string {
	return c.ring.Replicas(key, c.cfg.Replicas)
}

// RecordRead counts a read against key's hot-key window and reports
// whether the key is currently hot. Called by the owner check on every
// locally-served read and by the router on every forwarded one, so
// hotness reflects what this node actually sees.
func (c *Cluster) RecordRead(key string) bool {
	now := time.Now()
	c.mu.Lock()
	defer c.mu.Unlock()
	// Amortized sweep: drop stale windows so the map tracks live traffic,
	// not every key ever seen.
	if now.Sub(c.hotSweep) > 4*c.cfg.HotWindow {
		c.hotSweep = now
		for k, h := range c.hot {
			if now.Sub(h.window) > 2*c.cfg.HotWindow {
				delete(c.hot, k)
			}
		}
	}
	h := c.hot[key]
	if h == nil {
		h = &hotKey{window: now}
		c.hot[key] = h
	}
	if now.Sub(h.window) > c.cfg.HotWindow {
		// New window: remember whether the finished window was hot so
		// hotness does not flap at every window boundary.
		h.lastHot = h.count >= c.cfg.HotThreshold
		h.count = 0
		h.window = now
	}
	h.count++
	return h.count >= c.cfg.HotThreshold || h.lastHot
}

// RouteRead picks the node to answer a read for key: the owner, unless
// the key is hot and read fan-out is enabled, in which case a uniform
// pick from the replica set (owner included) spreads the load. The pick
// may be this node.
func (c *Cluster) RouteRead(key string) string {
	if c.cfg.Replicas <= 1 || !c.RecordRead(key) {
		return c.ring.Owner(key)
	}
	reps := c.Replicas(key)
	c.hotFanouts.Add(1)
	c.mu.Lock()
	n := reps[c.rng.Intn(len(reps))]
	c.mu.Unlock()
	return n
}

// breaker returns (creating on first use) the breaker for peer.
func (c *Cluster) breaker(peer string) *Breaker {
	c.mu.Lock()
	defer c.mu.Unlock()
	b := c.breakers[peer]
	if b == nil {
		b = NewBreaker(c.cfg.BreakerThreshold, c.cfg.BreakerCooldown)
		c.breakers[peer] = b
	}
	return b
}

// ErrPeerDown is wrapped into Do errors when the peer's breaker refuses
// the attempt without touching the network.
var ErrPeerDown = fmt.Errorf("cluster: peer breaker open")

// Do sends one HTTP request to peer with per-attempt timeout and bounded
// retry/backoff on transport errors. Any HTTP response — success or error
// status — is an answer and is returned to the caller (forwarding must
// relay the owner's 4xx/5xx verbatim, not mask it as unreachability).
// The breaker is consulted before the first byte and updated from the
// outcome; while open, Do fails in microseconds with ErrPeerDown.
//
// body may be nil; hdr entries are copied onto the request. The caller
// owns the response body.
//
// When ctx carries a trace span (obs.ContextWithSpan), every attempt
// records a child span naming the peer and the request ships an
// X-Mps-Trace header, so the remote segment nests under this exact
// network attempt — a retried forward shows each try separately.
func (c *Cluster) Do(ctx context.Context, peer, method, path string, body []byte, hdr http.Header, timeout time.Duration) (*http.Response, error) {
	br := c.breaker(peer)
	if !br.Allow() {
		c.breakerSkips.Add(1)
		return nil, fmt.Errorf("%w: %s", ErrPeerDown, peer)
	}
	if timeout <= 0 {
		timeout = c.cfg.ForwardTimeout
	}
	parent := obs.SpanFromContext(ctx)
	var lastErr error
	backoff := c.cfg.RetryBackoff
	for attempt := 0; attempt <= c.cfg.Retries; attempt++ {
		if attempt > 0 {
			select {
			case <-time.After(backoff):
			case <-ctx.Done():
				br.Failure()
				return nil, fmt.Errorf("cluster: forward to %s: %w (last error: %v)", peer, ctx.Err(), lastErr)
			}
			backoff *= 2
		}
		att := parent.StartChild()
		att.SetRemote(peer)
		resp, err := c.attempt(att, ctx, peer, method, path, body, hdr, timeout)
		att.End()
		if err == nil {
			br.Success()
			return resp, nil
		}
		lastErr = err
		c.logf("cluster: %s %s%s attempt %d/%d: %v", method, peer, path, attempt+1, c.cfg.Retries+1, err)
		if ctx.Err() != nil {
			break // the caller is gone; retrying serves nobody
		}
	}
	br.Failure()
	return nil, fmt.Errorf("cluster: forward to %s failed after %d attempts: %w", peer, c.cfg.Retries+1, lastErr)
}

// attempt is one bounded try against peer. att, when backed by a trace,
// stamps the propagation header so the peer's segment parents to this
// attempt's span.
func (c *Cluster) attempt(att obs.SpanRef, ctx context.Context, peer, method, path string, body []byte, hdr http.Header, timeout time.Duration) (*http.Response, error) {
	actx, cancel := context.WithTimeout(ctx, timeout)
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(actx, method, peer+path, rd)
	if err != nil {
		cancel()
		return nil, err
	}
	for k, vs := range hdr {
		req.Header[k] = vs
	}
	if hv, ok := att.Header(); ok {
		req.Header.Set(obs.TraceHeader, hv)
	}
	resp, err := c.client.Do(req)
	if err != nil {
		cancel()
		return nil, err
	}
	// Hand the per-attempt cancel to the response body: the caller's read
	// stays bounded by the same deadline, and Close releases the timer.
	resp.Body = &cancelBody{ReadCloser: resp.Body, cancel: cancel}
	return resp, nil
}

// cancelBody ties a context cancel to a response body's lifetime.
type cancelBody struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (b *cancelBody) Close() error {
	err := b.ReadCloser.Close()
	b.cancel()
	return err
}

// MarkFailure records a peer failure the routing layer observed above
// the transport (a relayed 5xx): Do saw a completed HTTP exchange and
// credited the breaker, but the peer is failing — the breaker should
// hear about it so a persistently broken peer trips just like a dead one.
func (c *Cluster) MarkFailure(peer string) { c.breaker(peer).Failure() }

// CountForward and CountFallback let the routing layer attribute
// outcomes; CountFetch marks a peer artifact pull.
func (c *Cluster) CountForward() { c.forwards.Add(1) }

func (c *Cluster) CountFallback() { c.fallbacks.Add(1) }

func (c *Cluster) CountFetch() { c.fetches.Add(1) }

// Stats is a snapshot of the cluster layer's counters for health
// endpoints and tests.
type Stats struct {
	Self         string                  `json:"self"`
	Peers        []string                `json:"peers"`
	Forwards     int64                   `json:"forwards"`
	Fallbacks    int64                   `json:"fallbacks"`
	Fetches      int64                   `json:"fetches"`
	BreakerSkips int64                   `json:"breaker_skips"`
	Breakers     map[string]BreakerState `json:"breakers,omitempty"`
}

// Stats returns the current counters and breaker states.
func (c *Cluster) Stats() Stats {
	st := Stats{
		Self:         c.cfg.Self,
		Peers:        c.Peers(),
		Forwards:     c.forwards.Load(),
		Fallbacks:    c.fallbacks.Load(),
		Fetches:      c.fetches.Load(),
		BreakerSkips: c.breakerSkips.Load(),
		Breakers:     map[string]BreakerState{},
	}
	c.mu.Lock()
	for p, b := range c.breakers {
		st.Breakers[p] = b.State()
	}
	c.mu.Unlock()
	return st
}

// ForwardTimeout and FetchTimeout expose the configured budgets to the
// routing layer.
func (c *Cluster) ForwardTimeout() time.Duration { return c.cfg.ForwardTimeout }

func (c *Cluster) FetchTimeout() time.Duration { return c.cfg.FetchTimeout }

func (c *Cluster) logf(format string, args ...any) {
	if c.cfg.Logf != nil {
		c.cfg.Logf(format, args...)
	}
}
