package cluster

import (
	"fmt"
	"strconv"
	"strings"
)

// ForwardHeader is the request header marking a forwarded request. Its
// value is EncodeForward's output. Routing rule (the loop guard): a
// request carrying this header — well-formed or not — is NEVER forwarded
// again; the receiving node answers locally. Single-hop routing is
// therefore a property of header presence, not of successful parsing, so
// a corrupted value can degrade one response's bookkeeping but can never
// start a forwarding loop.
const ForwardHeader = "X-Mps-Forward"

// ServedByHeader is the response header naming the node that actually
// answered (set by every cluster-mode node, preserved when proxying), so
// clients and tests can observe routing without trusting it.
const ServedByHeader = "X-Mps-Served-By"

// MaxHops is the largest hop count EncodeForward/ParseForward accept.
// The forwarding design needs exactly 1; the ceiling exists so a forged
// header cannot smuggle an absurd count into logs or metrics.
const MaxHops = 4

// Forward is the decoded forwarding mark: which node forwarded the
// request here and how many hops it has taken.
type Forward struct {
	From string // forwarding node's name (its peer base URL)
	Hop  int    // 1 on the first forward; always in [1, MaxHops]
}

// EncodeForward renders the header value: "v1;hop=N;from=NODE". From is
// last and unescaped-but-validated: it must not contain ';' or control
// bytes (node names are URLs, which never do).
func EncodeForward(f Forward) (string, error) {
	if f.Hop < 1 || f.Hop > MaxHops {
		return "", fmt.Errorf("cluster: hop %d out of range [1,%d]", f.Hop, MaxHops)
	}
	if f.From == "" {
		return "", fmt.Errorf("cluster: empty forwarding node")
	}
	if strings.ContainsAny(f.From, ";\r\n") || strings.IndexFunc(f.From, func(r rune) bool { return r < 0x20 || r == 0x7f }) >= 0 {
		return "", fmt.Errorf("cluster: node name %q not header-safe", f.From)
	}
	return fmt.Sprintf("v1;hop=%d;from=%s", f.Hop, f.From), nil
}

// ParseForward decodes a ForwardHeader value. An empty value means "not
// forwarded" (zero Forward, false, nil). Malformed values return an error
// — callers must still treat the request as forwarded (the header was
// present), which is what keeps malformed input from ever causing a loop.
func ParseForward(v string) (Forward, bool, error) {
	if v == "" {
		return Forward{}, false, nil
	}
	if len(v) > 4096 {
		return Forward{}, true, fmt.Errorf("cluster: forward header too long (%d bytes)", len(v))
	}
	rest, ok := strings.CutPrefix(v, "v1;")
	if !ok {
		return Forward{}, true, fmt.Errorf("cluster: forward header %q: unknown version", truncate(v))
	}
	hopStr, fromPart, ok := strings.Cut(rest, ";")
	if !ok {
		return Forward{}, true, fmt.Errorf("cluster: forward header %q: missing from field", truncate(v))
	}
	hopVal, ok := strings.CutPrefix(hopStr, "hop=")
	if !ok {
		return Forward{}, true, fmt.Errorf("cluster: forward header %q: missing hop field", truncate(v))
	}
	hop, err := strconv.Atoi(hopVal)
	if err != nil {
		return Forward{}, true, fmt.Errorf("cluster: forward header %q: bad hop: %v", truncate(v), err)
	}
	if hop < 1 || hop > MaxHops {
		return Forward{}, true, fmt.Errorf("cluster: forward header %q: hop %d out of range [1,%d]", truncate(v), hop, MaxHops)
	}
	from, ok := strings.CutPrefix(fromPart, "from=")
	if !ok || from == "" {
		return Forward{}, true, fmt.Errorf("cluster: forward header %q: bad from field", truncate(v))
	}
	if strings.ContainsAny(from, ";\r\n") || strings.IndexFunc(from, func(r rune) bool { return r < 0x20 || r == 0x7f }) >= 0 {
		return Forward{}, true, fmt.Errorf("cluster: forward header %q: from not header-safe", truncate(v))
	}
	return Forward{From: from, Hop: hop}, true, nil
}

// truncate bounds header values quoted into error strings.
func truncate(s string) string {
	if len(s) > 64 {
		return s[:64] + "…"
	}
	return s
}
