package core

import (
	"bytes"
	"io"
	"math/rand"
	"reflect"
	"testing"

	"mps/internal/geom"
)

// randomDims fills ws/hs with uniform values over the circuit's designer
// bounds — the query distribution every equivalence check uses.
func randomDims(s *Structure, rng *rand.Rand, ws, hs []int) {
	for i, b := range s.circuit.Blocks {
		ws[i] = b.WMin + rng.Intn(b.WMax-b.WMin+1)
		hs[i] = b.HMin + rng.Intn(b.HMax-b.HMin+1)
	}
}

// assertCompiledAgrees sweeps trials random dimension vectors and fails on
// the first query where the compiled index and the tree path disagree on
// Lookup, Query/QueryID, or Instantiate.
func assertCompiledAgrees(t *testing.T, s *Structure, cs *CompiledStructure, seed int64, trials int) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	n := s.circuit.N()
	ws, hs := make([]int, n), make([]int, n)
	for trial := 0; trial < trials; trial++ {
		randomDims(s, rng, ws, hs)

		if tree, flat := s.Lookup(ws, hs), cs.Lookup(ws, hs); !reflect.DeepEqual(tree, flat) {
			t.Fatalf("Lookup diverges at %v/%v: tree %v, compiled %v", ws, hs, tree, flat)
		}

		p, treeErr := s.Query(ws, hs)
		id, flatErr := cs.QueryID(ws, hs)
		if (treeErr == nil) != (flatErr == nil) {
			t.Fatalf("Query diverges at %v/%v: tree err %v, compiled err %v", ws, hs, treeErr, flatErr)
		}
		if treeErr == nil && p.ID != id {
			t.Fatalf("Query diverges at %v/%v: tree id %d, compiled id %d", ws, hs, p.ID, id)
		}

		treeRes, treeErr := s.Instantiate(ws, hs)
		flatRes, flatErr := cs.Instantiate(ws, hs)
		if (treeErr == nil) != (flatErr == nil) {
			t.Fatalf("Instantiate diverges at %v/%v: tree err %v, compiled err %v", ws, hs, treeErr, flatErr)
		}
		if treeErr != nil {
			continue
		}
		if !reflect.DeepEqual(treeRes, flatRes) {
			t.Fatalf("Instantiate diverges at %v/%v:\ntree     %+v\ncompiled %+v", ws, hs, treeRes, flatRes)
		}
	}
}

// TestCompiledLookupEquivalence is the core equivalence property: on a
// structure with dozens of placements, the flat index answers every query
// exactly as the interval rows do.
func TestCompiledLookupEquivalence(t *testing.T) {
	s, _ := codecStructure(t, 40)
	cs := Compile(s)
	if cs.NumPlacements() != s.NumPlacements() {
		t.Fatalf("compiled %d placements, tree %d", cs.NumPlacements(), s.NumPlacements())
	}
	if cs.NumSpans() == 0 {
		t.Fatal("compiled index has no spans")
	}
	if !cs.matchesRows(s) {
		t.Fatal("freshly compiled index does not match its own rows")
	}
	assertCompiledAgrees(t, s, cs, 1, 3000)
}

// TestCompileCaches verifies Compile returns the cached index until a
// mutation invalidates it, and that the recompiled index matches the
// mutated rows.
func TestCompileCaches(t *testing.T) {
	s, _ := codecStructure(t, 12)
	cs := Compile(s)
	if Compile(s) != cs {
		t.Fatal("second Compile did not return the cached index")
	}
	victim := s.IDs()[3]
	s.delete(victim)
	cs2 := Compile(s)
	if cs2 == cs {
		t.Fatal("delete did not invalidate the compiled index")
	}
	if cs2.NumPlacements() != s.NumPlacements() {
		t.Fatalf("recompiled %d placements, tree %d", cs2.NumPlacements(), s.NumPlacements())
	}
	assertCompiledAgrees(t, s, cs2, 2, 1500)
}

// fixedBackup is a deterministic Backup double: anchors block i at (i, 2i).
type fixedBackup struct{}

func (fixedBackup) Place(ws, hs []int) (x, y []int, err error) {
	x = make([]int, len(ws))
	y = make([]int, len(ws))
	for i := range ws {
		x[i], y[i] = i, 2*i
	}
	return x, y, nil
}

// TestCompiledBackupParity checks the uncovered-space path: with a backup
// installed both paths answer from it identically; without one both return
// ErrUncovered.
func TestCompiledBackupParity(t *testing.T) {
	s, _ := codecStructure(t, 6)
	cs := Compile(s)
	assertCompiledAgrees(t, s, cs, 3, 500) // ErrUncovered parity, no backup

	s.SetBackup(fixedBackup{})
	// The compiled index reads the backup through its source structure, so
	// installing one after compilation is visible without recompiling —
	// same as the tree path.
	assertCompiledAgrees(t, s, cs, 4, 1500)
}

// TestCompiledInstantiateAllocFree pins the headline property: a covered
// query through InstantiateInto performs zero allocations once the result
// buffers exist.
func TestCompiledInstantiateAllocFree(t *testing.T) {
	s, _ := codecStructure(t, 25)
	cs := Compile(s)
	// Query inside stored placement 7's box: always covered.
	p := s.Get(7)
	n := s.circuit.N()
	ws, hs := make([]int, n), make([]int, n)
	for i := 0; i < n; i++ {
		ws[i], hs[i] = p.WLo[i], p.HLo[i]
	}
	var res Result
	if err := cs.InstantiateInto(&res, ws, hs); err != nil { // warm buffers and pool
		t.Fatal(err)
	}
	if res.PlacementID != 7 || res.FromBackup {
		t.Fatalf("warmup answered %+v, want placement 7", res)
	}
	allocs := testing.AllocsPerRun(200, func() {
		if err := cs.InstantiateInto(&res, ws, hs); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("covered InstantiateInto allocates %.1f objects per query, want 0", allocs)
	}
}

// TestCompiledV3RoundTrip saves with the compiled codec and checks the
// loaded structure arrives with the index attached and agreeing with its
// rows.
func TestCompiledV3RoundTrip(t *testing.T) {
	s, c := codecStructure(t, 25)
	var buf bytes.Buffer
	if err := s.SaveBinaryCompiled(&buf); err != nil {
		t.Fatal(err)
	}
	// v3 must stay loadable and pre-indexed.
	s2, err := Load(bytes.NewReader(buf.Bytes()), c)
	if err != nil {
		t.Fatal(err)
	}
	if err := s2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	attached := s2.compiled.Load()
	if attached == nil {
		t.Fatal("v3 load did not attach the compiled index")
	}
	if Compile(s2) != attached {
		t.Fatal("Compile on a v3-loaded structure rebuilt instead of using the attached index")
	}
	assertCompiledAgrees(t, s2, attached, 5, 2000)

	// A structure saved after deletions renumbers IDs; the persisted
	// tables must follow the renumbering.
	s.delete(s.IDs()[2])
	s.delete(s.IDs()[9])
	buf.Reset()
	if err := s.SaveBinaryCompiled(&buf); err != nil {
		t.Fatal(err)
	}
	s3, err := Load(bytes.NewReader(buf.Bytes()), c)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s3.NumPlacements(), s.NumPlacements(); got != want {
		t.Fatalf("loaded %d placements, want %d", got, want)
	}
	cs3 := s3.compiled.Load()
	if cs3 == nil {
		t.Fatal("v3 load after deletions did not attach the compiled index")
	}
	assertCompiledAgrees(t, s3, cs3, 6, 2000)
}

// TestCompiledV3RejectsForgedTables seals a v3 file whose compiled section
// was tampered with under a fresh (valid) CRC: the checksum passes, so the
// cross-check against the rebuilt rows must be what rejects it.
func TestCompiledV3RejectsForgedTables(t *testing.T) {
	s, c := codecStructure(t, 10)
	var buf bytes.Buffer
	if err := s.SaveBinaryCompiled(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	payload := data[:len(data)-crcLen]
	// The id (slot) values are the last varints of the payload; nudging
	// any tail byte forges the tables while the placement records stay
	// intact.
	for off := 1; off <= 24 && off < len(payload); off++ {
		forged := append([]byte(nil), payload...)
		forged[len(forged)-off] ^= 0x01
		if _, err := Load(bytes.NewReader(seal(forged)), c); err == nil {
			// Some flips only permute within still-consistent tables is
			// impossible: the tables must match the rows exactly. Any
			// successful load here means the cross-check has a hole.
			t.Fatalf("forged v3 tables (tail byte -%d flipped) loaded without error", off)
		}
	}
}

// TestLoadRejectsInt32OverflowFloorplan feeds Load a well-formed file whose
// floorplan (and with it a block anchor) exceeds the compiled index's
// int32 coordinate space: Load must return an error, never reach the
// Compile/attach panic — the decoder's no-panic contract covers v2 and v3
// alike.
func TestLoadRejectsInt32OverflowFloorplan(t *testing.T) {
	c, _ := pairCircuit()
	huge := geom.NewRect(0, 0, 1<<40, 1<<40)
	s := NewStructure(c, huge)
	p := mk(1, [2]int{10, 20}, [2]int{10, 20}, [2]int{10, 20}, [2]int{10, 20})
	p.X = []int{1 << 35, 0}
	if _, err := s.store(p); err != nil {
		t.Fatal(err)
	}
	// No v3 leg: SaveBinaryCompiled cannot produce such a file (Compile's
	// programmatic panic fires in the writer), and a forged v3 file is
	// rejected by the same buildStructure check before its tables attach.
	for name, save := range map[string]func(io.Writer) error{
		"v1": s.Save, "v2": s.SaveBinary,
	} {
		var buf bytes.Buffer
		if err := save(&buf); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if _, err := Load(bytes.NewReader(buf.Bytes()), c); err == nil {
			t.Errorf("%s: Load accepted a structure outside the int32 coordinate range", name)
		}
	}
}

// TestCompiledEmptyStructure compiles a structure with no placements: every
// query must report uncovered, never panic.
func TestCompiledEmptyStructure(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	cs := Compile(s)
	if cs.NumPlacements() != 0 || cs.NumSpans() != 0 {
		t.Fatalf("empty structure compiled to %d placements / %d spans", cs.NumPlacements(), cs.NumSpans())
	}
	ws, hs := []int{10, 10}, []int{10, 10}
	if got := cs.Lookup(ws, hs); got != nil {
		t.Fatalf("Lookup on empty compiled structure returned %v", got)
	}
	if _, err := cs.Instantiate(ws, hs); err != ErrUncovered {
		t.Fatalf("Instantiate on empty compiled structure: %v, want ErrUncovered", err)
	}
}

// TestCompiledConcurrentQueries hammers one compiled index from many
// goroutines (run under -race in CI): the pooled scratch must keep
// concurrent queries independent.
func TestCompiledConcurrentQueries(t *testing.T) {
	s, _ := codecStructure(t, 30)
	s.SetBackup(fixedBackup{})
	cs := Compile(s)
	n := s.circuit.N()
	const workers = 8
	done := make(chan error, workers)
	for w := 0; w < workers; w++ {
		go func(seed int64) {
			rng := rand.New(rand.NewSource(seed))
			ws, hs := make([]int, n), make([]int, n)
			var res Result
			for trial := 0; trial < 2000; trial++ {
				randomDims(s, rng, ws, hs)
				if err := cs.InstantiateInto(&res, ws, hs); err != nil {
					done <- err
					return
				}
				if !res.FromBackup {
					p := s.Get(res.PlacementID)
					for i := 0; i < n; i++ {
						if res.X[i] != p.X[i] || res.Y[i] != p.Y[i] {
							t.Errorf("worker %d: anchors diverge from placement %d", seed, res.PlacementID)
							done <- nil
							return
						}
					}
				}
			}
			done <- nil
		}(int64(w + 1))
	}
	for w := 0; w < workers; w++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

// TestInstantiateCoveredInto checks the stored-placement-only query path
// behind portfolio routing: covered queries match InstantiateInto exactly
// and allocate nothing, uncovered queries report ok=false without ever
// consulting the installed backup, and CoveredArea agrees with the area of
// the anchors InstantiateCoveredInto returns.
func TestInstantiateCoveredInto(t *testing.T) {
	s, _ := codecStructure(t, 25)
	s.SetBackup(fixedBackup{})
	cs := Compile(s)
	n := s.circuit.N()
	rng := rand.New(rand.NewSource(11))
	ws, hs := make([]int, n), make([]int, n)
	var res, want Result
	covered, uncovered := 0, 0
	for trial := 0; trial < 3000; trial++ {
		randomDims(s, rng, ws, hs)
		ok, err := cs.InstantiateCoveredInto(&res, ws, hs)
		if err != nil {
			t.Fatal(err)
		}
		if err := cs.InstantiateInto(&want, ws, hs); err != nil {
			t.Fatal(err)
		}
		area, dead, aok, err := cs.CoveredArea(ws, hs)
		if err != nil {
			t.Fatal(err)
		}
		if aok != ok {
			t.Fatalf("CoveredArea ok=%v, InstantiateCoveredInto ok=%v at %v/%v", aok, ok, ws, hs)
		}
		if !ok {
			uncovered++
			if !want.FromBackup {
				t.Fatalf("ok=false but InstantiateInto found placement %d at %v/%v", want.PlacementID, ws, hs)
			}
			continue
		}
		covered++
		if want.FromBackup || res.PlacementID != want.PlacementID ||
			!reflect.DeepEqual(res.X, want.X) || !reflect.DeepEqual(res.Y, want.Y) {
			t.Fatalf("covered answer diverges at %v/%v:\ncovered  %+v\nfull     %+v", ws, hs, res, want)
		}
		wantArea, wantDead := bboxArea(res, ws, hs)
		if area != wantArea || dead != wantDead {
			t.Fatalf("CoveredArea = (%d, %d), want (%d, %d) from the returned anchors",
				area, dead, wantArea, wantDead)
		}
	}
	if covered == 0 || uncovered == 0 {
		t.Fatalf("query stream not mixed: %d covered, %d uncovered", covered, uncovered)
	}

	// The covered probe is portfolio routing's inner loop: zero allocations.
	p := s.Get(7)
	for i := 0; i < n; i++ {
		ws[i], hs[i] = p.WLo[i], p.HLo[i]
	}
	allocs := testing.AllocsPerRun(200, func() {
		if ok, err := cs.InstantiateCoveredInto(&res, ws, hs); err != nil || !ok {
			t.Fatalf("covered probe: ok=%v err=%v", ok, err)
		}
		if _, _, ok, err := cs.CoveredArea(ws, hs); err != nil || !ok {
			t.Fatalf("area probe: ok=%v err=%v", ok, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("covered routing probes allocate %.1f objects per query, want 0", allocs)
	}
}

// bboxArea computes a result's bounding-box area and dead space from its
// anchors and the queried dimensions — the reference for CoveredArea.
func bboxArea(res Result, ws, hs []int) (area, dead int64) {
	minX, minY := int64(1<<62), int64(1<<62)
	maxX, maxY := int64(-1<<62), int64(-1<<62)
	var blocks int64
	for i := range res.X {
		x, y, w, h := int64(res.X[i]), int64(res.Y[i]), int64(ws[i]), int64(hs[i])
		minX, minY = min(minX, x), min(minY, y)
		maxX, maxY = max(maxX, x+w), max(maxY, y+h)
		blocks += w * h
	}
	area = (maxX - minX) * (maxY - minY)
	return area, area - blocks
}

// FuzzCompiledLookup is the differential fuzzer of the CI smoke step:
// whatever structure Load accepts, the compiled index must answer
// arbitrary dimension vectors exactly as the interval rows do.
func FuzzCompiledLookup(f *testing.F) {
	s, c := codecStructure(f, 8)
	var v2, v3 bytes.Buffer
	if err := s.SaveBinary(&v2); err != nil {
		f.Fatal(err)
	}
	if err := s.SaveBinaryCompiled(&v3); err != nil {
		f.Fatal(err)
	}
	f.Add(v2.Bytes(), int64(1))
	f.Add(v3.Bytes(), int64(2))
	f.Add(v3.Bytes()[:v3.Len()-10], int64(3))
	f.Fuzz(func(t *testing.T, data []byte, dimSeed int64) {
		loaded, err := Load(bytes.NewReader(data), c)
		if err != nil {
			return
		}
		cs := Compile(loaded)
		rng := rand.New(rand.NewSource(dimSeed))
		n := loaded.circuit.N()
		ws, hs := make([]int, n), make([]int, n)
		for trial := 0; trial < 40; trial++ {
			// Half the probes stay inside designer bounds (the covered
			// regime), half roam arbitrary integers — Lookup must agree on
			// both, bounds checks notwithstanding.
			if trial%2 == 0 {
				randomDims(loaded, rng, ws, hs)
			} else {
				for i := 0; i < n; i++ {
					ws[i] = rng.Intn(2000) - 500
					hs[i] = rng.Intn(2000) - 500
				}
			}
			tree, flat := loaded.Lookup(ws, hs), cs.Lookup(ws, hs)
			if !reflect.DeepEqual(tree, flat) {
				t.Fatalf("Lookup diverges at %v/%v: tree %v, compiled %v", ws, hs, tree, flat)
			}
		}
	})
}
