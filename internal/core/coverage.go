package core

import (
	"math"
	"math/rand"

	"mps/internal/placement"
)

// This file implements the coverage metrics of §3.1.4: the Placement
// Explorer's stopping criterion is "a value representing the percentage
// coverage of the widths and heights ranges space". Because stored boxes
// are pairwise disjoint (resolve.go), the exact covered fraction is the sum
// of per-placement volume fractions; a Monte-Carlo hit-rate estimator is
// provided as a cross-check and for tests.

// Coverage returns the exact fraction of the (w,h) dimension space covered
// by stored placements, in [0, 1]. For high-dimensional circuits the value
// is extremely small (DESIGN.md D7); callers wanting a human-readable
// growth signal can use CoverageLog2 or Monte-Carlo hit rates.
//
// The per-placement fraction is accumulated in log2 space rather than as a
// running product of per-node fractions: interval lengths are taken as
// float64 differences (immune to the int overflow Interval.Len hits when a
// designer range approaches MaxInt, which used to flip fractions negative
// and silently corrupt the TargetCoverage stop condition), and a product of
// hundreds of sub-1 factors cannot underflow to zero mid-way on large
// circuits. See TestCoverageWideRangeNoOverflow.
func (s *Structure) Coverage() float64 {
	// log-sum-exp over per-placement log2 volume fractions, the same
	// pattern as CoverageLog2 — two passes over the placements (max, then
	// sum) so the explorer's per-iteration stop check allocates nothing.
	lgFrac := func(p *placement.Placement) float64 {
		lg := 0.0
		for i, b := range s.circuit.Blocks {
			lg += math.Log2(p.WIv(i).LenFloat()) - math.Log2(b.WRange().LenFloat())
			lg += math.Log2(p.HIv(i).LenFloat()) - math.Log2(b.HRange().LenFloat())
		}
		return lg
	}
	maxLg := math.Inf(-1)
	for _, p := range s.placements {
		if p == nil {
			continue
		}
		if lg := lgFrac(p); lg > maxLg {
			maxLg = lg
		}
	}
	if math.IsInf(maxLg, -1) {
		return 0 // no placements, or only empty boxes (unreachable once stored)
	}
	sum := 0.0
	for _, p := range s.placements {
		if p == nil {
			continue
		}
		if lg := lgFrac(p); !math.IsInf(lg, -1) {
			sum += math.Exp2(lg - maxLg)
		}
	}
	return math.Exp2(maxLg + math.Log2(sum))
}

// CoverageLog2 returns log2 of the total covered volume in dimension-vector
// counts (not a fraction): log2(Σ_j vol(box_j)). Returns -Inf for an empty
// structure. This grows monotonically during generation and does not
// underflow for large circuits.
func (s *Structure) CoverageLog2() float64 {
	// log-sum-exp over per-placement log2 volumes.
	maxLg := math.Inf(-1)
	lgs := make([]float64, 0, s.alive)
	for _, p := range s.placements {
		if p == nil {
			continue
		}
		lg := p.Log2BoxVolume()
		lgs = append(lgs, lg)
		if lg > maxLg {
			maxLg = lg
		}
	}
	if len(lgs) == 0 {
		return math.Inf(-1)
	}
	sum := 0.0
	for _, lg := range lgs {
		sum += math.Exp2(lg - maxLg)
	}
	return maxLg + math.Log2(sum)
}

// CoverageMonteCarlo estimates the covered fraction by sampling uniform
// random dimension vectors and reporting the hit rate. It cross-checks
// Coverage and doubles as a query fuzzer in tests. Dimensions draw via
// Interval.Rand, so designer ranges wide enough to overflow hi-lo+1 — the
// same unvalidated-circuit regime the log2-space Coverage guards — sample
// instead of panicking in rand.Intn.
func (s *Structure) CoverageMonteCarlo(rng *rand.Rand, samples int) float64 {
	if samples <= 0 {
		return 0
	}
	n := s.circuit.N()
	ws := make([]int, n)
	hs := make([]int, n)
	hits := 0
	for k := 0; k < samples; k++ {
		for i, b := range s.circuit.Blocks {
			ws[i] = b.WRange().Rand(rng)
			hs[i] = b.HRange().Rand(rng)
		}
		if _, count := s.lookupUnique(ws, hs); count > 0 {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}
