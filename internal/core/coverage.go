package core

import (
	"math"
	"math/rand"
)

// This file implements the coverage metrics of §3.1.4: the Placement
// Explorer's stopping criterion is "a value representing the percentage
// coverage of the widths and heights ranges space". Because stored boxes
// are pairwise disjoint (resolve.go), the exact covered fraction is the sum
// of per-placement volume fractions; a Monte-Carlo hit-rate estimator is
// provided as a cross-check and for tests.

// Coverage returns the exact fraction of the (w,h) dimension space covered
// by stored placements, in [0, 1]. For high-dimensional circuits the value
// is extremely small (DESIGN.md D7); callers wanting a human-readable
// growth signal can use CoverageLog2 or Monte-Carlo hit rates.
func (s *Structure) Coverage() float64 {
	total := 0.0
	for _, p := range s.placements {
		if p == nil {
			continue
		}
		frac := 1.0
		for i, b := range s.circuit.Blocks {
			frac *= float64(p.WIv(i).Len()) / float64(b.WRange().Len())
			frac *= float64(p.HIv(i).Len()) / float64(b.HRange().Len())
		}
		total += frac
	}
	return total
}

// CoverageLog2 returns log2 of the total covered volume in dimension-vector
// counts (not a fraction): log2(Σ_j vol(box_j)). Returns -Inf for an empty
// structure. This grows monotonically during generation and does not
// underflow for large circuits.
func (s *Structure) CoverageLog2() float64 {
	// log-sum-exp over per-placement log2 volumes.
	maxLg := math.Inf(-1)
	lgs := make([]float64, 0, s.alive)
	for _, p := range s.placements {
		if p == nil {
			continue
		}
		lg := p.Log2BoxVolume()
		lgs = append(lgs, lg)
		if lg > maxLg {
			maxLg = lg
		}
	}
	if len(lgs) == 0 {
		return math.Inf(-1)
	}
	sum := 0.0
	for _, lg := range lgs {
		sum += math.Exp2(lg - maxLg)
	}
	return maxLg + math.Log2(sum)
}

// CoverageMonteCarlo estimates the covered fraction by sampling uniform
// random dimension vectors and reporting the hit rate. It cross-checks
// Coverage and doubles as a query fuzzer in tests.
func (s *Structure) CoverageMonteCarlo(rng *rand.Rand, samples int) float64 {
	if samples <= 0 {
		return 0
	}
	n := s.circuit.N()
	ws := make([]int, n)
	hs := make([]int, n)
	hits := 0
	for k := 0; k < samples; k++ {
		for i, b := range s.circuit.Blocks {
			ws[i] = b.WMin + rng.Intn(b.WMax-b.WMin+1)
			hs[i] = b.HMin + rng.Intn(b.HMax-b.HMin+1)
		}
		if _, count := s.lookupUnique(ws, hs); count > 0 {
			hits++
		}
	}
	return float64(hits) / float64(samples)
}
