package core

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"mps/internal/circuits"
	"mps/internal/geom"
	"mps/internal/netlist"
)

// codecStructure builds a deterministic structure with count placements on
// a 4-block circuit with wide designer bounds — enough volume that the
// placements stay box-disjoint without Insert having to shrink them.
func codecStructure(t testing.TB, count int) (*Structure, *netlist.Circuit) {
	t.Helper()
	b := netlist.NewBuilder("codec")
	for _, n := range []string{"a", "b", "c", "d"} {
		b.Block(n, 1, 4*count+48, 1, 40)
	}
	b.Net("n0", 1, netlist.P("a"), netlist.P("b"))
	b.Net("n1", 1, netlist.P("c"), netlist.P("d"))
	c := b.MustBuild()
	fp := geom.NewRect(0, 0, 16*count+400, 16*count+400)
	s := NewStructure(c, fp)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < count; i++ {
		// Disjoint on block a's width row: [4i+1, 4i+4].
		lo := 4*i + 1
		p := mk(1+rng.Float64(), [2]int{lo, lo + 3}, [2]int{1, 40}, [2]int{1, 40}, [2]int{1, 40})
		p.X = []int{0, 100, 200, 300}
		p.Y = []int{0, 100, 200, 300}
		p.WLo = append(p.WLo, 1, 1)
		p.WHi = append(p.WHi, 40, 40)
		p.HLo = append(p.HLo, 1, 1)
		p.HHi = append(p.HHi, 40, 40)
		if i%3 == 0 {
			p.BestW = []int{lo, 2, 3, 4}
			p.BestH = []int{5, 6, 7, 8}
		}
		if _, err := s.store(p); err != nil {
			t.Fatal(err)
		}
	}
	return s, c
}

// TestBinaryRoundTrip saves a structure with the v2 codec and checks the
// loaded copy answers an exhaustive query sweep identically, placement
// fields included.
func TestBinaryRoundTrip(t *testing.T) {
	s, c := codecStructure(t, 25)
	var buf bytes.Buffer
	if err := s.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(bytes.NewReader(buf.Bytes()), c)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumPlacements() != s.NumPlacements() {
		t.Fatalf("loaded %d placements, want %d", s2.NumPlacements(), s.NumPlacements())
	}
	if err := s2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if s2.Floorplan() != s.Floorplan() {
		t.Fatalf("floorplan %v, want %v", s2.Floorplan(), s.Floorplan())
	}
	for _, id := range s.IDs() {
		p, q := s.Get(id), s2.Get(id)
		if q == nil {
			t.Fatalf("placement %d missing after round trip", id)
		}
		if !reflect.DeepEqual(p.X, q.X) || !reflect.DeepEqual(p.Y, q.Y) ||
			!reflect.DeepEqual(p.WLo, q.WLo) || !reflect.DeepEqual(p.WHi, q.WHi) ||
			!reflect.DeepEqual(p.HLo, q.HLo) || !reflect.DeepEqual(p.HHi, q.HHi) ||
			p.AvgCost != q.AvgCost || p.BestCost != q.BestCost ||
			!reflect.DeepEqual(p.BestW, q.BestW) || !reflect.DeepEqual(p.BestH, q.BestH) {
			t.Fatalf("placement %d differs after round trip:\n%+v\n%+v", id, p, q)
		}
	}
}

// TestGobBinaryEquivalence is the codec-equivalence property: the same
// structure saved as gob v1 and binary v2 must load into structures that
// answer a randomized query sweep identically.
func TestGobBinaryEquivalence(t *testing.T) {
	s, c := codecStructure(t, 30)
	var gobBuf, binBuf bytes.Buffer
	if err := s.Save(&gobBuf); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveBinary(&binBuf); err != nil {
		t.Fatal(err)
	}
	fromGob, err := Load(bytes.NewReader(gobBuf.Bytes()), c)
	if err != nil {
		t.Fatalf("gob load: %v", err)
	}
	fromBin, err := Load(bytes.NewReader(binBuf.Bytes()), c)
	if err != nil {
		t.Fatalf("binary load: %v", err)
	}
	rng := rand.New(rand.NewSource(7))
	n := c.N()
	ws, hs := make([]int, n), make([]int, n)
	for trial := 0; trial < 1000; trial++ {
		for i, b := range c.Blocks {
			ws[i] = b.WMin + rng.Intn(b.WMax-b.WMin+1)
			hs[i] = b.HMin + rng.Intn(b.HMax-b.HMin+1)
		}
		a, errA := fromGob.Query(ws, hs)
		b, errB := fromBin.Query(ws, hs)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("query divergence at %v/%v: %v vs %v", ws, hs, errA, errB)
		}
		if errA == nil && (a.ID != b.ID || !reflect.DeepEqual(a.X, b.X) || !reflect.DeepEqual(a.Y, b.Y)) {
			t.Fatalf("codecs disagree at %v/%v: placement %d vs %d", ws, hs, a.ID, b.ID)
		}
	}
}

// TestBinarySmallerThanGob pins the size claim: the varint-packed v2 file
// must not exceed the gob v1 encoding of the same structure.
func TestBinarySmallerThanGob(t *testing.T) {
	s, _ := codecStructure(t, 40)
	var gobBuf, binBuf bytes.Buffer
	if err := s.Save(&gobBuf); err != nil {
		t.Fatal(err)
	}
	if err := s.SaveBinary(&binBuf); err != nil {
		t.Fatal(err)
	}
	if binBuf.Len() > gobBuf.Len() {
		t.Fatalf("v2 file is %d bytes, gob is %d — v2 must not be larger", binBuf.Len(), gobBuf.Len())
	}
	t.Logf("gob v1: %d bytes, binary v2: %d bytes (%.2fx)",
		gobBuf.Len(), binBuf.Len(), float64(binBuf.Len())/float64(gobBuf.Len()))
}

// TestGoldenV1Fixture proves old gob files stay loadable: the fixture was
// written by the v1 encoder before the v2 codec existed and its bytes are
// frozen in testdata.
func TestGoldenV1Fixture(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("testdata", "golden_v1_circ01.gob"))
	if err != nil {
		t.Fatal(err)
	}
	c, err := circuits.ByName("circ01")
	if err != nil {
		t.Fatal(err)
	}
	s, err := Load(bytes.NewReader(data), c)
	if err != nil {
		t.Fatalf("golden v1 fixture no longer loads: %v", err)
	}
	if got, want := s.NumPlacements(), 43; got != want {
		t.Errorf("fixture has %d placements, want %d", got, want)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Errorf("fixture violates invariants: %v", err)
	}
}

// TestLoadCorruptV2 sweeps deterministic corruptions of a v2 file:
// every truncation and every byte-flip must produce an error (the CRC
// catches them all) and must never panic.
func TestLoadCorruptV2(t *testing.T) {
	s, c := codecStructure(t, 10)
	var buf bytes.Buffer
	if err := s.SaveBinary(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut++ {
		if _, err := Load(bytes.NewReader(data[:cut]), c); err == nil {
			t.Fatalf("truncation to %d of %d bytes loaded without error", cut, len(data))
		}
	}
	for i := range data {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x40
		if _, err := Load(bytes.NewReader(mut), c); err == nil {
			t.Fatalf("bit flip at byte %d of %d loaded without error", i, len(data))
		}
	}
}

// TestLoadCorruptV1 sweeps truncations of a gob v1 file: all must error,
// none may panic. (Bit flips are exercised by FuzzLoad; unlike v2, gob has
// no checksum, so a flipped cost byte can legitimately still decode.)
func TestLoadCorruptV1(t *testing.T) {
	s, c := codecStructure(t, 10)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for cut := 0; cut < len(data); cut += 7 {
		if _, err := Load(bytes.NewReader(data[:cut]), c); err == nil {
			t.Fatalf("gob truncation to %d of %d bytes loaded without error", cut, len(data))
		}
	}
}

// TestBinaryRejectsBadHeader covers the v2 decode paths the CRC cannot:
// wrong version and trailing garbage are re-checksummed so they reach the
// structural checks.
func TestBinaryRejectsBadHeader(t *testing.T) {
	s, c := codecStructure(t, 3)
	payload := s.appendBinary(nil)

	// Bump the version varint (offset 4, value 2 → 3) and re-seal.
	bad := append([]byte(nil), payload...)
	bad[len(binaryMagic)] = 3
	if _, err := Load(bytes.NewReader(seal(bad)), c); err == nil {
		t.Error("future format version loaded without error")
	}

	// Trailing garbage inside the checksummed region.
	bad = append(append([]byte(nil), payload...), 0xAA, 0xBB)
	if _, err := Load(bytes.NewReader(seal(bad)), c); err == nil {
		t.Error("trailing payload bytes loaded without error")
	}

	// Wrong circuit for a well-formed file.
	other := netlist.NewBuilder("other")
	other.Block("x", 1, 10, 1, 10)
	other.Net("n", 1, netlist.T("x", 0, 0))
	if _, err := Load(bytes.NewReader(seal(payload)), other.MustBuild()); err == nil {
		t.Error("binary file loaded into a different circuit")
	}
}

// seal appends a valid CRC to a v2 payload, mimicking SaveBinary.
func seal(payload []byte) []byte { return appendCRC(append([]byte(nil), payload...)) }

// FuzzLoad feeds arbitrary bytes to Load. The invariant: Load never
// panics, and when it succeeds the structure passes the full invariant
// check — the load path must validate everything CheckInvariants would.
func FuzzLoad(f *testing.F) {
	s, c := codecStructure(f, 8)
	var gobBuf, binBuf bytes.Buffer
	if err := s.Save(&gobBuf); err != nil {
		f.Fatal(err)
	}
	if err := s.SaveBinary(&binBuf); err != nil {
		f.Fatal(err)
	}
	f.Add(gobBuf.Bytes())
	f.Add(binBuf.Bytes())
	f.Add(binBuf.Bytes()[:len(binBuf.Bytes())/2])
	f.Add([]byte(binaryMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		loaded, err := Load(bytes.NewReader(data), c)
		if err != nil {
			return
		}
		if err := loaded.CheckInvariants(); err != nil {
			t.Fatalf("Load accepted a structure that violates invariants: %v", err)
		}
	})
}
