package core

import (
	"bytes"
	"encoding/json"
	"math/rand"
	"testing"
)

func filledStructure(t *testing.T) *Structure {
	t.Helper()
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 15; i++ {
		lo := 1 + rng.Intn(80)
		hi := lo + rng.Intn(101-lo)
		if _, err := s.Insert(mk(1+rng.Float64()*5, [2]int{lo, hi}, full(), full(), full())); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

func TestWriteJSONRoundTripsThroughDecoder(t *testing.T) {
	s := filledStructure(t)
	var buf bytes.Buffer
	if err := s.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var doc ExportJSON
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	if doc.Circuit != "pair" || doc.Blocks != 2 {
		t.Errorf("header wrong: %+v", doc)
	}
	if len(doc.Placements) != s.NumPlacements() {
		t.Errorf("exported %d placements, have %d", len(doc.Placements), s.NumPlacements())
	}
	if doc.Summary.Placements != s.NumPlacements() {
		t.Errorf("summary count mismatch")
	}
	for _, p := range doc.Placements {
		if len(p.X) != 2 || len(p.WLo) != 2 {
			t.Fatalf("placement %d has wrong arity", p.ID)
		}
		if p.AvgCost <= 0 {
			t.Errorf("placement %d: non-positive avg cost exported", p.ID)
		}
	}
}

func TestSummaryMetrics(t *testing.T) {
	s := filledStructure(t)
	sum := s.Summary()
	if sum.Placements != s.NumPlacements() {
		t.Errorf("Placements = %d, want %d", sum.Placements, s.NumPlacements())
	}
	if sum.Coverage <= 0 || sum.Coverage > 1 {
		t.Errorf("Coverage = %g, want (0,1]", sum.Coverage)
	}
	if sum.MeanAvgCost <= 0 {
		t.Errorf("MeanAvgCost = %g, want positive", sum.MeanAvgCost)
	}
	if sum.BestBestCost <= 0 || sum.BestBestCost > sum.MeanAvgCost {
		t.Errorf("BestBestCost = %g vs mean %g, implausible", sum.BestBestCost, sum.MeanAvgCost)
	}
	if sum.RowIntervals <= 0 || sum.MaxRowLength <= 0 {
		t.Errorf("row stats empty: %+v", sum)
	}
}

func TestSummaryEmptyStructure(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	sum := s.Summary()
	if sum.Placements != 0 || sum.MeanAvgCost != 0 || sum.BestBestCost != 0 {
		t.Errorf("empty summary: %+v", sum)
	}
}

func TestRowHistogram(t *testing.T) {
	s := filledStructure(t)
	wl, hl := s.RowHistogram()
	if len(wl) != 2 || len(hl) != 2 {
		t.Fatal("histogram arity wrong")
	}
	// Block 0 has varied intervals: its width row must be fragmented.
	if wl[0] < 2 {
		t.Errorf("block 0 width row has %d intervals, want several", wl[0])
	}
	// Block 1 intervals are all [1,100]: one interval.
	if wl[1] != 1 {
		t.Errorf("block 1 width row has %d intervals, want 1", wl[1])
	}
}

func TestCostQuantiles(t *testing.T) {
	s := filledStructure(t)
	qs := s.CostQuantiles(4)
	if len(qs) != 5 {
		t.Fatalf("quartiles = %v, want 5 values", qs)
	}
	for i := 1; i < len(qs); i++ {
		if qs[i] < qs[i-1] {
			t.Errorf("quantiles not ascending: %v", qs)
		}
	}
	if s.CostQuantiles(0) != nil {
		t.Error("q=0 should return nil")
	}
	empty := NewStructure(s.circuit, s.fp)
	if empty.CostQuantiles(4) != nil {
		t.Error("empty structure should return nil quantiles")
	}
}
