package core

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"mps/internal/geom"
	"mps/internal/intervalmap"
	"mps/internal/netlist"
	"mps/internal/placement"
)

// Backup instantiates a placement for dimension vectors no stored placement
// covers. Implementations must accept any in-bounds dimension vector.
type Backup interface {
	// Place returns bottom-left anchors for every block at dims (ws, hs).
	Place(ws, hs []int) (x, y []int, err error)
}

// ErrUncovered is returned by Query when no stored placement covers the
// requested dimensions and no backup is installed.
var ErrUncovered = errors.New("core: dimension vector not covered by any stored placement")

// Structure is a multi-placement structure for one circuit topology.
// Once generation is done it is safe for concurrent readers; see the
// package documentation for the full concurrency contract.
type Structure struct {
	circuit *netlist.Circuit
	fp      geom.Rect

	// placements is indexed by placement ID; deleted entries are nil.
	placements []*placement.Placement
	alive      int

	// wRows[i] and hRows[i] are block i's width and height rows.
	wRows, hRows []*intervalmap.Row

	backup Backup

	// resolveStrategy selects the shrink row during overlap resolution.
	resolveStrategy ResolveRowStrategy

	// scratch pools query-intersection buffers so concurrent Lookup calls
	// never share scratch space (holds *[]int).
	scratch sync.Pool

	// compiled caches the flat query index built by Compile; mutations
	// (store, delete, shrinkRow) drop it so a stale index can never answer
	// for rows that have since changed.
	compiled atomic.Pointer[CompiledStructure]
}

// NewStructure returns an empty structure for the circuit on the given
// floorplan.
func NewStructure(c *netlist.Circuit, fp geom.Rect) *Structure {
	n := c.N()
	s := &Structure{
		circuit: c,
		fp:      fp,
		wRows:   make([]*intervalmap.Row, n),
		hRows:   make([]*intervalmap.Row, n),
	}
	for i := 0; i < n; i++ {
		s.wRows[i] = &intervalmap.Row{}
		s.hRows[i] = &intervalmap.Row{}
	}
	return s
}

// Circuit returns the topology this structure was generated for.
func (s *Structure) Circuit() *netlist.Circuit { return s.circuit }

// Floorplan returns the floorplan the placements live on.
func (s *Structure) Floorplan() geom.Rect { return s.fp }

// SetBackup installs the fallback instantiator for uncovered queries.
func (s *Structure) SetBackup(b Backup) { s.backup = b }

// SetResolveStrategy selects the shrink-row policy for subsequent Inserts.
// The default (SmallestOverlapRow) is the paper's choice; FirstOverlapRow
// exists for the ablation benchmarks.
func (s *Structure) SetResolveStrategy(rs ResolveRowStrategy) { s.resolveStrategy = rs }

// LookupLinear is the reference query implementation: a linear scan over
// all live placements with Covers. It exists to validate Lookup and as the
// ablation baseline for the row-based query path; results match Lookup
// exactly.
func (s *Structure) LookupLinear(ws, hs []int) []int {
	var out []int
	for id, p := range s.placements {
		if p != nil && p.Covers(ws, hs) {
			out = append(out, id)
		}
	}
	return out
}

// NumPlacements returns the number of live stored placements — the
// "Placements" column of the paper's Table 2.
func (s *Structure) NumPlacements() int { return s.alive }

// IDs returns the IDs of all live placements in ascending order.
func (s *Structure) IDs() []int {
	out := make([]int, 0, s.alive)
	for id, p := range s.placements {
		if p != nil {
			out = append(out, id)
		}
	}
	return out
}

// Get returns the live placement with the given ID, or nil.
func (s *Structure) Get(id int) *placement.Placement {
	if id < 0 || id >= len(s.placements) {
		return nil
	}
	return s.placements[id]
}

// store assigns the next ID to p, records it, and registers its intervals
// in all 2N rows (the paper's Store Placement routine). The caller must
// have resolved overlaps first.
func (s *Structure) store(p *placement.Placement) (int, error) {
	if p.BoxEmpty() {
		return -1, fmt.Errorf("core: refusing to store placement with empty dimension box")
	}
	if err := p.CheckIntervalsWithin(s.circuit); err != nil {
		return -1, err
	}
	s.compiled.Store(nil)
	id := len(s.placements)
	p.ID = id
	s.placements = append(s.placements, p)
	s.alive++
	for i := 0; i < s.circuit.N(); i++ {
		s.wRows[i].Insert(id, p.WIv(i))
		s.hRows[i].Insert(id, p.HIv(i))
	}
	return id, nil
}

// delete removes the placement from the structure and all rows.
func (s *Structure) delete(id int) {
	p := s.placements[id]
	if p == nil {
		return
	}
	s.compiled.Store(nil)
	for i := 0; i < s.circuit.N(); i++ {
		s.wRows[i].Remove(id, p.WIv(i))
		s.hRows[i].Remove(id, p.HIv(i))
	}
	s.placements[id] = nil
	s.alive--
}

// Renumber packs live placement IDs into the dense range [0, alive), in
// ascending current-ID order, and rebuilds the affected row registrations.
// Queries are unaffected except for the IDs they report.
//
// Serialization keeps only live placements, in ID order, and load re-stores
// them densely — so a structure with ID holes answers QueryID differently
// after a save/load round trip than before it. Renumbering a finished
// structure (generation ends with deletes from overlap resolution and
// Compact) makes its IDs stable across that round trip, which is what lets
// cluster replicas that exchange v3 bytes report the same placement_id as
// the owner's in-memory copy.
func (s *Structure) Renumber() {
	if len(s.placements) == s.alive {
		return // already dense
	}
	s.compiled.Store(nil)
	n := s.circuit.N()
	next := 0
	for id, p := range s.placements {
		if p == nil {
			continue
		}
		// next <= id always (holes only shrink the index), so the target
		// slot is free or is p's own.
		if id != next {
			for i := 0; i < n; i++ {
				s.wRows[i].Remove(id, p.WIv(i))
				s.hRows[i].Remove(id, p.HIv(i))
				s.wRows[i].Insert(next, p.WIv(i))
				s.hRows[i].Insert(next, p.HIv(i))
			}
			p.ID = next
			s.placements[next] = p
			s.placements[id] = nil
		}
		next++
	}
	s.placements = s.placements[:next]
}

// shrinkRow narrows one validity interval of a stored placement in place,
// updating the affected row. dim 0 is width, 1 is height.
func (s *Structure) shrinkRow(p *placement.Placement, block, dim int, newIv geom.Interval) {
	s.compiled.Store(nil)
	var row *intervalmap.Row
	var old geom.Interval
	if dim == 0 {
		row = s.wRows[block]
		old = p.WIv(block)
	} else {
		row = s.hRows[block]
		old = p.HIv(block)
	}
	row.Remove(p.ID, old)
	row.Insert(p.ID, newIv)
	if dim == 0 {
		p.WLo[block], p.WHi[block] = newIv.Lo, newIv.Hi
	} else {
		p.HLo[block], p.HHi[block] = newIv.Lo, newIv.Hi
	}
}

// Lookup returns the IDs of all stored placements covering the dimension
// vector — the raw intersection of eq. 4 before the |M(V)| = 1 check.
// The result is nil when uncovered and shares no memory with the rows.
// Lookup is safe for concurrent use: intersection scratch is taken from a
// per-structure pool, never shared between calls.
func (s *Structure) Lookup(ws, hs []int) []int {
	sp, acc := s.intersectScratch(ws, hs)
	var out []int
	if len(acc) > 0 {
		out = make([]int, len(acc))
		copy(out, acc)
	}
	s.putScratch(sp, acc)
	return out
}

// lookupUnique is the allocation-free hot path behind Lookup and Query: it
// returns the covering placement ID and the intersection size, without
// copying the full ID set out. count > 1 (an eq.5 violation) returns an
// arbitrary covering ID.
func (s *Structure) lookupUnique(ws, hs []int) (id, count int) {
	sp, acc := s.intersectScratch(ws, hs)
	id, count = -1, len(acc)
	if count > 0 {
		id = acc[0]
	}
	s.putScratch(sp, acc)
	return id, count
}

// intersectScratch runs the eq. 4 intersection in a pooled buffer. Callers
// must hand both return values to putScratch once done reading acc.
func (s *Structure) intersectScratch(ws, hs []int) (sp *[]int, acc []int) {
	sp, _ = s.scratch.Get().(*[]int)
	if sp == nil {
		sp = new([]int)
	}
	return sp, s.intersectInto((*sp)[:0], ws, hs)
}

// putScratch returns a buffer obtained from intersectScratch to the pool,
// keeping any capacity acc grew to.
func (s *Structure) putScratch(sp *[]int, acc []int) {
	*sp = acc[:0]
	s.scratch.Put(sp)
}

// intersectInto computes the eq. 4 row intersection into acc and returns it.
func (s *Structure) intersectInto(acc []int, ws, hs []int) []int {
	n := s.circuit.N()
	first := true
	for i := 0; i < n; i++ {
		for dim := 0; dim < 2; dim++ {
			var ids []int
			if dim == 0 {
				ids = s.wRows[i].Lookup(ws[i])
			} else {
				ids = s.hRows[i].Lookup(hs[i])
			}
			if len(ids) == 0 {
				return acc[:0]
			}
			if first {
				acc = append(acc[:0], ids...)
				first = false
				continue
			}
			acc = intersectSorted(acc, ids)
			if len(acc) == 0 {
				return acc
			}
		}
	}
	return acc
}

// Result is a placement instantiation: anchors for every block plus the
// provenance of the answer.
type Result struct {
	// X, Y hold block anchors.
	X, Y []int
	// PlacementID is the stored placement used, or -1 when the backup
	// template answered.
	PlacementID int
	// FromBackup reports whether the backup template answered.
	FromBackup bool
}

// Query implements the paper's function M (eq. 1/4): it returns the unique
// stored placement covering dims (ws, hs). Uncovered space falls back to
// the backup when installed, else returns ErrUncovered. More than one
// covering placement is an invariant violation and returns an error.
func (s *Structure) Query(ws, hs []int) (*placement.Placement, error) {
	if err := s.checkDims(ws, hs); err != nil {
		return nil, err
	}
	id, count := s.lookupUnique(ws, hs)
	switch count {
	case 0:
		return nil, ErrUncovered
	case 1:
		return s.placements[id], nil
	}
	return nil, fmt.Errorf("core: eq.5 violated — %d placements cover one dimension vector: %v",
		count, s.Lookup(ws, hs))
}

// Instantiate answers a synthesis-loop placement request: given block
// dimensions it returns anchors from the covering stored placement, or from
// the backup template for uncovered space.
func (s *Structure) Instantiate(ws, hs []int) (Result, error) {
	p, err := s.Query(ws, hs)
	switch {
	case err == nil:
		return Result{X: cloneInts(p.X), Y: cloneInts(p.Y), PlacementID: p.ID}, nil
	case errors.Is(err, ErrUncovered) && s.backup != nil:
		x, y, berr := s.backup.Place(ws, hs)
		if berr != nil {
			return Result{}, fmt.Errorf("core: backup failed: %w", berr)
		}
		return Result{X: x, Y: y, PlacementID: -1, FromBackup: true}, nil
	default:
		return Result{}, err
	}
}

// checkDims validates vector lengths and designer bounds.
func (s *Structure) checkDims(ws, hs []int) error {
	n := s.circuit.N()
	if len(ws) != n || len(hs) != n {
		return fmt.Errorf("core: dimension vectors sized %d/%d, want %d", len(ws), len(hs), n)
	}
	for i, b := range s.circuit.Blocks {
		if !b.WRange().Contains(ws[i]) {
			return fmt.Errorf("core: block %d width %d outside designer bounds %v", i, ws[i], b.WRange())
		}
		if !b.HRange().Contains(hs[i]) {
			return fmt.Errorf("core: block %d height %d outside designer bounds %v", i, hs[i], b.HRange())
		}
	}
	return nil
}

// intersectSorted intersects two ascending slices in place into acc.
func intersectSorted(acc, other []int) []int {
	out := acc[:0]
	i, j := 0, 0
	for i < len(acc) && j < len(other) {
		switch {
		case acc[i] < other[j]:
			i++
		case acc[i] > other[j]:
			j++
		default:
			out = append(out, acc[i])
			i++
			j++
		}
	}
	return out
}

func cloneInts(s []int) []int {
	out := make([]int, len(s))
	copy(out, s)
	return out
}
