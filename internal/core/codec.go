package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// This file implements the format-v2 binary codec for multi-placement
// structures. Layout (all integers varint-encoded unless noted):
//
//	"MPSB"                      4-byte magic
//	version                     uvarint, currently 2
//	circuit name                uvarint length + bytes
//	floorplan                   4 varints (X0, Y0, X1, Y1)
//	block count N               uvarint
//	placement count P           uvarint
//	P placement records:
//	  X, Y                      N varints each (zigzag)
//	  per block: WLo varint, WHi-WLo uvarint
//	  per block: HLo varint, HHi-HLo uvarint
//	  AvgCost, BestCost         8-byte little-endian float64 bits each
//	  BestW, BestH              presence byte (0/1) + N varints when present
//	CRC-32C                     4-byte little-endian, over everything above
//
// The trailing checksum means truncation and bit corruption are rejected
// up front, before the per-placement semantic checks in buildStructure
// run. Varint packing makes v2 files smaller than the gob v1 encoding
// (which spends bytes on reflected type metadata and field headers) and
// decoding is a single allocation-light pass instead of gob's reflection
// walk.

const (
	// binaryMagic introduces a v2/v3 file; Load sniffs it to pick the codec.
	binaryMagic = "MPSB"
	// binaryVersion is written after the magic and checked on load.
	binaryVersion = 2
	// binaryVersionCompiled marks a file that additionally carries the
	// compiled query index's row tables after the placement records (see
	// SaveBinaryCompiled); the placement section is byte-identical to v2.
	binaryVersionCompiled = 3
	// crcLen is the size of the trailing CRC-32C.
	crcLen = 4
	// maxIntervalLen bounds a decoded interval delta; anything larger is
	// corruption (designer dimension ranges are far below this).
	maxIntervalLen = 1 << 31
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SaveBinary writes the structure to w in the v2 binary format. The whole
// payload is assembled in memory (structures are kilobytes to low
// megabytes) so the trailing checksum covers exactly the bytes written.
func (s *Structure) SaveBinary(w io.Writer) error {
	if _, err := w.Write(appendCRC(s.appendBinary(nil))); err != nil {
		return fmt.Errorf("core: writing structure: %w", err)
	}
	return nil
}

// SaveBinaryCompiled writes the structure in the v3 binary format: the v2
// placement payload plus the compiled query index's row tables, so a
// loader gets the flat index for free instead of flattening the rows
// itself — the daemon's store uses this so a warm start never compiles on
// the request path. Compiling here is free when the structure was already
// queried (Compile caches).
func (s *Structure) SaveBinaryCompiled(w io.Writer) error {
	b := s.appendBinaryVersion(nil, binaryVersionCompiled)
	b = Compile(s).appendTables(b)
	if _, err := w.Write(appendCRC(b)); err != nil {
		return fmt.Errorf("core: writing structure: %w", err)
	}
	return nil
}

// appendCRC seals a v2/v3 payload with its trailing checksum.
func appendCRC(payload []byte) []byte {
	return binary.LittleEndian.AppendUint32(payload, crc32.Checksum(payload, castagnoli))
}

// appendBinary appends the v2 payload (everything but the CRC) to b.
func (s *Structure) appendBinary(b []byte) []byte {
	return s.appendBinaryVersion(b, binaryVersion)
}

// appendBinaryVersion appends the placement payload under the given format
// version; v3 callers append the compiled tables afterwards.
func (s *Structure) appendBinaryVersion(b []byte, version uint64) []byte {
	b = append(b, binaryMagic...)
	b = binary.AppendUvarint(b, version)
	b = binary.AppendUvarint(b, uint64(len(s.circuit.Name)))
	b = append(b, s.circuit.Name...)
	for _, v := range [4]int{s.fp.X0, s.fp.Y0, s.fp.X1, s.fp.Y1} {
		b = binary.AppendVarint(b, int64(v))
	}
	n := s.circuit.N()
	b = binary.AppendUvarint(b, uint64(n))
	b = binary.AppendUvarint(b, uint64(s.alive))
	for _, p := range s.placements {
		if p == nil {
			continue
		}
		b = appendInts(b, p.X)
		b = appendInts(b, p.Y)
		for i := 0; i < n; i++ {
			b = binary.AppendVarint(b, int64(p.WLo[i]))
			b = binary.AppendUvarint(b, uint64(p.WHi[i]-p.WLo[i]))
		}
		for i := 0; i < n; i++ {
			b = binary.AppendVarint(b, int64(p.HLo[i]))
			b = binary.AppendUvarint(b, uint64(p.HHi[i]-p.HLo[i]))
		}
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p.AvgCost))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p.BestCost))
		b = appendOptionalInts(b, p.BestW)
		b = appendOptionalInts(b, p.BestH)
	}
	return b
}

func appendInts(b []byte, vs []int) []byte {
	for _, v := range vs {
		b = binary.AppendVarint(b, int64(v))
	}
	return b
}

func appendOptionalInts(b []byte, vs []int) []byte {
	if vs == nil {
		return append(b, 0)
	}
	return appendInts(append(b, 1), vs)
}

// compiledTables is the decoded v3 compiled section: the flat row tables
// of a CompiledStructure, expressed in the saved (dense, hole-free) ID
// space. The anchor tables are not serialized — they are rebuilt from the
// placement records in O(P·N) on attach.
type compiledTables struct {
	rowStart, spanLo, spanHi, idOff, ids []int32
}

// appendTables appends the compiled section of a v3 file: span counts per
// row, breakpoints, id counts per span, then the id (slot) values, all
// varint-packed. The on-disk form is id *lists* (stable and
// word-size-independent), materialized from the in-memory bitsets; dense
// slots are exactly the IDs placements get when the file is loaded back.
func (cs *CompiledStructure) appendTables(b []byte) []byte {
	counts := make([]int, len(cs.spanLo))
	var all []int32
	for s := range cs.spanLo {
		before := len(all)
		all = cs.spanSlots(s, all)
		counts[s] = len(all) - before
	}
	b = binary.AppendUvarint(b, uint64(len(cs.spanLo)))
	b = binary.AppendUvarint(b, uint64(len(all)))
	for r := 0; r+1 < len(cs.rowStart); r++ {
		b = binary.AppendUvarint(b, uint64(cs.rowStart[r+1]-cs.rowStart[r]))
	}
	for s := range cs.spanLo {
		b = binary.AppendVarint(b, int64(cs.spanLo[s]))
		b = binary.AppendUvarint(b, uint64(cs.spanHi[s]-cs.spanLo[s]))
	}
	for _, c := range counts {
		b = binary.AppendUvarint(b, uint64(c))
	}
	for _, slot := range all {
		b = binary.AppendUvarint(b, uint64(slot))
	}
	return b
}

// decodeCompiledTables parses the v3 compiled section for n blocks and
// count placements. It enforces only the bounds needed to build the
// arrays safely (sizes against remaining payload, slots < count); semantic
// agreement with the placement records is the attach step's cross-check.
func decodeCompiledTables(r *binReader, n, count int) (*compiledTables, error) {
	spans := int(r.uvarint("span count"))
	idTotal := int(r.uvarint("id count"))
	if r.err != nil {
		return nil, r.err
	}
	rest := len(r.data) - r.off
	if spans < 0 || idTotal < 0 || spans > rest || idTotal > rest {
		return nil, fmt.Errorf("core: v3 compiled section claims %d spans/%d ids, only %d payload bytes",
			spans, idTotal, rest)
	}
	ct := &compiledTables{
		rowStart: make([]int32, 2*n+1),
		spanLo:   make([]int32, spans),
		spanHi:   make([]int32, spans),
		idOff:    make([]int32, spans+1),
		ids:      make([]int32, idTotal),
	}
	total := 0
	for row := 0; row < 2*n; row++ {
		c := int(r.uvarint("row span count"))
		total += c
		if r.err != nil || c < 0 || total > spans {
			r.fail("row span count")
			return nil, r.err
		}
		ct.rowStart[row+1] = ct.rowStart[row] + int32(c)
	}
	if r.err == nil && total != spans {
		return nil, fmt.Errorf("core: v3 row span counts sum to %d, header says %d", total, spans)
	}
	for s := 0; s < spans; s++ {
		lo := r.varint("span breakpoint")
		d := r.uvarint("span breakpoint")
		if d > maxIntervalLen {
			r.fail("span breakpoint delta")
		}
		if r.err != nil {
			return nil, r.err
		}
		ct.spanLo[s], ct.spanHi[s] = int32(lo), int32(lo+int(d))
	}
	total = 0
	for s := 0; s < spans; s++ {
		c := int(r.uvarint("span id count"))
		total += c
		if r.err != nil || c < 0 || total > idTotal {
			r.fail("span id count")
			return nil, r.err
		}
		ct.idOff[s+1] = ct.idOff[s] + int32(c)
	}
	if r.err == nil && total != idTotal {
		return nil, fmt.Errorf("core: v3 span id counts sum to %d, header says %d", total, idTotal)
	}
	for k := 0; k < idTotal; k++ {
		slot := r.uvarint("placement slot")
		if r.err != nil {
			return nil, r.err
		}
		if slot >= uint64(count) {
			return nil, fmt.Errorf("core: v3 compiled section references placement slot %d of %d", slot, count)
		}
		ct.ids[k] = int32(slot)
	}
	return ct, nil
}

// attachCompiled rebuilds a CompiledStructure from decoded tables plus the
// freshly built (dense-ID) structure and installs it as s's cached index.
// The tables are cross-checked against the interval rows buildStructure
// just reconstructed — an O(S) walk — so a file whose compiled section
// disagrees with its own placements is rejected rather than answering
// compiled queries differently from tree queries.
func attachCompiled(s *Structure, ct *compiledTables) error {
	cs := newCompiledShell(s)
	cs.rowStart = ct.rowStart
	cs.spanLo, cs.spanHi = ct.spanLo, ct.spanHi
	cs.masks = make([]uint64, len(ct.spanLo)*cs.words)
	for span := range ct.spanLo {
		off := span * cs.words
		for k := ct.idOff[span]; k < ct.idOff[span+1]; k++ {
			slot := ct.ids[k] // decode bounds-checked: 0 <= slot < count
			cs.masks[off+int(slot>>6)] |= 1 << (slot & 63)
		}
	}
	for id, p := range s.placements {
		if p == nil { // cannot happen on a just-loaded structure
			return fmt.Errorf("core: attaching compiled tables to a structure with holes")
		}
		cs.appendPlacement(id, p)
	}
	if !cs.matchesRows(s) {
		return fmt.Errorf("core: v3 compiled tables disagree with the placement records (corrupt save)")
	}
	s.compiled.Store(cs)
	return nil
}

// decodeBinary parses a complete v2/v3 file (magic through CRC) into the
// shared fileFormat, plus the compiled tables when the file carries them
// (v3). The checksum is verified first, so every later decode error
// indicates a bug or a forged length field rather than line noise.
func decodeBinary(data []byte) (*fileFormat, *compiledTables, error) {
	if len(data) < len(binaryMagic)+1+crcLen {
		return nil, nil, fmt.Errorf("core: v2 file truncated (%d bytes)", len(data))
	}
	payload := data[:len(data)-crcLen]
	want := binary.LittleEndian.Uint32(data[len(data)-crcLen:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, nil, fmt.Errorf("core: v2 checksum mismatch (file truncated or corrupt)")
	}
	r := &binReader{data: payload, off: len(binaryMagic)} // magic already matched by the sniffer
	version := r.uvarint("version")
	if r.err == nil && version != binaryVersion && version != binaryVersionCompiled {
		return nil, nil, fmt.Errorf("core: unsupported binary format version %d", version)
	}
	ff := &fileFormat{Version: formatVersion}
	ff.CircuitName = string(r.bytes(int(r.uvarint("name length")), "circuit name"))
	ff.Floorplan.X0 = r.varint("floorplan")
	ff.Floorplan.Y0 = r.varint("floorplan")
	ff.Floorplan.X1 = r.varint("floorplan")
	ff.Floorplan.Y1 = r.varint("floorplan")
	n := int(r.uvarint("block count"))
	count := int(r.uvarint("placement count"))
	if r.err != nil {
		return nil, nil, r.err
	}
	// A placement record is at least 6 varints per block plus two floats
	// and two presence bytes; reject forged counts before allocating. The
	// bound is computed by division in uint64 so a crafted (count, n) pair
	// cannot overflow it past the check.
	rest := len(payload) - r.off
	if n < 0 || n > rest || count < 0 || count > rest ||
		(count > 0 && uint64(count) > uint64(rest)/(6*uint64(n)+18)) {
		return nil, nil, fmt.Errorf("core: v2 header claims %d placements of %d blocks, only %d payload bytes",
			count, n, rest)
	}
	ff.Placements = make([]savedPlacement, count)
	for j := range ff.Placements {
		sp := &ff.Placements[j]
		sp.X = r.ints(n, "x")
		sp.Y = r.ints(n, "y")
		sp.WLo, sp.WHi = r.intervals(n, "width interval")
		sp.HLo, sp.HHi = r.intervals(n, "height interval")
		sp.AvgCost = r.float64("avg cost")
		sp.BestCost = r.float64("best cost")
		sp.BestW = r.optionalInts(n, "best widths")
		sp.BestH = r.optionalInts(n, "best heights")
		if r.err != nil {
			return nil, nil, fmt.Errorf("core: placement %d: %w", j, r.err)
		}
	}
	var ct *compiledTables
	if version == binaryVersionCompiled {
		var err error
		if ct, err = decodeCompiledTables(r, n, count); err != nil {
			return nil, nil, err
		}
		if r.err != nil {
			return nil, nil, r.err
		}
	}
	if r.off != len(payload) {
		return nil, nil, fmt.Errorf("core: %d trailing bytes after v2 payload", len(payload)-r.off)
	}
	return ff, ct, nil
}

// binReader decodes the v2 payload sequentially. Methods become no-ops
// after the first error; callers check err once per record.
type binReader struct {
	data []byte
	off  int
	err  error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("core: v2 payload corrupt at byte %d (%s)", r.off, what)
	}
}

func (r *binReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) varint(what string) int {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return int(v)
}

func (r *binReader) bytes(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.data)-r.off {
		r.fail(what)
		return nil
	}
	out := r.data[r.off : r.off+n]
	r.off += n
	return out
}

func (r *binReader) float64(what string) float64 {
	b := r.bytes(8, what)
	if r.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (r *binReader) ints(n int, what string) []int {
	if r.err != nil || n > len(r.data)-r.off { // each varint is >= 1 byte
		r.fail(what)
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.varint(what)
	}
	return out
}

// intervals reads n (lo, hi-lo) pairs into parallel lo/hi slices.
func (r *binReader) intervals(n int, what string) (lo, hi []int) {
	if r.err != nil || 2*n > len(r.data)-r.off {
		r.fail(what)
		return nil, nil
	}
	lo = make([]int, n)
	hi = make([]int, n)
	for i := range lo {
		lo[i] = r.varint(what)
		d := r.uvarint(what)
		if d > maxIntervalLen {
			r.fail(what + " delta")
			return nil, nil
		}
		hi[i] = lo[i] + int(d)
	}
	return lo, hi
}

func (r *binReader) optionalInts(n int, what string) []int {
	flag := r.bytes(1, what)
	if r.err != nil {
		return nil
	}
	switch flag[0] {
	case 0:
		return nil
	case 1:
		return r.ints(n, what)
	default:
		r.fail(what + " presence flag")
		return nil
	}
}
