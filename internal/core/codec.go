package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
)

// This file implements the format-v2 binary codec for multi-placement
// structures. Layout (all integers varint-encoded unless noted):
//
//	"MPSB"                      4-byte magic
//	version                     uvarint, currently 2
//	circuit name                uvarint length + bytes
//	floorplan                   4 varints (X0, Y0, X1, Y1)
//	block count N               uvarint
//	placement count P           uvarint
//	P placement records:
//	  X, Y                      N varints each (zigzag)
//	  per block: WLo varint, WHi-WLo uvarint
//	  per block: HLo varint, HHi-HLo uvarint
//	  AvgCost, BestCost         8-byte little-endian float64 bits each
//	  BestW, BestH              presence byte (0/1) + N varints when present
//	CRC-32C                     4-byte little-endian, over everything above
//
// The trailing checksum means truncation and bit corruption are rejected
// up front, before the per-placement semantic checks in buildStructure
// run. Varint packing makes v2 files smaller than the gob v1 encoding
// (which spends bytes on reflected type metadata and field headers) and
// decoding is a single allocation-light pass instead of gob's reflection
// walk.

const (
	// binaryMagic introduces a v2 file; Load sniffs it to pick the codec.
	binaryMagic = "MPSB"
	// binaryVersion is written after the magic and checked on load.
	binaryVersion = 2
	// crcLen is the size of the trailing CRC-32C.
	crcLen = 4
	// maxIntervalLen bounds a decoded interval delta; anything larger is
	// corruption (designer dimension ranges are far below this).
	maxIntervalLen = 1 << 31
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// SaveBinary writes the structure to w in the v2 binary format. The whole
// payload is assembled in memory (structures are kilobytes to low
// megabytes) so the trailing checksum covers exactly the bytes written.
func (s *Structure) SaveBinary(w io.Writer) error {
	if _, err := w.Write(appendCRC(s.appendBinary(nil))); err != nil {
		return fmt.Errorf("core: writing structure: %w", err)
	}
	return nil
}

// appendCRC seals a v2 payload with its trailing checksum.
func appendCRC(payload []byte) []byte {
	return binary.LittleEndian.AppendUint32(payload, crc32.Checksum(payload, castagnoli))
}

// appendBinary appends the v2 payload (everything but the CRC) to b.
func (s *Structure) appendBinary(b []byte) []byte {
	b = append(b, binaryMagic...)
	b = binary.AppendUvarint(b, binaryVersion)
	b = binary.AppendUvarint(b, uint64(len(s.circuit.Name)))
	b = append(b, s.circuit.Name...)
	for _, v := range [4]int{s.fp.X0, s.fp.Y0, s.fp.X1, s.fp.Y1} {
		b = binary.AppendVarint(b, int64(v))
	}
	n := s.circuit.N()
	b = binary.AppendUvarint(b, uint64(n))
	b = binary.AppendUvarint(b, uint64(s.alive))
	for _, p := range s.placements {
		if p == nil {
			continue
		}
		b = appendInts(b, p.X)
		b = appendInts(b, p.Y)
		for i := 0; i < n; i++ {
			b = binary.AppendVarint(b, int64(p.WLo[i]))
			b = binary.AppendUvarint(b, uint64(p.WHi[i]-p.WLo[i]))
		}
		for i := 0; i < n; i++ {
			b = binary.AppendVarint(b, int64(p.HLo[i]))
			b = binary.AppendUvarint(b, uint64(p.HHi[i]-p.HLo[i]))
		}
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p.AvgCost))
		b = binary.LittleEndian.AppendUint64(b, math.Float64bits(p.BestCost))
		b = appendOptionalInts(b, p.BestW)
		b = appendOptionalInts(b, p.BestH)
	}
	return b
}

func appendInts(b []byte, vs []int) []byte {
	for _, v := range vs {
		b = binary.AppendVarint(b, int64(v))
	}
	return b
}

func appendOptionalInts(b []byte, vs []int) []byte {
	if vs == nil {
		return append(b, 0)
	}
	return appendInts(append(b, 1), vs)
}

// decodeBinary parses a complete v2 file (magic through CRC) into the
// shared fileFormat. The checksum is verified first, so every later decode
// error indicates a bug or a forged length field rather than line noise.
func decodeBinary(data []byte) (*fileFormat, error) {
	if len(data) < len(binaryMagic)+1+crcLen {
		return nil, fmt.Errorf("core: v2 file truncated (%d bytes)", len(data))
	}
	payload := data[:len(data)-crcLen]
	want := binary.LittleEndian.Uint32(data[len(data)-crcLen:])
	if got := crc32.Checksum(payload, castagnoli); got != want {
		return nil, fmt.Errorf("core: v2 checksum mismatch (file truncated or corrupt)")
	}
	r := &binReader{data: payload, off: len(binaryMagic)} // magic already matched by the sniffer
	if v := r.uvarint("version"); r.err == nil && v != binaryVersion {
		return nil, fmt.Errorf("core: unsupported binary format version %d", v)
	}
	ff := &fileFormat{Version: formatVersion}
	ff.CircuitName = string(r.bytes(int(r.uvarint("name length")), "circuit name"))
	ff.Floorplan.X0 = r.varint("floorplan")
	ff.Floorplan.Y0 = r.varint("floorplan")
	ff.Floorplan.X1 = r.varint("floorplan")
	ff.Floorplan.Y1 = r.varint("floorplan")
	n := int(r.uvarint("block count"))
	count := int(r.uvarint("placement count"))
	if r.err != nil {
		return nil, r.err
	}
	// A placement record is at least 6 varints per block plus two floats
	// and two presence bytes; reject forged counts before allocating. The
	// bound is computed by division in uint64 so a crafted (count, n) pair
	// cannot overflow it past the check.
	rest := len(payload) - r.off
	if n < 0 || n > rest || count < 0 || count > rest ||
		(count > 0 && uint64(count) > uint64(rest)/(6*uint64(n)+18)) {
		return nil, fmt.Errorf("core: v2 header claims %d placements of %d blocks, only %d payload bytes",
			count, n, rest)
	}
	ff.Placements = make([]savedPlacement, count)
	for j := range ff.Placements {
		sp := &ff.Placements[j]
		sp.X = r.ints(n, "x")
		sp.Y = r.ints(n, "y")
		sp.WLo, sp.WHi = r.intervals(n, "width interval")
		sp.HLo, sp.HHi = r.intervals(n, "height interval")
		sp.AvgCost = r.float64("avg cost")
		sp.BestCost = r.float64("best cost")
		sp.BestW = r.optionalInts(n, "best widths")
		sp.BestH = r.optionalInts(n, "best heights")
		if r.err != nil {
			return nil, fmt.Errorf("core: placement %d: %w", j, r.err)
		}
	}
	if r.off != len(payload) {
		return nil, fmt.Errorf("core: %d trailing bytes after v2 payload", len(payload)-r.off)
	}
	return ff, nil
}

// binReader decodes the v2 payload sequentially. Methods become no-ops
// after the first error; callers check err once per record.
type binReader struct {
	data []byte
	off  int
	err  error
}

func (r *binReader) fail(what string) {
	if r.err == nil {
		r.err = fmt.Errorf("core: v2 payload corrupt at byte %d (%s)", r.off, what)
	}
}

func (r *binReader) uvarint(what string) uint64 {
	if r.err != nil {
		return 0
	}
	v, n := binary.Uvarint(r.data[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return v
}

func (r *binReader) varint(what string) int {
	if r.err != nil {
		return 0
	}
	v, n := binary.Varint(r.data[r.off:])
	if n <= 0 {
		r.fail(what)
		return 0
	}
	r.off += n
	return int(v)
}

func (r *binReader) bytes(n int, what string) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > len(r.data)-r.off {
		r.fail(what)
		return nil
	}
	out := r.data[r.off : r.off+n]
	r.off += n
	return out
}

func (r *binReader) float64(what string) float64 {
	b := r.bytes(8, what)
	if r.err != nil {
		return 0
	}
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

func (r *binReader) ints(n int, what string) []int {
	if r.err != nil || n > len(r.data)-r.off { // each varint is >= 1 byte
		r.fail(what)
		return nil
	}
	out := make([]int, n)
	for i := range out {
		out[i] = r.varint(what)
	}
	return out
}

// intervals reads n (lo, hi-lo) pairs into parallel lo/hi slices.
func (r *binReader) intervals(n int, what string) (lo, hi []int) {
	if r.err != nil || 2*n > len(r.data)-r.off {
		r.fail(what)
		return nil, nil
	}
	lo = make([]int, n)
	hi = make([]int, n)
	for i := range lo {
		lo[i] = r.varint(what)
		d := r.uvarint(what)
		if d > maxIntervalLen {
			r.fail(what + " delta")
			return nil, nil
		}
		hi[i] = lo[i] + int(d)
	}
	return lo, hi
}

func (r *binReader) optionalInts(n int, what string) []int {
	flag := r.bytes(1, what)
	if r.err != nil {
		return nil
	}
	switch flag[0] {
	case 0:
		return nil
	case 1:
		return r.ints(n, what)
	default:
		r.fail(what + " presence flag")
		return nil
	}
}
