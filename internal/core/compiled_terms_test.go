package core

import (
	"math/rand"
	"testing"

	"mps/internal/cost"
	"mps/internal/geom"
	"mps/internal/netlist"
)

// termsStructure is codecStructure with a deliberately rich net list —
// a weighted 3-pin net, a pad stub and a plain 2-pin net — so the wire
// term exercises every branch of cost.netLength the netlist builder can
// produce.
func termsStructure(t testing.TB, count int) *Structure {
	t.Helper()
	b := netlist.NewBuilder("terms")
	for _, n := range []string{"a", "b", "c", "d"} {
		b.Block(n, 1, 4*count+48, 1, 40)
	}
	b.Net("tri", 2.5, netlist.P("a"), netlist.PAt("b", 0.25, 0.75), netlist.P("c"))
	b.Net("pad", 1.5, netlist.T("d", 0.5, 0.5))
	b.Net("pair", 0, netlist.P("c"), netlist.P("d")) // weight 0 counts as 1
	c := b.MustBuild()
	fp := geom.NewRect(0, 0, 16*count+400, 16*count+400)
	s := NewStructure(c, fp)
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < count; i++ {
		lo := 4*i + 1
		p := mk(1+rng.Float64(), [2]int{lo, lo + 3}, [2]int{1, 40}, [2]int{1, 40}, [2]int{1, 40})
		p.X = []int{0, 100, 200, 300}
		p.Y = []int{0, 100, 200, 300}
		p.WLo = append(p.WLo, 1, 1)
		p.WHi = append(p.WHi, 40, 40)
		p.HLo = append(p.HLo, 1, 1)
		p.HHi = append(p.HHi, 40, 40)
		if _, err := s.store(p); err != nil {
			t.Fatal(err)
		}
	}
	return s
}

// TestCoveredTermsMatchesCostVector is the probe's defining property:
// on every covered query, CoveredTerms equals cost.Vector evaluated on
// the instantiated layout, and its area/dead terms equal CoveredArea's.
func TestCoveredTermsMatchesCostVector(t *testing.T) {
	s := termsStructure(t, 40)
	cs := Compile(s)
	rng := rand.New(rand.NewSource(3))
	n := s.circuit.N()
	ws, hs := make([]int, n), make([]int, n)
	var res Result
	covered := 0
	for trial := 0; trial < 2000; trial++ {
		if trial%2 == 0 {
			// Inside placement trial%40's validity box: block a's width in
			// [4i+1, 4i+4], everything else within the shared [1, 40].
			i := rng.Intn(40)
			ws[0] = 4*i + 1 + rng.Intn(4)
			for j := 1; j < n; j++ {
				ws[j] = 1 + rng.Intn(40)
			}
			for j := 0; j < n; j++ {
				hs[j] = 1 + rng.Intn(40)
			}
		} else {
			randomDims(s, rng, ws, hs)
		}
		terms, ok, err := cs.CoveredTerms(ws, hs)
		if err != nil {
			t.Fatal(err)
		}
		area, dead, okArea, err := cs.CoveredArea(ws, hs)
		if err != nil {
			t.Fatal(err)
		}
		if ok != okArea {
			t.Fatalf("CoveredTerms ok=%v but CoveredArea ok=%v at %v/%v", ok, okArea, ws, hs)
		}
		if !ok {
			continue
		}
		covered++
		if terms.Area != area || terms.Dead != dead {
			t.Fatalf("terms area/dead %d/%d != CoveredArea %d/%d", terms.Area, terms.Dead, area, dead)
		}
		hit, err := cs.InstantiateCoveredInto(&res, ws, hs)
		if err != nil || !hit {
			t.Fatalf("covered query did not instantiate: hit=%v err=%v", hit, err)
		}
		want := cost.Vector(&cost.Layout{
			Circuit: s.circuit, X: res.X, Y: res.Y, W: ws, H: hs, Floorplan: s.fp,
		})
		if terms != want {
			t.Fatalf("CoveredTerms %+v != cost.Vector %+v at %v/%v", terms, want, ws, hs)
		}
	}
	if covered < 100 {
		t.Fatalf("only %d/2000 covered queries — the property barely ran", covered)
	}
}

// TestCoveredTermsAllocFree pins the routing-probe contract weighted
// portfolio routing relies on: zero allocations per covered probe.
func TestCoveredTermsAllocFree(t *testing.T) {
	s := termsStructure(t, 40)
	cs := Compile(s)
	n := s.circuit.N()
	ws, hs := make([]int, n), make([]int, n)
	rng := rand.New(rand.NewSource(9))
	for {
		randomDims(s, rng, ws, hs)
		if _, ok, _ := cs.CoveredTerms(ws, hs); ok {
			break
		}
	}
	allocs := testing.AllocsPerRun(200, func() {
		if _, ok, err := cs.CoveredTerms(ws, hs); !ok || err != nil {
			t.Fatalf("probe lost coverage: ok=%v err=%v", ok, err)
		}
	})
	if allocs != 0 {
		t.Fatalf("CoveredTerms allocates %.1f per covered probe, want 0", allocs)
	}
}
