package core

import (
	"math"
	"math/rand"
	"testing"

	"mps/internal/geom"
	"mps/internal/netlist"
	"mps/internal/placement"
)

// wideCircuit hand-builds a circuit whose designer ranges start at 0 and
// span the whole int range. netlist.Validate would reject WMin 0 — but
// NewStructure never validates, so a caller constructing circuits directly
// reaches Coverage with interval lengths whose hi-lo+1 overflows int.
func wideCircuit() *netlist.Circuit {
	return &netlist.Circuit{
		Name: "wide",
		Blocks: []*netlist.Block{
			{Name: "a", WMin: 0, WMax: math.MaxInt, HMin: 0, HMax: math.MaxInt},
		},
	}
}

// TestCoverageWideRangeNoOverflow is the regression test for the interval
// length overflow in Coverage: a range [0, MaxInt] has MaxInt+1 integers,
// which wraps to MinInt in int arithmetic. The pre-fix code divided by
// that negative length, flipping a half-covering placement's fraction to
// roughly -1 and silently corrupting the TargetCoverage stop condition
// (Coverage >= target could never fire). The log2-space rewrite computes
// lengths in float64 and must report ~0.5.
func TestCoverageWideRangeNoOverflow(t *testing.T) {
	c := wideCircuit()
	fp := geom.NewRect(0, 0, math.MaxInt, math.MaxInt)
	s := NewStructure(c, fp)

	half := math.MaxInt/2 - 1
	p := &placement.Placement{
		ID: -1,
		X:  []int{0}, Y: []int{0},
		WLo: []int{0}, WHi: []int{half}, // ~half the width range
		HLo: []int{0}, HHi: []int{math.MaxInt}, // the full height range
	}
	if _, err := s.store(p); err != nil {
		t.Fatal(err)
	}

	got := s.Coverage()
	if got < 0 {
		t.Fatalf("Coverage = %g, negative — interval length overflowed", got)
	}
	if got < 0.49 || got > 0.51 {
		t.Errorf("Coverage = %g, want ~0.5 for a half-width box", got)
	}

	// The Monte-Carlo estimator shares the wide-range regime: it must
	// sample (Interval.Rand) rather than panic in rand.Intn on the
	// overflowing span, and roughly agree with the exact value.
	mc := s.CoverageMonteCarlo(rand.New(rand.NewSource(2)), 4000)
	if diff := mc - got; diff < -0.05 || diff > 0.05 {
		t.Errorf("CoverageMonteCarlo = %g on the wide-range circuit, exact %g", mc, got)
	}
}

// TestCoverageMatchesProduct cross-checks the log2-space Coverage against
// the direct sum-of-fraction-products it replaced, on a circuit small
// enough for the products to be exact: the rewrite must change the
// numerics' robustness, not their value.
func TestCoverageMatchesProduct(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	if _, err := s.Insert(mk(1, [2]int{1, 25}, full(), [2]int{1, 40}, full())); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(mk(1, [2]int{60, 80}, [2]int{5, 30}, full(), full())); err != nil {
		t.Fatal(err)
	}
	want := 0.0
	for _, id := range s.IDs() {
		p := s.Get(id)
		frac := 1.0
		for i, b := range c.Blocks {
			frac *= float64(p.WIv(i).Len()) / float64(b.WRange().Len())
			frac *= float64(p.HIv(i).Len()) / float64(b.HRange().Len())
		}
		want += frac
	}
	got := s.Coverage()
	if math.Abs(got-want) > 1e-12 {
		t.Errorf("Coverage = %g, product cross-check = %g", got, want)
	}
}

// TestLog2BoxVolumeWideRange pins the companion fix in
// placement.Log2BoxVolume: a validity box spanning [0, MaxInt] must report
// a finite positive log2 volume, not the NaN that int-length overflow
// produced.
func TestLog2BoxVolumeWideRange(t *testing.T) {
	p := &placement.Placement{
		ID: -1,
		X:  []int{0}, Y: []int{0},
		WLo: []int{0}, WHi: []int{math.MaxInt},
		HLo: []int{0}, HHi: []int{math.MaxInt},
	}
	lg := p.Log2BoxVolume()
	if math.IsNaN(lg) || lg <= 0 {
		t.Errorf("Log2BoxVolume = %g, want a finite positive value (~126)", lg)
	}
}
