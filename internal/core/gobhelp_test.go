package core

import (
	"bytes"
	"encoding/gob"
)

// gobEncode and gobDecode are test helpers for corrupting save files.

func gobEncode(v interface{}) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v interface{}) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
