package core

import (
	"bufio"
	"encoding/gob"
	"fmt"
	"io"
	"math"

	"mps/internal/geom"
	"mps/internal/netlist"
	"mps/internal/placement"
)

// This file provides persistence for the "generate once, use in every
// synthesis run" workflow (paper Fig. 1): a structure is generated offline
// by cmd/mpsgen, saved, and loaded by the synthesis loop or the mpsd
// structure store.
//
// Two formats exist on disk. Format v1 is a gob blob (Save); format v2 is
// the checksummed binary codec in codec.go (SaveBinary). Load sniffs the
// header and accepts both, funneling them through one trusted validation
// path (buildStructure), so every loaded structure is checked the same way
// regardless of encoding.
//
// Only the live placements are serialized; the 2N rows are rebuilt on load
// by re-storing every placement, which guarantees a loaded structure's rows
// are consistent with its placements by construction.

// fileFormat is the decoded on-disk representation shared by both codecs.
type fileFormat struct {
	Version     int
	CircuitName string
	Floorplan   geom.Rect
	Placements  []savedPlacement
}

type savedPlacement struct {
	X, Y               []int
	WLo, WHi, HLo, HHi []int
	AvgCost, BestCost  float64
	BestW, BestH       []int
}

const formatVersion = 1

// Save writes the structure to w in the legacy gob format (v1). New code
// should prefer SaveBinary; Save remains for compatibility with readers
// that predate the v2 codec.
func (s *Structure) Save(w io.Writer) error {
	ff := fileFormat{
		Version:     formatVersion,
		CircuitName: s.circuit.Name,
		Floorplan:   s.fp,
	}
	for _, p := range s.placements {
		if p == nil {
			continue
		}
		ff.Placements = append(ff.Placements, savedPlacement{
			X: p.X, Y: p.Y,
			WLo: p.WLo, WHi: p.WHi, HLo: p.HLo, HHi: p.HHi,
			AvgCost: p.AvgCost, BestCost: p.BestCost,
			BestW: p.BestW, BestH: p.BestH,
		})
	}
	if err := gob.NewEncoder(w).Encode(ff); err != nil {
		return fmt.Errorf("core: encoding structure: %w", err)
	}
	return nil
}

// Load reads a structure saved by Save (gob v1), SaveBinary (v2) or
// SaveBinaryCompiled (v3), sniffing the format from the first bytes. The
// circuit must be the same topology the structure was generated for
// (matched by name and block count). Placements are verified
// pairwise-disjoint while loading, so a corrupted file that would violate
// eq. 5 is rejected rather than silently repaired; v2/v3 files
// additionally fail fast on a checksum mismatch before any semantic check
// runs. A v3 file's compiled tables are cross-checked against the rebuilt
// rows and installed, so the first Compile on the loaded structure is
// free.
func Load(r io.Reader, c *netlist.Circuit) (*Structure, error) {
	br := bufio.NewReader(r)
	head, err := br.Peek(len(binaryMagic))
	if err == nil && string(head) == binaryMagic {
		data, err := io.ReadAll(br)
		if err != nil {
			return nil, fmt.Errorf("core: reading structure: %w", err)
		}
		ff, ct, err := decodeBinary(data)
		if err != nil {
			return nil, err
		}
		s, err := buildStructure(ff, c)
		if err != nil {
			return nil, err
		}
		if ct != nil {
			if err := attachCompiled(s, ct); err != nil {
				return nil, err
			}
		}
		return s, nil
	}
	// Not a v2 header: treat as gob v1. Short or garbage streams land here
	// too and fail with gob's decode error.
	var ff fileFormat
	if err := gob.NewDecoder(br).Decode(&ff); err != nil {
		return nil, fmt.Errorf("core: decoding structure: %w", err)
	}
	if ff.Version != formatVersion {
		return nil, fmt.Errorf("core: unsupported format version %d", ff.Version)
	}
	return buildStructure(&ff, c)
}

// buildStructure is the single trusted deserialization path: it validates
// the decoded file against the circuit and re-stores every placement,
// whatever codec produced it. A loaded structure satisfies the same
// invariants CheckInvariants verifies: arity and designer bounds (store),
// geometric legality at max dims (CheckLegal), and pairwise-disjoint
// dimension boxes (eq. 5). Box overlap — which only a corrupt or forged
// file can contain — is detected via the interval rows as each placement
// is stored (a row pre-filter plus box checks against the few row-sharing
// candidates) instead of the former all-pairs BoxOverlaps pass, so
// loading stays near-linear in placements for well-formed files.
func buildStructure(ff *fileFormat, c *netlist.Circuit) (*Structure, error) {
	if c.Name != ff.CircuitName {
		return nil, fmt.Errorf("core: file is for circuit %q, not %q", ff.CircuitName, c.Name)
	}
	// Bound the floorplan to the compiled index's int32 coordinate space.
	// CheckLegal keeps every anchor inside the floorplan, so this one check
	// makes Compile's int32 narrowing infallible for any loaded structure —
	// a forged file cannot turn the decoder's error contract into a panic.
	for _, v := range [4]int{ff.Floorplan.X0, ff.Floorplan.Y0, ff.Floorplan.X1, ff.Floorplan.Y1} {
		if v < math.MinInt32 || v > math.MaxInt32 {
			return nil, fmt.Errorf("core: floorplan %v exceeds the int32 coordinate range", ff.Floorplan)
		}
	}
	s := NewStructure(c, ff.Floorplan)
	n := c.N()
	for idx, sp := range ff.Placements {
		if len(sp.X) != n || len(sp.Y) != n || len(sp.WLo) != n || len(sp.WHi) != n ||
			len(sp.HLo) != n || len(sp.HHi) != n {
			return nil, fmt.Errorf("core: placement %d has wrong arity for %d blocks", idx, n)
		}
		if (sp.BestW != nil && len(sp.BestW) != n) || (sp.BestH != nil && len(sp.BestH) != n) {
			return nil, fmt.Errorf("core: placement %d has wrong best-dims arity for %d blocks", idx, n)
		}
		p := &placement.Placement{
			ID: -1,
			X:  sp.X, Y: sp.Y,
			WLo: sp.WLo, WHi: sp.WHi, HLo: sp.HLo, HHi: sp.HHi,
			AvgCost: sp.AvgCost, BestCost: sp.BestCost,
			BestW: sp.BestW, BestH: sp.BestH,
		}
		if err := p.CheckLegal(s.fp); err != nil {
			return nil, fmt.Errorf("core: placement %d: %w", idx, err)
		}
		if ids := s.conflicting(p); len(ids) > 0 {
			return nil, fmt.Errorf("core: placements %d and %d in file overlap (corrupt save)", idx, ids[0])
		}
		if _, err := s.store(p); err != nil {
			return nil, fmt.Errorf("core: placement %d: %w", idx, err)
		}
	}
	return s, nil
}
