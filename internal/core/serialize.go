package core

import (
	"encoding/gob"
	"fmt"
	"io"

	"mps/internal/geom"
	"mps/internal/netlist"
	"mps/internal/placement"
)

// This file provides persistence for the "generate once, use in every
// synthesis run" workflow (paper Fig. 1): a structure is generated offline
// by cmd/mpsgen, saved, and loaded by the synthesis loop.
//
// Only the live placements are serialized; the 2N rows are rebuilt on load
// by re-storing every placement, which guarantees a loaded structure's rows
// are consistent with its placements by construction.

// fileFormat is the on-disk representation.
type fileFormat struct {
	Version     int
	CircuitName string
	Floorplan   geom.Rect
	Placements  []savedPlacement
}

type savedPlacement struct {
	X, Y               []int
	WLo, WHi, HLo, HHi []int
	AvgCost, BestCost  float64
	BestW, BestH       []int
}

const formatVersion = 1

// Save writes the structure to w in gob format.
func (s *Structure) Save(w io.Writer) error {
	ff := fileFormat{
		Version:     formatVersion,
		CircuitName: s.circuit.Name,
		Floorplan:   s.fp,
	}
	for _, p := range s.placements {
		if p == nil {
			continue
		}
		ff.Placements = append(ff.Placements, savedPlacement{
			X: p.X, Y: p.Y,
			WLo: p.WLo, WHi: p.WHi, HLo: p.HLo, HHi: p.HHi,
			AvgCost: p.AvgCost, BestCost: p.BestCost,
			BestW: p.BestW, BestH: p.BestH,
		})
	}
	if err := gob.NewEncoder(w).Encode(ff); err != nil {
		return fmt.Errorf("core: encoding structure: %w", err)
	}
	return nil
}

// Load reads a structure saved by Save. The circuit must be the same
// topology the structure was generated for (matched by name and block
// count). Placements are verified pairwise-disjoint while loading, so a
// corrupted file that would violate eq. 5 is rejected rather than silently
// repaired.
func Load(r io.Reader, c *netlist.Circuit) (*Structure, error) {
	var ff fileFormat
	if err := gob.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("core: decoding structure: %w", err)
	}
	if ff.Version != formatVersion {
		return nil, fmt.Errorf("core: unsupported format version %d", ff.Version)
	}
	if c.Name != ff.CircuitName {
		return nil, fmt.Errorf("core: file is for circuit %q, not %q", ff.CircuitName, c.Name)
	}
	s := NewStructure(c, ff.Floorplan)
	n := c.N()
	for idx, sp := range ff.Placements {
		if len(sp.X) != n || len(sp.Y) != n || len(sp.WLo) != n || len(sp.WHi) != n ||
			len(sp.HLo) != n || len(sp.HHi) != n {
			return nil, fmt.Errorf("core: placement %d has wrong arity for %d blocks", idx, n)
		}
		p := &placement.Placement{
			ID: -1,
			X:  sp.X, Y: sp.Y,
			WLo: sp.WLo, WHi: sp.WHi, HLo: sp.HLo, HHi: sp.HHi,
			AvgCost: sp.AvgCost, BestCost: sp.BestCost,
			BestW: sp.BestW, BestH: sp.BestH,
		}
		for _, id := range s.IDs() {
			if p.BoxOverlaps(s.placements[id]) {
				return nil, fmt.Errorf("core: placements %d and %d in file overlap (corrupt save)", idx, id)
			}
		}
		if _, err := s.store(p); err != nil {
			return nil, fmt.Errorf("core: placement %d: %w", idx, err)
		}
	}
	return s, nil
}
