package core

import "mps/internal/placement"

// Overlap resolution fragments placements: every fork leaves two (or, after
// repeated conflicts, many) stored placements with identical coordinates
// whose dimension boxes abut. Compact re-merges such fragments, shrinking
// the structure without changing what any query returns — smaller Table 2
// "Placements" counts and faster row walks for free.
//
// Two live placements merge when they have identical block coordinates and
// identical validity intervals in every row except exactly one, where the
// intervals abut ([a,b] and [b+1,c]). The merged box is then exactly the
// set union of the two boxes, so disjointness against all other placements
// is preserved by construction. Costs are combined conservatively: AvgCost
// is the interval-length-weighted mean, BestCost/BestW/BestH come from the
// better half.

// Compact merges abutting fragments until none remain and returns the
// number of merges performed.
func (s *Structure) Compact() int {
	merges := 0
	for {
		merged := s.compactOnce()
		if merged == 0 {
			return merges
		}
		merges += merged
	}
}

// compactOnce scans all live pairs and performs at most one merge per pair
// scan round; it returns the number of merges applied this round.
func (s *Structure) compactOnce() int {
	ids := s.IDs()
	for a := 0; a < len(ids); a++ {
		p := s.placements[ids[a]]
		if p == nil {
			continue
		}
		for b := a + 1; b < len(ids); b++ {
			q := s.placements[ids[b]]
			if q == nil {
				continue
			}
			if m := tryMerge(p, q); m != nil {
				s.delete(p.ID)
				s.delete(q.ID)
				// Union of two previously-disjoint boxes: store cannot fail
				// on overlap grounds, and interval bounds are inherited.
				if _, err := s.store(m); err != nil {
					// Restore is impossible mid-merge; surface loudly. This
					// cannot happen for boxes that were stored before.
					panic("core: Compact failed to store merged placement: " + err.Error())
				}
				return 1
			}
		}
	}
	return 0
}

// tryMerge returns the merged placement when p and q are mergeable, nil
// otherwise.
func tryMerge(p, q *placement.Placement) *placement.Placement {
	n := p.N()
	for i := 0; i < n; i++ {
		if p.X[i] != q.X[i] || p.Y[i] != q.Y[i] {
			return nil
		}
	}
	// Find the single differing row; all others must be identical.
	diffBlock, diffDim := -1, -1
	for i := 0; i < n; i++ {
		for d := 0; d < 2; d++ {
			var pl, ph, ql, qh int
			if d == 0 {
				pl, ph, ql, qh = p.WLo[i], p.WHi[i], q.WLo[i], q.WHi[i]
			} else {
				pl, ph, ql, qh = p.HLo[i], p.HHi[i], q.HLo[i], q.HHi[i]
			}
			if pl == ql && ph == qh {
				continue
			}
			if diffBlock >= 0 {
				return nil // two differing rows: union is not a box
			}
			// The differing intervals must abut.
			if ph+1 != ql && qh+1 != pl {
				return nil
			}
			diffBlock, diffDim = i, d
		}
	}
	if diffBlock < 0 {
		// Identical boxes cannot coexist (disjointness invariant); treat as
		// non-mergeable and let CheckInvariants flag the corruption.
		return nil
	}

	m := p.Clone()
	m.ID = -1
	var lenP, lenQ int
	if diffDim == 0 {
		lenP = p.WHi[diffBlock] - p.WLo[diffBlock] + 1
		lenQ = q.WHi[diffBlock] - q.WLo[diffBlock] + 1
		m.WLo[diffBlock] = min(p.WLo[diffBlock], q.WLo[diffBlock])
		m.WHi[diffBlock] = max(p.WHi[diffBlock], q.WHi[diffBlock])
	} else {
		lenP = p.HHi[diffBlock] - p.HLo[diffBlock] + 1
		lenQ = q.HHi[diffBlock] - q.HLo[diffBlock] + 1
		m.HLo[diffBlock] = min(p.HLo[diffBlock], q.HLo[diffBlock])
		m.HHi[diffBlock] = max(p.HHi[diffBlock], q.HHi[diffBlock])
	}
	total := float64(lenP + lenQ)
	m.AvgCost = (p.AvgCost*float64(lenP) + q.AvgCost*float64(lenQ)) / total
	better := p
	if q.BestCost < p.BestCost {
		better = q
	}
	m.BestCost = better.BestCost
	if better.BestW != nil {
		m.BestW = append([]int(nil), better.BestW...)
		m.BestH = append([]int(nil), better.BestH...)
	}
	return m
}
