package core

// Failure-injection tests: corrupt a healthy structure in targeted ways and
// verify CheckInvariants reports each corruption class. These guard the
// debuggability story — a structure that silently violates eq. 5 would
// return wrong placements during synthesis with no error anywhere.

import (
	"strings"
	"testing"

	"mps/internal/geom"
)

// healthy builds a small structure with a few disjoint placements.
func healthy(t *testing.T) *Structure {
	t.Helper()
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	for _, iv := range [][2]int{{1, 20}, {30, 50}, {60, 90}} {
		if _, err := s.Insert(mk(1.0, iv, full(), full(), full())); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatalf("setup not healthy: %v", err)
	}
	return s
}

func TestDetectsOverlappingBoxes(t *testing.T) {
	s := healthy(t)
	// Widen placement 0's box so it overlaps placement 1's region without
	// touching the rows (simulating a partial-update bug).
	p := s.Get(0)
	p.WHi[0] = 40
	err := s.CheckInvariants()
	if err == nil {
		t.Fatal("overlapping boxes not detected")
	}
}

func TestDetectsRowDeregistrationDrift(t *testing.T) {
	s := healthy(t)
	// Shrink the placement's recorded interval without updating the row:
	// the row now claims validity outside the placement's box.
	p := s.Get(1)
	p.WLo[0] += 5
	err := s.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "registered") {
		t.Fatalf("row drift not detected: %v", err)
	}
}

func TestDetectsEmptyBox(t *testing.T) {
	s := healthy(t)
	p := s.Get(2)
	p.WLo[0], p.WHi[0] = 10, 5
	err := s.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "empty") {
		t.Fatalf("empty box not detected: %v", err)
	}
}

func TestDetectsOutOfBoundsInterval(t *testing.T) {
	s := healthy(t)
	p := s.Get(0)
	p.WHi[1] = 9999 // way beyond designer max
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("out-of-bounds interval not detected")
	}
}

func TestDetectsGeometricOverlap(t *testing.T) {
	s := healthy(t)
	p := s.Get(0)
	// Move block 1 onto block 0: illegal at max dims.
	p.X[1], p.Y[1] = p.X[0], p.Y[0]
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("geometric overlap not detected")
	}
}

func TestDetectsAliveCountDrift(t *testing.T) {
	s := healthy(t)
	s.alive++ // accounting bug
	err := s.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "alive") {
		t.Fatalf("alive-count drift not detected: %v", err)
	}
}

func TestDetectsIDMismatch(t *testing.T) {
	s := healthy(t)
	s.Get(0).ID = 7
	err := s.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "ID") {
		t.Fatalf("ID mismatch not detected: %v", err)
	}
}

func TestDetectsDanglingRowReference(t *testing.T) {
	s := healthy(t)
	// Delete the placement record but leave the rows untouched.
	s.placements[1] = nil
	s.alive--
	err := s.CheckInvariants()
	if err == nil {
		t.Fatal("dangling row reference not detected")
	}
}

func TestDetectsRowCorruption(t *testing.T) {
	s := healthy(t)
	// Directly violate the row's list invariants by inserting a stray
	// overlapping registration for a live id.
	s.wRows[0].Insert(0, geom.NewInterval(25, 35))
	if err := s.CheckInvariants(); err == nil {
		t.Fatal("stray row registration not detected")
	}
}
