package core
