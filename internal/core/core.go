// Package core implements the multi-placement structure — the paper's
// primary contribution (§2). A Structure maps any block-dimension vector
// V = (w_1,h_1, …, w_N,h_N) to at most one stored placement via 2N interval
// rows (Fig. 3): a width row and a height row per block, each an ascending
// non-overlapping interval list carrying placement indices.
//
// The defining invariant is eq. 5, |M(V)| <= 1 for every V, enforced by
// keeping the stored placements' 2N-dimensional dimension boxes pairwise
// disjoint (see resolve.go). Queries on covered space return exactly one
// placement; uncovered space falls back to a caller-provided backup
// template (§3.1.4: "the remaining uncovered percentage of the space would
// then be mapped to a template-like placement").
//
// # Concurrency
//
// A Structure follows the paper's generate-once, query-many life cycle
// (Fig. 1): generation (Insert, Compact, SetBackup, SetResolveStrategy)
// mutates the structure and must be externally serialized — the explorer
// already does this for its parallel chains — while the query path
// (Lookup, Query, Instantiate, Coverage and friends) is safe for any
// number of concurrent readers once generation has finished. Queries
// share no mutable state: the interval rows are only read, per-call
// intersection scratch comes from an internal sync.Pool, and results are
// copied out of the structure. Installed Backup implementations must
// themselves be safe for concurrent Place calls (both shipped backups,
// template and seqpair, are stateless after construction).
//
// Compile follows the same life cycle: it flattens the rows into a
// CompiledStructure (compiled.go) — the serving hot path — once
// generation is done, caches the result on the structure, and any
// mutation invalidates the cache. The compiled index is likewise safe
// for unlimited concurrent readers.
package core
