package core

import (
	"encoding/json"
	"fmt"
	"io"
	"math"
	"sort"
)

// The gob format (serialize.go) is the compact load/store path; this file
// adds a JSON export for interchange and inspection — what cmd/mpsinfo and
// external tooling consume. JSON export is one-way by design: Load only
// accepts the gob format, so there is exactly one trusted deserializer.

// ExportJSON is the JSON document layout.
type ExportJSON struct {
	Circuit    string            `json:"circuit"`
	Blocks     int               `json:"blocks"`
	Floorplan  [4]int            `json:"floorplan"` // x0, y0, x1, y1
	Placements []PlacementJSON   `json:"placements"`
	Summary    StructSummaryJSON `json:"summary"`
}

// PlacementJSON is one stored placement in the export.
type PlacementJSON struct {
	ID       int     `json:"id"`
	X        []int   `json:"x"`
	Y        []int   `json:"y"`
	WLo      []int   `json:"w_lo"`
	WHi      []int   `json:"w_hi"`
	HLo      []int   `json:"h_lo"`
	HHi      []int   `json:"h_hi"`
	AvgCost  float64 `json:"avg_cost"`
	BestCost float64 `json:"best_cost"`
	// Log2Volume is log2 of the number of dimension vectors the placement
	// covers.
	Log2Volume float64 `json:"log2_volume"`
}

// StructSummaryJSON aggregates structure health metrics.
type StructSummaryJSON struct {
	Placements   int     `json:"placements"`
	Coverage     float64 `json:"coverage"`
	CoverageLog2 float64 `json:"coverage_log2"`
	MeanAvgCost  float64 `json:"mean_avg_cost"`
	BestBestCost float64 `json:"best_best_cost"`
	RowIntervals int     `json:"row_intervals"` // total interval objects over all 2N rows
	MaxRowLength int     `json:"max_row_length"`
}

// WriteJSON exports the structure to w as indented JSON.
func (s *Structure) WriteJSON(w io.Writer) error {
	doc := ExportJSON{
		Circuit:   s.circuit.Name,
		Blocks:    s.circuit.N(),
		Floorplan: [4]int{s.fp.X0, s.fp.Y0, s.fp.X1, s.fp.Y1},
		Summary:   s.Summary(),
	}
	for _, id := range s.IDs() {
		p := s.placements[id]
		doc.Placements = append(doc.Placements, PlacementJSON{
			ID: id,
			X:  p.X, Y: p.Y,
			WLo: p.WLo, WHi: p.WHi, HLo: p.HLo, HHi: p.HHi,
			AvgCost: p.AvgCost, BestCost: p.BestCost,
			Log2Volume: p.Log2BoxVolume(),
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("core: encoding JSON: %w", err)
	}
	return nil
}

// Summary computes the aggregate metrics of the structure.
func (s *Structure) Summary() StructSummaryJSON {
	sum := StructSummaryJSON{
		Placements:   s.alive,
		Coverage:     s.Coverage(),
		CoverageLog2: s.CoverageLog2(),
		BestBestCost: math.Inf(1),
	}
	var costTotal float64
	for _, p := range s.placements {
		if p == nil {
			continue
		}
		costTotal += p.AvgCost
		if p.BestCost < sum.BestBestCost {
			sum.BestBestCost = p.BestCost
		}
	}
	if s.alive > 0 {
		sum.MeanAvgCost = costTotal / float64(s.alive)
	} else {
		sum.BestBestCost = 0
	}
	for i := 0; i < s.circuit.N(); i++ {
		for _, row := range []interface{ Len() int }{s.wRows[i], s.hRows[i]} {
			sum.RowIntervals += row.Len()
			if row.Len() > sum.MaxRowLength {
				sum.MaxRowLength = row.Len()
			}
		}
	}
	return sum
}

// RowHistogram returns, per block, the number of interval objects in its
// width and height rows — the Figure-3 row occupancy profile cmd/mpsinfo
// prints.
func (s *Structure) RowHistogram() (wLens, hLens []int) {
	n := s.circuit.N()
	wLens = make([]int, n)
	hLens = make([]int, n)
	for i := 0; i < n; i++ {
		wLens[i] = s.wRows[i].Len()
		hLens[i] = s.hRows[i].Len()
	}
	return wLens, hLens
}

// CostQuantiles returns the q-quantiles (0 < q) of stored AvgCosts in
// ascending order, e.g. q=4 gives quartiles [min, p25, p50, p75, max].
func (s *Structure) CostQuantiles(q int) []float64 {
	if q < 1 || s.alive == 0 {
		return nil
	}
	costs := make([]float64, 0, s.alive)
	for _, p := range s.placements {
		if p != nil {
			costs = append(costs, p.AvgCost)
		}
	}
	sort.Float64s(costs)
	out := make([]float64, q+1)
	for k := 0; k <= q; k++ {
		idx := k * (len(costs) - 1) / q
		out[k] = costs[idx]
	}
	return out
}
