package core

import (
	"bytes"
	"errors"
	"math/rand"
	"reflect"
	"testing"

	"mps/internal/geom"
	"mps/internal/netlist"
	"mps/internal/placement"
)

// pairCircuit returns a two-block circuit with wide dimension bounds
// [1,100] and anchors chosen so blocks can never collide at max dims.
func pairCircuit() (*netlist.Circuit, geom.Rect) {
	b := netlist.NewBuilder("pair")
	b.Block("a", 1, 100, 1, 100)
	b.Block("b", 1, 100, 1, 100)
	b.Net("n", 1, netlist.P("a"), netlist.P("b"))
	return b.MustBuild(), geom.NewRect(0, 0, 500, 500)
}

// mk builds a legal placement on the pair circuit with the given validity
// box and average cost. Intervals are [lo hi] pairs per block: w0, h0, w1, h1.
func mk(avg float64, w0, h0, w1, h1 [2]int) *placement.Placement {
	p := &placement.Placement{
		ID: -1,
		X:  []int{0, 200}, Y: []int{0, 200},
		WLo: []int{w0[0], w1[0]}, WHi: []int{w0[1], w1[1]},
		HLo: []int{h0[0], h1[0]}, HHi: []int{h0[1], h1[1]},
		AvgCost: avg, BestCost: avg / 2,
	}
	return p
}

func full() [2]int { return [2]int{1, 100} }

func TestStoreAndQuerySingle(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	stats, err := s.Insert(mk(1, [2]int{10, 20}, [2]int{10, 20}, [2]int{10, 20}, [2]int{10, 20}))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.StoredIDs) != 1 {
		t.Fatalf("StoredIDs = %v, want one", stats.StoredIDs)
	}
	if s.NumPlacements() != 1 {
		t.Fatalf("NumPlacements = %d, want 1", s.NumPlacements())
	}
	p, err := s.Query([]int{15, 15}, []int{15, 15})
	if err != nil {
		t.Fatal(err)
	}
	if p.ID != stats.StoredIDs[0] {
		t.Errorf("Query returned placement %d, want %d", p.ID, stats.StoredIDs[0])
	}
	if _, err := s.Query([]int{50, 15}, []int{15, 15}); !errors.Is(err, ErrUncovered) {
		t.Errorf("outside box: err = %v, want ErrUncovered", err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestQueryRejectsBadDims(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	if _, err := s.Query([]int{5}, []int{5, 5}); err == nil {
		t.Error("short vector should error")
	}
	if _, err := s.Query([]int{0, 5}, []int{5, 5}); err == nil {
		t.Error("width below designer min should error")
	}
	if _, err := s.Query([]int{5, 5}, []int{5, 101}); err == nil {
		t.Error("height above designer max should error")
	}
}

// TestCandidateShrinks covers the partial-overlap case: the newcomer has the
// higher average cost and must lose the shared region in the smallest row.
func TestCandidateShrinks(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	if _, err := s.Insert(mk(1.0, [2]int{10, 20}, full(), full(), full())); err != nil {
		t.Fatal(err)
	}
	stats, err := s.Insert(mk(2.0, [2]int{15, 30}, full(), full(), full()))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.StoredIDs) != 1 {
		t.Fatalf("StoredIDs = %v, want one shrunk piece", stats.StoredIDs)
	}
	got := s.Get(stats.StoredIDs[0])
	if got.WLo[0] != 21 || got.WHi[0] != 30 {
		t.Errorf("candidate w0 interval [%d,%d], want [21,30]", got.WLo[0], got.WHi[0])
	}
	// The incumbent still answers inside its region.
	p, err := s.Query([]int{18, 5}, []int{5, 5})
	if err != nil || p.AvgCost != 1.0 {
		t.Errorf("query in incumbent region: p=%v err=%v", p, err)
	}
	// The newcomer answers in its surviving region.
	p, err = s.Query([]int{25, 5}, []int{5, 5})
	if err != nil || p.AvgCost != 2.0 {
		t.Errorf("query in newcomer region: p=%v err=%v", p, err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestCandidateForks covers the containment case: the newcomer's interval
// strictly contains the incumbent's, so the newcomer splits into two.
func TestCandidateForks(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	if _, err := s.Insert(mk(1.0, [2]int{40, 50}, full(), full(), full())); err != nil {
		t.Fatal(err)
	}
	stats, err := s.Insert(mk(2.0, [2]int{10, 100}, full(), full(), full()))
	if err != nil {
		t.Fatal(err)
	}
	if len(stats.StoredIDs) != 2 {
		t.Fatalf("StoredIDs = %v, want two forked pieces", stats.StoredIDs)
	}
	if s.NumPlacements() != 3 {
		t.Fatalf("NumPlacements = %d, want 3", s.NumPlacements())
	}
	// Left piece, incumbent, right piece must answer their own regions.
	for _, tc := range []struct {
		w0   int
		want float64
	}{
		{20, 2.0}, {45, 1.0}, {60, 2.0},
	} {
		p, err := s.Query([]int{tc.w0, 5}, []int{5, 5})
		if err != nil {
			t.Fatalf("w0=%d: %v", tc.w0, err)
		}
		if p.AvgCost != tc.want {
			t.Errorf("w0=%d answered by cost-%g placement, want %g", tc.w0, p.AvgCost, tc.want)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestCandidateEngulfed: a worse newcomer entirely inside an incumbent's box
// must die without changing the structure.
func TestCandidateEngulfed(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	if _, err := s.Insert(mk(1.0, full(), full(), full(), full())); err != nil {
		t.Fatal(err)
	}
	stats, err := s.Insert(mk(2.0, [2]int{10, 20}, [2]int{10, 20}, [2]int{10, 20}, [2]int{10, 20}))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CandidateDied || len(stats.StoredIDs) != 0 {
		t.Errorf("stats = %+v, want candidate death", stats)
	}
	if s.NumPlacements() != 1 {
		t.Errorf("NumPlacements = %d, want 1", s.NumPlacements())
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestStoredForks: a better newcomer cutting through the middle of a stored
// placement's interval forks the stored placement.
func TestStoredForks(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	if _, err := s.Insert(mk(2.0, full(), full(), full(), full())); err != nil {
		t.Fatal(err)
	}
	stats, err := s.Insert(mk(1.0, [2]int{40, 50}, full(), full(), full()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.StoredForked != 1 {
		t.Errorf("StoredForked = %d, want 1", stats.StoredForked)
	}
	if s.NumPlacements() != 3 {
		t.Errorf("NumPlacements = %d, want 3 (two halves + newcomer)", s.NumPlacements())
	}
	p, err := s.Query([]int{45, 5}, []int{5, 5})
	if err != nil || p.AvgCost != 1.0 {
		t.Errorf("newcomer should own the middle: p=%v err=%v", p, err)
	}
	p, err = s.Query([]int{10, 5}, []int{5, 5})
	if err != nil || p.AvgCost != 2.0 {
		t.Errorf("left half should remain: p=%v err=%v", p, err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestStoredEngulfedDeleted: a better newcomer covering a stored placement's
// whole box deletes the stored placement.
func TestStoredEngulfedDeleted(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	sub := [2]int{10, 20}
	if _, err := s.Insert(mk(2.0, sub, sub, sub, sub)); err != nil {
		t.Fatal(err)
	}
	stats, err := s.Insert(mk(1.0, full(), full(), full(), full()))
	if err != nil {
		t.Fatal(err)
	}
	if stats.StoredDeleted != 1 {
		t.Errorf("StoredDeleted = %d, want 1", stats.StoredDeleted)
	}
	if s.NumPlacements() != 1 {
		t.Errorf("NumPlacements = %d, want only the newcomer", s.NumPlacements())
	}
	p, err := s.Query([]int{15, 5}, []int{15, 5})
	if err != nil || p.AvgCost != 1.0 {
		t.Errorf("newcomer should own everything: p=%v err=%v", p, err)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestTieKeepsIncumbent: equal average costs must not evict the stored
// placement.
func TestTieKeepsIncumbent(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	if _, err := s.Insert(mk(1.0, full(), full(), full(), full())); err != nil {
		t.Fatal(err)
	}
	stats, err := s.Insert(mk(1.0, [2]int{10, 20}, [2]int{10, 20}, [2]int{10, 20}, [2]int{10, 20}))
	if err != nil {
		t.Fatal(err)
	}
	if !stats.CandidateDied {
		t.Error("tied candidate inside incumbent should die")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestInsertRandomizedInvariants drives Insert with random boxes and costs
// and checks full invariants plus a brute-force query oracle after every
// step. This is the eq.5 guarantee under stress.
func TestInsertRandomizedInvariants(t *testing.T) {
	b := netlist.NewBuilder("tri")
	b.Block("a", 1, 12, 1, 12)
	b.Block("b", 1, 12, 1, 12)
	b.Block("c", 1, 12, 1, 12)
	b.Net("n", 1, netlist.P("a"), netlist.P("b"), netlist.P("c"))
	c := b.MustBuild()
	fp := geom.NewRect(0, 0, 200, 200)

	rng := rand.New(rand.NewSource(99))
	randIv := func() [2]int {
		lo := 1 + rng.Intn(12)
		hi := lo + rng.Intn(13-lo)
		return [2]int{lo, hi}
	}
	s := NewStructure(c, fp)
	for step := 0; step < 60; step++ {
		w0, h0 := randIv(), randIv()
		w1, h1 := randIv(), randIv()
		w2, h2 := randIv(), randIv()
		p := &placement.Placement{
			ID: -1,
			X:  []int{0, 60, 120}, Y: []int{0, 60, 120},
			WLo: []int{w0[0], w1[0], w2[0]}, WHi: []int{w0[1], w1[1], w2[1]},
			HLo: []int{h0[0], h1[0], h2[0]}, HHi: []int{h0[1], h1[1], h2[1]},
			AvgCost: 1 + rng.Float64()*9,
		}
		if _, err := s.Insert(p); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
		if err := s.CheckInvariants(); err != nil {
			t.Fatalf("step %d: %v", step, err)
		}
	}

	// Brute-force oracle: Lookup must agree with a linear Covers scan.
	ws := make([]int, 3)
	hs := make([]int, 3)
	for trial := 0; trial < 3000; trial++ {
		for i := 0; i < 3; i++ {
			ws[i] = 1 + rng.Intn(12)
			hs[i] = 1 + rng.Intn(12)
		}
		got := s.Lookup(ws, hs)
		var want []int
		for _, id := range s.IDs() {
			if s.Get(id).Covers(ws, hs) {
				want = append(want, id)
			}
		}
		if len(want) > 1 {
			t.Fatalf("oracle found %d covering placements — disjointness broken", len(want))
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Lookup(%v,%v) = %v, oracle = %v", ws, hs, got, want)
		}
	}
}

func TestInstantiateWithBackup(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	if _, err := s.Insert(mk(1, [2]int{10, 20}, [2]int{10, 20}, [2]int{10, 20}, [2]int{10, 20})); err != nil {
		t.Fatal(err)
	}

	// No backup: uncovered queries error.
	if _, err := s.Instantiate([]int{50, 50}, []int{50, 50}); !errors.Is(err, ErrUncovered) {
		t.Errorf("err = %v, want ErrUncovered", err)
	}

	s.SetBackup(backupFunc(func(ws, hs []int) ([]int, []int, error) {
		return []int{1, 2}, []int{3, 4}, nil
	}))
	res, err := s.Instantiate([]int{50, 50}, []int{50, 50})
	if err != nil {
		t.Fatal(err)
	}
	if !res.FromBackup || res.PlacementID != -1 {
		t.Errorf("res = %+v, want backup provenance", res)
	}
	if !reflect.DeepEqual(res.X, []int{1, 2}) {
		t.Errorf("backup X = %v", res.X)
	}

	// Covered queries still come from the structure.
	res, err = s.Instantiate([]int{15, 15}, []int{15, 15})
	if err != nil {
		t.Fatal(err)
	}
	if res.FromBackup || res.PlacementID < 0 {
		t.Errorf("res = %+v, want stored placement", res)
	}
}

type backupFunc func(ws, hs []int) ([]int, []int, error)

func (f backupFunc) Place(ws, hs []int) ([]int, []int, error) { return f(ws, hs) }

func TestSaveLoadRoundTrip(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 20; i++ {
		lo := 1 + rng.Intn(80)
		hi := lo + rng.Intn(101-lo)
		if _, err := s.Insert(mk(1+rng.Float64(), [2]int{lo, hi}, full(), full(), full())); err != nil {
			t.Fatal(err)
		}
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	s2, err := Load(&buf, c)
	if err != nil {
		t.Fatal(err)
	}
	if s2.NumPlacements() != s.NumPlacements() {
		t.Fatalf("loaded %d placements, want %d", s2.NumPlacements(), s.NumPlacements())
	}
	if err := s2.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Queries agree everywhere on a sample.
	for trial := 0; trial < 500; trial++ {
		ws := []int{1 + rng.Intn(100), 1 + rng.Intn(100)}
		hs := []int{1 + rng.Intn(100), 1 + rng.Intn(100)}
		a, errA := s.Query(ws, hs)
		b, errB := s2.Query(ws, hs)
		if (errA == nil) != (errB == nil) {
			t.Fatalf("query divergence at %v/%v: %v vs %v", ws, hs, errA, errB)
		}
		if errA == nil && (a.AvgCost != b.AvgCost || !reflect.DeepEqual(a.X, b.X)) {
			t.Fatalf("loaded structure answers differently at %v/%v", ws, hs)
		}
	}
}

func TestLoadRejectsWrongCircuit(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	other := netlist.NewBuilder("other")
	other.Block("x", 1, 10, 1, 10)
	other.Net("n", 1, netlist.T("x", 0, 0))
	oc := other.MustBuild()
	if _, err := Load(&buf, oc); err == nil {
		t.Error("loading into a different circuit should fail")
	}
}

func TestLoadRejectsCorruptOverlap(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	if _, err := s.Insert(mk(1, [2]int{10, 20}, full(), full(), full())); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := s.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// Corrupt: duplicate the placement so boxes overlap.
	var ff fileFormat
	if err := gobDecode(buf.Bytes(), &ff); err != nil {
		t.Fatal(err)
	}
	ff.Placements = append(ff.Placements, ff.Placements[0])
	data, err := gobEncode(&ff)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Load(bytes.NewReader(data), c); err == nil {
		t.Error("corrupt save with overlapping boxes should be rejected")
	}
}

func TestCoverageExactVsMonteCarlo(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	// One box covering w0 in [1,50] (half), everything else full: exact
	// coverage = 0.5.
	if _, err := s.Insert(mk(1, [2]int{1, 50}, full(), full(), full())); err != nil {
		t.Fatal(err)
	}
	exact := s.Coverage()
	if exact < 0.49 || exact > 0.51 {
		t.Errorf("Coverage = %g, want 0.5", exact)
	}
	mc := s.CoverageMonteCarlo(rand.New(rand.NewSource(1)), 20000)
	if diff := mc - exact; diff < -0.02 || diff > 0.02 {
		t.Errorf("Monte-Carlo %g vs exact %g, want agreement within 0.02", mc, exact)
	}
}

func TestCoverageSumsDisjointBoxes(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	if _, err := s.Insert(mk(1, [2]int{1, 25}, full(), full(), full())); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(mk(1, [2]int{26, 50}, full(), full(), full())); err != nil {
		t.Fatal(err)
	}
	got := s.Coverage()
	if got < 0.49 || got > 0.51 {
		t.Errorf("Coverage = %g, want 0.5 from two quarter boxes", got)
	}
}

func TestCoverageLog2(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	if lg := s.CoverageLog2(); !isInf(lg) {
		t.Errorf("empty structure CoverageLog2 = %g, want -Inf", lg)
	}
	// Single-point box: volume 1, log2 = 0.
	pt := [2]int{10, 10}
	if _, err := s.Insert(mk(1, pt, pt, pt, pt)); err != nil {
		t.Fatal(err)
	}
	if lg := s.CoverageLog2(); lg != 0 {
		t.Errorf("CoverageLog2 = %g, want 0 for one unit box", lg)
	}
}

func isInf(f float64) bool { return f < -1e308 }

func TestEmptyBoxRejected(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	p := mk(1, [2]int{20, 10}, full(), full(), full()) // inverted interval
	if _, err := s.Insert(p); err == nil {
		t.Error("storing an empty-box placement should fail")
	}
}

func TestGetOutOfRange(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	if s.Get(-1) != nil || s.Get(0) != nil || s.Get(99) != nil {
		t.Error("Get on empty structure should return nil")
	}
}
