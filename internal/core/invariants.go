package core

import "fmt"

// CheckInvariants verifies the structural guarantees of the multi-placement
// structure exhaustively:
//
//  1. every row satisfies the Figure-3 list invariants;
//  2. every live placement has non-empty intervals inside designer bounds,
//     is geometrically legal at maximum dimensions, and is registered in
//     every row exactly on its validity intervals;
//  3. no two live placements' dimension boxes overlap (the eq. 5 guarantee);
//  4. no row references a deleted placement.
//
// It is O(P²·N + rows) and intended for tests and failure injection, not
// hot paths.
func (s *Structure) CheckInvariants() error {
	n := s.circuit.N()
	for i := 0; i < n; i++ {
		if err := s.wRows[i].CheckInvariants(); err != nil {
			return fmt.Errorf("width row %d: %w", i, err)
		}
		if err := s.hRows[i].CheckInvariants(); err != nil {
			return fmt.Errorf("height row %d: %w", i, err)
		}
	}

	live := 0
	for id, p := range s.placements {
		if p == nil {
			continue
		}
		live++
		if p.ID != id {
			return fmt.Errorf("core: placement at slot %d has ID %d", id, p.ID)
		}
		if p.BoxEmpty() {
			return fmt.Errorf("core: placement %d has an empty dimension box", id)
		}
		if err := p.CheckIntervalsWithin(s.circuit); err != nil {
			return fmt.Errorf("core: placement %d: %w", id, err)
		}
		if err := p.CheckLegal(s.fp); err != nil {
			return fmt.Errorf("core: placement %d: %w", id, err)
		}
		for i := 0; i < n; i++ {
			if err := checkRegistered(s, id, i); err != nil {
				return err
			}
		}
	}
	if live != s.alive {
		return fmt.Errorf("core: alive count %d, found %d live placements", s.alive, live)
	}

	// Pairwise disjointness of dimension boxes.
	ids := s.IDs()
	for a := 0; a < len(ids); a++ {
		for b := a + 1; b < len(ids); b++ {
			p, q := s.placements[ids[a]], s.placements[ids[b]]
			if p.BoxOverlaps(q) {
				return fmt.Errorf("core: placements %d and %d have overlapping dimension boxes",
					ids[a], ids[b])
			}
		}
	}

	// Rows must reference only live placements, and only inside the
	// placement's own validity interval (no stray registrations).
	for i := 0; i < n; i++ {
		for _, span := range s.wRows[i].Snapshot() {
			for _, id := range span.IDs {
				p := s.Get(id)
				if p == nil {
					return fmt.Errorf("core: width row %d references deleted placement %d", i, id)
				}
				if !p.WIv(i).ContainsInterval(span.Iv) {
					return fmt.Errorf("core: width row %d registers placement %d on %v outside its box %v",
						i, id, span.Iv, p.WIv(i))
				}
			}
		}
		for _, span := range s.hRows[i].Snapshot() {
			for _, id := range span.IDs {
				p := s.Get(id)
				if p == nil {
					return fmt.Errorf("core: height row %d references deleted placement %d", i, id)
				}
				if !p.HIv(i).ContainsInterval(span.Iv) {
					return fmt.Errorf("core: height row %d registers placement %d on %v outside its box %v",
						i, id, span.Iv, p.HIv(i))
				}
			}
		}
	}
	return nil
}

// checkRegistered verifies placement id appears in block i's rows exactly on
// its validity intervals: present at both endpoints, absent just outside.
func checkRegistered(s *Structure, id, i int) error {
	p := s.placements[id]
	wiv, hiv := p.WIv(i), p.HIv(i)
	for _, probe := range []struct {
		row    interface{ Lookup(int) []int }
		v      int
		wantIn bool
		what   string
	}{
		{s.wRows[i], wiv.Lo, true, "w.Lo"},
		{s.wRows[i], wiv.Hi, true, "w.Hi"},
		{s.wRows[i], wiv.Lo - 1, false, "w.Lo-1"},
		{s.wRows[i], wiv.Hi + 1, false, "w.Hi+1"},
		{s.hRows[i], hiv.Lo, true, "h.Lo"},
		{s.hRows[i], hiv.Hi, true, "h.Hi"},
		{s.hRows[i], hiv.Lo - 1, false, "h.Lo-1"},
		{s.hRows[i], hiv.Hi + 1, false, "h.Hi+1"},
	} {
		if got := containsInt(probe.row.Lookup(probe.v), id); got != probe.wantIn {
			return fmt.Errorf("core: placement %d block %d: registered=%v at %s, want %v",
				id, i, got, probe.what, probe.wantIn)
		}
	}
	return nil
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}
