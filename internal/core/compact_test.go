package core

import (
	"bytes"
	"math/rand"
	"reflect"
	"testing"
)

// TestCompactMergesForkFragments: forcing a fork and then removing its
// cause must let Compact re-merge the halves... but the cause stays stored
// here, so instead we verify the canonical case: two manually inserted
// abutting boxes with identical coordinates collapse into one.
func TestCompactMergesAbuttingBoxes(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	// Same coordinates, same cost, abutting w0 intervals.
	if _, err := s.Insert(mk(2.0, [2]int{10, 20}, full(), full(), full())); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(mk(2.0, [2]int{21, 40}, full(), full(), full())); err != nil {
		t.Fatal(err)
	}
	if s.NumPlacements() != 2 {
		t.Fatalf("setup: %d placements, want 2", s.NumPlacements())
	}
	if got := s.Compact(); got != 1 {
		t.Fatalf("Compact = %d merges, want 1", got)
	}
	if s.NumPlacements() != 1 {
		t.Fatalf("after compact: %d placements, want 1", s.NumPlacements())
	}
	p, err := s.Query([]int{15, 5}, []int{5, 5})
	if err != nil {
		t.Fatal(err)
	}
	if p.WLo[0] != 10 || p.WHi[0] != 40 {
		t.Errorf("merged interval [%d,%d], want [10,40]", p.WLo[0], p.WHi[0])
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestCompactRefusesGapsAndDifferentCoords(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	// Gap between 20 and 22.
	if _, err := s.Insert(mk(2.0, [2]int{10, 20}, full(), full(), full())); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(mk(2.0, [2]int{22, 40}, full(), full(), full())); err != nil {
		t.Fatal(err)
	}
	if got := s.Compact(); got != 0 {
		t.Errorf("gap: Compact = %d merges, want 0", got)
	}

	s2 := NewStructure(c, fp)
	a := mk(2.0, [2]int{10, 20}, full(), full(), full())
	b := mk(2.0, [2]int{21, 40}, full(), full(), full())
	b.X[0] = 5 // different coordinates: not the same placement
	if _, err := s2.Insert(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s2.Insert(b); err != nil {
		t.Fatal(err)
	}
	if got := s2.Compact(); got != 0 {
		t.Errorf("coords differ: Compact = %d merges, want 0", got)
	}
}

func TestCompactRefusesTwoDifferingRows(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	// Differ in w0 (abutting) AND h0: union is L-shaped, not a box.
	if _, err := s.Insert(mk(2.0, [2]int{10, 20}, [2]int{1, 50}, full(), full())); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(mk(2.0, [2]int{21, 40}, [2]int{51, 100}, full(), full())); err != nil {
		t.Fatal(err)
	}
	if got := s.Compact(); got != 0 {
		t.Errorf("two differing rows: Compact = %d merges, want 0", got)
	}
}

// TestCompactAfterForkRestoresStructureSize: insert a low-cost middle cut
// through a stored box (forcing a fork), then verify Compact reunites
// whatever fragments remain mergeable and never changes query results.
func TestCompactPreservesQuerySemantics(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 40; i++ {
		lo := 1 + rng.Intn(80)
		hi := lo + rng.Intn(101-lo)
		hlo := 1 + rng.Intn(80)
		hhi := hlo + rng.Intn(101-hlo)
		p := mk(1+rng.Float64()*9, [2]int{lo, hi}, [2]int{hlo, hhi}, full(), full())
		if _, err := s.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	before := s.NumPlacements()

	// Record query answers (by coordinates, since IDs change on merge).
	type answer struct {
		ok bool
		x0 int
		y0 int
	}
	probe := func() []answer {
		out := make([]answer, 0, 400)
		prng := rand.New(rand.NewSource(5))
		for k := 0; k < 400; k++ {
			ws := []int{1 + prng.Intn(100), 1 + prng.Intn(100)}
			hs := []int{1 + prng.Intn(100), 1 + prng.Intn(100)}
			p, err := s.Query(ws, hs)
			if err != nil {
				out = append(out, answer{})
				continue
			}
			out = append(out, answer{true, p.X[0], p.Y[0]})
		}
		return out
	}
	beforeAnswers := probe()
	merges := s.Compact()
	afterAnswers := probe()

	if !reflect.DeepEqual(beforeAnswers, afterAnswers) {
		t.Fatal("Compact changed query results")
	}
	if s.NumPlacements() != before-merges {
		t.Errorf("placements %d, want %d - %d merges", s.NumPlacements(), before, merges)
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	// Idempotence.
	if again := s.Compact(); again != 0 {
		t.Errorf("second Compact performed %d merges, want 0", again)
	}
}

func TestCompactWeightsAvgCost(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	// Interval lengths 11 ([10,20]) and 20 ([21,40]).
	a := mk(1.0, [2]int{10, 20}, full(), full(), full())
	b := mk(4.0, [2]int{21, 40}, full(), full(), full())
	b.BestCost = 0.1 // b is the better half
	b.BestW = []int{30, 30}
	b.BestH = []int{30, 30}
	if _, err := s.Insert(a); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Insert(b); err != nil {
		t.Fatal(err)
	}
	if got := s.Compact(); got != 1 {
		t.Fatalf("Compact = %d, want 1", got)
	}
	m := s.Get(s.IDs()[0])
	want := (1.0*11 + 4.0*20) / 31
	if diff := m.AvgCost - want; diff < -1e-9 || diff > 1e-9 {
		t.Errorf("merged AvgCost = %g, want %g", m.AvgCost, want)
	}
	if m.BestCost != 0.1 {
		t.Errorf("merged BestCost = %g, want better half's 0.1", m.BestCost)
	}
	if m.BestW == nil || m.BestW[0] != 30 {
		t.Errorf("merged BestW = %v, want better half's", m.BestW)
	}
}

// TestCompactChain merges a run of three fragments into one.
func TestCompactChain(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	for _, iv := range [][2]int{{1, 10}, {11, 30}, {31, 55}} {
		if _, err := s.Insert(mk(2.0, iv, full(), full(), full())); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.Compact(); got != 2 {
		t.Errorf("Compact = %d merges, want 2", got)
	}
	if s.NumPlacements() != 1 {
		t.Errorf("placements = %d, want 1", s.NumPlacements())
	}
	p := s.Get(s.IDs()[0])
	if p.WLo[0] != 1 || p.WHi[0] != 55 {
		t.Errorf("chain merged to [%d,%d], want [1,55]", p.WLo[0], p.WHi[0])
	}
}

// TestRenumberPacksIDsStably: after generation-style mutation (inserts
// with resolution, then Compact) the ID space has holes; Renumber must
// pack it densely without changing any query answer, and a renumbered
// structure's IDs must survive a save/load round trip — the property the
// cluster's artifact fetch relies on for replica-identical placement_ids.
func TestRenumberPacksIDsStably(t *testing.T) {
	c, fp := pairCircuit()
	s := NewStructure(c, fp)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 40; i++ {
		lo := 1 + rng.Intn(80)
		hi := lo + rng.Intn(101-lo)
		hlo := 1 + rng.Intn(80)
		hhi := hlo + rng.Intn(101-hlo)
		p := mk(1+rng.Float64()*9, [2]int{lo, hi}, [2]int{hlo, hhi}, full(), full())
		if _, err := s.Insert(p); err != nil {
			t.Fatal(err)
		}
	}
	s.Compact()

	probe := func(st *Structure) [][2]int {
		out := make([][2]int, 0, 400)
		prng := rand.New(rand.NewSource(5))
		for k := 0; k < 400; k++ {
			ws := []int{1 + prng.Intn(100), 1 + prng.Intn(100)}
			hs := []int{1 + prng.Intn(100), 1 + prng.Intn(100)}
			p, err := st.Query(ws, hs)
			if err != nil {
				out = append(out, [2]int{-1, -1})
				continue
			}
			out = append(out, [2]int{p.X[0], p.Y[0]})
		}
		return out
	}
	before := probe(s)

	s.Renumber()
	ids := s.IDs()
	if len(ids) != s.NumPlacements() {
		t.Fatalf("%d ids for %d live placements", len(ids), s.NumPlacements())
	}
	for want, id := range ids {
		if id != want {
			t.Fatalf("ids %v not dense after Renumber", ids)
		}
		if got := s.Get(id); got == nil || got.ID != id {
			t.Fatalf("placement at id %d has ID %v", id, got)
		}
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(before, probe(s)) {
		t.Fatal("Renumber changed query results")
	}

	// ID stability across the wire format.
	var buf bytes.Buffer
	if err := s.SaveBinaryCompiled(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf, c)
	if err != nil {
		t.Fatal(err)
	}
	prng := rand.New(rand.NewSource(7))
	for k := 0; k < 400; k++ {
		ws := []int{1 + prng.Intn(100), 1 + prng.Intn(100)}
		hs := []int{1 + prng.Intn(100), 1 + prng.Intn(100)}
		want, errA := Compile(s).QueryID(ws, hs)
		got, errB := Compile(loaded).QueryID(ws, hs)
		if (errA == nil) != (errB == nil) || want != got {
			t.Fatalf("query %d: id %d (err %v) before save, %d (err %v) after", k, want, errA, got, errB)
		}
	}

	// Idempotence: a dense structure renumbers to itself.
	s.Renumber()
	if !reflect.DeepEqual(ids, s.IDs()) {
		t.Fatal("second Renumber changed IDs")
	}
}
