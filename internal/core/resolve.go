package core

import (
	"fmt"

	"mps/internal/geom"
	"mps/internal/placement"
)

// This file implements the paper's Resolve Overlaps step (§3.1.3): before a
// new placement enters the structure, every stored placement whose
// 2N-dimensional dimension box intersects the newcomer's box must lose the
// shared region, so that eq. 5 (at most one placement per dimension vector)
// keeps holding.
//
// For each conflicting pair the placement with the higher average cost (the
// "loser") is shrunk in exactly one row — the row with the smallest overlap
// (DESIGN.md D4). Shrinking removes the winner's interval from the loser's:
//
//   - loser's interval extends past the winner on one side: truncate it;
//   - loser's interval strictly contains the winner's: fork the loser into
//     two placements, one on each side (the paper's fork case, D5);
//   - loser's interval is inside the winner's in every overlapping row:
//     the loser's box is engulfed and the loser is deleted.

// ResolveRowStrategy selects the row in which a conflict loser is shrunk.
type ResolveRowStrategy int

const (
	// SmallestOverlapRow shrinks in the row with the least overlap,
	// preserving the most box volume — the paper's choice (default).
	SmallestOverlapRow ResolveRowStrategy = iota
	// FirstOverlapRow shrinks in the first overlapping row found — the
	// ablation baseline (see DESIGN.md §6).
	FirstOverlapRow
)

// InsertStats reports what an Insert did, for generation telemetry.
type InsertStats struct {
	StoredIDs     []int // IDs the candidate ended up stored under (after forks)
	CandidateDied bool  // candidate fully engulfed by better placements
	StoredShrunk  int   // stored placements narrowed in one row
	StoredForked  int   // stored placements split into two
	StoredDeleted int   // stored placements engulfed and removed
}

// Insert resolves the candidate against all stored placements and stores
// what survives. The candidate may be stored as-is, shrunk, forked into
// multiple placements, or dropped entirely if better placements already
// cover its whole box. Insert owns the candidate afterwards; callers must
// not reuse it.
func (s *Structure) Insert(cand *placement.Placement) (InsertStats, error) {
	var stats InsertStats
	pending := []*placement.Placement{cand}
	for len(pending) > 0 {
		p := pending[len(pending)-1]
		pending = pending[:len(pending)-1]
		survived, pieces, err := s.resolveCandidate(p, &stats)
		if err != nil {
			return stats, err
		}
		pending = append(pending, pieces...)
		if survived == nil {
			continue
		}
		id, err := s.store(survived)
		if err != nil {
			return stats, err
		}
		stats.StoredIDs = append(stats.StoredIDs, id)
	}
	if len(stats.StoredIDs) == 0 {
		stats.CandidateDied = true
	}
	return stats, nil
}

// resolveCandidate eliminates all conflicts between p and stored placements.
// It returns the surviving (possibly shrunk) candidate or nil if p died,
// plus any forked-off pieces of p that still need independent resolution.
func (s *Structure) resolveCandidate(p *placement.Placement, stats *InsertStats) (*placement.Placement, []*placement.Placement, error) {
	var pieces []*placement.Placement
	// Collect current conflicts once; boxes only ever shrink during
	// resolution, so no new conflicts can appear mid-loop.
	conflicts := s.conflicting(p)
	for _, qid := range conflicts {
		q := s.placements[qid]
		if q == nil || !p.BoxOverlaps(q) {
			continue // q was deleted or already disjoint after earlier shrinks
		}
		// Higher average cost loses the region (ties keep the incumbent).
		if p.AvgCost >= q.AvgCost {
			left, right, died := splitLoser(p, q, s.resolveStrategy)
			if died {
				stats.CandidateDied = true
				return nil, pieces, nil
			}
			if left != nil && right != nil {
				// Fork: keep resolving the left piece here; the right piece
				// restarts resolution from scratch.
				pieces = append(pieces, right)
				p = left
				continue
			}
			if left != nil {
				p = left
			} else {
				p = right
			}
		} else {
			if err := s.shrinkStored(q, p, stats); err != nil {
				return nil, pieces, err
			}
		}
	}
	return p, pieces, nil
}

// conflicting returns the IDs of stored placements whose boxes overlap p's,
// using block 0's width row as a pre-filter (every placement is registered
// in every row).
func (s *Structure) conflicting(p *placement.Placement) []int {
	candidates := s.wRows[0].IDsOverlapping(p.WIv(0))
	out := candidates[:0]
	for _, id := range candidates {
		q := s.placements[id]
		if q != nil && p.BoxOverlaps(q) {
			out = append(out, id)
		}
	}
	return out
}

// chooseRow picks the row in which to shrink the loser: among rows where
// both boxes overlap, the smallest overlap wins (or the first overlap under
// the ablation strategy), with rows that would not annihilate the loser
// (loser interval not contained in winner's) strongly preferred. Returns
// block index, dim (0=w, 1=h), and whether every overlapping row
// annihilates the loser (engulfed case).
func chooseRow(loser, winner *placement.Placement, strategy ResolveRowStrategy) (block, dim int, engulfed bool) {
	bestBlock, bestDim := -1, -1
	bestLen := int(^uint(0) >> 1)
	foundSafe := false
	for i := range loser.X {
		for d := 0; d < 2; d++ {
			var liv, wiv geom.Interval
			if d == 0 {
				liv, wiv = loser.WIv(i), winner.WIv(i)
			} else {
				liv, wiv = loser.HIv(i), winner.HIv(i)
			}
			ov := liv.OverlapLen(wiv)
			if ov == 0 {
				continue
			}
			safe := !wiv.ContainsInterval(liv)
			if safe && !foundSafe {
				// First safe row trumps any unsafe row found so far.
				foundSafe = true
				bestBlock, bestDim, bestLen = i, d, ov
				if strategy == FirstOverlapRow {
					return bestBlock, bestDim, false
				}
				continue
			}
			if safe == foundSafe && ov < bestLen {
				bestBlock, bestDim, bestLen = i, d, ov
			}
		}
	}
	if bestBlock < 0 {
		// No overlapping row at all — caller should have checked BoxOverlaps.
		return -1, -1, false
	}
	return bestBlock, bestDim, !foundSafe
}

// splitLoser removes the winner's interval from the loser in the chosen row
// and returns the surviving pieces as fresh placements (left/right may be
// nil; both nil with died=true when the loser is engulfed). The loser
// placement itself is not mutated.
func splitLoser(loser, winner *placement.Placement, strategy ResolveRowStrategy) (left, right *placement.Placement, died bool) {
	block, dim, engulfed := chooseRow(loser, winner, strategy)
	if block < 0 || engulfed {
		return nil, nil, true
	}
	var liv, wiv geom.Interval
	if dim == 0 {
		liv, wiv = loser.WIv(block), winner.WIv(block)
	} else {
		liv, wiv = loser.HIv(block), winner.HIv(block)
	}
	res := liv.Subtract(wiv)
	mk := func(iv geom.Interval) *placement.Placement {
		if iv.Empty() {
			return nil
		}
		c := loser.Clone()
		c.ID = -1
		if dim == 0 {
			c.WLo[block], c.WHi[block] = iv.Lo, iv.Hi
		} else {
			c.HLo[block], c.HHi[block] = iv.Lo, iv.Hi
		}
		return c
	}
	left, right = mk(res.Left), mk(res.Right)
	if left == nil && right == nil {
		return nil, nil, true
	}
	return left, right, false
}

// shrinkStored removes the candidate's region from a stored placement,
// updating rows in place (shrink), replacing it with two stored pieces
// (fork), or deleting it (engulfed).
func (s *Structure) shrinkStored(q, winner *placement.Placement, stats *InsertStats) error {
	block, dim, engulfed := chooseRow(q, winner, s.resolveStrategy)
	if block < 0 {
		return fmt.Errorf("core: shrinkStored called on non-overlapping placements %d", q.ID)
	}
	if engulfed {
		s.delete(q.ID)
		stats.StoredDeleted++
		return nil
	}
	var liv, wiv geom.Interval
	if dim == 0 {
		liv, wiv = q.WIv(block), winner.WIv(block)
	} else {
		liv, wiv = q.HIv(block), winner.HIv(block)
	}
	res := liv.Subtract(wiv)
	switch {
	case res.Left.Empty() && res.Right.Empty():
		s.delete(q.ID)
		stats.StoredDeleted++
	case res.Left.Empty() || res.Right.Empty():
		keep := res.Left
		if keep.Empty() {
			keep = res.Right
		}
		s.shrinkRow(q, block, dim, keep)
		stats.StoredShrunk++
	default:
		// Fork: replace q by two narrowed copies. Both inherit q's costs
		// (DESIGN.md D5) and cannot conflict with anything: each box is a
		// subset of q's box minus the winner's region.
		s.delete(q.ID)
		for _, iv := range []geom.Interval{res.Left, res.Right} {
			c := q.Clone()
			c.ID = -1
			if dim == 0 {
				c.WLo[block], c.WHi[block] = iv.Lo, iv.Hi
			} else {
				c.HLo[block], c.HHi[block] = iv.Lo, iv.Hi
			}
			if _, err := s.store(c); err != nil {
				return err
			}
		}
		stats.StoredForked++
	}
	return nil
}
