package core

import (
	"fmt"
	"math"
	"math/bits"
	"sync"

	"mps/internal/geom"
	"mps/internal/netlist"
	"mps/internal/placement"
)

// This file implements the compiled query index: a flattened, read-only
// form of a Structure built once after generation (or loading) and queried
// forever after. The tree path answers a query by walking 2N pointer-rich
// interval lists and merge-intersecting their sorted id arrays; the
// compiled path binary-searches 2N sorted []int32 breakpoint arrays laid
// out back to back and intersects placement *bitsets* — one ⌈P/64⌉-word
// mask per interval — so a query is a handful of contiguous cache lines,
// branch-predictable compares and word-wide ANDs, with zero allocations.
//
// Memory layout (structure of arrays):
//
//	rowStart [2N+1]  row r's spans live at span indices
//	                 [rowStart[r], rowStart[r+1])
//	spanLo   [S]     per-span inclusive lower breakpoint, ascending per row
//	spanHi   [S]     per-span inclusive upper breakpoint
//	masks    [S*W]   per-span placement bitset, W = ⌈P/64⌉ words; bit b of
//	                 span s is masks[s*W + b/64]>>(b%64): placement slot b
//	                 is valid on span s
//	slotID   [P]     slot -> original placement ID
//	xs, ys   [P*N]   block anchors by slot (slot*N + block)
//
// Rows interleave width and height per block — row 2i is block i's width
// row, row 2i+1 its height row — matching the order the intersection loop
// visits them. Placement IDs are re-indexed to dense slots so the bitsets
// and anchor tables stay hole-free when placements were deleted during
// generation; results are mapped back to original IDs on the way out, so
// compiled answers are indistinguishable from tree answers.

// CompiledStructure is the flat form of a Structure. Build one with
// Compile; it shares the source structure's circuit, designer-bound
// validation and backup, and answers Lookup/Query/Instantiate with results
// semantically identical to the tree path. Like the tree path it is safe
// for any number of concurrent readers (each query intersects into a
// stack-resident or pooled mask); it must only be built after generation
// has finished.
type CompiledStructure struct {
	// src supplies the circuit (dimension validation) and the backup
	// fallback; the flat tables below answer every covered query without
	// touching it.
	src *Structure

	n     int // blocks
	count int // live placements (dense slots 0..count-1)
	words int // mask words per span, ⌈count/64⌉

	rowStart []int32
	spanLo   []int32
	spanHi   []int32
	masks    []uint64

	slotID []int32
	xs, ys []int32

	// scratch pools oversized intersection masks (*[]uint64) for
	// structures beyond maxStackWords×64 placements; smaller ones — every
	// benchmark circuit — intersect on the caller's stack.
	scratch sync.Pool
}

// maxStackWords is the intersection-mask size (in 64-bit words) kept on
// the stack: structures up to 1024 placements — an order of magnitude
// above the paper's largest — never touch the pool.
const maxStackWords = 16

// Compile flattens the structure's 2N interval rows into a
// CompiledStructure. The result is cached on the structure — repeated
// calls return the same index until a mutation (Insert, Compact)
// invalidates it — so callers can treat Compile as cheap after the first
// call. Compile panics if any breakpoint or anchor exceeds the int32
// range; every benchmark circuit and every structure accepted by Load is
// orders of magnitude below it.
func Compile(s *Structure) *CompiledStructure {
	if cs := s.compiled.Load(); cs != nil {
		return cs
	}
	cs := compile(s)
	s.compiled.Store(cs)
	return cs
}

// compile builds the flat tables. It walks every row twice (sizing, then
// filling), so its cost is linear in the total span and id counts.
func compile(s *Structure) *CompiledStructure {
	n := s.circuit.N()
	cs := newCompiledShell(s)

	spans := 0
	for i := 0; i < n; i++ {
		spans += s.wRows[i].Len() + s.hRows[i].Len()
	}
	cs.rowStart = make([]int32, 0, 2*n+1)
	cs.spanLo = make([]int32, 0, spans)
	cs.spanHi = make([]int32, 0, spans)
	cs.masks = make([]uint64, 0, spans*cs.words)

	// Dense re-index: slot order follows ID order, so bit order matches
	// the tree's ascending id arrays.
	idToSlot := make([]int32, len(s.placements))
	for id, p := range s.placements {
		if p == nil {
			idToSlot[id] = -1
			continue
		}
		idToSlot[id] = int32(len(cs.slotID))
		cs.appendPlacement(id, p)
	}

	flatten := func(iv geom.Interval, rowIDs []int) {
		cs.spanLo = append(cs.spanLo, toI32(iv.Lo, "interval breakpoint"))
		cs.spanHi = append(cs.spanHi, toI32(iv.Hi, "interval breakpoint"))
		off := len(cs.masks)
		cs.masks = append(cs.masks, make([]uint64, cs.words)...)
		for _, id := range rowIDs {
			slot := idToSlot[id]
			cs.masks[off+int(slot>>6)] |= 1 << (slot & 63)
		}
	}
	for i := 0; i < n; i++ {
		cs.rowStart = append(cs.rowStart, int32(len(cs.spanLo)))
		s.wRows[i].Visit(flatten)
		cs.rowStart = append(cs.rowStart, int32(len(cs.spanLo)))
		s.hRows[i].Visit(flatten)
	}
	cs.rowStart = append(cs.rowStart, int32(len(cs.spanLo)))
	return cs
}

// newCompiledShell sets up the placement-level fields shared by compile
// and the v3 attach path.
func newCompiledShell(s *Structure) *CompiledStructure {
	n := s.circuit.N()
	return &CompiledStructure{
		src: s, n: n, count: s.alive,
		words:  (s.alive + 63) / 64,
		slotID: make([]int32, 0, s.alive),
		xs:     make([]int32, 0, s.alive*n),
		ys:     make([]int32, 0, s.alive*n),
	}
}

// appendPlacement records one live placement's identity and anchors under
// the next dense slot.
func (cs *CompiledStructure) appendPlacement(id int, p *placement.Placement) {
	cs.slotID = append(cs.slotID, toI32(id, "placement id"))
	for i := 0; i < cs.n; i++ {
		cs.xs = append(cs.xs, toI32(p.X[i], "block x anchor"))
		cs.ys = append(cs.ys, toI32(p.Y[i], "block y anchor"))
	}
}

// toI32 narrows a table value, panicking on the (never-seen-in-practice)
// overflow rather than silently answering queries from truncated tables.
func toI32(v int, what string) int32 {
	if v < math.MinInt32 || v > math.MaxInt32 {
		panic(fmt.Sprintf("core: %s %d exceeds the compiled int32 range", what, v))
	}
	return int32(v)
}

// Circuit returns the topology the compiled index answers for.
func (cs *CompiledStructure) Circuit() *netlist.Circuit { return cs.src.circuit }

// Floorplan returns the floorplan the placements live on.
func (cs *CompiledStructure) Floorplan() geom.Rect { return cs.src.fp }

// NumPlacements returns the number of stored placements in the index.
func (cs *CompiledStructure) NumPlacements() int { return cs.count }

// NumSpans returns the total interval count across all 2N rows — the S of
// the memory-layout comment, a proxy for the index's footprint.
func (cs *CompiledStructure) NumSpans() int { return len(cs.spanLo) }

// findSpan binary-searches row r for the span covering v. Row spans are
// ascending and non-overlapping, so the last span with Lo <= v is the only
// candidate; -1 means v is uncovered in this row.
func (cs *CompiledStructure) findSpan(r, v int) int {
	lo, hi := int(cs.rowStart[r]), int(cs.rowStart[r+1])
	first := lo
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if int(cs.spanLo[mid]) <= v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s := lo - 1
	if s < first || v > int(cs.spanHi[s]) {
		return -1
	}
	return s
}

// intersect computes the eq. 4 row intersection into the acc mask (len
// cs.words) and reports whether any placement survived — the compiled
// mirror of Structure.intersectInto, with the sorted-array merges replaced
// by word-wide ANDs.
func (cs *CompiledStructure) intersect(acc []uint64, ws, hs []int) bool {
	w := cs.words
	first := true
	for i := 0; i < cs.n; i++ {
		for dim := 0; dim < 2; dim++ {
			v := ws[i]
			if dim == 1 {
				v = hs[i]
			}
			s := cs.findSpan(2*i+dim, v)
			if s < 0 {
				return false
			}
			off := s * w
			if first {
				copy(acc, cs.masks[off:off+w])
				first = false
				continue
			}
			nz := uint64(0)
			for k := range acc {
				acc[k] &= cs.masks[off+k]
				nz |= acc[k]
			}
			if nz == 0 {
				return false
			}
		}
	}
	return !first
}

// mask returns the intersection buffer for one query: a slice of the
// caller's stack array when the structure fits maxStackWords, else a
// pooled buffer (returned by putMask; putMask of nil is a no-op).
func (cs *CompiledStructure) mask(buf *[maxStackWords]uint64) ([]uint64, *[]uint64) {
	if cs.words <= maxStackWords {
		return buf[:cs.words], nil
	}
	sp, _ := cs.scratch.Get().(*[]uint64)
	if sp == nil || cap(*sp) < cs.words {
		sp = new([]uint64)
		*sp = make([]uint64, cs.words)
	}
	return (*sp)[:cs.words], sp
}

func (cs *CompiledStructure) putMask(sp *[]uint64) {
	if sp != nil {
		cs.scratch.Put(sp)
	}
}

// maskCountFirst returns the population count of acc and the lowest set
// slot (-1 when empty).
func maskCountFirst(acc []uint64) (count int, slot int) {
	slot = -1
	for k, word := range acc {
		if word == 0 {
			continue
		}
		if slot < 0 {
			slot = k*64 + bits.TrailingZeros64(word)
		}
		count += bits.OnesCount64(word)
	}
	return count, slot
}

// lookupUnique runs one covered-or-not intersection and returns the unique
// slot (count 1), or the count for the caller's 0/eq.5 handling.
func (cs *CompiledStructure) lookupUnique(ws, hs []int) (slot, count int) {
	var buf [maxStackWords]uint64
	acc, sp := cs.mask(&buf)
	if !cs.intersect(acc, ws, hs) {
		cs.putMask(sp)
		return -1, 0
	}
	count, slot = maskCountFirst(acc)
	cs.putMask(sp)
	return slot, count
}

// Lookup returns the IDs of all stored placements covering the dimension
// vector, ascending — identical to Structure.Lookup on the source
// structure. The result is nil when uncovered and shares no memory with
// the index.
func (cs *CompiledStructure) Lookup(ws, hs []int) []int {
	var buf [maxStackWords]uint64
	acc, sp := cs.mask(&buf)
	var out []int
	if cs.intersect(acc, ws, hs) {
		for k, word := range acc {
			for ; word != 0; word &= word - 1 {
				slot := k*64 + bits.TrailingZeros64(word)
				out = append(out, int(cs.slotID[slot]))
			}
		}
	}
	cs.putMask(sp)
	return out
}

// QueryID implements the paper's function M over the flat tables: the
// unique covering placement's ID, ErrUncovered when nothing covers the
// vector (the backup is Instantiate's business, not QueryID's), or the
// eq. 5 violation error — exactly the tree Query's behavior, minus the
// placement pointer.
func (cs *CompiledStructure) QueryID(ws, hs []int) (int, error) {
	if err := cs.src.checkDims(ws, hs); err != nil {
		return -1, err
	}
	slot, count := cs.lookupUnique(ws, hs)
	switch count {
	case 0:
		return -1, ErrUncovered
	case 1:
		return int(cs.slotID[slot]), nil
	}
	return -1, fmt.Errorf("core: eq.5 violated — %d placements cover one dimension vector: %v",
		count, cs.Lookup(ws, hs))
}

// Instantiate answers a placement request from the flat tables, falling
// back to the source structure's backup for uncovered space — semantically
// identical to Structure.Instantiate.
func (cs *CompiledStructure) Instantiate(ws, hs []int) (Result, error) {
	var res Result
	if err := cs.InstantiateInto(&res, ws, hs); err != nil {
		return Result{}, err
	}
	return res, nil
}

// InstantiateInto is Instantiate writing into res, reusing res.X and res.Y
// capacity — the zero-allocation serving hot path (covered queries
// allocate nothing once res has capacity; backup answers allocate in the
// backup). On error res is left unspecified.
func (cs *CompiledStructure) InstantiateInto(res *Result, ws, hs []int) error {
	if err := cs.src.checkDims(ws, hs); err != nil {
		return err
	}
	slot, count := cs.lookupUnique(ws, hs)
	switch count {
	case 1:
		off := slot * cs.n
		res.X = appendInt32s(res.X[:0], cs.xs[off:off+cs.n])
		res.Y = appendInt32s(res.Y[:0], cs.ys[off:off+cs.n])
		res.PlacementID = int(cs.slotID[slot])
		res.FromBackup = false
		return nil
	case 0:
		if b := cs.src.backup; b != nil {
			x, y, berr := b.Place(ws, hs)
			if berr != nil {
				return fmt.Errorf("core: backup failed: %w", berr)
			}
			res.X, res.Y = x, y
			res.PlacementID = -1
			res.FromBackup = true
			return nil
		}
		return ErrUncovered
	}
	return fmt.Errorf("core: eq.5 violated — %d placements cover one dimension vector: %v",
		count, cs.Lookup(ws, hs))
}

// InstantiateCoveredInto answers only from stored placements: when the
// unique covering placement exists its anchors are written into res
// (reusing res.X/res.Y capacity, zero allocations) and ok is true; when no
// stored placement covers the vector it reports ok=false with res left
// untouched — the backup is never consulted. Portfolio routing uses this
// to probe each member without paying (or observing) member backups. An
// eq. 5 violation or out-of-bounds dimensions return an error.
func (cs *CompiledStructure) InstantiateCoveredInto(res *Result, ws, hs []int) (ok bool, err error) {
	if err := cs.src.checkDims(ws, hs); err != nil {
		return false, err
	}
	slot, count := cs.lookupUnique(ws, hs)
	switch count {
	case 0:
		return false, nil
	case 1:
		off := slot * cs.n
		res.X = appendInt32s(res.X[:0], cs.xs[off:off+cs.n])
		res.Y = appendInt32s(res.Y[:0], cs.ys[off:off+cs.n])
		res.PlacementID = int(cs.slotID[slot])
		res.FromBackup = false
		return true, nil
	}
	return false, fmt.Errorf("core: eq.5 violated — %d placements cover one dimension vector: %v",
		count, cs.Lookup(ws, hs))
}

// CoveredArea reports the bounding-box area and dead space (box area minus
// summed block areas) of instantiating the covering stored placement at
// dims (ws, hs), without copying anchors out — the allocation-free scoring
// probe behind best-of-K portfolio routing. ok is false when no stored
// placement covers the vector; an eq. 5 violation or out-of-bounds
// dimensions return an error.
func (cs *CompiledStructure) CoveredArea(ws, hs []int) (area, dead int64, ok bool, err error) {
	if err := cs.src.checkDims(ws, hs); err != nil {
		return 0, 0, false, err
	}
	slot, count := cs.lookupUnique(ws, hs)
	switch count {
	case 0:
		return 0, 0, false, nil
	case 1:
		off := slot * cs.n
		minX, minY := int64(math.MaxInt64), int64(math.MaxInt64)
		maxX, maxY := int64(math.MinInt64), int64(math.MinInt64)
		var blocks int64
		for i := 0; i < cs.n; i++ {
			x, y := int64(cs.xs[off+i]), int64(cs.ys[off+i])
			w, h := int64(ws[i]), int64(hs[i])
			minX = min(minX, x)
			minY = min(minY, y)
			maxX = max(maxX, x+w)
			maxY = max(maxY, y+h)
			blocks += w * h
		}
		area = (maxX - minX) * (maxY - minY)
		return area, area - blocks, true, nil
	}
	return 0, 0, false, fmt.Errorf("core: eq.5 violated — %d placements cover one dimension vector: %v",
		count, cs.Lookup(ws, hs))
}

// spanSlots appends span s's set slots in ascending order — the id-list
// view of the bitset, used by the v3 encoder and the row cross-check.
func (cs *CompiledStructure) spanSlots(s int, out []int32) []int32 {
	off := s * cs.words
	for k := 0; k < cs.words; k++ {
		for word := cs.masks[off+k]; word != 0; word &= word - 1 {
			out = append(out, int32(k*64+bits.TrailingZeros64(word)))
		}
	}
	return out
}

// matchesRows reports whether the index's row tables are exactly the
// flattened form of s's interval rows (same spans, same placement sets).
// Load uses it to cross-check tables read from disk against the rows it
// just rebuilt, so a file whose compiled section diverges from its
// placement records is rejected instead of answering queries
// inconsistently.
func (cs *CompiledStructure) matchesRows(s *Structure) bool {
	n := s.circuit.N()
	if cs.n != n || cs.count != s.alive || len(cs.rowStart) != 2*n+1 ||
		len(cs.spanHi) != len(cs.spanLo) || len(cs.masks) != len(cs.spanLo)*cs.words {
		return false
	}
	span := 0
	ok := true
	check := func(iv geom.Interval, rowIDs []int) {
		if !ok || span >= len(cs.spanLo) {
			ok = false
			return
		}
		if int(cs.spanLo[span]) != iv.Lo || int(cs.spanHi[span]) != iv.Hi {
			ok = false
			return
		}
		off := span * cs.words
		popcount := 0
		for k := 0; k < cs.words; k++ {
			popcount += bits.OnesCount64(cs.masks[off+k])
		}
		if popcount != len(rowIDs) {
			ok = false
			return
		}
		for _, id := range rowIDs {
			slot := -1
			// Slot order follows ID order, so the tree's ascending ids map
			// to ascending slots; binary search keeps the check O(S log P).
			lo, hi := 0, len(cs.slotID)
			for lo < hi {
				mid := int(uint(lo+hi) >> 1)
				if int(cs.slotID[mid]) < id {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo < len(cs.slotID) && int(cs.slotID[lo]) == id {
				slot = lo
			}
			if slot < 0 || cs.masks[off+slot>>6]&(1<<(slot&63)) == 0 {
				ok = false
				return
			}
		}
		span++
	}
	for i := 0; i < n && ok; i++ {
		if int(cs.rowStart[2*i]) != span {
			return false
		}
		s.wRows[i].Visit(check)
		if !ok || int(cs.rowStart[2*i+1]) != span {
			return false
		}
		s.hRows[i].Visit(check)
	}
	return ok && span == len(cs.spanLo) && int(cs.rowStart[2*n]) == span
}

func appendInt32s(dst []int, src []int32) []int {
	for _, v := range src {
		dst = append(dst, int(v))
	}
	return dst
}
