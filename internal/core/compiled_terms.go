package core

// The per-objective routing probe. CoveredArea answers "how big would
// this member's placement be" for the legacy area-then-deadspace routing
// rule; weighted routing needs the full cost.Terms vector — wire length
// included — still without copying anchors out or allocating. This file
// computes the vector straight off the compiled int32 anchor tables,
// mirroring cost.Vector/cost.WireLength term for term (pinned by
// TestCoveredTermsMatchesCostVector).

import (
	"fmt"
	"math"

	"mps/internal/cost"
	"mps/internal/netlist"
)

// CoveredTerms reports the per-objective cost vector of instantiating
// the covering stored placement at dims (ws, hs) — the allocation-free
// scoring probe behind weighted portfolio routing. Its Area and Dead
// terms equal CoveredArea's; Wire and Aspect follow cost.WireLength and
// cost.AspectDeviation exactly. ok is false when no stored placement
// covers the vector; an eq. 5 violation or out-of-bounds dimensions
// return an error.
func (cs *CompiledStructure) CoveredTerms(ws, hs []int) (t cost.Terms, ok bool, err error) {
	if err := cs.src.checkDims(ws, hs); err != nil {
		return cost.Terms{}, false, err
	}
	slot, count := cs.lookupUnique(ws, hs)
	switch count {
	case 0:
		return cost.Terms{}, false, nil
	case 1:
		off := slot * cs.n
		minX, minY := int64(math.MaxInt64), int64(math.MaxInt64)
		maxX, maxY := int64(math.MinInt64), int64(math.MinInt64)
		var blocks int64
		for i := 0; i < cs.n; i++ {
			x, y := int64(cs.xs[off+i]), int64(cs.ys[off+i])
			w, h := int64(ws[i]), int64(hs[i])
			minX = min(minX, x)
			minY = min(minY, y)
			maxX = max(maxX, x+w)
			maxY = max(maxY, y+h)
			blocks += w * h
		}
		t.Area = (maxX - minX) * (maxY - minY)
		t.Dead = t.Area - blocks
		t.Aspect = cost.AspectDeviation(int(maxX-minX), int(maxY-minY))

		// Weighted wire length, mirroring cost.WireLength: float
		// accumulation of per-net weights times integer net lengths,
		// rounded once at the end.
		var total float64
		for _, net := range cs.src.circuit.Nets {
			w := net.Weight
			if w == 0 {
				w = 1
			}
			total += w * float64(cs.coveredNetLength(off, net, ws, hs))
		}
		t.Wire = int64(total + 0.5)
		return t, true, nil
	}
	return cost.Terms{}, false, fmt.Errorf("core: eq.5 violated — %d placements cover one dimension vector: %v",
		count, cs.Lookup(ws, hs))
}

// coveredNetLength is cost.netLength over the compiled anchor tables:
// pad stubs charge the boundary distance, single-pin internal nets are
// free, multi-pin nets charge HPWL — computed in-place instead of
// materializing a point slice.
func (cs *CompiledStructure) coveredNetLength(off int, net *netlist.Net, ws, hs []int) int {
	if len(net.Pins) == 1 {
		p := net.Pins[0]
		pt := p.Position(int(cs.xs[off+p.Block]), int(cs.ys[off+p.Block]), ws[p.Block], hs[p.Block])
		if p.IsTerminal {
			return cost.BoundaryDist(pt, cs.src.fp)
		}
		return 0
	}
	if len(net.Pins) < 2 {
		return 0
	}
	p := net.Pins[0]
	pt := p.Position(int(cs.xs[off+p.Block]), int(cs.ys[off+p.Block]), ws[p.Block], hs[p.Block])
	minX, maxX := pt.X, pt.X
	minY, maxY := pt.Y, pt.Y
	for _, p := range net.Pins[1:] {
		pt := p.Position(int(cs.xs[off+p.Block]), int(cs.ys[off+p.Block]), ws[p.Block], hs[p.Block])
		if pt.X < minX {
			minX = pt.X
		}
		if pt.X > maxX {
			maxX = pt.X
		}
		if pt.Y < minY {
			minY = pt.Y
		}
		if pt.Y > maxY {
			maxY = pt.Y
		}
	}
	return (maxX - minX) + (maxY - minY)
}
