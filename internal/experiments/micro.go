package experiments

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"runtime"
	"sort"
	"testing"
	"time"

	"mps/internal/core"
	"mps/internal/cost"
	"mps/internal/obs"
	"mps/internal/portfolio"
	"mps/internal/stats"
	"mps/internal/store"
)

// BenchResult is one machine-readable micro-benchmark row: the op name
// plus the standard testing.Benchmark metrics. This is the schema CI
// archives (BENCH_results.json), seeding the performance trajectory the
// ROADMAP calls for — comparable run over run because names and units
// never change.
type BenchResult struct {
	Name        string  `json:"name"`
	N           int     `json:"n"` // iterations the harness settled on
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// BenchReport is the BENCH_results.json document.
type BenchReport struct {
	Version    int           `json:"version"`
	GoOS       string        `json:"goos"`
	GoArch     string        `json:"goarch"`
	GoMaxProcs int           `json:"gomaxprocs"`
	Seed       int64         `json:"seed"`
	Created    time.Time     `json:"created"`
	Results    []BenchResult `json:"results"`
	// Backends holds the per-backend generation comparison when the run
	// included mpsbench -backends. Informational: CompareBench gates only
	// on Results, so baseline files without this section stay valid.
	Backends []BackendRow `json:"backends,omitempty"`
	// Pareto holds the weight-diverse vs seed-diverse portfolio study when
	// the run included mpsbench -pareto. Informational, like Backends.
	Pareto []ParetoRow `json:"pareto,omitempty"`
}

// RunMicro benchmarks the serving stack's critical operations — quick
// generation, instantiation through the tree and compiled query paths
// (mixed and covered-only workloads), best-of-K portfolio routing (the
// covered routed op is the 0 allocs/op gate), and both on-disk codecs — via
// testing.Benchmark, renders a table to w, and returns the rows for
// WriteBenchJSON. The quick-effort budgets keep a full run in the tens of
// seconds, small enough for CI, and every op is deterministic in
// allocs/op so the -compare gate can check allocations exactly.
func RunMicro(w io.Writer, seed int64) ([]BenchResult, error) {
	// One structure powers the instantiate and codec benchmarks; quick
	// effort keeps its generation out of the measured loops' noise floor.
	s, _, err := GenerateForBenchmark("TwoStageOpamp", EffortQuick, seed)
	if err != nil {
		return nil, err
	}
	c := s.Circuit()
	rng := rand.New(rand.NewSource(seed))
	const batchSize = 1024
	ws := make([][]int, batchSize)
	hs := make([][]int, batchSize)
	for q := 0; q < batchSize; q++ {
		ws[q] = make([]int, c.N())
		hs[q] = make([]int, c.N())
		for i, b := range c.Blocks {
			ws[q][i] = b.WMin + rng.Intn(b.WMax-b.WMin+1)
			hs[q][i] = b.HMin + rng.Intn(b.HMax-b.HMin+1)
		}
	}
	cs := core.Compile(s)
	cws, chs := CoveredQueryPool(s, rng, batchSize)
	if cws == nil {
		return nil, fmt.Errorf("experiments: benchmark structure has no placements to query")
	}

	// A K=3 portfolio sharing s as member 0 (MemberSeed(seed, 0) == seed),
	// plus a covered routed query pool drawn from every member's boxes, so
	// the routed op exercises all K indices without ever touching a
	// backup — the 0 allocs/op sentinel for best-of-K routing.
	members := []*core.Structure{s}
	for i := 1; i < 3; i++ {
		m, _, err := GenerateForBenchmark("TwoStageOpamp", EffortQuick, portfolio.MemberSeed(seed, i))
		if err != nil {
			return nil, err
		}
		members = append(members, m)
	}
	pf, err := portfolio.New(members)
	if err != nil {
		return nil, err
	}
	pws := make([][]int, batchSize)
	phs := make([][]int, batchSize)
	for m := range members {
		mws, mhs := CoveredQueryPool(members[m], rng, (batchSize+2)/3)
		if mws == nil {
			return nil, fmt.Errorf("experiments: portfolio member %d has no placements to query", m)
		}
		for j := range mws {
			if idx := j*3 + m; idx < batchSize {
				pws[idx], phs[idx] = mws[j], mhs[j]
			}
		}
	}
	// The metric children and trace the instrumented op records into —
	// resolved once, exactly as the serve middleware resolves its children
	// at construction. The loop then measures only what a live request
	// pays per hit: atomic adds, no lookups, no allocation.
	obsReg := obs.NewRegistry()
	reqHist := obsReg.HistogramVec("mps_http_request_duration_seconds", "bench", "route").With("instantiate")
	reqCount := obsReg.CounterVec("mps_http_requests_total", "bench", "route", "code").With("instantiate", "200")
	stageDur := obsReg.DurationCounterVec("mps_stage_duration_seconds_total", "bench", "stage").With(obs.StageInstantiate.String())
	stageOps := obsReg.CounterVec("mps_stage_ops_total", "bench", "stage").With(obs.StageInstantiate.String())
	tr := &obs.Trace{}

	var v2 bytes.Buffer
	if err := s.SaveBinary(&v2); err != nil {
		return nil, err
	}
	var v1 bytes.Buffer
	if err := s.Save(&v1); err != nil {
		return nil, err
	}

	benches := []struct {
		name string
		fn   func(b *testing.B)
	}{
		// Fixed seed on every iteration: the annealing run is then
		// identical work each time, so allocs/op is exactly reproducible —
		// a varying seed would shift the average with the iteration count
		// and flake the -compare gate's exact allocation check.
		{"generate/circ01/quick", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := GenerateForBenchmark("circ01", EffortQuick, seed); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// The GA backend's twin of the op above — same circuit, budgets,
		// and fixed seed, so the perf gate watches both generation
		// backends. The GA runs one seeded population on one goroutine,
		// making its allocs/op exactly reproducible too.
		{"generate_ga_fixed_seed", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := GenerateBackendForBenchmark("ga", "circ01", EffortQuick, seed); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"instantiate/TwoStageOpamp", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := i % batchSize
				if _, err := s.Instantiate(ws[q], hs[q]); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// The compiled twin of the op above, on the same mixed
		// covered/backup query stream — the end-to-end serving delta.
		{"instantiate_compiled/TwoStageOpamp", func(b *testing.B) {
			var res core.Result
			for i := 0; i < b.N; i++ {
				q := i % batchSize
				if err := cs.InstantiateInto(&res, ws[q], hs[q]); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// Covered-only queries: the pure index comparison with the backup
		// template out of the loop. The compiled row is the CI gate's
		// zero-allocation sentinel — allocs/op must stay exactly 0.
		{"instantiate_covered/TwoStageOpamp", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				q := i % batchSize
				if _, err := s.Instantiate(cws[q], chs[q]); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"instantiate_covered_compiled/TwoStageOpamp", func(b *testing.B) {
			var res core.Result
			for i := 0; i < b.N; i++ {
				q := i % batchSize
				if err := cs.InstantiateInto(&res, cws[q], chs[q]); err != nil {
					b.Fatal(err)
				}
			}
		}},
		// The covered compiled op with the full observability epilogue a
		// served request pays: timing the work, recording the span on the
		// request trace and the global stage counters, then the per-route
		// histogram and request counter. The CI gate pins this at exactly
		// 0 allocs/op — instrumentation must never put the hot path back
		// on the allocator.
		{"mps_request_instrumented/TwoStageOpamp", func(b *testing.B) {
			var res core.Result
			for i := 0; i < b.N; i++ {
				q := i % batchSize
				t0 := time.Now()
				if err := cs.InstantiateInto(&res, cws[q], chs[q]); err != nil {
					b.Fatal(err)
				}
				d := time.Since(t0)
				tr.Observe(obs.StageInstantiate, d)
				stageDur.AddDuration(d)
				stageOps.Inc()
				reqHist.Observe(d)
				reqCount.Inc()
			}
		}},
		// The instrumented op plus the span layer a traced request pays:
		// start a real span on the trace, do the work, commit the span,
		// then offer the finished trace to a non-retaining store (the
		// tail sampler's common case — fast, successful, local — is a
		// lock-free discard). One trace serves 32 iterations, matching
		// its span capacity, so every iteration commits a live span and
		// the per-request NewTrace amortizes below the exact gate; the
		// span path itself must contribute exactly 0 allocs/op.
		{"mps_request_traced/TwoStageOpamp", func(b *testing.B) {
			ts := obs.NewTraceStore("bench", 4, 0, 0)
			rt := obs.NewTrace()
			var res core.Result
			for i := 0; i < b.N; i++ {
				if i%32 == 0 {
					rt = obs.NewTrace()
				}
				q := i % batchSize
				span := rt.StartSpan(obs.StageInstantiate)
				if err := cs.InstantiateInto(&res, cws[q], chs[q]); err != nil {
					b.Fatal(err)
				}
				d := span.End()
				stageDur.AddDuration(d)
				stageOps.Inc()
				reqHist.Observe(d)
				reqCount.Inc()
				if kept := ts.Offer(rt, "instantiate", "", 200, d); kept != "" {
					b.Fatalf("non-retaining store kept a trace (%s)", kept)
				}
			}
		}},
		// Best-of-K routing on covered queries: K CoveredArea probes plus
		// one InstantiateCoveredInto, all against compiled indices — the
		// CI gate pins this at exactly 0 allocs/op.
		{"portfolio_route_covered/TwoStageOpamp", func(b *testing.B) {
			var res core.Result
			for i := 0; i < b.N; i++ {
				q := i % batchSize
				if member, err := pf.InstantiateInto(&res, pws[q], phs[q]); err != nil || member < 0 {
					b.Fatalf("member %d, err %v", member, err)
				}
			}
		}},
		// Weight-aware best-of-K routing on the same covered pool: K
		// CoveredTerms probes (area, dead space, wire, aspect per member)
		// plus one InstantiateCoveredInto. Weighted routing must stay off
		// the allocator exactly like the area rule — the CI gate pins this
		// at 0 allocs/op too.
		{"portfolio_route_weighted/TwoStageOpamp", func(b *testing.B) {
			w := cost.Weights{Wire: 1, Area: 0.01}
			var res core.Result
			for i := 0; i < b.N; i++ {
				q := i % batchSize
				if member, err := pf.InstantiateWeightedInto(&res, w, pws[q], phs[q]); err != nil || member < 0 {
					b.Fatalf("member %d, err %v", member, err)
				}
			}
		}},
		// The portfolio twin of instantiate_compiled: the mixed
		// covered/backup stream through best-of-K routing.
		{"portfolio_mixed/TwoStageOpamp", func(b *testing.B) {
			var res core.Result
			for i := 0; i < b.N; i++ {
				q := i % batchSize
				if _, err := pf.InstantiateInto(&res, ws[q], hs[q]); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"encode/binary_v2", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				if err := s.SaveBinary(&buf); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"decode/binary_v2", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Load(bytes.NewReader(v2.Bytes()), c); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"encode/gob_v1", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				var buf bytes.Buffer
				if err := s.Save(&buf); err != nil {
					b.Fatal(err)
				}
			}
		}},
		{"decode/gob_v1", func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := core.Load(bytes.NewReader(v1.Bytes()), c); err != nil {
					b.Fatal(err)
				}
			}
		}},
	}

	fmt.Fprintln(w, "Micro-benchmarks (testing.Benchmark, default 1s per op)")
	tb := stats.NewTable("op", "n", "ns/op", "B/op", "allocs/op")
	out := make([]BenchResult, 0, len(benches))
	for _, bench := range benches {
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			bench.fn(b)
		})
		row := BenchResult{
			Name:        bench.name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		out = append(out, row)
		tb.AddRow(row.Name, row.N, fmt.Sprintf("%.0f", row.NsPerOp), row.BytesPerOp, row.AllocsPerOp)
	}
	tb.Render(w)
	return out, nil
}

// WriteBenchJSON writes the rows as a BENCH_results.json document at
// path, atomically (CI uploads the file; a crashed run must not leave a
// torn one). Rows are sorted by op name and struct fields encode in
// declaration order, so two runs differ only where their numbers do —
// the property the checked-in BENCH_baseline.json diffs rely on.
func WriteBenchJSON(path string, seed int64, results []BenchResult) error {
	return WriteBenchReport(path, seed, results, nil, nil)
}

// WriteBenchReport is WriteBenchJSON plus the optional backends
// (mpsbench -backends -json) and pareto (mpsbench -pareto -json)
// sections.
func WriteBenchReport(path string, seed int64, results []BenchResult, backends []BackendRow, pareto []ParetoRow) error {
	results = append([]BenchResult(nil), results...)
	sort.Slice(results, func(i, j int) bool { return results[i].Name < results[j].Name })
	report := BenchReport{
		Version:    1,
		GoOS:       runtime.GOOS,
		GoArch:     runtime.GOARCH,
		GoMaxProcs: runtime.GOMAXPROCS(0),
		Seed:       seed,
		Created:    time.Now().UTC(),
		Results:    results,
		Backends:   backends,
		Pareto:     pareto,
	}
	_, err := store.WriteFileAtomic(path, func(w io.Writer) error {
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	})
	return err
}
