package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sort"

	"mps/internal/stats"
)

// This file implements the CI performance-regression gate: a fresh
// micro-benchmark run is compared against the checked-in
// BENCH_baseline.json and any op that got slower beyond tolerance — or
// allocates more at all — fails the build. Allocations are compared
// exactly because they are machine-independent: an alloc crept into a hot
// path on any hardware. Wall time gets a tolerance because CI runners are
// not the machine the baseline was recorded on.

// DefaultNsTolerance is the fractional ns/op growth allowed before an op
// counts as regressed (0.30 = 30%).
const DefaultNsTolerance = 0.30

// BenchDelta is one op's baseline-vs-current comparison.
type BenchDelta struct {
	Name           string
	BaselineNs     float64
	CurrentNs      float64
	BaselineAllocs int64
	CurrentAllocs  int64
	// Status is "ok", "regressed", "missing" (in the baseline but not the
	// run — a silently dropped benchmark also fails the gate), or "new"
	// (informational; it enters the gate once the baseline is refreshed).
	Status string
	Reason string
}

// Regressed reports whether this delta fails the gate.
func (d BenchDelta) Regressed() bool { return d.Status == "regressed" || d.Status == "missing" }

// ReadBenchJSON loads a BENCH_results.json / BENCH_baseline.json document.
func ReadBenchJSON(path string) (*BenchReport, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("experiments: %w", err)
	}
	var report BenchReport
	if err := json.Unmarshal(data, &report); err != nil {
		return nil, fmt.Errorf("experiments: parsing %s: %w", path, err)
	}
	if len(report.Results) == 0 {
		return nil, fmt.Errorf("experiments: %s contains no benchmark results", path)
	}
	return &report, nil
}

// CompareBench matches ops by name and classifies each against the
// baseline: allocs/op must not grow at all, ns/op must not grow beyond
// tolerance (fraction; < 0 selects DefaultNsTolerance). Deltas come back
// sorted by name; regressed reports whether any op fails the gate.
func CompareBench(baseline, current []BenchResult, tolerance float64) (deltas []BenchDelta, regressed bool) {
	if tolerance < 0 {
		tolerance = DefaultNsTolerance
	}
	cur := make(map[string]BenchResult, len(current))
	for _, r := range current {
		cur[r.Name] = r
	}
	for _, base := range baseline {
		d := BenchDelta{
			Name:           base.Name,
			BaselineNs:     base.NsPerOp,
			BaselineAllocs: base.AllocsPerOp,
			Status:         "ok",
		}
		r, ok := cur[base.Name]
		if !ok {
			d.Status = "missing"
			d.Reason = "op present in baseline but not in this run"
			deltas = append(deltas, d)
			continue
		}
		delete(cur, base.Name)
		d.CurrentNs = r.NsPerOp
		d.CurrentAllocs = r.AllocsPerOp
		switch {
		case r.AllocsPerOp > base.AllocsPerOp:
			d.Status = "regressed"
			d.Reason = fmt.Sprintf("allocs/op grew %d -> %d (exact gate)", base.AllocsPerOp, r.AllocsPerOp)
		case base.NsPerOp > 0 && r.NsPerOp > base.NsPerOp*(1+tolerance):
			d.Status = "regressed"
			d.Reason = fmt.Sprintf("ns/op grew %.0f -> %.0f (>%.0f%% tolerance)",
				base.NsPerOp, r.NsPerOp, tolerance*100)
		}
		deltas = append(deltas, d)
	}
	for name, r := range cur {
		deltas = append(deltas, BenchDelta{
			Name:          name,
			CurrentNs:     r.NsPerOp,
			CurrentAllocs: r.AllocsPerOp,
			Status:        "new",
			Reason:        "not in baseline yet",
		})
	}
	sort.Slice(deltas, func(i, j int) bool { return deltas[i].Name < deltas[j].Name })
	for _, d := range deltas {
		if d.Regressed() {
			regressed = true
			break
		}
	}
	return deltas, regressed
}

// RatioGate asserts a speed relationship between two ops measured in the
// same run. Unlike the absolute baseline comparison it is machine
// independent — both sides ran on the same hardware moments apart — so it
// stays meaningful on CI runners that are faster or slower than the
// machine that recorded the baseline.
type RatioGate struct {
	Fast       string  // op that must be faster
	Slow       string  // op it is measured against
	MinSpeedup float64 // Slow.NsPerOp / Fast.NsPerOp must be >= this
}

// DefaultRatioGates pins the compiled query index's acceptance property:
// on covered queries the compiled path must stay at least 2× faster than
// the tree path (the measured ratio is ~3×; the margin absorbs noise).
var DefaultRatioGates = []RatioGate{
	{
		Fast:       "instantiate_covered_compiled/TwoStageOpamp",
		Slow:       "instantiate_covered/TwoStageOpamp",
		MinSpeedup: 2.0,
	},
}

// CheckRatioGates evaluates the gates against one run's results and
// returns a failure message per violated (or unevaluable) gate.
func CheckRatioGates(current []BenchResult, gates []RatioGate) []string {
	byName := make(map[string]BenchResult, len(current))
	for _, r := range current {
		byName[r.Name] = r
	}
	var failures []string
	for _, g := range gates {
		fast, okF := byName[g.Fast]
		slow, okS := byName[g.Slow]
		if !okF || !okS {
			failures = append(failures, fmt.Sprintf("ratio gate %s vs %s: op missing from this run", g.Fast, g.Slow))
			continue
		}
		if fast.NsPerOp <= 0 {
			failures = append(failures, fmt.Sprintf("ratio gate %s: non-positive ns/op", g.Fast))
			continue
		}
		if speedup := slow.NsPerOp / fast.NsPerOp; speedup < g.MinSpeedup {
			failures = append(failures, fmt.Sprintf("%s is only %.2fx faster than %s (gate: >=%.1fx)",
				g.Fast, speedup, g.Slow, g.MinSpeedup))
		}
	}
	return failures
}

// RenderBenchDeltas prints the comparison as a table, flagging gate
// failures in the status column.
func RenderBenchDeltas(w io.Writer, deltas []BenchDelta) {
	tb := stats.NewTable("op", "base ns/op", "ns/op", "base allocs", "allocs", "status")
	for _, d := range deltas {
		status := d.Status
		if d.Reason != "" {
			status = fmt.Sprintf("%s (%s)", d.Status, d.Reason)
		}
		tb.AddRow(d.Name,
			fmt.Sprintf("%.0f", d.BaselineNs), fmt.Sprintf("%.0f", d.CurrentNs),
			d.BaselineAllocs, d.CurrentAllocs, status)
	}
	tb.Render(w)
}
