package experiments

import (
	"fmt"
	"io"
	"math/rand"
	"testing"

	"mps/internal/core"
	"mps/internal/stats"
)

// This file implements the tree-vs-compiled query study (ROADMAP: make the
// hot path measurably faster): for a spread of benchmark circuits it
// benchmarks Instantiate through the pointer-walking interval rows and
// through the compiled flat index on an identical covered-query workload,
// reporting ns/op and allocs/op side by side. Covered queries isolate the
// index comparison — uncovered queries would time the shared backup
// template instead of either index.

// QueryPerfRow is one circuit's tree-vs-compiled comparison.
type QueryPerfRow struct {
	Circuit        string
	Placements     int
	Spans          int // compiled index size (total intervals across 2N rows)
	TreeNs         float64
	TreeAllocs     int64
	CompiledNs     float64
	CompiledAllocs int64
	Speedup        float64 // TreeNs / CompiledNs
}

// queryPerfCircuits spans small to large block counts; the compiled win
// must hold across the size range, not just on one shape.
var queryPerfCircuits = []string{"circ01", "TwoStageOpamp", "Mixer", "tso-cascode"}

// CoveredQueryPool draws count dimension vectors uniformly from stored
// placements' dimension boxes, so every query resolves to a stored
// placement on both paths. It returns nils when the structure holds no
// placements — callers must treat that as "nothing to benchmark". Shared
// by RunMicro, RunQueryPerf, and the root covered-query benchmarks.
func CoveredQueryPool(s *core.Structure, rng *rand.Rand, count int) (ws, hs [][]int) {
	ids := s.IDs()
	if len(ids) == 0 {
		return nil, nil
	}
	n := s.Circuit().N()
	ws = make([][]int, count)
	hs = make([][]int, count)
	for q := 0; q < count; q++ {
		p := s.Get(ids[rng.Intn(len(ids))])
		ws[q] = make([]int, n)
		hs[q] = make([]int, n)
		for i := 0; i < n; i++ {
			ws[q][i] = p.WLo[i] + rng.Intn(p.WHi[i]-p.WLo[i]+1)
			hs[q][i] = p.HLo[i] + rng.Intn(p.HHi[i]-p.HLo[i]+1)
		}
	}
	return ws, hs
}

// RunQueryPerf generates one structure per study circuit, benchmarks both
// query paths on the same covered workload, renders a table to w, and
// returns the rows.
func RunQueryPerf(w io.Writer, effort Effort, seed int64) ([]QueryPerfRow, error) {
	fmt.Fprintln(w, "Query-path comparison: interval-tree walk vs compiled flat index (covered queries)")
	tb := stats.NewTable("circuit", "placements", "spans",
		"tree ns/op", "tree allocs", "compiled ns/op", "compiled allocs", "speedup")
	rows := make([]QueryPerfRow, 0, len(queryPerfCircuits))
	for _, name := range queryPerfCircuits {
		s, _, err := GenerateForBenchmark(name, effort, seed)
		if err != nil {
			return nil, err
		}
		cs := core.Compile(s)
		rng := rand.New(rand.NewSource(seed + 101))
		const pool = 1024
		ws, hs := CoveredQueryPool(s, rng, pool)
		if ws == nil {
			return nil, fmt.Errorf("experiments: %s generated no placements to query", name)
		}

		tree := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				q := i % pool
				if _, err := s.Instantiate(ws[q], hs[q]); err != nil {
					b.Fatal(err)
				}
			}
		})
		compiled := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			var res core.Result
			for i := 0; i < b.N; i++ {
				q := i % pool
				if err := cs.InstantiateInto(&res, ws[q], hs[q]); err != nil {
					b.Fatal(err)
				}
			}
		})

		row := QueryPerfRow{
			Circuit:        name,
			Placements:     s.NumPlacements(),
			Spans:          cs.NumSpans(),
			TreeNs:         float64(tree.T.Nanoseconds()) / float64(tree.N),
			TreeAllocs:     tree.AllocsPerOp(),
			CompiledNs:     float64(compiled.T.Nanoseconds()) / float64(compiled.N),
			CompiledAllocs: compiled.AllocsPerOp(),
		}
		if row.CompiledNs > 0 {
			row.Speedup = row.TreeNs / row.CompiledNs
		}
		rows = append(rows, row)
		tb.AddRow(row.Circuit, row.Placements, row.Spans,
			fmt.Sprintf("%.0f", row.TreeNs), row.TreeAllocs,
			fmt.Sprintf("%.0f", row.CompiledNs), row.CompiledAllocs,
			fmt.Sprintf("%.2fx", row.Speedup))
	}
	tb.Render(w)
	return rows, nil
}
