package experiments

import (
	"context"
	"fmt"
	"io"
	"math/rand"

	"mps/internal/circuits"
	"mps/internal/core"
	"mps/internal/cost"
	"mps/internal/gen"
	"mps/internal/portfolio"
	"mps/internal/stats"
	"mps/internal/template"
)

// This file implements the Pareto-portfolio study behind `mpsbench
// -pareto`: at equal K, does weight diversity (members optimizing
// different objective mixes — the facade's default weight ladder) beat
// seed-only diversity (the historical portfolio: same objective, K
// seeds)? Per circuit both portfolios share the member seeds and the
// query stream; each objective is measured by routing every query with
// the weight vector favoring that objective alone, so each portfolio
// answers with its best member for that objective, and the means compare
// the best each K-member artifact can do per axis.

// ParetoRow is one circuit's seed-diverse vs weight-diverse comparison.
// The per-objective columns are mean cost.Terms components over the
// queries both portfolios cover (backup answers excluded — the study
// compares stored placements, not the shared template), each measured
// under routing that favors that objective alone. Lower is better.
type ParetoRow struct {
	Circuit string `json:"circuit"`
	K       int    `json:"k"`
	// Samples counts the commonly covered queries the objective means
	// average over.
	Samples int `json:"samples"`
	// CoverageSeed and CoverageWeighted are each portfolio's own covered
	// fraction of the shared query stream.
	CoverageSeed     float64 `json:"coverage_seed"`
	CoverageWeighted float64 `json:"coverage_weighted"`
	WireSeed         float64 `json:"wire_seed"`
	WireWeighted     float64 `json:"wire_weighted"`
	AreaSeed         float64 `json:"area_seed"`
	AreaWeighted     float64 `json:"area_weighted"`
	AspectSeed       float64 `json:"aspect_seed"`
	AspectWeighted   float64 `json:"aspect_weighted"`
}

// paretoSamples is the shared query stream length per circuit.
const paretoSamples = 4000

// paretoObjectives are the single-objective routing vectors, index-matched
// to the (wire, area, aspect) term columns.
var paretoObjectives = []cost.Weights{{Wire: 1}, {Area: 1}, {Aspect: 1}}

// GenerateWeightedForBenchmark is GenerateForBenchmark under an explicit
// generation objective: the default backend with Spec.Weights set, so
// the member matches what the facade generates for a ladder rung at the
// same seed.
func GenerateWeightedForBenchmark(name string, effort Effort, seed int64, weights cost.Weights) (*core.Structure, error) {
	c, err := circuits.ByName(name)
	if err != nil {
		return nil, err
	}
	g, err := gen.ByName(gen.Default)
	if err != nil {
		return nil, err
	}
	iters, steps := effort.budgetsFor(c.N())
	s, _, err := g.Generate(context.Background(), c, gen.Spec{
		Backend:    gen.Default,
		Seed:       seed,
		Iterations: iters,
		BDIOSteps:  steps,
		Weights:    weights,
	})
	if err != nil {
		return nil, err
	}
	s.SetBackup(template.Balanced(c))
	return s, nil
}

// paretoPortfolios builds the two equal-K portfolios for a circuit:
// seed-diverse (every member weightless, the pre-weights artifact) and
// weight-diverse (member i on ladder rung i), sharing the member seeds.
func paretoPortfolios(name string, effort Effort, seed int64, k int) (seedDiv, weightDiv *portfolio.Portfolio, err error) {
	ladder := cost.WeightLadder(k)
	seedMembers := make([]*core.Structure, k)
	weightMembers := make([]*core.Structure, k)
	for i := 0; i < k; i++ {
		ms := portfolio.MemberSeed(seed, i)
		if seedMembers[i], _, err = GenerateForBenchmark(name, effort, ms); err != nil {
			return nil, nil, err
		}
		if weightMembers[i], err = GenerateWeightedForBenchmark(name, effort, ms, ladder[i]); err != nil {
			return nil, nil, err
		}
	}
	if seedDiv, err = portfolio.New(seedMembers); err != nil {
		return nil, nil, err
	}
	if weightDiv, err = portfolio.NewWeighted(weightMembers, ladder); err != nil {
		return nil, nil, err
	}
	return seedDiv, weightDiv, nil
}

// paretoPool is the objective-measurement query pool size per circuit,
// drawn from both portfolios' placement validity boxes in equal shares.
const paretoPool = 2000

// measurePareto measures both portfolios on the shared streams: coverage
// on a uniform random stream over the full designer ranges, objective
// means on a box-drawn pool both artifacts can answer. The pool draws
// the same number of queries from every member of each portfolio, so
// neither artifact chooses the battleground.
func measurePareto(name string, seedDiv, weightDiv *portfolio.Portfolio, seed int64) ParetoRow {
	c := seedDiv.Circuit()
	rng := rand.New(rand.NewSource(seed + 31415))
	n := c.N()
	ws, hs := make([]int, n), make([]int, n)
	row := ParetoRow{Circuit: name, K: seedDiv.K()}
	coveredSeed, coveredWeight := 0, 0
	for q := 0; q < paretoSamples; q++ {
		for i, b := range c.Blocks {
			ws[i] = b.WRange().Rand(rng)
			hs[i] = b.HRange().Rand(rng)
		}
		if m, err := seedDiv.RouteWeighted(paretoObjectives[0], ws, hs); err == nil && m >= 0 {
			coveredSeed++
		}
		if m, err := weightDiv.RouteWeighted(paretoObjectives[0], ws, hs); err == nil && m >= 0 {
			coveredWeight++
		}
	}
	row.CoverageSeed = float64(coveredSeed) / paretoSamples
	row.CoverageWeighted = float64(coveredWeight) / paretoSamples

	k := seedDiv.K()
	perMember := paretoPool / (2 * k)
	var poolWs, poolHs [][]int
	for m := 0; m < k; m++ {
		for _, p := range []*portfolio.Portfolio{seedDiv, weightDiv} {
			mws, mhs := CoveredQueryPool(p.Member(m), rng, perMember)
			poolWs = append(poolWs, mws...)
			poolHs = append(poolHs, mhs...)
		}
	}
	var sums [3][2]float64 // [objective][seedDiv, weightDiv]
	for q := range poolWs {
		// A pool query is common when both portfolios cover it; coverage
		// is routing-independent, so probe once per portfolio.
		sm, st, err := seedDiv.RouteTerms(paretoObjectives[0], poolWs[q], poolHs[q])
		if err != nil || sm < 0 {
			continue
		}
		wm, wt, err := weightDiv.RouteTerms(paretoObjectives[0], poolWs[q], poolHs[q])
		if err != nil || wm < 0 {
			continue
		}
		row.Samples++
		sums[0][0] += float64(st.Wire)
		sums[0][1] += float64(wt.Wire)
		for o := 1; o < len(paretoObjectives); o++ {
			if _, t, err := seedDiv.RouteTerms(paretoObjectives[o], poolWs[q], poolHs[q]); err == nil {
				sums[o][0] += term(t, o)
			}
			if _, t, err := weightDiv.RouteTerms(paretoObjectives[o], poolWs[q], poolHs[q]); err == nil {
				sums[o][1] += term(t, o)
			}
		}
	}
	if row.Samples > 0 {
		d := float64(row.Samples)
		row.WireSeed, row.WireWeighted = sums[0][0]/d, sums[0][1]/d
		row.AreaSeed, row.AreaWeighted = sums[1][0]/d, sums[1][1]/d
		row.AspectSeed, row.AspectWeighted = sums[2][0]/d, sums[2][1]/d
	}
	return row
}

// term extracts the objective-o component of a terms vector, matching
// paretoObjectives order.
func term(t cost.Terms, o int) float64 {
	switch o {
	case 0:
		return float64(t.Wire)
	case 1:
		return float64(t.Area)
	default:
		return float64(t.Aspect)
	}
}

// RunPareto builds, per study circuit, a seed-diverse and a weight-diverse
// K-member portfolio from the same member seeds, measures coverage and
// per-objective routed cost on a shared query stream, renders a table to
// w, and returns the rows for the JSON report.
func RunPareto(w io.Writer, effort Effort, seed int64, k int) ([]ParetoRow, error) {
	fmt.Fprintf(w, "Pareto portfolios: weight-diverse vs seed-diverse at K=%d (%d random queries per circuit)\n",
		k, paretoSamples)
	tb := stats.NewTable("circuit", "common",
		"cov seed", "cov wdiv",
		"wire seed", "wire wdiv",
		"area seed", "area wdiv",
		"aspect seed", "aspect wdiv")
	rows := make([]ParetoRow, 0, len(portfolioCircuits))
	for _, name := range portfolioCircuits {
		seedDiv, weightDiv, err := paretoPortfolios(name, effort, seed, k)
		if err != nil {
			return nil, err
		}
		row := measurePareto(name, seedDiv, weightDiv, seed)
		rows = append(rows, row)
		tb.AddRow(row.Circuit, row.Samples,
			fmt.Sprintf("%.2f%%", 100*row.CoverageSeed),
			fmt.Sprintf("%.2f%%", 100*row.CoverageWeighted),
			fmt.Sprintf("%.0f", row.WireSeed),
			fmt.Sprintf("%.0f", row.WireWeighted),
			fmt.Sprintf("%.0f", row.AreaSeed),
			fmt.Sprintf("%.0f", row.AreaWeighted),
			fmt.Sprintf("%.0f", row.AspectSeed),
			fmt.Sprintf("%.0f", row.AspectWeighted))
	}
	tb.Render(w)
	fmt.Fprintln(w, "Means over the queries both portfolios cover; each objective column is")
	fmt.Fprintln(w, "measured with routing favoring that objective alone, so the comparison is")
	fmt.Fprintln(w, "best-member vs best-member per axis. Lower is better. cov: own covered")
	fmt.Fprintln(w, "fraction of the full stream (seed: seed-diverse, wdiv: weight-diverse).")
	return rows, nil
}
