package experiments

import (
	"bytes"
	"strings"
	"testing"

	"mps/internal/cost"
)

// TestMeasurePareto pins the study's invariants on quick-effort K=2
// circ01 portfolios: a common box-drawn sample pool exists, objective
// means are positive over it, and the weight-diverse portfolio records
// the ladder it was generated under.
func TestMeasurePareto(t *testing.T) {
	seedDiv, weightDiv, err := paretoPortfolios("circ01", EffortQuick, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	ladder := cost.WeightLadder(2)
	for i, w := range weightDiv.MemberWeights() {
		if w != ladder[i] {
			t.Errorf("weight-diverse member %d records %+v, want ladder rung %+v", i, w, ladder[i])
		}
	}
	for i, w := range seedDiv.MemberWeights() {
		if !w.IsZero() {
			t.Errorf("seed-diverse member %d records %+v, want zero", i, w)
		}
	}
	row := measurePareto("circ01", seedDiv, weightDiv, 1)
	if row.Samples == 0 {
		t.Fatal("no common covered queries in the box-drawn pool")
	}
	if row.WireSeed <= 0 || row.WireWeighted <= 0 || row.AreaSeed <= 0 || row.AreaWeighted <= 0 {
		t.Errorf("non-positive objective means: %+v", row)
	}
	if row.K != 2 || row.Circuit != "circ01" {
		t.Errorf("row %+v does not describe the study", row)
	}
}

// TestRunParetoWeightDiversityWins is the study's acceptance claim at
// seconds scale: at equal K, weight-diverse portfolios beat seed-diverse
// ones on at least one non-area objective (wire or aspect) on at least
// two Table-1 circuits. Fixed seed and budgets make the outcome
// deterministic.
func TestRunParetoWeightDiversityWins(t *testing.T) {
	if testing.Short() {
		t.Skip("generates eight quick portfolio members")
	}
	var buf bytes.Buffer
	rows, err := RunPareto(&buf, EffortQuick, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(portfolioCircuits) {
		t.Fatalf("got %d rows, want %d", len(rows), len(portfolioCircuits))
	}
	wins := 0
	for _, r := range rows {
		if r.Samples == 0 {
			continue
		}
		if r.WireWeighted < r.WireSeed || r.AspectWeighted < r.AspectSeed {
			wins++
		}
	}
	if wins < 2 {
		t.Errorf("weight diversity beat seed diversity on a non-area objective on %d circuits, want >= 2\n%+v",
			wins, rows)
	}
	if out := buf.String(); !strings.Contains(out, "aspect wdiv") || !strings.Contains(out, "circ01") {
		t.Errorf("table missing expected columns:\n%s", out)
	}
}
