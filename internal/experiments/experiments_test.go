package experiments

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

func TestTable1MatchesPaper(t *testing.T) {
	var buf bytes.Buffer
	if err := Table1(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"circ01", "benchmark24", "TwoStageOpamp", "Blocks"} {
		if !strings.Contains(out, want) {
			t.Errorf("Table 1 output missing %q:\n%s", want, out)
		}
	}
}

func TestGenerateForBenchmark(t *testing.T) {
	s, st, err := GenerateForBenchmark("circ01", EffortQuick, 1)
	if err != nil {
		t.Fatal(err)
	}
	if s.NumPlacements() == 0 {
		t.Error("no placements generated")
	}
	if st.Duration <= 0 {
		t.Error("no duration recorded")
	}
	if err := s.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestGenerateForBenchmarkUnknown(t *testing.T) {
	if _, _, err := GenerateForBenchmark("nope", EffortQuick, 1); err == nil {
		t.Error("unknown benchmark should error")
	}
}

func TestMeasureInstantiation(t *testing.T) {
	s, _, err := GenerateForBenchmark("circ01", EffortQuick, 2)
	if err != nil {
		t.Fatal(err)
	}
	avg, backupRate, err := MeasureInstantiation(s, 200, 3)
	if err != nil {
		t.Fatal(err)
	}
	if avg <= 0 {
		t.Errorf("avg latency = %v, want positive", avg)
	}
	// The headline claim: instantiation is far below the paper's
	// milliseconds on modern hardware; a millisecond bound is generous.
	if avg > time.Millisecond {
		t.Errorf("avg instantiation latency %v exceeds 1ms", avg)
	}
	if backupRate < 0 || backupRate > 1 {
		t.Errorf("backup rate = %g, want in [0,1]", backupRate)
	}
}

// TestTable2ShapeQuick runs the full Table 2 harness at quick effort on a
// subset of the shape claims: generation is orders of magnitude slower than
// instantiation, and every circuit stores multiple placements.
func TestTable2ShapeQuick(t *testing.T) {
	if testing.Short() {
		t.Skip("full suite generation is seconds-scale; skipped in -short")
	}
	var buf bytes.Buffer
	rows, err := RunTable2(&buf, EffortQuick, 7)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("got %d rows, want 9", len(rows))
	}
	for _, r := range rows {
		if r.Placements < 2 {
			t.Errorf("%s: only %d placements stored", r.Circuit, r.Placements)
		}
		if r.InstantiateAvg <= 0 {
			t.Errorf("%s: no instantiation latency", r.Circuit)
			continue
		}
		ratio := float64(r.GenTime) / float64(r.InstantiateAvg)
		if ratio < 100 {
			t.Errorf("%s: generation only %.0fx slower than instantiation; paper shape is >>100x",
				r.Circuit, ratio)
		}
		if r.Paper == nil {
			t.Errorf("%s: missing paper reference row", r.Circuit)
		}
	}
	out := buf.String()
	if !strings.Contains(out, "Table 2") || !strings.Contains(out, "benchmark24") {
		t.Errorf("rendered table incomplete:\n%s", out)
	}
}

func TestFigure5DistinctInstantiations(t *testing.T) {
	s, _, err := GenerateForBenchmark("TwoStageOpamp", EffortQuick, 11)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := RunFigure5(s)
	if err != nil {
		t.Fatal(err)
	}
	for name, ascii := range map[string]string{"a": fig.ASCIIa, "b": fig.ASCIIb, "c": fig.ASCIIc} {
		if !strings.Contains(ascii, "DIFF") {
			t.Errorf("fig5.%s missing legend:\n%s", name, ascii)
		}
		if strings.Contains(ascii, "?") {
			t.Errorf("fig5.%s has overlapping blocks:\n%s", name, ascii)
		}
	}
	if !strings.HasPrefix(fig.SVGa, "<svg") {
		t.Error("fig5 SVG output malformed")
	}
	// (a) and (b) should differ: different sizes produce different layouts
	// even when the same stored placement answers both.
	if fig.ASCIIa == fig.ASCIIb {
		t.Error("fig5 (a) and (b) rendered identically")
	}
}

func TestFigure6LowestCostSelection(t *testing.T) {
	s, _, err := GenerateForBenchmark("TwoStageOpamp", EffortQuick, 13)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := RunFigure6(s, defaultEvaluator(), 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.SweepValues) < 10 {
		t.Fatalf("sweep too short: %d points", len(fig.SweepValues))
	}
	if len(fig.SelectedCosts) != len(fig.SweepValues) {
		t.Fatal("series length mismatch")
	}
	// The sweep anchors at a stored placement's best dims, so at least one
	// sweep point must be answered by a stored placement.
	if len(fig.PlacementIDs) == 0 {
		t.Fatal("no stored placement selected anywhere on the anchored sweep")
	}
	for k, costs := range fig.FixedCosts {
		if len(costs) != len(fig.SweepValues) {
			t.Fatalf("fixed series %d length mismatch", k)
		}
	}
	// The paper's claim: per-point selection is at least as good on average
	// as committing to any single fixed placement.
	if gain := fig.SelectionGain(); gain > 1.02 {
		t.Errorf("selection gain %.3f > 1: structure failed to select lowest-cost placements", gain)
	}

	var buf bytes.Buffer
	RenderFigure6(&buf, fig)
	if !strings.Contains(buf.String(), "selection gain") {
		t.Error("rendered figure missing summary")
	}

	buf.Reset()
	if err := PlotFigure6(&buf, fig); err != nil {
		t.Fatal(err)
	}
	plots := buf.String()
	if !strings.Contains(plots, "Figure 6 (top)") || !strings.Contains(plots, "Figure 6 (bottom)") {
		t.Errorf("missing stacked plots:\n%s", plots)
	}
	if !strings.Contains(plots, "selected") {
		t.Error("bottom plot legend missing")
	}
}

func TestFigure7Renders(t *testing.T) {
	if testing.Short() {
		t.Skip("tso-cascode generation skipped in -short")
	}
	s, _, err := GenerateForBenchmark("tso-cascode", EffortQuick, 17)
	if err != nil {
		t.Fatal(err)
	}
	fig, err := RunFigure7(s)
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(fig.ASCII, "?") {
		t.Errorf("fig7 layout has overlaps:\n%s", fig.ASCII)
	}
	if !strings.Contains(fig.ASCII, "B00") {
		t.Errorf("fig7 legend missing blocks:\n%s", fig.ASCII)
	}
	if !strings.HasPrefix(fig.SVG, "<svg") {
		t.Error("fig7 SVG malformed")
	}
}

func TestPaperReferenceComplete(t *testing.T) {
	if len(PaperTable2) != 9 {
		t.Fatalf("paper table has %d rows, want 9", len(PaperTable2))
	}
	if PaperRowByName("circ01") == nil || PaperRowByName("benchmark24") == nil {
		t.Error("reference lookup broken")
	}
	if PaperRowByName("nope") != nil {
		t.Error("unknown circuit should return nil")
	}
	// Published shape: generation time grows from circ01 to benchmark24.
	if PaperTable2[0].GenTime >= PaperTable2[8].GenTime {
		t.Error("reference rows out of order")
	}
}
